/// mgs_chaos: deterministic chaos campaigns for the scan stack
/// (docs/resilience.md).
///
///   mgs_chaos --seed 42 --count 500          run a 500-scenario campaign;
///                                            exit 1 if any invariant broke
///   mgs_chaos --seed 42 --count 500 --out D  also write every shrunk repro
///                                            to D/repro_<index>.txt
///   mgs_chaos --replay "<scenario line>"     re-run one scenario (a repro
///                                            line from a campaign log)
///   mgs_chaos --list --seed 42 --count 20    print the scenarios a campaign
///                                            would run, without running them
///
/// Campaigns are fully seeded: the same (seed, count) runs the same
/// scenarios everywhere, and every repro line replays standalone.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "mgs/chaos/chaos.hpp"
#include "mgs/util/check.hpp"
#include "mgs/util/cli.hpp"

namespace {

using namespace mgs;

int replay(const std::string& line) {
  const chaos::Scenario s = chaos::parse_scenario(line);
  std::printf("replaying: %s\n", chaos::to_string(s).c_str());
  if (const auto v = chaos::check_scenario(s)) {
    std::printf("VIOLATION: %s\n", v->c_str());
    return 1;
  }
  std::printf("ok: every invariant holds\n");
  return 0;
}

int campaign(std::uint64_t seed, int count, const std::string& out_dir) {
  const auto r = chaos::run_campaign(seed, count, &std::cout);
  std::printf(
      "[chaos] campaign done: %d scenarios (%d healthy, %d faulted), "
      "%d typed rejections, %zu violations\n",
      r.total, r.healthy, r.faulted, r.rejected, r.violations.size());
  if (r.ok()) return 0;
  if (!out_dir.empty()) {
    std::filesystem::create_directories(out_dir);
    for (const auto& v : r.violations) {
      const std::string path =
          out_dir + "/repro_" + std::to_string(v.scenario.index) + ".txt";
      std::ofstream os(path);
      os << "violation: " << v.what << "\n"
         << "scenario:  " << chaos::to_string(v.scenario) << "\n"
         << "repro:     " << chaos::to_string(v.shrunk) << "\n";
      std::printf("[chaos] wrote %s\n", path.c_str());
    }
  }
  std::printf(
      "[chaos] replay any repro line with: mgs_chaos --replay \"<line>\"\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Cli cli(argc, argv);
    cli.describe("seed", "campaign seed (default 20260808)");
    cli.describe("count", "scenarios to run (default 100)");
    cli.describe("replay", "re-check one scenario line instead of a campaign");
    cli.describe("out", "directory for shrunk-repro files on failure");
    cli.describe("list", "print the sampled scenarios and exit");
    if (cli.help_requested()) {
      cli.print_help(
          "Run seeded chaos campaigns over the scan proposals and shrink "
          "any invariant violation to a minimal repro.");
      return 0;
    }
    cli.reject_unknown();

    const auto seed =
        static_cast<std::uint64_t>(cli.get_int("seed", 20260808));
    const int count = static_cast<int>(cli.get_int("count", 100));
    MGS_REQUIRE(count > 0, "mgs_chaos: --count must be positive");

    const std::string line = cli.get_string("replay", "");
    if (!line.empty()) return replay(line);

    if (cli.get_bool("list", false)) {
      for (int i = 0; i < count; ++i) {
        std::printf("%s\n",
                    chaos::to_string(chaos::sample_scenario(seed, i)).c_str());
      }
      return 0;
    }
    return campaign(seed, count, cli.get_string("out", ""));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mgs_chaos: %s\n", e.what());
    return 1;
  }
}
