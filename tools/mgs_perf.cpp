/// mgs_perf: cross-run performance comparison (docs/observability.md).
///
///   mgs_perf diff BASE.json CUR.json [--top N] [--json OUT]
///       differential critical-path attribution between two run-reports:
///       a ranked "what got slower and where" table whose rows telescope
///       exactly to the makespan delta, with structural changes (plan
///       shape, wave count, resumed stages) flagged separately.
///   mgs_perf history append --report R.json --label L
///              [--pipeline P] [--g G] [--file F]
///       append one run-report to the NDJSON history store.
///   mgs_perf history show [--file F]
///       per-configuration p50/p95/max summaries from the store.
///   mgs_perf history top [--file F] [--top N]
///       the configurations whose latest run regressed the most vs their
///       previous run, with the stage that moved the most.
///
/// The subcommand and its file operands are positional; util::Cli parses
/// the remaining --flags.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "mgs/obs/diff.hpp"
#include "mgs/obs/history.hpp"
#include "mgs/obs/report.hpp"
#include "mgs/util/check.hpp"
#include "mgs/util/cli.hpp"
#include "mgs/util/table.hpp"

namespace {

using namespace mgs;

constexpr const char* kDefaultHistory = "bench_results/history.ndjson";

int usage(int status) {
  std::fprintf(
      stderr,
      "usage: mgs_perf diff BASE.json CUR.json [--top N] [--json OUT]\n"
      "       mgs_perf history append --report R.json --label L\n"
      "                [--pipeline P] [--g G] [--file F]\n"
      "       mgs_perf history show [--file F]\n"
      "       mgs_perf history top [--file F] [--top N]\n");
  return status;
}

int cmd_diff(const std::string& base_path, const std::string& cur_path,
             util::Cli& cli) {
  cli.describe("top", "show only the N largest attribution rows (0 = all)");
  cli.describe("json", "also write the machine-readable diff here");
  cli.reject_unknown();
  const auto base = obs::load_run_report(base_path);
  const auto cur = obs::load_run_report(cur_path);
  const auto d = obs::diff_reports(base, cur);
  std::printf("baseline: %s\ncurrent:  %s\n\n%s", base_path.c_str(),
              cur_path.c_str(),
              obs::format_diff(
                  d, static_cast<std::size_t>(cli.get_int("top", 0)))
                  .c_str());
  const std::string out = cli.get_string("json", "");
  if (!out.empty()) {
    std::ofstream os(out);
    MGS_REQUIRE(os.good(), "mgs_perf: cannot open " + out);
    obs::write_diff_json(os, d);
    std::printf("\nwrote %s\n", out.c_str());
  }
  return 0;
}

int cmd_history_append(util::Cli& cli) {
  cli.describe("report", "run-report JSON to append (required)");
  cli.describe("label", "entry label, e.g. the git sha (required)");
  cli.describe("pipeline", "pipeline the run used: auto/sync/overlap");
  cli.describe("g", "problems in the batch (the report header omits G)");
  cli.describe("file", "history store path (default bench_results/"
                       "history.ndjson)");
  cli.reject_unknown();
  const std::string report = cli.get_string("report", "");
  const std::string label = cli.get_string("label", "");
  MGS_REQUIRE(!report.empty() && !label.empty(),
              "mgs_perf: history append needs --report and --label");
  const obs::RunHistory hist(cli.get_string("file", kDefaultHistory));
  const auto entry = obs::entry_from_report(
      obs::load_run_report(report), label,
      cli.get_string("pipeline", "auto"), cli.get_int("g", 0));
  hist.append(entry);
  std::printf("appended [%s] %s  makespan %.3f us -> %s\n", label.c_str(),
              entry.key.str().c_str(), entry.seconds * 1e6,
              hist.path().c_str());
  return 0;
}

int cmd_history_show(util::Cli& cli) {
  cli.describe("file", "history store path");
  cli.reject_unknown();
  const obs::RunHistory hist(cli.get_string("file", kDefaultHistory));
  const auto entries = hist.load();
  if (entries.empty()) {
    std::printf("history: no entries in %s\n", hist.path().c_str());
    return 0;
  }
  std::printf("history: %zu entries in %s\n\n", entries.size(),
              hist.path().c_str());
  std::printf("%s",
              obs::RunHistory::format_summary(
                  obs::RunHistory::summarize(entries))
                  .c_str());
  return 0;
}

int cmd_history_top(util::Cli& cli) {
  cli.describe("file", "history store path");
  cli.describe("top", "configurations to show (default 10)");
  cli.reject_unknown();
  const obs::RunHistory hist(cli.get_string("file", kDefaultHistory));
  const auto entries = hist.load();
  // Latest vs previous entry per key: the "what got slower" ranking, with
  // the breakdown phase that moved the most as the where.
  struct Pair {
    const obs::HistoryEntry* prev = nullptr;
    const obs::HistoryEntry* latest = nullptr;
  };
  std::map<std::string, Pair> by_key;
  for (const auto& e : entries) {
    Pair& p = by_key[e.key.str()];
    p.prev = p.latest;
    p.latest = &e;
  }
  struct Row {
    const Pair* p;
    double delta_pct;
  };
  std::vector<Row> rows;
  for (const auto& [key, p] : by_key) {
    if (p.prev == nullptr || p.prev->seconds <= 0.0) continue;
    rows.push_back({&p, (p.latest->seconds / p.prev->seconds - 1.0) * 100.0});
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.delta_pct > b.delta_pct;
  });
  const auto top = static_cast<std::size_t>(cli.get_int("top", 10));
  if (rows.empty()) {
    std::printf("history: need at least two runs of a configuration for a "
                "regression ranking (%zu entries in %s)\n",
                entries.size(), hist.path().c_str());
    return 0;
  }
  util::Table t({"config", "prev(us)", "latest(us)", "delta", "slowest mover",
                 "labels"});
  for (std::size_t i = 0; i < std::min(top, rows.size()); ++i) {
    const auto& [p, delta_pct] = rows[i];
    // The breakdown phase with the largest absolute drift.
    std::map<std::string, double> prev_phases(p->prev->breakdown.begin(),
                                              p->prev->breakdown.end());
    std::string mover = "-";
    double mover_delta = 0.0;
    for (const auto& [phase, secs] : p->latest->breakdown) {
      const double d = secs - (prev_phases.count(phase) != 0
                                   ? prev_phases.at(phase)
                                   : 0.0);
      if (std::abs(d) > std::abs(mover_delta)) {
        mover_delta = d;
        mover = phase;
      }
    }
    char delta[32], mover_buf[96];
    std::snprintf(delta, sizeof delta, "%+.2f%%", delta_pct);
    std::snprintf(mover_buf, sizeof mover_buf, "%s (%+.2f us)", mover.c_str(),
                  mover_delta * 1e6);
    t.add_row({p->latest->key.str(),
               util::fmt_double(p->prev->seconds * 1e6, 1),
               util::fmt_double(p->latest->seconds * 1e6, 1), delta,
               mover_buf,
               (p->prev->label.empty() ? "-" : p->prev->label) + " -> " +
                   (p->latest->label.empty() ? "-" : p->latest->label)});
  }
  t.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Split "mgs_perf <subcommand> [operands] --flags" by hand: util::Cli
    // rejects positional arguments, so the leading non-flag words are
    // peeled off before it sees argv.
    std::vector<std::string> pos;
    std::vector<char*> flags;
    flags.push_back(argv[0]);
    bool flags_started = false;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (!flags_started && a.rfind("--", 0) != 0) {
        pos.push_back(a);
      } else {
        flags_started = true;
        flags.push_back(argv[i]);
      }
    }
    util::Cli cli(static_cast<int>(flags.size()), flags.data());
    if (pos.empty()) {
      return usage(cli.help_requested() ? 0 : 2);
    }
    if (pos[0] == "diff") {
      MGS_REQUIRE(pos.size() == 3,
                  "mgs_perf: diff needs exactly two report paths");
      return cmd_diff(pos[1], pos[2], cli);
    }
    if (pos[0] == "history") {
      MGS_REQUIRE(pos.size() == 2,
                  "mgs_perf: history needs a subcommand (append/show/top)");
      if (pos[1] == "append") return cmd_history_append(cli);
      if (pos[1] == "show") return cmd_history_show(cli);
      if (pos[1] == "top") return cmd_history_top(cli);
      throw util::Error("mgs_perf: unknown history subcommand '" + pos[1] +
                        "'");
    }
    std::fprintf(stderr, "mgs_perf: unknown command '%s'\n", pos[0].c_str());
    return usage(2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mgs_perf: %s\n", e.what());
    return 1;
  }
}
