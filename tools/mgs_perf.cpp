/// mgs_perf: cross-run performance comparison (docs/observability.md).
///
///   mgs_perf diff BASE.json CUR.json [--top N] [--json OUT]
///       differential critical-path attribution between two run-reports:
///       a ranked "what got slower and where" table whose rows telescope
///       exactly to the makespan delta, with structural changes (plan
///       shape, wave count, resumed stages) flagged separately.
///   mgs_perf history append --report R.json --label L
///              [--pipeline P] [--g G] [--file F]
///       append one run-report to the NDJSON history store.
///   mgs_perf history record --executor E --label L --seconds S
///              [--dtype D] [--op O] [--pipeline P] [--n N] [--g G]
///              [--devices D] [--payload-bytes B]
///              [--breakdown a=1.5,b=2] [--file F]
///       append a raw entry without a run-report -- pseudo-keys like the
///       nightly chaos campaign's wall time ride the same store.
///   mgs_perf history show [--file F]
///       per-configuration p50/p95/max summaries (deduped by (key,
///       label), keys sorted lexicographically -- output is stable).
///   mgs_perf history top [--file F] [--top N]
///       the configurations whose latest run regressed the most vs their
///       previous run, with the stage that moved the most.
///   mgs_perf history compact [--file F]
///       rewrite the store deduped by (key, label), latest entry wins --
///       run after merging a restored CI history before re-uploading.
///   mgs_perf trend [--file F] [--window N] [--min-effect-pct P]
///              [--mad-k K] [--ack L1,L2] [--ack-file F] [--json OUT]
///       change-point detection over each key's label-ordered series;
///       exits non-zero when any regression step is unacknowledged (the
///       longitudinal CI gate).
///   mgs_perf dashboard [--out F.html] [--title T] [trend flags]
///       the self-contained HTML trend dashboard (sparklines, p50/p95
///       bands, change-point markers, embedded diff tables).
///
/// The subcommand and its file operands are positional; util::Cli parses
/// the remaining --flags.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "mgs/obs/diff.hpp"
#include "mgs/obs/history.hpp"
#include "mgs/obs/report.hpp"
#include "mgs/obs/trend.hpp"
#include "mgs/util/check.hpp"
#include "mgs/util/cli.hpp"
#include "mgs/util/table.hpp"

namespace {

using namespace mgs;

constexpr const char* kDefaultHistory = "bench_results/history.ndjson";
constexpr const char* kDefaultAckFile = "bench_results/history_ack.txt";

int usage(int status) {
  std::fprintf(
      stderr,
      "usage: mgs_perf diff BASE.json CUR.json [--top N] [--json OUT]\n"
      "       mgs_perf history append --report R.json --label L\n"
      "                [--pipeline P] [--g G] [--file F]\n"
      "       mgs_perf history record --executor E --label L --seconds S\n"
      "                [--breakdown a=1.5,b=2] [--file F] [...]\n"
      "       mgs_perf history show [--file F]\n"
      "       mgs_perf history top [--file F] [--top N]\n"
      "       mgs_perf history compact [--file F]\n"
      "       mgs_perf trend [--file F] [--window N] [--min-effect-pct P]\n"
      "                [--mad-k K] [--ack L1,L2] [--ack-file F] "
      "[--json OUT]\n"
      "       mgs_perf dashboard [--out F.html] [--title T] "
      "[trend flags]\n");
  return status;
}

int cmd_diff(const std::string& base_path, const std::string& cur_path,
             util::Cli& cli) {
  cli.describe("top", "show only the N largest attribution rows (0 = all)");
  cli.describe("json", "also write the machine-readable diff here");
  cli.reject_unknown();
  const auto base = obs::load_run_report(base_path);
  const auto cur = obs::load_run_report(cur_path);
  const auto d = obs::diff_reports(base, cur);
  std::printf("baseline: %s\ncurrent:  %s\n\n%s", base_path.c_str(),
              cur_path.c_str(),
              obs::format_diff(
                  d, static_cast<std::size_t>(cli.get_int("top", 0)))
                  .c_str());
  const std::string out = cli.get_string("json", "");
  if (!out.empty()) {
    std::ofstream os(out);
    MGS_REQUIRE(os.good(), "mgs_perf: cannot open " + out);
    obs::write_diff_json(os, d);
    std::printf("\nwrote %s\n", out.c_str());
  }
  return 0;
}

int cmd_history_append(util::Cli& cli) {
  cli.describe("report", "run-report JSON to append (required)");
  cli.describe("label", "entry label, e.g. the git sha (required)");
  cli.describe("pipeline", "pipeline the run used: auto/sync/overlap");
  cli.describe("g", "problems in the batch (the report header omits G)");
  cli.describe("file", "history store path (default bench_results/"
                       "history.ndjson)");
  cli.reject_unknown();
  const std::string report = cli.get_string("report", "");
  const std::string label = cli.get_string("label", "");
  MGS_REQUIRE(!report.empty() && !label.empty(),
              "mgs_perf: history append needs --report and --label");
  const obs::RunHistory hist(cli.get_string("file", kDefaultHistory));
  const auto entry = obs::entry_from_report(
      obs::load_run_report(report), label,
      cli.get_string("pipeline", "auto"), cli.get_int("g", 0));
  hist.append(entry);
  std::printf("appended [%s] %s  makespan %.3f us -> %s\n", label.c_str(),
              entry.key.str().c_str(), entry.seconds * 1e6,
              hist.path().c_str());
  return 0;
}

/// "a=1.5,b=2" -> ordered (name, value) pairs.
std::vector<std::pair<std::string, double>> parse_breakdown(
    const std::string& spec) {
  std::vector<std::pair<std::string, double>> out;
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    MGS_REQUIRE(eq != std::string::npos && eq > 0,
                "mgs_perf: --breakdown items must be name=value, got '" +
                    item + "'");
    out.emplace_back(item.substr(0, eq), std::stod(item.substr(eq + 1)));
  }
  return out;
}

int cmd_history_record(util::Cli& cli) {
  cli.describe("executor", "key executor / pseudo-key name (required)");
  cli.describe("label", "entry label, e.g. the git sha (required)");
  cli.describe("seconds", "measured seconds, e.g. wall time (required)");
  cli.describe("dtype", "key dtype (default i32)");
  cli.describe("op", "key op (default plus)");
  cli.describe("pipeline", "key pipeline (default auto)");
  cli.describe("n", "key problem size (default 0)");
  cli.describe("g", "key batch size (default 0)");
  cli.describe("devices", "key device count (default 0)");
  cli.describe("payload-bytes", "payload bytes (default 0)");
  cli.describe("breakdown",
               "extra name=value pairs stored as the breakdown, e.g. "
               "scenarios=10000,violations=0");
  cli.describe("file", "history store path");
  cli.reject_unknown();
  obs::HistoryEntry e;
  e.key.executor = cli.get_string("executor", "");
  e.label = cli.get_string("label", "");
  e.seconds = cli.get_double("seconds", -1.0);
  MGS_REQUIRE(!e.key.executor.empty() && !e.label.empty() && e.seconds >= 0.0,
              "mgs_perf: history record needs --executor, --label and a "
              "non-negative --seconds");
  e.key.dtype = cli.get_string("dtype", "i32");
  e.key.op = cli.get_string("op", "plus");
  e.key.pipeline = cli.get_string("pipeline", "auto");
  e.key.n = static_cast<std::uint64_t>(cli.get_int("n", 0));
  e.key.g = cli.get_int("g", 0);
  e.key.devices = static_cast<int>(cli.get_int("devices", 0));
  e.payload_bytes =
      static_cast<std::uint64_t>(cli.get_int("payload-bytes", 0));
  e.breakdown = parse_breakdown(cli.get_string("breakdown", ""));
  const obs::RunHistory hist(cli.get_string("file", kDefaultHistory));
  hist.append(e);
  std::printf("recorded [%s] %s  %.3f s -> %s\n", e.label.c_str(),
              e.key.str().c_str(), e.seconds, hist.path().c_str());
  return 0;
}

int cmd_history_show(util::Cli& cli) {
  cli.describe("file", "history store path");
  cli.reject_unknown();
  const obs::RunHistory hist(cli.get_string("file", kDefaultHistory));
  const auto entries = obs::dedup_entries(hist.load());
  if (entries.empty()) {
    std::printf("history: no entries in %s\n", hist.path().c_str());
    return 0;
  }
  std::printf("history: %zu entries (deduped by key+label) in %s\n\n",
              entries.size(), hist.path().c_str());
  std::printf("%s",
              obs::RunHistory::format_summary(
                  obs::RunHistory::summarize(entries))
                  .c_str());
  return 0;
}

int cmd_history_top(util::Cli& cli) {
  cli.describe("file", "history store path");
  cli.describe("top", "configurations to show (default 10)");
  cli.reject_unknown();
  const obs::RunHistory hist(cli.get_string("file", kDefaultHistory));
  // Dedup first: re-runs of a (key, label) pair collapse to the latest
  // entry and the label sequence keeps first-seen order, so "previous"
  // and "latest" mean commits, not appends.
  const auto entries = obs::dedup_entries(hist.load());
  // Latest vs previous entry per key: the "what got slower" ranking, with
  // the breakdown phase that moved the most as the where.
  struct Pair {
    const obs::HistoryEntry* prev = nullptr;
    const obs::HistoryEntry* latest = nullptr;
  };
  std::map<std::string, Pair> by_key;
  for (const auto& e : entries) {
    Pair& p = by_key[e.key.str()];
    p.prev = p.latest;
    p.latest = &e;
  }
  struct Row {
    const Pair* p;
    double delta_pct;
  };
  std::vector<Row> rows;
  for (const auto& [key, p] : by_key) {
    if (p.prev == nullptr || p.prev->seconds <= 0.0) continue;
    rows.push_back({&p, (p.latest->seconds / p.prev->seconds - 1.0) * 100.0});
  }
  // Worst regression first; ties keep the map's lexicographic key order
  // (stable sort), so equal-delta output never reshuffles between runs.
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.delta_pct > b.delta_pct;
  });
  const auto top = static_cast<std::size_t>(cli.get_int("top", 10));
  if (rows.empty()) {
    std::printf("history: need at least two runs of a configuration for a "
                "regression ranking (%zu entries in %s)\n",
                entries.size(), hist.path().c_str());
    return 0;
  }
  util::Table t({"config", "prev(us)", "latest(us)", "delta", "slowest mover",
                 "labels"});
  for (std::size_t i = 0; i < std::min(top, rows.size()); ++i) {
    const auto& [p, delta_pct] = rows[i];
    // The breakdown phase with the largest absolute drift.
    std::map<std::string, double> prev_phases(p->prev->breakdown.begin(),
                                              p->prev->breakdown.end());
    std::string mover = "-";
    double mover_delta = 0.0;
    for (const auto& [phase, secs] : p->latest->breakdown) {
      const double d = secs - (prev_phases.count(phase) != 0
                                   ? prev_phases.at(phase)
                                   : 0.0);
      if (std::abs(d) > std::abs(mover_delta)) {
        mover_delta = d;
        mover = phase;
      }
    }
    char delta[32], mover_buf[96];
    std::snprintf(delta, sizeof delta, "%+.2f%%", delta_pct);
    std::snprintf(mover_buf, sizeof mover_buf, "%s (%+.2f us)", mover.c_str(),
                  mover_delta * 1e6);
    t.add_row({p->latest->key.str(),
               util::fmt_double(p->prev->seconds * 1e6, 1),
               util::fmt_double(p->latest->seconds * 1e6, 1), delta,
               mover_buf,
               (p->prev->label.empty() ? "-" : p->prev->label) + " -> " +
                   (p->latest->label.empty() ? "-" : p->latest->label)});
  }
  t.print(std::cout);
  return 0;
}

int cmd_history_compact(util::Cli& cli) {
  cli.describe("file", "history store path to rewrite in place");
  cli.reject_unknown();
  const std::string path = cli.get_string("file", kDefaultHistory);
  const obs::RunHistory hist(path);
  const auto entries = hist.load();
  const auto deduped = obs::dedup_entries(entries);
  const std::string tmp = path + ".compact.tmp";
  std::filesystem::remove(tmp);
  const obs::RunHistory out(tmp);
  for (const auto& e : deduped) out.append(e);
  std::filesystem::rename(tmp, path);
  std::printf("compacted %s: %zu -> %zu entries\n", path.c_str(),
              entries.size(), deduped.size());
  return 0;
}

/// Shared trend-analysis flags + pipeline for `trend` and `dashboard`.
struct TrendSetup {
  obs::TrendOptions opt;
  std::vector<obs::KeyTrend> trends;
  std::string file;
};

void describe_trend_flags(util::Cli& cli) {
  cli.describe("file", "history store path (default bench_results/"
                       "history.ndjson)");
  cli.describe("window", "points per side of the detection split "
                         "(default 5)");
  cli.describe("min-effect-pct", "minimum relative step to flag, percent "
                                 "(default 10)");
  cli.describe("mad-k", "noise floor multiplier over the trailing MAD "
                        "(default 4)");
  cli.describe("ack", "comma-separated labels whose change-points are "
                      "acknowledged (never gate)");
  cli.describe("ack-file", "file of acknowledged labels, one per line, "
                           "'#' comments (default bench_results/"
                           "history_ack.txt when present)");
}

std::vector<std::string> load_acks(const util::Cli& cli) {
  std::vector<std::string> acks;
  std::istringstream list(cli.get_string("ack", ""));
  std::string item;
  while (std::getline(list, item, ',')) {
    if (!item.empty()) acks.push_back(item);
  }
  const std::string default_ack =
      std::filesystem::exists(kDefaultAckFile) ? kDefaultAckFile : "";
  const std::string ack_file = cli.get_string("ack-file", default_ack);
  if (!ack_file.empty()) {
    std::ifstream is(ack_file);
    MGS_REQUIRE(is.good() || ack_file == default_ack,
                "mgs_perf: cannot open ack file " + ack_file);
    std::string line;
    while (std::getline(is, line)) {
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      // Trim whitespace; what remains is one acknowledged label.
      const auto b = line.find_first_not_of(" \t\r");
      if (b == std::string::npos) continue;
      const auto e = line.find_last_not_of(" \t\r");
      acks.push_back(line.substr(b, e - b + 1));
    }
  }
  return acks;
}

TrendSetup analyze_from_cli(const util::Cli& cli) {
  TrendSetup s;
  s.file = cli.get_string("file", kDefaultHistory);
  s.opt.window = static_cast<int>(cli.get_int("window", 5));
  s.opt.min_effect = cli.get_double("min-effect-pct", 10.0) / 100.0;
  s.opt.mad_k = cli.get_double("mad-k", 4.0);
  MGS_REQUIRE(s.opt.window >= 1 && s.opt.min_effect >= 0.0 &&
                  s.opt.mad_k >= 0.0,
              "mgs_perf: trend options must be non-negative (window >= 1)");
  s.trends = obs::analyze_trends(obs::RunHistory(s.file).load(), s.opt);
  obs::acknowledge(s.trends, load_acks(cli));
  return s;
}

int cmd_trend(util::Cli& cli) {
  describe_trend_flags(cli);
  cli.describe("json", "also write the machine-readable trend report "
                       "here");
  cli.reject_unknown();
  const TrendSetup s = analyze_from_cli(cli);
  if (s.trends.empty()) {
    std::printf("trend: no entries in %s\n", s.file.c_str());
    return 0;
  }
  std::printf("trend: %zu configs in %s\n\n%s", s.trends.size(),
              s.file.c_str(), obs::format_trends(s.trends, s.opt).c_str());
  const std::string out = cli.get_string("json", "");
  if (!out.empty()) {
    std::ofstream os(out);
    MGS_REQUIRE(os.good(), "mgs_perf: cannot open " + out);
    obs::write_trend_json(os, s.trends, s.opt);
    std::printf("wrote %s\n", out.c_str());
  }
  return obs::has_unacknowledged_regression(s.trends) ? 1 : 0;
}

int cmd_dashboard(util::Cli& cli) {
  describe_trend_flags(cli);
  cli.describe("out", "output HTML path (default bench_results/"
                      "dashboard.html)");
  cli.describe("title", "dashboard title");
  cli.reject_unknown();
  const TrendSetup s = analyze_from_cli(cli);
  const std::string out =
      cli.get_string("out", "bench_results/dashboard.html");
  const auto parent = std::filesystem::path(out).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream os(out);
  MGS_REQUIRE(os.good(), "mgs_perf: cannot open " + out);
  obs::write_dashboard(os, s.trends, s.opt,
                       cli.get_string("title", "mgs perf trends"));
  MGS_REQUIRE(os.good(), "mgs_perf: write failed for " + out);
  std::size_t cps = 0;
  for (const auto& t : s.trends) cps += t.changes.size();
  std::printf("dashboard: %zu configs, %zu change-point(s) -> %s\n",
              s.trends.size(), cps, out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Split "mgs_perf <subcommand> [operands] --flags" by hand: util::Cli
    // rejects positional arguments, so the leading non-flag words are
    // peeled off before it sees argv.
    std::vector<std::string> pos;
    std::vector<char*> flags;
    flags.push_back(argv[0]);
    bool flags_started = false;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (!flags_started && a.rfind("--", 0) != 0) {
        pos.push_back(a);
      } else {
        flags_started = true;
        flags.push_back(argv[i]);
      }
    }
    util::Cli cli(static_cast<int>(flags.size()), flags.data());
    if (pos.empty()) {
      return usage(cli.help_requested() ? 0 : 2);
    }
    if (pos[0] == "diff") {
      MGS_REQUIRE(pos.size() == 3,
                  "mgs_perf: diff needs exactly two report paths");
      return cmd_diff(pos[1], pos[2], cli);
    }
    if (pos[0] == "trend") {
      MGS_REQUIRE(pos.size() == 1, "mgs_perf: trend takes flags only");
      return cmd_trend(cli);
    }
    if (pos[0] == "dashboard") {
      MGS_REQUIRE(pos.size() == 1, "mgs_perf: dashboard takes flags only");
      return cmd_dashboard(cli);
    }
    if (pos[0] == "history") {
      MGS_REQUIRE(pos.size() == 2,
                  "mgs_perf: history needs a subcommand "
                  "(append/record/show/top/compact)");
      if (pos[1] == "append") return cmd_history_append(cli);
      if (pos[1] == "record") return cmd_history_record(cli);
      if (pos[1] == "show") return cmd_history_show(cli);
      if (pos[1] == "top") return cmd_history_top(cli);
      if (pos[1] == "compact") return cmd_history_compact(cli);
      throw util::Error("mgs_perf: unknown history subcommand '" + pos[1] +
                        "'");
    }
    std::fprintf(stderr, "mgs_perf: unknown command '%s'\n", pos[0].c_str());
    return usage(2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mgs_perf: %s\n", e.what());
    return 2;
  }
}
