/// mgs_trace: inspect exported mgs JSON run-reports (docs/observability.md).
///
///   mgs_trace --in report.json              print the run summary, phase
///                                           breakdown and critical-path
///                                           attribution tables
///   mgs_trace --in report.json --perfetto t.json   re-export the spans as a
///                                           Chrome/Perfetto trace
///   mgs_trace --in report.json --prometheus m.prom re-export the metrics
///   mgs_trace --demo --out DIR              run a traced 4-GPU Scan-MPS in
///                                           process, write run_report.json,
///                                           trace.perfetto.json and
///                                           metrics.prom into DIR, then load
///                                           the report back and print it
///
/// The critical path is always re-derived from the spans on load, so the
/// printed attribution agrees with the analyzer even if the file's
/// critical_path section was edited or produced by an older build.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "mgs/core/api.hpp"
#include "mgs/obs/report.hpp"
#include "mgs/util/cli.hpp"
#include "mgs/util/random.hpp"
#include "mgs/util/table.hpp"

namespace {

using namespace mgs;

void print_report(const obs::RunReport& rep) {
  const auto& run = rep.run;
  std::printf("run: %s  n=%llu  devices=%d  makespan=%.3f us  payload=%llu B\n",
              run.executor.empty() ? "(unnamed)" : run.executor.c_str(),
              static_cast<unsigned long long>(run.n), run.devices,
              run.seconds * 1e6,
              static_cast<unsigned long long>(run.payload_bytes));
  if (run.seconds > 0.0 && run.payload_bytes > 0) {
    std::printf("throughput: %.2f GB/s (simulated)\n",
                static_cast<double>(run.payload_bytes) / run.seconds / 1e9);
  }

  if (!run.breakdown.empty()) {
    std::printf("\nphase breakdown (RunResult::breakdown):\n");
    util::Table table({"phase", "us", "% of makespan"});
    for (const auto& [phase, seconds] : run.breakdown) {
      table.add_row({phase, util::fmt_double(seconds * 1e6, 1),
                     util::fmt_double(
                         run.seconds > 0.0 ? seconds / run.seconds * 100.0
                                           : 0.0,
                         1)});
    }
    table.print(std::cout);
  }

  if (!run.fault_counters.empty()) {
    std::printf("\nfault counters:\n");
    for (const auto& [key, value] : run.fault_counters) {
      std::printf("  %-24s %llu\n", key.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }

  std::printf("\nrecorded: %zu spans, %zu metric series\n", rep.spans.size(),
              rep.metrics.size());
  std::printf("\n%s", obs::format_report(rep.critical_path).c_str());
}

/// Run a traced 4-GPU Scan-MPS and leave the three artifacts in `dir`.
int run_demo(const std::string& dir) {
  std::filesystem::create_directories(dir);

  obs::TraceSession ts;
  auto cluster = topo::tsubame_kfc_cluster(1);
  core::ScanContext ctx(cluster);
  core::ExecutorParams params;
  params.w = 4;
  auto ex = core::make_executor("Scan-MPS", ctx, params);

  const std::int64_t n = 1 << 18;
  const std::int64_t g = 4;
  const auto data =
      util::random_i32(static_cast<std::size_t>(n * g), 20180521);
  std::vector<int> out(static_cast<std::size_t>(n * g));
  ex->prepare(n, g);
  const auto r = ex->run(std::span<const int>(data), std::span<int>(out),
                         core::ScanKind::kInclusive);

  const auto info = core::make_run_info(ex->name(), n, params.w, r);
  const std::string report_path = dir + "/run_report.json";
  core::write_run_report_file(report_path, info, ts);
  core::write_chrome_trace_file(dir + "/trace.perfetto.json", ts);
  core::write_prometheus_file(dir + "/metrics.prom", ts);
  std::printf("demo: wrote %s, trace.perfetto.json, metrics.prom\n\n",
              report_path.c_str());

  // Round-trip through the file so the demo exercises the loader too.
  print_report(obs::load_run_report(report_path));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Cli cli(argc, argv);
    cli.describe("in", "run-report JSON to load and print");
    cli.describe("perfetto", "also write a Chrome/Perfetto trace here");
    cli.describe("prometheus", "also write Prometheus text metrics here");
    cli.describe("demo", "run a traced 4-GPU Scan-MPS demo in process");
    cli.describe("out", "output directory for --demo (default obs_sample)");
    if (cli.help_requested()) {
      cli.print_help(
          "Load an mgs run-report and print its critical-path attribution.");
      return 0;
    }
    cli.reject_unknown();

    if (cli.get_bool("demo", false)) {
      return run_demo(cli.get_string("out", "obs_sample"));
    }

    const std::string in = cli.get_string("in", "");
    if (in.empty()) {
      std::fprintf(stderr,
                   "mgs_trace: pass --in <run_report.json> or --demo "
                   "(--help for usage)\n");
      return 2;
    }
    const auto rep = obs::load_run_report(in);
    print_report(rep);
    const std::string perfetto = cli.get_string("perfetto", "");
    if (!perfetto.empty()) {
      std::ofstream os(perfetto);
      MGS_REQUIRE(os.good(), "mgs_trace: cannot open " + perfetto);
      obs::write_chrome_trace(os, rep.spans, rep.metrics);
      std::printf("\nwrote %s\n", perfetto.c_str());
    }
    const std::string prom = cli.get_string("prometheus", "");
    if (!prom.empty()) {
      std::ofstream os(prom);
      MGS_REQUIRE(os.good(), "mgs_trace: cannot open " + prom);
      obs::write_prometheus(os, rep.metrics);
      std::printf("wrote %s\n", prom.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mgs_trace: %s\n", e.what());
    return 1;
  }
}
