# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-review/examples/quickstart" "--n" "65536" "--g" "4")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stream_compaction "/root/repo/build-review/examples/stream_compaction" "--n" "262144")
set_tests_properties(example_stream_compaction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_radix_sort "/root/repo/build-review/examples/radix_sort" "--n" "65536" "--bits" "8")
set_tests_properties(example_radix_sort PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_summed_area_table "/root/repo/build-review/examples/summed_area_table" "--width" "256" "--height" "128")
set_tests_properties(example_summed_area_table PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cluster_explorer "/root/repo/build-review/examples/cluster_explorer" "--cluster" "nodes=2 networks=2 gpus=2")
set_tests_properties(example_cluster_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_histogram_equalization "/root/repo/build-review/examples/histogram_equalization" "--pixels" "131072")
set_tests_properties(example_histogram_equalization PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
