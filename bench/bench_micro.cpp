/// bench_micro: google-benchmark microbenchmarks of the substrate and the
/// skeletons. These measure *host wall-clock* of the functional simulator
/// (useful for keeping the simulator itself fast); the figure harnesses
/// report *simulated* device time. Custom counters expose the simulated
/// throughput per iteration.

#include <benchmark/benchmark.h>

#include "mgs/baselines/cub.hpp"
#include "mgs/core/scan_sp.hpp"
#include "mgs/core/tuning.hpp"
#include "mgs/simt/warp.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace st = mgs::simt;

namespace {

void BM_WarpScanInclusive(benchmark::State& state) {
  st::WarpReg<int> x;
  for (int l = 0; l < st::kWarpSize; ++l) x[l] = l;
  mgs::sim::KernelStats stats;
  for (auto _ : state) {
    auto y = x;
    st::warp_scan_inclusive(y, mc::Plus<int>{}, stats);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * st::kWarpSize);
}
BENCHMARK(BM_WarpScanInclusive);

void BM_ShflUp(benchmark::State& state) {
  st::WarpReg<int> x;
  x.fill(3);
  mgs::sim::KernelStats stats;
  for (auto _ : state) {
    auto y = st::shfl_up(x, static_cast<int>(state.range(0)), stats);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_ShflUp)->Arg(1)->Arg(16);

void BM_ScanSpSimulated(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  st::Device dev(0, mgs::sim::k80_spec());
  auto plan = mc::derive_spl(dev.spec(), 4).plan;
  plan.s13.k = 4;
  auto in = dev.alloc<int>(n);
  auto out = dev.alloc<int>(n);
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n), 1);
  std::copy(data.begin(), data.end(), in.host_span().begin());
  double simulated = 0.0;
  for (auto _ : state) {
    simulated = mc::scan_sp<int>(dev, in, out, n, 1, plan,
                                 mc::ScanKind::kInclusive)
                    .seconds;
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["simulated_GBps"] =
      2.0 * static_cast<double>(n) * 4.0 / simulated / 1e9;
}
BENCHMARK(BM_ScanSpSimulated)->Arg(1 << 16)->Arg(1 << 20);

void BM_CubModelSimulated(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  st::Device dev(0, mgs::sim::k80_spec());
  auto in = dev.alloc<std::int32_t>(n);
  auto out = dev.alloc<std::int32_t>(n);
  double simulated = 0.0;
  for (auto _ : state) {
    simulated = mgs::baselines::cub_scan<std::int32_t>(
                    dev, in, out, 0, n, mc::ScanKind::kInclusive)
                    .seconds;
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["simulated_GBps"] =
      2.0 * static_cast<double>(n) * 4.0 / simulated / 1e9;
}
BENCHMARK(BM_CubModelSimulated)->Arg(1 << 16)->Arg(1 << 20);

void BM_LaunchOverheadHost(benchmark::State& state) {
  st::Device dev(0, mgs::sim::k80_spec());
  auto buf = dev.alloc<int>(1 << 12);
  auto view = buf.view();
  st::LaunchConfig cfg;
  cfg.grid = {32, 1, 1};
  cfg.block = {128, 1, 1};
  for (auto _ : state) {
    st::launch(dev, cfg, [&](st::BlockCtx& ctx) {
      view.store(ctx.block_idx().x, ctx.block_idx().x, ctx.stats());
    });
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_LaunchOverheadHost);

}  // namespace

BENCHMARK_MAIN();
