/// bench_micro: google-benchmark microbenchmarks of the substrate and the
/// skeletons, plus the repeated-invocation comparison between the legacy
/// per-call convention (re-tune + re-allocate every call) and the
/// ScanContext/ScanExecutor convention (plan cache + workspace pool).
/// These measure *host wall-clock* of the functional simulator (useful
/// for keeping the simulator itself fast); the figure harnesses report
/// *simulated* device time. The repeated-invocation results are also
/// written to bench_results/bench_micro.json, together with a "trace"
/// section summarizing a traced Scan-MPS run whose full JSON run-report
/// lands next to it (override the path with --trace FILE; render with
/// `mgs_trace --in FILE`).

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <fstream>

#include "common.hpp"
#include "mgs/baselines/cub.hpp"
#include "mgs/core/scan_sp.hpp"
#include "mgs/core/tuning.hpp"
#include "mgs/simt/warp.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace st = mgs::simt;

namespace {

void BM_WarpScanInclusive(benchmark::State& state) {
  st::WarpReg<int> x;
  for (int l = 0; l < st::kWarpSize; ++l) x[l] = l;
  mgs::sim::KernelStats stats;
  for (auto _ : state) {
    auto y = x;
    st::warp_scan_inclusive(y, mc::Plus<int>{}, stats);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * st::kWarpSize);
}
BENCHMARK(BM_WarpScanInclusive);

void BM_ShflUp(benchmark::State& state) {
  st::WarpReg<int> x;
  x.fill(3);
  mgs::sim::KernelStats stats;
  for (auto _ : state) {
    auto y = st::shfl_up(x, static_cast<int>(state.range(0)), stats);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_ShflUp)->Arg(1)->Arg(16);

void BM_ScanSpSimulated(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  st::Device dev(0, mgs::sim::k80_spec());
  auto plan = mc::derive_spl(dev.spec(), 4).plan;
  plan.s13.k = 4;
  auto in = dev.alloc<int>(n);
  auto out = dev.alloc<int>(n);
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n), 1);
  std::copy(data.begin(), data.end(), in.host_span().begin());
  double simulated = 0.0;
  for (auto _ : state) {
    simulated = mc::scan_sp<int>(dev, in, out, n, 1, plan,
                                 mc::ScanKind::kInclusive)
                    .seconds;
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["simulated_GBps"] =
      2.0 * static_cast<double>(n) * 4.0 / simulated / 1e9;
}
BENCHMARK(BM_ScanSpSimulated)->Arg(1 << 16)->Arg(1 << 20);

void BM_CubModelSimulated(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  st::Device dev(0, mgs::sim::k80_spec());
  auto in = dev.alloc<std::int32_t>(n);
  auto out = dev.alloc<std::int32_t>(n);
  double simulated = 0.0;
  for (auto _ : state) {
    simulated = mgs::baselines::cub_scan<std::int32_t>(
                    dev, in, out, 0, n, mc::ScanKind::kInclusive)
                    .seconds;
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["simulated_GBps"] =
      2.0 * static_cast<double>(n) * 4.0 / simulated / 1e9;
}
BENCHMARK(BM_CubModelSimulated)->Arg(1 << 16)->Arg(1 << 20);

void BM_LaunchOverheadHost(benchmark::State& state) {
  st::Device dev(0, mgs::sim::k80_spec());
  auto buf = dev.alloc<int>(1 << 12);
  auto view = buf.view();
  st::LaunchConfig cfg;
  cfg.grid = {32, 1, 1};
  cfg.block = {128, 1, 1};
  for (auto _ : state) {
    st::launch(dev, cfg, [&](st::BlockCtx& ctx) {
      view.store(ctx.block_idx().x, ctx.block_idx().x, ctx.stats());
    });
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_LaunchOverheadHost);

// ------------------------------------------------------------------------
// Repeated-invocation comparison: the unified-API acceptance measurement.
// Call the same scan `kIters` times; the per-call path re-derives its plan
// and re-allocates buffers every time (the pre-refactor convention), the
// context path prepares once and reuses plan + pooled workspaces.

constexpr int kIters = 6;

struct PathTiming {
  double first_ms = 0.0;
  double mean_subsequent_ms = 0.0;
  double amortized_gbps = 0.0;  ///< payload / mean subsequent host second
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

PathTiming time_calls(const std::function<void()>& call,
                      std::uint64_t payload_bytes) {
  PathTiming t;
  double sum_rest = 0.0;
  for (int i = 0; i < kIters; ++i) {
    const double t0 = now_ms();
    call();
    const double ms = now_ms() - t0;
    if (i == 0) {
      t.first_ms = ms;
    } else {
      sum_rest += ms;
    }
  }
  t.mean_subsequent_ms = sum_rest / (kIters - 1);
  t.amortized_gbps =
      static_cast<double>(payload_bytes) / (t.mean_subsequent_ms / 1e3) / 1e9;
  return t;
}

struct RepeatedCase {
  std::string name;
  std::string executor;
  mc::ExecutorParams params;
  std::int64_t n = 0;
  std::int64_t g = 0;
  PathTiming per_call;
  PathTiming context;
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t workspace_reuses = 0;
  std::uint64_t device_allocations = 0;
};

RepeatedCase run_repeated_case(std::string name, std::string executor,
                               mc::ExecutorParams params, std::int64_t n,
                               std::int64_t g,
                               std::span<const int> data) {
  RepeatedCase c;
  c.name = std::move(name);
  c.executor = std::move(executor);
  c.params = params;
  c.n = n;
  c.g = g;
  const std::uint64_t payload =
      2ull * static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(g) *
      sizeof(int);

  // Legacy per-call convention: plan derivation + fresh device/cluster +
  // allocations on every invocation.
  if (c.executor == "Scan-SP") {
    c.per_call = time_calls(
        [&] {
          const auto plan = mgs::bench::tuned_plan(n, g, 1);
          mgs::bench::sp_run(data, n, g, plan);
        },
        payload);
  } else {
    c.per_call = time_calls(
        [&] {
          const auto plan =
              mgs::bench::tuned_plan_multi(n / c.params.w, g, c.params.w);
          mgs::bench::mps_run(c.params.w, data, n, g, plan);
        },
        payload);
  }

  // Unified-API convention: one context, executor prepared on first call.
  mgs::bench::BenchContext bc(1);
  c.context = time_calls(
      [&] { bc.run(c.executor, c.params, data, n, g); }, payload);
  c.plan_cache_hits = bc.ctx().plan_cache_hits();
  c.workspace_reuses = bc.ctx().workspace().reuses();
  c.device_allocations = bc.ctx().workspace().device_allocations();
  return c;
}

// ------------------------------------------------------------------------
// Resilience overhead: the same scan through the unified API, healthy vs
// with a --faults schedule attached, compared on *simulated* seconds (the
// retries/reroutes/backoffs are modeled time). Reported in the JSON.

struct ResilienceCase {
  std::string executor;
  std::int64_t n = 0;
  std::int64_t g = 0;
  double healthy_s = 0.0;   ///< simulated seconds, no injector
  double faulted_s = 0.0;   ///< simulated seconds under the schedule
  std::string error;        ///< typed error, if the run could not complete
  mgs::sim::FaultReport report;
};

ResilienceCase run_resilience_case(const std::string& spec,
                                   std::string executor,
                                   mc::ExecutorParams params, std::int64_t n,
                                   std::int64_t g, std::span<const int> data) {
  ResilienceCase c;
  c.executor = std::move(executor);
  c.n = n;
  c.g = g;
  mgs::bench::BenchContext healthy(1);
  c.healthy_s = healthy.run(c.executor, params, data, n, g).seconds;
  mgs::bench::BenchContext faulted(1);
  faulted.attach_faults(spec);
  try {
    const auto r = faulted.run(c.executor, params, data, n, g);
    c.faulted_s = r.seconds;
    c.report = r.faults;
  } catch (const mgs::util::Error& e) {
    c.error = e.what();
  }
  return c;
}

// ------------------------------------------------------------------------
// Traced representative run: one Scan-MPS invocation through the unified
// API under an obs::TraceSession. The full run-report goes to its own
// file; bench_micro.json gets a "trace" section summarizing it.

struct TraceSummary {
  std::string report_path;
  std::size_t spans = 0;
  std::size_t metric_series = 0;
  double makespan_s = 0.0;
  mgs::obs::CategorySeconds by_category;
};

TraceSummary run_traced_case(const std::string& trace_path,
                             std::span<const int> data, std::int64_t n,
                             std::int64_t g) {
  TraceSummary s;
  s.report_path = trace_path;
  mgs::obs::TraceSession ts;
  mgs::bench::BenchContext bc(1);
  const auto r = bc.run("Scan-MPS", {.w = 4}, data, n, g);
  mgs::core::write_run_report_file(
      trace_path, mgs::core::make_run_info("Scan-MPS", n, 4, r), ts);
  const auto cp = mgs::obs::analyze_last_run(ts.spans());
  s.spans = ts.size();
  s.metric_series = ts.metrics().snapshot().size();
  s.makespan_s = cp.total_seconds;
  s.by_category = cp.by_category;
  return s;
}

void json_path(std::ostream& os, const char* key, const PathTiming& t) {
  os << "    \"" << key << "\": {\"first_ms\": " << t.first_ms
     << ", \"mean_subsequent_ms\": " << t.mean_subsequent_ms
     << ", \"amortized_gbps\": " << t.amortized_gbps << "}";
}

void write_repeated_report(const std::vector<RepeatedCase>& cases,
                           const std::string& faults_spec,
                           const std::vector<ResilienceCase>& resilience,
                           const TraceSummary& trace) {
  std::filesystem::create_directories("bench_results");
  std::ofstream os("bench_results/bench_micro.json");
  os << "{\n"
     << "  \"bench\": \"bench_micro\",\n"
     << "  \"units\": {\"time\": \"ms host wall-clock\", "
        "\"throughput\": \"GB/s of scan payload per host second\"},\n"
     << "  \"iterations\": " << kIters << ",\n"
     << "  \"repeated_invocation\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    os << "  {\n"
       << "    \"case\": \"" << c.name << "\",\n"
       << "    \"executor\": \"" << c.executor << "\",\n"
       << "    \"n\": " << c.n << ", \"g\": " << c.g << ",\n";
    json_path(os, "per_call", c.per_call);
    os << ",\n";
    json_path(os, "context", c.context);
    os << ",\n"
       << "    \"context_plan_cache_hits\": " << c.plan_cache_hits << ",\n"
       << "    \"context_workspace_reuses\": " << c.workspace_reuses << ",\n"
       << "    \"context_device_allocations\": " << c.device_allocations
       << ",\n"
       << "    \"speedup_subsequent\": "
       << c.per_call.mean_subsequent_ms / c.context.mean_subsequent_ms << "\n"
       << "  }" << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ]";
  if (!resilience.empty()) {
    os << ",\n  \"resilience\": {\n"
       << "    \"spec\": \"" << faults_spec << "\",\n"
       << "    \"units\": {\"time\": \"simulated seconds\"},\n"
       << "    \"cases\": [\n";
    for (std::size_t i = 0; i < resilience.size(); ++i) {
      const auto& c = resilience[i];
      const auto& f = c.report.counters;
      os << "    {\n"
         << "      \"executor\": \"" << c.executor << "\", \"n\": " << c.n
         << ", \"g\": " << c.g << ",\n"
         << "      \"healthy_s\": " << c.healthy_s
         << ", \"faulted_s\": " << c.faulted_s << ", \"overhead_pct\": "
         << (c.error.empty() && c.healthy_s > 0.0
                 ? (c.faulted_s / c.healthy_s - 1.0) * 100.0
                 : 0.0)
         << ",\n"
         << "      \"retries\": " << f.retries
         << ", \"transient_failures\": " << f.transient_failures
         << ", \"timeouts\": " << f.timeouts
         << ", \"corruptions_detected\": " << f.corruptions_detected << ",\n"
         << "      \"rerouted_transfers\": " << f.rerouted_transfers
         << ", \"rerouted_bytes\": " << f.rerouted_bytes
         << ", \"retry_seconds\": " << f.retry_seconds << ",\n"
         << "      \"degraded\": " << (c.report.degraded ? "true" : "false")
         << ", \"degraded_mode\": \"" << c.report.degraded_mode << "\""
         << ", \"error\": \"" << c.error << "\"\n"
         << "    }" << (i + 1 < resilience.size() ? "," : "") << "\n";
    }
    os << "    ]\n  }";
  }
  os << ",\n  \"trace\": {\n"
     << "    \"report\": \"" << trace.report_path << "\",\n"
     << "    \"spans\": " << trace.spans
     << ", \"metric_series\": " << trace.metric_series << ",\n"
     << "    \"critical_path\": {\"makespan_s\": " << trace.makespan_s;
  for (int c = 0; c < mgs::obs::kNumCategories; ++c) {
    os << ", \"" << mgs::obs::to_string(static_cast<mgs::obs::Category>(c))
       << "_s\": " << trace.by_category.seconds[static_cast<std::size_t>(c)];
  }
  os << "}\n  }";
  os << "\n}\n";
}

void report_repeated_invocation(const std::string& faults_spec,
                                const std::string& trace_path) {
  const std::int64_t n = 1 << 20;
  const std::int64_t g = 4;
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(n * g), 42);

  std::vector<RepeatedCase> cases;
  cases.push_back(run_repeated_case("scan_sp_repeated", "Scan-SP", {}, n, g,
                                    data));
  cases.push_back(run_repeated_case("scan_mps_w4_repeated", "Scan-MPS",
                                    {.w = 4}, n, g, data));

  std::vector<ResilienceCase> resilience;
  if (!faults_spec.empty()) {
    resilience.push_back(
        run_resilience_case(faults_spec, "Scan-SP", {}, n, g, data));
    resilience.push_back(
        run_resilience_case(faults_spec, "Scan-MPS", {.w = 4}, n, g, data));
  }

  std::printf(
      "Repeated-invocation comparison (%d calls, n=2^20, g=4; host "
      "wall-clock):\n",
      kIters);
  for (const auto& c : cases) {
    std::printf(
        "  %-22s per-call: first %7.1f ms, then %7.1f ms/call | "
        "context: first %7.1f ms, then %7.1f ms/call | speedup %.2fx\n",
        c.name.c_str(), c.per_call.first_ms, c.per_call.mean_subsequent_ms,
        c.context.first_ms, c.context.mean_subsequent_ms,
        c.per_call.mean_subsequent_ms / c.context.mean_subsequent_ms);
  }
  for (const auto& c : resilience) {
    if (!c.error.empty()) {
      std::printf("  %-22s faults: typed error: %s\n", c.executor.c_str(),
                  c.error.c_str());
    } else {
      std::printf(
          "  %-22s faults: %.3f ms -> %.3f ms simulated (+%.1f%%), "
          "%llu retries\n",
          c.executor.c_str(), c.healthy_s * 1e3, c.faulted_s * 1e3,
          (c.faulted_s / c.healthy_s - 1.0) * 100.0,
          static_cast<unsigned long long>(c.report.counters.retries));
    }
  }
  std::filesystem::create_directories("bench_results");
  const auto trace = run_traced_case(trace_path, data, n, g);
  std::printf("  traced Scan-MPS run: %zu spans, makespan %.3f ms -> %s\n",
              trace.spans, trace.makespan_s * 1e3,
              trace.report_path.c_str());
  write_repeated_report(cases, faults_spec, resilience, trace);
  std::printf("  -> bench_results/bench_micro.json\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  // Peel --faults / --trace off before google-benchmark sees the
  // arguments (it rejects flags it does not know).
  std::string faults_spec;
  std::string trace_path = "bench_results/bench_micro_run_report.json";
  std::vector<char*> keep;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--faults" && i + 1 < argc) {
      faults_spec = argv[++i];
    } else if (a.rfind("--faults=", 0) == 0) {
      faults_spec = a.substr(9);
    } else if (a == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (a.rfind("--trace=", 0) == 0) {
      trace_path = a.substr(8);
    } else {
      keep.push_back(argv[i]);
    }
  }
  if (!faults_spec.empty()) {
    mgs::sim::parse_fault_plan(faults_spec);  // fail fast on a bad spec
  }
  argc = static_cast<int>(keep.size());
  argv = keep.data();
  report_repeated_invocation(faults_spec, trace_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
