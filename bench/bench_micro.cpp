/// bench_micro: google-benchmark microbenchmarks of the substrate and the
/// skeletons, plus the repeated-invocation comparison between the legacy
/// per-call convention (re-tune + re-allocate every call) and the
/// ScanContext/ScanExecutor convention (plan cache + workspace pool).
/// These measure *host wall-clock* of the functional simulator (useful
/// for keeping the simulator itself fast); the figure harnesses report
/// *simulated* device time. The repeated-invocation results are also
/// written to bench_results/bench_micro.json, together with a "trace"
/// section summarizing a traced Scan-MPS run whose full JSON run-report
/// lands next to it (override the path with --trace FILE; render with
/// `mgs_trace --in FILE`), and a "segmented" section comparing the free
/// function segmented_scan_sp against SegmentedScan through the unified
/// context path (where the packed pairs ride the plan cache and the
/// overlap pipeline).
///
/// --dtype/--op run the comparison sections over any (DType, OpTag) cell
/// of the erased executor matrix; non-default configs write their JSON
/// with a _<dtype>_<op> suffix so the i32/plus baseline file the CI gate
/// tracks is never clobbered.

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <type_traits>

#include "common.hpp"
#include "mgs/baselines/cub.hpp"
#include "mgs/core/scan_sp.hpp"
#include "mgs/core/tuning.hpp"
#include "mgs/simt/warp.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace st = mgs::simt;

namespace {

void BM_WarpScanInclusive(benchmark::State& state) {
  st::WarpReg<int> x;
  for (int l = 0; l < st::kWarpSize; ++l) x[l] = l;
  mgs::sim::KernelStats stats;
  for (auto _ : state) {
    auto y = x;
    st::warp_scan_inclusive(y, mc::Plus<int>{}, stats);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * st::kWarpSize);
}
BENCHMARK(BM_WarpScanInclusive);

void BM_ShflUp(benchmark::State& state) {
  st::WarpReg<int> x;
  x.fill(3);
  mgs::sim::KernelStats stats;
  for (auto _ : state) {
    auto y = st::shfl_up(x, static_cast<int>(state.range(0)), stats);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_ShflUp)->Arg(1)->Arg(16);

void BM_ScanSpSimulated(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  st::Device dev(0, mgs::sim::k80_spec());
  auto plan = mc::derive_spl(dev.spec(), 4).plan;
  plan.s13.k = 4;
  auto in = dev.alloc<int>(n);
  auto out = dev.alloc<int>(n);
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n), 1);
  std::copy(data.begin(), data.end(), in.host_span().begin());
  double simulated = 0.0;
  for (auto _ : state) {
    simulated = mc::scan_sp<int>(dev, in, out, n, 1, plan,
                                 mc::ScanKind::kInclusive)
                    .seconds;
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["simulated_GBps"] =
      2.0 * static_cast<double>(n) * 4.0 / simulated / 1e9;
}
BENCHMARK(BM_ScanSpSimulated)->Arg(1 << 16)->Arg(1 << 20);

void BM_CubModelSimulated(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  st::Device dev(0, mgs::sim::k80_spec());
  auto in = dev.alloc<std::int32_t>(n);
  auto out = dev.alloc<std::int32_t>(n);
  double simulated = 0.0;
  for (auto _ : state) {
    simulated = mgs::baselines::cub_scan<std::int32_t>(
                    dev, in, out, 0, n, mc::ScanKind::kInclusive)
                    .seconds;
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["simulated_GBps"] =
      2.0 * static_cast<double>(n) * 4.0 / simulated / 1e9;
}
BENCHMARK(BM_CubModelSimulated)->Arg(1 << 16)->Arg(1 << 20);

void BM_LaunchOverheadHost(benchmark::State& state) {
  st::Device dev(0, mgs::sim::k80_spec());
  auto buf = dev.alloc<int>(1 << 12);
  auto view = buf.view();
  st::LaunchConfig cfg;
  cfg.grid = {32, 1, 1};
  cfg.block = {128, 1, 1};
  for (auto _ : state) {
    st::launch(dev, cfg, [&](st::BlockCtx& ctx) {
      view.store(ctx.block_idx().x, ctx.block_idx().x, ctx.stats());
    });
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_LaunchOverheadHost);

// ------------------------------------------------------------------------
// The flags bench_micro peels off before google-benchmark parses argv.

struct MicroOptions {
  std::string faults;
  std::string trace = "bench_results/bench_micro_run_report.json";
  std::string out;  ///< results JSON override (e.g. for fault-seeded runs
                    ///< that must not clobber the tracked snapshot)
  std::string history_label;  ///< history-store label; auto-detected from
                              ///< git when omitted ("none" disables)
  std::string history_file = "bench_results/history.ndjson";
  mc::DType dtype = mc::DType::kI32;
  mc::OpTag op = mc::OpTag::kPlus;

  const char* dtype_name() const { return mc::to_string(dtype); }
  const char* op_name() const { return mc::to_string(op); }
  /// "" for i32/plus, "_f64_max"-style otherwise: non-default configs
  /// write side-by-side JSON instead of clobbering the tracked baseline.
  std::string file_suffix() const {
    if (dtype == mc::DType::kI32 && op == mc::OpTag::kPlus) return "";
    return std::string("_") + dtype_name() + "_" + op_name();
  }
};

// ------------------------------------------------------------------------
// Repeated-invocation comparison: the unified-API acceptance measurement.
// Call the same scan `kIters` times; the per-call path re-derives its plan
// and re-allocates buffers every time (the pre-refactor convention), the
// context path prepares once and reuses plan + pooled workspaces.

constexpr int kIters = 6;

struct PathTiming {
  double first_ms = 0.0;
  double mean_subsequent_ms = 0.0;
  double amortized_gbps = 0.0;  ///< payload / mean subsequent host second
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

PathTiming time_calls(const std::function<void()>& call,
                      std::uint64_t payload_bytes) {
  PathTiming t;
  double sum_rest = 0.0;
  for (int i = 0; i < kIters; ++i) {
    const double t0 = now_ms();
    call();
    const double ms = now_ms() - t0;
    if (i == 0) {
      t.first_ms = ms;
    } else {
      sum_rest += ms;
    }
  }
  t.mean_subsequent_ms = sum_rest / (kIters - 1);
  t.amortized_gbps =
      static_cast<double>(payload_bytes) / (t.mean_subsequent_ms / 1e3) / 1e9;
  return t;
}

struct RepeatedCase {
  std::string name;
  std::string executor;
  mc::ExecutorParams params;
  std::int64_t n = 0;
  std::int64_t g = 0;
  PathTiming per_call;
  PathTiming context;
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t workspace_reuses = 0;
  std::uint64_t device_allocations = 0;
};

template <typename T, typename Op>
RepeatedCase run_repeated_case(std::string name, std::string executor,
                               mc::ExecutorParams params, std::int64_t n,
                               std::int64_t g, std::span<const T> data) {
  RepeatedCase c;
  c.name = std::move(name);
  c.executor = std::move(executor);
  params.op = mc::op_tag_of_v<Op>.value_or(mc::OpTag::kPlus);
  c.params = params;
  c.n = n;
  c.g = g;
  const std::uint64_t payload =
      2ull * static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(g) *
      sizeof(T);

  // Legacy per-call convention: plan derivation + fresh device/cluster +
  // allocations on every invocation.
  if (c.executor == "Scan-SP") {
    c.per_call = time_calls(
        [&] {
          const auto plan = mgs::bench::tuned_plan(n, g, 1);
          mgs::bench::sp_run_t<T, Op>(data, n, g, plan);
        },
        payload);
  } else {
    c.per_call = time_calls(
        [&] {
          const auto plan =
              mgs::bench::tuned_plan_multi(n / c.params.w, g, c.params.w);
          mgs::bench::mps_run_t<T, Op>(c.params.w, data, n, g, plan);
        },
        payload);
  }

  // Unified-API convention: one context, executor prepared on first call,
  // driven through the erased TypedSpan entry point.
  mgs::bench::BenchContext bc(1);
  c.context = time_calls(
      [&] { bc.run_typed<T>(c.executor, c.params, data, n, g); }, payload);
  c.plan_cache_hits = bc.ctx().plan_cache_hits();
  c.workspace_reuses = bc.ctx().workspace().reuses();
  c.device_allocations = bc.ctx().workspace().device_allocations();
  return c;
}

// ------------------------------------------------------------------------
// Resilience overhead: the same scan through the unified API, healthy vs
// with a --faults schedule attached, compared on *simulated* seconds (the
// retries/reroutes/backoffs are modeled time). Reported in the JSON.

struct ResilienceCase {
  std::string executor;
  std::int64_t n = 0;
  std::int64_t g = 0;
  double healthy_s = 0.0;   ///< simulated seconds, no injector
  double faulted_s = 0.0;   ///< simulated seconds under the schedule
  std::string error;        ///< typed error, if the run could not complete
  mgs::sim::FaultReport report;
};

template <typename T>
ResilienceCase run_resilience_case(const std::string& spec,
                                   std::string executor,
                                   mc::ExecutorParams params, std::int64_t n,
                                   std::int64_t g, std::span<const T> data) {
  ResilienceCase c;
  c.executor = std::move(executor);
  c.n = n;
  c.g = g;
  mgs::bench::BenchContext healthy(1);
  c.healthy_s = healthy.run_typed<T>(c.executor, params, data, n, g).seconds;
  mgs::bench::BenchContext faulted(1);
  faulted.attach_faults(spec);
  try {
    const auto r = faulted.run_typed<T>(c.executor, params, data, n, g);
    c.faulted_s = r.seconds;
    c.report = r.faults;
  } catch (const mgs::util::Error& e) {
    c.error = e.what();
  }
  return c;
}

// ------------------------------------------------------------------------
// Segmented scan through the unified path: the free function
// segmented_scan_sp scans one sequence per call on one GPU; SegmentedScan
// packs the same (values, flags) batch once and drives a proposal
// executor over SegPair elements, so segmented traffic gets plan-cache
// hits, multi-GPU placement and the overlapped pipeline. The sync-forced
// MPS run isolates how much of the win is the overlap pipeline itself.

struct SegmentedComparison {
  std::int64_t n = 0;
  std::int64_t g = 0;
  int waves = 1;              ///< overlap waves of the MPS plan
  double free_total_s = 0.0;  ///< G sequential free-function calls
  double ctx_sp_s = 0.0;      ///< SegmentedScan over Scan-SP, one batch
  double mps_sync_s = 0.0;    ///< SegmentedScan over Scan-MPS, sync stages
  double mps_overlap_s = 0.0; ///< SegmentedScan over Scan-MPS, overlapped
  double overlap_reduction_pct() const {
    return mps_sync_s > 0.0 ? (1.0 - mps_overlap_s / mps_sync_s) * 100.0
                            : 0.0;
  }
  double speedup_vs_free() const {
    return mps_overlap_s > 0.0 ? free_total_s / mps_overlap_s : 0.0;
  }
};

template <typename T, typename Op>
SegmentedComparison run_segmented_comparison(const MicroOptions& opts) {
  SegmentedComparison c;
  c.n = 1 << 17;
  c.g = 16;
  const std::int64_t total = c.n * c.g;
  const auto seed =
      mgs::util::random_i32(static_cast<std::size_t>(total), 7);
  std::vector<T> values(seed.begin(), seed.end());
  std::vector<T> flags(static_cast<std::size_t>(total));
  for (std::int64_t i = 0; i < total; ++i) {
    // ~1/1024 head probability: segments average about 1k elements.
    flags[static_cast<std::size_t>(i)] =
        (seed[static_cast<std::size_t>(i)] & 1023) == 0 ? T{1} : T{0};
  }

  // Old free-function path: one GPU, one sequence per call, G calls.
  std::vector<T> free_out(static_cast<std::size_t>(total));
  {
    st::Device dev(0, mgs::sim::k80_spec());
    const auto plan = mgs::bench::tuned_plan(c.n, 1, 1);
    auto in = dev.alloc<T>(c.n);
    auto fl = dev.alloc<T>(c.n);
    auto out = dev.alloc<T>(c.n);
    for (std::int64_t j = 0; j < c.g; ++j) {
      const auto base = static_cast<std::ptrdiff_t>(j * c.n);
      std::copy(values.begin() + base, values.begin() + base + c.n,
                in.host_span().begin());
      std::copy(flags.begin() + base, flags.begin() + base + c.n,
                fl.host_span().begin());
      c.free_total_s +=
          mc::segmented_scan_sp<T, Op>(dev, in, fl, out, c.n, plan).seconds;
      std::copy(out.host_span().begin(), out.host_span().begin() + c.n,
                free_out.begin() + base);
    }
  }

  // Unified path: the whole batch in one prepared call per variant.
  mgs::bench::BenchContext bc(1);
  std::vector<T> ctx_out(static_cast<std::size_t>(total));
  {
    mc::SegmentedScan<T, Op> seg(bc.ctx());
    seg.prepare(c.n, c.g);
    c.ctx_sp_s = seg.run(values, flags, ctx_out).seconds;
  }
  if constexpr (std::is_integral_v<T>) {
    // Exact operators: the context batch must reproduce the free path
    // bit for bit (floats may legally differ in association order).
    MGS_CHECK(ctx_out == free_out,
              "segmented: context path disagrees with segmented_scan_sp");
  }
  {
    mc::SegmentedScan<T, Op> seg(
        bc.ctx(), "Scan-MPS",
        {.w = 4, .pipeline = mc::PipelineMode::kSync});
    seg.prepare(c.n, c.g);
    c.mps_sync_s = seg.run(values, flags, ctx_out).seconds;
  }
  {
    mc::SegmentedScan<T, Op> seg(bc.ctx(), "Scan-MPS", {.w = 4});
    seg.prepare(c.n, c.g);
    c.mps_overlap_s = seg.run(values, flags, ctx_out).seconds;
    c.waves = bc.ctx()
                  .plan_for(c.n, c.g, opts.dtype, opts.op,
                            /*gpus_per_problem=*/4, /*segmented=*/true)
                  .pipe.waves;
  }
  if constexpr (std::is_integral_v<T>) {
    MGS_CHECK(ctx_out == free_out,
              "segmented: MPS context path disagrees with segmented_scan_sp");
  }
  return c;
}

// ------------------------------------------------------------------------
// Traced representative run: one Scan-MPS invocation through the unified
// API under an obs::TraceSession. The full run-report goes to its own
// file; bench_micro.json gets a "trace" section summarizing it. The
// --faults schedule (when given) rides this run too, so a seeded
// straggler shows up in the traced report the CI gate diffs.

struct TraceSummary {
  std::string report_path;
  std::size_t spans = 0;
  std::size_t metric_series = 0;
  double makespan_s = 0.0;
  mgs::obs::CategorySeconds by_category;
};

template <typename T>
TraceSummary run_traced_case(const MicroOptions& opts,
                             std::span<const T> data, std::int64_t n,
                             std::int64_t g) {
  TraceSummary s;
  s.report_path = opts.trace;
  mgs::obs::TraceSession ts;
  mgs::bench::BenchContext bc(1);
  if (!opts.faults.empty()) bc.attach_faults(opts.faults);
  const auto r =
      bc.run_typed<T>("Scan-MPS", {.w = 4, .op = opts.op}, data, n, g);
  mgs::core::write_run_report_file(
      opts.trace,
      mgs::core::make_run_info("Scan-MPS", n, 4, r, opts.dtype, opts.op), ts);
  const auto cp = mgs::obs::analyze_last_run(ts.spans());
  s.spans = ts.size();
  s.metric_series = ts.metrics().snapshot().size();
  s.makespan_s = cp.total_seconds;
  s.by_category = cp.by_category;
  if (!opts.history_label.empty()) {
    try {
      mgs::obs::HistoryEntry e;
      e.key.executor = "Scan-MPS";
      e.key.dtype = opts.dtype_name();
      e.key.op = opts.op_name();
      e.key.pipeline = "overlap";
      e.key.n = static_cast<std::uint64_t>(n);
      e.key.g = g;
      e.key.devices = 4;
      e.label = opts.history_label;
      e.seconds = r.seconds;
      e.payload_bytes = r.payload_bytes;
      e.breakdown = r.breakdown.entries();
      e.by_category = cp.by_category;
      mgs::obs::RunHistory(opts.history_file).append(e);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "history: %s\n", ex.what());
    }
  }
  return s;
}

void json_path(std::ostream& os, const char* key, const PathTiming& t) {
  os << "    \"" << key << "\": {\"first_ms\": " << t.first_ms
     << ", \"mean_subsequent_ms\": " << t.mean_subsequent_ms
     << ", \"amortized_gbps\": " << t.amortized_gbps << "}";
}

std::string report_path(const MicroOptions& opts) {
  if (!opts.out.empty()) return opts.out;
  return "bench_results/bench_micro" + opts.file_suffix() + ".json";
}

void write_repeated_report(const MicroOptions& opts,
                           const std::vector<RepeatedCase>& cases,
                           const std::vector<ResilienceCase>& resilience,
                           const SegmentedComparison& seg,
                           const TraceSummary& trace) {
  const std::string path = report_path(opts);
  const auto dir = std::filesystem::path(path).parent_path();
  if (!dir.empty()) std::filesystem::create_directories(dir);
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"bench_micro\",\n"
     << "  \"dtype\": \"" << opts.dtype_name() << "\",\n"
     << "  \"op\": \"" << opts.op_name() << "\",\n"
     << "  \"units\": {\"time\": \"ms host wall-clock\", "
        "\"throughput\": \"GB/s of scan payload per host second\"},\n"
     << "  \"iterations\": " << kIters << ",\n"
     << "  \"repeated_invocation\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    os << "  {\n"
       << "    \"case\": \"" << c.name << "\",\n"
       << "    \"executor\": \"" << c.executor << "\",\n"
       << "    \"n\": " << c.n << ", \"g\": " << c.g << ",\n";
    json_path(os, "per_call", c.per_call);
    os << ",\n";
    json_path(os, "context", c.context);
    os << ",\n"
       << "    \"context_plan_cache_hits\": " << c.plan_cache_hits << ",\n"
       << "    \"context_workspace_reuses\": " << c.workspace_reuses << ",\n"
       << "    \"context_device_allocations\": " << c.device_allocations
       << ",\n"
       << "    \"speedup_subsequent\": "
       << c.per_call.mean_subsequent_ms / c.context.mean_subsequent_ms << "\n"
       << "  }" << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ]";
  if (!resilience.empty()) {
    os << ",\n  \"resilience\": {\n"
       << "    \"spec\": \"" << opts.faults << "\",\n"
       << "    \"units\": {\"time\": \"simulated seconds\"},\n"
       << "    \"cases\": [\n";
    for (std::size_t i = 0; i < resilience.size(); ++i) {
      const auto& c = resilience[i];
      const auto& f = c.report.counters;
      os << "    {\n"
         << "      \"executor\": \"" << c.executor << "\", \"n\": " << c.n
         << ", \"g\": " << c.g << ",\n"
         << "      \"healthy_s\": " << c.healthy_s
         << ", \"faulted_s\": " << c.faulted_s << ", \"overhead_pct\": "
         << (c.error.empty() && c.healthy_s > 0.0
                 ? (c.faulted_s / c.healthy_s - 1.0) * 100.0
                 : 0.0)
         << ",\n"
         << "      \"retries\": " << f.retries
         << ", \"transient_failures\": " << f.transient_failures
         << ", \"timeouts\": " << f.timeouts
         << ", \"corruptions_detected\": " << f.corruptions_detected << ",\n"
         << "      \"rerouted_transfers\": " << f.rerouted_transfers
         << ", \"rerouted_bytes\": " << f.rerouted_bytes
         << ", \"retry_seconds\": " << f.retry_seconds << ",\n"
         << "      \"degraded\": " << (c.report.degraded ? "true" : "false")
         << ", \"degraded_mode\": \"" << c.report.degraded_mode << "\""
         << ", \"error\": \"" << c.error << "\"\n"
         << "    }" << (i + 1 < resilience.size() ? "," : "") << "\n";
    }
    os << "    ]\n  }";
  }
  os << ",\n  \"segmented\": {\n"
     << "    \"n\": " << seg.n << ", \"g\": " << seg.g
     << ", \"waves\": " << seg.waves << ",\n"
     << "    \"units\": {\"time\": \"simulated seconds\"},\n"
     << "    \"free_per_sequence_s\": " << seg.free_total_s << ",\n"
     << "    \"context_sp_s\": " << seg.ctx_sp_s << ",\n"
     << "    \"context_mps_sync_s\": " << seg.mps_sync_s << ",\n"
     << "    \"context_mps_overlap_s\": " << seg.mps_overlap_s << ",\n"
     << "    \"overlap_reduction_pct\": " << seg.overlap_reduction_pct()
     << ",\n"
     << "    \"context_overlap_speedup_vs_free\": " << seg.speedup_vs_free()
     << "\n  }";
  os << ",\n  \"trace\": {\n"
     << "    \"report\": \"" << trace.report_path << "\",\n"
     << "    \"spans\": " << trace.spans
     << ", \"metric_series\": " << trace.metric_series << ",\n"
     << "    \"critical_path\": {\"makespan_s\": " << trace.makespan_s;
  for (int c = 0; c < mgs::obs::kNumCategories; ++c) {
    os << ", \"" << mgs::obs::to_string(static_cast<mgs::obs::Category>(c))
       << "_s\": " << trace.by_category.seconds[static_cast<std::size_t>(c)];
  }
  os << "}\n  }";
  os << "\n}\n";
}

template <typename T, typename Op>
void report_repeated_invocation(const MicroOptions& opts) {
  const std::int64_t n = 1 << 20;
  const std::int64_t g = 4;
  const auto seed =
      mgs::util::random_i32(static_cast<std::size_t>(n * g), 42);
  const std::vector<T> data(seed.begin(), seed.end());
  const std::span<const T> span(data);

  std::vector<RepeatedCase> cases;
  cases.push_back(run_repeated_case<T, Op>("scan_sp_repeated", "Scan-SP", {},
                                           n, g, span));
  cases.push_back(run_repeated_case<T, Op>("scan_mps_w4_repeated", "Scan-MPS",
                                           {.w = 4}, n, g, span));

  std::vector<ResilienceCase> resilience;
  if (!opts.faults.empty()) {
    resilience.push_back(run_resilience_case<T>(opts.faults, "Scan-SP",
                                                {.op = opts.op}, n, g, span));
    resilience.push_back(run_resilience_case<T>(
        opts.faults, "Scan-MPS", {.w = 4, .op = opts.op}, n, g, span));
  }

  std::printf(
      "Repeated-invocation comparison (%d calls, n=2^20, g=4, %s/%s; host "
      "wall-clock):\n",
      kIters, opts.dtype_name(), opts.op_name());
  for (const auto& c : cases) {
    std::printf(
        "  %-22s per-call: first %7.1f ms, then %7.1f ms/call | "
        "context: first %7.1f ms, then %7.1f ms/call | speedup %.2fx\n",
        c.name.c_str(), c.per_call.first_ms, c.per_call.mean_subsequent_ms,
        c.context.first_ms, c.context.mean_subsequent_ms,
        c.per_call.mean_subsequent_ms / c.context.mean_subsequent_ms);
  }
  for (const auto& c : resilience) {
    if (!c.error.empty()) {
      std::printf("  %-22s faults: typed error: %s\n", c.executor.c_str(),
                  c.error.c_str());
    } else {
      std::printf(
          "  %-22s faults: %.3f ms -> %.3f ms simulated (+%.1f%%), "
          "%llu retries\n",
          c.executor.c_str(), c.healthy_s * 1e3, c.faulted_s * 1e3,
          (c.faulted_s / c.healthy_s - 1.0) * 100.0,
          static_cast<unsigned long long>(c.report.counters.retries));
    }
  }

  const auto seg = run_segmented_comparison<T, Op>(opts);
  std::printf(
      "  segmented n=2^17 g=%lld [%s/%s]: free per-sequence %.3f ms | "
      "context SP %.3f ms | MPS w4 sync %.3f ms | MPS w4 overlap %.3f ms "
      "(waves=%d, -%.1f%% vs sync, %.2fx vs free)\n",
      static_cast<long long>(seg.g), opts.dtype_name(), opts.op_name(),
      seg.free_total_s * 1e3, seg.ctx_sp_s * 1e3, seg.mps_sync_s * 1e3,
      seg.mps_overlap_s * 1e3, seg.waves, seg.overlap_reduction_pct(),
      seg.speedup_vs_free());

  std::filesystem::create_directories("bench_results");
  const auto trace = run_traced_case<T>(opts, span, n, g);
  std::printf("  traced Scan-MPS run: %zu spans, makespan %.3f ms -> %s\n",
              trace.spans, trace.makespan_s * 1e3,
              trace.report_path.c_str());
  write_repeated_report(opts, cases, resilience, seg, trace);
  std::printf("  -> %s\n\n", report_path(opts).c_str());
}

template <typename T>
void report_for_dtype(const MicroOptions& opts) {
  switch (opts.op) {
    case mc::OpTag::kPlus:
      return report_repeated_invocation<T, mc::Plus<T>>(opts);
    case mc::OpTag::kMax:
      return report_repeated_invocation<T, mc::Max<T>>(opts);
    case mc::OpTag::kMin:
      return report_repeated_invocation<T, mc::Min<T>>(opts);
  }
}

void report_all(const MicroOptions& opts) {
  switch (opts.dtype) {
    case mc::DType::kI32: return report_for_dtype<std::int32_t>(opts);
    case mc::DType::kI64: return report_for_dtype<std::int64_t>(opts);
    case mc::DType::kU32: return report_for_dtype<std::uint32_t>(opts);
    case mc::DType::kF32: return report_for_dtype<float>(opts);
    case mc::DType::kF64: return report_for_dtype<double>(opts);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Peel --faults / --trace / --dtype / --op off before google-benchmark
  // sees the arguments (it rejects flags it does not know).
  MicroOptions opts;
  std::vector<char*> keep;
  std::string dtype = "i32";
  std::string op = "plus";
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--faults" && i + 1 < argc) {
      opts.faults = argv[++i];
    } else if (a.rfind("--faults=", 0) == 0) {
      opts.faults = a.substr(9);
    } else if (a == "--trace" && i + 1 < argc) {
      opts.trace = argv[++i];
    } else if (a.rfind("--trace=", 0) == 0) {
      opts.trace = a.substr(8);
    } else if (a == "--out" && i + 1 < argc) {
      opts.out = argv[++i];
    } else if (a.rfind("--out=", 0) == 0) {
      opts.out = a.substr(6);
    } else if (a == "--dtype" && i + 1 < argc) {
      dtype = argv[++i];
    } else if (a.rfind("--dtype=", 0) == 0) {
      dtype = a.substr(8);
    } else if (a == "--op" && i + 1 < argc) {
      op = argv[++i];
    } else if (a.rfind("--op=", 0) == 0) {
      op = a.substr(5);
    } else if (a == "--history-label" && i + 1 < argc) {
      opts.history_label = argv[++i];
    } else if (a.rfind("--history-label=", 0) == 0) {
      opts.history_label = a.substr(16);
    } else if (a == "--history-file" && i + 1 < argc) {
      opts.history_file = argv[++i];
    } else if (a.rfind("--history-file=", 0) == 0) {
      opts.history_file = a.substr(15);
    } else {
      keep.push_back(argv[i]);
    }
  }
  opts.dtype = mc::parse_dtype(dtype);
  opts.op = mc::parse_op(op);
  // Same auto-label convention as parse_bench_config: unlabeled runs
  // record under the current commit, "none" opts out.
  if (opts.history_label.empty()) {
    opts.history_label = mgs::bench::detect_git_label();
  }
  if (opts.history_label == "none") opts.history_label.clear();
  if (opts.trace == "bench_results/bench_micro_run_report.json") {
    // Default trace path follows the dtype/op suffix convention too.
    opts.trace =
        "bench_results/bench_micro_run_report" + opts.file_suffix() + ".json";
  }
  if (!opts.faults.empty()) {
    mgs::sim::parse_fault_plan(opts.faults);  // fail fast on a bad spec
  }
  argc = static_cast<int>(keep.size());
  argv = keep.data();
  report_all(opts);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
