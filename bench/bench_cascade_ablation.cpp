/// bench_cascade_ablation: design-choice ablations called out in
/// DESIGN.md --
///  (a) cascade on/off: K > 1 (few blocks, carried totals, Figure 5)
///      versus K = 1 (one block per tile, more aux traffic and launches);
///  (b) int4 vectorized loads vs scalar loads (coalescing premium) --
///      measured through the memory-transaction counters;
///  (c) the segmented-scan operator extension's overhead vs a plain scan
///      (the paper's argument for why Thrust's flag-array approach and
///      the CUB operator extension lose performance).

#include "common.hpp"
#include "mgs/core/segmented.hpp"

using namespace mgs;

int main(int argc, char** argv) {
  const auto cfg = bench::parse_bench_config(
      argc, argv, "Cascade / vectorization / segmented-scan ablations.");

  const std::int64_t n = std::int64_t{1} << cfg.total_log2;
  const auto data = util::random_i32(static_cast<std::size_t>(n), cfg.seed);
  const auto spec = sim::k80_spec();

  // (a) cascade on/off.
  std::printf("(a) Cascade (Figure 5) ablation, n=%d:\n", cfg.total_log2);
  util::Table ctable({"config", "K", "blocks", "aux elems", "GB/s"});
  for (const auto& [label, k] :
       {std::pair{"no cascade", 1}, std::pair{"cascade K=8", 8},
        std::pair{"cascade K=64", 64}}) {
    auto plan = core::derive_spl(spec, 4).plan;
    plan.s13.k = k;
    const auto lay = core::make_layout(n, 1, plan.s13);
    const auto r = bench::sp_run(data, n, 1, plan);
    ctable.add_row({label, std::to_string(k), std::to_string(lay.bx),
                    std::to_string(lay.aux_elems()),
                    util::fmt_double(bench::gbps(n, r.seconds), 2)});
  }
  bench::print_table(ctable, cfg);

  // (b) vectorized vs scalar accesses: the stage-2 kernels provide both
  // access patterns (contiguous warp loads vs the rank-strided mapping).
  std::printf("\n(b) Coalescing premium (Stage-2 row scan, contiguous vs "
              "rank-strided):\n");
  {
    const std::int64_t rows = 512, row_len = 1024;
    auto plan = core::derive_spl(spec, 4).plan;
    simt::Device d1(0, spec);
    auto aux1 = d1.alloc<int>(rows * row_len);
    const auto t_contig = core::launch_intermediate_scan(
        d1, aux1, row_len, rows, plan.s2, core::Plus<int>{});
    simt::Device d2(0, spec);
    auto aux2 = d2.alloc<int>(rows * row_len);
    const auto t_strided = core::launch_intermediate_scan_ranked(
        d2, aux2, row_len / 8, 8, rows, plan.s2, core::Plus<int>{});
    std::printf(
        "  contiguous: %s (coalescing %.2f)   rank-strided: %s (coalescing "
        "%.2f)   slowdown: %.2fx\n",
        util::fmt_time_us(t_contig.seconds).c_str(), t_contig.coalescing,
        util::fmt_time_us(t_strided.seconds).c_str(), t_strided.coalescing,
        t_strided.seconds / t_contig.seconds);
  }

  // (d, printed below c) gather strategy ablation: explicit 2-D gather
  // copies vs. direct UVA peer writes pipelined behind Stage 1 (the
  // communication/computation overlap Section 2 describes).
  const auto print_overlap = [&] {
    // Many small per-problem aux rows: the regime where gather strategy
    // matters (cf. Figure 9's G-dependence).
    const std::int64_t nn = std::min<std::int64_t>(n, 1 << 17);
    const std::int64_t g = 1024;
    const std::vector<int> gpus = {0, 1, 2, 3};
    auto plan = core::derive_spl(spec, 4).plan;
    plan.s13.k = 2;
    const auto batch_data =
        util::random_i32(static_cast<std::size_t>(nn * g), cfg.seed + 1);
    auto c1 = topo::tsubame_kfc_cluster(1);
    auto b1 = core::distribute_batch<int>(c1, gpus, batch_data, nn, g);
    const auto regular = core::scan_mps<int>(c1, gpus, b1, nn, g, plan,
                                             core::ScanKind::kInclusive);
    auto c2 = topo::tsubame_kfc_cluster(1);
    auto b2 = core::distribute_batch<int>(c2, gpus, batch_data, nn, g);
    const auto direct = core::scan_mps_direct<int>(
        c2, gpus, b2, nn, g, plan, core::ScanKind::kInclusive);
    std::printf(
        "\n(d) Gather strategy (W=4, G=%lld, n=%lld): explicit 2-D copies "
        "%s vs direct P2P peer writes %s (%.2fx)\n",
        static_cast<long long>(g), static_cast<long long>(nn),
        util::fmt_time_us(regular.seconds).c_str(),
        util::fmt_time_us(direct.seconds).c_str(),
        regular.seconds / direct.seconds);
  };

  // (c) segmented-scan overhead.
  std::printf("\n(c) Segmented-scan operator extension vs plain scan:\n");
  {
    auto plan = core::derive_spl(spec, 4).plan;
    plan.s13.k = 4;
    simt::Device dev(0, spec);
    auto in = dev.alloc<int>(n);
    auto fl = dev.alloc<int>(n);
    auto out = dev.alloc<int>(n);
    std::copy(data.begin(), data.end(), in.host_span().begin());
    for (std::int64_t i = 0; i < n; i += 1000) {
      fl.host_span()[static_cast<std::size_t>(i)] = 1;
    }
    const auto seg = core::segmented_scan_sp<int>(dev, in, fl, out, n, plan);
    const auto plain = core::scan_sp<int>(dev, in, out, n, 1, plan,
                                          core::ScanKind::kInclusive);
    std::printf(
        "  plain: %s   segmented: %s   overhead: %.2fx (pack/unpack + 2x "
        "element size)\n",
        util::fmt_time_us(plain.seconds).c_str(),
        util::fmt_time_us(seg.seconds).c_str(), seg.seconds / plain.seconds);
  }

  print_overlap();
  return 0;
}
