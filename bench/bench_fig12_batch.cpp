/// bench_fig12_batch: reproduce Figure 12 -- the batch experiment.
/// G = total/N problems solved simultaneously: our best multi-GPU
/// proposal (Scan-MP-PC, W=8 as two V=4 P2P groups) and Scan-SP versus
/// the five libraries. Only CUDPP has native batch support (multiScan);
/// every other library is invoked G times, exactly as the paper does.
///
/// Paper's summary: 9.48x over CUDPP, 49.81x over Thrust, 33.77x over
/// ModernGPU, 8.92x over CUB, 58.44x over LightScan on average; 245x /
/// 71x / 14x / 550x extremes at n=13 and 6.6x / 18.5x / 5.6x / 5.4x at
/// n=25; performance drops at n = total exponent (G=1, one network).

#include "common.hpp"

using namespace mgs;

int main(int argc, char** argv) {
  const auto cfg = bench::parse_bench_config(
      argc, argv,
      "Reproduces Figure 12: batch (G = total/N) comparison vs the five "
      "libraries.");

  const std::int64_t total = std::int64_t{1} << cfg.total_log2;
  const auto data = util::random_i32(static_cast<std::size_t>(total),
                                     cfg.seed);
  const std::vector<std::string> libs = {"CUDPP", "Thrust", "ModernGPU",
                                         "CUB", "LightScan"};

  std::printf(
      "Figure 12 reproduction -- G = 2^%d / N, GB/s (log10 scale in paper)\n",
      cfg.total_log2);
  util::Table table({"n", "G", "Scan-MP-PC", "Scan-SP", "CUDPP", "Thrust",
                     "ModernGPU", "CUB", "LightScan"});

  // Shared context for the sweep (unified API): the MP-PC and Scan-SP
  // executors keep their plans and pooled workspaces across points.
  bench::BenchContext bc(1);

  std::vector<std::vector<double>> speedups(libs.size());
  std::vector<int> nlogs;
  for (int nlog = cfg.min_n_log2; nlog <= cfg.total_log2; ++nlog) {
    const std::int64_t n = std::int64_t{1} << nlog;
    const std::int64_t g = total / n;
    nlogs.push_back(nlog);

    // Our best proposal: MP-PC with V=4 over both networks while G >= 2,
    // falling back to one network at G = 1 (the paper's n=28 dip).
    const int y = g >= 2 ? 2 : 1;
    const auto rours = bc.run("Scan-MP-PC", {.y = y, .v = 4}, data, n, g);
    bench::record_history(cfg, "Scan-MP-PC", n, g, y * 4, "auto", rours);
    const double ours = rours.seconds;
    const auto rsp = bc.run("Scan-SP", {}, data, n, g);
    bench::record_history(cfg, "Scan-SP", n, g, 1, "sync", rsp);
    const double sp = rsp.seconds;

    std::vector<std::string> row = {
        std::to_string(nlog), std::to_string(g),
        util::fmt_double(bench::gbps(total, ours), 2),
        util::fmt_double(bench::gbps(total, sp), 2)};
    for (std::size_t li = 0; li < libs.size(); ++li) {
      const double s = bench::baseline_seconds(libs[li], data, n, g);
      row.push_back(util::fmt_double(bench::gbps(total, s), 2));
      speedups[li].push_back(s / ours);
    }
    table.add_row(std::move(row));
  }
  bench::print_table(table, cfg);

  std::printf("\nAverage speedup of Scan-MP-PC (paper in brackets):\n");
  const double paper_avg[] = {9.48, 49.81, 33.77, 8.92, 58.44};
  for (std::size_t li = 0; li < libs.size(); ++li) {
    std::printf("  vs %-10s %7.2fx   [paper: %.2fx]\n", libs[li].c_str(),
                util::mean(speedups[li]), paper_avg[li]);
  }
  std::printf("\nExtremes (paper, at total=2^28: n=13 -> 245x MGPU, 71x "
              "Thrust, 14x CUB, 550x LightScan;\n"
              " n=25 -> 6.6x / 18.5x / 5.6x / 5.4x):\n");
  std::printf("  smallest n=%d: %7.2fx MGPU, %7.2fx Thrust, %6.2fx CUB, "
              "%7.2fx LightScan\n",
              nlogs.front(), speedups[2].front(), speedups[1].front(),
              speedups[3].front(), speedups[4].front());
  std::printf("  largest  n=%d: %7.2fx MGPU, %7.2fx Thrust, %6.2fx CUB, "
              "%7.2fx LightScan\n",
              nlogs.back(), speedups[2].back(), speedups[1].back(),
              speedups[3].back(), speedups[4].back());
  return 0;
}
