/// bench_fig9_mps: reproduce Figure 9 -- Scan-MPS throughput for
/// W in {1, 2, 4, 8} GPUs, solving `total` elements split into
/// G = total/N problems for each N = 2^n.
///
/// Expected shape (paper): throughput scales with W for W <= 4 (all GPUs
/// on one PCIe network, P2P only); W = 8 drops markedly at small n (many
/// per-problem auxiliary rows staged through host memory) and recovers as
/// n grows and G shrinks.

#include "common.hpp"

using namespace mgs;

int main(int argc, char** argv) {
  const auto cfg = bench::parse_bench_config(
      argc, argv,
      "Reproduces Figure 9: Scan-MPS throughput vs problem size for "
      "W in {1,2,4,8}.");

  const std::int64_t total = std::int64_t{1} << cfg.total_log2;
  const auto data = util::random_i32(static_cast<std::size_t>(total),
                                     cfg.seed);
  std::printf("Figure 9 reproduction -- Scan-MPS, G = 2^%d / N, GB/s\n",
              cfg.total_log2);

  // One cluster + context for the whole sweep: every (W) keeps its
  // executor, the plan cache carries across points and the workspace pool
  // eliminates per-point allocations (the unified-API calling convention).
  bench::BenchContext bc(1);

  util::Table table({"n", "G", "W=1", "W=2", "W=4", "W=8"});
  std::vector<double> w8_over_w4;
  for (int nlog = cfg.min_n_log2; nlog <= cfg.total_log2; ++nlog) {
    const std::int64_t n = std::int64_t{1} << nlog;
    const std::int64_t g = total / n;
    std::vector<std::string> row = {std::to_string(nlog), std::to_string(g)};
    double t4 = 0.0;
    for (int w : {1, 2, 4, 8}) {
      if (n % w != 0) {
        row.push_back("-");
        continue;
      }
      const auto r = bc.run("Scan-MPS", {.w = w}, data, n, g);
      row.push_back(util::fmt_double(bench::gbps(total, r.seconds), 2));
      if (w == 4) t4 = r.seconds;
      if (w == 8 && t4 > 0.0) w8_over_w4.push_back(t4 / r.seconds);
    }
    table.add_row(std::move(row));
  }
  bench::print_table(table, cfg);

  std::printf(
      "\nShape checks vs the paper:\n"
      "  W=8/W=4 relative throughput at smallest n: %.2f (paper: well below "
      "1, host staging)\n"
      "  W=8/W=4 relative throughput at largest  n: %.2f (paper: recovers "
      "towards/above 1)\n",
      w8_over_w4.front(), w8_over_w4.back());
  return 0;
}
