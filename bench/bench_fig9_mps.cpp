/// bench_fig9_mps: reproduce Figure 9 -- Scan-MPS throughput for
/// W in {1, 2, 4, 8} GPUs, solving `total` elements split into
/// G = total/N problems for each N = 2^n.
///
/// Expected shape (paper): throughput scales with W for W <= 4 (all GPUs
/// on one PCIe network, P2P only); W = 8 drops markedly at small n (many
/// per-problem auxiliary rows staged through host memory) and recovers as
/// n grows and G shrinks.
///
/// --dtype/--op sweep the same figure over the erased executor matrix
/// (e.g. --dtype f64 --op max); non-default configs write their JSON
/// artifacts with a _<dtype>_<op> suffix so the i32/plus baselines the CI
/// gate tracks are never clobbered.

#include <filesystem>
#include <fstream>

#include "common.hpp"

using namespace mgs;

namespace {

/// One (n, W) point run under the --faults schedule, compared against the
/// healthy run of the same point.
struct FaultPoint {
  int nlog = 0;
  int w = 0;
  double healthy_s = 0.0;
  double faulted_s = 0.0;
  std::string error;
  sim::FaultReport report;
};

void write_faults_report(const bench::BenchConfig& cfg,
                         const std::vector<FaultPoint>& points) {
  std::filesystem::create_directories("bench_results");
  std::ofstream os("bench_results/bench_fig9_mps_faults" + cfg.file_suffix() +
                   ".json");
  os << "{\n"
     << "  \"bench\": \"bench_fig9_mps\",\n"
     << "  \"dtype\": \"" << cfg.dtype_name() << "\",\n"
     << "  \"op\": \"" << cfg.op_name() << "\",\n"
     << "  \"faults\": \"" << cfg.faults << "\",\n"
     << "  \"units\": {\"time\": \"simulated seconds\"},\n"
     << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    const auto& f = p.report.counters;
    os << "  {\"nlog\": " << p.nlog << ", \"w\": " << p.w
       << ", \"healthy_s\": " << p.healthy_s
       << ", \"faulted_s\": " << p.faulted_s << ", \"overhead_pct\": "
       << (p.error.empty() && p.healthy_s > 0.0
               ? (p.faulted_s / p.healthy_s - 1.0) * 100.0
               : 0.0)
       << ", \"retries\": " << f.retries
       << ", \"timeouts\": " << f.timeouts
       << ", \"corruptions_detected\": " << f.corruptions_detected
       << ", \"rerouted_transfers\": " << f.rerouted_transfers
       << ", \"rerouted_bytes\": " << f.rerouted_bytes
       << ", \"retry_seconds\": " << f.retry_seconds
       << ", \"degraded\": " << (p.report.degraded ? "true" : "false")
       << ", \"degraded_mode\": \"" << p.report.degraded_mode << "\""
       << ", \"error\": \"" << p.error << "\"}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

/// One (n, W) point of the overlapped pipeline against the synchronous
/// stage path (same executor cache, same plans apart from the pipeline).
struct OverlapPoint {
  int nlog = 0;
  int w = 0;
  int waves = 1;
  double sync_s = 0.0;
  double overlap_s = 0.0;
  double reduction_pct() const {
    return sync_s > 0.0 ? (1.0 - overlap_s / sync_s) * 100.0 : 0.0;
  }
};

void write_overlap_report(const bench::BenchConfig& cfg,
                          const std::vector<OverlapPoint>& points) {
  std::filesystem::create_directories("bench_results");
  std::ofstream os("bench_results/bench_fig9_overlap" + cfg.file_suffix() +
                   ".json");
  os << "{\n"
     << "  \"bench\": \"bench_fig9_mps\",\n"
     << "  \"dtype\": \"" << cfg.dtype_name() << "\",\n"
     << "  \"op\": \"" << cfg.op_name() << "\",\n"
     << "  \"comparison\": \"overlapped pipeline vs synchronous stages\",\n"
     << "  \"units\": {\"time\": \"simulated seconds\"},\n"
     << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    os << "  {\"nlog\": " << p.nlog << ", \"w\": " << p.w
       << ", \"waves\": " << p.waves << ", \"sync_s\": " << p.sync_s
       << ", \"overlap_s\": " << p.overlap_s
       << ", \"reduction_pct\": " << p.reduction_pct() << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

/// The Figure-9 sweep, monomorphic in the element type; the operator
/// stays a runtime tag because the erased executor path carries it.
template <typename T>
int run_sweep(const bench::BenchConfig& cfg) {
  const std::int64_t total = std::int64_t{1} << cfg.total_log2;
  const auto seed_data =
      util::random_i32(static_cast<std::size_t>(total), cfg.seed);
  const std::vector<T> data(seed_data.begin(), seed_data.end());
  std::printf(
      "Figure 9 reproduction -- Scan-MPS, G = 2^%d / N, GB/s [%s/%s]\n",
      cfg.total_log2, cfg.dtype_name(), cfg.op_name());

  // One cluster + context for the whole sweep: every (W) keeps its
  // executor, the plan cache carries across points and the workspace pool
  // eliminates per-point allocations (the unified-API calling convention).
  bench::BenchContext bc(1);

  // A second harness carries the fault schedule when --faults is given;
  // the primary sweep stays healthy so the table is unchanged.
  bench::BenchContext bc_faulted(1);
  if (!cfg.faults.empty()) bc_faulted.attach_faults(cfg.faults);
  std::vector<FaultPoint> fault_points;

  const int elem_bytes = core::dtype_bytes(cfg.dtype);
  util::Table table({"n", "G", "W=1", "W=2", "W=4", "W=8"});
  std::vector<double> w8_over_w4;
  std::vector<OverlapPoint> overlap_points;
  for (int nlog = cfg.min_n_log2; nlog <= cfg.total_log2; ++nlog) {
    const std::int64_t n = std::int64_t{1} << nlog;
    const std::int64_t g = total / n;
    std::vector<std::string> row = {std::to_string(nlog), std::to_string(g)};
    double t4 = 0.0;
    for (int w : {1, 2, 4, 8}) {
      if (n % w != 0) {
        row.push_back("-");
        continue;
      }
      const auto r = bc.run_typed<T>("Scan-MPS", {.w = w, .op = cfg.op},
                                     std::span<const T>(data), n, g);
      row.push_back(
          util::fmt_double(bench::gbps(total, r.seconds, elem_bytes), 2));
      if (w == 4) t4 = r.seconds;
      if (w == 8 && t4 > 0.0) w8_over_w4.push_back(t4 / r.seconds);
      bench::record_history(cfg, "Scan-MPS", n, g, w, "overlap", r);
      if (w > 1 && g > 1) {
        // Same point on the forced-synchronous stage path: the overlap
        // comparison the pipeline doc quotes.
        const auto rs = bc.run_typed<T>(
            "Scan-MPS",
            {.w = w, .pipeline = core::PipelineMode::kSync, .op = cfg.op},
            std::span<const T>(data), n, g);
        OverlapPoint p;
        p.nlog = nlog;
        p.w = w;
        p.waves = bc.ctx().plan_for(n, g, cfg.dtype, cfg.op, w).pipe.waves;
        p.sync_s = rs.seconds;
        p.overlap_s = r.seconds;
        overlap_points.push_back(p);
        bench::record_history(cfg, "Scan-MPS", n, g, w, "sync", rs);
      }
      if (!cfg.faults.empty()) {
        FaultPoint p;
        p.nlog = nlog;
        p.w = w;
        p.healthy_s = r.seconds;
        try {
          const auto rf =
              bc_faulted.run_typed<T>("Scan-MPS", {.w = w, .op = cfg.op},
                                      std::span<const T>(data), n, g);
          p.faulted_s = rf.seconds;
          p.report = rf.faults;
        } catch (const util::Error& e) {
          p.error = e.what();
        }
        fault_points.push_back(std::move(p));
      }
    }
    table.add_row(std::move(row));
  }
  bench::print_table(table, cfg);

  if (!cfg.faults.empty()) {
    write_faults_report(cfg, fault_points);
    double worst = 0.0;
    for (const auto& p : fault_points) {
      if (p.error.empty() && p.healthy_s > 0.0) {
        worst = std::max(worst, (p.faulted_s / p.healthy_s - 1.0) * 100.0);
      }
    }
    std::printf(
        "\nResilience overhead under '%s': worst point +%.1f%% simulated "
        "time -> bench_results/bench_fig9_mps_faults%s.json\n",
        cfg.faults.c_str(), worst, cfg.file_suffix().c_str());
  }

  if (!overlap_points.empty()) {
    write_overlap_report(cfg, overlap_points);
    double w4_sum = 0.0;
    double w4_min = 1e300;
    int w4_count = 0;
    for (const auto& p : overlap_points) {
      if (p.w != 4) continue;
      w4_sum += p.reduction_pct();
      w4_min = std::min(w4_min, p.reduction_pct());
      ++w4_count;
    }
    if (w4_count > 0) {
      std::printf(
          "\nOverlapped pipeline vs synchronous stages (W=4): mean "
          "-%.1f%%, min -%.1f%% modeled makespan -> "
          "bench_results/bench_fig9_overlap%s.json\n",
          w4_sum / w4_count, w4_min, cfg.file_suffix().c_str());
    }
  }

  std::printf(
      "\nShape checks vs the paper:\n"
      "  W=8/W=4 relative throughput at smallest n: %.2f (paper: well below "
      "1, host staging)\n"
      "  W=8/W=4 relative throughput at largest  n: %.2f (paper: recovers "
      "towards/above 1)\n",
      w8_over_w4.front(), w8_over_w4.back());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = bench::parse_bench_config(
      argc, argv,
      "Reproduces Figure 9: Scan-MPS throughput vs problem size for "
      "W in {1,2,4,8}. --dtype/--op select the element type and operator.");

  switch (cfg.dtype) {
    case core::DType::kI32: return run_sweep<std::int32_t>(cfg);
    case core::DType::kI64: return run_sweep<std::int64_t>(cfg);
    case core::DType::kU32: return run_sweep<std::uint32_t>(cfg);
    case core::DType::kF32: return run_sweep<float>(cfg);
    case core::DType::kF64: return run_sweep<double>(cfg);
  }
  return 1;
}
