/// bench_mn_combos: reproduce the Section 5.2 (M, W) combination study --
/// 8 GPUs total arranged as M=2 x W=4, M=4 x W=2 and M=8 x W=1.
///
/// Paper: M=2,W=4 is best; M=8,W=1 worst (MPI overhead per node); the
/// gap narrows with data size -- 1.48x at n=13 down to 1.03x at n=28,
/// because MPI overhead is near-constant while compute grows with N.

#include "common.hpp"

using namespace mgs;

int main(int argc, char** argv) {
  const auto cfg = bench::parse_bench_config(
      argc, argv,
      "Reproduces Section 5.2's (M, W) combination study with 8 GPUs.");

  const std::int64_t total = std::int64_t{1} << cfg.total_log2;
  const auto data = util::random_i32(static_cast<std::size_t>(total),
                                     cfg.seed);

  std::printf(
      "Section 5.2 reproduction -- (M, W) combinations of 8 GPUs, "
      "G = 2^%d / N, GB/s\n",
      cfg.total_log2);
  util::Table table(
      {"n", "G", "M=2,W=4", "M=4,W=2", "M=8,W=1", "best/worst"});

  double first_gap = 0.0, last_gap = 0.0;
  for (int nlog = cfg.min_n_log2; nlog <= cfg.total_log2; ++nlog) {
    const std::int64_t n = std::int64_t{1} << nlog;
    const std::int64_t g = total / n;
    std::vector<double> secs;
    for (const auto& [m, w] : {std::pair{2, 4}, std::pair{4, 2},
                              std::pair{8, 1}}) {
      const auto plan = bench::tuned_plan_multinode(m, w, data, n, g);
      secs.push_back(bench::multinode_run(m, w, data, n, g, plan).seconds);
    }
    const double gap = util::max_of(secs) / util::min_of(secs);
    table.add_row({std::to_string(nlog), std::to_string(g),
                   util::fmt_double(bench::gbps(total, secs[0]), 2),
                   util::fmt_double(bench::gbps(total, secs[1]), 2),
                   util::fmt_double(bench::gbps(total, secs[2]), 2),
                   util::fmt_speedup(gap)});
    if (nlog == cfg.min_n_log2) first_gap = gap;
    if (nlog == cfg.total_log2) last_gap = gap;
  }
  bench::print_table(table, cfg);

  std::printf(
      "\nShape check (paper, at total=2^28: 1.48x at n=13 -> 1.03x at "
      "n=28):\n  best/worst gap here: %.2fx at n=%d -> %.2fx at n=%d\n",
      first_gap, cfg.min_n_log2, last_gap, cfg.total_log2);
  return 0;
}
