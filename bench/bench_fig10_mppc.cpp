/// bench_fig10_mppc: reproduce Figure 10 -- Scan-MP-PC throughput for
/// (W=4, V=2) and (W=8, V=4), with G = total/N problems per point.
/// Communication stays on P2P links inside each PCIe network; the largest
/// n (G < Y) reduces the number of networks, which is why the paper omits
/// n = 28 from this figure.

#include "common.hpp"

using namespace mgs;

int main(int argc, char** argv) {
  const auto cfg = bench::parse_bench_config(
      argc, argv,
      "Reproduces Figure 10: Scan-MP-PC throughput for (W=4,V=2) and "
      "(W=8,V=4).");

  const std::int64_t total = std::int64_t{1} << cfg.total_log2;
  const auto data = util::random_i32(static_cast<std::size_t>(total),
                                     cfg.seed);
  std::printf("Figure 10 reproduction -- Scan-MP-PC, G = 2^%d / N, GB/s\n",
              cfg.total_log2);

  util::Table table({"n", "G", "W=4,V=2", "W=8,V=4"});
  // The paper stops at n = 27 (G = 2 problems for 2 networks).
  for (int nlog = cfg.min_n_log2; nlog <= cfg.total_log2 - 1; ++nlog) {
    const std::int64_t n = std::int64_t{1} << nlog;
    const std::int64_t g = total / n;
    std::vector<std::string> row = {std::to_string(nlog), std::to_string(g)};
    for (const auto& [y, v] : {std::pair{2, 2}, std::pair{2, 4}}) {
      const auto plan = bench::tuned_plan_multi(n / v, g / y + 1, v);
      const auto r = bench::mppc_run(y, v, data, n, g, plan);
      row.push_back(util::fmt_double(bench::gbps(total, r.seconds), 2));
    }
    table.add_row(std::move(row));
  }
  bench::print_table(table, cfg);

  std::printf(
      "\nShape check vs the paper: both configurations avoid host-staged\n"
      "copies entirely, so neither curve shows Figure 9's W=8 collapse;\n"
      "V=4 leads at large n where per-problem compute dominates.\n");
  return 0;
}
