/// bench_fig13_multinode: reproduce Figure 13 -- the multi-node
/// Scan-MPS proposal (M=2 nodes x W=4 GPUs, MPI gather/scatter of the
/// auxiliary array) versus the five single-GPU libraries, with
/// G = total/N problems per point.
///
/// Paper's summary: 8.51x over CUDPP, 43.82x over Thrust, 24.85x over
/// ModernGPU, 7.7x over CUB and 41.2x over LightScan on average; larger
/// at small n for the no-batch libraries (50x/88x/10x/109x at n=14),
/// smaller at n=28 (8.9x/3.1x/3.1x/3.2x).

#include "common.hpp"

using namespace mgs;

int main(int argc, char** argv) {
  const auto cfg = bench::parse_bench_config(
      argc, argv,
      "Reproduces Figure 13: multi-node Scan-MPS (M=2, W=4) vs the five "
      "libraries.");

  const std::int64_t total = std::int64_t{1} << cfg.total_log2;
  const auto data = util::random_i32(static_cast<std::size_t>(total),
                                     cfg.seed);
  const std::vector<std::string> libs = {"CUDPP", "Thrust", "ModernGPU",
                                         "CUB", "LightScan"};

  std::printf(
      "Figure 13 reproduction -- multi-node Scan-MPS (M=2, W=4), "
      "G = 2^%d / N, GB/s\n",
      cfg.total_log2);
  util::Table table({"n", "G", "Scan-MPS(MN)", "CUDPP", "Thrust",
                     "ModernGPU", "CUB", "LightScan"});

  std::vector<std::vector<double>> speedups(libs.size());
  std::vector<int> nlogs;
  for (int nlog = cfg.min_n_log2; nlog <= cfg.total_log2; ++nlog) {
    const std::int64_t n = std::int64_t{1} << nlog;
    const std::int64_t g = total / n;
    nlogs.push_back(nlog);

    const auto plan = bench::tuned_plan_multinode(2, 4, data, n, g);
    const auto rours = bench::multinode_run(2, 4, data, n, g, plan);
    bench::record_history(cfg, "Scan-MPS-multinode", n, g, 8, "auto", rours);
    const double ours = rours.seconds;

    std::vector<std::string> row = {
        std::to_string(nlog), std::to_string(g),
        util::fmt_double(bench::gbps(total, ours), 2)};
    for (std::size_t li = 0; li < libs.size(); ++li) {
      const double s = bench::baseline_seconds(libs[li], data, n, g);
      row.push_back(util::fmt_double(bench::gbps(total, s), 2));
      speedups[li].push_back(s / ours);
    }
    table.add_row(std::move(row));
  }
  bench::print_table(table, cfg);

  std::printf("\nAverage speedup of multi-node Scan-MPS (paper in brackets):\n");
  const double paper_avg[] = {8.51, 43.82, 24.85, 7.7, 41.2};
  for (std::size_t li = 0; li < libs.size(); ++li) {
    std::printf("  vs %-10s %7.2fx   [paper: %.2fx]\n", libs[li].c_str(),
                util::mean(speedups[li]), paper_avg[li]);
  }
  std::printf(
      "\nShape check (paper): no-batch libraries lose hardest at small n "
      "(Thrust %0.1fx at n=%d here)\nand the gap narrows at large n "
      "(Thrust %0.1fx at n=%d here).\n",
      speedups[1].front(), nlogs.front(), speedups[1].back(), nlogs.back());
  return 0;
}
