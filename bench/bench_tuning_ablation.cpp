/// bench_tuning_ablation: ablations for the tuning premises --
///  (a) the (s, p, l) derivation per architecture (Premises 1-2);
///  (b) a P sweep showing Premise 2's trade-off (more work per thread
///      helps until registers run out and occupancy collapses);
///  (c) a K sweep showing Premise 3's trade-off (few chunks = less aux
///      traffic, too few = Stage-2/grid underutilization) and where the
///      Equation-1 bound lands;
///  (d) block-shape sweep around the Table-3 bold row (Premise 1).

#include "common.hpp"

using namespace mgs;

int main(int argc, char** argv) {
  const auto cfg = bench::parse_bench_config(
      argc, argv, "Tuning-premise ablations (P, K, block shape).");

  const std::int64_t n = std::int64_t{1} << cfg.total_log2;
  const std::int64_t g = 1;
  const auto data =
      util::random_i32(static_cast<std::size_t>(n * g), cfg.seed);
  const auto spec = sim::k80_spec();

  // (a) Premise 1+2 derivation per architecture.
  std::printf("(a) Premise 1+2 derivation:\n");
  for (const char* name : {"k80", "maxwell", "pascal"}) {
    const auto choice = core::derive_spl(sim::spec_by_name(name), 4);
    std::printf("  %-8s -> (s=%d, p=%d, l=%d), %d regs/thread\n", name,
                choice.plan.s13.s_log2(), choice.plan.s13.p_log2(),
                choice.plan.s13.l_log2(),
                choice.plan.s13.regs_per_thread());
  }

  // (b) P sweep at the derived block shape.
  std::printf("\n(b) Premise 2 -- P sweep (n=%d, G=%lld):\n", cfg.total_log2,
              static_cast<long long>(g));
  util::Table ptable({"P", "regs/thread", "blocks/SM", "GB/s"});
  for (int p : {4, 8, 16, 32}) {
    auto plan = core::derive_spl(spec, 4).plan;
    plan.s13.p = p;
    plan.s13.k = 4;
    if (plan.s13.regs_per_thread() > spec.max_regs_per_thread) break;
    const auto occ = sim::occupancy(spec, plan.s13.threads(),
                                    plan.s13.regs_per_thread(),
                                    plan.s13.smem_bytes(4));
    const auto r = bench::sp_run(data, n, g, plan);
    ptable.add_row({std::to_string(p),
                    std::to_string(plan.s13.regs_per_thread()),
                    std::to_string(occ.blocks_per_sm),
                    util::fmt_double(bench::gbps(n * g, r.seconds), 2)});
  }
  bench::print_table(ptable, cfg);

  // (c) K sweep: U-shaped trade-off + the Equation 1 bound.
  auto base = core::derive_spl(spec, 4).plan;
  const auto kmax = core::k1_max_eq1(n, g, base, spec);
  std::printf("\n(c) Premise 3 -- K sweep (Eq.1 bound: K <= %lld):\n",
              static_cast<long long>(kmax));
  util::Table ktable({"K", "chunks/problem", "aux elems", "GB/s"});
  for (std::int64_t k = 1; k <= 256; k *= 4) {
    auto plan = base;
    plan.s13.k = static_cast<int>(k);
    const auto lay = core::make_layout(n, g, plan.s13);
    if (lay.bx < 1) break;
    const auto r = bench::sp_run(data, n, g, plan);
    ktable.add_row({std::to_string(k), std::to_string(lay.bx),
                    std::to_string(lay.aux_elems()),
                    util::fmt_double(bench::gbps(n * g, r.seconds), 2)});
  }
  bench::print_table(ktable, cfg);

  // (e, printed after d) Automatic search over the full (p, lx, K) space
  // -- the paper's future work, implemented against the simulator.
  const auto print_autotune = [&] {
    mgs::core::Autotuner tuner(spec);
    const std::int64_t n_small = std::min<std::int64_t>(n, 1 << 20);
    const auto& best = tuner.tune(n_small, 4);
    std::printf("\n(e) Automatic (s,p,l,K) search (n=%lld, G=4): best P=%d, "
                "Lx=%d, K=%d (%s); %zu candidates evaluated\n",
                static_cast<long long>(n_small), best.plan.s13.p,
                best.plan.s13.lx, best.plan.s13.k,
                mgs::util::fmt_time_us(best.seconds).c_str(),
                tuner.last_report().size());
    util::Table atable({"P", "Lx", "K", "time", "best"});
    for (const auto& row : tuner.last_report()) {
      atable.add_row({std::to_string(row.p), std::to_string(row.lx),
                      std::to_string(row.k),
                      mgs::util::fmt_time_us(row.seconds),
                      row.best ? "*" : ""});
    }
    bench::print_table(atable, cfg);
  };

  // (d) Block-shape sweep around the Table-3 bold row.
  std::printf("\n(d) Premise 1 -- block-shape sweep (Lx, fixed P=8, K=4):\n");
  util::Table ltable({"Lx", "warps/block", "blocks/SM", "occupancy", "GB/s"});
  for (int lx : {32, 64, 128, 256, 512}) {
    auto plan = base;
    plan.s13.lx = lx;
    plan.s13.k = 4;
    const auto occ = sim::occupancy(spec, lx, plan.s13.regs_per_thread(),
                                    plan.s13.smem_bytes(4));
    const auto r = bench::sp_run(data, n, g, plan);
    ltable.add_row({std::to_string(lx), std::to_string(lx / 32),
                    std::to_string(occ.blocks_per_sm),
                    util::fmt_double(occ.warp_occupancy * 100, 0) + "%",
                    util::fmt_double(bench::gbps(n * g, r.seconds), 2)});
  }
  bench::print_table(ltable, cfg);

  print_autotune();
  return 0;
}
