/// bench_fig14_breakdown: reproduce Figure 14 -- the per-phase time
/// breakdown of the multi-node proposal (M=2 nodes, W=4 GPUs) across
/// problem sizes, G = total/N.
///
/// Expected shape (paper): the MPI overhead stays almost constant across
/// problem sizes; MPI_Gather/MPI_Scatter shrink as G decreases (fewer
/// Stage-2 elements); compute stages grow with per-problem size.
///
/// Besides the table, the largest-n point is re-run under a TraceSession
/// and exported as bench_results/bench_fig14_breakdown.json -- the JSON
/// run-report whose critical-path section is the programmatic Figure 14
/// (render with `mgs_trace --in bench_results/bench_fig14_breakdown.json`).

#include <filesystem>

#include "common.hpp"

using namespace mgs;

int main(int argc, char** argv) {
  const auto cfg = bench::parse_bench_config(
      argc, argv,
      "Reproduces Figure 14: time breakdown for M=2, W=4 across problem "
      "sizes.");

  const std::int64_t total = std::int64_t{1} << cfg.total_log2;
  const auto data = util::random_i32(static_cast<std::size_t>(total),
                                     cfg.seed);

  std::printf(
      "Figure 14 reproduction -- breakdown (us) for M=2, W=4, "
      "G = 2^%d / N\n",
      cfg.total_log2);
  util::Table table({"n", "G", "Stage1", "MPI_Gather", "Stage2",
                     "MPI_Scatter", "Stage3", "MPI_Barrier", "total"});

  double gather_small = 0.0, gather_large = 0.0;
  for (int nlog = cfg.min_n_log2; nlog <= cfg.total_log2; ++nlog) {
    const std::int64_t n = std::int64_t{1} << nlog;
    const std::int64_t g = total / n;
    const auto plan = bench::tuned_plan_multinode(2, 4, data, n, g);
    const auto r = bench::multinode_run(2, 4, data, n, g, plan);

    auto us = [&](const char* phase) {
      return util::fmt_double(r.breakdown.get(phase) * 1e6, 1);
    };
    table.add_row({std::to_string(nlog), std::to_string(g), us("Stage1"),
                   us("MPI_Gather"), us("Stage2"), us("MPI_Scatter"),
                   us("Stage3"), us("MPI_Barrier"),
                   util::fmt_double(r.seconds * 1e6, 1)});
    if (nlog == cfg.min_n_log2) gather_small = r.breakdown.get("MPI_Gather");
    if (nlog == cfg.total_log2) gather_large = r.breakdown.get("MPI_Gather");
    bench::record_history(cfg, "Scan-MPS-multinode", n, g, 8, "auto", r);
  }
  bench::print_table(table, cfg);

  std::printf(
      "\nShape check (paper): MPI_Gather/MPI_Scatter time shrinks as G "
      "decreases\n(fewer Stage-2 elements): gather %0.1f us at the smallest "
      "n vs %0.1f us at the largest.\n",
      gather_small * 1e6, gather_large * 1e6);

  // Representative traced run (largest n, one problem per GPU pair) ->
  // JSON run-report with span-level critical-path attribution.
  {
    const std::int64_t n = total;
    const std::int64_t g = 1;
    const auto plan = bench::tuned_plan_multinode(2, 4, data, n, g);
    obs::TraceSession ts;
    const auto r = bench::multinode_run(2, 4, data, n, g, plan);
    std::filesystem::create_directories("bench_results");
    core::write_run_report_file(
        "bench_results/bench_fig14_breakdown.json",
        core::make_run_info("Scan-MPS-multinode", n, 8, r), ts);
    std::printf("-> bench_results/bench_fig14_breakdown.json "
                "(mgs_trace --in ... renders the attribution)\n");
    if (cfg.trace_guard) {
      cfg.trace_guard->set_run_info(
          core::make_run_info("Scan-MPS-multinode", n, 8, r));
    }
    // Traced point: the history entry carries the analyzer's category
    // attribution alongside the breakdown.
    bench::record_history(cfg, "Scan-MPS-multinode", n, g, 8, "auto", r,
                          obs::analyze_last_run(ts.spans()).by_category);
  }
  return 0;
}
