/// bench_scaling: strong- and weak-scaling study of the proposals across
/// GPU counts -- the scalability claim behind Premise 4 ("Scan primitive
/// scales very well when the number of GPUs rises") quantified:
///  * strong scaling: fixed problem (N = total, G = 1), W = 1..8;
///  * weak scaling: fixed per-GPU data (N = W * total/8, G = 8), W = 1..8;
///  * the gather-strategy variants at W = 4 (explicit copies vs direct
///    peer writes).

#include "common.hpp"

using namespace mgs;

int main(int argc, char** argv) {
  const auto cfg = bench::parse_bench_config(
      argc, argv, "GPU-count scaling study (strong + weak).");

  const std::int64_t total = std::int64_t{1} << cfg.total_log2;
  const auto data = util::random_i32(static_cast<std::size_t>(total),
                                     cfg.seed);

  std::printf("Strong scaling: N = 2^%d, G = 1\n", cfg.total_log2);
  util::Table strong({"W", "GB/s", "speedup vs W=1", "efficiency"});
  double t1 = 0.0;
  for (int w : {1, 2, 4, 8}) {
    const auto plan = w == 1 ? bench::tuned_plan(total, 1, 1)
                             : bench::tuned_plan_multi(total / w, 1, w);
    const double s = (w == 1)
                         ? bench::sp_run(data, total, 1, plan).seconds
                         : bench::mps_run(w, data, total, 1, plan).seconds;
    if (w == 1) t1 = s;
    strong.add_row({std::to_string(w),
                    util::fmt_double(bench::gbps(total, s), 2),
                    util::fmt_speedup(t1 / s),
                    util::fmt_double(t1 / s / w * 100, 0) + "%"});
  }
  bench::print_table(strong, cfg);

  std::printf("\nWeak scaling: N/GPU = 2^%d, G = 8\n", cfg.total_log2 - 6);
  util::Table weak({"W", "N", "GB/s", "time vs W=1"});
  const std::int64_t per_gpu = total / 64;  // so W=8 x G=8 fits the data
  double w1 = 0.0;
  for (int w : {1, 2, 4, 8}) {
    const std::int64_t n = per_gpu * w;
    const auto plan = w == 1 ? bench::tuned_plan(n, 8, 1)
                             : bench::tuned_plan_multi(per_gpu, 8, w);
    const double s = (w == 1)
                         ? bench::sp_run(data, n, 8, plan).seconds
                         : bench::mps_run(w, data, n, 8, plan).seconds;
    if (w == 1) w1 = s;
    weak.add_row({std::to_string(w), std::to_string(n),
                  util::fmt_double(bench::gbps(n * 8, s), 2),
                  util::fmt_double(s / w1, 2)});
  }
  bench::print_table(weak, cfg);

  std::printf("\nGather strategy at W = 4, G = 64:\n");
  {
    const std::int64_t n = total / 64;
    const std::int64_t g = 64;
    const std::vector<int> gpus = {0, 1, 2, 3};
    auto plan = bench::tuned_plan_multi(n / 4, g, 4);
    auto c1 = topo::tsubame_kfc_cluster(1);
    auto b1 = core::distribute_batch<int>(c1, gpus, data, n, g);
    const auto regular =
        core::scan_mps<int>(c1, gpus, b1, n, g, plan,
                            core::ScanKind::kInclusive);
    auto c2 = topo::tsubame_kfc_cluster(1);
    auto b2 = core::distribute_batch<int>(c2, gpus, data, n, g);
    const auto direct = core::scan_mps_direct<int>(
        c2, gpus, b2, n, g, plan, core::ScanKind::kInclusive);
    std::printf("  explicit 2-D gather: %s   direct P2P peer writes: %s "
                "(%.2fx)\n",
                util::fmt_time_us(regular.seconds).c_str(),
                util::fmt_time_us(direct.seconds).c_str(),
                regular.seconds / direct.seconds);
  }
  return 0;
}
