/// bench_fig11_g1: reproduce Figure 11 -- single-problem (G = 1)
/// comparison against CUDPP, Thrust, ModernGPU, CUB and LightScan, plus
/// our single-GPU proposal (Scan-SP) and the best multi-GPU (W, V)
/// configuration per point.
///
/// Paper's summary for this figure: our proposal averages 1.21x over
/// CUDPP, 7.8x over Thrust, 1.31x over ModernGPU, 1.31x over LightScan
/// and 1.04x over CUB -- multi-GPU cannot shine at G=1 because Stage 2
/// underuses the GPU and communication latency eats small problems.

#include "common.hpp"

using namespace mgs;

int main(int argc, char** argv) {
  const auto cfg = bench::parse_bench_config(
      argc, argv,
      "Reproduces Figure 11: G=1 comparison vs the five libraries.");

  const std::int64_t total = std::int64_t{1} << cfg.total_log2;
  const auto data = util::random_i32(static_cast<std::size_t>(total),
                                     cfg.seed);
  const std::vector<std::string> libs = {"CUDPP", "Thrust", "ModernGPU",
                                         "CUB", "LightScan"};

  std::printf("Figure 11 reproduction -- G = 1, GB/s (best (W,V) per point)\n");
  util::Table table({"n", "Ours(best W)", "(W)", "Scan-SP", "CUDPP", "Thrust",
                     "ModernGPU", "CUB", "LightScan"});

  // Shared context for the sweep: per-(proposal, W) executors with a
  // common plan cache and workspace pool (the unified API).
  bench::BenchContext bc(1);

  std::vector<std::vector<double>> speedups(libs.size());
  for (int nlog = cfg.min_n_log2; nlog <= cfg.total_log2; ++nlog) {
    const std::int64_t n = std::int64_t{1} << nlog;

    // Ours: try W in {2, 4, 8} and keep the best -- the paper's caption:
    // "each N is solved with the (W, V) > 1 parameters which achieve the
    // best performance" (Scan-SP is plotted separately).
    double best_ours = 1e30;
    int best_w = 2;
    for (int w : {2, 4, 8}) {
      if (n % w != 0) continue;
      const auto r = bc.run("Scan-MPS", {.w = w}, data, n, 1);
      bench::record_history(cfg, "Scan-MPS", n, 1, w, "auto", r);
      if (r.seconds < best_ours) {
        best_ours = r.seconds;
        best_w = w;
      }
    }
    const auto rsp = bc.run("Scan-SP", {}, data, n, 1);
    bench::record_history(cfg, "Scan-SP", n, 1, 1, "sync", rsp);
    const double sp = rsp.seconds;

    std::vector<std::string> row = {
        std::to_string(nlog), util::fmt_double(bench::gbps(n, best_ours), 2),
        std::to_string(best_w), util::fmt_double(bench::gbps(n, sp), 2)};
    for (std::size_t li = 0; li < libs.size(); ++li) {
      const double s = bench::baseline_seconds(libs[li], data, n, 1);
      row.push_back(util::fmt_double(bench::gbps(n, s), 2));
      speedups[li].push_back(s / best_ours);
    }
    table.add_row(std::move(row));
  }
  bench::print_table(table, cfg);

  std::printf("\nAverage speedup of our best proposal (paper in brackets):\n");
  const double paper[] = {1.21, 7.8, 1.31, 1.04, 1.31};
  const std::size_t order[] = {0, 1, 2, 3, 4};
  for (std::size_t li : order) {
    std::printf("  vs %-10s %6.2fx   [paper: %.2fx]\n", libs[li].c_str(),
                util::mean(speedups[li]), paper[li]);
  }
  return 0;
}
