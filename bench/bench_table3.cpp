/// bench_table3: regenerate the paper's Table 3 -- SM occupancy
/// configurations on Kepler compute capability 3.7 -- directly from the
/// occupancy calculator, plus the same sweep for the other device presets
/// (showing why Premise 1 picks 4 warps/block on the K80).

#include "common.hpp"

using namespace mgs;

namespace {

void print_for(const sim::DeviceSpec& spec, bool csv) {
  std::printf("\n== %s (cc %d.%d) ==\n", spec.name.c_str(), spec.cc_major,
              spec.cc_minor);
  util::Table table({"warps/block", "regs/thread", "smem/block (B)",
                     "SM warp occupancy", "SM blocks", "limited by"});
  // The paper's Table 3 rows: registers scale down to 64, shared memory
  // scales with the tile beyond 4 warps. (255 registers is the cc 3.x
  // per-thread cap; the hardware allocates it as the paper's "256".)
  const int regs_rows[] = {255, 128, 64, 64, 64, 64};
  const std::int64_t smem_rows[] = {7168, 7168, 7168, 14336, 28672, 49152};
  int row = 0;
  for (int warps = 1; warps <= 32; warps *= 2, ++row) {
    const int regs = std::min(regs_rows[row], spec.max_regs_per_thread);
    const std::int64_t smem =
        std::min(smem_rows[row], spec.shared_mem_per_block);
    const auto r = sim::occupancy(spec, warps * spec.warp_size, regs, smem);
    table.add_row({std::to_string(warps), std::to_string(regs),
                   std::to_string(smem),
                   util::fmt_double(r.warp_occupancy * 100, 0) + "%",
                   std::to_string(r.blocks_per_sm),
                   sim::to_string(r.limiter)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = bench::parse_bench_config(
      argc, argv,
      "Reproduces Table 3: SM occupancy configurations per warps/block.");

  std::printf("Table 3 reproduction -- performance parameters per SM\n");
  std::printf("(paper values for cc 3.7: 25/50/100/100/100/100%% occupancy,\n");
  std::printf(" 16/16/16/8/4/2 blocks; the bold row is 4 warps+64 regs)\n");
  print_for(sim::k80_spec(), cfg.csv);
  print_for(sim::maxwell_spec(), cfg.csv);
  print_for(sim::pascal_spec(), cfg.csv);

  const auto choice = core::derive_spl(sim::k80_spec(), 4);
  std::printf("\nPremise 1+2 derivation on the K80:\n  %s\n",
              choice.rationale.c_str());
  std::printf("  -> (s=%d, p=%d, l=%d), the paper's Section 3.2 values.\n",
              choice.plan.s13.s_log2(), choice.plan.s13.p_log2(),
              choice.plan.s13.l_log2());
  return 0;
}
