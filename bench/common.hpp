#pragma once
/// \file common.hpp
/// Shared machinery for the figure/table harnesses. Each bench binary
/// reproduces one experiment of the paper's Section 5 on the simulated
/// TSUBAME-KFC platform and prints the same rows/series the paper plots.
///
/// The paper solves 2^28 total elements; the default here is 2^22 so the
/// functional simulation stays fast on a laptop -- pass --total-log2 28
/// to run at paper scale. Throughput numbers are simulated (see
/// DESIGN.md); the reproduction target is the *shape*: who wins, by what
/// factor, where the crossovers fall.

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mgs/baselines/registry.hpp"
#include "mgs/core/api.hpp"
#include "mgs/obs/history.hpp"
#include "mgs/util/cli.hpp"
#include "mgs/util/random.hpp"
#include "mgs/util/stats.hpp"
#include "mgs/util/table.hpp"

namespace mgs::bench {

/// Records every run of the harness in an obs::TraceSession and writes
/// the JSON run-report when flushed (the --trace flag). Held by
/// shared_ptr in BenchConfig so the session outlives parse_bench_config.
/// Live guards register an atexit sweep, so the report is written even
/// when a harness leaves through std::exit (which skips destructors of
/// automatic and shared_ptr-held objects); the destructor unregisters and
/// flushes for the normal return path, and flush() is idempotent.
class TraceGuard {
 public:
  explicit TraceGuard(std::string path) : path_(std::move(path)) {
    info_.executor = "bench-harness";
    register_guard(this);
  }
  ~TraceGuard() {
    unregister_guard(this);
    flush();
  }
  TraceGuard(const TraceGuard&) = delete;
  TraceGuard& operator=(const TraceGuard&) = delete;

  /// Write the report; second and later calls (e.g. the atexit sweep
  /// after a normal destruction) are no-ops.
  void flush() {
    if (flushed_) return;
    flushed_ = true;
    try {
      core::write_run_report_file(path_, info_, session_);
      std::fprintf(stderr, "trace: wrote %s\n", path_.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trace: %s\n", e.what());
    }
  }

  /// Stamp the report header with a representative run's summary.
  void set_run_info(obs::RunInfo info) { info_ = std::move(info); }
  obs::TraceSession& session() { return session_; }

 private:
  static std::vector<TraceGuard*>& live_guards() {
    static std::vector<TraceGuard*> guards;
    return guards;
  }
  static void flush_live_guards() {
    for (TraceGuard* g : live_guards()) g->flush();
  }
  static void register_guard(TraceGuard* g) {
    static const bool registered = [] {
      std::atexit(&flush_live_guards);
      return true;
    }();
    (void)registered;
    live_guards().push_back(g);
  }
  static void unregister_guard(TraceGuard* g) {
    auto& v = live_guards();
    v.erase(std::remove(v.begin(), v.end(), g), v.end());
  }

  std::string path_;
  bool flushed_ = false;
  obs::RunInfo info_;
  obs::TraceSession session_;
};

/// The label bench runs record history under when --history-label is
/// omitted: `git rev-parse --short HEAD`, or "local" outside a repo (or
/// when git is unavailable) -- so ad-hoc laptop runs still land on a
/// consistent timeline point instead of being dropped.
inline std::string detect_git_label() {
  std::string out;
  if (FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    while (std::fgets(buf, sizeof buf, p) != nullptr) out += buf;
    const int rc = ::pclose(p);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
      out.pop_back();
    }
    if (rc != 0) out.clear();
  }
  return out.empty() ? "local" : out;
}

struct BenchConfig {
  int total_log2 = 22;    ///< total elements per data point (paper: 28)
  int min_n_log2 = 13;    ///< smallest problem size exponent (paper: 13)
  bool csv = false;       ///< machine-readable output
  std::uint64_t seed = 20180521;  ///< IPDPS 2018 :-)
  std::string faults;     ///< fault-injection spec (see sim/fault.hpp); ""
                          ///< = healthy run (bit-identical to pre-fault)
  std::string trace;      ///< run-report output path (--trace); "" = off
  std::shared_ptr<TraceGuard> trace_guard;  ///< live session when tracing
  core::DType dtype = core::DType::kI32;  ///< --dtype: element type
  core::OpTag op = core::OpTag::kPlus;    ///< --op: scan operator
  std::string history_label;  ///< label runs append to the NDJSON history
                              ///< under; auto-detected from git when the
                              ///< flag is omitted, "" (--history-label
                              ///< none) = off
  std::string history_file = "bench_results/history.ndjson";

  const char* dtype_name() const { return core::to_string(dtype); }
  const char* op_name() const { return core::to_string(op); }
  /// "" for the default i32/plus config, "_f64_max"-style otherwise --
  /// non-default configs write side-by-side artifacts instead of
  /// clobbering the baseline-tracked i32 files.
  std::string file_suffix() const {
    if (dtype == core::DType::kI32 && op == core::OpTag::kPlus) return "";
    return std::string("_") + dtype_name() + "_" + op_name();
  }
};

inline BenchConfig parse_bench_config(int argc, char** argv,
                                      const std::string& summary) {
  util::Cli cli(argc, argv);
  cli.describe("total-log2", "log2 of total elements per point (default 22; paper used 28)");
  cli.describe("min-n-log2", "smallest per-problem size exponent (default 13)");
  cli.describe("csv", "emit CSV instead of an aligned table");
  cli.describe("seed", "RNG seed for the input data");
  cli.describe("faults",
               "fault-injection spec, e.g. 'transient:prob=0.01;straggler:dev=1,factor=4' "
               "(kinds: transient, link-down, device-down, corrupt, straggler, policy)");
  cli.describe("trace",
               "record every run in an obs::TraceSession and write the JSON "
               "run-report here at exit (inspect with mgs_trace --in FILE)");
  cli.describe("dtype",
               "element type: i32 (default), i64, u32, f32, f64");
  cli.describe("op", "scan operator: plus (default), max, min");
  cli.describe("history-label",
               "append this harness's data points to the run history under "
               "this label (mgs_perf history show). Default: the current "
               "git short sha, or 'local' outside a repo; 'none' disables "
               "recording");
  cli.describe("history-file",
               "history store path (default bench_results/history.ndjson)");
  if (cli.help_requested()) {
    cli.print_help(summary);
    std::exit(0);
  }
  cli.reject_unknown();
  BenchConfig cfg;
  cfg.total_log2 = static_cast<int>(cli.get_int("total-log2", 22));
  cfg.min_n_log2 = static_cast<int>(cli.get_int("min-n-log2", 13));
  cfg.csv = cli.get_bool("csv", false);
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 20180521));
  cfg.faults = cli.get_string("faults", "");
  if (!cfg.faults.empty()) {
    sim::parse_fault_plan(cfg.faults);  // fail fast on a malformed spec
  }
  cfg.trace = cli.get_string("trace", "");
  if (!cfg.trace.empty()) {
    cfg.trace_guard = std::make_shared<TraceGuard>(cfg.trace);
  }
  cfg.dtype = core::parse_dtype(cli.get_string("dtype", "i32"));
  cfg.op = core::parse_op(cli.get_string("op", "plus"));
  // Auto-label: an explicit --history-label wins; otherwise every run is
  // recorded under the current commit so local timelines accumulate for
  // free. "none" is the opt-out.
  cfg.history_label = cli.get_string("history-label", "");
  if (cfg.history_label.empty()) cfg.history_label = detect_git_label();
  if (cfg.history_label == "none") cfg.history_label.clear();
  cfg.history_file =
      cli.get_string("history-file", "bench_results/history.ndjson");
  MGS_REQUIRE(cfg.total_log2 >= cfg.min_n_log2 && cfg.total_log2 <= 28,
              "--total-log2 must be in [--min-n-log2, 28]");
  return cfg;
}

/// Append one labeled data point to the NDJSON run history -- the shared
/// hook every bench binary calls. Runs record under the auto-detected git
/// label by default (--history-label none disables, leaving the label
/// empty and making this a no-op). by_category stays zero for untraced
/// runs; the traced paths fill
/// it from the analyzer before appending. Store failures are reported,
/// never fatal: history is telemetry, not a gate.
inline void record_history(const BenchConfig& cfg, const std::string& executor,
                           std::int64_t n, std::int64_t g, int devices,
                           const std::string& pipeline,
                           const core::RunResult& r,
                           const obs::CategorySeconds& by_category = {}) {
  if (cfg.history_label.empty()) return;
  try {
    obs::HistoryEntry e;
    e.key.executor = executor;
    e.key.dtype = cfg.dtype_name();
    e.key.op = cfg.op_name();
    e.key.pipeline = pipeline;
    e.key.n = static_cast<std::uint64_t>(n);
    e.key.g = g;
    e.key.devices = devices;
    e.label = cfg.history_label;
    e.seconds = r.seconds;
    e.payload_bytes = r.payload_bytes;
    e.breakdown = r.breakdown.entries();
    e.by_category = by_category;
    obs::RunHistory(cfg.history_file).append(e);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "history: %s\n", ex.what());
  }
}

inline void print_table(const util::Table& table, const BenchConfig& cfg) {
  if (cfg.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// The paper's plan for the K80 with the K chosen from the premise-trimmed
/// space for this (N, G, gpus-per-problem), picking the empirically best
/// candidate by a quick autotune run on a throwaway device.
inline core::ScanPlan tuned_plan(std::int64_t n, std::int64_t g,
                                 int gpus_per_problem) {
  const auto spec = sim::k80_spec();
  auto plan = core::derive_spl(spec, 4).plan;
  const auto ks = core::k1_candidates(n / gpus_per_problem * gpus_per_problem,
                                      g, plan, spec, gpus_per_problem);
  if (ks.size() > 1) {
    // Autotune on a reduced copy of the problem (the optimum K is scale-
    // stable because the trade-off is per-chunk, not per-element).
    simt::Device probe(0, spec);
    const std::int64_t n_probe = std::min<std::int64_t>(n, 1 << 18);
    auto in = probe.alloc<int>(n_probe);
    auto out = probe.alloc<int>(n_probe);
    const auto r = core::autotune_k(ks, [&](int k) {
      auto p = plan;
      p.s13.k = k;
      return core::scan_sp<int>(probe, in, out, n_probe, 1, p,
                                core::ScanKind::kInclusive)
          .seconds;
    });
    plan.s13.k = r.best_k;
  }
  return plan;
}

/// Multi-GPU plan per Section 4.2: "Premise 3 justifies the fact of
/// maximizing K^1 with Equation 1" -- with several GPUs a large K means
/// fewer chunk reductions written to the master GPU, so K is set to the
/// largest power of two admitted by Equations 1 and 2/3.
/// \param n_local elements of one problem on one GPU.
inline core::ScanPlan tuned_plan_multi(std::int64_t n_local, std::int64_t g,
                                       int gpus_per_problem) {
  const auto spec = sim::k80_spec();
  auto plan = core::derive_spl(spec, 4).plan;
  const std::int64_t n = n_local * gpus_per_problem;
  const std::int64_t bound =
      std::min(core::k1_max_eq1(n, g, plan, spec),
               core::k1_max_gpus(n, plan.s13, gpus_per_problem));
  plan.s13.k = static_cast<int>(
      util::floor_pow2(static_cast<std::uint64_t>(std::max<std::int64_t>(
          1, bound))));
  return plan;
}

/// Empirical K selection for a multi-node (M, W) configuration, as the
/// paper prescribes ("for each tuple (W, V, M) possible in the system,
/// all K values from the corresponding search space are empirically
/// tested"). The candidate set is trimmed to the corners of the space --
/// K = 1, the Equation-1 bound, the Equation-2 bound (one chunk per GPU,
/// minimal MPI volume) and a midpoint -- each measured with a real
/// simulated run.
/// Declared below multinode_run; defined after it.
inline core::ScanPlan tuned_plan_multinode(int m, int w,
                                           std::span<const int> data,
                                           std::int64_t n, std::int64_t g);

/// One baseline's simulated batch time on a fresh single GPU.
inline double baseline_seconds(const std::string& name,
                               std::span<const int> data, std::int64_t n,
                               std::int64_t g) {
  simt::Device dev(0, sim::k80_spec());
  auto in = dev.alloc<std::int32_t>(n * g);
  auto out = dev.alloc<std::int32_t>(n * g);
  std::copy(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(n * g),
            in.host_span().begin());
  return baselines::baseline_by_name(name)
      .run_batch(dev, in, out, n, g, core::ScanKind::kInclusive)
      .seconds;
}

/// Scan-MPS over the first W GPUs of a fresh one-node cluster.
inline core::RunResult mps_run(int w, std::span<const int> data,
                               std::int64_t n, std::int64_t g,
                               const core::ScanPlan& plan) {
  auto cluster = topo::tsubame_kfc_cluster(1);
  std::vector<int> gpus;
  // Fill PCIe networks in order (W<=4 stays on one network, W=8 spans two).
  for (int i = 0; i < w; ++i) {
    gpus.push_back(cluster.global_id(0, i / 4, i % 4));
  }
  auto batches = core::distribute_batch<int>(cluster, gpus, data, n, g);
  return core::scan_mps<int>(cluster, gpus, batches, n, g, plan,
                             core::ScanKind::kInclusive);
}

/// Scan-MP-PC with Y networks x V GPUs on a fresh one-node cluster.
inline core::RunResult mppc_run(int y, int v, std::span<const int> data,
                                std::int64_t n, std::int64_t g,
                                const core::ScanPlan& plan) {
  auto cluster = topo::tsubame_kfc_cluster(1);
  const auto part = core::make_mppc_partition(cluster, y, v, g);
  auto batches = core::distribute_mppc<int>(cluster, part, data, n);
  return core::scan_mppc<int>(cluster, part, batches, n, plan,
                              core::ScanKind::kInclusive);
}

/// Scan-SP on one fresh GPU.
inline core::RunResult sp_run(std::span<const int> data, std::int64_t n,
                              std::int64_t g, const core::ScanPlan& plan) {
  simt::Device dev(0, sim::k80_spec());
  auto in = dev.alloc<int>(n * g);
  auto out = dev.alloc<int>(n * g);
  std::copy(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(n * g),
            in.host_span().begin());
  return core::scan_sp<int>(dev, in, out, n, g, plan,
                            core::ScanKind::kInclusive);
}

/// Multi-node Scan-MPS over M nodes x W GPUs; returns result + breakdown.
inline core::RunResult multinode_run(int m, int w, std::span<const int> data,
                                     std::int64_t n, std::int64_t g,
                                     const core::ScanPlan& plan) {
  auto cluster = topo::tsubame_kfc_cluster(m);
  std::vector<int> ids;
  for (int node = 0; node < m; ++node) {
    for (int i = 0; i < w; ++i) {
      ids.push_back(cluster.global_id(node, i / 4, i % 4));
    }
  }
  msg::Communicator comm(cluster, ids);
  auto batches = core::distribute_batch<int>(cluster, ids, data, n, g);
  return core::scan_mps_multinode<int>(comm, batches, n, g, plan,
                                       core::ScanKind::kInclusive);
}

inline core::ScanPlan tuned_plan_multinode(int m, int w,
                                           std::span<const int> data,
                                           std::int64_t n, std::int64_t g) {
  const auto spec = sim::k80_spec();
  auto plan = core::derive_spl(spec, 4).plan;
  const int gpus = m * w;
  const std::int64_t k_eq2 = util::floor_pow2(static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, core::k1_max_gpus(n, plan.s13, gpus))));
  // Power-of-two space up to the Equation-2/3 bound (every GPU keeps at
  // least one chunk). Equation 1's occupancy concern is folded in
  // empirically: candidates that starve Stage 1/2 simply measure worse.
  // Coarse x4 sweep, then a x2 refinement around the winner (the measured
  // cost curve is unimodal in K).
  const auto measure = [&](int k) {
    auto p = plan;
    p.s13.k = k;
    return multinode_run(m, w, data, n, g, p).seconds;
  };
  std::vector<int> coarse;
  for (std::int64_t k = 1; k <= k_eq2; k *= 4) {
    coarse.push_back(static_cast<int>(k));
  }
  auto r = core::autotune_k(coarse, measure);
  std::vector<int> refine;
  if (r.best_k * 2 <= k_eq2) refine.push_back(r.best_k * 2);
  if (r.best_k / 2 >= 1) refine.push_back(r.best_k / 2);
  if (!refine.empty()) {
    const auto r2 = core::autotune_k(refine, measure);
    if (r2.best_seconds < r.best_seconds) r.best_k = r2.best_k;
  }
  plan.s13.k = r.best_k;
  return plan;
}

/// Throughput in GB/s for a run of `elems` total elements (in+out bytes).
inline double gbps(std::int64_t elems, double seconds, int elem_bytes = 4) {
  return 2.0 * static_cast<double>(elems) * static_cast<double>(elem_bytes) /
         seconds / 1e9;
}

/// Typed twins of sp_run / mps_run for dtype/op sweeps. The int versions
/// above keep the exact legacy shape the i32 baselines track.
template <typename T, typename Op = core::Plus<T>>
core::RunResult sp_run_t(std::span<const T> data, std::int64_t n,
                         std::int64_t g, const core::ScanPlan& plan) {
  simt::Device dev(0, sim::k80_spec());
  auto in = dev.alloc<T>(n * g);
  auto out = dev.alloc<T>(n * g);
  std::copy(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(n * g),
            in.host_span().begin());
  return core::scan_sp<T, Op>(dev, in, out, n, g, plan,
                              core::ScanKind::kInclusive);
}

template <typename T, typename Op = core::Plus<T>>
core::RunResult mps_run_t(int w, std::span<const T> data, std::int64_t n,
                          std::int64_t g, const core::ScanPlan& plan) {
  auto cluster = topo::tsubame_kfc_cluster(1);
  std::vector<int> gpus;
  for (int i = 0; i < w; ++i) {
    gpus.push_back(cluster.global_id(0, i / 4, i % 4));
  }
  auto batches = core::distribute_batch<T>(cluster, gpus, data, n, g);
  return core::scan_mps<T, Op>(cluster, gpus, batches, n, g, plan,
                               core::ScanKind::kInclusive);
}

/// Persistent harness state for the unified API: one cluster, one
/// ScanContext (shared plan cache + workspace pool) and one executor per
/// (proposal, placement) pair, reused across every data point of a sweep.
/// This is the production calling convention the refactor introduces; the
/// *_run free functions above are the legacy per-call convention and are
/// kept for the harnesses that measure it.
class BenchContext {
 public:
  explicit BenchContext(int nodes = 1)
      : cluster_(topo::tsubame_kfc_cluster(nodes)), ctx_(cluster_) {}

  core::ScanContext& ctx() { return ctx_; }

  /// Attach a fault-injection schedule (--faults spec) to the harness
  /// cluster; every subsequent run pays the modeled resilience costs and
  /// reports them in RunResult::faults. Empty spec detaches (healthy).
  void attach_faults(const std::string& spec) {
    if (spec.empty()) {
      cluster_.set_fault_injector(nullptr);
      injector_.reset();
      return;
    }
    injector_ = std::make_unique<sim::FaultInjector>(sim::parse_fault_plan(spec));
    cluster_.set_fault_injector(injector_.get());
  }

  const sim::FaultInjector* faults() const { return injector_.get(); }

  /// The cached executor for (name, params); created on first use.
  core::ScanExecutor& executor(const std::string& name,
                               const core::ExecutorParams& params = {}) {
    const std::string key =
        name + "/d" + std::to_string(params.device) + "/w" +
        std::to_string(params.w) + "/y" + std::to_string(params.y) + "/v" +
        std::to_string(params.v) + "/m" + std::to_string(params.m) + "/p" +
        std::to_string(static_cast<int>(params.pipeline)) + "x" +
        std::to_string(params.waves) + "/" +
        core::to_string(params.dtype) + "/" + core::to_string(params.op);
    auto it = executors_.find(key);
    if (it == executors_.end()) {
      it = executors_.emplace(key, core::make_executor(name, ctx_, params))
               .first;
    }
    return *it->second;
  }

  /// prepare + run through the cached executor (scratch output buffer).
  core::RunResult run(const std::string& name,
                      const core::ExecutorParams& params,
                      std::span<const int> data, std::int64_t n,
                      std::int64_t g,
                      core::ScanKind kind = core::ScanKind::kInclusive) {
    auto& ex = executor(name, params);
    ex.prepare(n, g);
    if (static_cast<std::int64_t>(out_.size()) < n * g) {
      out_.resize(static_cast<std::size_t>(n * g));
    }
    return ex.run(data.first(static_cast<std::size_t>(n * g)),
                  std::span<int>(out_).first(static_cast<std::size_t>(n * g)),
                  kind);
  }

  /// Dtype/op-generic spelling of run(): the executor is instantiated for
  /// T's DType (params.dtype is overwritten) and the given operator tag,
  /// then driven through the erased TypedSpan entry point -- exactly the
  /// path a production caller of the erased API takes.
  template <typename T>
  core::RunResult run_typed(const std::string& name,
                            core::ExecutorParams params,
                            std::span<const T> data, std::int64_t n,
                            std::int64_t g,
                            core::ScanKind kind = core::ScanKind::kInclusive) {
    static_assert(core::dtype_of_v<T>.has_value(),
                  "run_typed: element type outside the DType matrix");
    params.dtype = *core::dtype_of_v<T>;
    auto& ex = executor(name, params);
    ex.prepare(n, g);
    auto& out = typed_out<T>();
    if (static_cast<std::int64_t>(out.size()) < n * g) {
      out.resize(static_cast<std::size_t>(n * g));
    }
    return ex.run(
        core::ConstTypedSpan::of(data.first(static_cast<std::size_t>(n * g))),
        core::TypedSpan::of(
            std::span<T>(out).first(static_cast<std::size_t>(n * g))),
        kind);
  }

 private:
  /// One scratch output vector per element type (reused across points).
  template <typename T>
  std::vector<T>& typed_out() {
    static_assert(core::dtype_of_v<T>.has_value());
    auto& slot =
        typed_out_[static_cast<std::size_t>(*core::dtype_of_v<T>)];
    if (!slot) {
      slot = std::shared_ptr<void>(new std::vector<T>(),
                                   [](void* p) {
                                     delete static_cast<std::vector<T>*>(p);
                                   });
    }
    return *static_cast<std::vector<T>*>(slot.get());
  }

  topo::Cluster cluster_;
  core::ScanContext ctx_;
  std::unique_ptr<sim::FaultInjector> injector_;
  std::map<std::string, std::unique_ptr<core::ScanExecutor>> executors_;
  std::vector<int> out_;
  std::array<std::shared_ptr<void>, core::kNumDTypes> typed_out_;
};

}  // namespace mgs::bench
