#!/usr/bin/env bash
# Continuous-integration entry point: configure, build everything (keep
# going on failure so one broken target doesn't hide the rest), then run
# the full test suite. Mirrors the local workflow in README.md.
#
# MGS_SANITIZE=ON reruns the same pipeline in a separate build directory
# with AddressSanitizer + UndefinedBehaviorSanitizer (-DMGS_SANITIZE=ON).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
SANITIZE=${MGS_SANITIZE:-OFF}
if [[ "$SANITIZE" == ON* || "$SANITIZE" == on* || "$SANITIZE" == 1 ]]; then
  BUILD_DIR=${BUILD_DIR}-asan
  EXTRA_FLAGS=(-DMGS_SANITIZE=ON)
  # Sanitized runs: surface every finding, keep UBSan prints readable.
  export ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1}
  export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1}
else
  EXTRA_FLAGS=()
fi

if command -v ninja >/dev/null 2>&1; then
  cmake -B "$BUILD_DIR" -S . -G Ninja \
    -DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-Release}" "${EXTRA_FLAGS[@]}"
  # ninja: -k 0 = keep going past failures, report them all at the end.
  cmake --build "$BUILD_DIR" -j -- -k 0
else
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-Release}" "${EXTRA_FLAGS[@]}"
  cmake --build "$BUILD_DIR" -j -- -k
fi

ctest --test-dir "$BUILD_DIR" --output-on-failure

# Sample observability artifacts (uploaded by the GitHub Actions
# workflow): a traced 4-GPU Scan-MPS run-report + Perfetto trace +
# Prometheus metrics, rendered once to prove the loader works.
"$BUILD_DIR"/tools/mgs_trace --demo --out "$BUILD_DIR/obs_sample"

# Bench smoke: trace one representative Scan-MPS run per gated (dtype,
# op) cell (simulated time is deterministic) and gate each modeled
# makespan against its committed per-configuration baseline
# (BENCH_baseline.json for i32/plus, BENCH_baseline_<dtype>_<op>.json
# otherwise; bench_check --baseline auto picks the right file). The
# microbenchmark sweep itself is skipped via the filter -- only the
# traced run-reports matter here. Every run also appends a labeled point
# to the bench_results/history.ndjson longitudinal store; on a >5%
# regression bench_check prints the top-3 attribution from the two
# reports' critical paths, renders the full mgs_perf ranked diff table,
# and writes the diff JSON for artifact upload.
HISTORY_LABEL=${HISTORY_LABEL:-$(git rev-parse --short HEAD 2>/dev/null || echo local)}
for cfg in "i32 plus" "f64 max" "i64 min"; do
  read -r DT OP <<<"$cfg"
  SUFFIX=""
  [[ "$DT/$OP" != "i32/plus" ]] && SUFFIX="_${DT}_${OP}"
  "$BUILD_DIR"/bench/bench_micro --dtype "$DT" --op "$OP" \
    --trace "bench_results/bench_micro_run_report${SUFFIX}.json" \
    --history-label "$HISTORY_LABEL" \
    --benchmark_filter='^$'
  python3 scripts/bench_check.py \
    --baseline auto \
    --current "bench_results/bench_micro_run_report${SUFFIX}.json" \
    --mgs-perf "$BUILD_DIR"/tools/mgs_perf \
    --diff-out "$BUILD_DIR/bench_diff${SUFFIX}.json"
done

# Longitudinal history: show the per-key summaries and the latest movers
# (informational -- the gates are bench_check above and trend below).
"$BUILD_DIR"/tools/mgs_perf history show --file bench_results/history.ndjson
"$BUILD_DIR"/tools/mgs_perf history top --file bench_results/history.ndjson

# Cross-commit trend gate + dashboard over the chained store (the CI
# workflow restores the previous history.ndjson before this script runs
# and re-uploads the merged store after). trend exits non-zero when any
# key has an unacknowledged regression change-point; sign off intentional
# steps by listing their sha in bench_results/history_ack.txt.
"$BUILD_DIR"/tools/mgs_perf history compact --file bench_results/history.ndjson
"$BUILD_DIR"/tools/mgs_perf trend --file bench_results/history.ndjson \
  --json bench_results/trend.json
"$BUILD_DIR"/tools/mgs_perf dashboard --file bench_results/history.ndjson \
  --out bench_results/dashboard.html

# Gate self-test: seed a deliberate straggler (device 1 running 8x slow)
# into the traced run and assert the gate both FAILS and prints the
# attribution table pointing at the injected slowdown. Guards the
# regression path itself -- a gate that silently passes a 8x straggler
# is worse than no gate.
# --history-label none: a deliberately broken run must not land on the
# chained timeline the trend gate below watches.
"$BUILD_DIR"/bench/bench_micro \
  --faults "straggler:dev=1,factor=8" \
  --trace "$BUILD_DIR/bench_micro_straggler.json" \
  --out "$BUILD_DIR/bench_micro_straggler_results.json" \
  --history-label none \
  --benchmark_filter='^$'
if python3 scripts/bench_check.py \
    --baseline auto \
    --current "$BUILD_DIR/bench_micro_straggler.json" \
    --mgs-perf "$BUILD_DIR"/tools/mgs_perf \
    --diff-out "$BUILD_DIR/bench_diff_straggler.json" \
    | tee "$BUILD_DIR/bench_check_straggler.log"; then
  echo "ci: ERROR - bench_check passed a seeded 8x straggler" >&2
  exit 1
fi
grep -q "top attribution" "$BUILD_DIR/bench_check_straggler.log" || {
  echo "ci: ERROR - bench_check failed without printing attribution" >&2
  exit 1
}
echo "ci: gate self-test OK (seeded straggler caught and attributed)"

# Trend-gate self-test: build a synthetic chained store -- the same
# healthy report under three fake shas (simulated time is deterministic,
# so the series is flat) must pass with no change-point; appending the
# 8x-straggler report under a fourth fake sha must trip the gate, name
# that sha as the first offending label, and mark it on the dashboard.
TREND_HIST="$BUILD_DIR/trend_selftest.ndjson"
rm -f "$TREND_HIST"
for FAKE in aaaa111 bbbb222 cccc333; do
  "$BUILD_DIR"/tools/mgs_perf history append \
    --report bench_results/bench_micro_run_report.json \
    --label "$FAKE" --file "$TREND_HIST"
done
"$BUILD_DIR"/tools/mgs_perf trend --file "$TREND_HIST" || {
  echo "ci: ERROR - trend flagged a change-point on a flat 3-label chain" >&2
  exit 1
}
"$BUILD_DIR"/tools/mgs_perf history append \
  --report "$BUILD_DIR/bench_micro_straggler.json" \
  --label badc0de --file "$TREND_HIST"
if "$BUILD_DIR"/tools/mgs_perf trend --file "$TREND_HIST" \
    | tee "$BUILD_DIR/trend_selftest.log"; then
  echo "ci: ERROR - trend passed a seeded 8x regression step" >&2
  exit 1
fi
grep -q "badc0de" "$BUILD_DIR/trend_selftest.log" || {
  echo "ci: ERROR - trend failed without naming the offending sha" >&2
  exit 1
}
"$BUILD_DIR"/tools/mgs_perf dashboard --file "$TREND_HIST" \
  --out "$BUILD_DIR/trend_selftest_dashboard.html"
grep -q "badc0de" "$BUILD_DIR/trend_selftest_dashboard.html" || {
  echo "ci: ERROR - dashboard does not mark the offending sha" >&2
  exit 1
}
# Acknowledging the sha must clear the gate (the sign-off workflow).
"$BUILD_DIR"/tools/mgs_perf trend --file "$TREND_HIST" --ack badc0de || {
  echo "ci: ERROR - acknowledged change-point still trips the gate" >&2
  exit 1
}
echo "ci: trend self-test OK (flat chain clean, seeded step caught at badc0de)"

# The dtype test group on its own (matrix correctness + the instantiation
# guard that compiles every proposal over every (dtype, op) cell).
ctest --test-dir "$BUILD_DIR" -L dtype --output-on-failure

# Chaos smoke: the seeded 100-scenario campaign (tool_mgs_chaos_smoke)
# plus the harness's own unit tests. On a violation the campaign shrinks
# each failure to a one-line repro under $BUILD_DIR/tools/chaos_repro/,
# which the workflow uploads -- replay locally with
#   ./$BUILD_DIR/tools/mgs_chaos --replay "<line>"
ctest --test-dir "$BUILD_DIR" -L chaos --output-on-failure
