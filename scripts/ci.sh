#!/usr/bin/env bash
# Continuous-integration entry point: configure, build everything (keep
# going on failure so one broken target doesn't hide the rest), then run
# the full test suite. Mirrors the local workflow in README.md.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

if command -v ninja >/dev/null 2>&1; then
  cmake -B "$BUILD_DIR" -S . -G Ninja \
    -DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-Release}"
  # ninja: -k 0 = keep going past failures, report them all at the end.
  cmake --build "$BUILD_DIR" -j -- -k 0
else
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-Release}"
  cmake --build "$BUILD_DIR" -j -- -k
fi

ctest --test-dir "$BUILD_DIR" --output-on-failure
