#!/usr/bin/env bash
# Continuous-integration entry point: configure, build everything (keep
# going on failure so one broken target doesn't hide the rest), then run
# the full test suite. Mirrors the local workflow in README.md.
#
# MGS_SANITIZE=ON reruns the same pipeline in a separate build directory
# with AddressSanitizer + UndefinedBehaviorSanitizer (-DMGS_SANITIZE=ON).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
SANITIZE=${MGS_SANITIZE:-OFF}
if [[ "$SANITIZE" == ON* || "$SANITIZE" == on* || "$SANITIZE" == 1 ]]; then
  BUILD_DIR=${BUILD_DIR}-asan
  EXTRA_FLAGS=(-DMGS_SANITIZE=ON)
  # Sanitized runs: surface every finding, keep UBSan prints readable.
  export ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1}
  export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1}
else
  EXTRA_FLAGS=()
fi

if command -v ninja >/dev/null 2>&1; then
  cmake -B "$BUILD_DIR" -S . -G Ninja \
    -DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-Release}" "${EXTRA_FLAGS[@]}"
  # ninja: -k 0 = keep going past failures, report them all at the end.
  cmake --build "$BUILD_DIR" -j -- -k 0
else
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-Release}" "${EXTRA_FLAGS[@]}"
  cmake --build "$BUILD_DIR" -j -- -k
fi

ctest --test-dir "$BUILD_DIR" --output-on-failure

# Sample observability artifacts (uploaded by the GitHub Actions
# workflow): a traced 4-GPU Scan-MPS run-report + Perfetto trace +
# Prometheus metrics, rendered once to prove the loader works.
"$BUILD_DIR"/tools/mgs_trace --demo --out "$BUILD_DIR/obs_sample"

# Bench smoke: trace one representative Scan-MPS run (simulated time is
# deterministic) and gate on the modeled makespan against the committed
# baseline. The microbenchmark sweep itself is skipped via the filter --
# only the traced run-report matters here.
"$BUILD_DIR"/bench/bench_micro \
  --trace bench_results/bench_micro_run_report.json \
  --benchmark_filter='^$'
python3 scripts/bench_check.py \
  --baseline bench_results/BENCH_baseline.json \
  --current bench_results/bench_micro_run_report.json

# Dtype/op sweep smoke: the same traced run on a non-default cell of the
# (dtype, op) matrix. Writes suffixed artifacts (never clobbers the
# tracked i32 baselines); bench_check recognizes the config and SKIPs the
# makespan gate -- the point is that the erased f64/max path runs
# end-to-end and its report parses.
"$BUILD_DIR"/bench/bench_micro --dtype f64 --op max \
  --trace bench_results/bench_micro_run_report_f64_max.json \
  --benchmark_filter='^$'
python3 scripts/bench_check.py \
  --baseline bench_results/BENCH_baseline.json \
  --current bench_results/bench_micro_run_report_f64_max.json

# The dtype test group on its own (matrix correctness + the instantiation
# guard that compiles every proposal over every (dtype, op) cell).
ctest --test-dir "$BUILD_DIR" -L dtype --output-on-failure

# Chaos smoke: the seeded 100-scenario campaign (tool_mgs_chaos_smoke)
# plus the harness's own unit tests. On a violation the campaign shrinks
# each failure to a one-line repro under $BUILD_DIR/tools/chaos_repro/,
# which the workflow uploads -- replay locally with
#   ./$BUILD_DIR/tools/mgs_chaos --replay "<line>"
ctest --test-dir "$BUILD_DIR" -L chaos --output-on-failure
