#!/usr/bin/env bash
# Regenerate every table/figure reproduction into bench_results/.
# Usage: scripts/run_experiments.sh [TOTAL_LOG2] (default 26; paper used 28)
set -euo pipefail

TOTAL=${1:-26}
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="$ROOT/bench_results"
BIN="$ROOT/build/bench"

mkdir -p "$OUT"
cmake --build "$ROOT/build" >/dev/null

for b in bench_table3 bench_fig9_mps bench_fig10_mppc bench_fig11_g1 \
         bench_fig12_batch bench_fig13_multinode bench_fig14_breakdown \
         bench_mn_combos bench_tuning_ablation bench_cascade_ablation; do
  echo "== $b (total=2^$TOTAL) =="
  "$BIN/$b" --total-log2 "$TOTAL" | tee "$OUT/$b.txt"
  echo
done

echo "All outputs in $OUT/"
