#!/usr/bin/env python3
"""Modeled-makespan regression gate.

Compares the critical-path makespan of a freshly traced run-report
(`bench_micro --trace FILE` writes one) against the committed baseline
`bench_results/BENCH_baseline.json` and fails if the modeled makespan
regressed by more than the tolerance (default 5%).

The makespan is *simulated* device time, so it is deterministic: any
drift is a real change to the performance model or the pipeline
schedule, never host noise. Improvements are reported and always pass;
intentional model changes should re-snapshot the baseline
(`cp bench_results/bench_micro_run_report.json
bench_results/BENCH_baseline.json`) in the same commit.

Usage:
  scripts/bench_check.py [--baseline FILE] [--current FILE]
                         [--tolerance-pct PCT]

Exit status: 0 on pass, 1 on regression, 2 on malformed input.
Stdlib-only; no third-party packages.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_makespan(path: str) -> tuple[float, dict]:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_check: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    try:
        total = float(doc["critical_path"]["total"])
    except (KeyError, TypeError, ValueError):
        print(
            f"bench_check: {path} has no critical_path.total "
            "(is it a run-report from bench_micro --trace?)",
            file=sys.stderr,
        )
        sys.exit(2)
    if total <= 0.0:
        print(f"bench_check: {path}: non-positive makespan {total}",
              file=sys.stderr)
        sys.exit(2)
    return total, doc


def stage_breakdown(doc: dict) -> dict[str, float]:
    run = doc.get("run", {})
    breakdown = run.get("breakdown", {})
    return {k: float(v) for k, v in breakdown.items()} if isinstance(
        breakdown, dict) else {}


def run_config(doc: dict) -> tuple[str, str]:
    """(dtype, op) of the traced run; reports from before the dtype/op
    columns default to the i32 sums the baseline has always tracked."""
    run = doc.get("run", {})
    return str(run.get("dtype", "i32")), str(run.get("op", "plus"))


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline",
                    default="bench_results/BENCH_baseline.json")
    ap.add_argument("--current",
                    default="bench_results/bench_micro_run_report.json")
    ap.add_argument("--tolerance-pct", type=float, default=5.0,
                    help="max allowed makespan regression, percent")
    args = ap.parse_args()

    base_total, base_doc = load_makespan(args.baseline)
    cur_total, cur_doc = load_makespan(args.current)

    # The gate tracks the i32/plus baseline only: a report traced with
    # --dtype/--op selects a different performance model (element bytes,
    # operator), so comparing it against the i32 snapshot would be noise.
    # Skip cleanly instead of failing -- the dtype sweep is informational.
    base_cfg = run_config(base_doc)
    cur_cfg = run_config(cur_doc)
    if cur_cfg != ("i32", "plus") or base_cfg != cur_cfg:
        print(f"bench_check: SKIP - current report is "
              f"{cur_cfg[0]}/{cur_cfg[1]}, baseline is "
              f"{base_cfg[0]}/{base_cfg[1]}; the makespan gate only tracks "
              "the i32/plus baseline.")
        return 0

    delta_pct = (cur_total / base_total - 1.0) * 100.0
    print(f"bench_check: baseline makespan {base_total * 1e6:10.3f} us "
          f"({args.baseline})")
    print(f"bench_check: current  makespan {cur_total * 1e6:10.3f} us "
          f"({args.current})")
    print(f"bench_check: delta {delta_pct:+.2f}% "
          f"(tolerance +{args.tolerance_pct:.1f}%)")

    base_stages = stage_breakdown(base_doc)
    cur_stages = stage_breakdown(cur_doc)
    for name in sorted(set(base_stages) | set(cur_stages)):
        b = base_stages.get(name)
        c = cur_stages.get(name)
        if b and c:
            print(f"bench_check:   {name:<12} {b * 1e6:9.3f} -> "
                  f"{c * 1e6:9.3f} us ({(c / b - 1.0) * 100.0:+.1f}%)")
        else:
            print(f"bench_check:   {name:<12} "
                  f"{'(new)' if b is None else '(removed)'}")

    if delta_pct > args.tolerance_pct:
        print(
            f"bench_check: FAIL - modeled makespan regressed "
            f"{delta_pct:+.2f}% (> {args.tolerance_pct:.1f}%). If the "
            "change is intentional, re-snapshot BENCH_baseline.json in "
            "the same commit.",
            file=sys.stderr,
        )
        return 1
    print("bench_check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
