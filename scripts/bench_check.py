#!/usr/bin/env python3
"""Modeled-makespan regression gate.

Compares the critical-path makespan of a freshly traced run-report
(`bench_micro --trace FILE` writes one) against the committed baseline
for the report's (dtype, op) configuration and fails if the modeled
makespan regressed by more than the tolerance (default 5%).

Baselines are per-configuration files following the bench suffix
convention: `bench_results/BENCH_baseline.json` gates i32/plus,
`bench_results/BENCH_baseline_f64_max.json` gates f64/max, and so on
(`BENCH_baseline_<dtype>_<op>.json`). `--baseline auto` (the default)
picks the file matching the current report; a configuration without a
committed baseline SKIPs with a hint instead of failing, so new cells
of the dtype/op matrix can be brought under the gate incrementally.

The makespan is *simulated* device time, so it is deterministic: any
drift is a real change to the performance model or the pipeline
schedule, never host noise. Improvements are reported and always pass;
intentional model changes should re-snapshot the baseline in the same
commit (e.g. `cp bench_results/bench_micro_run_report.json
bench_results/BENCH_baseline.json`).

On a regression the gate attributes the delta before failing: the top-3
(stage, category) contributors computed from the two reports'
critical-path sections are printed into the CI log, and when the
`mgs_perf` binary is available (`--mgs-perf`, default
build/tools/mgs_perf) its full ranked diff table is printed too and the
machine-readable diff JSON is written to `--diff-out` for artifact
upload. When the binary is missing or fails, the gate degrades
gracefully: a clear WARNING is printed, the Python attribution is the
summary, and a stdlib-generated fallback diff JSON is written to
`--diff-out` so the regression artifact always exists.

Usage:
  scripts/bench_check.py [--baseline FILE|auto] [--current FILE]
                         [--tolerance-pct PCT] [--mgs-perf BIN]
                         [--diff-out FILE]

Exit status: 0 on pass, 1 on regression, 2 on malformed input.
Stdlib-only; no third-party packages.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys


def load_makespan(path: str) -> tuple[float, dict]:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_check: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    try:
        total = float(doc["critical_path"]["total"])
    except (KeyError, TypeError, ValueError):
        print(
            f"bench_check: {path} has no critical_path.total "
            "(is it a run-report from bench_micro --trace?)",
            file=sys.stderr,
        )
        sys.exit(2)
    if total <= 0.0:
        print(f"bench_check: {path}: non-positive makespan {total}",
              file=sys.stderr)
        sys.exit(2)
    return total, doc


def stage_breakdown(doc: dict) -> dict[str, float]:
    run = doc.get("run", {})
    breakdown = run.get("breakdown", {})
    return {k: float(v) for k, v in breakdown.items()} if isinstance(
        breakdown, dict) else {}


def run_config(doc: dict) -> tuple[str, str]:
    """(dtype, op) of the traced run; reports from before the dtype/op
    columns default to the i32 sums the baseline has always tracked."""
    run = doc.get("run", {})
    return str(run.get("dtype", "i32")), str(run.get("op", "plus"))


def baseline_for(cfg: tuple[str, str]) -> str:
    """Per-configuration baseline path, bench suffix convention."""
    suffix = "" if cfg == ("i32", "plus") else f"_{cfg[0]}_{cfg[1]}"
    return f"bench_results/BENCH_baseline{suffix}.json"


def stage_rows(doc: dict) -> list[tuple[str, int, dict[str, float], int]]:
    """(name, occurrence, category->seconds, critical_device) per
    critical-path stage row, aligned the way mgs_perf aligns them: the
    i-th occurrence of a stage name pairs with the i-th in the other
    report."""
    rows = []
    seen: dict[str, int] = {}
    for st in doc.get("critical_path", {}).get("stages", []):
        name = str(st.get("name", "?"))
        occ = seen.get(name, 0)
        seen[name] = occ + 1
        cats = {k: float(v)
                for k, v in st.get("by_category", {}).items()}
        rows.append((name, occ, cats, int(st.get("critical_device", -1))))
    return rows


def attribution(base_doc: dict, cur_doc: dict,
                base_total: float, cur_total: float,
                top: int = 3) -> list[str]:
    """Top contributors to the makespan delta, as printable lines.

    Mirrors the mgs_perf alignment: per-(stage, category) deltas over
    name+occurrence-matched stage rows, plus a residual '(outside
    stages)' row so the attributed deltas telescope to the full delta."""
    base = {(n, o): (c, d) for n, o, c, d in stage_rows(base_doc)}
    cur = {(n, o): (c, d) for n, o, c, d in stage_rows(cur_doc)}
    rows: list[tuple[float, str]] = []
    base_staged = cur_staged = 0.0
    for key in sorted(set(base) | set(cur), key=str):
        bcats, _ = base.get(key, ({}, -1))
        ccats, cdev = cur.get(key, ({}, -1))
        if not ccats:
            cdev = base.get(key, ({}, -1))[1]
        for cat in sorted(set(bcats) | set(ccats)):
            b = bcats.get(cat, 0.0)
            c = ccats.get(cat, 0.0)
            base_staged += b
            cur_staged += c
            if b == 0.0 and c == 0.0:
                continue
            delta = c - b
            name = key[0] if key[1] == 0 else f"{key[0]}#{key[1] + 1}"
            rows.append((delta,
                         f"{name} dev{cdev} {cat}: "
                         f"{b * 1e6:9.3f} -> {c * 1e6:9.3f} us "
                         f"({delta * 1e6:+9.3f} us)"))
    residual = (cur_total - cur_staged) - (base_total - base_staged)
    if residual != 0.0:
        rows.append((residual,
                     f"(outside stages) other: residual "
                     f"({residual * 1e6:+9.3f} us)"))
    rows.sort(key=lambda r: abs(r[0]), reverse=True)
    return [line for _, line in rows[:top]]


def run_mgs_perf(binary: str, baseline: str, current: str,
                 diff_out: str | None) -> bool:
    """Best-effort full diff via the mgs_perf CLI: ranked table into the
    log, machine-readable JSON to diff_out for artifact upload. Returns
    True when the binary ran successfully (and wrote diff_out if asked);
    the caller degrades to the Python fallback otherwise."""
    if not (binary and os.path.exists(binary)):
        print(f"bench_check: WARNING - {binary or 'mgs_perf'} not found; "
              "degrading to the Python top-3 attribution above")
        return False
    cmd = [binary, "diff", baseline, current, "--top", "10"]
    if diff_out:
        os.makedirs(os.path.dirname(diff_out) or ".", exist_ok=True)
        cmd += ["--json", diff_out]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=60)
        sys.stdout.write(proc.stdout)
        if proc.stderr:
            sys.stderr.write(proc.stderr)
        if proc.returncode != 0:
            print(f"bench_check: WARNING - mgs_perf exited "
                  f"{proc.returncode}; degrading to the Python top-3 "
                  "attribution above", file=sys.stderr)
            return False
        if diff_out and not os.path.exists(diff_out):
            return False
        if diff_out:
            print(f"bench_check: diff JSON -> {diff_out}")
        return True
    except (OSError, subprocess.SubprocessError) as e:
        print(f"bench_check: WARNING - mgs_perf failed ({e}); degrading "
              "to the Python top-3 attribution above", file=sys.stderr)
        return False


def write_fallback_diff(diff_out: str, baseline: str, current: str,
                        base_doc: dict, cur_doc: dict,
                        base_total: float, cur_total: float) -> None:
    """Stdlib-only stand-in for the mgs_perf diff JSON so the regression
    artifact exists even when the binary is missing or broken."""
    doc = {
        "schema": "bench-check-fallback-diff-v1",
        "baseline": baseline,
        "current": current,
        "makespan": {"base": base_total, "cur": cur_total,
                     "delta": cur_total - base_total},
        "top_rows": attribution(base_doc, cur_doc, base_total, cur_total,
                                top=10),
    }
    os.makedirs(os.path.dirname(diff_out) or ".", exist_ok=True)
    with open(diff_out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"bench_check: fallback diff JSON -> {diff_out}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="auto",
                    help="baseline run-report, or 'auto' to pick the "
                    "per-dtype BENCH_baseline file matching --current")
    ap.add_argument("--current",
                    default="bench_results/bench_micro_run_report.json")
    ap.add_argument("--tolerance-pct", type=float, default=5.0,
                    help="max allowed makespan regression, percent")
    ap.add_argument("--mgs-perf", default="build/tools/mgs_perf",
                    help="mgs_perf binary for the full ranked diff "
                    "(skipped silently when absent)")
    ap.add_argument("--diff-out", default=None,
                    help="write the mgs_perf diff JSON here on regression")
    args = ap.parse_args()

    cur_total, cur_doc = load_makespan(args.current)
    cur_cfg = run_config(cur_doc)

    baseline = args.baseline
    if baseline == "auto":
        baseline = baseline_for(cur_cfg)
        if not os.path.exists(baseline):
            print(f"bench_check: SKIP - no committed baseline for "
                  f"{cur_cfg[0]}/{cur_cfg[1]} ({baseline} missing). "
                  f"Snapshot one with `cp {args.current} {baseline}` to "
                  "bring this configuration under the gate.")
            return 0

    base_total, base_doc = load_makespan(baseline)
    base_cfg = run_config(base_doc)
    if base_cfg != cur_cfg:
        print(f"bench_check: baseline {baseline} is "
              f"{base_cfg[0]}/{base_cfg[1]} but the current report is "
              f"{cur_cfg[0]}/{cur_cfg[1]}; comparing across performance "
              "models would be noise.", file=sys.stderr)
        return 2

    delta_pct = (cur_total / base_total - 1.0) * 100.0
    print(f"bench_check: config {cur_cfg[0]}/{cur_cfg[1]}")
    print(f"bench_check: baseline makespan {base_total * 1e6:10.3f} us "
          f"({baseline})")
    print(f"bench_check: current  makespan {cur_total * 1e6:10.3f} us "
          f"({args.current})")
    print(f"bench_check: delta {delta_pct:+.2f}% "
          f"(tolerance +{args.tolerance_pct:.1f}%)")

    base_stages = stage_breakdown(base_doc)
    cur_stages = stage_breakdown(cur_doc)
    for name in sorted(set(base_stages) | set(cur_stages)):
        b = base_stages.get(name)
        c = cur_stages.get(name)
        if b and c:
            print(f"bench_check:   {name:<12} {b * 1e6:9.3f} -> "
                  f"{c * 1e6:9.3f} us ({(c / b - 1.0) * 100.0:+.1f}%)")
        else:
            print(f"bench_check:   {name:<12} "
                  f"{'(new)' if b is None else '(removed)'}")

    if delta_pct > args.tolerance_pct:
        print("bench_check: top attribution of the regression:")
        for i, line in enumerate(
                attribution(base_doc, cur_doc, base_total, cur_total), 1):
            print(f"bench_check:   #{i} {line}")
        if (not run_mgs_perf(args.mgs_perf, baseline, args.current,
                             args.diff_out) and args.diff_out):
            write_fallback_diff(args.diff_out, baseline, args.current,
                                base_doc, cur_doc, base_total, cur_total)
        print(
            f"bench_check: FAIL - modeled makespan regressed "
            f"{delta_pct:+.2f}% (> {args.tolerance_pct:.1f}%). If the "
            f"change is intentional, re-snapshot {baseline} in "
            "the same commit.",
            file=sys.stderr,
        )
        return 1
    print("bench_check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
