/// cluster_explorer: inspect a (possibly custom) cluster, see which
/// proposal the Premise-4 planner picks across problem shapes, and dump a
/// profiled run as a Chrome trace (open in chrome://tracing / Perfetto).
///
///   $ ./cluster_explorer
///   $ ./cluster_explorer --cluster "nodes=4 networks=1 gpus=8 gpu=pascal"
///   $ ./cluster_explorer --trace /tmp/scan.trace.json

#include <cstdio>
#include <fstream>
#include <iostream>

#include "mgs/core/api.hpp"
#include "mgs/sim/profiler.hpp"
#include "mgs/topo/config.hpp"
#include "mgs/util/cli.hpp"
#include "mgs/util/random.hpp"
#include "mgs/util/table.hpp"

using namespace mgs;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("cluster", "cluster description (see topo/config.hpp)");
  cli.describe("trace", "write a Chrome trace of one profiled run here");
  if (cli.help_requested()) {
    cli.print_help("Explore a cluster: links, planner decisions, profiling.");
    return 0;
  }
  cli.reject_unknown();

  const auto cfg = topo::parse_cluster_config(cli.get_string("cluster", ""));
  topo::Cluster cluster(cfg);
  std::printf("Cluster: %s\n", topo::describe_cluster_config(cfg).c_str());

  // --- Link classes between representative GPU pairs.
  std::printf("\nLink classes (GPU a -> GPU b):\n");
  topo::TransferEngine xfer(cluster);
  util::Table links({"a", "b", "link", "1 MiB transfer"});
  const int probe_count = std::min(cluster.num_devices(), 16);
  for (int b : {1, cfg.gpus_per_network, cfg.gpus_per_node(),
                cfg.gpus_per_node() * 2 - 1}) {
    if (b <= 0 || b >= probe_count) continue;
    links.add_row({"0", std::to_string(b),
                   topo::to_string(cluster.link_between(0, b)),
                   util::fmt_time_us(xfer.link_time(0, b, 1 << 20))});
  }
  links.print(std::cout);

  // --- Planner decisions across a shape sweep.
  std::printf("\nPlanner decisions (Premise 4):\n");
  util::Table plans({"N", "G", "proposal", "M", "W", "V", "Y"});
  for (const auto& [n, g] :
       {std::pair<std::int64_t, std::int64_t>{1 << 20, 1},
        {1 << 24, 1},
        {std::int64_t{1} << 29, 1},
        {1 << 20, 64},
        {std::int64_t{1} << 27, 8}}) {
    try {
      const auto c = core::choose_proposal(cluster, {.n = n, .g = g});
      plans.add_row({util::fmt_bytes(static_cast<std::uint64_t>(n) * 4),
                     std::to_string(g), core::to_string(c.proposal),
                     std::to_string(c.m), std::to_string(c.w),
                     std::to_string(c.v), std::to_string(c.y)});
    } catch (const util::Error& e) {
      plans.add_row({util::fmt_bytes(static_cast<std::uint64_t>(n) * 4),
                     std::to_string(g), "does not fit", "-", "-", "-", "-"});
    }
  }
  plans.print(std::cout);

  // --- One profiled MP-PC run + per-kernel summary.
  sim::ProfileScope profiling;
  const std::int64_t n = 1 << 20;
  const std::int64_t g = 4;
  const auto data = util::random_i32(static_cast<std::size_t>(n * g), 1);
  auto plan = core::derive_spl(cfg.gpu, 4).plan;
  plan.s13.k = 4;
  const auto part = core::make_mppc_partition(
      cluster, std::min(cfg.networks_per_node, 2), cfg.gpus_per_network, g);
  auto batches = core::distribute_mppc<int>(cluster, part, data, n);
  const auto r = core::scan_mppc<int>(cluster, part, batches, n, plan,
                                      core::ScanKind::kInclusive);

  std::printf("\nProfiled Scan-MP-PC run (N=%lld, G=%lld): %s, %.2f GB/s\n",
              static_cast<long long>(n), static_cast<long long>(g),
              util::fmt_time_us(r.seconds).c_str(), r.throughput_gbps());
  util::Table prof({"event", "count", "total time", "bytes"});
  for (const auto& row : sim::Profiler::instance().summary()) {
    prof.add_row({row.name, std::to_string(row.count),
                  util::fmt_time_us(row.total_seconds),
                  util::fmt_bytes(row.total_bytes)});
  }
  prof.print(std::cout);

  const std::string trace_path = cli.get_string("trace", "");
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    MGS_REQUIRE(os.good(), "cannot open trace file " + trace_path);
    sim::Profiler::instance().write_chrome_trace(os);
    std::printf("\nChrome trace written to %s\n", trace_path.c_str());
  }
  return 0;
}
