/// quickstart: the smallest end-to-end use of the library.
///
/// Builds the paper's test platform (one TSUBAME-KFC node, 8 simulated
/// K80 GPUs on 2 PCIe networks), creates a ScanContext (plan cache +
/// workspace pool), asks it for the executor the planner (Premise 4)
/// selects for the problem shape, runs the batch scan twice -- showing
/// that repeated invocations reuse the cached plan and pooled workspaces
/// -- and verifies the result against a serial reference.
///
///   $ ./quickstart [--n 1048576] [--g 8]

#include <cstdio>
#include <vector>

#include "mgs/baselines/reference.hpp"
#include "mgs/core/api.hpp"
#include "mgs/util/cli.hpp"
#include "mgs/util/random.hpp"
#include "mgs/util/table.hpp"

using namespace mgs;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("n", "elements per problem (default 1 Mi)");
  cli.describe("g", "problems in the batch (default 8)");
  if (cli.help_requested()) {
    cli.print_help("Quickstart: tuned multi-GPU batch scan + verification.");
    return 0;
  }
  cli.reject_unknown();
  const std::int64_t n = cli.get_int("n", 1 << 20);
  const std::int64_t g = cli.get_int("g", 8);

  // 1. The machine: Table 1's node, simulated -- plus the context that
  //    amortizes plans and workspaces across every scan it serves.
  topo::Cluster cluster = topo::tsubame_kfc_cluster(/*nodes=*/1);
  core::ScanContext ctx(cluster);
  std::printf("Platform: %d x %s, %d PCIe networks\n\n",
              cluster.num_devices(), cluster.config().gpu.name.c_str(),
              cluster.config().networks_per_node);

  // 2. Planning: Premise 4 picks the proposal for this problem shape; the
  //    context returns it as a ready-to-use executor.
  const core::PlannerChoice choice =
      core::choose_proposal(cluster, {.n = n, .g = g});
  std::printf("Planner: %s (M=%d, W=%d, V=%d, Y=%d)\n  %s\n\n",
              core::to_string(choice.proposal), choice.m, choice.w, choice.v,
              choice.y, choice.rationale.c_str());
  auto executor = ctx.executor_for({n, g});

  // 3. prepare() derives the tuned plan (Premises 1-3) once and leases
  //    persistent staging from the workspace pool.
  executor->prepare(n, g);
  std::printf("Executor: %s\n\n", executor->describe().c_str());

  // 4. Run the batch scan.
  const auto data = util::random_i32(static_cast<std::size_t>(n * g), 1);
  std::vector<int> got(data.size());
  const core::RunResult result =
      executor->run(data, got, core::ScanKind::kInclusive);

  std::printf("Simulated run: %s for %s (%.2f GB/s)\n",
              util::fmt_time_us(result.seconds).c_str(),
              util::fmt_bytes(result.payload_bytes).c_str(),
              result.throughput_gbps());
  for (const auto& [phase, seconds] : result.breakdown.entries()) {
    std::printf("  %-12s %s\n", phase.c_str(),
                util::fmt_time_us(seconds).c_str());
  }

  // 5. Run it again: the plan is cached and no new device allocations are
  //    made -- the steady state a production caller lives in.
  const auto allocs_before = ctx.workspace().device_allocations();
  std::vector<int> got2(data.size());
  const core::RunResult again =
      executor->run(data, got2, core::ScanKind::kInclusive);
  std::printf(
      "\nSecond run: %s (identical: %s); new device allocations: %llu, "
      "workspace reuses so far: %llu\n",
      util::fmt_time_us(again.seconds).c_str(),
      again.seconds == result.seconds && got2 == got ? "yes" : "NO",
      static_cast<unsigned long long>(ctx.workspace().device_allocations() -
                                      allocs_before),
      static_cast<unsigned long long>(ctx.workspace().reuses()));

  // 6. Verify against the serial reference.
  const auto want = baselines::reference_batch_scan<int>(
      data, n, g, core::ScanKind::kInclusive);
  if (got != want || got2 != want) {
    std::printf("\nFAILED: scan result does not match the reference!\n");
    return 1;
  }
  std::printf("\nOK: all %lld problems match the serial reference.\n",
              static_cast<long long>(g));
  return 0;
}
