/// quickstart: the smallest end-to-end use of the library.
///
/// Builds the paper's test platform (one TSUBAME-KFC node, 8 simulated
/// K80 GPUs on 2 PCIe networks), derives the tuned kernel parameters from
/// the premises, asks the planner which proposal fits a batch of scans,
/// runs it, and verifies the result against a serial reference.
///
///   $ ./quickstart [--n 1048576] [--g 8]

#include <cstdio>

#include "mgs/baselines/reference.hpp"
#include "mgs/core/api.hpp"
#include "mgs/util/cli.hpp"
#include "mgs/util/random.hpp"
#include "mgs/util/table.hpp"

using namespace mgs;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("n", "elements per problem (default 1 Mi)");
  cli.describe("g", "problems in the batch (default 8)");
  if (cli.help_requested()) {
    cli.print_help("Quickstart: tuned multi-GPU batch scan + verification.");
    return 0;
  }
  cli.reject_unknown();
  const std::int64_t n = cli.get_int("n", 1 << 20);
  const std::int64_t g = cli.get_int("g", 8);

  // 1. The machine: Table 1's node, simulated.
  topo::Cluster cluster = topo::tsubame_kfc_cluster(/*nodes=*/1);
  std::printf("Platform: %d x %s, %d PCIe networks\n",
              cluster.num_devices(), cluster.config().gpu.name.c_str(),
              cluster.config().networks_per_node);

  // 2. Tuning: Premises 1-2 fix (s, p, l); the K search space comes from
  //    Premise 3 (Equation 1).
  const core::TuningChoice tuning = core::derive_spl(cluster.config().gpu, 4);
  std::printf("Tuned plan: %s\n", tuning.plan.describe().c_str());
  std::printf("Why: %s\n\n", tuning.rationale.c_str());

  // 3. Planning: Premise 4 picks the proposal for this problem shape.
  const core::PlannerChoice choice =
      core::choose_proposal(cluster, {n, g, sizeof(int)});
  std::printf("Planner: %s (M=%d, W=%d, V=%d, Y=%d)\n  %s\n\n",
              core::to_string(choice.proposal), choice.m, choice.w, choice.v,
              choice.y, choice.rationale.c_str());

  // 4. Run the batch scan (MP-PC here: every group stays on one PCIe
  //    network, so all communication is peer-to-peer).
  const auto data = util::random_i32(static_cast<std::size_t>(n * g), 1);
  auto plan = tuning.plan;
  plan.s13.k = 4;
  const auto part = core::make_mppc_partition(cluster, choice.y, choice.v, g);
  auto batches = core::distribute_mppc<int>(cluster, part, data, n);
  const core::RunResult result = core::scan_mppc<int>(
      cluster, part, batches, n, plan, core::ScanKind::kInclusive);

  std::printf("Simulated run: %s for %s (%.2f GB/s)\n",
              util::fmt_time_us(result.seconds).c_str(),
              util::fmt_bytes(result.payload_bytes).c_str(),
              result.throughput_gbps());
  for (const auto& [phase, seconds] : result.breakdown.entries()) {
    std::printf("  %-12s %s\n", phase.c_str(),
                util::fmt_time_us(seconds).c_str());
  }

  // 5. Verify against the serial reference.
  const auto got = core::collect_mppc<int>(part, batches, n);
  const auto want = baselines::reference_batch_scan<int>(
      data, n, g, core::ScanKind::kInclusive);
  if (got != want) {
    std::printf("\nFAILED: scan result does not match the reference!\n");
    return 1;
  }
  std::printf("\nOK: all %lld problems match the serial reference.\n",
              static_cast<long long>(g));
  return 0;
}
