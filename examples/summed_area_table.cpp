/// summed_area_table: 2-D prefix sums (integral images, Hensley et al. --
/// reference [9] of the paper). A summed-area table is two batched scans:
///
///   1. scan every row   -- one batch invocation with G = height problems
///                          of N = width elements (the library's core
///                          batch feature, Case 1 of Section 4);
///   2. transpose, scan every "row" again, transpose back.
///
/// The batch API solves all rows in ONE invocation -- exactly the
/// scenario where the paper's proposal crushes per-row library calls
/// (Figure 12). For comparison, the example also times the G-invocation
/// approach a per-problem library would need.
///
///   $ ./summed_area_table [--width 1024] [--height 1024]

#include <cstdio>
#include <vector>

#include "mgs/baselines/cub.hpp"
#include "mgs/core/api.hpp"
#include "mgs/simt/algorithms.hpp"
#include "mgs/util/cli.hpp"
#include "mgs/util/random.hpp"
#include "mgs/util/table.hpp"

using namespace mgs;



int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("width", "image width (default 1024)");
  cli.describe("height", "image height (default 1024)");
  if (cli.help_requested()) {
    cli.print_help("Summed-area table via two batched scans + transposes.");
    return 0;
  }
  cli.reject_unknown();
  const std::int64_t w = cli.get_int("width", 1024);
  const std::int64_t h = cli.get_int("height", 1024);

  simt::Device dev(0, sim::k80_spec());
  auto plan = core::derive_spl(dev.spec(), 4).plan;
  plan.s13.k = 1;

  const auto image =
      util::random_i32(static_cast<std::size_t>(w * h), 5, 0, 255);
  auto a = dev.alloc<int>(w * h);
  auto b = dev.alloc<int>(w * h);
  std::copy(image.begin(), image.end(), a.host_span().begin());

  // Row scans (ONE batch invocation for all h rows), transpose, column
  // scans (one invocation for all w rows), transpose back.
  double total = 0.0;
  total += core::scan_sp<int>(dev, a, a, w, h, plan,
                              core::ScanKind::kInclusive)
               .seconds;
  total += simt::transpose(dev, a, b, w, h).seconds;
  total += core::scan_sp<int>(dev, b, b, h, w, plan,
                              core::ScanKind::kInclusive)
               .seconds;
  total += simt::transpose(dev, b, a, h, w).seconds;

  // The per-problem alternative: one library call per row (CUB model).
  simt::Device dev2(0, sim::k80_spec());
  auto c = dev2.alloc<int>(w * h);
  std::copy(image.begin(), image.end(), c.host_span().begin());
  double per_row = 0.0;
  for (std::int64_t row = 0; row < h; ++row) {
    per_row += baselines::cub_scan<int>(dev2, c, c, row * w, w,
                                        core::ScanKind::kInclusive)
                   .seconds;
  }

  // Verify against a serial SAT.
  std::vector<std::int64_t> sat(static_cast<std::size_t>(w * h));
  bool ok = true;
  for (std::int64_t y = 0; y < h && ok; ++y) {
    for (std::int64_t x = 0; x < w && ok; ++x) {
      const auto at = [&](std::int64_t xx, std::int64_t yy) -> std::int64_t {
        return (xx < 0 || yy < 0) ? 0 : sat[static_cast<std::size_t>(yy * w + xx)];
      };
      sat[static_cast<std::size_t>(y * w + x)] =
          image[static_cast<std::size_t>(y * w + x)] + at(x - 1, y) +
          at(x, y - 1) - at(x - 1, y - 1);
      ok = a.host_span()[static_cast<std::size_t>(y * w + x)] ==
           static_cast<int>(sat[static_cast<std::size_t>(y * w + x)]);
    }
  }

  std::printf("Summed-area table %lldx%lld\n", static_cast<long long>(w),
              static_cast<long long>(h));
  std::printf("  batched scans + transposes: %s\n",
              util::fmt_time_us(total).c_str());
  std::printf("  per-row library calls (row scans alone): %s (%.1fx slower)\n",
              util::fmt_time_us(per_row).c_str(), per_row / total);
  std::printf("%s\n", ok ? "OK: matches serial SAT."
                         : "FAILED: mismatch vs serial SAT!");
  return ok ? 0 : 1;
}
