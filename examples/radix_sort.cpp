/// radix_sort: least-significant-digit radix sort built on the scan
/// primitive -- the canonical "scan as a building block" application
/// (split operation per bit: rank = exclusive scan of the 0/1 digit
/// flags). Sorts 32-bit unsigned keys 1 bit per pass, each pass running
/// two scans and a scatter on the simulated device.
///
///   $ ./radix_sort [--n 1048576] [--bits 32]

#include <cstdio>
#include <vector>

#include "mgs/core/api.hpp"
#include "mgs/util/cli.hpp"
#include "mgs/util/random.hpp"
#include "mgs/util/table.hpp"

using namespace mgs;

namespace {

/// One split pass: stable-partition keys by bit `bit`, using an exclusive
/// scan of the complement flags for the zero side and arithmetic for the
/// one side. Returns the simulated seconds spent.
double split_pass(simt::Device& dev, const core::ScanPlan& plan,
                  simt::DeviceBuffer<int>& keys,
                  simt::DeviceBuffer<int>& keys_out, std::int64_t n,
                  int bit) {
  auto flags = dev.alloc<int>(n);   // 1 where bit is clear
  auto ranks = dev.alloc<int>(n);   // scatter position for zero-side keys
  const auto kv = keys.view();
  const auto fv = flags.view();

  simt::LaunchConfig cfg;
  cfg.name = "digit_flags";
  cfg.grid = {static_cast<int>(util::div_up(
                  static_cast<std::uint64_t>(n), 4096)),
              1, 1};
  cfg.block = {128, 1, 1};
  double seconds = 0.0;
  seconds += simt::launch(dev, cfg, [=](simt::BlockCtx& ctx) {
               const std::int64_t base =
                   static_cast<std::int64_t>(ctx.block_idx().x) * 4096;
               const std::int64_t len = std::min<std::int64_t>(4096, n - base);
               for (std::int64_t i = 0; i < len; i += simt::kWarpSize) {
                 const int cnt = static_cast<int>(
                     std::min<std::int64_t>(simt::kWarpSize, len - i));
                 auto r = kv.load_warp_partial(base + i, cnt, 0, ctx.stats());
                 for (int l = 0; l < cnt; ++l) {
                   r[l] = ((static_cast<unsigned>(r[l]) >> bit) & 1u) ? 0 : 1;
                 }
                 ctx.count_alu(static_cast<std::uint64_t>(cnt));
                 fv.store_warp_partial(base + i, cnt, r, ctx.stats());
               }
             }).seconds;

  seconds += core::scan_sp<int>(dev, flags, ranks, n, 1, plan,
                                core::ScanKind::kExclusive)
                 .seconds;

  const std::int64_t zeros =
      ranks.host_span()[static_cast<std::size_t>(n - 1)] +
      flags.host_span()[static_cast<std::size_t>(n - 1)];
  const auto rv = ranks.view();
  const auto ov = keys_out.view();
  cfg.name = "split_scatter";
  seconds += simt::launch(dev, cfg, [=](simt::BlockCtx& ctx) {
               const std::int64_t base =
                   static_cast<std::int64_t>(ctx.block_idx().x) * 4096;
               const std::int64_t len = std::min<std::int64_t>(4096, n - base);
               for (std::int64_t i = 0; i < len; ++i) {
                 const int key = kv.load(base + i, ctx.stats());
                 const int is_zero = fv.load(base + i, ctx.stats());
                 const std::int64_t rank = rv.load(base + i, ctx.stats());
                 // Ones go after all zeros, preserving order:
                 // position = i - rank_of_zeros_before_i + zeros.
                 const std::int64_t pos =
                     is_zero != 0 ? rank : (base + i) - rank + zeros;
                 ov.store(pos, key, ctx.stats());
                 ctx.count_alu(3);
               }
             }).seconds;
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("n", "number of keys (default 1 Mi)");
  cli.describe("bits", "key bits to sort (default 16; 32 = full sort)");
  if (cli.help_requested()) {
    cli.print_help("LSD radix sort built on the scan primitive.");
    return 0;
  }
  cli.reject_unknown();
  const std::int64_t n = cli.get_int("n", 1 << 20);
  const int bits = static_cast<int>(cli.get_int("bits", 16));
  MGS_REQUIRE(bits >= 1 && bits <= 31, "--bits must be in [1, 31]");

  simt::Device dev(0, sim::k80_spec());
  auto plan = core::derive_spl(dev.spec(), 4).plan;
  plan.s13.k = 4;

  const auto data = util::random_i32(static_cast<std::size_t>(n), 99, 0,
                                     (1 << bits) - 1);
  auto ping = dev.alloc<int>(n);
  auto pong = dev.alloc<int>(n);
  std::copy(data.begin(), data.end(), ping.host_span().begin());

  double total = 0.0;
  for (int bit = 0; bit < bits; ++bit) {
    total += split_pass(dev, plan, ping, pong, n, bit);
    std::swap(ping, pong);
  }

  std::vector<int> want(data);
  std::sort(want.begin(), want.end());
  bool ok = true;
  for (std::int64_t i = 0; ok && i < n; ++i) {
    ok = ping.host_span()[static_cast<std::size_t>(i)] ==
         want[static_cast<std::size_t>(i)];
  }

  std::printf("Sorted %lld keys (%d bits, %d split passes)\n",
              static_cast<long long>(n), bits, bits);
  std::printf("Simulated time: %s (%.1f Mkeys/s)\n",
              util::fmt_time_us(total).c_str(),
              static_cast<double>(n) / total / 1e6);
  std::printf("%s\n", ok ? "OK: matches std::sort."
                         : "FAILED: mismatch vs std::sort!");
  return ok ? 0 : 1;
}
