/// histogram_equalization: the image-processing classic, built from two
/// substrate primitives around a scan:
///
///   1. histogram of the 8-bit image      (device atomics)
///   2. cumulative distribution function  (inclusive scan -- this library)
///   3. remap each pixel through the CDF  (gather through a lookup table)
///
/// Demonstrates scan as the glue step of a larger pipeline, plus the
/// substrate's atomic operations.
///
///   $ ./histogram_equalization [--pixels 1048576]

#include <cstdio>
#include <vector>

#include "mgs/core/api.hpp"
#include "mgs/simt/algorithms.hpp"
#include "mgs/util/cli.hpp"
#include "mgs/util/random.hpp"
#include "mgs/util/table.hpp"

using namespace mgs;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("pixels", "number of 8-bit pixels (default 1 Mi)");
  if (cli.help_requested()) {
    cli.print_help("Histogram equalization: atomics + scan (CDF) + remap.");
    return 0;
  }
  cli.reject_unknown();
  const std::int64_t n = cli.get_int("pixels", 1 << 20);
  constexpr int kLevels = 256;

  simt::Device dev(0, sim::k80_spec());
  auto plan = core::derive_spl(dev.spec(), 4).plan;

  // A low-contrast image: values crowded into [96, 160).
  const auto raw = util::random_i32(static_cast<std::size_t>(n), 3, 96, 159);
  auto image = dev.alloc<int>(n);
  auto hist = dev.alloc<int>(kLevels);
  auto cdf = dev.alloc<int>(kLevels);
  std::copy(raw.begin(), raw.end(), image.host_span().begin());
  simt::fill(dev, hist, 0);

  // --- Step 1: histogram with device atomics.
  simt::LaunchConfig hcfg;
  hcfg.name = "histogram";
  hcfg.grid = {static_cast<int>(util::div_up(
                   static_cast<std::uint64_t>(n), 4096)),
               1, 1};
  hcfg.block = {128, 1, 1};
  const auto iv = image.view();
  const auto hv = hist.view();
  const auto t_hist = simt::launch(dev, hcfg, [=](simt::BlockCtx& ctx) {
    const std::int64_t base =
        static_cast<std::int64_t>(ctx.block_idx().x) * 4096;
    const std::int64_t len = std::min<std::int64_t>(4096, n - base);
    for (std::int64_t i = 0; i < len; ++i) {
      hv.atomic_add(iv.load(base + i, ctx.stats()), 1, ctx.stats());
    }
  });

  // --- Step 2: CDF = inclusive scan of the histogram.
  const auto t_scan = core::scan_sp<int>(dev, hist, cdf, kLevels, 1, plan,
                                         core::ScanKind::kInclusive);

  // --- Step 3: remap pixels through the equalization lookup table.
  const std::int64_t cdf_min = [&] {
    for (int v = 0; v < kLevels; ++v) {
      const int c = cdf.host_span()[static_cast<std::size_t>(v)];
      if (c != 0) return static_cast<std::int64_t>(c);
    }
    return std::int64_t{0};
  }();
  const auto cv = cdf.view();
  hcfg.name = "remap";
  const auto t_remap = simt::launch(dev, hcfg, [=](simt::BlockCtx& ctx) {
    const std::int64_t base =
        static_cast<std::int64_t>(ctx.block_idx().x) * 4096;
    const std::int64_t len = std::min<std::int64_t>(4096, n - base);
    for (std::int64_t i = 0; i < len; ++i) {
      const int v = iv.load(base + i, ctx.stats());
      const std::int64_t c = cv.load(v, ctx.stats());
      const int eq = static_cast<int>((c - cdf_min) * (kLevels - 1) /
                                      std::max<std::int64_t>(1, n - cdf_min));
      iv.store(base + i, eq, ctx.stats());
      ctx.count_alu(4);
    }
  });

  // --- Verify: serial equalization must agree pixel-for-pixel, and the
  // output must span (nearly) the full dynamic range.
  std::vector<std::int64_t> shist(kLevels, 0);
  for (int x : raw) ++shist[static_cast<std::size_t>(x)];
  std::vector<std::int64_t> scdf(kLevels, 0);
  std::int64_t acc = 0;
  for (int v = 0; v < kLevels; ++v) {
    acc += shist[static_cast<std::size_t>(v)];
    scdf[static_cast<std::size_t>(v)] = acc;
  }
  bool ok = true;
  int out_min = kLevels, out_max = -1;
  for (std::int64_t i = 0; i < n && ok; ++i) {
    const int v = raw[static_cast<std::size_t>(i)];
    const int want = static_cast<int>(
        (scdf[static_cast<std::size_t>(v)] - cdf_min) * (kLevels - 1) /
        std::max<std::int64_t>(1, n - cdf_min));
    const int got = image.host_span()[static_cast<std::size_t>(i)];
    ok = got == want;
    out_min = std::min(out_min, got);
    out_max = std::max(out_max, got);
  }

  std::printf("Equalized %lld pixels: input range [96, 159] -> output range "
              "[%d, %d]\n",
              static_cast<long long>(n), out_min, out_max);
  std::printf("Simulated time: histogram %s + scan %s + remap %s\n",
              util::fmt_time_us(t_hist.seconds).c_str(),
              util::fmt_time_us(t_scan.seconds).c_str(),
              util::fmt_time_us(t_remap.seconds).c_str());
  std::printf("%s\n", ok && out_max > 240
                          ? "OK: matches serial equalization, full contrast."
                          : "FAILED: mismatch vs serial equalization!");
  return ok ? 0 : 1;
}
