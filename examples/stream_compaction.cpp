/// stream_compaction: the classic scan application (Blelloch; the paper's
/// introduction motivates scan as "the building block of different
/// applications"). Filter the elements of a stream that satisfy a
/// predicate, GPU-style:
///
///   1. flags[i]   = predicate(x[i])                (map kernel)
///   2. offsets    = exclusive_scan(flags)          (this library)
///   3. out[offsets[i]] = x[i] where flags[i]       (scatter kernel)
///
/// Everything runs on the simulated device through the same launch API
/// the scan kernels use, so the example doubles as a template for
/// building new primitives on the substrate.
///
///   $ ./stream_compaction [--n 4194304] [--threshold 50]

#include <cstdio>
#include <vector>

#include "mgs/core/api.hpp"
#include "mgs/util/cli.hpp"
#include "mgs/util/random.hpp"
#include "mgs/util/table.hpp"

using namespace mgs;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("n", "stream length (default 4 Mi)");
  cli.describe("threshold", "keep values > threshold (default 50)");
  if (cli.help_requested()) {
    cli.print_help("Stream compaction via exclusive scan.");
    return 0;
  }
  cli.reject_unknown();
  const std::int64_t n = cli.get_int("n", 1 << 22);
  const int threshold = static_cast<int>(cli.get_int("threshold", 50));

  // A one-GPU cluster + ScanContext: the scan plan comes from the
  // context's autotuner cache and the scan's auxiliary buffers from its
  // workspace pool, while the custom map/scatter kernels below use the
  // device directly.
  topo::Cluster cluster = topo::single_gpu_cluster(sim::k80_spec());
  core::ScanContext ctx(cluster);
  simt::Device& dev = cluster.device(0);

  const auto data = util::random_i32(static_cast<std::size_t>(n), 7, 0, 100);
  auto values = dev.alloc<int>(n);
  auto flags = dev.alloc<int>(n);
  auto offsets = dev.alloc<int>(n);
  std::copy(data.begin(), data.end(), values.host_span().begin());

  // --- Step 1: map kernel computing the predicate flags.
  simt::LaunchConfig map_cfg;
  map_cfg.name = "predicate_map";
  map_cfg.grid = {static_cast<int>(util::div_up(
                      static_cast<std::uint64_t>(n), 4096)),
                  1, 1};
  map_cfg.block = {128, 1, 1};
  const auto vv = values.view();
  const auto fv = flags.view();
  const auto t_map = simt::launch(dev, map_cfg, [=](simt::BlockCtx& ctx) {
    const std::int64_t base = static_cast<std::int64_t>(ctx.block_idx().x) * 4096;
    const std::int64_t len = std::min<std::int64_t>(4096, n - base);
    for (std::int64_t i = 0; i < len; i += simt::kWarpSize) {
      const int cnt = static_cast<int>(
          std::min<std::int64_t>(simt::kWarpSize, len - i));
      auto r = vv.load_warp_partial(base + i, cnt, 0, ctx.stats());
      for (int l = 0; l < cnt; ++l) r[l] = r[l] > threshold ? 1 : 0;
      ctx.count_alu(static_cast<std::uint64_t>(cnt));
      fv.store_warp_partial(base + i, cnt, r, ctx.stats());
    }
  });

  // --- Step 2: exclusive scan of the flags = output offsets, with the
  // plan memoized in the context and pooled auxiliary storage.
  const auto scan_result = core::scan_sp<int>(
      dev, flags, offsets, n, 1, ctx.plan_for(n, /*g=*/1),
      core::ScanKind::kExclusive, {}, &ctx.workspace());

  // --- Step 3: scatter kernel.
  const std::int64_t kept =
      offsets.host_span()[static_cast<std::size_t>(n - 1)] +
      flags.host_span()[static_cast<std::size_t>(n - 1)];
  auto compacted = dev.alloc<int>(std::max<std::int64_t>(kept, 1));
  const auto ov = offsets.view();
  const auto cv = compacted.view();
  map_cfg.name = "scatter";
  const auto t_scatter = simt::launch(dev, map_cfg, [=](simt::BlockCtx& ctx) {
    const std::int64_t base = static_cast<std::int64_t>(ctx.block_idx().x) * 4096;
    const std::int64_t len = std::min<std::int64_t>(4096, n - base);
    for (std::int64_t i = 0; i < len; ++i) {
      if (fv.load(base + i, ctx.stats()) != 0) {
        cv.store(ov.load(base + i, ctx.stats()),
                 vv.load(base + i, ctx.stats()), ctx.stats());
      }
    }
  });

  // --- Verify against a serial compaction.
  std::vector<int> want;
  for (const int x : data) {
    if (x > threshold) want.push_back(x);
  }
  const auto got = compacted.host_span();
  bool ok = static_cast<std::int64_t>(want.size()) == kept;
  for (std::size_t i = 0; ok && i < want.size(); ++i) {
    ok = got[i] == want[i];
  }

  std::printf("Compacted %lld -> %lld elements (> %d)\n",
              static_cast<long long>(n), static_cast<long long>(kept),
              threshold);
  std::printf("Simulated time: map %s + scan %s + scatter %s\n",
              util::fmt_time_us(t_map.seconds).c_str(),
              util::fmt_time_us(scan_result.seconds).c_str(),
              util::fmt_time_us(t_scatter.seconds).c_str());
  std::printf("%s\n", ok ? "OK: matches serial compaction."
                         : "FAILED: mismatch vs serial compaction!");
  return ok ? 0 : 1;
}
