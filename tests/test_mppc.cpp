// Integration tests for Scan-MP-PC (prioritized communications):
// partition construction, correctness against the reference, and the
// performance relations of Section 4.1.1 (P2P-only groups beat the
// host-staged W=8 MPS at large G).

#include <gtest/gtest.h>

#include "mgs/baselines/reference.hpp"
#include "mgs/core/scan_mppc.hpp"
#include "mgs/core/tuning.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace mt = mgs::topo;
using mgs::baselines::reference_batch_scan;

namespace {

mc::ScanPlan paper_plan(int k) {
  auto plan = mc::derive_spl(mgs::sim::k80_spec(), 4).plan;
  plan.s13.k = k;
  return plan;
}

}  // namespace

TEST(MppcPartition, ShapeAndProblemSplit) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  const auto part = mc::make_mppc_partition(cluster, /*y=*/2, /*v=*/4, /*g=*/12);
  ASSERT_EQ(part.groups.size(), 2u);
  EXPECT_EQ(part.groups[0], (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(part.groups[1], (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(part.g_of_group[0], 6);
  EXPECT_EQ(part.g_of_group[1], 6);
  EXPECT_EQ(part.g_offset[1], 6);
  // Every group's GPUs sit on one PCIe network (pure P2P).
  for (const auto& grp : part.groups) {
    for (int a : grp) {
      for (int b : grp) {
        if (a != b) {
          EXPECT_EQ(cluster.link_between(a, b), mt::LinkType::kP2P);
        }
      }
    }
  }
}

TEST(MppcPartition, UnevenBatchAndReducedNetworks) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  // 5 problems over 2 networks: 3 + 2.
  auto part = mc::make_mppc_partition(cluster, 2, 2, 5);
  EXPECT_EQ(part.g_of_group[0], 3);
  EXPECT_EQ(part.g_of_group[1], 2);
  // G=1 < Y=2: group count reduced to 1 (the paper's rule).
  part = mc::make_mppc_partition(cluster, 2, 2, 1);
  EXPECT_EQ(part.groups.size(), 1u);
}

TEST(MppcPartition, MultiNodeGroups) {
  auto cluster = mt::tsubame_kfc_cluster(2);
  const auto part =
      mc::make_mppc_partition(cluster, 2, 4, /*g=*/8, /*nodes=*/2);
  ASSERT_EQ(part.groups.size(), 4u);  // 2 nodes x 2 networks
  EXPECT_EQ(part.groups[2][0], 8);    // node 1, network 0 starts at GPU 8
}

TEST(MppcPartition, RejectsBadShapes) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  EXPECT_THROW(mc::make_mppc_partition(cluster, 3, 2, 4), mgs::util::Error);
  EXPECT_THROW(mc::make_mppc_partition(cluster, 2, 5, 4), mgs::util::Error);
  EXPECT_THROW(mc::make_mppc_partition(cluster, 2, 2, 0), mgs::util::Error);
}

struct MppcCase {
  int y;
  int v;
  std::int64_t n;
  std::int64_t g;
  mc::ScanKind kind;
};

class MppcSweep : public ::testing::TestWithParam<MppcCase> {};

TEST_P(MppcSweep, MatchesReference) {
  const auto c = GetParam();
  auto cluster = mt::tsubame_kfc_cluster(1);
  const auto plan = paper_plan(2);
  const auto part = mc::make_mppc_partition(cluster, c.y, c.v, c.g);
  const auto data = mgs::util::random_i32(
      static_cast<std::size_t>(c.n * c.g),
      static_cast<std::uint64_t>(c.n + c.g));
  auto batches = mc::distribute_mppc<int>(cluster, part, data, c.n);
  mc::scan_mppc<int>(cluster, part, batches, c.n, plan, c.kind);
  const auto got = mc::collect_mppc<int>(part, batches, c.n);
  const auto want = reference_batch_scan<int>(data, c.n, c.g, c.kind);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MppcSweep,
    ::testing::Values(
        MppcCase{2, 2, 1 << 14, 4, mc::ScanKind::kInclusive},
        MppcCase{2, 2, 1 << 14, 4, mc::ScanKind::kExclusive},
        MppcCase{2, 4, 1 << 15, 8, mc::ScanKind::kInclusive},
        MppcCase{2, 4, 1 << 13, 3, mc::ScanKind::kExclusive},  // uneven split
        MppcCase{1, 4, 1 << 15, 2, mc::ScanKind::kInclusive},
        MppcCase{2, 2, 2 * 9999, 5, mc::ScanKind::kInclusive}));

TEST(Mppc, MultiNodeVariantMatchesReference) {
  // Section 4.1.1's multi-node MP-PC: each node's networks solve their
  // own problems, no MPI at all -- the same code runs across nodes.
  auto cluster = mt::tsubame_kfc_cluster(2);
  const std::int64_t n = 1 << 14;
  const std::int64_t g = 8;
  const auto plan = paper_plan(2);
  const auto part = mc::make_mppc_partition(cluster, 2, 2, g, /*nodes=*/2);
  ASSERT_EQ(part.groups.size(), 4u);  // 2 nodes x 2 networks
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n * g), 6);
  auto batches = mc::distribute_mppc<int>(cluster, part, data, n);
  const auto r = mc::scan_mppc<int>(cluster, part, batches, n, plan,
                                    mc::ScanKind::kInclusive);
  EXPECT_GT(r.seconds, 0.0);
  const auto got = mc::collect_mppc<int>(part, batches, n);
  EXPECT_EQ(got, reference_batch_scan<int>(data, n, g,
                                           mc::ScanKind::kInclusive));
  // No MPI and no host staging: every transfer stayed on P2P/self links,
  // so two nodes take about the time of one node with half the problems.
  auto c1 = mt::tsubame_kfc_cluster(1);
  const auto part1 = mc::make_mppc_partition(c1, 2, 2, g / 2, 1);
  auto b1 = mc::distribute_mppc<int>(
      c1, part1, std::span<const int>(data).subspan(0, static_cast<std::size_t>(n * g / 2)), n);
  const auto r1 = mc::scan_mppc<int>(c1, part1, b1, n, plan,
                                     mc::ScanKind::kInclusive);
  EXPECT_NEAR(r.seconds, r1.seconds, 0.2 * r1.seconds);
}

TEST(MppcPerf, AvoidsHostStagingAndBeatsW8MpsAtLargeG) {
  // The paper's motivation for MP-PC: at large G the W=8 MPS drowns in
  // host-staged aux traffic, while MP-PC (W=8 as 2 x V=4 P2P groups)
  // keeps everything on PCIe networks.
  const std::int64_t n = 1 << 16;
  const std::int64_t g = 256;
  const auto plan = paper_plan(2);

  auto c_mps = mt::tsubame_kfc_cluster(1);
  std::vector<int> gpus = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n * g), 3);
  auto b_mps = mc::distribute_batch<int>(c_mps, gpus, data, n, g);
  const auto r_mps = mc::scan_mps<int>(c_mps, gpus, b_mps, n, g, plan,
                                       mc::ScanKind::kInclusive);

  auto c_pc = mt::tsubame_kfc_cluster(1);
  const auto part = mc::make_mppc_partition(c_pc, 2, 4, g);
  auto b_pc = mc::distribute_mppc<int>(c_pc, part, data, n);
  const auto r_pc = mc::scan_mppc<int>(c_pc, part, b_pc, n, plan,
                                       mc::ScanKind::kInclusive);

  EXPECT_LT(r_pc.seconds, r_mps.seconds);
}

TEST(MppcPerf, GroupsRunConcurrently) {
  // Two groups over disjoint networks should take about one group's time
  // for half the work, not the sum (independent simulated clocks). Large
  // enough N*G that per-launch fixed costs do not mask the halving.
  const std::int64_t n = 1 << 21;
  const std::int64_t g = 8;
  const auto plan = paper_plan(8);

  auto c1 = mt::tsubame_kfc_cluster(1);
  const auto part1 = mc::make_mppc_partition(c1, 1, 4, g);
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n * g), 4);
  auto b1 = mc::distribute_mppc<int>(c1, part1, data, n);
  const auto one_group =
      mc::scan_mppc<int>(c1, part1, b1, n, plan, mc::ScanKind::kInclusive);

  auto c2 = mt::tsubame_kfc_cluster(1);
  const auto part2 = mc::make_mppc_partition(c2, 2, 4, g);
  auto b2 = mc::distribute_mppc<int>(c2, part2, data, n);
  const auto two_groups =
      mc::scan_mppc<int>(c2, part2, b2, n, plan, mc::ScanKind::kInclusive);

  // Each group now handles half the problems; with parallel groups the
  // makespan must drop to roughly half a single group's time.
  EXPECT_LT(two_groups.seconds, 0.75 * one_group.seconds);
}
