// Unit tests for mgs/sim: device specs, the occupancy calculator (which
// must reproduce the paper's Table 3 exactly), the kernel cost model and
// the timeline/breakdown bookkeeping.

#include <gtest/gtest.h>

#include "mgs/sim/cost_model.hpp"
#include "mgs/sim/device_spec.hpp"
#include "mgs/sim/occupancy.hpp"
#include "mgs/sim/timeline.hpp"
#include "mgs/util/check.hpp"

namespace ms = mgs::sim;

TEST(DeviceSpec, Presets) {
  const auto k80 = ms::k80_spec();
  EXPECT_EQ(k80.cc_major, 3);
  EXPECT_EQ(k80.cc_minor, 7);
  EXPECT_EQ(k80.max_blocks_per_sm, 16);
  EXPECT_EQ(k80.max_warps_per_sm, 64);
  const auto mx = ms::maxwell_spec();
  EXPECT_EQ(mx.max_blocks_per_sm, 32);  // the paper's Maxwell remark
  EXPECT_EQ(ms::spec_by_name("k80").name, k80.name);
  EXPECT_EQ(ms::spec_by_name("pascal").cc_major, 6);
  EXPECT_THROW(ms::spec_by_name("volta"), mgs::util::Error);
}

// --- Table 3 of the paper, row by row (cc 3.7) -------------------------
// | warps/block | regs | smem  | occupancy | blocks/SM |
// |      1      | 256* | 7168  |    25%    |    16     |  (*255 = cc3.7 cap,
// |      2      | 128  | 7168  |    50%    |    16     |   allocates as 256)
// |      4      |  64  | 7168  |   100%    |    16     |
// |      8      |  64  | 14336 |   100%    |     8     |
// |     16      |  64  | 28672 |   100%    |     4     |
// |     32      |  64  | 49152 |   100%    |     2     |
struct Table3Row {
  int warps;
  int regs;
  int smem;
  double occupancy;
  int blocks;
};

class Table3Test : public ::testing::TestWithParam<Table3Row> {};

TEST_P(Table3Test, MatchesPaper) {
  const auto row = GetParam();
  const auto spec = ms::k80_spec();
  const auto r =
      ms::occupancy(spec, row.warps * spec.warp_size, row.regs, row.smem);
  EXPECT_EQ(r.blocks_per_sm, row.blocks) << "warps/block=" << row.warps;
  EXPECT_DOUBLE_EQ(r.warp_occupancy, row.occupancy)
      << "warps/block=" << row.warps;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable3, Table3Test,
    ::testing::Values(Table3Row{1, 255, 7168, 0.25, 16},
                      Table3Row{2, 128, 7168, 0.50, 16},
                      Table3Row{4, 64, 7168, 1.00, 16},
                      Table3Row{8, 64, 14336, 1.00, 8},
                      Table3Row{16, 64, 28672, 1.00, 4},
                      Table3Row{32, 64, 49152, 1.00, 2}));

TEST(Occupancy, LimiterIdentification) {
  const auto spec = ms::k80_spec();
  // 4 warps, tiny resources -> architectural block limit.
  auto r = ms::occupancy(spec, 128, 16, 0);
  EXPECT_EQ(r.limiter, ms::OccupancyLimiter::kBlocks);
  EXPECT_EQ(r.blocks_per_sm, 16);
  // Large shared memory -> shared-memory limited.
  r = ms::occupancy(spec, 128, 16, 28672);
  EXPECT_EQ(r.limiter, ms::OccupancyLimiter::kSharedMem);
  EXPECT_EQ(r.blocks_per_sm, 4);
  // Heavy registers -> register limited.
  r = ms::occupancy(spec, 256, 200, 0);
  EXPECT_EQ(r.limiter, ms::OccupancyLimiter::kRegisters);
  // One-warp blocks at max block count -> warp limit never binds before
  // the block limit on cc 3.7 (64 warps / 1 warp = 64 > 16 blocks).
  r = ms::occupancy(spec, 32, 16, 0);
  EXPECT_EQ(r.limiter, ms::OccupancyLimiter::kBlocks);
}

TEST(Occupancy, RejectsImpossibleBlocks) {
  const auto spec = ms::k80_spec();
  EXPECT_THROW(ms::occupancy(spec, 2048, 32, 0), mgs::util::Error);
  EXPECT_THROW(ms::occupancy(spec, 128, 0, 0), mgs::util::Error);
  EXPECT_THROW(ms::occupancy(spec, 128, 32, 1 << 20), mgs::util::Error);
}

TEST(CostModel, MemoryBoundStreamingKernel) {
  const auto spec = ms::k80_spec();
  ms::KernelStats st;
  st.blocks = 4096;
  st.threads_per_block = 128;
  st.regs_per_thread = 64;
  st.smem_per_block = 16;
  st.bytes_read = 512ull << 20;
  st.bytes_written = 512ull << 20;
  st.mem_transactions = (st.bytes_read + st.bytes_written) / 32;
  st.alu_ops = 1000;  // negligible
  const auto t = ms::kernel_time(spec, st);
  EXPECT_GT(t.mem_seconds, t.alu_seconds);
  EXPECT_DOUBLE_EQ(t.coalescing, 1.0);
  EXPECT_DOUBLE_EQ(t.concurrency, 1.0);
  // Effective bandwidth ~ peak * base efficiency at full concurrency
  // (slightly below: one DRAM latency is amortized over the transfer).
  const double ideal = spec.peak_bandwidth_bps() * spec.mem_efficiency_base;
  EXPECT_LT(t.effective_bandwidth_bps, ideal);
  EXPECT_GT(t.effective_bandwidth_bps, 0.99 * ideal);
}

TEST(CostModel, PoorCoalescingSlowsKernel) {
  const auto spec = ms::k80_spec();
  ms::KernelStats st;
  st.blocks = 4096;
  st.threads_per_block = 128;
  st.regs_per_thread = 64;
  st.bytes_read = 64ull << 20;
  st.mem_transactions = st.bytes_read / 4;  // one 32B txn per 4B element
  const auto bad = ms::kernel_time(spec, st);
  st.mem_transactions = st.bytes_read / 32;  // perfectly coalesced
  const auto good = ms::kernel_time(spec, st);
  EXPECT_NEAR(bad.mem_seconds / good.mem_seconds, 8.0, 0.05);
}

TEST(CostModel, SmallGridUnderutilizes) {
  const auto spec = ms::k80_spec();
  ms::KernelStats st;
  st.threads_per_block = 128;
  st.regs_per_thread = 64;
  st.bytes_read = 1 << 20;
  st.mem_transactions = st.bytes_read / 32;
  st.blocks = 2;  // far too few blocks to fill 13 SMs
  const auto small = ms::kernel_time(spec, st);
  st.blocks = 4096;
  const auto big = ms::kernel_time(spec, st);
  EXPECT_LT(small.concurrency, 0.1);
  EXPECT_GT(small.mem_seconds, big.mem_seconds * 5);
}

TEST(CostModel, AluBoundKernel) {
  const auto spec = ms::k80_spec();
  ms::KernelStats st;
  st.blocks = 4096;
  st.threads_per_block = 128;
  st.regs_per_thread = 64;
  st.bytes_read = 1024;
  st.mem_transactions = 32;
  st.alu_ops = 1ull << 34;
  const auto t = ms::kernel_time(spec, st);
  EXPECT_GT(t.alu_seconds, t.mem_seconds);
  EXPECT_DOUBLE_EQ(t.seconds, t.overhead_seconds + t.alu_seconds);
}

TEST(CostModel, LaunchOverheadAlwaysPaid) {
  const auto spec = ms::k80_spec();
  ms::KernelStats st;
  st.blocks = 1;
  st.threads_per_block = 32;
  st.regs_per_thread = 16;
  const auto t = ms::kernel_time(spec, st);
  EXPECT_DOUBLE_EQ(t.overhead_seconds, spec.kernel_launch_overhead_us * 1e-6);
  EXPECT_GE(t.seconds, t.overhead_seconds);
}

TEST(Timeline, ClockAdvancesAndSyncs) {
  ms::Clock a, b;
  a.advance(1.0);
  b.advance(0.5);
  EXPECT_DOUBLE_EQ(ms::max_now({&a, &b}), 1.0);
  ms::sync_group({&a, &b});
  EXPECT_DOUBLE_EQ(b.now(), 1.0);
  b.sync_to(0.1);  // backwards sync is a no-op
  EXPECT_DOUBLE_EQ(b.now(), 1.0);
}

TEST(Timeline, BreakdownAccumulatesInOrder) {
  ms::Breakdown bd;
  bd.add("Stage1", 1.0);
  bd.add("Stage2", 0.5);
  bd.add("Stage1", 0.25);
  EXPECT_DOUBLE_EQ(bd.total(), 1.75);
  EXPECT_DOUBLE_EQ(bd.get("Stage1"), 1.25);
  EXPECT_DOUBLE_EQ(bd.get("missing"), 0.0);
  ASSERT_EQ(bd.entries().size(), 2u);
  EXPECT_EQ(bd.entries()[0].first, "Stage1");  // insertion order kept

  ms::Breakdown other;
  other.add("Stage2", 0.5);
  other.add("MPI_Gather", 2.0);
  bd.merge(other);
  EXPECT_DOUBLE_EQ(bd.get("Stage2"), 1.0);
  EXPECT_DOUBLE_EQ(bd.get("MPI_Gather"), 2.0);
}
