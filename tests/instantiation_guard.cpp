// CI instantiation guard: force every proposal executor template through
// every (DType, OpTag) cell of the dispatch matrix, and through the
// packed segmented representation, in one TU. Ordinary TUs never
// instantiate the full matrix (the factory tables live only in
// executor.cpp), so a member function that fails to compile for, say,
// (float, Min) could otherwise hide until a caller first touches that
// cell. Explicit instantiation definitions instantiate *all* members.
//
// The static_asserts mirror executor.cpp's: every table a Maker builds
// must be dense, so adding a DType or OpTag enumerator without extending
// the rows breaks this build instead of null-dispatching at runtime.
//
// Runtime behavior is a smoke check only: one erased construction per
// proposal name proves the tables dispatch.

#include <cstdint>
#include <cstdio>

#include "mgs/core/executor_impl.hpp"
#include "mgs/core/executor_registry.hpp"
#include "mgs/core/segmented_context.hpp"
#include "mgs/topo/topology.hpp"

// ---- the full proposal x dtype x op matrix, all members ----------------

#define MGS_GUARD_OPS(EXEC, T)                                   \
  template class mgs::core::detail::EXEC<T, mgs::core::Plus<T>>; \
  template class mgs::core::detail::EXEC<T, mgs::core::Max<T>>;  \
  template class mgs::core::detail::EXEC<T, mgs::core::Min<T>>;

#define MGS_GUARD_MATRIX(EXEC)       \
  MGS_GUARD_OPS(EXEC, std::int32_t)  \
  MGS_GUARD_OPS(EXEC, std::int64_t)  \
  MGS_GUARD_OPS(EXEC, std::uint32_t) \
  MGS_GUARD_OPS(EXEC, float)         \
  MGS_GUARD_OPS(EXEC, double)

// MpsExecutorT serves both Scan-MPS and Scan-MPS-direct; four class
// templates cover the five registry names.
MGS_GUARD_MATRIX(SpExecutorT)
MGS_GUARD_MATRIX(MpsExecutorT)
MGS_GUARD_MATRIX(MppcExecutorT)
MGS_GUARD_MATRIX(MultinodeExecutorT)

// ---- the packed segmented path (outside the erased matrix) -------------

template class mgs::core::SegmentedScan<double>;
template class mgs::core::SegmentedScan<std::int64_t,
                                        mgs::core::Max<std::int64_t>>;
template class mgs::core::detail::SpExecutorT<
    mgs::core::SegPair<float>,
    mgs::core::SegOp<float, mgs::core::Plus<float>>>;
template class mgs::core::detail::MpsExecutorT<
    mgs::core::SegPair<std::int32_t>,
    mgs::core::SegOp<std::int32_t, mgs::core::Min<std::int32_t>>>;

// ---- table density ------------------------------------------------------

namespace mgs::core::detail {

constexpr FactoryTable kGuardSp = make_table<SpMaker>();
constexpr FactoryTable kGuardMps = make_table<MpsMaker>();
constexpr FactoryTable kGuardMpsDirect = make_table<MpsDirectMaker>();
constexpr FactoryTable kGuardMppc = make_table<MppcMaker>();
constexpr FactoryTable kGuardMultinode = make_table<MultinodeMaker>();

static_assert(table_is_dense(kGuardSp),
              "Scan-SP factory table has an unfilled (dtype, op) cell");
static_assert(table_is_dense(kGuardMps),
              "Scan-MPS factory table has an unfilled (dtype, op) cell");
static_assert(table_is_dense(kGuardMpsDirect),
              "Scan-MPS-direct factory table has an unfilled cell");
static_assert(table_is_dense(kGuardMppc),
              "Scan-MP-PC factory table has an unfilled (dtype, op) cell");
static_assert(table_is_dense(kGuardMultinode),
              "Scan-MPS-multinode factory table has an unfilled cell");

}  // namespace mgs::core::detail

int main() {
  namespace mc = mgs::core;
  auto cluster = mgs::topo::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);
  int built = 0;
  for (const auto& info : mc::all_executors()) {
    for (const auto dtype : {mc::DType::kI32, mc::DType::kF64}) {
      for (const auto op : {mc::OpTag::kPlus, mc::OpTag::kMax}) {
        mc::ExecutorParams p;
        p.dtype = dtype;
        p.op = op;
        auto ex = mc::make_executor(info.name, ctx, p);
        if (ex->dtype() != dtype || ex->op() != op) {
          std::fprintf(stderr, "guard: %s dispatched the wrong cell\n",
                       info.name.c_str());
          return 1;
        }
        ++built;
      }
    }
  }
  std::printf("instantiation guard: %d erased constructions dispatched, "
              "all factory tables dense\n",
              built);
  return 0;
}
