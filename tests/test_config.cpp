// Tests for the textual cluster configuration (topo/config.hpp).

#include <gtest/gtest.h>

#include "mgs/topo/config.hpp"

namespace mt = mgs::topo;

TEST(ClusterConfigParse, DefaultsToPaperPlatform) {
  const auto cfg = mt::parse_cluster_config("");
  EXPECT_EQ(cfg.nodes, 1);
  EXPECT_EQ(cfg.networks_per_node, 2);
  EXPECT_EQ(cfg.gpus_per_network, 4);
  EXPECT_EQ(cfg.gpu.cc_major, 3);
  EXPECT_DOUBLE_EQ(cfg.links.p2p_bandwidth_gbps, 10.0);
}

TEST(ClusterConfigParse, ParsesShapeAndLinks) {
  const auto cfg = mt::parse_cluster_config(
      "nodes=4 networks=1 gpus=8 gpu=pascal p2p-gbps=20 p2p-us=4 "
      "host-gbps=11 host-us=10 ib-gbps=12.5 ib-us=12 mpi-us=15 row-us=0.05");
  EXPECT_EQ(cfg.nodes, 4);
  EXPECT_EQ(cfg.networks_per_node, 1);
  EXPECT_EQ(cfg.gpus_per_network, 8);
  EXPECT_EQ(cfg.gpu.cc_major, 6);
  EXPECT_DOUBLE_EQ(cfg.links.p2p_bandwidth_gbps, 20.0);
  EXPECT_DOUBLE_EQ(cfg.links.p2p_latency_us, 4.0);
  EXPECT_DOUBLE_EQ(cfg.links.host_bandwidth_gbps, 11.0);
  EXPECT_DOUBLE_EQ(cfg.links.ib_bandwidth_gbps, 12.5);
  EXPECT_DOUBLE_EQ(cfg.links.mpi_overhead_us, 15.0);
  EXPECT_DOUBLE_EQ(cfg.links.row_overhead_us, 0.05);
}

TEST(ClusterConfigParse, BuildsWorkingCluster) {
  const auto cfg = mt::parse_cluster_config("nodes=2 networks=2 gpus=2");
  mt::Cluster cluster(cfg);
  EXPECT_EQ(cluster.num_devices(), 8);
  EXPECT_EQ(cluster.link_between(0, 1), mt::LinkType::kP2P);
  EXPECT_EQ(cluster.link_between(0, 2), mt::LinkType::kHostStaged);
  EXPECT_EQ(cluster.link_between(0, 4), mt::LinkType::kInterNode);
}

TEST(ClusterConfigParse, RejectsMalformedInput) {
  EXPECT_THROW(mt::parse_cluster_config("nodes"), mgs::util::Error);
  EXPECT_THROW(mt::parse_cluster_config("nodes="), mgs::util::Error);
  EXPECT_THROW(mt::parse_cluster_config("=2"), mgs::util::Error);
  EXPECT_THROW(mt::parse_cluster_config("nodes=two"), mgs::util::Error);
  EXPECT_THROW(mt::parse_cluster_config("nodes=0"), mgs::util::Error);
  EXPECT_THROW(mt::parse_cluster_config("nodes=2.5"), mgs::util::Error);
  EXPECT_THROW(mt::parse_cluster_config("gpu=volta"), mgs::util::Error);
  EXPECT_THROW(mt::parse_cluster_config("typo-key=1"), mgs::util::Error);
  EXPECT_THROW(mt::parse_cluster_config("p2p-gbps=-1"), mgs::util::Error);
}

TEST(ClusterConfigParse, RoundTripsThroughDescribe) {
  const std::string text =
      "nodes=3 networks=2 gpus=4 gpu=maxwell p2p-gbps=12 mpi-us=25";
  const auto cfg = mt::parse_cluster_config(text);
  const auto cfg2 = mt::parse_cluster_config(mt::describe_cluster_config(cfg));
  EXPECT_EQ(cfg2.nodes, cfg.nodes);
  EXPECT_EQ(cfg2.networks_per_node, cfg.networks_per_node);
  EXPECT_EQ(cfg2.gpus_per_network, cfg.gpus_per_network);
  EXPECT_EQ(cfg2.gpu.name, cfg.gpu.name);
  EXPECT_DOUBLE_EQ(cfg2.links.p2p_bandwidth_gbps,
                   cfg.links.p2p_bandwidth_gbps);
  EXPECT_DOUBLE_EQ(cfg2.links.mpi_overhead_us, cfg.links.mpi_overhead_us);
  EXPECT_DOUBLE_EQ(cfg2.links.row_overhead_us, cfg.links.row_overhead_us);
}
