// Integration tests for Scan-SP: the full three-kernel single-GPU batch
// scan against the serial reference, across sizes, batch counts, kinds,
// operators and element types (parameterized sweeps).

#include <gtest/gtest.h>

#include "mgs/baselines/reference.hpp"
#include "mgs/core/scan_sp.hpp"
#include "mgs/core/tuning.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace st = mgs::simt;
using mgs::baselines::reference_batch_scan;

namespace {

mc::ScanPlan paper_plan(int k = 4) {
  mc::ScanPlan plan = mc::derive_spl(mgs::sim::k80_spec(), 4).plan;
  plan.s13.k = k;
  return plan;
}

template <typename T, typename Op = mc::Plus<T>>
void check_scan_sp(std::int64_t n, std::int64_t g, mc::ScanKind kind, int k,
                   std::uint64_t seed) {
  st::Device dev(0, mgs::sim::k80_spec());
  const auto plan = [&] {
    auto p = paper_plan(k);
    return p;
  }();
  std::vector<T> data;
  if constexpr (std::is_same_v<T, float>) {
    // Small integral floats keep the scan exact.
    const auto ints = mgs::util::random_i32(static_cast<std::size_t>(n * g),
                                            seed, -4, 4);
    data.assign(ints.begin(), ints.end());
  } else {
    const auto ints = mgs::util::random_i32(static_cast<std::size_t>(n * g),
                                            seed);
    data.assign(ints.begin(), ints.end());
  }

  auto in = dev.alloc<T>(n * g);
  auto out = dev.alloc<T>(n * g);
  std::copy(data.begin(), data.end(), in.host_span().begin());

  const auto result = mc::scan_sp<T, Op>(dev, in, out, n, g, plan, kind);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_EQ(result.payload_bytes, 2ull * static_cast<std::uint64_t>(n) * g * sizeof(T));

  const auto want = reference_batch_scan<T, Op>(data, n, g, kind);
  const auto got = out.host_span();
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "n=" << n << " g=" << g << " i=" << i;
  }
}

}  // namespace

TEST(ScanSp, SmallSingleProblemUsesDirectPath) {
  st::Device dev(0, mgs::sim::k80_spec());
  const auto plan = paper_plan(4);
  const std::int64_t n = plan.s13.chunk();  // exactly one chunk -> direct
  auto in = dev.alloc<int>(n);
  auto out = dev.alloc<int>(n);
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n), 1);
  std::copy(data.begin(), data.end(), in.host_span().begin());
  const auto r = mc::scan_sp<int>(dev, in, out, n, 1, plan,
                                  mc::ScanKind::kInclusive);
  EXPECT_EQ(r.breakdown.get("Stage1"), 0.0);  // stages 1-2 skipped
  EXPECT_GT(r.breakdown.get("Stage3"), 0.0);
  int acc = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc += data[static_cast<std::size_t>(i)];
    ASSERT_EQ(out.host_span()[static_cast<std::size_t>(i)], acc);
  }
}

TEST(ScanSp, ThreeStageBreakdownPresent) {
  st::Device dev(0, mgs::sim::k80_spec());
  const auto plan = paper_plan(2);
  const std::int64_t n = 1 << 16;
  auto in = dev.alloc<int>(n);
  auto out = dev.alloc<int>(n);
  const auto r = mc::scan_sp<int>(dev, in, out, n, 1, plan,
                                  mc::ScanKind::kInclusive);
  EXPECT_GT(r.breakdown.get("Stage1"), 0.0);
  EXPECT_GT(r.breakdown.get("Stage2"), 0.0);
  EXPECT_GT(r.breakdown.get("Stage3"), 0.0);
  EXPECT_NEAR(r.breakdown.total(), r.seconds, 1e-12);
}

TEST(ScanSp, InPlaceScanWorks) {
  st::Device dev(0, mgs::sim::k80_spec());
  const auto plan = paper_plan(2);
  const std::int64_t n = 1 << 14;
  auto buf = dev.alloc<int>(n);
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n), 2);
  std::copy(data.begin(), data.end(), buf.host_span().begin());
  mc::scan_sp<int>(dev, buf, buf, n, 1, plan, mc::ScanKind::kInclusive);
  int acc = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc += data[static_cast<std::size_t>(i)];
    ASSERT_EQ(buf.host_span()[static_cast<std::size_t>(i)], acc);
  }
}

TEST(ScanSp, RejectsBadArguments) {
  st::Device dev(0, mgs::sim::k80_spec());
  const auto plan = paper_plan(2);
  auto buf = dev.alloc<int>(16);
  EXPECT_THROW(mc::scan_sp<int>(dev, buf, buf, 0, 1, plan,
                                mc::ScanKind::kInclusive),
               mgs::util::Error);
  EXPECT_THROW(mc::scan_sp<int>(dev, buf, buf, 32, 1, plan,
                                mc::ScanKind::kInclusive),
               mgs::util::Error);
  auto bad_plan = plan;
  bad_plan.s13.p = 3;  // not a power of two
  EXPECT_THROW(mc::scan_sp<int>(dev, buf, buf, 16, 1, bad_plan,
                                mc::ScanKind::kInclusive),
               mgs::util::Error);
}

// ---- Parameterized correctness sweep ----------------------------------

struct SweepCase {
  std::int64_t n;
  std::int64_t g;
  mc::ScanKind kind;
  int k;
};

class ScanSpSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ScanSpSweep, MatchesReferenceInt32) {
  const auto c = GetParam();
  check_scan_sp<int>(c.n, c.g, c.kind, c.k, 42 + static_cast<std::uint64_t>(c.n));
}

TEST_P(ScanSpSweep, MatchesReferenceInt64) {
  const auto c = GetParam();
  check_scan_sp<std::int64_t>(c.n, c.g, c.kind, c.k, 7);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ScanSpSweep,
    ::testing::Values(
        // Power-of-two sizes, the paper's default world.
        SweepCase{1 << 12, 1, mc::ScanKind::kInclusive, 1},
        SweepCase{1 << 12, 1, mc::ScanKind::kExclusive, 1},
        SweepCase{1 << 15, 4, mc::ScanKind::kInclusive, 2},
        SweepCase{1 << 15, 4, mc::ScanKind::kExclusive, 2},
        SweepCase{1 << 13, 32, mc::ScanKind::kInclusive, 4},
        SweepCase{1 << 18, 1, mc::ScanKind::kInclusive, 8},
        // Non-power-of-two sizes (partial chunks and tiles).
        SweepCase{1000, 3, mc::ScanKind::kInclusive, 1},
        SweepCase{12345, 2, mc::ScanKind::kExclusive, 2},
        SweepCase{(1 << 14) + 1, 1, mc::ScanKind::kInclusive, 2},
        SweepCase{(1 << 14) - 1, 5, mc::ScanKind::kExclusive, 4},
        // Tiny inputs.
        SweepCase{1, 1, mc::ScanKind::kInclusive, 1},
        SweepCase{1, 7, mc::ScanKind::kExclusive, 1},
        SweepCase{33, 2, mc::ScanKind::kInclusive, 1},
        // Warp-boundary and chunk-boundary edges.
        SweepCase{31, 1, mc::ScanKind::kInclusive, 1},
        SweepCase{32, 1, mc::ScanKind::kExclusive, 1},
        SweepCase{127, 3, mc::ScanKind::kInclusive, 1},
        SweepCase{129, 3, mc::ScanKind::kExclusive, 1},
        // One element past a chunk (direct path -> three-kernel path).
        SweepCase{1024 + 1, 1, mc::ScanKind::kInclusive, 1},
        SweepCase{4096 + 1, 2, mc::ScanKind::kExclusive, 4},
        // Wider batch dimension.
        SweepCase{512, 64, mc::ScanKind::kInclusive, 1},
        SweepCase{100, 100, mc::ScanKind::kExclusive, 1}));

TEST(ScanSp, FloatPlusMatchesReference) {
  check_scan_sp<float>(1 << 13, 2, mc::ScanKind::kInclusive, 2, 9);
}

TEST(ScanSp, DoublePlusMatchesReference) {
  check_scan_sp<double>(1 << 13, 2, mc::ScanKind::kExclusive, 2, 12);
}

TEST(ScanSp, UnsignedWrapsModulo) {
  // Unsigned sums wrap mod 2^32 on both sides; still bit-exact.
  st::Device dev(0, mgs::sim::k80_spec());
  const auto plan = paper_plan(2);
  const std::int64_t n = 1 << 15;
  std::vector<std::uint32_t> data(static_cast<std::size_t>(n),
                                  0xC000'0000u);  // forces wraparound
  auto in = dev.alloc<std::uint32_t>(n);
  auto out = dev.alloc<std::uint32_t>(n);
  std::copy(data.begin(), data.end(), in.host_span().begin());
  mc::scan_sp<std::uint32_t>(dev, in, out, n, 1, plan,
                             mc::ScanKind::kInclusive);
  std::uint32_t acc = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc += data[static_cast<std::size_t>(i)];
    ASSERT_EQ(out.host_span()[static_cast<std::size_t>(i)], acc);
  }
}

TEST(ScanSp, WiderElementsUseMoreSharedMemory) {
  // The plan's shared-memory estimate scales with the element size (one
  // partial per warp), still far under the 7168-byte Premise-1 budget.
  const auto plan = paper_plan(1);
  EXPECT_EQ(plan.s13.smem_bytes(4), plan.s13.warps() * 4);
  EXPECT_EQ(plan.s13.smem_bytes(8), plan.s13.warps() * 8);
  EXPECT_LT(plan.s13.smem_bytes(8), 7168);
}

TEST(ScanSp, MaxOperatorMatchesReference) {
  check_scan_sp<int, mc::Max<int>>(1 << 14, 3, mc::ScanKind::kInclusive, 2, 10);
}

TEST(ScanSp, MinOperatorMatchesReference) {
  check_scan_sp<int, mc::Min<int>>(1 << 13, 2, mc::ScanKind::kInclusive, 1, 11);
}

TEST(ScanSp, LargerKIsFewerChunks) {
  st::Device dev(0, mgs::sim::k80_spec());
  const std::int64_t n = 1 << 20;
  auto in = dev.alloc<int>(n);
  auto out = dev.alloc<int>(n);
  auto p1 = paper_plan(1);
  auto p8 = paper_plan(8);
  const auto lay1 = mc::make_layout(n, 1, p1.s13);
  const auto lay8 = mc::make_layout(n, 1, p8.s13);
  EXPECT_EQ(lay1.bx, 8 * lay8.bx);
  // Both still produce correct results.
  mc::scan_sp<int>(dev, in, out, n, 1, p1, mc::ScanKind::kInclusive);
  mc::scan_sp<int>(dev, in, out, n, 1, p8, mc::ScanKind::kInclusive);
}
