// Integration tests for the multi-node Scan-MPS proposal: correctness
// over M*W ranks, the Figure-14 breakdown phases, and Section 5.2's
// (M, W) combination observations.

#include <gtest/gtest.h>

#include "mgs/baselines/reference.hpp"
#include "mgs/core/scan_multinode.hpp"
#include "mgs/core/tuning.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace mm = mgs::msg;
namespace mt = mgs::topo;
using mgs::baselines::reference_batch_scan;

namespace {

mc::ScanPlan paper_plan(int k) {
  auto plan = mc::derive_spl(mgs::sim::k80_spec(), 4).plan;
  plan.s13.k = k;
  return plan;
}

/// Ranks for M nodes x W GPUs, filling PCIe networks first.
std::vector<int> ranks_for(const mt::Cluster& cluster, int m, int w) {
  std::vector<int> ids;
  for (int node = 0; node < m; ++node) {
    for (int i = 0; i < w; ++i) {
      const int network = i / cluster.config().gpus_per_network;
      const int slot = i % cluster.config().gpus_per_network;
      ids.push_back(cluster.global_id(node, network, slot));
    }
  }
  return ids;
}

mc::RunResult run_multinode(int m, int w, std::int64_t n, std::int64_t g,
                            mc::ScanKind kind, int k,
                            std::vector<int>* data_out = nullptr,
                            std::vector<int>* got = nullptr) {
  auto cluster = mt::tsubame_kfc_cluster(m);
  mm::Communicator comm(cluster, ranks_for(cluster, m, w));
  const auto plan = paper_plan(k);
  const auto data = mgs::util::random_i32(
      static_cast<std::size_t>(n * g),
      static_cast<std::uint64_t>(n + m * 100 + w));
  // distribute_batch works per device id list == rank order.
  std::vector<int> ids = ranks_for(cluster, m, w);
  auto batches = mc::distribute_batch<int>(cluster, ids, data, n, g);
  const auto r = mc::scan_mps_multinode<int>(comm, batches, n, g, plan, kind);
  if (got != nullptr) *got = mc::collect_batch(batches, n, g);
  if (data_out != nullptr) *data_out = data;
  return r;
}

}  // namespace

struct MnCase {
  int m;
  int w;
  std::int64_t n;
  std::int64_t g;
  mc::ScanKind kind;
};

class MultiNodeSweep : public ::testing::TestWithParam<MnCase> {};

TEST_P(MultiNodeSweep, MatchesReference) {
  const auto c = GetParam();
  std::vector<int> data, got;
  run_multinode(c.m, c.w, c.n, c.g, c.kind, 2, &data, &got);
  const auto want = reference_batch_scan<int>(data, c.n, c.g, c.kind);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "m=" << c.m << " w=" << c.w << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MultiNodeSweep,
    ::testing::Values(MnCase{2, 4, 1 << 16, 2, mc::ScanKind::kInclusive},
                      MnCase{2, 4, 1 << 16, 2, mc::ScanKind::kExclusive},
                      MnCase{2, 2, 1 << 14, 4, mc::ScanKind::kInclusive},
                      MnCase{4, 2, 1 << 15, 1, mc::ScanKind::kInclusive},
                      MnCase{2, 8, 1 << 17, 2, mc::ScanKind::kExclusive},
                      MnCase{8, 1, 1 << 16, 1, mc::ScanKind::kInclusive},
                      MnCase{2, 4, 8 * 4321, 3, mc::ScanKind::kInclusive}));

TEST(MultiNode, BreakdownHasFigure14Phases) {
  const auto r = run_multinode(2, 4, 1 << 18, 4, mc::ScanKind::kInclusive, 2);
  EXPECT_GT(r.breakdown.get("Stage1"), 0.0);
  EXPECT_GT(r.breakdown.get("Stage2"), 0.0);
  EXPECT_GT(r.breakdown.get("Stage3"), 0.0);
  EXPECT_GT(r.breakdown.get("MPI_Gather"), 0.0);
  EXPECT_GT(r.breakdown.get("MPI_Scatter"), 0.0);
  EXPECT_GT(r.breakdown.get("MPI_Barrier"), 0.0);
}

TEST(MultiNode, MpiOverheadRoughlyConstantInN) {
  // Section 5.2: "the MPI overhead is almost constant in spite of the
  // amount of data, while GPU computation time is proportional". With 64x
  // the data, the collectives must stay near-constant while the compute
  // stages grow severalfold (launch latency flattens the small end).
  const auto small = run_multinode(2, 4, 1 << 17, 1, mc::ScanKind::kInclusive, 4);
  const auto large = run_multinode(2, 4, 1 << 23, 1, mc::ScanKind::kInclusive, 4);
  const double mpi_small = small.breakdown.get("MPI_Gather") +
                           small.breakdown.get("MPI_Scatter") +
                           small.breakdown.get("MPI_Barrier");
  const double mpi_large = large.breakdown.get("MPI_Gather") +
                           large.breakdown.get("MPI_Scatter") +
                           large.breakdown.get("MPI_Barrier");
  EXPECT_LT(mpi_large / mpi_small, 3.0);  // near-constant
  EXPECT_GT(large.breakdown.get("Stage1"),
            2.5 * small.breakdown.get("Stage1"));  // compute scales with N
  // Consequence: total time grows far slower than the 64x data factor.
  EXPECT_LT(large.seconds, 32.0 * small.seconds);
}

TEST(MultiNode, CombinationStudyM2W4BeatsM8W1) {
  // Section 5.2: with 8 GPUs total, M=2 x W=4 beats M=8 x W=1, and the
  // gap narrows as N grows (1.48x at n=13 -> 1.03x at n=28).
  const std::int64_t small_n = 1 << 14;
  const std::int64_t big_n = 1 << 22;
  const auto g_of = [](std::int64_t n) { return (std::int64_t{1} << 24) / n; };

  const auto m2w4_small =
      run_multinode(2, 4, small_n, g_of(small_n), mc::ScanKind::kInclusive, 2);
  const auto m8w1_small =
      run_multinode(8, 1, small_n, g_of(small_n), mc::ScanKind::kInclusive, 2);
  const auto m2w4_big =
      run_multinode(2, 4, big_n, g_of(big_n), mc::ScanKind::kInclusive, 8);
  const auto m8w1_big =
      run_multinode(8, 1, big_n, g_of(big_n), mc::ScanKind::kInclusive, 8);

  const double gap_small = m8w1_small.seconds / m2w4_small.seconds;
  const double gap_big = m8w1_big.seconds / m2w4_big.seconds;
  EXPECT_GT(gap_small, 1.0);  // M=2,W=4 wins at small N
  EXPECT_LT(gap_big, gap_small);  // and the gap narrows at large N
}

TEST(MultiNode, RejectsMismatchedBatches) {
  auto cluster = mt::tsubame_kfc_cluster(2);
  mm::Communicator comm(cluster, ranks_for(cluster, 2, 4));
  std::vector<mc::GpuBatch<int>> batches(3);  // wrong count
  EXPECT_THROW(mc::scan_mps_multinode<int>(comm, batches, 1 << 16, 1,
                                           paper_plan(2),
                                           mc::ScanKind::kInclusive),
               mgs::util::Error);
}

TEST(MultiNode, DeterministicRuns) {
  const auto a = run_multinode(2, 4, 1 << 17, 2, mc::ScanKind::kInclusive, 2);
  const auto b = run_multinode(2, 4, 1 << 17, 2, mc::ScanKind::kInclusive, 2);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}
