// Property tests for the performance model: the monotonicity and
// dominance relations the reproduction's conclusions rest on. If any of
// these break, figure shapes can silently invert, so they are pinned
// here rather than discovered in a bench regression.

#include <gtest/gtest.h>

#include "mgs/sim/cost_model.hpp"
#include "mgs/sim/occupancy.hpp"
#include "mgs/topo/transfer.hpp"
#include "mgs/util/random.hpp"

namespace ms = mgs::sim;
namespace mt = mgs::topo;

namespace {

ms::KernelStats streaming_stats(std::uint64_t bytes, std::uint64_t blocks,
                                int regs = 64, std::int64_t smem = 64) {
  ms::KernelStats st;
  st.blocks = blocks;
  st.threads_per_block = 128;
  st.regs_per_thread = regs;
  st.smem_per_block = smem;
  st.bytes_read = bytes;
  st.mem_transactions = mgs::util::div_up(bytes, 32);
  return st;
}

}  // namespace

TEST(CostModelProperty, TimeMonotoneInBytes) {
  const auto spec = ms::k80_spec();
  double prev = 0.0;
  for (std::uint64_t bytes = 1 << 10; bytes <= (1ull << 30); bytes <<= 2) {
    const double t =
        ms::kernel_time(spec, streaming_stats(bytes, 4096)).seconds;
    EXPECT_GT(t, prev) << "bytes=" << bytes;
    prev = t;
  }
}

TEST(CostModelProperty, TimeMonotoneNonIncreasingInBlocks) {
  // More blocks (same total bytes) can only raise concurrency.
  const auto spec = ms::k80_spec();
  double prev = 1e30;
  for (std::uint64_t blocks = 1; blocks <= 4096; blocks *= 4) {
    const double t =
        ms::kernel_time(spec, streaming_stats(1 << 24, blocks)).seconds;
    EXPECT_LE(t, prev) << "blocks=" << blocks;
    prev = t;
  }
}

TEST(CostModelProperty, CoalescingNeverExceedsOne) {
  const auto spec = ms::k80_spec();
  auto st = streaming_stats(1 << 20, 1024);
  // Report fewer transactions than physically possible: the model must
  // clamp rather than reward.
  st.mem_transactions = 1;
  const auto t = ms::kernel_time(spec, st);
  EXPECT_LE(t.coalescing, 1.0);
}

TEST(CostModelProperty, WorseCoalescingNeverFaster) {
  const auto spec = ms::k80_spec();
  double prev = 0.0;
  for (std::uint64_t factor = 1; factor <= 8; factor *= 2) {
    auto st = streaming_stats(1 << 24, 4096);
    st.mem_transactions *= factor;
    const double t = ms::kernel_time(spec, st).seconds;
    EXPECT_GE(t, prev) << "factor=" << factor;
    prev = t;
  }
}

TEST(CostModelProperty, HigherRegistersNeverRaiseOccupancy) {
  const auto spec = ms::k80_spec();
  int prev_blocks = 1 << 20;
  for (int regs = 16; regs <= 255; regs += 16) {
    const auto occ = ms::occupancy(spec, 128, regs, 0);
    EXPECT_LE(occ.blocks_per_sm, prev_blocks) << "regs=" << regs;
    prev_blocks = occ.blocks_per_sm;
  }
}

TEST(CostModelProperty, MoreSharedMemoryNeverRaisesOccupancy) {
  const auto spec = ms::k80_spec();
  int prev_blocks = 1 << 20;
  for (std::int64_t smem = 1024; smem <= spec.shared_mem_per_block;
       smem *= 2) {
    const auto occ = ms::occupancy(spec, 128, 32, smem);
    EXPECT_LE(occ.blocks_per_sm, prev_blocks) << "smem=" << smem;
    prev_blocks = occ.blocks_per_sm;
  }
}

TEST(CostModelProperty, OccupancyDeterministicAcrossDevices) {
  // Identical inputs -> identical outputs for every preset (pure function).
  for (const auto& spec :
       {ms::k80_spec(), ms::maxwell_spec(), ms::pascal_spec()}) {
    const auto a = ms::occupancy(spec, 256, 48, 4096);
    const auto b = ms::occupancy(spec, 256, 48, 4096);
    EXPECT_EQ(a.blocks_per_sm, b.blocks_per_sm);
    EXPECT_DOUBLE_EQ(a.warp_occupancy, b.warp_occupancy);
  }
}

TEST(LinkProperty, TimeMonotoneInBytesOnEveryLink) {
  auto cluster = mt::tsubame_kfc_cluster(2);
  mt::TransferEngine xfer(cluster);
  for (const auto& [a, b] : {std::pair{0, 0}, std::pair{0, 1},
                             std::pair{0, 4}, std::pair{0, 8}}) {
    double prev = 0.0;
    for (std::uint64_t bytes = 1 << 10; bytes <= (1 << 28); bytes <<= 2) {
      const double t = xfer.link_time(a, b, bytes);
      EXPECT_GT(t, prev) << "link " << a << "->" << b << " bytes=" << bytes;
      prev = t;
    }
  }
}

TEST(LinkProperty, RowsMonotoneOn2dCopies) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mt::TransferEngine xfer(cluster);
  for (const auto& [a, b] : {std::pair{0, 1}, std::pair{0, 4}}) {
    double prev = 0.0;
    for (std::uint64_t rows = 1; rows <= (1 << 16); rows <<= 4) {
      const double t = xfer.link_time_2d(a, b, 1 << 20, rows);
      EXPECT_GE(t, prev) << "rows=" << rows;
      prev = t;
    }
  }
}

TEST(LinkProperty, StreamingTimeMatchesModelAtFullOccupancy) {
  const auto spec = ms::k80_spec();
  const std::uint64_t bytes = 1ull << 28;
  const double quick = ms::streaming_time(spec, bytes);
  const double full =
      ms::kernel_time(spec, streaming_stats(bytes, 1 << 16)).seconds;
  EXPECT_NEAR(quick, full, 0.02 * full);
}

TEST(LinkProperty, Premise4Ordering) {
  // The whole of Premise 4 in one assertion chain: for any byte count,
  // self < p2p < host-staged and p2p < inter-node.
  auto cluster = mt::tsubame_kfc_cluster(2);
  mt::TransferEngine xfer(cluster);
  mgs::util::SplitMix64 rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t bytes = 64 + rng.next_below(1 << 26);
    EXPECT_LT(xfer.link_time(0, 0, bytes), xfer.link_time(0, 1, bytes));
    EXPECT_LT(xfer.link_time(0, 1, bytes), xfer.link_time(0, 4, bytes));
    EXPECT_LT(xfer.link_time(0, 1, bytes), xfer.link_time(0, 8, bytes));
  }
}
