/// Cross-commit trend intelligence (obs/trend.hpp): change-point
/// detection on synthetic label-ordered series (flat, noisy, stepped,
/// drifting), dedup semantics of the chained store, the machine-readable
/// trend JSON, and the self-contained HTML dashboard.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "mgs/obs/diff.hpp"
#include "mgs/obs/report.hpp"
#include "mgs/obs/trend.hpp"

namespace {

using namespace mgs;

/// One synthetic entry of the default key at `seconds`, labeled like a
/// short git sha ("c0000", "c0001", ...).
obs::HistoryEntry entry(std::size_t i, double seconds,
                        const std::string& executor = "scan-mps") {
  obs::HistoryEntry e;
  e.key.executor = executor;
  e.key.n = 1 << 20;
  e.key.g = 4;
  e.key.devices = 4;
  char label[16];
  std::snprintf(label, sizeof label, "c%04zu", i);
  e.label = label;
  e.seconds = seconds;
  e.breakdown = {{"Stage1", 0.25 * seconds},
                 {"Stage2", 0.50 * seconds},
                 {"Stage3", 0.25 * seconds}};
  return e;
}

std::vector<obs::HistoryEntry> series(const std::vector<double>& seconds) {
  std::vector<obs::HistoryEntry> out;
  for (std::size_t i = 0; i < seconds.size(); ++i) {
    out.push_back(entry(i, seconds[i]));
  }
  return out;
}

/// Count non-overlapping occurrences of `needle` in `hay`.
std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (auto at = hay.find(needle); at != std::string::npos;
       at = hay.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Trend, FlatSeriesHasNoChangePoint) {
  const auto trends = obs::analyze_trends(
      series(std::vector<double>(12, 1e-3)));
  ASSERT_EQ(trends.size(), 1u);
  EXPECT_EQ(trends[0].points.size(), 12u);
  EXPECT_TRUE(trends[0].changes.empty());
  EXPECT_FALSE(obs::has_unacknowledged_regression(trends));
}

TEST(Trend, JitterBelowMinEffectDoesNotFlag) {
  // +-2% deterministic jitter around 1 ms: far under the 10% min effect.
  std::vector<double> s;
  for (int i = 0; i < 16; ++i) {
    s.push_back(1e-3 * (1.0 + 0.02 * ((i % 3) - 1)));
  }
  const auto trends = obs::analyze_trends(series(s));
  ASSERT_EQ(trends.size(), 1u);
  EXPECT_TRUE(trends[0].changes.empty());
}

TEST(Trend, SlowDriftStaysUnderTheWindowedThreshold) {
  // +1%/commit compounding drift: no single window-to-window step clears
  // the 10% min effect, so no point is blamed. (A drift is real, but it
  // has no first offending commit -- the summary-table trend column is
  // where it shows up.)
  std::vector<double> s;
  double v = 1e-3;
  for (int i = 0; i < 20; ++i, v *= 1.01) s.push_back(v);
  const auto trends = obs::analyze_trends(series(s));
  ASSERT_EQ(trends.size(), 1u);
  EXPECT_TRUE(trends[0].changes.empty());
}

TEST(Trend, SeededStepBlamesExactlyTheFirstOffendingLabel) {
  // Ten commits at 1 ms, then a 1.3x step that persists: exactly one
  // change-point, at index 10, blaming label c0010.
  std::vector<double> s(10, 1e-3);
  s.insert(s.end(), 8, 1.3e-3);
  const auto trends = obs::analyze_trends(series(s));
  ASSERT_EQ(trends.size(), 1u);
  ASSERT_EQ(trends[0].changes.size(), 1u);
  const auto& cp = trends[0].changes[0];
  EXPECT_EQ(cp.index, 10u);
  EXPECT_EQ(cp.label, "c0010");
  EXPECT_EQ(cp.prev_label, "c0009");
  EXPECT_TRUE(cp.regression);
  EXPECT_NEAR(cp.step_pct(), 30.0, 1.0);
  EXPECT_FALSE(cp.acknowledged);
  EXPECT_TRUE(obs::has_unacknowledged_regression(trends));
}

TEST(Trend, StepDownIsAnImprovementAndNeverGates) {
  std::vector<double> s(8, 1e-3);
  s.insert(s.end(), 8, 0.7e-3);
  const auto trends = obs::analyze_trends(series(s));
  ASSERT_EQ(trends.size(), 1u);
  ASSERT_EQ(trends[0].changes.size(), 1u);
  EXPECT_FALSE(trends[0].changes[0].regression);
  EXPECT_FALSE(obs::has_unacknowledged_regression(trends));
}

TEST(Trend, MinEffectThresholdIsRespected) {
  // A 5% step: invisible at the default 10% min effect, flagged at 3%.
  std::vector<double> s(10, 1e-3);
  s.insert(s.end(), 10, 1.05e-3);
  EXPECT_TRUE(obs::analyze_trends(series(s))[0].changes.empty());
  obs::TrendOptions sensitive;
  sensitive.min_effect = 0.03;
  const auto trends = obs::analyze_trends(series(s), sensitive);
  ASSERT_EQ(trends[0].changes.size(), 1u);
  EXPECT_EQ(trends[0].changes[0].label, "c0010");
}

TEST(Trend, AcknowledgedLabelClearsTheGateButStaysReported) {
  std::vector<double> s(8, 1e-3);
  s.insert(s.end(), 8, 1.5e-3);
  auto trends = obs::analyze_trends(series(s));
  ASSERT_TRUE(obs::has_unacknowledged_regression(trends));
  obs::acknowledge(trends, {"c0008"});
  EXPECT_TRUE(trends[0].changes[0].acknowledged);
  EXPECT_FALSE(obs::has_unacknowledged_regression(trends));
}

TEST(Trend, DedupKeepsLatestEntryAtFirstSeenPosition) {
  auto entries = series({1e-3, 2e-3, 3e-3});
  // Re-run of commit c0001 supersedes its first append...
  auto rerun = entry(1, 9e-3);
  entries.push_back(rerun);
  const auto deduped = obs::dedup_entries(entries);
  ASSERT_EQ(deduped.size(), 3u);
  EXPECT_EQ(deduped[1].label, "c0001");
  EXPECT_DOUBLE_EQ(deduped[1].seconds, 9e-3);
  // ...while the label order stays first-seen.
  EXPECT_EQ(deduped[0].label, "c0000");
  EXPECT_EQ(deduped[2].label, "c0002");
}

TEST(Trend, StepDiffTelescopesExactly) {
  // The dashboard's embedded diff tables reuse obs::diff_reports over
  // reconstituted reports: Sigma row deltas == makespan delta, exactly.
  const auto base = obs::report_from_entry(entry(0, 1e-3));
  const auto cur = obs::report_from_entry(entry(1, 1.4e-3));
  const auto d = obs::diff_reports(base, cur);
  double row_sum = 0.0;
  for (const auto& r : d.rows) row_sum += r.delta();
  // Exact to the analyzer's fp acceptance bound (1e-9 x makespan).
  EXPECT_NEAR(row_sum, d.delta(), 1e-9 * cur.critical_path.total_seconds);
  EXPECT_DOUBLE_EQ(d.delta(), cur.critical_path.total_seconds -
                                  base.critical_path.total_seconds);
}

TEST(Trend, JsonReportRoundTrips) {
  std::vector<double> s(8, 1e-3);
  s.insert(s.end(), 8, 1.3e-3);
  auto entries = series(s);
  // A second, flat key exercises per-key grouping.
  for (std::size_t i = 0; i < 8; ++i) {
    entries.push_back(entry(i, 2e-3, "scan-sp"));
  }
  const obs::TrendOptions opt;
  const auto trends = obs::analyze_trends(entries, opt);
  std::ostringstream os;
  obs::write_trend_json(os, trends, opt);
  const auto doc = obs::parse_json(os.str());
  ASSERT_EQ(doc.find("schema")->str, "mgs-perf-trend-v1");
  EXPECT_EQ(doc.find("options")->find("window")->number, opt.window);
  const auto* keys = doc.find("keys");
  ASSERT_NE(keys, nullptr);
  ASSERT_EQ(keys->array.size(), trends.size());
  EXPECT_EQ(doc.find("unacknowledged_regressions")->number, 1.0);
  // The flagged key's change-point survives the round trip verbatim.
  bool found = false;
  for (const auto& k : keys->array) {
    if (k.find("key")->find("executor")->str != "scan-mps") continue;
    found = true;
    ASSERT_EQ(k.find("labels")->array.size(), 16u);
    ASSERT_EQ(k.find("seconds")->array.size(), 16u);
    const auto& cps = k.find("change_points")->array;
    ASSERT_EQ(cps.size(), 1u);
    EXPECT_EQ(cps[0].find("label")->str, "c0008");
    EXPECT_EQ(cps[0].find("index")->number, 8.0);
    EXPECT_TRUE(cps[0].find("regression")->boolean);
    EXPECT_NEAR(cps[0].find("step_pct")->number, 30.0, 1.0);
  }
  EXPECT_TRUE(found);
}

TEST(Trend, DashboardHasOneSparklinePerKeyAndAMarkerPerChangePoint) {
  std::vector<double> s(8, 1e-3);
  s.insert(s.end(), 8, 1.3e-3);
  auto entries = series(s);
  for (std::size_t i = 0; i < 8; ++i) {
    entries.push_back(entry(i, 2e-3, "scan-sp"));
  }
  const obs::TrendOptions opt;
  const auto trends = obs::analyze_trends(entries, opt);
  std::ostringstream os;
  obs::write_dashboard(os, trends, opt);
  const std::string html = os.str();
  EXPECT_EQ(count_occurrences(html, "class=\"spark\""), trends.size());
  std::size_t cps = 0;
  for (const auto& t : trends) cps += t.changes.size();
  EXPECT_EQ(count_occurrences(html, "class=\"cp-marker"), cps);
  // The offending commit is named, the verdict fails, and the embedded
  // diff table states the telescoping invariant.
  EXPECT_NE(html.find("c0008"), std::string::npos);
  EXPECT_NE(html.find("verdict fail"), std::string::npos);
  EXPECT_NE(html.find("exact telescoping"), std::string::npos);
  // Self-contained: no external scripts or stylesheets.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos);
}

TEST(Trend, DashboardVerdictIsCleanOnFlatHistory) {
  const auto trends =
      obs::analyze_trends(series(std::vector<double>(6, 1e-3)));
  std::ostringstream os;
  obs::write_dashboard(os, trends, {});
  const std::string html = os.str();
  EXPECT_NE(html.find("verdict ok"), std::string::npos);
  EXPECT_EQ(count_occurrences(html, "class=\"cp-marker"), 0u);
}

}  // namespace
