// Tests for the longitudinal observability layer (mgs::obs history +
// diff): the differential attribution's exact-telescoping invariant on
// real traced runs (healthy vs an injected straggler must attribute the
// delta to the right stage/device rows), the NDJSON history store's
// append/reload round trip, the histogram percentile math against a
// sorted reference, and the structural-change flagging that separates
// "the schedule changed" from "the same schedule got slower".

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <vector>

#include "mgs/core/executor.hpp"
#include "mgs/core/executor_registry.hpp"
#include "mgs/core/run_report.hpp"
#include "mgs/obs/diff.hpp"
#include "mgs/obs/history.hpp"
#include "mgs/obs/span.hpp"
#include "mgs/sim/fault.hpp"
#include "mgs/topo/topology.hpp"
#include "mgs/util/random.hpp"

namespace {

using namespace mgs;

/// One traced Scan-MPS run (W=4, synchronous stages so both sides keep
/// the same stage structure) as a loaded-report equivalent: header from
/// the RunResult, critical path from the recorded spans -- exactly what
/// obs::load_run_report would hand back for this run's report file.
obs::RunReport traced_run(const std::string& faults) {
  const std::int64_t n = 1 << 16;
  const std::int64_t g = 2;
  auto cluster = topo::tsubame_kfc_cluster(1);
  std::unique_ptr<sim::FaultInjector> fi;
  if (!faults.empty()) {
    fi = std::make_unique<sim::FaultInjector>(sim::parse_fault_plan(faults));
    cluster.set_fault_injector(fi.get());
  }
  obs::TraceSession ts;
  core::ScanContext ctx(cluster);
  core::ExecutorParams p;
  p.w = 4;
  p.pipeline = core::PipelineMode::kSync;
  auto ex = core::make_executor("Scan-MPS", ctx, p);
  ex->prepare(n, g);
  const auto data = util::random_i32(static_cast<std::size_t>(n * g), 3);
  std::vector<std::int32_t> out(data.size());
  const auto r = ex->run(std::span<const std::int32_t>(data),
                         std::span<std::int32_t>(out),
                         core::ScanKind::kInclusive);

  obs::RunReport rep;
  rep.run = core::make_run_info("Scan-MPS", n, 4, r);
  rep.spans = ts.spans();
  rep.metrics = ts.metrics().snapshot();
  rep.critical_path = obs::analyze_last_run(rep.spans);
  return rep;
}

double sum_row_deltas(const obs::ReportDiff& d) {
  double s = 0.0;
  for (const auto& row : d.rows) s += row.delta();
  return s;
}

TEST(PerfDiff, SelfDiffIsZeroEverywhere) {
  const auto rep = traced_run("");
  const auto d = obs::diff_reports(rep, rep);
  EXPECT_EQ(d.delta(), 0.0);
  EXPECT_EQ(sum_row_deltas(d), 0.0);
  EXPECT_FALSE(d.structural_change());
  for (const auto& row : d.rows) EXPECT_EQ(row.delta(), 0.0);
}

TEST(PerfDiff, StragglerDeltaTelescopesAndLandsOnTheRightDevice) {
  const auto base = traced_run("");
  const auto cur = traced_run("straggler:dev=1,factor=4");

  const auto d = obs::diff_reports(base, cur);
  ASSERT_GT(d.delta(), 0.0);  // a 4x straggler must cost simulated time
  EXPECT_GT(d.delta_pct(), 5.0);  // and more than the CI gate tolerance

  // Exact decomposition: the attribution rows telescope to the full
  // makespan delta (the acceptance bound: 1e-9 of the makespan).
  const double tol = 1e-9 * std::max(d.base_total, d.cur_total);
  EXPECT_NEAR(sum_row_deltas(d), d.delta(), tol);

  // The per-category deltas telescope too, by the analyzer invariant.
  double cat_sum = 0.0;
  for (double s : d.by_category.seconds) cat_sum += s;
  EXPECT_NEAR(cat_sum, d.delta(), tol);

  // Attribution: a straggler slows both device 1's kernels and every
  // transfer touching device 1, so the injected slowdown must land on
  // stage rows critical on device 1 plus link rows with an endpoint on
  // device 1 -- and together they carry at least the full delta (the
  // healthy share of those rows is positive, so their deltas can only
  // exceed the injection, never undershoot it).
  const auto ranked = obs::ranked_rows(d);
  ASSERT_FALSE(ranked.empty());
  EXPECT_GT(ranked.front()->delta(), 0.0);
  bool dev1_in_top3 = false;
  for (std::size_t i = 0; i < std::min<std::size_t>(3, ranked.size()); ++i) {
    if (ranked[i]->device == 1) dev1_in_top3 = true;
  }
  EXPECT_TRUE(dev1_in_top3);
  double on_dev1 = 0.0;
  for (const auto& row : d.rows) {
    if (row.device == 1) on_dev1 += row.delta();
  }
  for (const auto& link : d.links) {
    if (link.src == 1 || link.dst == 1) on_dev1 += link.delta();
  }
  EXPECT_GE(on_dev1, d.delta() * 0.99);

  // Same stage structure on both sides: time drift, not plan drift.
  EXPECT_FALSE(d.structural_change());

  // The rendered table leads with the regression.
  const auto text = obs::format_diff(d, 3);
  EXPECT_NE(text.find("makespan"), std::string::npos);
  EXPECT_NE(text.find("+"), std::string::npos);
}

TEST(PerfDiff, ResumedStagesFlagStructuralChange) {
  const auto base = traced_run("");
  // A device dropping mid-run forces stage-granular recovery: the run
  // completes but records resumed stages -- a schedule change the diff
  // must flag as structural, not bury in time drift.
  const auto cur = traced_run("device-down:dev=1,at=1e-09");
  ASSERT_FALSE(cur.run.fault_counters.empty());

  const auto d = obs::diff_reports(base, cur);
  EXPECT_TRUE(d.structural_change());
  bool mentions_faults = false;
  for (const auto& s : d.structural) {
    if (s.find("resumed") != std::string::npos ||
        s.find("fault") != std::string::npos ||
        s.find("stage") != std::string::npos) {
      mentions_faults = true;
    }
  }
  EXPECT_TRUE(mentions_faults);

  // Structural or not, the telescoping invariant still holds.
  const double tol = 1e-9 * std::max(d.base_total, d.cur_total);
  EXPECT_NEAR(sum_row_deltas(d), d.delta(), tol);
}

TEST(PerfDiff, DiffJsonIsWellFormedAndRanked) {
  const auto base = traced_run("");
  const auto cur = traced_run("straggler:dev=1,factor=4");
  const auto d = obs::diff_reports(base, cur);
  std::ostringstream os;
  obs::write_diff_json(os, d);
  const auto doc = obs::parse_json(os.str());
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->str, "mgs-perf-diff-v1");
  ASSERT_NE(doc.find("rows"), nullptr);
  EXPECT_FALSE(doc.find("rows")->array.empty());
}

TEST(PerfHistory, AppendReloadRoundTrips) {
  const std::string path = "perf_diff_history_test.ndjson";
  std::filesystem::remove(path);
  obs::RunHistory hist(path);

  obs::HistoryEntry a;
  a.key.executor = "Scan-MPS";
  a.key.dtype = "f64";
  a.key.op = "max";
  a.key.pipeline = "overlap";
  a.key.n = 1 << 20;
  a.key.g = 4;
  a.key.devices = 4;
  a.label = "abc1234";
  a.seconds = 3.5e-4;
  a.payload_bytes = 1234567;
  a.breakdown = {{"Stage1", 1.5e-4}, {"Stage2", 0.5e-4}, {"Stage3", 1.5e-4}};
  a.by_category[obs::Category::kCompute] = 3.0e-4;
  a.by_category[obs::Category::kP2P] = 0.5e-4;

  obs::HistoryEntry b = a;
  b.label = "def5678";
  b.seconds = 4.2e-4;

  obs::HistoryEntry c;  // a different key in the same store
  c.key.executor = "Scan-SP";
  c.key.n = 4096;
  c.key.g = 1;
  c.key.devices = 1;
  c.label = "abc1234";
  c.seconds = 9.0e-5;

  hist.append(a);
  hist.append(b);
  hist.append(c);

  const auto loaded = hist.load();
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[0].key, a.key);
  EXPECT_EQ(loaded[0].label, a.label);
  EXPECT_DOUBLE_EQ(loaded[0].seconds, a.seconds);
  EXPECT_EQ(loaded[0].payload_bytes, a.payload_bytes);
  EXPECT_EQ(loaded[0].breakdown, a.breakdown);
  EXPECT_EQ(loaded[0].by_category.seconds, a.by_category.seconds);
  EXPECT_EQ(loaded[1].key, b.key);
  EXPECT_DOUBLE_EQ(loaded[1].seconds, b.seconds);
  EXPECT_EQ(loaded[2].key, c.key);

  // Append order per key survives: summaries see first=a, latest=b.
  const auto sums = obs::RunHistory::summarize(loaded);
  ASSERT_EQ(sums.size(), 2u);
  for (const auto& s : sums) {
    if (s.key == a.key) {
      EXPECT_EQ(s.runs, 2);
      EXPECT_DOUBLE_EQ(s.first, a.seconds);
      EXPECT_DOUBLE_EQ(s.latest, b.seconds);
      EXPECT_EQ(s.first_label, "abc1234");
      EXPECT_EQ(s.latest_label, "def5678");
      EXPECT_DOUBLE_EQ(s.max, b.seconds);
      EXPECT_GT(s.trend_pct(), 0.0);
    } else {
      EXPECT_EQ(s.key, c.key);
      EXPECT_EQ(s.runs, 1);
    }
  }
  std::filesystem::remove(path);
}

TEST(PerfHistory, PercentilesMatchSortedReferenceWithinABucket) {
  const auto& bounds = obs::RunHistory::makespan_bounds();
  ASSERT_GT(bounds.size(), 100u);

  // Deterministic spread of makespans over three decades.
  std::vector<double> values;
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 500; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;  // xorshift64
    const double u = static_cast<double>(x % 1000000ull) / 1e6;
    values.push_back(1e-5 * std::pow(10.0, 3.0 * u));  // 1e-5 .. 1e-2
  }

  // Histogram with the store's bounds (+inf overflow bucket at the end).
  std::vector<std::uint64_t> buckets(bounds.size() + 1, 0);
  for (double v : values) {
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
    buckets[static_cast<std::size_t>(it - bounds.begin())]++;
  }

  auto sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.5, 0.95}) {
    const double est = obs::percentile_from_histogram(bounds, buckets, q);
    const double ref =
        sorted[static_cast<std::size_t>(q * (sorted.size() - 1))];
    // Accurate to one bucket width: bounds step by 7%.
    EXPECT_NEAR(est, ref, 0.08 * ref) << "q=" << q;
  }
}

TEST(PerfTrace, CounterTracksAppearInTheChromeExport) {
  const auto rep = traced_run("");
  std::ostringstream os;
  obs::write_chrome_trace(os, rep.spans, rep.metrics);
  const auto text = os.str();
  // Perfetto counter events for the reconstructed transfer-bytes series.
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("transfer_bytes"), std::string::npos);
}

}  // namespace
