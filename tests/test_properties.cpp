// Property-based tests: randomized shapes and inputs, checking invariants
// that must hold for every scan implementation in the repository --
// proposal/baseline agreement, linearity, prefix monotonicity, and
// inclusive/exclusive duality.

#include <gtest/gtest.h>

#include "mgs/baselines/reference.hpp"
#include "mgs/baselines/registry.hpp"
#include "mgs/core/scan_mps.hpp"
#include "mgs/core/scan_sp.hpp"
#include "mgs/core/tuning.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace mb = mgs::baselines;
namespace st = mgs::simt;

namespace {

mc::ScanPlan plan_with_k(int k) {
  auto plan = mc::derive_spl(mgs::sim::k80_spec(), 4).plan;
  plan.s13.k = k;
  return plan;
}

std::vector<int> run_sp(const std::vector<int>& data, std::int64_t n,
                        std::int64_t g, mc::ScanKind kind, int k) {
  st::Device dev(0, mgs::sim::k80_spec());
  auto in = dev.alloc<int>(n * g);
  auto out = dev.alloc<int>(n * g);
  std::copy(data.begin(), data.end(), in.host_span().begin());
  mc::scan_sp<int>(dev, in, out, n, g, plan_with_k(k), kind);
  return {out.host_span().begin(), out.host_span().end()};
}

}  // namespace

// Invariant 1: for random (n, g, k, kind), Scan-SP == serial reference.
TEST(Property, RandomShapesMatchReference) {
  mgs::util::SplitMix64 rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.next_below(40000));
    const std::int64_t g = 1 + static_cast<std::int64_t>(rng.next_below(6));
    const int k = 1 << rng.next_below(4);
    const auto kind = (rng.next() & 1) ? mc::ScanKind::kInclusive
                                       : mc::ScanKind::kExclusive;
    const auto data = mgs::util::random_i32(
        static_cast<std::size_t>(n * g), rng.next());
    const auto got = run_sp(data, n, g, kind, k);
    const auto want = mb::reference_batch_scan<int>(data, n, g, kind);
    ASSERT_EQ(got, want) << "trial=" << trial << " n=" << n << " g=" << g
                         << " k=" << k;
  }
}

// Invariant 2: inclusive/exclusive duality --
// inclusive[i] == op(exclusive[i], in[i]).
TEST(Property, InclusiveExclusiveDuality) {
  mgs::util::SplitMix64 rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t n = 500 + static_cast<std::int64_t>(rng.next_below(20000));
    const auto data =
        mgs::util::random_i32(static_cast<std::size_t>(n), rng.next());
    const auto inc = run_sp(data, n, 1, mc::ScanKind::kInclusive, 2);
    const auto exc = run_sp(data, n, 1, mc::ScanKind::kExclusive, 2);
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(inc[static_cast<std::size_t>(i)],
                exc[static_cast<std::size_t>(i)] +
                    data[static_cast<std::size_t>(i)]);
    }
  }
}

// Invariant 3: linearity of the plus-scan -- scan(a+b) == scan(a)+scan(b).
TEST(Property, PlusScanIsLinear) {
  const std::int64_t n = 30000;
  const auto a = mgs::util::random_i32(static_cast<std::size_t>(n), 1, -20, 20);
  const auto b = mgs::util::random_i32(static_cast<std::size_t>(n), 2, -20, 20);
  std::vector<int> sum(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) sum[i] = a[i] + b[i];
  const auto sa = run_sp(a, n, 1, mc::ScanKind::kInclusive, 2);
  const auto sb = run_sp(b, n, 1, mc::ScanKind::kInclusive, 2);
  const auto ss = run_sp(sum, n, 1, mc::ScanKind::kInclusive, 2);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(ss[i], sa[i] + sb[i]);
  }
}

// Invariant 4: max-scan output is monotone non-decreasing and ends at the
// global max.
TEST(Property, MaxScanMonotone) {
  st::Device dev(0, mgs::sim::k80_spec());
  const std::int64_t n = 25000;
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n), 5,
                                          -100000, 100000);
  auto in = dev.alloc<int>(n);
  auto out = dev.alloc<int>(n);
  std::copy(data.begin(), data.end(), in.host_span().begin());
  mc::scan_sp<int, mc::Max<int>>(dev, in, out, n, 1, plan_with_k(2),
                                 mc::ScanKind::kInclusive);
  int prev = out.host_span()[0];
  for (std::int64_t i = 1; i < n; ++i) {
    const int cur = out.host_span()[static_cast<std::size_t>(i)];
    ASSERT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_EQ(prev, *std::max_element(data.begin(), data.end()));
}

// Invariant 5: all scan implementations in the repo agree bit-for-bit
// (proposals and baselines compute the same function).
TEST(Property, AllImplementationsAgree) {
  const std::int64_t n = 1 << 14;
  const std::int64_t g = 3;
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n * g), 9);
  const auto want = mb::reference_batch_scan<int>(data, n, g,
                                                  mc::ScanKind::kInclusive);

  // Scan-SP.
  EXPECT_EQ(run_sp(data, n, g, mc::ScanKind::kInclusive, 2), want);

  // Scan-MPS over 4 GPUs.
  auto cluster = mgs::topo::tsubame_kfc_cluster(1);
  std::vector<int> gpus = {0, 1, 2, 3};
  auto batches = mc::distribute_batch<int>(cluster, gpus, data, n, g);
  mc::scan_mps<int>(cluster, gpus, batches, n, g, plan_with_k(2),
                    mc::ScanKind::kInclusive);
  EXPECT_EQ(mc::collect_batch(batches, n, g), want);

  // Every baseline library model.
  for (const auto& b : mb::all_baselines()) {
    st::Device dev(0, mgs::sim::k80_spec());
    auto in = dev.alloc<std::int32_t>(n * g);
    auto out = dev.alloc<std::int32_t>(n * g);
    std::copy(data.begin(), data.end(), in.host_span().begin());
    b.run_batch(dev, in, out, n, g, mc::ScanKind::kInclusive);
    const std::vector<int> got(out.host_span().begin(),
                               out.host_span().end());
    EXPECT_EQ(got, want) << b.traits.name;
  }
}

// Invariant 6: scanning a batch of G problems equals scanning each
// problem alone (no leakage across the batch dimension).
TEST(Property, BatchIndependence) {
  const std::int64_t n = 4097;
  const std::int64_t g = 5;
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n * g), 13);
  const auto batch = run_sp(data, n, g, mc::ScanKind::kInclusive, 2);
  for (std::int64_t p = 0; p < g; ++p) {
    const std::vector<int> one(
        data.begin() + static_cast<std::ptrdiff_t>(p * n),
        data.begin() + static_cast<std::ptrdiff_t>((p + 1) * n));
    const auto solo = run_sp(one, n, 1, mc::ScanKind::kInclusive, 2);
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(batch[static_cast<std::size_t>(p * n + i)],
                solo[static_cast<std::size_t>(i)])
          << "p=" << p << " i=" << i;
    }
  }
}

// Invariant 7: every multi-GPU proposal computes exactly what Scan-SP
// computes, for random shapes, W, and scan kinds (differential testing
// across the proposal family).
TEST(Property, ProposalsAgreeOnRandomShapes) {
  mgs::util::SplitMix64 rng(71);
  for (int trial = 0; trial < 8; ++trial) {
    const int w = 1 << rng.next_below(3);            // 1, 2 or 4 GPUs
    const std::int64_t n =
        w * (512 + static_cast<std::int64_t>(rng.next_below(8000)));
    const std::int64_t g = 1 + static_cast<std::int64_t>(rng.next_below(4));
    const auto kind = (rng.next() & 1) ? mc::ScanKind::kInclusive
                                       : mc::ScanKind::kExclusive;
    const auto data =
        mgs::util::random_i32(static_cast<std::size_t>(n * g), rng.next());
    const auto want = run_sp(data, n, g, kind, 2);

    auto cluster = mgs::topo::tsubame_kfc_cluster(1);
    std::vector<int> gpus;
    for (int d = 0; d < w; ++d) gpus.push_back(d);
    auto batches = mc::distribute_batch<int>(cluster, gpus, data, n, g);
    mc::scan_mps<int>(cluster, gpus, batches, n, g, plan_with_k(2), kind);
    ASSERT_EQ(mc::collect_batch(batches, n, g), want)
        << "trial=" << trial << " w=" << w << " n=" << n << " g=" << g;

    auto c2 = mgs::topo::tsubame_kfc_cluster(1);
    auto b2 = mc::distribute_batch<int>(c2, gpus, data, n, g);
    mc::scan_mps_direct<int>(c2, gpus, b2, n, g, plan_with_k(2), kind);
    ASSERT_EQ(mc::collect_batch(b2, n, g), want) << "direct trial=" << trial;
  }
}

// Invariant 8: modeled time is invariant to the input *values* (the scan
// is data-oblivious), so perf results cannot depend on the seed.
TEST(Property, ModeledTimeDataOblivious) {
  const std::int64_t n = 1 << 15;
  st::Device dev1(0, mgs::sim::k80_spec());
  auto in1 = dev1.alloc<int>(n);
  auto out1 = dev1.alloc<int>(n);
  const auto d1 = mgs::util::random_i32(static_cast<std::size_t>(n), 1);
  std::copy(d1.begin(), d1.end(), in1.host_span().begin());
  const auto r1 = mc::scan_sp<int>(dev1, in1, out1, n, 1, plan_with_k(2),
                                   mc::ScanKind::kInclusive);

  st::Device dev2(0, mgs::sim::k80_spec());
  auto in2 = dev2.alloc<int>(n);
  auto out2 = dev2.alloc<int>(n);
  const auto d2 = mgs::util::random_i32(static_cast<std::size_t>(n), 999);
  std::copy(d2.begin(), d2.end(), in2.host_span().begin());
  const auto r2 = mc::scan_sp<int>(dev2, in2, out2, n, 1, plan_with_k(2),
                                   mc::ScanKind::kInclusive);

  EXPECT_DOUBLE_EQ(r1.seconds, r2.seconds);
}
