// Integration tests for Scan-MPS (multi-GPU problem scattering):
// correctness against the reference for several W, batch shapes and scan
// kinds, plus the performance relations the paper reports (P2P groups
// scale; W=8 pays the host-staging penalty).

#include <gtest/gtest.h>

#include "mgs/baselines/reference.hpp"
#include "mgs/core/scan_mps.hpp"
#include "mgs/core/tuning.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace mt = mgs::topo;
using mgs::baselines::reference_batch_scan;

namespace {

mc::ScanPlan paper_plan(int k) {
  auto plan = mc::derive_spl(mgs::sim::k80_spec(), 4).plan;
  plan.s13.k = k;
  return plan;
}

std::vector<int> first_gpus(int w) {
  std::vector<int> ids;
  for (int d = 0; d < w; ++d) ids.push_back(d);
  return ids;
}

mc::RunResult run_mps(mt::Cluster& cluster, int w, std::int64_t n,
                      std::int64_t g, mc::ScanKind kind, int k,
                      std::vector<int>* out_data_check_seed = nullptr,
                      std::vector<int>* got = nullptr) {
  const auto plan = paper_plan(k);
  const auto gpus = first_gpus(w);
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n * g),
                                          static_cast<std::uint64_t>(n + w));
  auto batches = mc::distribute_batch<int>(cluster, gpus, data, n, g);
  const auto r = mc::scan_mps<int>(cluster, gpus, batches, n, g, plan, kind);
  if (got != nullptr) *got = mc::collect_batch(batches, n, g);
  if (out_data_check_seed != nullptr) {
    *out_data_check_seed = data;
  }
  return r;
}

}  // namespace

struct MpsCase {
  int w;
  std::int64_t n;
  std::int64_t g;
  mc::ScanKind kind;
  int k;
};

class MpsSweep : public ::testing::TestWithParam<MpsCase> {};

TEST_P(MpsSweep, MatchesReference) {
  const auto c = GetParam();
  auto cluster = mt::tsubame_kfc_cluster(1);
  std::vector<int> data, got;
  run_mps(cluster, c.w, c.n, c.g, c.kind, c.k, &data, &got);
  const auto want = reference_batch_scan<int>(data, c.n, c.g, c.kind);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "w=" << c.w << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MpsSweep,
    ::testing::Values(MpsCase{2, 1 << 14, 1, mc::ScanKind::kInclusive, 1},
                      MpsCase{2, 1 << 14, 1, mc::ScanKind::kExclusive, 1},
                      MpsCase{4, 1 << 16, 2, mc::ScanKind::kInclusive, 2},
                      MpsCase{4, 1 << 16, 2, mc::ScanKind::kExclusive, 2},
                      MpsCase{8, 1 << 17, 4, mc::ScanKind::kInclusive, 2},
                      MpsCase{8, 1 << 15, 8, mc::ScanKind::kExclusive, 1},
                      MpsCase{1, 1 << 14, 2, mc::ScanKind::kInclusive, 2},
                      // Portion sizes with partial chunks.
                      MpsCase{4, 4 * 12345, 2, mc::ScanKind::kInclusive, 2},
                      MpsCase{2, 2 * 1000, 3, mc::ScanKind::kExclusive, 1}));

TEST(Mps, BreakdownHasAllPhases) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  const auto r = run_mps(cluster, 4, 1 << 16, 2, mc::ScanKind::kInclusive, 2);
  EXPECT_GT(r.breakdown.get("Stage1"), 0.0);
  EXPECT_GT(r.breakdown.get("AuxGather"), 0.0);
  EXPECT_GT(r.breakdown.get("Stage2"), 0.0);
  EXPECT_GT(r.breakdown.get("AuxScatter"), 0.0);
  EXPECT_GT(r.breakdown.get("Stage3"), 0.0);
  EXPECT_NEAR(r.breakdown.total(), r.seconds, 1e-12);
}

TEST(Mps, RequiresDivisibleN) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  const auto plan = paper_plan(1);
  const auto gpus = first_gpus(4);
  std::vector<int> data(1001);
  EXPECT_THROW(mc::distribute_batch<int>(cluster, gpus, data, 1001, 1),
               mgs::util::Error);
  auto batches = std::vector<mc::GpuBatch<int>>(4);
  EXPECT_THROW(
      mc::scan_mps<int>(cluster, gpus, batches, 1001, 1, plan,
                        mc::ScanKind::kInclusive),
      mgs::util::Error);
}

TEST(MpsDirect, MatchesReferenceOnP2PNetwork) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  const auto plan = paper_plan(2);
  const std::vector<int> gpus = {0, 1, 2, 3};
  const std::int64_t n = 1 << 16;
  const std::int64_t g = 4;
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n * g), 31);
  auto batches = mc::distribute_batch<int>(cluster, gpus, data, n, g);
  const auto r = mc::scan_mps_direct<int>(cluster, gpus, batches, n, g, plan,
                                          mc::ScanKind::kInclusive);
  EXPECT_GT(r.breakdown.get("Stage1+P2PWrites"), 0.0);
  EXPECT_EQ(r.breakdown.get("AuxGather"), 0.0);  // no separate gather step
  const auto got = mc::collect_batch(batches, n, g);
  EXPECT_EQ(got, reference_batch_scan<int>(data, n, g,
                                           mc::ScanKind::kInclusive));
}

TEST(MpsDirect, RejectsCrossNetworkGroups) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  const auto plan = paper_plan(1);
  std::vector<int> gpus = {0, 1, 4, 5};  // spans both PCIe networks
  std::vector<mc::GpuBatch<int>> batches(4);
  EXPECT_THROW(mc::scan_mps_direct<int>(cluster, gpus, batches, 1 << 14, 1,
                                        plan, mc::ScanKind::kInclusive),
               mgs::util::Error);
}

TEST(MpsDirect, OverlapBeatsExplicitGatherAtLargeG) {
  // The point of the variant: with many small per-problem aux rows, the
  // pipelined peer writes avoid the serialized gather at the master.
  const std::int64_t n = 1 << 16;
  const std::int64_t g = 256;
  const auto plan = paper_plan(2);
  const std::vector<int> gpus = {0, 1, 2, 3};
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n * g), 32);

  auto c1 = mt::tsubame_kfc_cluster(1);
  auto b1 = mc::distribute_batch<int>(c1, gpus, data, n, g);
  const auto regular = mc::scan_mps<int>(c1, gpus, b1, n, g, plan,
                                         mc::ScanKind::kInclusive);
  auto c2 = mt::tsubame_kfc_cluster(1);
  auto b2 = mc::distribute_batch<int>(c2, gpus, data, n, g);
  const auto direct = mc::scan_mps_direct<int>(c2, gpus, b2, n, g, plan,
                                               mc::ScanKind::kInclusive);
  EXPECT_LT(direct.seconds, regular.seconds);
  EXPECT_EQ(mc::collect_batch(b2, n, g), mc::collect_batch(b1, n, g));
}

TEST(Mps, GenericOperatorAcrossGpus) {
  // The carry chain through the auxiliary array must respect a non-plus
  // operator across GPU boundaries.
  auto cluster = mt::tsubame_kfc_cluster(1);
  const auto plan = paper_plan(2);
  const std::vector<int> gpus = {0, 1, 2, 3};
  const std::int64_t n = 1 << 16;
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(n), 21, -100000, 100000);
  auto batches = mc::distribute_batch<int>(cluster, gpus, data, n, 1);
  mc::scan_mps<int, mc::Max<int>>(cluster, gpus, batches, n, 1, plan,
                                  mc::ScanKind::kInclusive);
  const auto got = mc::collect_batch(batches, n, 1);
  int acc = mc::Max<int>::identity();
  for (std::int64_t i = 0; i < n; ++i) {
    acc = std::max(acc, data[static_cast<std::size_t>(i)]);
    ASSERT_EQ(got[static_cast<std::size_t>(i)], acc) << i;
  }
}

TEST(Mps, Int64AcrossGpus) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  const auto plan = paper_plan(1);
  const std::vector<int> gpus = {0, 1};
  const std::int64_t n = 1 << 14;
  const auto data = mgs::util::random_i64(static_cast<std::size_t>(n), 22);
  std::vector<mc::GpuBatch<std::int64_t>> batches;
  for (int d = 0; d < 2; ++d) {
    mc::GpuBatch<std::int64_t> b;
    b.in = cluster.device(d).alloc<std::int64_t>(n / 2);
    b.out = cluster.device(d).alloc<std::int64_t>(n / 2);
    std::copy(data.begin() + d * (n / 2), data.begin() + (d + 1) * (n / 2),
              b.in.host_span().begin());
    batches.push_back(std::move(b));
  }
  mc::scan_mps<std::int64_t>(cluster, gpus, batches, n, 1, plan,
                             mc::ScanKind::kInclusive);
  const auto got = mc::collect_batch(batches, n, 1);
  std::int64_t acc = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc += data[static_cast<std::size_t>(i)];
    ASSERT_EQ(got[static_cast<std::size_t>(i)], acc) << i;
  }
}

// ---- Performance-relation tests (deterministic simulated time) --------

TEST(MpsPerf, ScalesFromOneToFourGpusOnP2P) {
  // W in {1,2,4} all live on one PCIe network: more GPUs -> faster
  // (Figure 9's lower-left region).
  const std::int64_t n = 1 << 22;
  const std::int64_t g = 4;
  double prev = 1e9;
  for (int w : {1, 2, 4}) {
    auto cluster = mt::tsubame_kfc_cluster(1);
    const auto r = run_mps(cluster, w, n, g, mc::ScanKind::kInclusive, 4);
    EXPECT_LT(r.seconds, prev) << "W=" << w;
    prev = r.seconds;
  }
}

TEST(MpsPerf, HostStagingPenaltyAtW8) {
  // W=8 spans both PCIe networks: the aux arrays stage through host
  // memory. With many problems (large G), W=8 must be *slower* than W=4
  // despite twice the GPUs -- the paper's W=8 drop in Figure 9.
  const std::int64_t n = 1 << 16;
  const std::int64_t g = 256;
  auto c4 = mt::tsubame_kfc_cluster(1);
  const auto r4 = run_mps(c4, 4, n, g, mc::ScanKind::kInclusive, 2);
  auto c8 = mt::tsubame_kfc_cluster(1);
  const auto r8 = run_mps(c8, 8, n, g, mc::ScanKind::kInclusive, 2);
  EXPECT_GT(r8.seconds, r4.seconds);
}

TEST(MpsPerf, W8RecoversAsGShrinks) {
  // The W=8 penalty is per-problem (one aux row per problem): at G=1 the
  // host-staged traffic is a handful of fixed-latency hops, so doubling
  // the GPUs eventually wins once N is large enough (the right side of
  // Figure 9, where the W=8 curve recovers).
  const std::int64_t n = 1 << 26;
  auto c4 = mt::tsubame_kfc_cluster(1);
  const auto r4 = run_mps(c4, 4, n, 1, mc::ScanKind::kInclusive, 32);
  auto c8 = mt::tsubame_kfc_cluster(1);
  const auto r8 = run_mps(c8, 8, n, 1, mc::ScanKind::kInclusive, 32);
  EXPECT_LT(r8.seconds, r4.seconds);

  // And at a small N the same W=8 configuration still loses to W=4: the
  // crossover exists.
  const std::int64_t small_n = 1 << 16;
  auto s4 = mt::tsubame_kfc_cluster(1);
  const auto rs4 = run_mps(s4, 4, small_n, 1, mc::ScanKind::kInclusive, 2);
  auto s8 = mt::tsubame_kfc_cluster(1);
  const auto rs8 = run_mps(s8, 8, small_n, 1, mc::ScanKind::kInclusive, 2);
  EXPECT_GT(rs8.seconds, rs4.seconds);
}

TEST(MpsPerf, NoW8PenaltyOnAnNvlinkFabric) {
  // Counterfactual for Figure 9's mechanism: on a DGX-1-class node all 8
  // GPUs share one fabric, so the W=8 configuration never stages through
  // host memory and must *beat* W=4 even at large G -- proving the K80
  // platform's W=8 drop really is the cross-network staging, not
  // something intrinsic to 8 GPUs.
  const std::int64_t n = 1 << 16;
  const std::int64_t g = 256;
  const auto plan = paper_plan(2);
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n * g), 77);

  auto c4 = mgs::topo::dgx1_like_cluster(1);
  auto b4 = mc::distribute_batch<int>(c4, first_gpus(4), data, n, g);
  const auto r4 = mc::scan_mps<int>(c4, first_gpus(4), b4, n, g, plan,
                                    mc::ScanKind::kInclusive);
  auto c8 = mgs::topo::dgx1_like_cluster(1);
  auto b8 = mc::distribute_batch<int>(c8, first_gpus(8), data, n, g);
  const auto r8 = mc::scan_mps<int>(c8, first_gpus(8), b8, n, g, plan,
                                    mc::ScanKind::kInclusive);
  EXPECT_LT(r8.seconds, r4.seconds);
  EXPECT_EQ(mc::collect_batch(b8, n, g),
            reference_batch_scan<int>(data, n, g, mc::ScanKind::kInclusive));
}

TEST(MpsPerf, DeterministicRuns) {
  auto c1 = mt::tsubame_kfc_cluster(1);
  const auto a = run_mps(c1, 4, 1 << 18, 4, mc::ScanKind::kInclusive, 2);
  auto c2 = mt::tsubame_kfc_cluster(1);
  const auto b = run_mps(c2, 4, 1 << 18, 4, mc::ScanKind::kInclusive, 2);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(Mps, StragglerGpuDelaysTheWholeScan) {
  // Failure/straggler injection: one GPU enters the collective phases
  // late (e.g. it was busy with an earlier kernel); the bulk-synchronous
  // pipeline must absorb the delay into the makespan, not lose it.
  const std::int64_t n = 1 << 18;
  auto c1 = mt::tsubame_kfc_cluster(1);
  const auto base = run_mps(c1, 4, n, 2, mc::ScanKind::kInclusive, 2);

  auto c2 = mt::tsubame_kfc_cluster(1);
  const double delay = 5e-3;
  c2.device(2).clock().advance(delay);  // GPU 2 starts 5 ms late
  std::vector<int> data, got;
  const auto plan2 = paper_plan(2);
  const auto gpus = first_gpus(4);
  const auto input = mgs::util::random_i32(static_cast<std::size_t>(n * 2),
                                           static_cast<std::uint64_t>(n + 4));
  auto batches = mc::distribute_batch<int>(c2, gpus, input, n, 2);
  const auto delayed = mc::scan_mps<int>(c2, gpus, batches, n, 2, plan2,
                                         mc::ScanKind::kInclusive);
  // The makespan (measured from the common phase start, which includes
  // the straggler) grows by at most the injected delay, and the result
  // stays correct.
  EXPECT_GE(c2.makespan({0, 1, 2, 3}), delay + base.seconds * 0.5);
  EXPECT_EQ(mc::collect_batch(batches, n, 2),
            reference_batch_scan<int>(input, n, 2, mc::ScanKind::kInclusive));
}

TEST(Mps, SolvesProblemTooLargeForOneGpu) {
  // Case 2 of Section 4: N elements that exceed a single GPU's memory
  // must still be solvable by scattering. Use a shrunken device so the
  // test stays small: 1 MiB per GPU, problem of 1 MiB in+out.
  mt::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.networks_per_node = 1;
  cfg.gpus_per_network = 4;
  cfg.gpu = mgs::sim::k80_spec();
  cfg.gpu.memory_bytes = 1 << 20;
  mt::Cluster cluster(cfg);

  const std::int64_t n = (1 << 17) + 4;  // in + out just over 1 MiB
  mgs::simt::Device solo(99, cfg.gpu);
  EXPECT_THROW(
      {
        auto a = solo.alloc<int>(n);
        auto b = solo.alloc<int>(n);
      },
      mgs::util::Error);

  const auto plan = paper_plan(2);
  const auto gpus = first_gpus(4);
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n), 5);
  auto batches = mc::distribute_batch<int>(cluster, gpus, data, n, 1);
  mc::scan_mps<int>(cluster, gpus, batches, n, 1, plan,
                    mc::ScanKind::kInclusive);
  const auto got = mc::collect_batch(batches, n, 1);
  const auto want = reference_batch_scan<int>(data, n, 1,
                                              mc::ScanKind::kInclusive);
  EXPECT_EQ(got, want);
}
