// Unit tests for mgs/msg: the in-process MPI runtime -- rank/device
// mapping, barrier clock semantics, gather/scatter data movement and the
// link-aware cost model.

#include <gtest/gtest.h>

#include "mgs/msg/comm.hpp"
#include "mgs/sim/fault.hpp"

namespace mm = mgs::msg;
namespace mt = mgs::topo;

namespace {

mm::Communicator make_comm(mt::Cluster& cluster, int ranks) {
  std::vector<int> ids;
  for (int r = 0; r < ranks; ++r) ids.push_back(r);
  return mm::Communicator(cluster, std::move(ids));
}

}  // namespace

TEST(Comm, RankMappingValidated) {
  auto c = mt::tsubame_kfc_cluster(1);
  EXPECT_THROW(mm::Communicator(c, {}), mgs::util::Error);
  EXPECT_THROW(mm::Communicator(c, {0, 0}), mgs::util::Error);
  EXPECT_THROW(mm::Communicator(c, {0, 99}), mgs::util::Error);
  mm::Communicator comm(c, {3, 5});
  EXPECT_EQ(comm.size(), 2);
  EXPECT_EQ(comm.device_of(0), 3);
  EXPECT_EQ(comm.device_of(1), 5);
}

TEST(Comm, BarrierSynchronizesClocks) {
  auto c = mt::tsubame_kfc_cluster(2);
  auto comm = make_comm(c, 16);
  c.device(7).clock().advance(1.0);  // one laggard
  const double done = comm.barrier();
  EXPECT_GT(done, 1.0);  // max + alpha*levels
  for (int r = 0; r < comm.size(); ++r) {
    EXPECT_DOUBLE_EQ(c.device(comm.device_of(r)).clock().now(), done);
  }
  EXPECT_GT(comm.breakdown().get("MPI_Barrier"), 0.0);
}

TEST(Comm, GatherConcatenatesByRank) {
  auto c = mt::tsubame_kfc_cluster(2);
  auto comm = make_comm(c, 4);
  std::vector<mgs::simt::DeviceBuffer<int>> bufs;
  std::vector<mm::Slice<int>> slices;
  for (int r = 0; r < 4; ++r) {
    bufs.push_back(c.device(r).alloc<int>(3));
    for (int i = 0; i < 3; ++i) {
      bufs.back().host_span()[static_cast<std::size_t>(i)] = 10 * r + i;
    }
  }
  for (int r = 0; r < 4; ++r) slices.push_back({&bufs[static_cast<std::size_t>(r)], 0, 3});
  auto recv = c.device(0).alloc<int>(12);
  comm.gather(0, slices, recv, 0);
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(recv.host_span()[static_cast<std::size_t>(3 * r + i)], 10 * r + i);
    }
  }
  EXPECT_GT(comm.breakdown().get("MPI_Gather"), 0.0);
}

TEST(Comm, ScatterIsGatherInverse) {
  auto c = mt::tsubame_kfc_cluster(2);
  auto comm = make_comm(c, 4);
  auto send = c.device(0).alloc<int>(8);
  for (int i = 0; i < 8; ++i) send.host_span()[static_cast<std::size_t>(i)] = i * i;
  std::vector<mgs::simt::DeviceBuffer<int>> bufs;
  for (int r = 0; r < 4; ++r) bufs.push_back(c.device(r).alloc<int>(2));
  std::vector<mm::Slice<int>> slices;
  for (int r = 0; r < 4; ++r) slices.push_back({&bufs[static_cast<std::size_t>(r)], 0, 2});
  comm.scatter(0, send, 0, slices);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)].host_span()[0], (2 * r) * (2 * r));
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)].host_span()[1],
              (2 * r + 1) * (2 * r + 1));
  }
}

TEST(Comm, CollectivesBlockEveryRank) {
  auto c = mt::tsubame_kfc_cluster(2);
  auto comm = make_comm(c, 8);
  std::vector<mgs::simt::DeviceBuffer<int>> bufs;
  std::vector<mm::Slice<int>> slices;
  bufs.reserve(8);
  for (int r = 0; r < 8; ++r) {
    bufs.push_back(c.device(r).alloc<int>(4));
    slices.push_back({&bufs.back(), 0, 4});
  }
  auto recv = c.device(0).alloc<int>(32);
  const double done = comm.gather(0, slices, recv, 0);
  for (int r = 0; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(c.device(r).clock().now(), done);
  }
}

TEST(Comm, InterNodeGatherCostsMoreThanIntraNode) {
  // 8 ranks on one node vs. spread over two nodes: same bytes, but the
  // cross-node messages ride InfiniBand with MPI overhead.
  auto c1 = mt::tsubame_kfc_cluster(2);
  auto intra = make_comm(c1, 8);  // devices 0..7 = node 0
  auto c2 = mt::tsubame_kfc_cluster(2);
  mm::Communicator inter(c2, {0, 1, 2, 3, 8, 9, 10, 11});

  auto run = [](mm::Communicator& comm, mt::Cluster& c) {
    std::vector<mgs::simt::DeviceBuffer<int>> bufs;
    std::vector<mm::Slice<int>> slices;
    bufs.reserve(static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      bufs.push_back(c.device(comm.device_of(r)).alloc<int>(1024));
      slices.push_back({&bufs.back(), 0, 1024});
    }
    auto recv = c.device(comm.device_of(0)).alloc<int>(1024 * 8);
    return comm.gather(0, slices, recv, 0);
  };
  EXPECT_LT(run(intra, c1), run(inter, c2));
}

TEST(Comm, BcastDeliversRootDataEverywhere) {
  auto c = mt::tsubame_kfc_cluster(2);
  auto comm = make_comm(c, 8);
  auto send = c.device(0).alloc<int>(8);
  for (int i = 0; i < 8; ++i) send.host_span()[static_cast<std::size_t>(i)] = 3 * i;
  std::vector<mgs::simt::DeviceBuffer<int>> bufs;
  std::vector<mm::Slice<int>> slices;
  bufs.reserve(8);
  for (int r = 0; r < 8; ++r) {
    bufs.push_back(c.device(r).alloc<int>(8));
    slices.push_back({&bufs.back(), 0, 8});
  }
  const double done = comm.bcast(0, send, 0, slices);
  for (int r = 0; r < 8; ++r) {
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(bufs[static_cast<std::size_t>(r)]
                    .host_span()[static_cast<std::size_t>(i)],
                3 * i);
    }
    EXPECT_DOUBLE_EQ(c.device(r).clock().now(), done);
  }
  EXPECT_GT(comm.breakdown().get("MPI_Bcast"), 0.0);
}

TEST(Comm, AllgatherGivesEveryRankEverything) {
  auto c = mt::tsubame_kfc_cluster(1);
  auto comm = make_comm(c, 4);
  std::vector<mgs::simt::DeviceBuffer<int>> send_bufs;
  std::vector<mgs::simt::DeviceBuffer<int>> recv_bufs;
  std::vector<mm::Slice<int>> sends;
  std::vector<mgs::simt::DeviceBuffer<int>*> recvs;
  send_bufs.reserve(4);
  recv_bufs.reserve(4);
  for (int r = 0; r < 4; ++r) {
    send_bufs.push_back(c.device(r).alloc<int>(2));
    send_bufs.back().host_span()[0] = 10 * r;
    send_bufs.back().host_span()[1] = 10 * r + 1;
    sends.push_back({&send_bufs.back(), 0, 2});
    recv_bufs.push_back(c.device(r).alloc<int>(8));
    recvs.push_back(&recv_bufs.back());
  }
  comm.allgather(sends, recvs);
  for (int r = 0; r < 4; ++r) {
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(recv_bufs[static_cast<std::size_t>(r)]
                    .host_span()[static_cast<std::size_t>(2 * s)],
                10 * s);
      EXPECT_EQ(recv_bufs[static_cast<std::size_t>(r)]
                    .host_span()[static_cast<std::size_t>(2 * s + 1)],
                10 * s + 1);
    }
  }
}

TEST(Comm, BcastCrossNodeCostsMoreThanIntraNode) {
  auto c1 = mt::tsubame_kfc_cluster(2);
  mm::Communicator intra(c1, {0, 1, 2, 3});
  auto c2 = mt::tsubame_kfc_cluster(2);
  mm::Communicator inter(c2, {0, 1, 8, 9});
  auto run = [](mm::Communicator& comm, mt::Cluster& c) {
    auto send = c.device(comm.device_of(0)).alloc<int>(4096);
    std::vector<mgs::simt::DeviceBuffer<int>> bufs;
    std::vector<mm::Slice<int>> slices;
    bufs.reserve(static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      bufs.push_back(c.device(comm.device_of(r)).alloc<int>(4096));
      slices.push_back({&bufs.back(), 0, 4096});
    }
    return comm.bcast(0, send, 0, slices);
  };
  EXPECT_LT(run(intra, c1), run(inter, c2));
}

TEST(Comm, SendRecvMovesDataWithRendezvous) {
  auto c = mt::tsubame_kfc_cluster(2);
  auto comm = make_comm(c, 16);
  auto a = c.device(0).alloc<int>(16);
  auto b = c.device(8).alloc<int>(16);
  for (int i = 0; i < 16; ++i) a.host_span()[static_cast<std::size_t>(i)] = 7 * i;
  c.device(8).clock().advance(0.25);  // receiver is late: rendezvous waits
  const double done = comm.send_recv(0, 8, a, 0, b, 0, 16);
  EXPECT_GT(done, 0.25);
  EXPECT_EQ(b.host_span()[15], 105);
  EXPECT_DOUBLE_EQ(c.device(0).clock().now(), done);
}

TEST(Comm, GatherValidatesShapes) {
  auto c = mt::tsubame_kfc_cluster(1);
  auto comm = make_comm(c, 2);
  auto b0 = c.device(0).alloc<int>(4);
  auto b1 = c.device(1).alloc<int>(4);
  auto recv = c.device(0).alloc<int>(4);  // too small for 2 ranks x 4
  std::vector<mm::Slice<int>> slices = {{&b0, 0, 4}, {&b1, 0, 4}};
  EXPECT_DEATH(comm.gather(0, slices, recv, 0), "too small");
  std::vector<mm::Slice<int>> uneven = {{&b0, 0, 4}, {&b1, 0, 2}};
  auto recv8 = c.device(0).alloc<int>(8);
  EXPECT_DEATH(comm.gather(0, uneven, recv8, 0), "equal-size");
}

// ---------------------------------------------------------------------------
// Negative paths: collectives over a cluster with injected faults must
// raise a typed CommError identifying the failed rank -- never silently
// deliver partial data.

namespace {

/// Per-rank buffers + slices for a `ranks`-wide collective of `count`
/// elements each.
struct CollectiveBufs {
  std::vector<mgs::simt::DeviceBuffer<int>> bufs;
  std::vector<mm::Slice<int>> slices;

  CollectiveBufs(mt::Cluster& c, mm::Communicator& comm, std::int64_t count) {
    bufs.reserve(static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      bufs.push_back(c.device(comm.device_of(r)).alloc<int>(count));
      slices.push_back({&bufs.back(), 0, count});
    }
  }
};

}  // namespace

TEST(CommFaults, GatherWithDownRankRaisesCommError) {
  auto c = mt::tsubame_kfc_cluster(1);
  auto fi = mgs::sim::FaultInjector(
      mgs::sim::parse_fault_plan("device-down:dev=2"));
  c.set_fault_injector(&fi);
  auto comm = make_comm(c, 4);
  CollectiveBufs b(c, comm, 4);
  auto recv = c.device(0).alloc<int>(16);
  try {
    comm.gather(0, b.slices, recv, 0);
    FAIL() << "expected CommError";
  } catch (const mm::CommError& e) {
    EXPECT_EQ(e.failed_rank, 2);
    EXPECT_NE(std::string(e.what()).find("MPI_Gather"), std::string::npos);
  }
}

TEST(CommFaults, ScatterWithDownRankRaisesCommError) {
  auto c = mt::tsubame_kfc_cluster(1);
  auto fi = mgs::sim::FaultInjector(
      mgs::sim::parse_fault_plan("device-down:dev=1"));
  c.set_fault_injector(&fi);
  auto comm = make_comm(c, 4);
  CollectiveBufs b(c, comm, 4);
  auto send = c.device(0).alloc<int>(16);
  try {
    comm.scatter(0, send, 0, b.slices);
    FAIL() << "expected CommError";
  } catch (const mm::CommError& e) {
    EXPECT_EQ(e.failed_rank, 1);
  }
}

TEST(CommFaults, BcastWithDownRankRaisesCommError) {
  auto c = mt::tsubame_kfc_cluster(1);
  auto fi = mgs::sim::FaultInjector(
      mgs::sim::parse_fault_plan("device-down:dev=3"));
  c.set_fault_injector(&fi);
  auto comm = make_comm(c, 4);
  CollectiveBufs b(c, comm, 8);
  auto send = c.device(0).alloc<int>(8);
  try {
    comm.bcast(0, send, 0, b.slices);
    FAIL() << "expected CommError";
  } catch (const mm::CommError& e) {
    EXPECT_EQ(e.failed_rank, 3);
  }
}

TEST(CommFaults, BarrierTimeoutBlamesTheLaggard) {
  auto c = mt::tsubame_kfc_cluster(1);
  auto fi = mgs::sim::FaultInjector(
      mgs::sim::parse_fault_plan("policy:timeout-s=0.5"));
  c.set_fault_injector(&fi);
  auto comm = make_comm(c, 4);
  c.device(3).clock().advance(1.0);  // dwell beyond the timeout
  try {
    comm.barrier();
    FAIL() << "expected CommError";
  } catch (const mm::CommError& e) {
    EXPECT_EQ(e.failed_rank, 3);
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos);
  }
}

TEST(CommFaults, RetryExhaustionRaisesCommError) {
  auto c = mt::tsubame_kfc_cluster(1);
  // Every first attempt on the 0->1 pair fails and no retry is allowed.
  auto fi = mgs::sim::FaultInjector(mgs::sim::parse_fault_plan(
      "transient:src=0,dst=1,op=0,count=1000;policy:retries=0"));
  c.set_fault_injector(&fi);
  auto comm = make_comm(c, 2);
  auto a = c.device(0).alloc<int>(16);
  auto b = c.device(1).alloc<int>(16);
  EXPECT_THROW(comm.send_recv(0, 1, a, 0, b, 0, 16), mm::CommError);
  EXPECT_GT(comm.fault_counters().transient_failures, 0u);
}

TEST(CommFaults, HealthyClusterUnaffectedByDetachedInjector) {
  // Attaching and detaching an injector leaves collective times identical.
  auto run_once = [](mt::Cluster& c, mgs::sim::FaultInjector* fi) {
    c.set_fault_injector(fi);
    auto comm = make_comm(c, 4);
    CollectiveBufs b(c, comm, 64);
    auto recv = c.device(0).alloc<int>(256);
    return comm.gather(0, b.slices, recv, 0);
  };
  auto c1 = mt::tsubame_kfc_cluster(1);
  const double plain = run_once(c1, nullptr);
  auto c2 = mt::tsubame_kfc_cluster(1);
  auto fi = mgs::sim::FaultInjector(mgs::sim::FaultPlan{});
  const double with_empty_plan = run_once(c2, &fi);
  EXPECT_DOUBLE_EQ(plain, with_empty_plan);
}
