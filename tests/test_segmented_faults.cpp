// Segmented scans under every fault class. SegmentedScan rides the same
// executors as the plain scans, so the whole resilience stack -- retry,
// reroute, checksum repair, degraded re-planning, stage-granular resume,
// compute stragglers -- must hold for the packed SegPair representation
// too: under any injected fault the segmented result stays bit-identical
// to the serial reference, inclusive and exclusive alike.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mgs/baselines/reference.hpp"
#include "mgs/core/segmented_context.hpp"
#include "mgs/sim/fault.hpp"
#include "mgs/topo/topology.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace ms = mgs::sim;
namespace mt = mgs::topo;
using mgs::baselines::reference_segmented_scan;

namespace {

constexpr std::int64_t kN = 1 << 12;
constexpr std::int64_t kG = 2;

/// One fault spec per FaultKind (plus healthy and a mid-run death): the
/// full resilience matrix the plain executors already pass.
const char* const kSpecs[] = {
    "",
    "transient:op=0,count=2",
    "link-down:src=0,dst=1",
    "device-down:dev=2",
    "device-down:dev=1,at=1e-9",  // mid-run: exercises checkpoint resume
    "corrupt:op=0",
    "straggler:dev=1,factor=4",
};

struct SegOutcome {
  std::vector<int> out;
  mc::RunResult result;
};

SegOutcome run_segmented(const std::string& spec,
                         std::span<const int> values,
                         std::span<const int> flags, mc::ScanKind kind) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  std::unique_ptr<ms::FaultInjector> fi;
  if (!spec.empty()) {
    fi = std::make_unique<ms::FaultInjector>(ms::parse_fault_plan(spec));
    cluster.set_fault_injector(fi.get());
  }
  mc::ScanContext ctx(cluster);
  mc::ExecutorParams params;
  params.w = 4;
  mc::SegmentedScan<int> seg(ctx, "Scan-MPS", params);
  seg.prepare(kN, kG);
  SegOutcome o;
  o.out.resize(static_cast<std::size_t>(kN * kG));
  o.result = seg.run(values, flags, o.out, kind);
  return o;
}

/// Per-sequence serial reference; exclusive derives from the inclusive
/// pass exactly as SegmentedScan documents: a head (explicit flag or the
/// implicit one at each sequence start) yields the identity, everything
/// else the inclusive value of its left neighbor.
std::vector<int> expected(std::span<const int> values,
                          std::span<const int> flags, mc::ScanKind kind) {
  std::vector<int> inc(values.size());
  for (std::int64_t p = 0; p < kG; ++p) {
    const auto sub = reference_segmented_scan<int>(
        values.subspan(static_cast<std::size_t>(p * kN),
                       static_cast<std::size_t>(kN)),
        flags.subspan(static_cast<std::size_t>(p * kN),
                      static_cast<std::size_t>(kN)));
    std::copy(sub.begin(), sub.end(),
              inc.begin() + static_cast<std::ptrdiff_t>(p * kN));
  }
  if (kind == mc::ScanKind::kInclusive) return inc;
  std::vector<int> exc(values.size());
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(values.size());
       ++i) {
    const bool head = i % kN == 0 || flags[static_cast<std::size_t>(i)] != 0;
    exc[static_cast<std::size_t>(i)] =
        head ? 0 : inc[static_cast<std::size_t>(i) - 1];
  }
  return exc;
}

std::vector<int> make_values(std::uint64_t seed) {
  const auto raw =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), seed);
  std::vector<int> v(raw.begin(), raw.end());
  for (auto& x : v) x %= 101;  // keep segment sums far from overflow
  return v;
}

/// Mixed segment shapes: a regular period, a burst of adjacent heads
/// (empty segments between them), and random extras.
std::vector<int> make_flags(std::uint64_t seed) {
  std::vector<int> flags(static_cast<std::size_t>(kN * kG), 0);
  for (std::size_t i = 0; i < flags.size(); i += 97) flags[i] = 1;
  for (std::size_t i = 500; i < 508; ++i) flags[i] = 1;  // adjacent heads
  mgs::util::SplitMix64 rng(seed);
  for (int j = 0; j < 64; ++j) {
    flags[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(kN * kG)))] = 1;
  }
  return flags;
}

}  // namespace

class SegmentedFaults
    : public ::testing::TestWithParam<const char*> {};

TEST_P(SegmentedFaults, InclusiveMatchesReferenceBitExactly) {
  const std::string spec = GetParam();
  const auto values = make_values(31);
  const auto flags = make_flags(32);
  const auto r =
      run_segmented(spec, values, flags, mc::ScanKind::kInclusive);
  EXPECT_EQ(r.out, expected(values, flags, mc::ScanKind::kInclusive))
      << "spec: " << spec;
  if (spec.empty()) {
    EXPECT_FALSE(r.result.faults.any());
  }
}

TEST_P(SegmentedFaults, ExclusiveMatchesReferenceBitExactly) {
  const std::string spec = GetParam();
  const auto values = make_values(33);
  const auto flags = make_flags(34);
  const auto r =
      run_segmented(spec, values, flags, mc::ScanKind::kExclusive);
  EXPECT_EQ(r.out, expected(values, flags, mc::ScanKind::kExclusive))
      << "spec: " << spec;
}

INSTANTIATE_TEST_SUITE_P(
    EveryFaultKind, SegmentedFaults, ::testing::ValuesIn(kSpecs),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      if (name.empty()) return std::string("healthy");
      for (char& c : name) {
        if (!(std::isalnum(static_cast<unsigned char>(c)))) c = '_';
      }
      return name;
    });

// Degenerate flag shapes, under a mid-run device death: every element a
// head (all segments length 1) and no explicit head at all (one segment
// per sequence).
TEST(SegmentedFaults, AllHeadsAndNoHeadsSurviveMidRunDeviceDown) {
  const auto values = make_values(35);
  const std::string spec = "device-down:dev=1,at=1e-9";
  for (const int fill : {1, 0}) {
    const std::vector<int> flags(static_cast<std::size_t>(kN * kG), fill);
    for (const auto kind :
         {mc::ScanKind::kInclusive, mc::ScanKind::kExclusive}) {
      const auto r = run_segmented(spec, values, flags, kind);
      EXPECT_EQ(r.out, expected(values, flags, kind))
          << "fill=" << fill
          << " kind=" << (kind == mc::ScanKind::kInclusive ? "inc" : "exc");
      EXPECT_TRUE(r.result.faults.degraded);
    }
  }
}

// The mid-run death must recover through the checkpoint path (resume),
// not a silent full restart: resumed_stages is recorded on the packed
// executor exactly as on the plain one.
TEST(SegmentedFaults, MidRunDeathOnPackedPathRecordsResume) {
  const auto values = make_values(36);
  const auto flags = make_flags(37);
  const auto r = run_segmented("device-down:dev=1,at=1e-9", values, flags,
                               mc::ScanKind::kInclusive);
  EXPECT_EQ(r.out, expected(values, flags, mc::ScanKind::kInclusive));
  EXPECT_TRUE(r.result.faults.degraded);
  EXPECT_FALSE(r.result.faults.resumed_stages.empty());
  EXPECT_EQ(r.result.faults.excluded_devices, std::vector<int>{1});
}
