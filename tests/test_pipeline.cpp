// Tests for the event-driven stream pipeline: the overlapped multi-GPU
// executors must produce bit-identical results to the bulk-synchronous
// stage path (the operator is applied in the same order, only the modeled
// timeline changes), schedule deterministically, survive fault injection
// without deadlocking, and actually buy modeled time -- less makespan and
// no more critical-path idle than the synchronous schedule they replace.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mgs/baselines/reference.hpp"
#include "mgs/core/executor.hpp"
#include "mgs/obs/critical_path.hpp"
#include "mgs/obs/span.hpp"
#include "mgs/sim/fault.hpp"
#include "mgs/topo/topology.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace mo = mgs::obs;
namespace ms = mgs::sim;
namespace mt = mgs::topo;
using mgs::baselines::reference_batch_scan;

namespace {

constexpr std::int64_t kN = 1 << 12;
constexpr std::int64_t kG = 8;

using Factory = std::function<std::unique_ptr<mc::ScanExecutor>(
    mc::ScanContext&, mc::PipelineChoice)>;

struct Proposal {
  const char* name;
  int nodes;  ///< cluster size the proposal needs
  Factory make;
};

std::vector<Proposal> multi_gpu_proposals() {
  return {
      {"Scan-MPS", 1,
       [](mc::ScanContext& c, mc::PipelineChoice pipe) {
         return mc::make_mps_executor(c, 4, false, pipe);
       }},
      {"Scan-MP-PC", 1,
       [](mc::ScanContext& c, mc::PipelineChoice pipe) {
         return mc::make_mppc_executor(c, 2, 4, 1, pipe);
       }},
      {"Scan-MPS-multinode", 2,
       [](mc::ScanContext& c, mc::PipelineChoice pipe) {
         return mc::make_multinode_executor(c, 2, 4, pipe);
       }},
  };
}

struct Outcome {
  std::vector<std::int32_t> out;
  mc::RunResult result;
};

/// One fresh cluster + context + executor run under `pipe`, optionally
/// with a fault plan attached ("" = no injector).
Outcome run_proposal(const Proposal& p, mc::PipelineChoice pipe,
                     const std::string& faults,
                     std::span<const std::int32_t> data, std::int64_t n,
                     std::int64_t g) {
  auto cluster = mt::tsubame_kfc_cluster(p.nodes);
  std::unique_ptr<ms::FaultInjector> fi;
  if (!faults.empty()) {
    fi = std::make_unique<ms::FaultInjector>(ms::parse_fault_plan(faults));
    cluster.set_fault_injector(fi.get());
  }
  mc::ScanContext ctx(cluster);
  auto ex = p.make(ctx, pipe);
  ex->prepare(n, g);
  Outcome o;
  o.out.resize(static_cast<std::size_t>(n * g));
  o.result = ex->run(data, o.out, mc::ScanKind::kInclusive);
  return o;
}

constexpr mc::PipelineChoice kSyncChoice{mc::PipelineMode::kSync, 0};
constexpr mc::PipelineChoice kOverlapChoice{mc::PipelineMode::kOverlap, 0};

}  // namespace

// ------------------------------------------------- correctness / identity

// The overlapped pipeline reorders the *timeline*, not the arithmetic:
// every proposal must produce exactly the bytes the synchronous path
// produces, which in turn match the reference scan.
TEST(Pipeline, OverlapBitIdenticalToSync) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 7);
  const auto expect =
      reference_batch_scan<std::int32_t>(data, kN, kG, mc::ScanKind::kInclusive);
  for (const auto& p : multi_gpu_proposals()) {
    SCOPED_TRACE(p.name);
    const auto sync = run_proposal(p, kSyncChoice, "", data, kN, kG);
    const auto over = run_proposal(p, kOverlapChoice, "", data, kN, kG);
    EXPECT_EQ(sync.out, expect);
    EXPECT_EQ(over.out, sync.out);  // element-wise bit identity
  }
}

// Non-power-of-two N exercises the partial-chunk and uneven-wave paths.
TEST(Pipeline, OverlapBitIdenticalOnAwkwardShapes) {
  // Still divisible by the 8 ranks of the multinode proposal, but not a
  // power of two, so chunks and waves split unevenly.
  const std::int64_t n = (1 << 12) - 128;
  for (std::int64_t g : {std::int64_t{1}, std::int64_t{3}, std::int64_t{8}}) {
    const auto data =
        mgs::util::random_i32(static_cast<std::size_t>(n * g), 11);
    const auto expect =
        reference_batch_scan<std::int32_t>(data, n, g, mc::ScanKind::kInclusive);
    for (const auto& p : multi_gpu_proposals()) {
      SCOPED_TRACE(std::string(p.name) + " g=" + std::to_string(g));
      const auto over = run_proposal(p, kOverlapChoice, "", data, n, g);
      EXPECT_EQ(over.out, expect);
    }
  }
}

// ------------------------------------------------------------ determinism

// The schedule is driven by recorded events on modeled clocks, not host
// threads: repeated runs must agree to the last bit in both the output
// and the modeled makespan.
TEST(Pipeline, EventOrderingIsDeterministic) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 23);
  for (const auto& p : multi_gpu_proposals()) {
    SCOPED_TRACE(p.name);
    const auto a = run_proposal(p, kOverlapChoice, "", data, kN, kG);
    const auto b = run_proposal(p, kOverlapChoice, "", data, kN, kG);
    EXPECT_EQ(a.out, b.out);
    EXPECT_EQ(a.result.seconds, b.result.seconds);  // exact, not approximate
  }
}

// The per-phase breakdown is cut at stage-close instants and must
// telescope exactly to the makespan, overlap or not.
TEST(Pipeline, BreakdownTelescopesExactly) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 29);
  for (const auto& p : multi_gpu_proposals()) {
    SCOPED_TRACE(p.name);
    const auto over = run_proposal(p, kOverlapChoice, "", data, kN, kG);
    EXPECT_NEAR(over.result.breakdown.total(), over.result.seconds,
                1e-12 + 1e-9 * over.result.seconds);
  }
}

// ------------------------------------------------------------- resilience

// Fault injection must not deadlock the event pipeline: a straggler GPU
// stretches the schedule, transient transfer failures retry inside the
// engine -- both must still complete with the right answer.
TEST(Pipeline, OverlapSurvivesStraggler) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 31);
  const auto expect =
      reference_batch_scan<std::int32_t>(data, kN, kG, mc::ScanKind::kInclusive);
  const std::string spec = "straggler:dev=1,factor=4";
  for (const auto& p : multi_gpu_proposals()) {
    SCOPED_TRACE(p.name);
    const auto healthy = run_proposal(p, kOverlapChoice, "", data, kN, kG);
    const auto faulted = run_proposal(p, kOverlapChoice, spec, data, kN, kG);
    EXPECT_EQ(faulted.out, expect);
    // The slow device sits on the critical path of every schedule.
    EXPECT_GT(faulted.result.seconds, healthy.result.seconds);
  }
}

TEST(Pipeline, OverlapSurvivesTransientFaults) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 37);
  const auto expect =
      reference_batch_scan<std::int32_t>(data, kN, kG, mc::ScanKind::kInclusive);
  const std::string spec = "transient:op=1,count=3; policy:retries=5";
  for (const auto& p : multi_gpu_proposals()) {
    SCOPED_TRACE(p.name);
    const auto faulted = run_proposal(p, kOverlapChoice, spec, data, kN, kG);
    EXPECT_EQ(faulted.out, expect);
    EXPECT_GE(faulted.result.faults.counters.retries +
                  faulted.result.faults.counters.transient_failures,
              1u);
  }
}

// ----------------------------------------------------- modeled-time gains

// Overlap must not lose modeled time against the synchronous schedule on
// any multi-GPU proposal at a communication-visible size.
TEST(Pipeline, OverlapNeverSlowerThanSync) {
  const std::int64_t n = 1 << 16;
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(n * kG), 41);
  for (const auto& p : multi_gpu_proposals()) {
    SCOPED_TRACE(p.name);
    const auto sync = run_proposal(p, kSyncChoice, "", data, n, kG);
    const auto over = run_proposal(p, kOverlapChoice, "", data, n, kG);
    EXPECT_LE(over.result.seconds, sync.result.seconds * (1.0 + 1e-9));
  }
}

// Scan-MPS at the Figure-9 shape: the pipelined gathers/scatters must cut
// the makespan materially, not marginally (the acceptance bar is 15% on
// the 4-GPU bench config; leave headroom here for model tweaks).
TEST(Pipeline, OverlapCutsMpsMakespan) {
  const std::int64_t n = 1 << 17;
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(n * kG), 43);
  Proposal mps = multi_gpu_proposals()[0];
  const auto sync = run_proposal(mps, kSyncChoice, "", data, n, kG);
  const auto over = run_proposal(mps, kOverlapChoice, "", data, n, kG);
  EXPECT_LT(over.result.seconds, sync.result.seconds * 0.90);
}

// --------------------------------------------------- critical-path anatomy

namespace {

mo::CriticalPathReport traced_report(const Proposal& p,
                                     mc::PipelineChoice pipe,
                                     std::span<const std::int32_t> data,
                                     std::int64_t n, std::int64_t g) {
  mo::TraceSession ts;
  run_proposal(p, pipe, "", data, n, g);
  return mo::analyze_last_run(ts.spans());
}

}  // namespace

namespace {

/// Summed idle over the compute-engine lanes: the time devices spend
/// parked at barriers (sync) or waiting on events (overlap). The
/// makespan-attribution kIdle is near zero for the synchronous schedule
/// (the busiest device fills every stage window), so the per-device sum
/// is the quantity the pipeline is supposed to shrink.
double compute_lane_idle(const mo::CriticalPathReport& cp) {
  double idle = 0.0;
  for (const auto& row : cp.devices) {
    if (row.engine == "compute") idle += row.idle_seconds;
  }
  return idle;
}

}  // namespace

// The overlapped schedule exists to fill the synchronous schedule's
// barrier stalls: aggregate compute-lane idle must come out strictly
// below the synchronous run's, the makespan attribution must stay
// exact, and every per-engine lane must still be serial.
TEST(Pipeline, CriticalPathIdleBelowSync) {
  const std::int64_t n = 1 << 16;
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(n * kG), 47);
  for (const auto& p : multi_gpu_proposals()) {
    SCOPED_TRACE(p.name);
    const auto sync = traced_report(p, kSyncChoice, data, n, kG);
    const auto over = traced_report(p, kOverlapChoice, data, n, kG);
    EXPECT_LT(compute_lane_idle(over), compute_lane_idle(sync));
    // Attribution stays exact under overlap.
    EXPECT_NEAR(over.by_category.total(), over.total_seconds,
                1e-12 + 1e-9 * over.total_seconds);
    // Every per-engine lane is serial: busy + idle == window.
    for (const auto& row : over.devices) {
      EXPECT_NEAR(row.busy.total() + row.idle_seconds, over.total_seconds,
                  1e-12 + 1e-9 * over.total_seconds)
          << "device " << row.device << " engine " << row.engine;
    }
  }
}

TEST(Pipeline, OverlappedTransfersRideDmaLanes) {
  const std::int64_t n = 1 << 16;
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(n * kG), 53);
  Proposal mps = multi_gpu_proposals()[0];
  const auto over = traced_report(mps, kOverlapChoice, data, n, kG);
  // Inter-GPU traffic is visible in the link table...
  std::uint64_t inter_gpu = 0;
  for (const auto& l : over.links) {
    if (l.src != l.dst) inter_gpu += l.transfers;
  }
  EXPECT_GT(inter_gpu, 0u);
  // ...and at least one device reports a busy DMA lane.
  bool saw_dma = false;
  for (const auto& row : over.devices) {
    if (row.engine == "dma" && row.busy.total() > 0.0) saw_dma = true;
  }
  EXPECT_TRUE(saw_dma);
}
