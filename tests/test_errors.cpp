// Systematic error-path coverage: every public entry point must reject
// invalid configuration with a util::Error (recoverable) and corrupt
// internal state with an MGS_CHECK abort (programming error) -- never
// silently compute garbage.

#include <gtest/gtest.h>

#include "mgs/core/api.hpp"
#include "mgs/msg/comm.hpp"

namespace mc = mgs::core;
namespace ms = mgs::sim;
namespace mt = mgs::topo;
namespace st = mgs::simt;

namespace {
mc::ScanPlan valid_plan() {
  auto plan = mc::derive_spl(ms::k80_spec(), 4).plan;
  plan.s13.k = 2;
  return plan;
}
}  // namespace

TEST(Errors, StagePlanValidation) {
  mc::StagePlan sp;
  sp.p = 0;
  EXPECT_THROW(sp.validate(), mgs::util::Error);
  sp = {};
  sp.p = 12;  // not a power of two
  EXPECT_THROW(sp.validate(), mgs::util::Error);
  sp = {};
  sp.lx = 96;
  sp.ly = 2;  // multi-problem blocks need warp-aligned Lx
  EXPECT_THROW(sp.validate(), mgs::util::Error);
  sp = {};
  sp.k = 3;
  EXPECT_THROW(sp.validate(), mgs::util::Error);
}

TEST(Errors, ScanPlanCrossChecks) {
  auto plan = valid_plan();
  plan.s13.ly = 2;  // stages 1/3 must have Ly = 1
  plan.s13.lx = 64;
  EXPECT_THROW(plan.validate(), mgs::util::Error);
  plan = valid_plan();
  plan.s2.k = 2;  // K^2 = 1 (Premise 3)
  EXPECT_THROW(plan.validate(), mgs::util::Error);
}

TEST(Errors, LayoutRejectsEmptyShapes) {
  const auto plan = valid_plan();
  EXPECT_THROW(mc::make_layout(0, 1, plan.s13), mgs::util::Error);
  EXPECT_THROW(mc::make_layout(1024, 0, plan.s13), mgs::util::Error);
}

TEST(Errors, ScanSpArgumentChecks) {
  st::Device dev(0, ms::k80_spec());
  auto buf = dev.alloc<int>(64);
  const auto plan = valid_plan();
  EXPECT_THROW(mc::scan_sp<int>(dev, buf, buf, -5, 1, plan,
                                mc::ScanKind::kInclusive),
               mgs::util::Error);
  EXPECT_THROW(mc::scan_sp<int>(dev, buf, buf, 64, 2, plan,
                                mc::ScanKind::kInclusive),
               mgs::util::Error);  // buffers hold only one problem
}

TEST(Errors, MpsShapeChecks) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  const auto plan = valid_plan();
  std::vector<mc::GpuBatch<int>> two(2);
  std::vector<int> gpus = {0, 1, 2};
  // Batch count must match GPU count.
  EXPECT_THROW(mc::scan_mps<int>(cluster, gpus, two, 3 * 1024, 1, plan,
                                 mc::ScanKind::kInclusive),
               mgs::util::Error);
  // N must divide by W.
  std::vector<mc::GpuBatch<int>> three(3);
  EXPECT_THROW(mc::scan_mps<int>(cluster, gpus, three, 1000, 1, plan,
                                 mc::ScanKind::kInclusive),
               mgs::util::Error);
}

TEST(Errors, MppcPartitionChecks) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  EXPECT_THROW(mc::make_mppc_partition(cluster, 0, 2, 4), mgs::util::Error);
  EXPECT_THROW(mc::make_mppc_partition(cluster, 2, 0, 4), mgs::util::Error);
  EXPECT_THROW(mc::make_mppc_partition(cluster, 2, 2, 4, /*nodes=*/5),
               mgs::util::Error);
}

TEST(Errors, MultinodeShapeChecks) {
  auto cluster = mt::tsubame_kfc_cluster(2);
  mgs::msg::Communicator comm(cluster, {0, 1, 8, 9});
  std::vector<mc::GpuBatch<int>> batches(4);
  // N must divide by the rank count.
  EXPECT_THROW(mc::scan_mps_multinode<int>(comm, batches, 1001, 1,
                                           valid_plan(),
                                           mc::ScanKind::kInclusive),
               mgs::util::Error);
}

TEST(Errors, SegmentedScanChecks) {
  st::Device dev(0, ms::k80_spec());
  auto small = dev.alloc<int>(8);
  auto big = dev.alloc<int>(64);
  EXPECT_THROW(
      mc::segmented_scan_sp<int>(dev, big, small, big, 64, valid_plan()),
      mgs::util::Error);
  EXPECT_THROW(
      mc::segmented_scan_sp<int>(dev, big, big, big, 0, valid_plan()),
      mgs::util::Error);
}

TEST(Errors, DeviceMemoryExhaustionIsRecoverable) {
  auto spec = ms::k80_spec();
  spec.memory_bytes = 1 << 16;
  st::Device dev(0, spec);
  EXPECT_THROW((void)dev.alloc<int>(1 << 20), mgs::util::Error);
  // After the failed allocation the device is still usable.
  auto ok = dev.alloc<int>(64);
  EXPECT_EQ(dev.allocated_bytes(), 256);
}

TEST(Errors, TuningArgumentChecks) {
  EXPECT_THROW(mc::derive_spl(ms::k80_spec(), 0), mgs::util::Error);
  const auto plan = valid_plan();
  EXPECT_THROW(mc::k1_max_eq1(0, 1, plan, ms::k80_spec()), mgs::util::Error);
  EXPECT_THROW(mc::k1_max_gpus(1024, plan.s13, 0), mgs::util::Error);
}

TEST(Errors, PlannerRejectsImpossibleShapes) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  EXPECT_THROW(mc::choose_proposal(cluster, {.n = 0, .g = 1}),
               mgs::util::Error);
  EXPECT_THROW(mc::choose_proposal(cluster, {.n = 1024, .g = 0}),
               mgs::util::Error);
}

TEST(ErrorsDeath, InternalInvariantsAbort) {
  // Clock going backwards is a programming error, not a config error.
  ms::Clock clock;
  EXPECT_DEATH(clock.advance(-1.0), "negative duration");
  // Breakdown with negative duration likewise.
  ms::Breakdown bd;
  EXPECT_DEATH(bd.add("x", -0.5), "negative duration");
}
