// Tests for the tuning strategy: Premise 1+2 parameter derivation (must
// reproduce the paper's (s,p,l) = (<=5, 3, 7) for cc 3.7 and ints),
// the Equation 1-3 K bounds, and the empirical K autotuner.

#include <gtest/gtest.h>

#include "mgs/core/scan_sp.hpp"
#include "mgs/core/tuning.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace ms = mgs::sim;

TEST(DeriveSpl, PaperValuesOnKepler) {
  const auto choice = mc::derive_spl(ms::k80_spec(), 4);
  // Section 3.2: l = 7 (128 threads, 4 warps), p = 3 (P = 8), s <= 5.
  EXPECT_EQ(choice.plan.s13.l_log2(), 7);
  EXPECT_EQ(choice.plan.s13.lx, 128);
  EXPECT_EQ(choice.plan.s13.p_log2(), 3);
  EXPECT_EQ(choice.plan.s13.p, 8);
  EXPECT_LE(choice.plan.s13.s_log2(), 5);
  EXPECT_LE(choice.plan.s13.regs_per_thread(), 64);
  // Stage 2: one warp per row, Ly problems per block, Bx = 1, K = 1.
  EXPECT_EQ(choice.plan.s2.lx, 32);
  EXPECT_EQ(choice.plan.s2.ly, 4);
  EXPECT_EQ(choice.plan.s2.k, 1);
  EXPECT_FALSE(choice.rationale.empty());
}

TEST(DeriveSpl, LandsOnTable3BoldRow) {
  const auto spec = ms::k80_spec();
  const auto choice = mc::derive_spl(spec, 4);
  const auto occ = ms::occupancy(spec, choice.plan.s13.threads(),
                                 choice.plan.s13.regs_per_thread(),
                                 choice.plan.s13.smem_bytes(4));
  EXPECT_EQ(occ.blocks_per_sm, spec.max_blocks_per_sm);
  EXPECT_DOUBLE_EQ(occ.warp_occupancy, 1.0);
}

TEST(DeriveSpl, AdaptsToMaxwell) {
  // Maxwell allows 32 blocks/SM with 64 warps -> 2 warps per block; its
  // 64K register file cannot hold P=4 state at 100% occupancy, so the
  // strategy relaxes the occupancy target (Volkov) instead of dropping
  // below the int4 vector width.
  const auto choice = mc::derive_spl(ms::maxwell_spec(), 4);
  EXPECT_EQ(choice.plan.s13.lx, 64);
  EXPECT_EQ(choice.plan.s13.p, 4);
  const auto occ = ms::occupancy(ms::maxwell_spec(), 64,
                                 choice.plan.s13.regs_per_thread(),
                                 choice.plan.s13.smem_bytes(4));
  EXPECT_GE(occ.warp_occupancy, 0.75);
  EXPECT_GE(occ.blocks_per_sm, 24);
}

TEST(KBounds, Equation1) {
  const auto spec = ms::k80_spec();
  const auto plan = mc::derive_spl(spec, 4).plan;
  // K <= G*N / (16 * P1 * P2 * L1 * L2)
  const std::int64_t n = 1 << 24;
  const std::int64_t g = 16;
  const std::int64_t denom = 16LL * 8 * 8 * 128 * 128;
  EXPECT_EQ(mc::k1_max_eq1(n, g, plan, spec), n * g / denom);
  // Never below 1 even for tiny problems.
  EXPECT_EQ(mc::k1_max_eq1(64, 1, plan, spec), 1);
}

TEST(KBounds, Equations2And3) {
  const auto plan = mc::derive_spl(ms::k80_spec(), 4).plan;
  // N/(K*Lx*P) >= gpus  <=>  K <= N/(gpus*Lx*P)
  const std::int64_t n = 1 << 20;
  EXPECT_EQ(mc::k1_max_gpus(n, plan.s13, 8), n / (8 * 1024));
  EXPECT_EQ(mc::k1_max_gpus(n, plan.s13, 1), n / 1024);
  EXPECT_EQ(mc::k1_max_gpus(1024, plan.s13, 8), 1);  // floor of 1
}

TEST(KBounds, CandidatesArePowersOfTwoWithinBounds) {
  const auto spec = ms::k80_spec();
  const auto plan = mc::derive_spl(spec, 4).plan;
  const auto ks = mc::k1_candidates(1 << 24, 8, plan, spec, 8);
  ASSERT_FALSE(ks.empty());
  EXPECT_EQ(ks.front(), 1);
  const std::int64_t bound = std::min(mc::k1_max_eq1(1 << 24, 8, plan, spec),
                                      mc::k1_max_gpus(1 << 24, plan.s13, 8));
  for (std::size_t i = 0; i < ks.size(); ++i) {
    EXPECT_TRUE(mgs::util::is_pow2(static_cast<std::uint64_t>(ks[i])));
    EXPECT_LE(ks[i], bound);
    if (i > 0) {
      EXPECT_EQ(ks[i], 2 * ks[i - 1]);
    }
  }
  // The largest admissible power of two is present.
  EXPECT_GT(2 * static_cast<std::int64_t>(ks.back()), bound);
}

TEST(KBounds, MultiGpuConstraintTightensSpace) {
  const auto spec = ms::k80_spec();
  const auto plan = mc::derive_spl(spec, 4).plan;
  const auto solo = mc::k1_candidates(1 << 22, 64, plan, spec, 1);
  const auto eight = mc::k1_candidates(1 << 22, 64, plan, spec, 8);
  EXPECT_GE(solo.size(), eight.size());
}

TEST(Autotune, PicksArgmin) {
  const std::vector<int> ks = {1, 2, 4, 8, 16};
  const auto r = mc::autotune_k(ks, [](int k) {
    // Synthetic U-shaped cost with minimum at K = 4.
    const double d = static_cast<double>(k) - 4.0;
    return 1.0 + d * d;
  });
  EXPECT_EQ(r.best_k, 4);
  EXPECT_DOUBLE_EQ(r.best_seconds, 1.0);
  EXPECT_EQ(r.tried.size(), 5u);
}

TEST(Autotune, EndToEndOnSimulator) {
  // Autotune K for a real single-GPU batch scan; the winner must come
  // from the candidate set and every measurement must be positive. (The
  // Equation-1 space only opens up at N*G >= ~2^26, too large for a unit
  // test, so the candidate list is explicit here; the equations are
  // covered above.)
  const auto spec = ms::k80_spec();
  auto plan = mc::derive_spl(spec, 4).plan;
  const std::int64_t n = 1 << 18;
  const std::int64_t g = 4;
  const std::vector<int> ks = {1, 2, 4, 8, 16};

  mgs::simt::Device dev(0, spec);
  auto in = dev.alloc<int>(n * g);
  auto out = dev.alloc<int>(n * g);
  const auto r = mc::autotune_k(ks, [&](int k) {
    auto p = plan;
    p.s13.k = k;
    return mc::scan_sp<int>(dev, in, out, n, g, p, mc::ScanKind::kInclusive)
        .seconds;
  });
  EXPECT_NE(std::find(ks.begin(), ks.end(), r.best_k), ks.end())
      << "winner not from the candidate set";
  for (const auto& [k, s] : r.tried) EXPECT_GT(s, 0.0) << "K=" << k;
  // The winner is no slower than the extremes of the space.
  EXPECT_LE(r.best_seconds, r.tried.front().second);
  EXPECT_LE(r.best_seconds, r.tried.back().second);
}

TEST(Autotune, RejectsEmptyCandidates) {
  EXPECT_THROW(mc::autotune_k({}, [](int) { return 1.0; }),
               mgs::util::Error);
}
