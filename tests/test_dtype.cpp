// Tests for the dtype/op-erased executor surface: every (DType, OpTag)
// cell of the dispatch matrix against the serial reference, bit-identity
// of the erased i32/plus path with the pre-refactor free function,
// plan-cache key separation by (dtype, op, segmented), f64/plus and
// i32/max through all five proposals with cache hits on repeat, exclusive
// segmented f64 scans with empty segments through the unified path, and
// degraded-mode re-planning for an f32 workload.
//
// Data magnitudes are kept small (|x| <= 6) so floating-point scans are
// exact under any association order the kernels choose -- every
// comparison here is EXPECT_EQ, no tolerances.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "mgs/baselines/reference.hpp"
#include "mgs/core/api.hpp"
#include "mgs/core/scan_sp.hpp"
#include "mgs/sim/fault.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace ms = mgs::sim;
namespace mt = mgs::topo;
using mgs::baselines::reference_batch_scan;
using mgs::baselines::reference_segmented_scan;

namespace {

constexpr std::int64_t kN = 1 << 12;
constexpr std::int64_t kG = 4;

/// Small-magnitude inputs: partial sums stay exactly representable in
/// f32/f64, so scans are association-independent for every dtype.
template <typename T>
std::vector<T> small_data(std::size_t count, std::uint64_t seed) {
  const auto raw = mgs::util::random_i32(count, seed);
  std::vector<T> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = static_cast<T>(raw[i] % 7);
  }
  return out;
}

/// Run one (T, Op) cell of the matrix through the erased Scan-SP path and
/// compare both scan kinds against the serial reference.
template <typename T, typename Op>
void expect_cell_matches_reference(mc::OpTag op_tag) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);
  mc::ExecutorParams p;
  p.dtype = *mc::dtype_of_v<T>;
  p.op = op_tag;
  auto ex = mc::make_executor("Scan-SP", ctx, p);
  ex->prepare(kN, kG);
  EXPECT_EQ(ex->dtype(), p.dtype);
  EXPECT_EQ(ex->op(), op_tag);

  const auto data = small_data<T>(static_cast<std::size_t>(kN * kG), 29);
  std::vector<T> got(data.size());
  for (const auto kind :
       {mc::ScanKind::kInclusive, mc::ScanKind::kExclusive}) {
    ex->run(std::span<const T>(data), std::span<T>(got), kind);
    EXPECT_EQ(got, (reference_batch_scan<T, Op>(data, kN, kG, kind)))
        << mc::to_string(p.dtype) << "/" << mc::to_string(op_tag) << " "
        << mc::to_string(kind);
  }
}

template <typename T>
void expect_row_matches_reference() {
  expect_cell_matches_reference<T, mc::Plus<T>>(mc::OpTag::kPlus);
  expect_cell_matches_reference<T, mc::Max<T>>(mc::OpTag::kMax);
  expect_cell_matches_reference<T, mc::Min<T>>(mc::OpTag::kMin);
}

}  // namespace

// ------------------------------------------------------------- the matrix

TEST(DTypeMatrix, I32RowMatchesReference) {
  expect_row_matches_reference<std::int32_t>();
}

TEST(DTypeMatrix, I64RowMatchesReference) {
  expect_row_matches_reference<std::int64_t>();
}

TEST(DTypeMatrix, U32RowMatchesReference) {
  expect_row_matches_reference<std::uint32_t>();
}

TEST(DTypeMatrix, F32RowMatchesReference) {
  expect_row_matches_reference<float>();
}

TEST(DTypeMatrix, F64RowMatchesReference) {
  expect_row_matches_reference<double>();
}

// The erased i32/plus path is the pre-refactor path: same kernels, same
// plan, bit-identical output and identical modeled time as the free
// function.
TEST(DTypeMatrix, ErasedI32PlusBitIdenticalToFreeFunction) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 31);

  auto ex = mc::make_executor("Scan-SP", ctx);
  ex->prepare(kN, kG);
  std::vector<std::int32_t> got(data.size());
  const auto r = ex->run(
      mc::ConstTypedSpan::of(std::span<const std::int32_t>(data)),
      mc::TypedSpan::of(std::span<std::int32_t>(got)),
      mc::ScanKind::kInclusive);

  auto legacy_cluster = mt::tsubame_kfc_cluster(1);
  auto& dev = legacy_cluster.device(0);
  auto in = dev.alloc<std::int32_t>(kN * kG);
  auto out = dev.alloc<std::int32_t>(kN * kG);
  std::copy(data.begin(), data.end(), in.host_span().begin());
  const auto rl = mc::scan_sp<std::int32_t>(dev, in, out, kN, kG,
                                            ctx.plan_for(kN, kG),
                                            mc::ScanKind::kInclusive);
  const std::vector<std::int32_t> want(out.host_span().begin(),
                                       out.host_span().end());

  EXPECT_EQ(got, want);
  EXPECT_EQ(r.seconds, rl.seconds);
}

// A wrongly-routed buffer can never be silently reinterpreted: the erased
// carriers type-check at the boundary.
TEST(DTypeMatrix, MismatchedSpanDtypeThrows) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);
  auto ex = mc::make_executor("Scan-SP", ctx);  // i32/plus
  ex->prepare(kN, 1);
  std::vector<float> fdata(static_cast<std::size_t>(kN), 1.0F);
  std::vector<float> fout(fdata.size());
  EXPECT_THROW(
      ex->run(mc::ConstTypedSpan::of(std::span<const float>(fdata)),
              mc::TypedSpan::of(std::span<float>(fout)),
              mc::ScanKind::kInclusive),
      mgs::util::Error);
}

// ------------------------------------------------------------- plan cache

TEST(DTypePlanCache, KeysSeparateDtypeOpAndSegmented) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);

  ctx.plan_for(kN, kG, mc::DType::kI32, mc::OpTag::kPlus);
  EXPECT_EQ(ctx.plan_cache_size(), 1u);

  // A wider element re-plans (the memory-bound K space changes).
  ctx.plan_for(kN, kG, mc::DType::kF64, mc::OpTag::kPlus);
  EXPECT_EQ(ctx.plan_cache_size(), 2u);

  // The operator participates in the key.
  ctx.plan_for(kN, kG, mc::DType::kI32, mc::OpTag::kMax);
  EXPECT_EQ(ctx.plan_cache_size(), 3u);

  // The packed segmented representation is its own key too.
  ctx.plan_for(kN, kG, mc::DType::kI32, mc::OpTag::kPlus,
               /*gpus_per_problem=*/1, /*segmented=*/true);
  EXPECT_EQ(ctx.plan_cache_size(), 4u);

  // Re-asking for any of them is a hit, never a re-derivation.
  const auto misses = ctx.plan_cache_misses();
  ctx.plan_for(kN, kG, mc::DType::kF64, mc::OpTag::kPlus);
  ctx.plan_for(kN, kG, mc::DType::kI32, mc::OpTag::kMax);
  EXPECT_EQ(ctx.plan_cache_misses(), misses);
  EXPECT_GE(ctx.plan_cache_hits(), 2u);
}

TEST(DTypePlanCache, ElemBytesDerivesFromDtypeAndSegmented) {
  mc::PlanKey k;
  k.dtype = mc::DType::kI32;
  EXPECT_EQ(k.elem_bytes(), 4);
  k.dtype = mc::DType::kF64;
  EXPECT_EQ(k.elem_bytes(), 8);
  k.segmented = true;  // SegPair<double> packs value + flag
  EXPECT_EQ(k.elem_bytes(), 16);
  k.dtype = mc::DType::kU32;
  EXPECT_EQ(k.elem_bytes(), 8);
}

// --------------------------------------------- all five proposals, erased

namespace {

struct ProposalConfig {
  const char* name;
  mc::ExecutorParams params;
};

std::vector<ProposalConfig> five_proposals() {
  return {
      {"Scan-SP", {}},
      {"Scan-MPS", {.w = 4}},
      {"Scan-MPS-direct", {.w = 4}},
      {"Scan-MP-PC", {.y = 2, .v = 4}},
      {"Scan-MPS-multinode", {.w = 8, .m = 2}},
  };
}

/// Run a proposal twice over (T, Op) through the erased path: output must
/// match the reference both times, the modeled time must be identical run
/// to run, and the second executor's prepare must hit the plan cache.
template <typename T, typename Op>
void expect_proposal_erased_run(const ProposalConfig& cfg, mc::OpTag op_tag) {
  auto cluster = mt::tsubame_kfc_cluster(2);
  mc::ScanContext ctx(cluster);
  mc::ExecutorParams p = cfg.params;
  p.dtype = *mc::dtype_of_v<T>;
  p.op = op_tag;

  const auto data = small_data<T>(static_cast<std::size_t>(kN * kG), 37);
  const auto want =
      reference_batch_scan<T, Op>(data, kN, kG, mc::ScanKind::kInclusive);

  auto ex = mc::make_executor(cfg.name, ctx, p);
  ex->prepare(kN, kG);
  std::vector<T> out1(data.size()), out2(data.size());
  const auto r1 = ex->run(std::span<const T>(data), std::span<T>(out1),
                          mc::ScanKind::kInclusive);
  const auto r2 = ex->run(std::span<const T>(data), std::span<T>(out2),
                          mc::ScanKind::kInclusive);
  EXPECT_EQ(out1, want) << cfg.name;
  EXPECT_EQ(out2, want) << cfg.name;
  EXPECT_EQ(r1.seconds, r2.seconds) << cfg.name;

  // A fresh executor over the same (shape, dtype, op) hits the cache.
  const auto misses = ctx.plan_cache_misses();
  auto ex2 = mc::make_executor(cfg.name, ctx, p);
  ex2->prepare(kN, kG);
  EXPECT_EQ(ctx.plan_cache_misses(), misses) << cfg.name;
  EXPECT_GE(ctx.plan_cache_hits(), 1u) << cfg.name;
}

}  // namespace

TEST(DTypeProposals, F64PlusThroughAllFive) {
  for (const auto& cfg : five_proposals()) {
    expect_proposal_erased_run<double, mc::Plus<double>>(cfg,
                                                         mc::OpTag::kPlus);
  }
}

TEST(DTypeProposals, I32MaxThroughAllFive) {
  for (const auto& cfg : five_proposals()) {
    expect_proposal_erased_run<std::int32_t, mc::Max<std::int32_t>>(
        cfg, mc::OpTag::kMax);
  }
}

// ------------------------------------------------------ segmented, unified

namespace {

/// Per-sequence segmented oracle over a batch, both kinds, derived from
/// the serial segmented reference (exclusive: a head yields the identity,
/// everything else the inclusive value of its left neighbor).
template <typename T, typename Op>
std::vector<T> segmented_oracle(std::span<const T> values,
                                std::span<const T> flags, std::int64_t n,
                                std::int64_t g, mc::ScanKind kind) {
  std::vector<T> out(values.size());
  for (std::int64_t p = 0; p < g; ++p) {
    const auto off = static_cast<std::size_t>(p * n);
    const auto vs = values.subspan(off, static_cast<std::size_t>(n));
    const auto fs = flags.subspan(off, static_cast<std::size_t>(n));
    const auto incl = reference_segmented_scan<T, Op>(vs, fs);
    for (std::int64_t i = 0; i < n; ++i) {
      const auto j = static_cast<std::size_t>(i);
      if (kind == mc::ScanKind::kInclusive) {
        out[off + j] = incl[j];
      } else {
        const bool head = i == 0 || fs[j] != T{0};
        out[off + j] = head ? Op::identity() : incl[j - 1];
      }
    }
  }
  return out;
}

}  // namespace

TEST(SegmentedDType, F64ExclusiveWithEmptySegments) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);
  const std::int64_t n = 1 << 10;
  const std::int64_t g = 2;

  auto values = small_data<double>(static_cast<std::size_t>(n * g), 41);
  std::vector<double> flags(values.size(), 0.0);
  // Scattered heads, including adjacent flags (length-1 segments back to
  // back -- the "empty segment" degenerate case), a redundant flag on the
  // implicit head at the start of a sequence, and one on the last element.
  for (const std::size_t i : {std::size_t{0}, std::size_t{5}, std::size_t{6},
                              std::size_t{7}, std::size_t{100},
                              std::size_t{1023}, std::size_t{1024 + 512},
                              std::size_t{1024 + 513}, std::size_t{2047}}) {
    flags[i] = 1.0;
  }

  mc::SegmentedScan<double> seg(ctx);
  seg.prepare(n, g);
  std::vector<double> got(values.size());
  for (const auto kind :
       {mc::ScanKind::kInclusive, mc::ScanKind::kExclusive}) {
    seg.run(values, flags, got, kind);
    EXPECT_EQ(got, (segmented_oracle<double, mc::Plus<double>>(
                       values, flags, n, g, kind)))
        << mc::to_string(kind);
  }

  // The packed plan is keyed (f64, plus, segmented) in the shared cache.
  const auto misses = ctx.plan_cache_misses();
  ctx.plan_for(n, g, mc::DType::kF64, mc::OpTag::kPlus,
               /*gpus_per_problem=*/1, /*segmented=*/true);
  EXPECT_EQ(ctx.plan_cache_misses(), misses);
  EXPECT_GE(ctx.plan_cache_hits(), 1u);
}

TEST(SegmentedDType, I64MaxBatchThroughScanMps) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);
  const std::int64_t n = 1 << 10;
  const std::int64_t g = 8;

  auto values = small_data<std::int64_t>(static_cast<std::size_t>(n * g), 43);
  std::vector<std::int64_t> flags(values.size(), 0);
  for (std::size_t i = 13; i < flags.size(); i += 97) flags[i] = 1;

  mc::SegmentedScan<std::int64_t, mc::Max<std::int64_t>> seg(
      ctx, "Scan-MPS", {.w = 4});
  seg.prepare(n, g);
  std::vector<std::int64_t> got(values.size());
  seg.run(values, flags, got, mc::ScanKind::kInclusive);
  EXPECT_EQ(got, (segmented_oracle<std::int64_t, mc::Max<std::int64_t>>(
                     values, flags, n, g, mc::ScanKind::kInclusive)));
  EXPECT_TRUE(seg.executor().segmented());
  EXPECT_EQ(seg.executor().dtype(), mc::DType::kI64);
  EXPECT_EQ(seg.executor().op(), mc::OpTag::kMax);
}

// ---------------------------------------------------------- degraded mode

TEST(DTypeDegraded, F32ScanMpsReplansAroundDeadDevice) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  ms::FaultInjector fi{ms::FaultPlan{}};
  cluster.set_fault_injector(&fi);
  mc::ScanContext ctx(cluster);

  mc::ExecutorParams p;
  p.w = 8;
  p.dtype = mc::DType::kF32;
  auto ex = mc::make_executor("Scan-MPS", ctx, p);
  ex->prepare(kN, kG);

  const auto data = small_data<float>(static_cast<std::size_t>(kN * kG), 47);
  const auto want =
      reference_batch_scan<float>(data, kN, kG, mc::ScanKind::kInclusive);
  std::vector<float> out(data.size());

  const auto healthy = ex->run(std::span<const float>(data),
                               std::span<float>(out),
                               mc::ScanKind::kInclusive);
  EXPECT_EQ(out, want);
  EXPECT_FALSE(healthy.faults.degraded);

  fi.mark_device_down(7);
  std::fill(out.begin(), out.end(), 0.0F);
  const auto degraded = ex->run(std::span<const float>(data),
                                std::span<float>(out),
                                mc::ScanKind::kInclusive);
  EXPECT_EQ(out, want);
  EXPECT_TRUE(degraded.faults.degraded);
  EXPECT_EQ(degraded.faults.excluded_devices, std::vector<int>{7});
}
