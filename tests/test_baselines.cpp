// Tests for the baseline-library models: each one's scan must be
// bit-correct against the serial reference (they are real algorithm
// implementations), and their modeled costs must respect the relations
// the paper reports (CUB near peak; Thrust well below; per-call overheads
// ordered LightScan > ModernGPU > Thrust > CUDPP > CUB).

#include <gtest/gtest.h>

#include "mgs/baselines/cub.hpp"
#include "mgs/baselines/cudpp.hpp"
#include "mgs/baselines/lightscan.hpp"
#include "mgs/baselines/moderngpu.hpp"
#include "mgs/baselines/reference.hpp"
#include "mgs/baselines/registry.hpp"
#include "mgs/baselines/thrust.hpp"
#include "mgs/util/random.hpp"

namespace mb = mgs::baselines;
namespace mc = mgs::core;
namespace st = mgs::simt;

namespace {

st::Device make_device() { return st::Device(0, mgs::sim::k80_spec()); }

struct NamedCase {
  std::string baseline;
  std::int64_t n;
  std::int64_t g;
  mc::ScanKind kind;
};

void check_batch(const NamedCase& c) {
  auto dev = make_device();
  const auto& runner = mb::baseline_by_name(c.baseline);
  const auto data = mgs::util::random_i32(
      static_cast<std::size_t>(c.n * c.g),
      static_cast<std::uint64_t>(c.n * 31 + c.g));
  auto in = dev.alloc<std::int32_t>(c.n * c.g);
  auto out = dev.alloc<std::int32_t>(c.n * c.g);
  std::copy(data.begin(), data.end(), in.host_span().begin());

  const auto r = runner.run_batch(dev, in, out, c.n, c.g, c.kind);
  EXPECT_GT(r.seconds, 0.0);

  const auto want = mb::reference_batch_scan<std::int32_t>(data, c.n, c.g, c.kind);
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(out.host_span()[i], want[i])
        << c.baseline << " n=" << c.n << " g=" << c.g << " i=" << i;
  }
}

}  // namespace

class BaselineSweep : public ::testing::TestWithParam<NamedCase> {};

TEST_P(BaselineSweep, BatchMatchesReference) { check_batch(GetParam()); }

INSTANTIATE_TEST_SUITE_P(
    AllLibraries, BaselineSweep,
    ::testing::Values(
        NamedCase{"CUDPP", 1 << 14, 1, mc::ScanKind::kInclusive},
        NamedCase{"CUDPP", 1 << 14, 4, mc::ScanKind::kExclusive},
        NamedCase{"CUDPP", 10000, 3, mc::ScanKind::kInclusive},
        NamedCase{"CUDPP", 1 << 18, 1, mc::ScanKind::kExclusive},  // recursion
        NamedCase{"Thrust", 1 << 14, 1, mc::ScanKind::kInclusive},
        NamedCase{"Thrust", 5000, 4, mc::ScanKind::kExclusive},
        NamedCase{"ModernGPU", 1 << 15, 2, mc::ScanKind::kInclusive},
        NamedCase{"ModernGPU", 9999, 2, mc::ScanKind::kExclusive},
        NamedCase{"CUB", 1 << 16, 1, mc::ScanKind::kInclusive},
        NamedCase{"CUB", 1 << 13, 8, mc::ScanKind::kExclusive},
        NamedCase{"CUB", 7777, 3, mc::ScanKind::kInclusive},
        NamedCase{"LightScan", 1 << 16, 1, mc::ScanKind::kInclusive},
        NamedCase{"LightScan", 1 << 12, 6, mc::ScanKind::kExclusive},
        NamedCase{"LightScan", 31415, 2, mc::ScanKind::kInclusive},
        // Single-tile and tile-boundary edges for every algorithm.
        NamedCase{"CUDPP", 2048, 1, mc::ScanKind::kExclusive},
        NamedCase{"CUDPP", 2049, 1, mc::ScanKind::kInclusive},
        NamedCase{"Thrust", 1024, 1, mc::ScanKind::kInclusive},
        NamedCase{"Thrust", 1025, 1, mc::ScanKind::kExclusive},
        NamedCase{"ModernGPU", 4096, 1, mc::ScanKind::kExclusive},
        NamedCase{"CUB", 2048, 1, mc::ScanKind::kInclusive},
        NamedCase{"CUB", 2049, 1, mc::ScanKind::kExclusive},
        NamedCase{"LightScan", 4097, 1, mc::ScanKind::kInclusive},
        NamedCase{"LightScan", 1, 1, mc::ScanKind::kExclusive}),
    [](const ::testing::TestParamInfo<NamedCase>& info) {
      return info.param.baseline + "_n" + std::to_string(info.param.n) + "_g" +
             std::to_string(info.param.g) + "_" +
             (info.param.kind == mc::ScanKind::kInclusive ? "inc" : "exc");
    });

TEST(BaselineRegistry, FiveLibrariesRegistered) {
  const auto& all = mb::all_baselines();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].traits.name, "CUDPP");
  EXPECT_TRUE(all[0].traits.native_batch);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_FALSE(all[i].traits.native_batch);
  }
  EXPECT_THROW(mb::baseline_by_name("nccl"), mgs::util::Error);
}

TEST(BaselinePerf, PerCallOverheadOrdering) {
  // The paper's Figure 12 extremes imply the tight-loop per-invocation
  // cost order (call + loop churn): LightScan worst, CUB best.
  const auto loop_cost = [](const mb::BaselineTraits& t) {
    return t.per_call_overhead_us + t.loop_extra_us;
  };
  EXPECT_GT(loop_cost(mb::lightscan_traits()),
            loop_cost(mb::moderngpu_traits()));
  EXPECT_GT(loop_cost(mb::moderngpu_traits()), loop_cost(mb::thrust_traits()));
  EXPECT_GT(loop_cost(mb::thrust_traits()), loop_cost(mb::cudpp_traits()));
  EXPECT_GT(loop_cost(mb::cudpp_traits()), loop_cost(mb::cub_traits()));
  // A single cold call, by contrast, is moderate for everyone (Figure 11's
  // G=1 world): within ~4x of CUB's.
  for (const auto& t : {mb::thrust_traits(), mb::moderngpu_traits(),
                        mb::lightscan_traits(), mb::cudpp_traits()}) {
    EXPECT_LE(t.per_call_overhead_us,
              4 * mb::cub_traits().per_call_overhead_us);
  }
}

TEST(BaselinePerf, LoopChurnOnlyChargedBetweenCalls) {
  // One invocation (G=1) must not pay the loop penalty.
  const std::int64_t n = 1 << 12;
  auto d1 = make_device();
  auto in1 = d1.alloc<std::int32_t>(n);
  auto out1 = d1.alloc<std::int32_t>(n);
  const auto single = mb::baseline_by_name("ModernGPU")
                          .run_batch(d1, in1, out1, n, 1,
                                     mc::ScanKind::kInclusive);
  EXPECT_EQ(single.breakdown.get("HostLoopChurn"), 0.0);

  auto d2 = make_device();
  auto in2 = d2.alloc<std::int32_t>(4 * n);
  auto out2 = d2.alloc<std::int32_t>(4 * n);
  const auto batch = mb::baseline_by_name("ModernGPU")
                         .run_batch(d2, in2, out2, n, 4,
                                    mc::ScanKind::kInclusive);
  EXPECT_NEAR(batch.breakdown.get("HostLoopChurn"),
              3 * mb::moderngpu_traits().loop_extra_us * 1e-6, 1e-12);
}

TEST(BaselinePerf, CubIsFastestSingleGpuAtLargeN) {
  // "CUB already runs at nearly the maximum theoretical rate" -- at large
  // N, CUB must beat every other library model on one GPU.
  const std::int64_t n = 1 << 22;
  double cub_time = 0.0;
  for (const auto& b : mb::all_baselines()) {
    auto dev = make_device();
    auto in = dev.alloc<std::int32_t>(n);
    auto out = dev.alloc<std::int32_t>(n);
    const auto r = b.run_batch(dev, in, out, n, 1, mc::ScanKind::kInclusive);
    if (b.traits.name == "CUB") {
      cub_time = r.seconds;
    }
  }
  ASSERT_GT(cub_time, 0.0);
  for (const auto& b : mb::all_baselines()) {
    if (b.traits.name == "CUB") continue;
    auto dev = make_device();
    auto in = dev.alloc<std::int32_t>(n);
    auto out = dev.alloc<std::int32_t>(n);
    const auto r = b.run_batch(dev, in, out, n, 1, mc::ScanKind::kInclusive);
    EXPECT_GT(r.seconds, cub_time) << b.traits.name;
  }
}

TEST(BaselinePerf, ThrustFarBelowCubAtLargeN) {
  // Figure 11: our proposal is ~1.04x vs CUB but 7.8x vs Thrust, so the
  // Thrust model must be several times slower than CUB.
  const std::int64_t n = 1 << 22;
  auto d1 = make_device();
  auto in1 = d1.alloc<std::int32_t>(n);
  auto out1 = d1.alloc<std::int32_t>(n);
  const auto cub = mb::cub_scan<std::int32_t>(d1, in1, out1, 0, n,
                                              mc::ScanKind::kInclusive);
  auto d2 = make_device();
  auto in2 = d2.alloc<std::int32_t>(n);
  auto out2 = d2.alloc<std::int32_t>(n);
  const auto thrust = mb::thrust_scan<std::int32_t>(d2, in2, out2, 0, n,
                                                    mc::ScanKind::kInclusive);
  EXPECT_GT(thrust.seconds / cub.seconds, 4.0);
  EXPECT_LT(thrust.seconds / cub.seconds, 12.0);
}

TEST(BaselinePerf, CudppMultiscanBeatsPerProblemInvocationAtLargeG) {
  // CUDPP amortizes one invocation over G problems; a per-problem library
  // with comparable kernels (ModernGPU) must lose badly at large G.
  const std::int64_t n = 1 << 12;
  const std::int64_t g = 256;
  auto d1 = make_device();
  auto in1 = d1.alloc<std::int32_t>(n * g);
  auto out1 = d1.alloc<std::int32_t>(n * g);
  const auto cudpp = mb::baseline_by_name("CUDPP").run_batch(
      d1, in1, out1, n, g, mc::ScanKind::kInclusive);
  auto d2 = make_device();
  auto in2 = d2.alloc<std::int32_t>(n * g);
  auto out2 = d2.alloc<std::int32_t>(n * g);
  const auto mgpu = mb::baseline_by_name("ModernGPU").run_batch(
      d2, in2, out2, n, g, mc::ScanKind::kInclusive);
  EXPECT_GT(mgpu.seconds / cudpp.seconds, 5.0);
}

TEST(BaselinePerf, LightScanChainPenaltyGrowsWithBlocks) {
  auto d1 = make_device();
  const std::int64_t small_n = 1 << 14;
  auto in1 = d1.alloc<std::int32_t>(small_n);
  auto out1 = d1.alloc<std::int32_t>(small_n);
  const auto small = mb::lightscan_scan<std::int32_t>(
      d1, in1, out1, 0, small_n, mc::ScanKind::kInclusive);
  auto d2 = make_device();
  const std::int64_t big_n = 1 << 20;
  auto in2 = d2.alloc<std::int32_t>(big_n);
  auto out2 = d2.alloc<std::int32_t>(big_n);
  const auto big = mb::lightscan_scan<std::int32_t>(
      d2, in2, out2, 0, big_n, mc::ScanKind::kInclusive);
  EXPECT_GT(big.breakdown.get("lightscan_chain"),
            small.breakdown.get("lightscan_chain"));
}

TEST(Baselines, OffsetInvocationScansSubrangeOnly) {
  // Per-problem invocation must not touch neighbouring problems.
  auto dev = make_device();
  const std::int64_t n = 4096;
  auto in = dev.alloc<std::int32_t>(3 * n);
  auto out = dev.alloc<std::int32_t>(3 * n);
  for (std::int64_t i = 0; i < 3 * n; ++i) {
    in.host_span()[static_cast<std::size_t>(i)] = 1;
    out.host_span()[static_cast<std::size_t>(i)] = -77;
  }
  mb::cub_scan<std::int32_t>(dev, in, out, n, n, mc::ScanKind::kInclusive);
  EXPECT_EQ(out.host_span()[static_cast<std::size_t>(n - 1)], -77);
  EXPECT_EQ(out.host_span()[static_cast<std::size_t>(n)], 1);
  EXPECT_EQ(out.host_span()[static_cast<std::size_t>(2 * n - 1)],
            static_cast<std::int32_t>(n));
  EXPECT_EQ(out.host_span()[static_cast<std::size_t>(2 * n)], -77);
}
