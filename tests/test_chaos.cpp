// Tests for the deterministic chaos harness (mgs::chaos): the seeded
// scenario sampler, the spec-line round trip, the invariant checker and
// the greedy shrinker. The harness itself is what guards the executors;
// these tests guard the harness -- above all its determinism, since a
// repro line is only useful if it replays identically everywhere.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "mgs/chaos/chaos.hpp"
#include "mgs/util/check.hpp"

namespace ch = mgs::chaos;

TEST(ChaosSampler, IsDeterministicAndAddressable) {
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(ch::sample_scenario(7, i), ch::sample_scenario(7, i)) << i;
  }
  // Addressable: scenario i does not depend on scenarios 0..i-1 having
  // been sampled, so campaigns can be replayed per-index.
  const auto direct = ch::sample_scenario(7, 17);
  for (int i = 0; i < 17; ++i) ch::sample_scenario(7, i);
  EXPECT_EQ(ch::sample_scenario(7, 17), direct);
}

TEST(ChaosSampler, VariesAcrossIndexAndSeed) {
  std::set<std::string> lines;
  for (int i = 0; i < 64; ++i) {
    lines.insert(ch::to_string(ch::sample_scenario(7, i)));
  }
  // Far more distinct scenarios than could happen by collision.
  EXPECT_GT(lines.size(), 48u);
  EXPECT_NE(ch::to_string(ch::sample_scenario(7, 0)),
            ch::to_string(ch::sample_scenario(8, 0)));
}

TEST(ChaosSampler, CoversEveryProposalAndFaultedness) {
  std::set<std::string> executors;
  int faulted = 0;
  for (int i = 0; i < 200; ++i) {
    const auto s = ch::sample_scenario(20260808, i);
    executors.insert(s.executor);
    if (!s.faults.empty()) ++faulted;
  }
  EXPECT_EQ(executors.size(), 5u);  // all five proposals get sampled
  EXPECT_GT(faulted, 50);
  EXPECT_LT(faulted, 200);  // and healthy runs stay in the mix
}

TEST(ChaosSampler, CoversSegmentedAndPlainScans) {
  int segmented = 0;
  for (int i = 0; i < 200; ++i) {
    if (ch::sample_scenario(20260808, i).segmented) ++segmented;
  }
  // ~1/8 of draws route through the SegmentedScan wrapper; plain scans
  // must stay the bulk of the campaign.
  EXPECT_GT(segmented, 5);
  EXPECT_LT(segmented, 100);
}

TEST(ChaosScenario, SegmentedRoundTripsAndDefaultsToFalse) {
  ch::Scenario s;
  s.segmented = true;
  s.faults = "straggler:dev=1,factor=4";
  const auto line = ch::to_string(s);
  // seg precedes faults: the faults value may embed ';' and '='.
  EXPECT_LT(line.find("seg=1"), line.find("faults="));
  EXPECT_EQ(ch::parse_scenario(line), s);
  // Pre-segmented repro lines (no seg key) still parse, as plain scans.
  ch::Scenario plain;
  EXPECT_FALSE(ch::parse_scenario(ch::to_string(plain)).segmented);
}

TEST(ChaosScenario, SpecLineRoundTrips) {
  for (int i = 0; i < 50; ++i) {
    const auto s = ch::sample_scenario(42, i);
    const auto line = ch::to_string(s);
    EXPECT_EQ(ch::parse_scenario(line), s) << line;
    EXPECT_EQ(ch::to_string(ch::parse_scenario(line)), line);
  }
}

TEST(ChaosScenario, FaultSpecSurvivesEmbeddedSeparators) {
  ch::Scenario s;
  s.faults = "device-down:dev=1,at=1e-06;straggler:dev=2,factor=4";
  const auto r = ch::parse_scenario(ch::to_string(s));
  EXPECT_EQ(r.faults, s.faults);
  EXPECT_EQ(r, s);
}

TEST(ChaosScenario, RejectsMalformedLines) {
  EXPECT_THROW(ch::parse_scenario("exec=Scan-MPS;bogus=1"),
               mgs::util::Error);
  EXPECT_THROW(ch::parse_scenario("n=abc"), mgs::util::Error);
  EXPECT_THROW(ch::parse_scenario("n=12junk"), mgs::util::Error);
  EXPECT_THROW(ch::parse_scenario("n=0"), mgs::util::Error);
  EXPECT_THROW(ch::parse_scenario("dtype=i7"), mgs::util::Error);
  EXPECT_THROW(ch::parse_scenario("exec=Scan-XX"), mgs::util::Error);
}

TEST(ChaosShrink, ReducesToMinimalFailingScenario) {
  // A deliberately heavyweight scenario; the synthetic predicate "fails"
  // whenever a device-down event is present, so the shrinker should strip
  // everything else away.
  ch::Scenario big;
  big.executor = "Scan-MPS";
  big.w = 8;
  big.n = 65536;
  big.g = 8;
  big.dtype = mgs::core::DType::kF64;
  big.op = mgs::core::OpTag::kMax;
  big.kind = mgs::core::ScanKind::kExclusive;
  big.pipeline = mgs::core::PipelineMode::kOverlap;
  big.waves = 4;
  big.faults = "device-down:dev=3;straggler:dev=1,factor=4";
  const auto fails = [](const ch::Scenario& s) {
    return s.faults.find("device-down") != std::string::npos;
  };
  ASSERT_TRUE(fails(big));
  const auto small = ch::shrink(big, fails);
  EXPECT_TRUE(fails(small));  // shrinking never loses the failure
  EXPECT_EQ(small.faults, "device-down:dev=3");
  EXPECT_EQ(small.n, 256);
  EXPECT_EQ(small.g, 1);
  EXPECT_EQ(small.w, 2);
  EXPECT_EQ(small.dtype, mgs::core::DType::kI32);
  EXPECT_EQ(small.op, mgs::core::OpTag::kPlus);
  EXPECT_EQ(small.kind, mgs::core::ScanKind::kInclusive);
  EXPECT_EQ(small.pipeline, mgs::core::PipelineMode::kSync);
  EXPECT_EQ(small.waves, 0);
}

TEST(ChaosShrink, PassingScenarioShrinksToItself) {
  const auto s = ch::sample_scenario(9, 3);
  const auto fails = [](const ch::Scenario&) { return false; };
  EXPECT_EQ(ch::shrink(s, fails), s);
}

TEST(ChaosCheck, HealthyAndFaultedScenariosHoldEveryInvariant) {
  // One healthy and one faulted hand-built scenario through the real
  // checker (reference match, telescoping, report consistency,
  // determinism, span accounting).
  ch::Scenario healthy;
  healthy.executor = "Scan-MPS";
  healthy.w = 4;
  healthy.n = 1024;
  healthy.g = 2;
  EXPECT_EQ(ch::check_scenario(healthy), std::nullopt);

  ch::Scenario faulted = healthy;
  faulted.faults = "device-down:dev=1,at=1e-09";
  EXPECT_EQ(ch::check_scenario(faulted), std::nullopt);
}

TEST(ChaosCheck, SegmentedScenariosHoldEveryInvariant) {
  // The SegmentedScan wrapper path: healthy on two proposals and under
  // an injected straggler -- reference match here exercises the inline
  // serial segmented reference against the packed SegPair executors.
  ch::Scenario seg;
  seg.executor = "Scan-MPS";
  seg.w = 4;
  seg.n = 1024;
  seg.g = 2;
  seg.segmented = true;
  EXPECT_EQ(ch::check_scenario(seg), std::nullopt);

  seg.kind = mgs::core::ScanKind::kExclusive;
  EXPECT_EQ(ch::check_scenario(seg), std::nullopt);

  ch::Scenario sp = seg;
  sp.executor = "Scan-SP";
  sp.w = 0;
  EXPECT_EQ(ch::check_scenario(sp), std::nullopt);

  ch::Scenario faulted = seg;
  faulted.faults = "straggler:dev=1,factor=4";
  EXPECT_EQ(ch::check_scenario(faulted), std::nullopt);
}

TEST(ChaosShrink, DropsSegmentedWrapperWhenPlainScanStillFails) {
  ch::Scenario s;
  s.segmented = true;
  s.faults = "device-down:dev=3";
  const auto fails = [](const ch::Scenario& c) {
    return c.faults.find("device-down") != std::string::npos;
  };
  const auto small = ch::shrink(s, fails);
  EXPECT_FALSE(small.segmented);
}

TEST(ChaosCampaign, SmallSeededCampaignIsCleanAndAccountedFor) {
  const auto r = ch::run_campaign(20260808, 40);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.total, 40);
  EXPECT_EQ(r.healthy + r.faulted, 40);
  EXPECT_GT(r.faulted, 0);
  EXPECT_EQ(r.rejected, 0);
  EXPECT_TRUE(r.violations.empty());
}
