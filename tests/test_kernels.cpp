// Direct unit tests of the three kernels (core/kernels.hpp): auxiliary
// array contents after Stage 1, in-place exclusive row scans in Stage 2
// (both layouts), carry application in Stage 3, and the single-kernel
// direct path. These pin down the stage contracts the proposals rely on.

#include <gtest/gtest.h>

#include <numeric>

#include "mgs/baselines/reference.hpp"
#include "mgs/core/kernels.hpp"
#include "mgs/core/tuning.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace st = mgs::simt;
using mgs::core::Plus;
using mgs::core::ScanKind;

namespace {

st::Device make_device() { return st::Device(0, mgs::sim::k80_spec()); }

mc::ScanPlan paper_plan(int k) {
  auto plan = mc::derive_spl(mgs::sim::k80_spec(), 4).plan;
  plan.s13.k = k;
  return plan;
}

}  // namespace

TEST(ChunkReduce, AuxHoldsPerChunkTotals) {
  auto dev = make_device();
  const auto plan = paper_plan(2);
  const std::int64_t n = 3 * plan.s13.chunk() + 100;  // partial last chunk
  const std::int64_t g = 2;
  const auto lay = mc::make_layout(n, g, plan.s13);
  EXPECT_EQ(lay.bx, 4);

  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n * g), 1);
  auto in = dev.alloc<int>(n * g);
  auto aux = dev.alloc<int>(lay.aux_elems());
  std::copy(data.begin(), data.end(), in.host_span().begin());

  const auto t = mc::launch_chunk_reduce(dev, in, aux, lay, plan.s13,
                                         Plus<int>{});
  EXPECT_GT(t.seconds, 0.0);
  for (std::int64_t p = 0; p < g; ++p) {
    for (std::int64_t c = 0; c < lay.bx; ++c) {
      const std::int64_t lo = p * n + c * lay.chunk;
      const std::int64_t hi = p * n + std::min(n, (c + 1) * lay.chunk);
      const int want = std::accumulate(
          data.begin() + static_cast<std::ptrdiff_t>(lo),
          data.begin() + static_cast<std::ptrdiff_t>(hi), 0);
      ASSERT_EQ(aux.host_span()[static_cast<std::size_t>(p * lay.bx + c)],
                want)
          << "p=" << p << " c=" << c;
    }
  }
}

TEST(ChunkReduce, InputUntouched) {
  // Stage 1 is reduce-only: "the remaining elements are not modified".
  auto dev = make_device();
  const auto plan = paper_plan(1);
  const std::int64_t n = 5000;
  const auto lay = mc::make_layout(n, 1, plan.s13);
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n), 2);
  auto in = dev.alloc<int>(n);
  auto aux = dev.alloc<int>(lay.aux_elems());
  std::copy(data.begin(), data.end(), in.host_span().begin());
  mc::launch_chunk_reduce(dev, in, aux, lay, plan.s13, Plus<int>{});
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(in.host_span()[i], data[i]);
  }
}

TEST(IntermediateScan, ExclusiveRowsInPlace) {
  auto dev = make_device();
  const auto plan = paper_plan(1);
  const std::int64_t rows = 7, len = 45;
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(rows * len), 3);
  auto aux = dev.alloc<int>(rows * len);
  std::copy(data.begin(), data.end(), aux.host_span().begin());

  mc::launch_intermediate_scan(dev, aux, len, rows, plan.s2, Plus<int>{});
  for (std::int64_t r = 0; r < rows; ++r) {
    int acc = 0;
    for (std::int64_t i = 0; i < len; ++i) {
      ASSERT_EQ(aux.host_span()[static_cast<std::size_t>(r * len + i)], acc)
          << "r=" << r << " i=" << i;
      acc += data[static_cast<std::size_t>(r * len + i)];
    }
  }
}

TEST(IntermediateScanRanked, MatchesLogicalRowScan) {
  // Rank-major layout [rank][row][c]: the strided kernel must scan the
  // logical row (rank-major chunk order) exclusively.
  auto dev = make_device();
  const auto plan = paper_plan(1);
  const std::int64_t ranks = 4, rows = 3, bx = 5;
  const auto data = mgs::util::random_i32(
      static_cast<std::size_t>(ranks * rows * bx), 4);
  auto aux = dev.alloc<int>(ranks * rows * bx);
  std::copy(data.begin(), data.end(), aux.host_span().begin());

  mc::launch_intermediate_scan_ranked(dev, aux, bx, ranks, rows, plan.s2,
                                      Plus<int>{});
  for (std::int64_t row = 0; row < rows; ++row) {
    int acc = 0;
    for (std::int64_t i = 0; i < ranks * bx; ++i) {
      const std::int64_t off = (i / bx) * (rows * bx) + row * bx + (i % bx);
      ASSERT_EQ(aux.host_span()[static_cast<std::size_t>(off)], acc)
          << "row=" << row << " i=" << i;
      acc += data[static_cast<std::size_t>(off)];
    }
  }
}

TEST(IntermediateScanRanked, StridedAccessesCostMore) {
  auto dev1 = make_device();
  auto dev2 = make_device();
  const auto plan = paper_plan(1);
  const std::int64_t rows = 64, len = 1024;
  auto a = dev1.alloc<int>(rows * len);
  auto b = dev2.alloc<int>(rows * len);
  const auto t_contig =
      mc::launch_intermediate_scan(dev1, a, len, rows, plan.s2, Plus<int>{});
  const auto t_ranked = mc::launch_intermediate_scan_ranked(
      dev2, b, len / 8, 8, rows, plan.s2, Plus<int>{});
  EXPECT_GT(t_ranked.seconds, t_contig.seconds);
  EXPECT_LT(t_ranked.coalescing, t_contig.coalescing);
}

TEST(ScanAdd, AppliesAuxCarryPerChunk) {
  auto dev = make_device();
  const auto plan = paper_plan(1);
  const std::int64_t n = 2 * plan.s13.chunk();
  const auto lay = mc::make_layout(n, 1, plan.s13);
  ASSERT_EQ(lay.bx, 2);

  auto in = dev.alloc<int>(n);
  auto out = dev.alloc<int>(n);
  auto aux = dev.alloc<int>(lay.aux_elems());
  for (auto& x : in.host_span()) x = 1;
  // Pretend Stage 2 produced carries 0 and 5000 (not the true prefix, to
  // prove Stage 3 uses exactly what the aux array says).
  aux.host_span()[0] = 0;
  aux.host_span()[1] = 5000;

  mc::launch_scan_add(dev, in, out, aux, lay, plan.s13,
                      ScanKind::kInclusive, Plus<int>{});
  EXPECT_EQ(out.host_span()[0], 1);
  EXPECT_EQ(out.host_span()[static_cast<std::size_t>(lay.chunk - 1)],
            static_cast<int>(lay.chunk));
  EXPECT_EQ(out.host_span()[static_cast<std::size_t>(lay.chunk)], 5001);
  EXPECT_EQ(out.host_span()[static_cast<std::size_t>(n - 1)],
            5000 + static_cast<int>(lay.chunk));
}

TEST(DirectScan, SingleChunkFastPath) {
  auto dev = make_device();
  const auto plan = paper_plan(4);
  const std::int64_t n = plan.s13.chunk() - 37;
  const std::int64_t g = 3;
  const auto lay = mc::make_layout(n, g, plan.s13);
  ASSERT_EQ(lay.bx, 1);

  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n * g), 5);
  auto in = dev.alloc<int>(n * g);
  auto out = dev.alloc<int>(n * g);
  std::copy(data.begin(), data.end(), in.host_span().begin());
  mc::launch_direct_scan(dev, in, out, lay, plan.s13, ScanKind::kExclusive,
                         Plus<int>{});
  const auto want = mgs::baselines::reference_batch_scan<int>(
      data, n, g, ScanKind::kExclusive);
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(out.host_span()[i], want[i]);
  }
}

TEST(Kernels, Stage1And3UseSameGridAndResources) {
  // Section 3.1: B_x^1 = B_x^3, same SM resources.
  auto dev = make_device();
  const auto plan = paper_plan(2);
  const std::int64_t n = 1 << 20;  // large enough that launch overhead
                                   // does not mask the traffic ratio
  const auto lay = mc::make_layout(n, 2, plan.s13);
  auto in = dev.alloc<int>(n * 2);
  auto out = dev.alloc<int>(n * 2);
  auto aux = dev.alloc<int>(lay.aux_elems());
  const auto t1 = mc::launch_chunk_reduce(dev, in, aux, lay, plan.s13,
                                          Plus<int>{});
  const auto t3 = mc::launch_scan_add(dev, in, out, aux, lay, plan.s13,
                                      ScanKind::kInclusive, Plus<int>{});
  EXPECT_EQ(t1.occ.blocks_per_sm, t3.occ.blocks_per_sm);
  EXPECT_DOUBLE_EQ(t1.occ.warp_occupancy, t3.occ.warp_occupancy);
  // Stage 3 moves ~2x the data of Stage 1 (writes the scan back).
  EXPECT_GT(t3.seconds, 1.5 * t1.seconds);
}

TEST(Kernels, SizeValidation) {
  auto dev = make_device();
  const auto plan = paper_plan(1);
  const auto lay = mc::make_layout(1 << 14, 1, plan.s13);
  auto small = dev.alloc<int>(16);
  auto aux = dev.alloc<int>(lay.aux_elems());
  EXPECT_DEATH(mc::launch_chunk_reduce(dev, small, aux, lay, plan.s13,
                                       Plus<int>{}),
               "too small");
}
