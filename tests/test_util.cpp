// Unit tests for mgs/util: math helpers, RNG determinism, stats, tables,
// CLI parsing and error handling.

#include <gtest/gtest.h>

#include <sstream>

#include "mgs/util/check.hpp"
#include "mgs/util/cli.hpp"
#include "mgs/util/math.hpp"
#include "mgs/util/random.hpp"
#include "mgs/util/stats.hpp"
#include "mgs/util/table.hpp"

namespace mu = mgs::util;

TEST(Math, Pow2Family) {
  EXPECT_TRUE(mu::is_pow2(1));
  EXPECT_TRUE(mu::is_pow2(1024));
  EXPECT_FALSE(mu::is_pow2(0));
  EXPECT_FALSE(mu::is_pow2(3));
  EXPECT_EQ(mu::ilog2(1), 0);
  EXPECT_EQ(mu::ilog2(1024), 10);
  EXPECT_EQ(mu::ilog2(1025), 10);
  EXPECT_EQ(mu::pow2(20), 1u << 20);
}

TEST(Math, DivRound) {
  EXPECT_EQ(mu::div_up(10, 3), 4u);
  EXPECT_EQ(mu::div_up(9, 3), 3u);
  EXPECT_EQ(mu::round_up(10, 8), 16u);
  EXPECT_EQ(mu::round_up(16, 8), 16u);
  EXPECT_EQ(mu::floor_pow2(1000), 512u);
  EXPECT_EQ(mu::ceil_pow2(1000), 1024u);
  EXPECT_EQ(mu::ceil_pow2(1024), 1024u);
}

TEST(Random, DeterministicAcrossCalls) {
  const auto a = mu::random_i32(1000, 42);
  const auto b = mu::random_i32(1000, 42);
  EXPECT_EQ(a, b);
  const auto c = mu::random_i32(1000, 43);
  EXPECT_NE(a, c);
}

TEST(Random, RespectsRange) {
  const auto v = mu::random_i32(10000, 7, -5, 5);
  for (auto x : v) {
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
  const auto f = mu::random_f32(10000, 7, 0.0f, 1.0f);
  for (auto x : f) {
    EXPECT_GE(x, 0.0f);
    EXPECT_LT(x, 1.0f);
  }
}

TEST(Random, I64Range) {
  const auto v = mu::random_i64(1000, 11, -3, 3);
  bool saw_neg = false, saw_pos = false;
  for (auto x : v) {
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_neg |= x < 0;
    saw_pos |= x > 0;
  }
  EXPECT_TRUE(saw_neg);
  EXPECT_TRUE(saw_pos);
}

TEST(Stats, MeanGeomeanMinMax) {
  const double xs[] = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mu::mean(xs), 7.0 / 3.0);
  EXPECT_NEAR(mu::geomean(xs), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(mu::min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(mu::max_of(xs), 4.0);
  EXPECT_DOUBLE_EQ(mu::median(xs), 2.0);
  const double even[] = {1.0, 2.0, 3.0, 10.0};
  EXPECT_DOUBLE_EQ(mu::median(even), 2.5);
}

TEST(Stats, RunningMean) {
  mu::RunningMean m;
  m.add(2.0);
  m.add(4.0);
  EXPECT_EQ(m.count(), 2u);
  EXPECT_DOUBLE_EQ(m.value(), 3.0);
}

TEST(Table, AlignedOutputAndCsv) {
  mu::Table t({"n", "GB/s"});
  t.add_row({"13", "1.5"});
  t.add_row({"28", "123.4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("GB/s"), std::string::npos);
  EXPECT_NE(s.find("123.4"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "n,GB/s\n13,1.5\n28,123.4\n");
}

TEST(Table, RowWidthMismatchAborts) {
  mu::Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(TableFormat, Helpers) {
  EXPECT_EQ(mu::fmt_gbps(2.5e9), "2.50 GB/s");
  EXPECT_EQ(mu::fmt_speedup(12.345), "12.35x");
  EXPECT_EQ(mu::fmt_time_us(1.5e-6), "1.50 us");
  EXPECT_EQ(mu::fmt_time_us(2.5e-3), "2.500 ms");
  EXPECT_EQ(mu::fmt_bytes(1024), "1.00 KiB");
}

TEST(Cli, ParsesBothSyntaxes) {
  const char* argv[] = {"prog", "--n", "28", "--mode=fast", "--flag"};
  mu::Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 28);
  EXPECT_EQ(cli.get_string("mode", ""), "fast");
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_int("absent", -1), -1);
}

TEST(Cli, RejectsMalformedValues) {
  const char* argv[] = {"prog", "--n", "abc"};
  mu::Cli cli(3, const_cast<char**>(argv));
  EXPECT_THROW(cli.get_int("n", 0), mu::Error);
  EXPECT_THROW(cli.get_bool("n", false), mu::Error);
}

TEST(Cli, UnknownFlagDetection) {
  const char* argv[] = {"prog", "--typo", "1"};
  mu::Cli cli(3, const_cast<char**>(argv));
  cli.describe("n", "problem size");
  EXPECT_THROW(cli.reject_unknown(), mu::Error);
}

TEST(Check, RequireThrowsCheckAborts) {
  EXPECT_THROW(MGS_REQUIRE(false, "bad config"), mu::Error);
  EXPECT_NO_THROW(MGS_REQUIRE(true, "ok"));
  EXPECT_DEATH(MGS_CHECK(false, "invariant"), "MGS_CHECK failed");
}
