// Tests for the unified ScanContext / ScanExecutor layer: plan-cache
// hit/miss behaviour, workspace reuse (allocation counts flat across
// repeated runs, modeled times identical), bit-exact output equivalence
// between every executor and the legacy free function it wraps, and the
// registry / planner bridge.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mgs/baselines/reference.hpp"
#include "mgs/core/easy.hpp"
#include "mgs/core/executor_registry.hpp"
#include "mgs/core/scan_mppc.hpp"
#include "mgs/core/scan_multinode.hpp"
#include "mgs/core/scan_sp.hpp"
#include "mgs/core/tuning.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace mt = mgs::topo;
namespace mm = mgs::msg;
using mgs::baselines::reference_batch_scan;

namespace {

constexpr std::int64_t kN = 1 << 12;
constexpr std::int64_t kG = 4;

std::vector<int> node_major_ids(const mt::Cluster& cluster, int m, int w) {
  std::vector<int> ids;
  const auto& cfg = cluster.config();
  for (int node = 0; node < m; ++node) {
    for (int i = 0; i < w; ++i) {
      ids.push_back(cluster.global_id(node, i / cfg.gpus_per_network,
                                      i % cfg.gpus_per_network));
    }
  }
  return ids;
}

}  // namespace

// ---------------------------------------------------------------- plan cache

TEST(ScanContext, PlanCacheHitsAndMisses) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);

  const auto& p1 = ctx.plan_for(kN, kG);
  EXPECT_EQ(ctx.plan_cache_size(), 1u);
  EXPECT_EQ(ctx.plan_cache_misses(), 1u);
  EXPECT_EQ(ctx.plan_cache_hits(), 0u);
  const std::size_t tuner_cache = ctx.tuner().cache_size();
  EXPECT_EQ(tuner_cache, 1u);

  // Identical key: cache hit, and the autotuner is not consulted again.
  const auto& p2 = ctx.plan_for(kN, kG);
  EXPECT_EQ(&p1, &p2);
  EXPECT_EQ(ctx.plan_cache_size(), 1u);
  EXPECT_EQ(ctx.plan_cache_hits(), 1u);
  EXPECT_EQ(ctx.tuner().cache_size(), tuner_cache);

  // Different shape: a new miss.
  ctx.plan_for(kN * 2, kG);
  EXPECT_EQ(ctx.plan_cache_size(), 2u);
  EXPECT_EQ(ctx.plan_cache_misses(), 2u);

  // Multi-GPU keys bypass the autotuner (premise-derived K).
  ctx.plan_for(kN, kG, mc::DType::kI32, mc::OpTag::kPlus,
               /*gpus_per_problem=*/4);
  EXPECT_EQ(ctx.plan_cache_size(), 3u);
  EXPECT_EQ(ctx.tuner().cache_size(), 2u);
}

TEST(ScanContext, SecondPrepareWithSameKeyIsAHit) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);

  auto ex1 = mc::make_sp_executor(ctx);
  ex1->prepare(kN, kG);
  const auto misses = ctx.plan_cache_misses();
  const auto tuner_cache = ctx.tuner().cache_size();

  // Same executor, same shape: idempotent, no new lookup at all.
  ex1->prepare(kN, kG);
  EXPECT_EQ(ctx.plan_cache_misses(), misses);

  // A fresh executor preparing the same shape hits the shared cache.
  auto ex2 = mc::make_sp_executor(ctx);
  ex2->prepare(kN, kG);
  EXPECT_EQ(ctx.plan_cache_misses(), misses);
  EXPECT_GE(ctx.plan_cache_hits(), 1u);
  EXPECT_EQ(ctx.tuner().cache_size(), tuner_cache);
}

// ------------------------------------------------------------ workspace pool

TEST(WorkspacePool, ReusesBuffersAcrossRuns) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);
  auto ex = mc::make_mps_executor(ctx, /*w=*/4);
  ex->prepare(kN, kG);

  const auto data = mgs::util::random_i32(
      static_cast<std::size_t>(kN * kG), 7);
  std::vector<int> out1(data.size()), out2(data.size()), out3(data.size());

  const auto r1 = ex->run(data, out1, mc::ScanKind::kInclusive);
  const auto allocs_after_first = ctx.workspace().device_allocations();
  const auto reuses_after_first = ctx.workspace().reuses();

  const auto r2 = ex->run(data, out2, mc::ScanKind::kInclusive);
  const auto r3 = ex->run(data, out3, mc::ScanKind::kInclusive);

  // Steady state: zero new device allocations, only reuses.
  EXPECT_EQ(ctx.workspace().device_allocations(), allocs_after_first);
  EXPECT_GT(ctx.workspace().reuses(), reuses_after_first);

  // Determinism: identical modeled time and identical output, run to run.
  EXPECT_EQ(r1.seconds, r2.seconds);
  EXPECT_EQ(r2.seconds, r3.seconds);
  EXPECT_EQ(out1, out2);
  EXPECT_EQ(out2, out3);
  EXPECT_EQ(out1, reference_batch_scan<int>(data, kN, kG,
                                            mc::ScanKind::kInclusive));
}

TEST(WorkspacePool, BestFitAndCounters) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::WorkspacePool pool;
  auto& dev = cluster.device(0);
  {
    auto a = pool.acquire<int>(dev, 100);
    auto b = pool.acquire<int>(dev, 1000);
    EXPECT_EQ(pool.device_allocations(), 2u);
  }
  EXPECT_EQ(pool.pooled_buffers(), 2u);
  {
    // Best fit: a request for 50 gets the 100-element buffer back.
    auto c = pool.acquire<int>(dev, 50);
    EXPECT_EQ(c.size(), 100);
    EXPECT_EQ(pool.reuses(), 1u);
    EXPECT_EQ(pool.device_allocations(), 2u);
  }
  // Other devices and types never share buffers.
  {
    auto d = pool.acquire<int>(cluster.device(1), 50);
    EXPECT_EQ(pool.device_allocations(), 3u);
    auto e = pool.acquire<double>(dev, 50);
    EXPECT_EQ(pool.device_allocations(), 4u);
  }
  pool.clear();
  EXPECT_EQ(pool.pooled_buffers(), 0u);
}

// ------------------------------------------- executor vs legacy equivalence

TEST(ExecutorEquivalence, ScanSp) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);
  const auto data = mgs::util::random_i32(
      static_cast<std::size_t>(kN * kG), 11);

  auto ex = mc::make_executor("Scan-SP", ctx);
  ex->prepare(kN, kG);
  std::vector<int> got(data.size());
  const auto r = ex->run(data, got, mc::ScanKind::kInclusive);

  auto legacy_cluster = mt::tsubame_kfc_cluster(1);
  auto& dev = legacy_cluster.device(0);
  auto in = dev.alloc<int>(kN * kG);
  auto out = dev.alloc<int>(kN * kG);
  std::copy(data.begin(), data.end(), in.host_span().begin());
  const auto rl = mc::scan_sp<int>(dev, in, out, kN, kG,
                                   ctx.plan_for(kN, kG),
                                   mc::ScanKind::kInclusive);
  const std::vector<int> want(out.host_span().begin(), out.host_span().end());

  EXPECT_EQ(got, want);
  EXPECT_EQ(r.seconds, rl.seconds);
}

TEST(ExecutorEquivalence, ScanMpsAndDirect) {
  for (const bool direct : {false, true}) {
    auto cluster = mt::tsubame_kfc_cluster(1);
    mc::ScanContext ctx(cluster);
    const int w = 4;
    const auto data = mgs::util::random_i32(
        static_cast<std::size_t>(kN * kG), 13);

    auto ex = mc::make_executor(direct ? "Scan-MPS-direct" : "Scan-MPS", ctx,
                                {.w = w});
    ex->prepare(kN, kG);
    std::vector<int> got(data.size());
    const auto r = ex->run(data, got, mc::ScanKind::kExclusive);

    auto legacy_cluster = mt::tsubame_kfc_cluster(1);
    const auto gpus = node_major_ids(legacy_cluster, 1, w);
    auto batches =
        mc::distribute_batch<int>(legacy_cluster, gpus, data, kN, kG);
    const auto& plan =
        ctx.plan_for(kN, kG, mc::DType::kI32, mc::OpTag::kPlus, w);
    const auto rl =
        direct ? mc::scan_mps_direct<int>(legacy_cluster, gpus, batches, kN,
                                          kG, plan, mc::ScanKind::kExclusive)
               : mc::scan_mps<int>(legacy_cluster, gpus, batches, kN, kG,
                                   plan, mc::ScanKind::kExclusive);
    const auto want = mc::collect_batch(batches, kN, kG);

    EXPECT_EQ(got, want) << (direct ? "direct" : "staged");
    EXPECT_EQ(r.seconds, rl.seconds);
  }
}

TEST(ExecutorEquivalence, ScanMppc) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);
  const std::int64_t g = 5;  // uneven split across the two networks
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * g), 17);

  auto ex = mc::make_executor("Scan-MP-PC", ctx, {.y = 2, .v = 4});
  ex->prepare(kN, g);
  std::vector<int> got(data.size());
  const auto r = ex->run(data, got, mc::ScanKind::kInclusive);

  auto legacy_cluster = mt::tsubame_kfc_cluster(1);
  const auto part = mc::make_mppc_partition(legacy_cluster, 2, 4, g);
  auto batches = mc::distribute_mppc<int>(legacy_cluster, part, data, kN);
  const auto& plan =
      ctx.plan_for(kN, g, mc::DType::kI32, mc::OpTag::kPlus, 4);
  const auto rl = mc::scan_mppc<int>(legacy_cluster, part, batches, kN, plan,
                                     mc::ScanKind::kInclusive);
  const auto want = mc::collect_mppc(part, batches, kN);

  EXPECT_EQ(got, want);
  EXPECT_EQ(r.seconds, rl.seconds);
}

TEST(ExecutorEquivalence, ScanMpsMultinode) {
  auto cluster = mt::tsubame_kfc_cluster(2);
  mc::ScanContext ctx(cluster);
  const int m = 2, w = 8;
  const auto data = mgs::util::random_i32(
      static_cast<std::size_t>(kN * kG), 19);

  auto ex = mc::make_executor("Scan-MPS-multinode", ctx, {.w = w, .m = m});
  ex->prepare(kN, kG);
  std::vector<int> got(data.size());
  const auto r = ex->run(data, got, mc::ScanKind::kInclusive);

  auto legacy_cluster = mt::tsubame_kfc_cluster(2);
  const auto ids = node_major_ids(legacy_cluster, m, w);
  mm::Communicator comm(legacy_cluster, ids);
  auto batches =
      mc::distribute_batch<int>(legacy_cluster, ids, data, kN, kG);
  const auto& plan =
      ctx.plan_for(kN, kG, mc::DType::kI32, mc::OpTag::kPlus, m * w);
  const auto rl = mc::scan_mps_multinode<int>(comm, batches, kN, kG, plan,
                                              mc::ScanKind::kInclusive);
  const auto want = mc::collect_batch(batches, kN, kG);

  EXPECT_EQ(got, want);
  EXPECT_EQ(r.seconds, rl.seconds);
}

// --------------------------------------------------------- registry / planner

TEST(ExecutorRegistry, ListsTheFiveProposals) {
  const auto& all = mc::all_executors();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].name, "Scan-SP");
  EXPECT_EQ(all[1].name, "Scan-MPS");
  EXPECT_EQ(all[2].name, "Scan-MPS-direct");
  EXPECT_EQ(all[3].name, "Scan-MP-PC");
  EXPECT_EQ(all[4].name, "Scan-MPS-multinode");

  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);
  for (const auto& info : all) {
    if (info.name == "Scan-MPS-multinode") continue;  // needs its shape
    auto ex = info.make(ctx, {});
    ASSERT_NE(ex, nullptr);
    EXPECT_EQ(ex->name(), info.name);
    EXPECT_FALSE(ex->describe().empty());
  }
}

TEST(ExecutorRegistry, UnknownNameThrows) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);
  EXPECT_THROW(mc::make_executor("Scan-XXL", ctx), mgs::util::Error);
}

TEST(ExecutorRegistry, PlannerChoiceMapsToExecutor) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);

  mc::PlannerChoice choice;
  choice.proposal = mc::Proposal::kMps;
  choice.w = 4;
  auto ex = mc::make_executor(ctx, choice);
  ASSERT_NE(ex, nullptr);
  EXPECT_EQ(ex->name(), "Scan-MPS");
}

TEST(ExecutorRegistry, ContextRunsThePlannerEndToEnd) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);
  auto ex = ctx.executor_for({kN, kG});
  ASSERT_NE(ex, nullptr);
  ex->prepare(kN, kG);

  const auto data = mgs::util::random_i32(
      static_cast<std::size_t>(kN * kG), 23);
  std::vector<int> got(data.size());
  const auto r = ex->run(data, got, mc::ScanKind::kInclusive);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_EQ(got, reference_batch_scan<int>(data, kN, kG,
                                           mc::ScanKind::kInclusive));
}

// ----------------------------------------------------------------- contract

TEST(ScanExecutor, RunBeforePrepareThrows) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);
  auto ex = mc::make_sp_executor(ctx);
  std::vector<int> data(16, 1), out(16);
  EXPECT_THROW(ex->run(data, out, mc::ScanKind::kInclusive),
               mgs::util::Error);
}

TEST(ScanExecutor, BadShapesThrow) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);
  auto mps = mc::make_mps_executor(ctx, 8);
  EXPECT_THROW(mps->prepare(12, 1), mgs::util::Error);  // 12 % 8 != 0
  auto sp = mc::make_sp_executor(ctx);
  EXPECT_THROW(sp->prepare(0, 1), mgs::util::Error);
}

TEST(RunResult, ZeroTimeThroughputThrows) {
  mc::RunResult r;
  r.payload_bytes = 1;
  EXPECT_THROW(r.throughput_bps(), mgs::util::Error);
  r.seconds = 2.0;
  EXPECT_EQ(r.throughput_bps(), 0.5);
}

// Easy API through a shared context amortizes the plan search.
TEST(EasyScan, ContextOverloadCachesPlans) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 0);

  const auto r1 = mc::scan<int>(ctx, data);
  const auto misses = ctx.plan_cache_misses();
  const auto r2 = mc::scan<int>(ctx, data);
  EXPECT_EQ(ctx.plan_cache_misses(), misses);
  EXPECT_GE(ctx.plan_cache_hits(), 1u);
  EXPECT_EQ(r1.output, r2.output);
  EXPECT_EQ(r1.run.seconds, r2.run.seconds);
}
