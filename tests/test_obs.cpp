// Tests for the mgs::obs layer: hierarchical span tracing across all five
// executors, labeled metrics aggregation, critical-path attribution (the
// programmatic Figure 14), fault-recovery spans, the exporters and the
// run-report loader -- plus the zero-overhead guarantee when no session
// is installed.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mgs/baselines/reference.hpp"
#include "mgs/core/executor.hpp"
#include "mgs/core/run_report.hpp"
#include "mgs/obs/critical_path.hpp"
#include "mgs/obs/export.hpp"
#include "mgs/obs/report.hpp"
#include "mgs/obs/span.hpp"
#include "mgs/sim/fault.hpp"
#include "mgs/topo/topology.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace mo = mgs::obs;
namespace ms = mgs::sim;
namespace mt = mgs::topo;

namespace {

constexpr std::int64_t kN = 1 << 12;
constexpr std::int64_t kG = 4;

using Factory =
    std::function<std::unique_ptr<mc::ScanExecutor>(mc::ScanContext&)>;

struct Proposal {
  const char* name;
  Factory make;
};

std::vector<Proposal> all_proposals() {
  return {
      {"Scan-SP", [](mc::ScanContext& c) { return mc::make_sp_executor(c); }},
      {"Scan-MPS",
       [](mc::ScanContext& c) { return mc::make_mps_executor(c, 4); }},
      {"Scan-MPS-direct",
       [](mc::ScanContext& c) { return mc::make_mps_executor(c, 4, true); }},
      {"Scan-MP-PC",
       [](mc::ScanContext& c) { return mc::make_mppc_executor(c, 2, 4); }},
      {"Scan-MPS-multinode",
       [](mc::ScanContext& c) { return mc::make_multinode_executor(c, 1, 8); }},
  };
}

struct Outcome {
  mc::RunResult result;
  std::vector<std::int32_t> out;
  std::vector<mo::SpanRecord> spans;  ///< empty when run without a session
};

/// One fresh cluster + context + executor run, optionally traced and
/// optionally under a fault plan.
Outcome run_proposal(const Factory& make, bool traced,
                     const std::string& fault_spec,
                     std::span<const std::int32_t> data, std::int64_t n,
                     std::int64_t g) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  std::unique_ptr<ms::FaultInjector> fi;
  if (!fault_spec.empty()) {
    fi = std::make_unique<ms::FaultInjector>(ms::parse_fault_plan(fault_spec));
    cluster.set_fault_injector(fi.get());
  }
  mc::ScanContext ctx(cluster);
  auto ex = make(ctx);
  ex->prepare(n, g);
  Outcome o;
  o.out.resize(static_cast<std::size_t>(n * g));
  if (traced) {
    mo::TraceSession ts;
    o.result = ex->run(data, o.out, mc::ScanKind::kInclusive);
    o.spans = ts.spans();
  } else {
    o.result = ex->run(data, o.out, mc::ScanKind::kInclusive);
  }
  return o;
}

const mo::SpanRecord* find_by_id(const std::vector<mo::SpanRecord>& spans,
                                 std::uint64_t id) {
  for (const auto& s : spans) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

/// Walk parent links from `s` to a root; returns the root span.
const mo::SpanRecord& root_of(const std::vector<mo::SpanRecord>& spans,
                              const mo::SpanRecord& s) {
  const mo::SpanRecord* cur = &s;
  while (cur->parent != 0) {
    const auto* p = find_by_id(spans, cur->parent);
    EXPECT_NE(p, nullptr);
    if (p == nullptr) break;
    cur = p;
  }
  return *cur;
}

}  // namespace

// ----------------------------------------------------------- span tracing

TEST(ObsSpans, SessionInstallAndNestRestore) {
  EXPECT_EQ(mo::TraceSession::current(), nullptr);
  {
    mo::TraceSession outer;
    EXPECT_EQ(mo::TraceSession::current(), &outer);
    {
      mo::TraceSession inner;
      EXPECT_EQ(mo::TraceSession::current(), &inner);
    }
    EXPECT_EQ(mo::TraceSession::current(), &outer);
  }
  EXPECT_EQ(mo::TraceSession::current(), nullptr);
}

TEST(ObsSpans, ParentageFollowsOpenStack) {
  mo::TraceSession ts;
  mo::SpanRecord run;
  run.name = "run";
  run.kind = mo::SpanKind::kRun;
  const auto run_id = ts.open_span(run);

  mo::SpanRecord stage;
  stage.name = "stage";
  stage.kind = mo::SpanKind::kStage;
  const auto stage_id = ts.open_span(stage);

  mo::SpanRecord leaf;
  leaf.name = "kernel";
  leaf.kind = mo::SpanKind::kKernel;
  const auto leaf_id = ts.add_event(leaf);

  ts.close_span(stage_id, 1.0);

  mo::SpanRecord after;
  after.name = "late";
  const auto after_id = ts.add_event(after);
  ts.close_span(run_id, 2.0);

  const auto spans = ts.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(find_by_id(spans, run_id)->parent, 0u);
  EXPECT_EQ(find_by_id(spans, stage_id)->parent, run_id);
  EXPECT_EQ(find_by_id(spans, leaf_id)->parent, stage_id);
  // Once the stage closed, new events parent to the still-open run.
  EXPECT_EQ(find_by_id(spans, after_id)->parent, run_id);
}

TEST(ObsSpans, EveryExecutorProducesANestedSpanTree) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 7);
  for (const auto& p : all_proposals()) {
    const auto o = run_proposal(p.make, true, "", data, kN, kG);
    ASSERT_FALSE(o.spans.empty()) << p.name;

    // Exactly one run span, named like the executor, and it is a root.
    const mo::SpanRecord* run = nullptr;
    int runs = 0;
    for (const auto& s : o.spans) {
      if (s.kind == mo::SpanKind::kRun) {
        run = &s;
        ++runs;
      }
    }
    ASSERT_EQ(runs, 1) << p.name;
    EXPECT_EQ(run->parent, 0u) << p.name;
    EXPECT_EQ(run->name, p.name);

    bool saw_plan = false, saw_stage = false, saw_kernel = false;
    for (const auto& s : o.spans) {
      // Parents precede children (ids are insertion-ordered).
      if (s.parent != 0) {
        ASSERT_NE(find_by_id(o.spans, s.parent), nullptr) << p.name;
        EXPECT_LT(s.parent, s.id) << p.name;
      }
      // Everything recorded during the run hangs off the run span.
      EXPECT_EQ(root_of(o.spans, s).id, run->id) << p.name << " " << s.name;
      saw_plan |= s.kind == mo::SpanKind::kPlan;
      saw_stage |= s.kind == mo::SpanKind::kStage;
      if (s.kind == mo::SpanKind::kKernel) {
        saw_kernel = true;
        // Kernels record under a stage, not directly under the run.
        const auto* parent = find_by_id(o.spans, s.parent);
        ASSERT_NE(parent, nullptr) << p.name;
        EXPECT_EQ(parent->kind, mo::SpanKind::kStage) << p.name;
      }
    }
    EXPECT_TRUE(saw_plan) << p.name;
    EXPECT_TRUE(saw_stage) << p.name;
    EXPECT_TRUE(saw_kernel) << p.name;
  }
}

TEST(ObsSpans, MultiGpuRunsRecordTransfers) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 8);
  const auto o = run_proposal(
      [](mc::ScanContext& c) { return mc::make_mps_executor(c, 4); }, true,
      "", data, kN, kG);
  int transfers = 0;
  for (const auto& s : o.spans) {
    if (s.kind == mo::SpanKind::kTransfer) {
      ++transfers;
      EXPECT_GT(s.bytes, 0u);
      EXPECT_GE(s.device, 0);
    }
  }
  EXPECT_GT(transfers, 0);
}

// ---------------------------------------------------------------- metrics

TEST(ObsMetrics, LabelAggregationAcrossSeries) {
  mo::MetricsRegistry reg;
  reg.add("transfer_bytes", {{"kind", "p2p"}}, 100.0);
  reg.add("transfer_bytes", {{"kind", "p2p"}}, 50.0);
  reg.add("transfer_bytes", {{"kind", "host-staged"}}, 10.0);
  // Label order must not matter.
  reg.add("multi", {{"b", "2"}, {"a", "1"}}, 1.0);
  reg.add("multi", {{"a", "1"}, {"b", "2"}}, 2.0);

  const auto snap = reg.snapshot();
  const auto* p2p = mo::find_metric(snap, "transfer_bytes", {{"kind", "p2p"}});
  ASSERT_NE(p2p, nullptr);
  EXPECT_DOUBLE_EQ(p2p->value, 150.0);
  const auto* host =
      mo::find_metric(snap, "transfer_bytes", {{"kind", "host-staged"}});
  ASSERT_NE(host, nullptr);
  EXPECT_DOUBLE_EQ(host->value, 10.0);
  const auto* multi = mo::find_metric(snap, "multi", {{"a", "1"}, {"b", "2"}});
  ASSERT_NE(multi, nullptr);
  EXPECT_DOUBLE_EQ(multi->value, 3.0);
  EXPECT_EQ(mo::find_metric(snap, "transfer_bytes"), nullptr);
}

TEST(ObsMetrics, RunSnapshotsLandInRunResult) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 9);
  const auto o = run_proposal(
      [](mc::ScanContext& c) { return mc::make_mps_executor(c, 4); }, true,
      "", data, kN, kG);
  const auto& snap = o.result.metrics;
  ASSERT_FALSE(snap.empty());

  const auto* runs =
      mo::find_metric(snap, "runs_total",
                      {{"executor", "Scan-MPS"}, {"dtype", "i32"},
                       {"op", "plus"}});
  ASSERT_NE(runs, nullptr);
  EXPECT_DOUBLE_EQ(runs->value, 1.0);

  const auto* p2p =
      mo::find_metric(snap, "transfer_bytes", {{"kind", "p2p"}});
  ASSERT_NE(p2p, nullptr);
  EXPECT_GT(p2p->value, 0.0);

  const auto* sizes = mo::find_metric(snap, "transfer_size_bytes");
  ASSERT_NE(sizes, nullptr);
  EXPECT_EQ(sizes->type, mo::MetricType::kHistogram);
  EXPECT_GT(sizes->count, 0u);
  std::uint64_t bucketed = 0;
  for (auto b : sizes->buckets) bucketed += b;
  EXPECT_EQ(bucketed, sizes->count);

  bool saw_kernel_counter = false;
  for (const auto& m : snap) {
    saw_kernel_counter |= m.name == "kernel_launches_total";
  }
  EXPECT_TRUE(saw_kernel_counter);

  // An untraced run carries no metrics at all.
  const auto plain = run_proposal(
      [](mc::ScanContext& c) { return mc::make_mps_executor(c, 4); }, false,
      "", data, kN, kG);
  EXPECT_TRUE(plain.result.metrics.empty());
}

TEST(ObsMetrics, PlanCacheCountersTrackReuse) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);
  auto ex = mc::make_mps_executor(ctx, 4);
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 10);
  std::vector<std::int32_t> out(static_cast<std::size_t>(kN * kG));

  mo::TraceSession ts;
  ex->prepare(kN, kG);
  ex->run(data, out, mc::ScanKind::kInclusive);
  // A second executor with the same shape resolves the same plan-cache
  // key (the first executor memoizes its prepare, so re-preparing it
  // would not touch the cache at all).
  auto ex2 = mc::make_mps_executor(ctx, 4);
  ex2->prepare(kN, kG);
  ex2->run(data, out, mc::ScanKind::kInclusive);

  const auto snap = ts.metrics().snapshot();
  const auto* hits = mo::find_metric(snap, "plan_cache_hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_GE(hits->value, 1.0);
  const auto* misses = mo::find_metric(snap, "plan_cache_misses");
  ASSERT_NE(misses, nullptr);
  EXPECT_GE(misses->value, 1.0);
}

// ---------------------------------------------------------- critical path

TEST(ObsCriticalPath, AttributionSumsToMakespanForEveryExecutor) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 11);
  for (const auto& p : all_proposals()) {
    const auto o = run_proposal(p.make, true, "", data, kN, kG);
    const auto cp = mo::analyze_last_run(o.spans);
    EXPECT_NEAR(cp.total_seconds, o.result.seconds, 1e-9) << p.name;
    EXPECT_NEAR(cp.by_category.total(), cp.total_seconds, 1e-9) << p.name;
    EXPECT_NEAR(cp.by_category.total(), o.result.seconds, 1e-9) << p.name;
  }
}

TEST(ObsCriticalPath, MpsStageRowsMatchRunBreakdown) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 12);
  // Forced-synchronous pipeline: this test checks the legacy stage
  // anatomy (gather/scatter phases visible in the attribution); the
  // overlapped pipeline's anatomy is covered by test_pipeline.
  const auto o = run_proposal(
      [](mc::ScanContext& c) {
        return mc::make_mps_executor(
            c, 4, false, {mc::PipelineMode::kSync, 0});
      },
      true, "", data, kN, kG);
  const auto cp = mo::analyze_last_run(o.spans);

  // Same phases, in the same order, with the same durations.
  const auto& entries = o.result.breakdown.entries();
  ASSERT_EQ(cp.stages.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(cp.stages[i].name, entries[i].first);
    EXPECT_NEAR(cp.stages[i].seconds(), entries[i].second, 1e-9)
        << entries[i].first;
  }
  // Stage rows tile the run window.
  double sum = 0.0;
  for (const auto& s : cp.stages) sum += s.seconds();
  EXPECT_NEAR(sum, cp.total_seconds, 1e-9);

  // A 4-GPU batch scan moves data and computes: both show up.
  EXPECT_GT(cp.by_category[mo::Category::kCompute], 0.0);
  EXPECT_GT(cp.by_category[mo::Category::kP2P] +
                cp.by_category[mo::Category::kHostStaged],
            0.0);
  // Per-device rows cover the four GPUs; busy + idle fills the window.
  ASSERT_GE(cp.devices.size(), 4u);
  for (const auto& d : cp.devices) {
    EXPECT_NEAR(d.busy.total() + d.idle_seconds, cp.total_seconds, 1e-9);
  }
  EXPECT_FALSE(cp.links.empty());
}

// ----------------------------------------------------------- fault spans

TEST(ObsFaults, TransientRetriesRecordFaultSpans) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 13);
  const auto o = run_proposal(
      [](mc::ScanContext& c) { return mc::make_mps_executor(c, 4); }, true,
      "transient:op=0,count=2", data, kN, kG);
  ASSERT_GT(o.result.faults.counters.retries, 0u);

  int fault_spans = 0;
  for (const auto& s : o.spans) {
    if (s.kind != mo::SpanKind::kFault) continue;
    ++fault_spans;
    // Every fault span hangs off a transfer (or stage) inside the run,
    // is named after the fault kind and carries annotations.
    ASSERT_NE(s.parent, 0u);
    EXPECT_EQ(s.name, "transient");
    EXPECT_FALSE(s.notes.empty()) << s.name;
  }
  EXPECT_GT(fault_spans, 0);

  const auto* retries = mo::find_metric(o.result.metrics, "fault_retries");
  ASSERT_NE(retries, nullptr);
  EXPECT_GT(retries->value, 0.0);
  const auto* events = mo::find_metric(o.result.metrics, "fault_events_total",
                                       {{"kind", "transient"}});
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->value, 0.0);

  // The attribution invariant holds under fault recovery too.
  const auto cp = mo::analyze_last_run(o.spans);
  EXPECT_NEAR(cp.by_category.total(), o.result.seconds, 1e-9);
}

// ----------------------------------------------------------- zero overhead

TEST(ObsOverhead, NoSessionMeansNoRecordsAndBitIdenticalResults) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 14);
  for (const auto& p : all_proposals()) {
    const auto plain = run_proposal(p.make, false, "", data, kN, kG);
    const auto traced = run_proposal(p.make, true, "", data, kN, kG);
    // Tracing must not perturb the simulation: same simulated seconds
    // bit-for-bit, same output.
    EXPECT_DOUBLE_EQ(plain.result.seconds, traced.result.seconds) << p.name;
    EXPECT_EQ(plain.out, traced.out) << p.name;
    EXPECT_TRUE(plain.spans.empty()) << p.name;
    EXPECT_TRUE(plain.result.metrics.empty()) << p.name;
  }
  EXPECT_EQ(mo::TraceSession::current(), nullptr);
}

// ------------------------------------------------------------- exporters

TEST(ObsExport, RunReportRoundTripsThroughTheLoader) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 15);
  auto cluster = mt::tsubame_kfc_cluster(1);
  mc::ScanContext ctx(cluster);
  auto ex = mc::make_mps_executor(ctx, 4);
  ex->prepare(kN, kG);
  std::vector<std::int32_t> out(static_cast<std::size_t>(kN * kG));

  mo::TraceSession ts;
  const auto r = ex->run(data, out, mc::ScanKind::kInclusive);
  const auto info = mc::make_run_info("Scan-MPS", kN, 4, r);
  const auto spans = ts.spans();
  const auto cp = mo::analyze_last_run(spans);

  std::ostringstream os;
  mo::write_run_report(os, info, ts.metrics().snapshot(), spans, cp);
  const auto rep = mo::parse_run_report(mo::parse_json(os.str()));

  EXPECT_EQ(rep.run.executor, "Scan-MPS");
  EXPECT_EQ(rep.run.n, static_cast<std::uint64_t>(kN));
  EXPECT_DOUBLE_EQ(rep.run.seconds, r.seconds);
  EXPECT_EQ(rep.run.breakdown, r.breakdown.entries());
  ASSERT_EQ(rep.spans.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(rep.spans[i].id, spans[i].id);
    EXPECT_EQ(rep.spans[i].parent, spans[i].parent);
    EXPECT_EQ(rep.spans[i].name, spans[i].name);
    EXPECT_EQ(rep.spans[i].kind, spans[i].kind);
    EXPECT_EQ(rep.spans[i].category, spans[i].category);
    EXPECT_DOUBLE_EQ(rep.spans[i].start_seconds, spans[i].start_seconds);
    EXPECT_DOUBLE_EQ(rep.spans[i].end_seconds, spans[i].end_seconds);
    EXPECT_EQ(rep.spans[i].bytes, spans[i].bytes);
    EXPECT_EQ(rep.spans[i].notes, spans[i].notes);
  }
  EXPECT_EQ(rep.metrics.size(), ts.metrics().snapshot().size());
  // The loader re-derives the critical path; it must agree exactly.
  EXPECT_DOUBLE_EQ(rep.critical_path.total_seconds, cp.total_seconds);
  for (int c = 0; c < mo::kNumCategories; ++c) {
    EXPECT_DOUBLE_EQ(
        rep.critical_path.by_category.seconds[static_cast<std::size_t>(c)],
        cp.by_category.seconds[static_cast<std::size_t>(c)]);
  }
}

TEST(ObsExport, ChromeTraceAndPrometheusAreWellFormed) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 16);
  const auto o = run_proposal(
      [](mc::ScanContext& c) { return mc::make_mps_executor(c, 4); }, true,
      "", data, kN, kG);

  std::ostringstream trace;
  mo::write_chrome_trace(trace, o.spans);
  const std::string json = trace.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  // It parses with our own JSON parser too.
  EXPECT_NO_THROW(mo::parse_json(json));

  std::ostringstream prom;
  mo::write_prometheus(prom, o.result.metrics);
  const std::string text = prom.str();
  EXPECT_NE(text.find("# TYPE mgs_transfers_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("mgs_transfer_bytes{kind=\"p2p\"}"), std::string::npos);
  EXPECT_NE(text.find("_bucket{"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

TEST(ObsExport, LoaderRejectsMalformedInput) {
  EXPECT_THROW(mo::parse_json("{\"a\": }"), mgs::util::Error);
  EXPECT_THROW(mo::parse_json("{} trailing"), mgs::util::Error);
  EXPECT_THROW(mo::parse_run_report(mo::parse_json("{\"schema\":\"nope\"}")),
               mgs::util::Error);
}
