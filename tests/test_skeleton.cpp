// Unit tests for the computational skeletons (Section 3.1 machinery):
// tile reduce, tile scan, the cascade loop and the stage-2 row scan,
// exercised directly through hand-built block contexts.

#include <gtest/gtest.h>

#include <numeric>

#include "mgs/baselines/reference.hpp"
#include "mgs/core/kernels.hpp"
#include "mgs/core/skeleton.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace st = mgs::simt;
using mgs::baselines::reference_scan;
using mgs::core::Plus;
using mgs::core::ScanKind;

namespace {

st::Device make_device() { return st::Device(0, mgs::sim::k80_spec()); }

mc::StagePlan paper_plan(int k = 1) {
  mc::StagePlan sp;
  sp.p = 8;
  sp.lx = 128;
  sp.ly = 1;
  sp.k = k;
  return sp;
}

/// Run `fn` inside a single-block launch so a real BlockCtx exists.
template <typename Fn>
void in_block(st::Device& dev, std::int64_t smem_bytes, Fn&& fn) {
  st::LaunchConfig cfg;
  cfg.name = "test_block";
  cfg.grid = {1, 1, 1};
  cfg.block = {128, 1, 1};
  cfg.regs_per_thread = 64;
  cfg.smem_per_block = smem_bytes;
  st::launch(dev, cfg, fn);
}

}  // namespace

TEST(Skeleton, ReduceTileFullAndPartial) {
  auto dev = make_device();
  const auto sp = paper_plan();
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(sp.tile()), 1);
  auto buf = dev.alloc<int>(sp.tile());
  std::copy(data.begin(), data.end(), buf.host_span().begin());
  const auto view = buf.view();

  for (std::int64_t len : {sp.tile(), std::int64_t{1}, std::int64_t{100},
                           std::int64_t{129}, sp.tile() - 1}) {
    in_block(dev, 64, [&](st::BlockCtx& ctx) {
      const int got = mc::reduce_tile(ctx, view, 0, len, sp, Plus<int>{});
      const int want = std::accumulate(data.begin(),
                                       data.begin() + static_cast<std::ptrdiff_t>(len), 0);
      EXPECT_EQ(got, want) << "len=" << len;
    });
  }
}

TEST(Skeleton, ScanTileInclusiveMatchesReference) {
  auto dev = make_device();
  const auto sp = paper_plan();
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(sp.tile()), 2);
  auto in = dev.alloc<int>(sp.tile());
  auto out = dev.alloc<int>(sp.tile());
  std::copy(data.begin(), data.end(), in.host_span().begin());

  in_block(dev, 64, [&](st::BlockCtx& ctx) {
    auto smem = ctx.shared<int>(sp.warps());
    const int total = mc::scan_tile(ctx, in.view(), out.view(), 0, sp.tile(),
                                    sp, 0, ScanKind::kInclusive, Plus<int>{},
                                    smem);
    EXPECT_EQ(total, std::accumulate(data.begin(), data.end(), 0));
  });
  std::vector<int> want(data.size());
  reference_scan<int>(data, want, ScanKind::kInclusive);
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(out.host_span()[i], want[i]) << "i=" << i;
  }
}

TEST(Skeleton, ScanTileExclusiveWithCarry) {
  auto dev = make_device();
  const auto sp = paper_plan();
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(sp.tile()), 3);
  auto in = dev.alloc<int>(sp.tile());
  auto out = dev.alloc<int>(sp.tile());
  std::copy(data.begin(), data.end(), in.host_span().begin());

  const int carry = 1000;
  in_block(dev, 64, [&](st::BlockCtx& ctx) {
    auto smem = ctx.shared<int>(sp.warps());
    mc::scan_tile(ctx, in.view(), out.view(), 0, sp.tile(), sp, carry,
                  ScanKind::kExclusive, Plus<int>{}, smem);
  });
  int acc = carry;
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(out.host_span()[i], acc) << "i=" << i;
    acc += data[i];
  }
}

TEST(Skeleton, ScanTilePartialLengths) {
  auto dev = make_device();
  const auto sp = paper_plan();
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(sp.tile()), 4);
  auto in = dev.alloc<int>(sp.tile());
  auto out = dev.alloc<int>(sp.tile());
  std::copy(data.begin(), data.end(), in.host_span().begin());

  for (std::int64_t len : {std::int64_t{1}, std::int64_t{31}, std::int64_t{32},
                           std::int64_t{127}, std::int64_t{128},
                           std::int64_t{500}, sp.tile() - 3}) {
    in_block(dev, 64, [&](st::BlockCtx& ctx) {
      auto smem = ctx.shared<int>(sp.warps());
      mc::scan_tile(ctx, in.view(), out.view(), 0, len, sp, 0,
                    ScanKind::kInclusive, Plus<int>{}, smem);
    });
    int acc = 0;
    for (std::int64_t i = 0; i < len; ++i) {
      acc += data[static_cast<std::size_t>(i)];
      ASSERT_EQ(out.host_span()[static_cast<std::size_t>(i)], acc)
          << "len=" << len << " i=" << i;
    }
  }
}

TEST(Skeleton, CascadeChainsAcrossIterations) {
  auto dev = make_device();
  const auto sp = paper_plan(/*k=*/4);  // chunk of 4 tiles
  const std::int64_t n = sp.chunk();
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n), 5);
  auto in = dev.alloc<int>(n);
  auto out = dev.alloc<int>(n);
  std::copy(data.begin(), data.end(), in.host_span().begin());

  in_block(dev, 64, [&](st::BlockCtx& ctx) {
    auto smem = ctx.shared<int>(sp.warps());
    const int total = mc::cascade_scan(ctx, in.view(), out.view(), 0, n, sp,
                                       0, ScanKind::kInclusive, Plus<int>{},
                                       smem);
    EXPECT_EQ(total, std::accumulate(data.begin(), data.end(), 0));
    EXPECT_EQ(mc::cascade_reduce(ctx, in.view(), 0, n, sp, Plus<int>{}),
              total);
  });
  std::vector<int> want(data.size());
  reference_scan<int>(data, want, ScanKind::kInclusive);
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(out.host_span()[i], want[i]) << "i=" << i;
  }
}

TEST(Skeleton, CascadeHandlesPartialFinalTile) {
  auto dev = make_device();
  const auto sp = paper_plan(/*k=*/2);
  const std::int64_t n = sp.tile() + 77;  // second iteration partial
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n), 6);
  auto in = dev.alloc<int>(n);
  auto out = dev.alloc<int>(n);
  std::copy(data.begin(), data.end(), in.host_span().begin());

  in_block(dev, 64, [&](st::BlockCtx& ctx) {
    auto smem = ctx.shared<int>(sp.warps());
    mc::cascade_scan(ctx, in.view(), out.view(), 0, n, sp, 0,
                     ScanKind::kInclusive, Plus<int>{}, smem);
  });
  int acc = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc += data[static_cast<std::size_t>(i)];
    ASSERT_EQ(out.host_span()[static_cast<std::size_t>(i)], acc);
  }
}

TEST(Skeleton, WorksWithMaxOperator) {
  auto dev = make_device();
  const auto sp = paper_plan(2);
  const std::int64_t n = sp.chunk();
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(n), 7, -1000, 1000);
  auto in = dev.alloc<int>(n);
  auto out = dev.alloc<int>(n);
  std::copy(data.begin(), data.end(), in.host_span().begin());

  in_block(dev, 64, [&](st::BlockCtx& ctx) {
    auto smem = ctx.shared<int>(sp.warps());
    mc::cascade_scan(ctx, in.view(), out.view(), 0, n, sp, mc::Max<int>::identity(),
                     ScanKind::kInclusive, mc::Max<int>{}, smem);
  });
  int acc = mc::Max<int>::identity();
  for (std::int64_t i = 0; i < n; ++i) {
    acc = std::max(acc, data[static_cast<std::size_t>(i)]);
    ASSERT_EQ(out.host_span()[static_cast<std::size_t>(i)], acc);
  }
}

TEST(Skeleton, RowScanExclusive) {
  auto dev = make_device();
  const std::int64_t len = 100;  // not a multiple of the warp
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(len), 8);
  auto buf = dev.alloc<int>(len);
  std::copy(data.begin(), data.end(), buf.host_span().begin());
  const auto view = buf.view();

  in_block(dev, 64, [&](st::BlockCtx& ctx) {
    mc::warp_row_scan_exclusive<int>(
        ctx, len,
        [&](std::int64_t i0, int cnt) {
          return view.load_warp_partial(i0, cnt, 0, ctx.stats());
        },
        [&](std::int64_t i0, int cnt, const st::WarpReg<int>& v) {
          view.store_warp_partial(i0, cnt, v, ctx.stats());
        },
        Plus<int>{});
  });
  int acc = 0;
  for (std::int64_t i = 0; i < len; ++i) {
    ASSERT_EQ(buf.host_span()[static_cast<std::size_t>(i)], acc);
    acc += data[static_cast<std::size_t>(i)];
  }
}

TEST(Skeleton, Int4LoadsAreCoalesced) {
  // The full-quad path must issue exactly ideal transaction counts; that
  // is the point of the paper's int4 loads.
  auto dev = make_device();
  const auto sp = paper_plan();
  auto in = dev.alloc<int>(sp.tile());
  auto out = dev.alloc<int>(sp.tile());
  mgs::sim::KernelStats observed;
  in_block(dev, 64, [&](st::BlockCtx& ctx) {
    auto smem = ctx.shared<int>(sp.warps());
    mc::scan_tile(ctx, in.view(), out.view(), 0, sp.tile(), sp, 0,
                  ScanKind::kInclusive, Plus<int>{}, smem);
    observed = ctx.stats();
  });
  const std::uint64_t ideal_txns =
      (observed.bytes_read + observed.bytes_written) / 32;
  EXPECT_EQ(observed.mem_transactions, ideal_txns);
}
