// Tests for the fault-injection framework and the resilience paths built
// on it: the fault-spec parser, the TransferEngine retry / reroute /
// checksum machinery, and the executors' degraded-mode re-planning --
// under every fault class a proposal must either produce a correct scan
// or raise a typed error, never a silently wrong result.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mgs/baselines/reference.hpp"
#include "mgs/core/executor.hpp"
#include "mgs/obs/span.hpp"
#include "mgs/sim/fault.hpp"
#include "mgs/topo/transfer.hpp"
#include "mgs/topo/topology.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace ms = mgs::sim;
namespace mt = mgs::topo;
using mgs::baselines::reference_batch_scan;

namespace {

constexpr std::int64_t kN = 1 << 12;
constexpr std::int64_t kG = 4;

using Factory =
    std::function<std::unique_ptr<mc::ScanExecutor>(mc::ScanContext&)>;

struct Proposal {
  const char* name;
  Factory make;
};

std::vector<Proposal> multi_gpu_proposals() {
  return {
      {"Scan-MPS", [](mc::ScanContext& c) { return mc::make_mps_executor(c, 4); }},
      {"Scan-MPS-direct",
       [](mc::ScanContext& c) { return mc::make_mps_executor(c, 4, true); }},
      {"Scan-MP-PC",
       [](mc::ScanContext& c) { return mc::make_mppc_executor(c, 2, 4); }},
      {"Scan-MPS-multinode",
       [](mc::ScanContext& c) { return mc::make_multinode_executor(c, 1, 8); }},
  };
}

struct Outcome {
  double seconds = 0.0;
  std::vector<std::int32_t> out;
  mc::RunResult result;
};

/// One fresh cluster + context + executor run, optionally under a fault
/// plan ("" = no injector attached at all).
Outcome run_proposal(const Factory& make, const std::string& spec,
                     std::span<const std::int32_t> data, std::int64_t n,
                     std::int64_t g) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  std::unique_ptr<ms::FaultInjector> fi;
  if (!spec.empty()) {
    fi = std::make_unique<ms::FaultInjector>(ms::parse_fault_plan(spec));
    cluster.set_fault_injector(fi.get());
  }
  mc::ScanContext ctx(cluster);
  auto ex = make(ctx);
  ex->prepare(n, g);
  Outcome o;
  o.out.resize(static_cast<std::size_t>(n * g));
  o.result = ex->run(data, o.out, mc::ScanKind::kInclusive);
  o.seconds = o.result.seconds;
  return o;
}

}  // namespace

// -------------------------------------------------------------- the parser

TEST(FaultPlanParser, ParsesEventsAndPolicy) {
  const auto plan = ms::parse_fault_plan(
      "transient:src=0,dst=1,op=3,count=2; corrupt:prob=0.25;"
      "link-down:src=2,dst=3; device-down:dev=5,at=0.5;"
      "straggler:dev=1,factor=4;"
      "policy:retries=7,backoff-us=10,timeout-s=2,seed=99");
  ASSERT_EQ(plan.events.size(), 5u);
  EXPECT_EQ(plan.events[0].kind, ms::FaultKind::kTransientTransfer);
  EXPECT_EQ(plan.events[0].src, 0);
  EXPECT_EQ(plan.events[0].dst, 1);
  EXPECT_EQ(plan.events[0].op, 3);
  EXPECT_EQ(plan.events[0].count, 2);
  EXPECT_EQ(plan.events[1].kind, ms::FaultKind::kCorruption);
  EXPECT_DOUBLE_EQ(plan.events[1].probability, 0.25);
  EXPECT_EQ(plan.events[2].kind, ms::FaultKind::kLinkDown);
  EXPECT_EQ(plan.events[3].kind, ms::FaultKind::kDeviceDown);
  EXPECT_EQ(plan.events[3].device, 5);
  EXPECT_DOUBLE_EQ(plan.events[3].at_seconds, 0.5);
  EXPECT_EQ(plan.events[4].kind, ms::FaultKind::kStraggler);
  EXPECT_DOUBLE_EQ(plan.events[4].factor, 4.0);
  EXPECT_EQ(plan.max_retries, 7);
  EXPECT_DOUBLE_EQ(plan.backoff_base_us, 10.0);
  EXPECT_DOUBLE_EQ(plan.timeout_seconds, 2.0);
  EXPECT_EQ(plan.seed, 99u);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(ms::parse_fault_plan("").empty());
}

TEST(FaultPlanParser, RejectsMalformedSpecs) {
  EXPECT_THROW(ms::parse_fault_plan("explode:dev=1"), mgs::util::Error);
  EXPECT_THROW(ms::parse_fault_plan("transient:op=0,bogus=1"),
               mgs::util::Error);
  EXPECT_THROW(ms::parse_fault_plan("transient:op=abc"), mgs::util::Error);
  EXPECT_THROW(ms::parse_fault_plan("transient:prob=2"), mgs::util::Error);
  EXPECT_THROW(ms::parse_fault_plan("transient:count=3"), mgs::util::Error);
  EXPECT_THROW(ms::parse_fault_plan("device-down:at=1"), mgs::util::Error);
  EXPECT_THROW(ms::parse_fault_plan("link-down:src=0"), mgs::util::Error);
  EXPECT_THROW(ms::parse_fault_plan("straggler:factor=2"), mgs::util::Error);
  EXPECT_THROW(ms::parse_fault_plan("transient"), mgs::util::Error);
}

TEST(FaultPlanParser, ToSpecRoundTripsExactly) {
  const std::string spec =
      "transient:src=0,dst=1,op=3,count=2;corrupt:prob=0.25;"
      "link-down:src=2,dst=3;device-down:dev=5,at=0.5;"
      "straggler:dev=1,factor=4;"
      "policy:retries=7,backoff-us=10,timeout-s=2,seed=99";
  const auto plan = ms::parse_fault_plan(spec);
  const std::string printed = ms::to_spec(plan);
  const auto replan = ms::parse_fault_plan(printed);
  // The canonical form is a fixpoint: printing the re-parsed plan gives
  // the same string, and the plans agree field-for-field.
  EXPECT_EQ(ms::to_spec(replan), printed);
  ASSERT_EQ(replan.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(replan.events[i].kind, plan.events[i].kind) << i;
    EXPECT_EQ(replan.events[i].src, plan.events[i].src) << i;
    EXPECT_EQ(replan.events[i].dst, plan.events[i].dst) << i;
    EXPECT_EQ(replan.events[i].device, plan.events[i].device) << i;
    EXPECT_EQ(replan.events[i].op, plan.events[i].op) << i;
    EXPECT_EQ(replan.events[i].count, plan.events[i].count) << i;
    EXPECT_EQ(replan.events[i].probability, plan.events[i].probability) << i;
    EXPECT_EQ(replan.events[i].at_seconds, plan.events[i].at_seconds) << i;
    EXPECT_EQ(replan.events[i].factor, plan.events[i].factor) << i;
  }
  EXPECT_EQ(replan.max_retries, plan.max_retries);
  EXPECT_EQ(replan.backoff_base_us, plan.backoff_base_us);
  EXPECT_EQ(replan.timeout_seconds, plan.timeout_seconds);
  EXPECT_EQ(replan.seed, plan.seed);

  // Doubles that have no short decimal form must still survive bit-exactly
  // (to_spec prints round-trippable precision).
  ms::FaultPlan p;
  ms::FaultEvent ev;
  ev.kind = ms::FaultKind::kStraggler;
  ev.device = 0;
  ev.factor = 0.1 + 0.2;  // 0.30000000000000004
  p.events.push_back(ev);
  const auto q = ms::parse_fault_plan(ms::to_spec(p));
  ASSERT_EQ(q.events.size(), 1u);
  EXPECT_EQ(q.events[0].factor, ev.factor);

  EXPECT_TRUE(ms::to_spec(ms::FaultPlan{}).empty());
}

TEST(FaultReport, SummaryDistinguishesHealthyRecoveredDegraded) {
  ms::FaultReport r;
  EXPECT_EQ(r.summary(), "healthy");
  r.counters.retries = 2;
  r.counters.transient_failures = 2;
  EXPECT_NE(r.summary().find("recovered"), std::string::npos);
  r.degraded = true;
  r.degraded_mode = "Scan-MPS W=2";
  EXPECT_NE(r.summary().find("degraded"), std::string::npos);
  EXPECT_NE(r.summary().find("Scan-MPS W=2"), std::string::npos);
}

// ----------------------------------------------------- the transfer engine

namespace {

/// dev-to-dev copy of `n` ints under `spec`; returns (result, counters ok,
/// payload intact). Uses value i*3+1 so a stuck-at corruption is visible.
struct CopyProbe {
  mt::TransferResult result;
  ms::FaultCounters counters;
  bool payload_ok = false;
};

CopyProbe probe_copy(const std::string& spec, int src_dev, int dst_dev,
                     std::int64_t n = 1024) {
  auto c = mt::tsubame_kfc_cluster(1);
  std::unique_ptr<ms::FaultInjector> fi;
  if (!spec.empty()) {
    fi = std::make_unique<ms::FaultInjector>(ms::parse_fault_plan(spec));
    c.set_fault_injector(fi.get());
  }
  auto src = c.device(src_dev).alloc<int>(n);
  auto dst = c.device(dst_dev).alloc<int>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    src.host_span()[static_cast<std::size_t>(i)] = static_cast<int>(i * 3 + 1);
  }
  mt::TransferEngine eng(c);
  CopyProbe p;
  p.result = eng.copy(dst, 0, src, 0, n);
  p.counters = eng.fault_counters();
  p.payload_ok = true;
  for (std::int64_t i = 0; i < n; ++i) {
    if (dst.host_span()[static_cast<std::size_t>(i)] !=
        static_cast<int>(i * 3 + 1)) {
      p.payload_ok = false;
    }
  }
  return p;
}

}  // namespace

TEST(TransferFaults, TransientFailureRetriesAndConverges) {
  const auto healthy = probe_copy("", 0, 1);
  const auto faulted = probe_copy("transient:src=0,dst=1,op=0", 0, 1);
  EXPECT_TRUE(faulted.payload_ok);
  EXPECT_EQ(faulted.counters.transient_failures, 1u);
  EXPECT_EQ(faulted.counters.retries, 1u);
  EXPECT_GT(faulted.counters.retry_seconds, 0.0);
  // The retry and its backoff cost modeled time.
  EXPECT_GT(faulted.result.seconds, healthy.result.seconds);
  EXPECT_EQ(faulted.result.link, mt::LinkType::kP2P);
}

TEST(TransferFaults, DownP2PLinkReroutesThroughHostStaging) {
  const auto healthy = probe_copy("", 0, 1);
  const auto faulted = probe_copy("link-down:src=0,dst=1", 0, 1);
  EXPECT_TRUE(faulted.payload_ok);
  EXPECT_EQ(faulted.result.link, mt::LinkType::kHostStaged);
  EXPECT_EQ(faulted.counters.rerouted_transfers, 1u);
  EXPECT_EQ(faulted.counters.rerouted_bytes, 1024u * sizeof(int));
  EXPECT_GT(faulted.result.seconds, healthy.result.seconds);
}

TEST(TransferFaults, DownHostStagedLinkHasNoAlternateRoute) {
  // Devices 0 and 4 sit on different PCIe networks: host staging is
  // already the only path, so a down link is fatal -- and typed.
  try {
    probe_copy("link-down:src=0,dst=4", 0, 4);
    FAIL() << "expected TransferError";
  } catch (const mt::TransferError& e) {
    EXPECT_EQ(e.src_dev, 0);
    EXPECT_EQ(e.dst_dev, 4);
    EXPECT_NE(std::string(e.what()).find("no alternate route"),
              std::string::npos);
  }
}

TEST(TransferFaults, CorruptionIsDetectedAndRepaired) {
  const auto healthy = probe_copy("", 0, 1);
  const auto faulted = probe_copy("corrupt:op=0", 0, 1);
  EXPECT_TRUE(faulted.payload_ok);  // checksum caught it, payload re-copied
  EXPECT_EQ(faulted.counters.corruptions_detected, 1u);
  EXPECT_EQ(faulted.counters.retries, 1u);
  EXPECT_GT(faulted.result.seconds, healthy.result.seconds);
}

TEST(TransferFaults, TimeoutsExhaustTheRetryBudget) {
  try {
    probe_copy("policy:timeout-s=1e-15,retries=2", 0, 1);
    FAIL() << "expected TransferError";
  } catch (const mt::TransferError& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos);
  }
}

TEST(TransferFaults, StragglerSlowsItsLinksOnly) {
  const auto healthy = probe_copy("", 0, 1);
  const auto slow = probe_copy("straggler:dev=1,factor=4", 0, 1);
  const auto other = probe_copy("straggler:dev=1,factor=4", 2, 3);
  EXPECT_TRUE(slow.payload_ok);
  EXPECT_GT(slow.result.seconds, healthy.result.seconds);
  EXPECT_DOUBLE_EQ(other.result.seconds, healthy.result.seconds);
  EXPECT_FALSE(slow.counters.any());  // slow, but nothing failed
}

TEST(TransferFaults, MidRunDeviceDownRaisesTypedError) {
  auto c = mt::tsubame_kfc_cluster(1);
  auto fi = ms::FaultInjector(ms::parse_fault_plan("device-down:dev=1,at=1"));
  c.set_fault_injector(&fi);
  auto src = c.device(0).alloc<int>(16);
  auto dst = c.device(1).alloc<int>(16);
  mt::TransferEngine eng(c);
  eng.copy(dst, 0, src, 0, 16);  // before t=1s: fine
  c.device(0).clock().advance(2.0);
  EXPECT_THROW(eng.copy(dst, 0, src, 0, 16), mt::TransferError);
}

// ------------------------------------------------- executors under faults

TEST(ExecutorFaults, DisabledFaultsAreBitIdentical) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 11);
  for (const auto& p : multi_gpu_proposals()) {
    const auto plain = run_proposal(p.make, "", data, kN, kG);
    // Empty plan, injector attached: the zero-overhead guarantee.
    const auto armed = run_proposal(p.make, "policy:retries=4", data, kN, kG);
    EXPECT_DOUBLE_EQ(plain.seconds, armed.seconds) << p.name;
    EXPECT_EQ(plain.out, armed.out) << p.name;
    EXPECT_FALSE(armed.result.faults.any()) << p.name;
    EXPECT_FALSE(armed.result.faults.degraded) << p.name;
  }
}

TEST(ExecutorFaults, TransientFaultsRetryAndConvergeEveryProposal) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 12);
  const auto expect = reference_batch_scan<std::int32_t>(
      data, kN, kG, mc::ScanKind::kInclusive);
  for (const auto& p : multi_gpu_proposals()) {
    const auto healthy = run_proposal(p.make, "", data, kN, kG);
    const auto faulted =
        run_proposal(p.make, "transient:op=0,count=2", data, kN, kG);
    EXPECT_EQ(faulted.out, expect) << p.name;
    EXPECT_GT(faulted.result.faults.counters.transient_failures, 0u) << p.name;
    EXPECT_GT(faulted.result.faults.counters.retries, 0u) << p.name;
    EXPECT_GT(faulted.seconds, healthy.seconds) << p.name;
    EXPECT_FALSE(faulted.result.faults.degraded) << p.name;
  }
}

TEST(ExecutorFaults, LinkDownReroutesAndStaysCorrect) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 13);
  const auto expect = reference_batch_scan<std::int32_t>(
      data, kN, kG, mc::ScanKind::kInclusive);
  Factory mps = [](mc::ScanContext& c) { return mc::make_mps_executor(c, 4); };
  const auto healthy = run_proposal(mps, "", data, kN, kG);
  const auto faulted =
      run_proposal(mps, "link-down:src=0,dst=1", data, kN, kG);
  EXPECT_EQ(faulted.out, expect);
  EXPECT_GT(faulted.result.faults.counters.rerouted_transfers, 0u);
  EXPECT_GT(faulted.result.faults.counters.rerouted_bytes, 0u);
  EXPECT_GT(faulted.seconds, healthy.seconds);
}

TEST(ExecutorFaults, CorruptionIsRepairedEndToEnd) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 14);
  const auto expect = reference_batch_scan<std::int32_t>(
      data, kN, kG, mc::ScanKind::kInclusive);
  Factory mps = [](mc::ScanContext& c) { return mc::make_mps_executor(c, 4); };
  const auto faulted =
      run_proposal(mps, "corrupt:op=0,count=1000", data, kN, kG);
  EXPECT_EQ(faulted.out, expect);
  EXPECT_GT(faulted.result.faults.counters.corruptions_detected, 0u);
}

TEST(ExecutorFaults, DeviceDownDegradesEveryProposalToACorrectScan) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 15);
  const auto expect = reference_batch_scan<std::int32_t>(
      data, kN, kG, mc::ScanKind::kInclusive);
  for (const auto& p : multi_gpu_proposals()) {
    const auto degraded =
        run_proposal(p.make, "device-down:dev=2", data, kN, kG);
    EXPECT_EQ(degraded.out, expect) << p.name;
    EXPECT_TRUE(degraded.result.faults.degraded) << p.name;
    EXPECT_FALSE(degraded.result.faults.degraded_mode.empty()) << p.name;
    ASSERT_FALSE(degraded.result.faults.excluded_devices.empty()) << p.name;
    EXPECT_EQ(degraded.result.faults.excluded_devices.front(), 2) << p.name;
    EXPECT_FALSE(degraded.result.faults.replanned.empty()) << p.name;
  }
}

TEST(ExecutorFaults, AllButOneDeviceDownCollapsesToScanSp) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 16);
  const auto expect = reference_batch_scan<std::int32_t>(
      data, kN, kG, mc::ScanKind::kInclusive);
  // Kill devices 1..7: every proposal must fall back to Scan-SP on dev 0.
  const std::string spec =
      "device-down:dev=1;device-down:dev=2;device-down:dev=3;"
      "device-down:dev=4;device-down:dev=5;device-down:dev=6;"
      "device-down:dev=7";
  for (const auto& p : multi_gpu_proposals()) {
    const auto degraded = run_proposal(p.make, spec, data, kN, kG);
    EXPECT_EQ(degraded.out, expect) << p.name;
    EXPECT_TRUE(degraded.result.faults.degraded) << p.name;
    EXPECT_NE(degraded.result.faults.degraded_mode.find("Scan-SP"),
              std::string::npos)
        << p.name << ": " << degraded.result.faults.degraded_mode;
  }
}

TEST(ExecutorFaults, SpExecutorRelocatesOffADownDevice) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 17);
  const auto expect = reference_batch_scan<std::int32_t>(
      data, kN, kG, mc::ScanKind::kInclusive);
  Factory sp = [](mc::ScanContext& c) { return mc::make_sp_executor(c, 0); };
  const auto degraded = run_proposal(sp, "device-down:dev=0", data, kN, kG);
  EXPECT_EQ(degraded.out, expect);
  EXPECT_TRUE(degraded.result.faults.degraded);
  EXPECT_EQ(degraded.result.faults.excluded_devices,
            std::vector<int>{0});
}

TEST(ExecutorFaults, EpochMovesReplanAndInvalidateCachedPlans) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  ms::FaultInjector fi{ms::FaultPlan{}};
  cluster.set_fault_injector(&fi);
  mc::ScanContext ctx(cluster);
  auto ex = mc::make_mps_executor(ctx, 8);
  ex->prepare(kN, kG);

  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 18);
  const auto expect = reference_batch_scan<std::int32_t>(
      data, kN, kG, mc::ScanKind::kInclusive);
  std::vector<std::int32_t> out(data.size());

  const auto healthy = ex->run(data, out, mc::ScanKind::kInclusive);
  EXPECT_EQ(out, expect);
  EXPECT_FALSE(healthy.faults.degraded);
  const std::size_t cached = ctx.plan_cache_size();

  // A device dies after prepare(): the next run must notice via the
  // liveness epoch, re-place on the survivors and retire the 8-GPU plan.
  fi.mark_device_down(7);
  std::fill(out.begin(), out.end(), 0);
  const auto degraded = ex->run(data, out, mc::ScanKind::kInclusive);
  EXPECT_EQ(out, expect);
  EXPECT_TRUE(degraded.faults.degraded);
  EXPECT_EQ(degraded.faults.excluded_devices, std::vector<int>{7});
  EXPECT_GE(degraded.faults.invalidated_plans, 1u);
  EXPECT_LT(ctx.plan_cache_size(), cached + 1);
  EXPECT_NE(ex->describe().find("degraded"), std::string::npos);

  // The device recovers: the epoch moves again and the nominal placement
  // comes back.
  fi.mark_device_up(7);
  std::fill(out.begin(), out.end(), 0);
  const auto recovered = ex->run(data, out, mc::ScanKind::kInclusive);
  EXPECT_EQ(out, expect);
  EXPECT_FALSE(recovered.faults.degraded);
}

// ------------------------------------------------ mid-run resume / restart

namespace {

/// run_proposal plus the spans a TraceSession recorded, for asserting
/// which stages actually (re-)ran. Takes a FaultPlan directly so tests
/// can inject at exact simulated instants read from a healthy trace.
struct Traced {
  Outcome o;
  std::vector<mgs::obs::SpanRecord> spans;
};

Traced run_traced(const Factory& make, const ms::FaultPlan* plan,
                  std::span<const std::int32_t> data, std::int64_t n,
                  std::int64_t g) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  std::unique_ptr<ms::FaultInjector> fi;
  if (plan != nullptr) {
    fi = std::make_unique<ms::FaultInjector>(*plan);
    cluster.set_fault_injector(fi.get());
  }
  mgs::obs::TraceSession ts;
  mc::ScanContext ctx(cluster);
  auto ex = make(ctx);
  ex->prepare(n, g);
  Traced t;
  t.o.out.resize(static_cast<std::size_t>(n * g));
  t.o.result = ex->run(data, t.o.out, mc::ScanKind::kInclusive);
  t.o.seconds = t.o.result.seconds;
  t.spans = ts.spans();
  return t;
}

std::size_t count_stage(const std::vector<mgs::obs::SpanRecord>& spans,
                        const std::string& name) {
  return static_cast<std::size_t>(
      std::count_if(spans.begin(), spans.end(), [&](const auto& s) {
        return s.kind == mgs::obs::SpanKind::kStage && s.name == name;
      }));
}

/// Midpoint of the first kStage span called `name`; fails the test (and
/// returns 0) when the trace has no such stage.
double stage_midpoint(const std::vector<mgs::obs::SpanRecord>& spans,
                      const std::string& name) {
  for (const auto& s : spans) {
    if (s.kind == mgs::obs::SpanKind::kStage && s.name == name) {
      return (s.start_seconds + s.end_seconds) / 2.0;
    }
  }
  ADD_FAILURE() << "no '" << name << "' stage span in the healthy trace";
  return 0.0;
}

}  // namespace

// The flagship resume scenario: a non-master device dies in the middle of
// Stage 2 on the synchronous Scan-MPS path. Completed Stage-1 and gather
// work must survive -- the run resumes from the Stage2 boundary
// (re-scattering only the dead device's portions) without re-running
// Stage 1, and the output stays bit-identical to the healthy run.
TEST(ExecutorFaults, MidStage2DeviceDownResumesWithoutRerunningStage1) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 19);
  Factory mps_sync = [](mc::ScanContext& c) {
    return mc::make_mps_executor(
        c, 4, false, mc::PipelineChoice{mc::PipelineMode::kSync, 0});
  };
  const auto healthy = run_traced(mps_sync, nullptr, data, kN, kG);
  const double at = stage_midpoint(healthy.spans, "Stage2");
  ASSERT_GT(at, 0.0);

  ms::FaultPlan plan;
  ms::FaultEvent ev;
  ev.kind = ms::FaultKind::kDeviceDown;
  ev.device = 1;  // non-master: the master keeps the gathered aux array
  ev.at_seconds = at;
  plan.events.push_back(ev);
  const auto faulted = run_traced(mps_sync, &plan, data, kN, kG);

  EXPECT_EQ(faulted.o.out, healthy.o.out);  // bit-identical, not just close
  const auto& f = faulted.o.result.faults;
  ASSERT_EQ(f.resumed_stages.size(), 1u);
  EXPECT_EQ(f.resumed_stages.front(), "Stage2");
  EXPECT_TRUE(f.degraded);
  EXPECT_EQ(f.excluded_devices, std::vector<int>{1});
  // The span trace proves Stage 1 never re-ran: one Stage1 span, one
  // Recovery span covering the re-plan window.
  EXPECT_EQ(count_stage(faulted.spans, "Stage1"), 1u);
  EXPECT_EQ(count_stage(faulted.spans, "Recovery"), 1u);
  EXPECT_EQ(count_stage(healthy.spans, "Recovery"), 0u);
  // Recovery costs time: the degraded run is slower, never faster.
  EXPECT_GT(faulted.o.seconds, healthy.o.seconds);
}

// Same mid-run loss on the event-driven overlap pipeline: the checkpoint
// must resume (from whichever boundary held) with bit-identical output.
TEST(ExecutorFaults, OverlapMidRunDeviceDownResumesBitIdentical) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 20);
  Factory mps_over = [](mc::ScanContext& c) {
    return mc::make_mps_executor(
        c, 4, false, mc::PipelineChoice{mc::PipelineMode::kOverlap, 0});
  };
  const auto healthy = run_traced(mps_over, nullptr, data, kN, kG);
  const double at = stage_midpoint(healthy.spans, "Stage2+Comm");
  ASSERT_GT(at, 0.0);

  ms::FaultPlan plan;
  ms::FaultEvent ev;
  ev.kind = ms::FaultKind::kDeviceDown;
  ev.device = 2;
  ev.at_seconds = at;
  plan.events.push_back(ev);
  const auto faulted = run_traced(mps_over, &plan, data, kN, kG);

  EXPECT_EQ(faulted.o.out, healthy.o.out);
  const auto& f = faulted.o.result.faults;
  EXPECT_FALSE(f.resumed_stages.empty());
  EXPECT_TRUE(f.degraded);
  EXPECT_EQ(count_stage(faulted.spans, "Recovery"), f.resumed_stages.size());
}

// Death of the MASTER mid-run: the gathered aux array dies with it, so
// the resume must regress the gather/scan flags, re-place the master role
// and still produce bit-identical output.
TEST(ExecutorFaults, MasterDeathMidRunResumesOnNewMaster) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 21);
  Factory mps_sync = [](mc::ScanContext& c) {
    return mc::make_mps_executor(
        c, 4, false, mc::PipelineChoice{mc::PipelineMode::kSync, 0});
  };
  const auto healthy = run_traced(mps_sync, nullptr, data, kN, kG);
  const double at = stage_midpoint(healthy.spans, "Stage2");
  ASSERT_GT(at, 0.0);

  ms::FaultPlan plan;
  ms::FaultEvent ev;
  ev.kind = ms::FaultKind::kDeviceDown;
  ev.device = 0;  // the master
  ev.at_seconds = at;
  plan.events.push_back(ev);
  const auto faulted = run_traced(mps_sync, &plan, data, kN, kG);

  EXPECT_EQ(faulted.o.out, healthy.o.out);
  EXPECT_TRUE(faulted.o.result.faults.degraded);
  EXPECT_EQ(faulted.o.result.faults.excluded_devices, std::vector<int>{0});
  EXPECT_FALSE(faulted.o.result.faults.resumed_stages.empty());
}

// A device death the placement could not see (at > 0) must still end in a
// correct scan for every multi-GPU proposal: Scan-MPS resumes from its
// checkpoint, the direct / MP-PC / multinode paths restart on survivors.
TEST(ExecutorFaults, MidRunDeviceDownRecoversEveryProposal) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 22);
  const auto expect = reference_batch_scan<std::int32_t>(
      data, kN, kG, mc::ScanKind::kInclusive);
  for (const auto& p : multi_gpu_proposals()) {
    const auto r =
        run_proposal(p.make, "device-down:dev=1,at=1e-9", data, kN, kG);
    EXPECT_EQ(r.out, expect) << p.name;
    EXPECT_TRUE(r.result.faults.degraded) << p.name;
    ASSERT_FALSE(r.result.faults.excluded_devices.empty()) << p.name;
    EXPECT_EQ(r.result.faults.excluded_devices.front(), 1) << p.name;
    EXPECT_FALSE(r.result.faults.replanned.empty()) << p.name;
  }
}

// --------------------------------------------------- compute stragglers

// kStraggler now reaches compute kernels through simt::launch, not just
// transfers: the whole scan slows (monotonically in the factor), on both
// pipeline paths, without deadlock and without losing bit-identity.
TEST(ExecutorFaults, ComputeStragglerSlowsTheScanButStaysCorrect) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 23);
  const auto expect = reference_batch_scan<std::int32_t>(
      data, kN, kG, mc::ScanKind::kInclusive);
  for (const auto mode :
       {mc::PipelineMode::kSync, mc::PipelineMode::kOverlap}) {
    Factory mps = [mode](mc::ScanContext& c) {
      return mc::make_mps_executor(c, 4, false,
                                   mc::PipelineChoice{mode, 0});
    };
    const auto healthy = run_proposal(mps, "", data, kN, kG);
    const auto slow2 =
        run_proposal(mps, "straggler:dev=1,factor=2", data, kN, kG);
    const auto slow8 =
        run_proposal(mps, "straggler:dev=1,factor=8", data, kN, kG);
    EXPECT_EQ(slow2.out, expect);
    EXPECT_EQ(slow8.out, expect);
    EXPECT_GT(slow2.seconds, healthy.seconds);
    EXPECT_GT(slow8.seconds, slow2.seconds);
    EXPECT_FALSE(slow8.result.faults.degraded);
  }
}

// A straggling MASTER stretches Stage 2 itself; the schedule must absorb
// it on every proposal (the multinode sync path once mis-attributed this
// window and tripped the breakdown invariant).
TEST(ExecutorFaults, ComputeStragglerOnTheMasterEveryProposal) {
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(kN * kG), 24);
  const auto expect = reference_batch_scan<std::int32_t>(
      data, kN, kG, mc::ScanKind::kInclusive);
  for (const auto& p : multi_gpu_proposals()) {
    const auto slow =
        run_proposal(p.make, "straggler:dev=0,factor=4", data, kN, kG);
    EXPECT_EQ(slow.out, expect) << p.name;
    // Telescoping must survive the skewed clocks.
    EXPECT_NEAR(slow.result.breakdown.total(), slow.seconds,
                1e-12 + 1e-9 * slow.seconds)
        << p.name;
  }
}
