// Unit tests for mgs/topo: cluster shape, link classification (the fact
// Premise 4 is built on) and the transfer engine's cost/clock accounting.

#include <gtest/gtest.h>

#include "mgs/topo/topology.hpp"
#include "mgs/topo/transfer.hpp"

namespace mt = mgs::topo;

TEST(Cluster, TsubameKfcShape) {
  auto c = mt::tsubame_kfc_cluster(2);
  EXPECT_EQ(c.num_devices(), 16);
  EXPECT_EQ(c.config().gpus_per_node(), 8);
  const auto loc = c.location(13);  // node 1, second network, slot 1
  EXPECT_EQ(loc.node, 1);
  EXPECT_EQ(loc.network, 1);
  EXPECT_EQ(loc.slot, 1);
  EXPECT_EQ(c.global_id(1, 1, 1), 13);
  for (int id = 0; id < c.num_devices(); ++id) {
    const auto l = c.location(id);
    EXPECT_EQ(c.global_id(l.node, l.network, l.slot), id);
  }
}

TEST(Cluster, LinkClassification) {
  auto c = mt::tsubame_kfc_cluster(2);
  EXPECT_EQ(c.link_between(0, 0), mt::LinkType::kSelf);
  EXPECT_EQ(c.link_between(0, 3), mt::LinkType::kP2P);         // same network
  EXPECT_EQ(c.link_between(0, 4), mt::LinkType::kHostStaged);  // other network
  EXPECT_EQ(c.link_between(0, 8), mt::LinkType::kInterNode);   // other node
  EXPECT_EQ(c.link_between(8, 11), mt::LinkType::kP2P);
}

TEST(Cluster, InvalidShapesRejected) {
  mt::ClusterConfig cfg;
  cfg.nodes = 0;
  EXPECT_THROW(mt::Cluster{cfg}, mgs::util::Error);
  cfg.nodes = 1;
  cfg.gpus_per_network = 0;
  EXPECT_THROW(mt::Cluster{cfg}, mgs::util::Error);
}

TEST(Transfer, LinkTimesOrdered) {
  auto c = mt::tsubame_kfc_cluster(2);
  mt::TransferEngine xfer(c);
  const std::uint64_t mb = 1 << 20;
  const double p2p = xfer.link_time(0, 1, mb);
  const double staged = xfer.link_time(0, 4, mb);
  const double internode = xfer.link_time(0, 8, mb);
  const double self = xfer.link_time(0, 0, mb);
  // Premise 4's ordering: P2P beats host staging beats nothing; staging
  // and the IB hop are the expensive paths.
  EXPECT_LT(self, p2p);
  EXPECT_LT(p2p, staged);
  EXPECT_LT(p2p, internode);
}

TEST(Transfer, CopyMovesDataAndAdvancesClocks) {
  auto c = mt::tsubame_kfc_cluster(1);
  mt::TransferEngine xfer(c);
  auto src = c.device(0).alloc<int>(100);
  auto dst = c.device(1).alloc<int>(100);
  for (int i = 0; i < 100; ++i) src.host_span()[static_cast<std::size_t>(i)] = i;

  const auto r = xfer.copy(dst, 10, src, 0, 50);
  EXPECT_EQ(r.link, mt::LinkType::kP2P);
  EXPECT_EQ(r.bytes, 200u);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_EQ(dst.host_span()[10], 0);
  EXPECT_EQ(dst.host_span()[59], 49);
  // Both endpoints advance to the same completion time.
  EXPECT_DOUBLE_EQ(c.device(0).clock().now(), c.device(1).clock().now());
  EXPECT_DOUBLE_EQ(c.device(0).clock().now(), r.seconds);
  EXPECT_DOUBLE_EQ(xfer.breakdown().get("p2p"), r.seconds);
}

TEST(Transfer, Copy2dStridedAndRowOverhead) {
  auto c = mt::tsubame_kfc_cluster(1);
  mt::TransferEngine xfer(c);
  auto src = c.device(0).alloc<int>(6);   // 3 rows of 2, stride 2
  auto dst = c.device(4).alloc<int>(12);  // rows land at stride 4
  for (int i = 0; i < 6; ++i) src.host_span()[static_cast<std::size_t>(i)] = i;

  const auto r = xfer.copy_2d(dst, 1, 4, src, 0, 2, 3, 2);
  EXPECT_EQ(r.link, mt::LinkType::kHostStaged);
  EXPECT_EQ(dst.host_span()[1], 0);
  EXPECT_EQ(dst.host_span()[2], 1);
  EXPECT_EQ(dst.host_span()[5], 2);
  EXPECT_EQ(dst.host_span()[9], 4);

  // More rows for the same bytes must cost more (per-row DMA overhead) --
  // the mechanism behind Figure 9's W=8 drop at large G.
  const double few_rows = xfer.link_time_2d(0, 4, 1 << 20, 4);
  const double many_rows = xfer.link_time_2d(0, 4, 1 << 20, 4096);
  EXPECT_GT(many_rows, few_rows);
  // And host staging pays far more per row than P2P peer writes, which
  // pipeline on the PCIe fabric.
  const double p2p_rows = xfer.link_time_2d(0, 1, 1 << 20, 4096);
  const double staged_rows = xfer.link_time_2d(0, 4, 1 << 20, 4096);
  const double p2p_base = xfer.link_time(0, 1, 1 << 20);
  const double staged_base = xfer.link_time(0, 4, 1 << 20);
  EXPECT_NEAR((staged_rows - staged_base) / (p2p_rows - p2p_base), 10.0, 1e-9);
}

TEST(Transfer, BoundsChecked) {
  auto c = mt::tsubame_kfc_cluster(1);
  mt::TransferEngine xfer(c);
  auto src = c.device(0).alloc<int>(10);
  auto dst = c.device(1).alloc<int>(10);
  EXPECT_DEATH(xfer.copy(dst, 5, src, 0, 10), "out of bounds");
  EXPECT_DEATH(xfer.copy(dst, 0, src, 5, 10), "out of bounds");
}

TEST(Cluster, Dgx1LikePreset) {
  auto c = mt::dgx1_like_cluster(2);
  EXPECT_EQ(c.num_devices(), 16);
  EXPECT_EQ(c.config().networks_per_node, 1);
  // All 8 GPUs of a node share the fabric: never host-staged in-node.
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      if (a != b) {
        EXPECT_EQ(c.link_between(a, b), mt::LinkType::kP2P);
      }
    }
  }
  EXPECT_EQ(c.link_between(0, 8), mt::LinkType::kInterNode);
  // NVLink P2P is far faster than the K80 platform's PCIe P2P.
  mt::TransferEngine dgx(c);
  auto kfc = mt::tsubame_kfc_cluster(1);
  mt::TransferEngine pcie(kfc);
  EXPECT_LT(dgx.link_time(0, 1, 1 << 24), pcie.link_time(0, 1, 1 << 24));
}

TEST(Cluster, Dgx1RunsAllEightGpusWithoutStaging) {
  // Functional check: an 8-GPU MPS scan on the NVLink node must produce
  // correct results and spend zero time on host-staged links.
  auto c = mt::dgx1_like_cluster(1);
  mt::TransferEngine probe(c);
  // (The proposal builds its own engine; assert on the link classes.)
  std::vector<int> gpus = {0, 1, 2, 3, 4, 5, 6, 7};
  for (int a : gpus) {
    for (int b : gpus) {
      if (a != b) {
        EXPECT_NE(c.link_between(a, b), mt::LinkType::kHostStaged);
      }
    }
  }
}

TEST(Cluster, ResetAndMakespan) {
  auto c = mt::tsubame_kfc_cluster(1);
  c.device(2).clock().advance(1.5);
  c.device(5).clock().advance(2.5);
  EXPECT_DOUBLE_EQ(c.makespan({2, 5}), 2.5);
  EXPECT_DOUBLE_EQ(c.makespan({2}), 1.5);
  c.reset_clocks();
  EXPECT_DOUBLE_EQ(c.makespan({2, 5}), 0.0);
}
