// Tests for the device-side utility kernels (simt/algorithms.hpp) and the
// batched reduction primitive (core/reduce.hpp).

#include <gtest/gtest.h>

#include <numeric>

#include "mgs/core/reduce.hpp"
#include "mgs/core/scan_sp.hpp"
#include "mgs/core/tuning.hpp"
#include "mgs/simt/algorithms.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace st = mgs::simt;

namespace {
st::Device make_device() { return st::Device(0, mgs::sim::k80_spec()); }
}  // namespace

TEST(Algorithms, FillAndIota) {
  auto dev = make_device();
  auto buf = dev.alloc<int>(10000);
  st::fill(dev, buf, 42);
  for (int x : buf.host_span()) ASSERT_EQ(x, 42);
  st::iota(dev, buf, 7);
  for (std::int64_t i = 0; i < 10000; ++i) {
    ASSERT_EQ(buf.host_span()[static_cast<std::size_t>(i)], 7 + i);
  }
}

TEST(Algorithms, TransformElementwise) {
  auto dev = make_device();
  auto in = dev.alloc<int>(5000);
  auto out = dev.alloc<std::int64_t>(5000);
  st::iota(dev, in, 0);
  st::transform(dev, in, out, [](int x) {
    return static_cast<std::int64_t>(x) * x;
  });
  for (std::int64_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(out.host_span()[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(Algorithms, GatherScatterRoundTrip) {
  auto dev = make_device();
  const std::int64_t n = 4096;
  auto src = dev.alloc<int>(n);
  auto idx = dev.alloc<std::int64_t>(n);
  auto mid = dev.alloc<int>(n);
  auto dst = dev.alloc<int>(n);
  st::iota(dev, src, 100);
  // Reversal permutation.
  for (std::int64_t i = 0; i < n; ++i) {
    idx.host_span()[static_cast<std::size_t>(i)] = n - 1 - i;
  }
  st::gather(dev, src, idx, mid);  // mid[i] = src[n-1-i]
  EXPECT_EQ(mid.host_span()[0], 100 + static_cast<int>(n) - 1);
  st::scatter(dev, mid, idx, dst);  // dst[n-1-i] = mid[i] -> dst == src
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(dst.host_span()[static_cast<std::size_t>(i)],
              src.host_span()[static_cast<std::size_t>(i)]);
  }
}

TEST(Algorithms, GatherIsUncoalescedInTheModel) {
  auto dev = make_device();
  const std::int64_t n = 1 << 16;
  auto a = dev.alloc<int>(n);
  auto idx = dev.alloc<std::int64_t>(n);
  auto b = dev.alloc<int>(n);
  st::iota(dev, idx, std::int64_t{0});
  const auto t_gather = st::gather(dev, a, idx, b);
  const auto t_copy = st::transform(dev, a, b, [](int x) { return x; });
  // Scalar indexed accesses cost several times the coalesced copy.
  EXPECT_GT(t_gather.seconds, 3.0 * t_copy.seconds);
  EXPECT_LT(t_gather.coalescing, 0.5);
  EXPECT_GT(t_copy.coalescing, 0.9);
}

TEST(Algorithms, TransposeCorrectAndCoalesced) {
  auto dev = make_device();
  const std::int64_t w = 100, h = 70;  // non-multiple-of-tile shape
  auto in = dev.alloc<int>(w * h);
  auto out = dev.alloc<int>(w * h);
  st::iota(dev, in, 0);
  const auto t = st::transpose(dev, in, out, w, h);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      ASSERT_EQ(out.host_span()[static_cast<std::size_t>(x * h + y)],
                static_cast<int>(y * w + x));
    }
  }
  EXPECT_GT(t.coalescing, 0.8);  // tiled: both sides coalesced
}

TEST(Algorithms, TransposeTwiceIsIdentity) {
  auto dev = make_device();
  const std::int64_t w = 257, h = 129;
  auto a = dev.alloc<int>(w * h);
  auto b = dev.alloc<int>(w * h);
  auto c = dev.alloc<int>(w * h);
  const auto data = mgs::util::random_i32(static_cast<std::size_t>(w * h), 3);
  std::copy(data.begin(), data.end(), a.host_span().begin());
  st::transpose(dev, a, b, w, h);
  st::transpose(dev, b, c, h, w);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(c.host_span()[i], data[i]);
  }
}

TEST(Algorithms, ArgumentValidation) {
  auto dev = make_device();
  auto empty = dev.alloc<int>(0);
  auto small = dev.alloc<int>(4);
  auto big = dev.alloc<int>(64);
  EXPECT_THROW(st::fill(dev, empty, 0), mgs::util::Error);
  EXPECT_THROW(st::transform(dev, big, small, [](int x) { return x; }),
               mgs::util::Error);
  EXPECT_THROW(st::transpose(dev, big, big, 9, 9), mgs::util::Error);
}

// ---- Batched reduction -------------------------------------------------

struct ReduceCase {
  std::int64_t n;
  std::int64_t g;
  int k;
};

class ReduceSweep : public ::testing::TestWithParam<ReduceCase> {};

TEST_P(ReduceSweep, MatchesSerialTotals) {
  const auto c = GetParam();
  auto dev = make_device();
  auto plan = mc::derive_spl(dev.spec(), 4).plan;
  plan.s13.k = c.k;
  const auto data = mgs::util::random_i32(
      static_cast<std::size_t>(c.n * c.g), static_cast<std::uint64_t>(c.n));
  auto in = dev.alloc<int>(c.n * c.g);
  auto out = dev.alloc<int>(c.g);
  std::copy(data.begin(), data.end(), in.host_span().begin());

  const auto r = mc::reduce_sp<int>(dev, in, out, c.n, c.g, plan.s13);
  EXPECT_GT(r.seconds, 0.0);
  for (std::int64_t p = 0; p < c.g; ++p) {
    const int want = std::accumulate(
        data.begin() + static_cast<std::ptrdiff_t>(p * c.n),
        data.begin() + static_cast<std::ptrdiff_t>((p + 1) * c.n), 0);
    ASSERT_EQ(out.host_span()[static_cast<std::size_t>(p)], want) << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ReduceSweep,
                         ::testing::Values(ReduceCase{1 << 14, 1, 1},
                                           ReduceCase{1 << 12, 16, 2},
                                           ReduceCase{999, 7, 1},
                                           ReduceCase{100000, 3, 4},
                                           ReduceCase{1, 5, 1}));

TEST(Reduce, MaxOperator) {
  auto dev = make_device();
  auto plan = mc::derive_spl(dev.spec(), 4).plan;
  const std::int64_t n = 30000;
  const auto data =
      mgs::util::random_i32(static_cast<std::size_t>(n), 9, -10000, 10000);
  auto in = dev.alloc<int>(n);
  auto out = dev.alloc<int>(1);
  std::copy(data.begin(), data.end(), in.host_span().begin());
  mc::reduce_sp<int, mc::Max<int>>(dev, in, out, n, 1, plan.s13);
  EXPECT_EQ(out.host_span()[0], *std::max_element(data.begin(), data.end()));
}

TEST(Reduce, HalfTheTrafficOfAScan) {
  // Reduction reads N once and writes almost nothing; the scan moves 2N.
  auto dev = make_device();
  auto plan = mc::derive_spl(dev.spec(), 4).plan;
  plan.s13.k = 4;
  const std::int64_t n = 1 << 20;
  auto in = dev.alloc<int>(n);
  auto out1 = dev.alloc<int>(1);
  auto out_scan = dev.alloc<int>(n);
  const auto r_reduce = mc::reduce_sp<int>(dev, in, out1, n, 1, plan.s13);
  mc::ScanPlan sp = plan;
  const auto r_scan = mc::scan_sp<int>(dev, in, out_scan, n, 1, sp,
                                       mc::ScanKind::kInclusive);
  EXPECT_LT(r_reduce.seconds, 0.7 * r_scan.seconds);
}

TEST(Reduce, ArgumentValidation) {
  auto dev = make_device();
  auto plan = mc::derive_spl(dev.spec(), 4).plan;
  auto in = dev.alloc<int>(64);
  auto out = dev.alloc<int>(1);
  EXPECT_THROW(mc::reduce_sp<int>(dev, in, out, 64, 2, plan.s13),
               mgs::util::Error);  // out too small for G=2
  EXPECT_THROW(mc::reduce_sp<int>(dev, in, out, 0, 1, plan.s13),
               mgs::util::Error);
}
