// Unit tests for mgs/simt: warp shuffles and scans, instrumented device
// buffers (bytes/transaction accounting), the thread pool's ordered
// dispatch, and the kernel launcher.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "mgs/core/op.hpp"
#include "mgs/simt/device.hpp"
#include "mgs/simt/launch.hpp"
#include "mgs/simt/thread_pool.hpp"
#include "mgs/simt/warp.hpp"

namespace st = mgs::simt;
using mgs::core::Plus;

namespace {
st::Device make_device() { return st::Device(0, mgs::sim::k80_spec()); }
}  // namespace

TEST(Warp, ShflUpSemantics) {
  st::WarpReg<int> x;
  for (int l = 0; l < st::kWarpSize; ++l) x[l] = l;
  mgs::sim::KernelStats stats;
  const auto y = st::shfl_up(x, 4, stats);
  for (int l = 0; l < st::kWarpSize; ++l) {
    EXPECT_EQ(y[l], l < 4 ? l : l - 4);
  }
  EXPECT_EQ(stats.alu_ops, 32u);
  EXPECT_EQ(st::shfl_idx(x, 7, stats), 7);
}

TEST(Warp, InclusiveScanMatchesSerial) {
  st::WarpReg<int> x;
  for (int l = 0; l < st::kWarpSize; ++l) x[l] = l + 1;
  mgs::sim::KernelStats stats;
  st::warp_scan_inclusive(x, Plus<int>{}, stats);
  int acc = 0;
  for (int l = 0; l < st::kWarpSize; ++l) {
    acc += l + 1;
    EXPECT_EQ(x[l], acc);
  }
  // 5 shuffle steps: each is a shfl (32 ops) plus a predicated op (32).
  EXPECT_EQ(stats.alu_ops, 5u * 64u);
}

TEST(Warp, ExclusiveScanMatchesSerial) {
  st::WarpReg<int> x;
  for (int l = 0; l < st::kWarpSize; ++l) x[l] = 2 * l + 1;
  mgs::sim::KernelStats stats;
  st::warp_scan_exclusive(x, Plus<int>{}, stats);
  int acc = 0;
  for (int l = 0; l < st::kWarpSize; ++l) {
    EXPECT_EQ(x[l], acc);
    acc += 2 * l + 1;
  }
}

TEST(Warp, ReduceAndThreadScan) {
  st::WarpReg<int> x;
  x.fill(3);
  mgs::sim::KernelStats stats;
  EXPECT_EQ(st::warp_reduce(x, Plus<int>{}, stats), 96);

  int v[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(st::thread_scan_inclusive(v, 8, Plus<int>{}, stats), 36);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[7], 36);
  st::thread_add_prefix(v, 8, 100, Plus<int>{}, stats);
  EXPECT_EQ(v[0], 101);
  EXPECT_EQ(v[7], 136);
}

TEST(DeviceBuffer, AllocationBudgetIsRaii) {
  st::Device dev = make_device();
  EXPECT_EQ(dev.allocated_bytes(), 0);
  {
    auto buf = dev.alloc<int>(1000);
    EXPECT_EQ(dev.allocated_bytes(), 4000);
    auto copy = buf;  // shared handle, no double count
    EXPECT_EQ(dev.allocated_bytes(), 4000);
  }
  EXPECT_EQ(dev.allocated_bytes(), 0);
}

TEST(DeviceBuffer, OutOfMemoryThrows) {
  st::Device dev = make_device();
  // 12 GB device: a 4 G-element int64 buffer (32 GB) cannot fit.
  EXPECT_THROW(dev.alloc<std::int64_t>(std::int64_t{4} << 30),
               mgs::util::Error);
}

TEST(GlobalView, TransactionAccounting) {
  st::Device dev = make_device();
  auto buf = dev.alloc<int>(4096);
  auto view = buf.view();
  mgs::sim::KernelStats stats;

  (void)view.load(0, stats);  // scalar: whole 32B transaction for 4 bytes
  EXPECT_EQ(stats.bytes_read, 4u);
  EXPECT_EQ(stats.mem_transactions, 1u);

  stats = {};
  (void)view.load_warp(0, stats);  // 32 x 4B contiguous = 4 txns
  EXPECT_EQ(stats.bytes_read, 128u);
  EXPECT_EQ(stats.mem_transactions, 4u);

  stats = {};
  (void)view.load4_warp(0, stats);  // 32 x 16B contiguous = 16 txns
  EXPECT_EQ(stats.bytes_read, 512u);
  EXPECT_EQ(stats.mem_transactions, 16u);

  stats = {};
  st::WarpReg<int> r{};
  view.store_warp_partial(0, 7, r, stats);  // 28 bytes -> 1 txn
  EXPECT_EQ(stats.bytes_written, 28u);
  EXPECT_EQ(stats.mem_transactions, 1u);
}

TEST(GlobalView, RoundTripAndBounds) {
  st::Device dev = make_device();
  auto buf = dev.alloc<int>(256);
  auto view = buf.view();
  mgs::sim::KernelStats stats;
  view.store4(8, {1, 2, 3, 4}, stats);
  const auto v = view.load4(8, stats);
  EXPECT_EQ(v.y, 2);
  EXPECT_EQ(buf.host_span()[11], 4);
  EXPECT_DEATH((void)view.load(256, stats), "out of bounds");
}

TEST(GlobalView, AtomicsWork) {
  st::Device dev = make_device();
  auto buf = dev.alloc<int>(8);
  auto view = buf.view();
  mgs::sim::KernelStats stats;
  view.atomic_store(3, 41, stats);
  EXPECT_EQ(view.atomic_add(3, 1, stats), 41);
  EXPECT_EQ(view.atomic_load(3, stats), 42);
  EXPECT_EQ(view.atomic_peek(3), 42);
}

TEST(ThreadPool, RunsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  st::ThreadPool::instance().run_ordered(1000, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RapidJobTurnoverNeverDoubleExecutes) {
  // Regression test for a job-handoff race: a worker waking late from
  // job A must not claim indices against job B's counters (which could
  // double-execute a block, hang the completion wait, or call a dangling
  // callback). Hammer the pool with many small back-to-back jobs and
  // check every index ran exactly once.
  auto& pool = st::ThreadPool::instance();
  for (int round = 0; round < 2000; ++round) {
    const std::int64_t n = 1 + round % 7;
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    pool.run_ordered(n, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "round=" << round << " i=" << i;
    }
  }
}

TEST(ThreadPool, OrderedClaimAllowsBackwardWaits) {
  // Block i waits for block i-1's flag: must terminate at any pool size
  // thanks to ascending-claim dispatch.
  std::vector<std::atomic<int>> done(64);
  st::ThreadPool::instance().run_ordered(64, [&](std::int64_t i) {
    if (i > 0) {
      while (done[static_cast<std::size_t>(i - 1)].load() == 0) {
        std::this_thread::yield();
      }
    }
    done[static_cast<std::size_t>(i)].store(1);
  });
  EXPECT_EQ(done[63].load(), 1);
}

TEST(Launch, GridIndexingAndClock) {
  st::Device dev = make_device();
  auto buf = dev.alloc<int>(6 * 4);
  auto view = buf.view();
  st::LaunchConfig cfg;
  cfg.name = "index_writer";
  cfg.grid = {6, 4, 1};
  cfg.block = {32, 1, 1};
  cfg.regs_per_thread = 16;
  const double before = dev.clock().now();
  const auto t = st::launch(dev, cfg, [&](st::BlockCtx& ctx) {
    view.store(ctx.block_idx().y * 6 + ctx.block_idx().x,
               ctx.block_idx().y * 100 + ctx.block_idx().x, ctx.stats());
  });
  EXPECT_GT(t.seconds, 0.0);
  EXPECT_DOUBLE_EQ(dev.clock().now(), before + t.seconds);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 6; ++x) {
      EXPECT_EQ(buf.host_span()[static_cast<std::size_t>(y * 6 + x)],
                y * 100 + x);
    }
  }
}

TEST(Launch, SharedMemoryBudgetEnforced) {
  st::Device dev = make_device();
  st::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {32, 1, 1};
  cfg.smem_per_block = 64;
  EXPECT_DEATH(st::launch(dev, cfg,
                          [&](st::BlockCtx& ctx) {
                            (void)ctx.shared<int>(100);  // 400 B > 64 B
                          }),
               "shared memory");
}

TEST(Launch, ValidatesConfig) {
  st::Device dev = make_device();
  st::LaunchConfig cfg;
  cfg.grid = {0, 1, 1};
  cfg.block = {32, 1, 1};
  EXPECT_THROW(st::launch(dev, cfg, [](st::BlockCtx&) {}), mgs::util::Error);
  cfg.grid = {1, 1, 1};
  cfg.block = {2048, 1, 1};
  EXPECT_THROW(st::launch(dev, cfg, [](st::BlockCtx&) {}), mgs::util::Error);
  cfg.block = {128, 1, 1};
  cfg.smem_per_block = 1 << 20;
  EXPECT_THROW(st::launch(dev, cfg, [](st::BlockCtx&) {}), mgs::util::Error);
}

TEST(Launch, ThreeDimensionalGrid) {
  st::Device dev = make_device();
  auto buf = dev.alloc<int>(2 * 3 * 4);
  auto view = buf.view();
  st::LaunchConfig cfg;
  cfg.grid = {2, 3, 4};
  cfg.block = {32, 1, 1};
  st::launch(dev, cfg, [&](st::BlockCtx& ctx) {
    const auto idx = ctx.block_idx();
    view.store((idx.z * 3 + idx.y) * 2 + idx.x,
               100 * idx.z + 10 * idx.y + idx.x, ctx.stats());
  });
  for (int z = 0; z < 4; ++z) {
    for (int y = 0; y < 3; ++y) {
      for (int x = 0; x < 2; ++x) {
        EXPECT_EQ(buf.host_span()[static_cast<std::size_t>((z * 3 + y) * 2 + x)],
                  100 * z + 10 * y + x);
      }
    }
  }
}

TEST(Launch, SharedMemoryMixedTypesAligned) {
  st::Device dev = make_device();
  st::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {32, 1, 1};
  cfg.smem_per_block = 256;
  st::launch(dev, cfg, [&](st::BlockCtx& ctx) {
    auto bytes = ctx.shared<std::uint8_t>(3);  // misaligns the bump pointer
    auto doubles = ctx.shared<double>(8);      // must come back aligned
    bytes[0] = 1;
    doubles[0] = 2.5;
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles.data()) %
                  alignof(double),
              0u);
  });
}

TEST(Launch, DeterministicModeledTime) {
  st::Device dev = make_device();
  auto buf = dev.alloc<int>(1 << 16);
  auto view = buf.view();
  st::LaunchConfig cfg;
  cfg.grid = {64, 1, 1};
  cfg.block = {128, 1, 1};
  auto body = [&](st::BlockCtx& ctx) {
    const std::int64_t base = static_cast<std::int64_t>(ctx.block_idx().x)
                              << 10;
    for (std::int64_t i = 0; i < 1024; i += 32) {
      auto r = view.load_warp(base + i, ctx.stats());
      for (int l = 0; l < st::kWarpSize; ++l) r[l] += 1;
      view.store_warp(base + i, r, ctx.stats());
    }
  };
  const auto t1 = st::launch(dev, cfg, body);
  const auto t2 = st::launch(dev, cfg, body);
  EXPECT_DOUBLE_EQ(t1.seconds, t2.seconds);  // same stats, same model time
}
