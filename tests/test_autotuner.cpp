// Tests for the automatic (s, p, l, K) search (core/autotuner.hpp) and
// the one-call convenience API (core/easy.hpp).

#include <gtest/gtest.h>

#include "mgs/baselines/reference.hpp"
#include "mgs/core/autotuner.hpp"
#include "mgs/core/easy.hpp"
#include "mgs/core/tuning.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
namespace ms = mgs::sim;

TEST(Autotuner, CandidatesRespectPremises) {
  mc::Autotuner tuner(ms::k80_spec());
  const auto plans = tuner.candidates(1 << 18, 2);
  ASSERT_FALSE(plans.empty());
  for (const auto& plan : plans) {
    EXPECT_NO_THROW(plan.validate());
    EXPECT_GE(plan.s13.p, 4);  // int4 vector width
    EXPECT_LE(plan.s13.regs_per_thread(), ms::k80_spec().max_regs_per_thread);
    EXPECT_EQ(plan.s13.lx % 32, 0);
    EXPECT_LE(plan.s13.k, 256);
  }
}

TEST(Autotuner, FindsPlanNoWorseThanPaperDefault) {
  mc::Autotuner tuner(ms::k80_spec());
  const std::int64_t n = 1 << 18;
  const auto& best = tuner.tune(n, 2);

  // Measure the paper-default plan (P=8, Lx=128, K=4) the same way.
  auto default_plan = mc::derive_spl(ms::k80_spec(), 4).plan;
  default_plan.s13.k = 4;
  mgs::simt::Device dev(0, ms::k80_spec());
  auto in = dev.alloc<int>(n * 2);
  auto out = dev.alloc<int>(n * 2);
  const double default_seconds =
      mc::scan_sp<int>(dev, in, out, n, 2, default_plan,
                       mc::ScanKind::kInclusive)
          .seconds;
  EXPECT_LE(best.seconds, default_seconds * 1.0001);
}

TEST(Autotuner, CachesPerShape) {
  mc::Autotuner tuner(ms::k80_spec());
  EXPECT_EQ(tuner.cache_size(), 0u);
  const auto& a = tuner.tune(1 << 16, 1);
  EXPECT_EQ(tuner.cache_size(), 1u);
  const auto& b = tuner.tune(1 << 16, 1);  // cached: same object
  EXPECT_EQ(&a, &b);
  tuner.tune(1 << 16, 2);
  EXPECT_EQ(tuner.cache_size(), 2u);
  tuner.clear_cache();
  EXPECT_EQ(tuner.cache_size(), 0u);
}

TEST(Autotuner, ReportMarksExactlyOneBest) {
  mc::Autotuner tuner(ms::k80_spec());
  tuner.tune(1 << 16, 1);
  const auto& report = tuner.last_report();
  ASSERT_FALSE(report.empty());
  int best_count = 0;
  for (const auto& row : report) {
    EXPECT_GT(row.seconds, 0.0);
    if (row.best) ++best_count;
  }
  EXPECT_EQ(best_count, 1);
}

TEST(Autotuner, RejectsBadShapes) {
  mc::Autotuner tuner(ms::k80_spec());
  EXPECT_THROW(tuner.tune(0, 1), mgs::util::Error);
  EXPECT_THROW(tuner.tune(1024, 0), mgs::util::Error);
}

TEST(EasyScan, ScansHostDataCorrectly) {
  const auto data = mgs::util::random_i32(10000, 3);
  const auto result = mc::scan<int>(data);
  const auto want = mgs::baselines::reference_batch_scan<int>(
      data, 10000, 1, mc::ScanKind::kInclusive);
  EXPECT_EQ(result.output, want);
  EXPECT_GT(result.run.seconds, 0.0);
}

TEST(EasyScan, BatchedAndExclusive) {
  const auto data = mgs::util::random_i32(8 * 1234, 4);
  const auto result = mc::scan<int>(data, mc::ScanKind::kExclusive, /*g=*/8);
  const auto want = mgs::baselines::reference_batch_scan<int>(
      data, 1234, 8, mc::ScanKind::kExclusive);
  EXPECT_EQ(result.output, want);
}

TEST(EasyScan, CustomOperatorAndSpec) {
  const auto data = mgs::util::random_i32(5000, 5, -50, 50);
  const auto result = mc::scan<int, mc::Max<int>>(
      data, mc::ScanKind::kInclusive, 1, {}, ms::pascal_spec());
  int acc = mc::Max<int>::identity();
  for (std::size_t i = 0; i < data.size(); ++i) {
    acc = std::max(acc, data[i]);
    ASSERT_EQ(result.output[i], acc);
  }
}

TEST(EasyScan, RejectsUnevenBatch) {
  const std::vector<int> data(10);
  EXPECT_THROW(mc::scan<int>(data, mc::ScanKind::kInclusive, 3),
               mgs::util::Error);
  EXPECT_THROW(mc::scan<int>(std::span<const int>{}, mc::ScanKind::kInclusive),
               mgs::util::Error);
}
