// Tests for the segmented-scan extension (operator extension over packed
// value/flag pairs, Section 5.1's CUB-segmented discussion).

#include <gtest/gtest.h>

#include "mgs/baselines/reference.hpp"
#include "mgs/core/segmented.hpp"
#include "mgs/core/tuning.hpp"
#include "mgs/util/random.hpp"

namespace mc = mgs::core;
using mgs::baselines::reference_segmented_scan;

namespace {

mc::ScanPlan paper_plan(int k = 2) {
  auto plan = mc::derive_spl(mgs::sim::k80_spec(), 4).plan;
  plan.s13.k = k;
  return plan;
}

/// Every `period`-th element starts a segment (plus a few random heads).
std::vector<int> make_flags(std::int64_t n, std::int64_t period,
                            std::uint64_t seed) {
  std::vector<int> flags(static_cast<std::size_t>(n), 0);
  for (std::int64_t i = 0; i < n; i += period) {
    flags[static_cast<std::size_t>(i)] = 1;
  }
  mgs::util::SplitMix64 rng(seed);
  for (int j = 0; j < n / 50 + 1; ++j) {
    flags[static_cast<std::size_t>(rng.next_below(
        static_cast<std::uint64_t>(n)))] = 1;
  }
  return flags;
}

}  // namespace

TEST(SegOp, AssociativityOnRandomTriples) {
  using P = mc::SegPair<int>;
  mc::SegOp<int, mc::Plus<int>> op;
  mgs::util::SplitMix64 rng(3);
  for (int t = 0; t < 1000; ++t) {
    const P a{static_cast<int>(rng.next_below(100)), static_cast<int>(rng.next_below(2))};
    const P b{static_cast<int>(rng.next_below(100)), static_cast<int>(rng.next_below(2))};
    const P c{static_cast<int>(rng.next_below(100)), static_cast<int>(rng.next_below(2))};
    EXPECT_EQ(op(op(a, b), c), op(a, op(b, c)));
  }
}

TEST(SegOp, IdentityIsNeutral) {
  using P = mc::SegPair<int>;
  mc::SegOp<int, mc::Plus<int>> op;
  const P id = mc::SegOp<int, mc::Plus<int>>::identity();
  const P x{42, 1};
  EXPECT_EQ(op(id, x), x);
  const P y{7, 0};
  EXPECT_EQ(op(id, y), y);
}

struct SegCase {
  std::int64_t n;
  std::int64_t period;
};

class SegmentedSweep : public ::testing::TestWithParam<SegCase> {};

TEST_P(SegmentedSweep, MatchesReference) {
  const auto c = GetParam();
  mgs::simt::Device dev(0, mgs::sim::k80_spec());
  const auto plan = paper_plan();
  const auto values = mgs::util::random_i32(static_cast<std::size_t>(c.n),
                                            static_cast<std::uint64_t>(c.n));
  const auto flags = make_flags(c.n, c.period, 11);

  auto in = dev.alloc<int>(c.n);
  auto fl = dev.alloc<int>(c.n);
  auto out = dev.alloc<int>(c.n);
  std::copy(values.begin(), values.end(), in.host_span().begin());
  std::copy(flags.begin(), flags.end(), fl.host_span().begin());

  const auto r = mc::segmented_scan_sp<int>(dev, in, fl, out, c.n, plan);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.breakdown.get("Pack"), 0.0);
  EXPECT_GT(r.breakdown.get("Unpack"), 0.0);

  std::vector<int> vflags(flags.begin(), flags.end());
  const auto want = reference_segmented_scan<int>(values, vflags);
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(out.host_span()[i], want[i]) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SegmentedSweep,
                         ::testing::Values(SegCase{1 << 12, 64},
                                           SegCase{1 << 15, 1000},
                                           SegCase{1 << 16, 7},
                                           SegCase{12345, 100},
                                           SegCase{100, 1}));

TEST(Segmented, FlagOverheadCostsTime) {
  // The paper's observation about Thrust: carrying a flag array reduces
  // performance. The segmented scan must be measurably slower than the
  // plain scan of the same values.
  mgs::simt::Device dev(0, mgs::sim::k80_spec());
  const auto plan = paper_plan();
  const std::int64_t n = 1 << 18;
  auto in = dev.alloc<int>(n);
  auto fl = dev.alloc<int>(n);
  auto out = dev.alloc<int>(n);

  const auto seg = mc::segmented_scan_sp<int>(dev, in, fl, out, n, plan);
  const auto plain =
      mc::scan_sp<int>(dev, in, out, n, 1, plan, mc::ScanKind::kInclusive);
  EXPECT_GT(seg.seconds, 1.5 * plain.seconds);
}
