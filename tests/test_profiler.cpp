// Tests for the profiling subsystem: record capture from launches,
// transfers and collectives; summaries; chrome-trace export; and the
// guarantee that a disabled profiler records nothing.

#include <gtest/gtest.h>

#include <sstream>

#include "mgs/core/scan_mps.hpp"
#include "mgs/core/scan_multinode.hpp"
#include "mgs/core/scan_sp.hpp"
#include "mgs/core/tuning.hpp"
#include "mgs/sim/profiler.hpp"

namespace mc = mgs::core;
namespace ms = mgs::sim;
namespace mt = mgs::topo;

namespace {

mc::ScanPlan paper_plan(int k) {
  auto plan = mc::derive_spl(ms::k80_spec(), 4).plan;
  plan.s13.k = k;
  return plan;
}

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override { ms::Profiler::instance().clear(); }
  void TearDown() override {
    ms::Profiler::instance().disable();
    ms::Profiler::instance().clear();
  }
};

}  // namespace

TEST_F(ProfilerTest, DisabledProfilerRecordsNothing) {
  mgs::simt::Device dev(0, ms::k80_spec());
  auto in = dev.alloc<int>(1 << 14);
  auto out = dev.alloc<int>(1 << 14);
  mc::scan_sp<int>(dev, in, out, 1 << 14, 1, paper_plan(2),
                   mc::ScanKind::kInclusive);
  EXPECT_EQ(ms::Profiler::instance().size(), 0u);
}

TEST_F(ProfilerTest, CapturesThreeKernelPipeline) {
  ms::ProfileScope scope;
  mgs::simt::Device dev(0, ms::k80_spec());
  auto in = dev.alloc<int>(1 << 16);
  auto out = dev.alloc<int>(1 << 16);
  mc::scan_sp<int>(dev, in, out, 1 << 16, 1, paper_plan(2),
                   mc::ScanKind::kInclusive);

  const auto records = ms::Profiler::instance().records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].name, "chunk_reduce");
  EXPECT_EQ(records[1].name, "intermediate_scan");
  EXPECT_EQ(records[2].name, "scan_add");
  for (const auto& r : records) {
    EXPECT_EQ(r.kind, ms::EventKind::kKernel);
    EXPECT_EQ(r.device_id, 0);
    EXPECT_GT(r.duration_seconds, 0.0);
    EXPECT_GT(r.bytes, 0u);
  }
  // Records are back-to-back on the device timeline.
  EXPECT_DOUBLE_EQ(records[1].start_seconds,
                   records[0].start_seconds + records[0].duration_seconds);
  // Stage 1/3 run at the Premise-1 occupancy.
  EXPECT_DOUBLE_EQ(records[0].occupancy, 1.0);
}

TEST_F(ProfilerTest, CapturesTransfersAndCollectives) {
  ms::ProfileScope scope;
  auto cluster = mt::tsubame_kfc_cluster(2);
  std::vector<int> ids = {0, 1, 8, 9};
  mgs::msg::Communicator comm(cluster, ids);
  std::vector<mc::GpuBatch<int>> batches;
  const std::int64_t n = 1 << 14;
  for (int id : ids) {
    mc::GpuBatch<int> b;
    b.in = cluster.device(id).alloc<int>(n / 4);
    b.out = cluster.device(id).alloc<int>(n / 4);
    batches.push_back(std::move(b));
  }
  mc::scan_mps_multinode<int>(comm, batches, n, 1, paper_plan(1),
                              mc::ScanKind::kInclusive);

  bool saw_gather = false, saw_barrier = false, saw_kernel = false;
  for (const auto& r : ms::Profiler::instance().records()) {
    saw_gather |= r.name == "MPI_Gather" && r.kind == ms::EventKind::kCollective;
    saw_barrier |= r.name == "MPI_Barrier";
    saw_kernel |= r.kind == ms::EventKind::kKernel;
  }
  EXPECT_TRUE(saw_gather);
  EXPECT_TRUE(saw_barrier);
  EXPECT_TRUE(saw_kernel);
}

TEST_F(ProfilerTest, SummaryAggregatesByName) {
  ms::ProfileScope scope;
  mgs::simt::Device dev(0, ms::k80_spec());
  auto in = dev.alloc<int>(1 << 14);
  auto out = dev.alloc<int>(1 << 14);
  for (int i = 0; i < 3; ++i) {
    mc::scan_sp<int>(dev, in, out, 1 << 14, 1, paper_plan(2),
                     mc::ScanKind::kInclusive);
  }
  const auto rows = ms::Profiler::instance().summary();
  ASSERT_EQ(rows.size(), 3u);  // three kernel names
  double prev = 1e30;
  for (const auto& row : rows) {
    EXPECT_EQ(row.count, 3u);
    EXPECT_LE(row.total_seconds, prev);  // sorted descending
    prev = row.total_seconds;
  }
}

TEST_F(ProfilerTest, ChromeTraceIsWellFormedJson) {
  ms::ProfileScope scope;
  mgs::simt::Device dev(0, ms::k80_spec());
  auto in = dev.alloc<int>(1 << 14);
  auto out = dev.alloc<int>(1 << 14);
  mc::scan_sp<int>(dev, in, out, 1 << 14, 1, paper_plan(2),
                   mc::ScanKind::kInclusive);

  std::ostringstream os;
  ms::Profiler::instance().write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"chunk_reduce\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Balanced braces (cheap well-formedness check).
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(ProfilerTest, NestedScopeRestoresOuterEnable) {
  EXPECT_FALSE(ms::Profiler::instance().enabled());
  {
    ms::ProfileScope outer;
    EXPECT_TRUE(ms::Profiler::instance().enabled());
    {
      ms::ProfileScope inner;
      EXPECT_TRUE(ms::Profiler::instance().enabled());
    }
    // The inner scope must not clobber the outer enable.
    EXPECT_TRUE(ms::Profiler::instance().enabled());
  }
  EXPECT_FALSE(ms::Profiler::instance().enabled());
}

TEST_F(ProfilerTest, ClearResets) {
  ms::ProfileScope scope;
  ms::Profiler::instance().record({"x", ms::EventKind::kKernel, 0, 0, 1, 2, 3, 0.5});
  EXPECT_EQ(ms::Profiler::instance().size(), 1u);
  ms::Profiler::instance().clear();
  EXPECT_EQ(ms::Profiler::instance().size(), 0u);
  EXPECT_TRUE(ms::Profiler::instance().summary().empty());
}
