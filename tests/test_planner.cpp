// Tests for the Premise-4 planner: which proposal gets chosen for which
// problem shape on the paper's platform.

#include <gtest/gtest.h>

#include "mgs/core/planner.hpp"

namespace mc = mgs::core;
namespace mt = mgs::topo;

namespace {
mc::PlannerInput shape(std::int64_t n, std::int64_t g) {
  mc::PlannerInput in;
  in.n = n;
  in.g = g;
  in.dtype = mc::DType::kI32;
  return in;
}
}  // namespace

TEST(Planner, SmallSingleProblemStaysOnOneGpu) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  const auto c = mc::choose_proposal(cluster, shape(1 << 20, 1));
  EXPECT_EQ(c.proposal, mc::Proposal::kSingleGpu);
  EXPECT_EQ(c.w, 1);
  EXPECT_FALSE(c.rationale.empty());
}

TEST(Planner, LargeSingleProblemScattersOverOneNetwork) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  // ~4 GiB of payload: fits one K80 but big enough to benefit from MPS.
  const auto c = mc::choose_proposal(cluster, shape(std::int64_t{1} << 29, 1));
  EXPECT_EQ(c.proposal, mc::Proposal::kMps);
  EXPECT_EQ(c.v, 4);
  EXPECT_EQ(c.y, 1);
}

TEST(Planner, BatchPrefersMppc) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  const auto c = mc::choose_proposal(cluster, shape(1 << 24, 16));
  EXPECT_EQ(c.proposal, mc::Proposal::kMppc);
  EXPECT_GE(c.v, 2);
  EXPECT_EQ(c.y, 2);  // both networks busy with problems
}

TEST(Planner, ProblemSpanningNetworksUsesMps) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  // One problem needing more than one network's memory (4 x ~10.8 GiB):
  // 2*N*4 bytes > 4*usable -> N > ~5.4G elements.
  const auto c =
      mc::choose_proposal(cluster, shape(std::int64_t{6} << 30, 1));
  EXPECT_EQ(c.proposal, mc::Proposal::kMps);
  EXPECT_EQ(c.w, 8);
  EXPECT_EQ(c.m, 1);  // node count minimized (MPI overhead)
}

TEST(Planner, ProblemSpanningNodesGoesMultiNode) {
  auto cluster = mt::tsubame_kfc_cluster(4);
  // One problem bigger than a node's 8 GPUs can hold.
  const auto c =
      mc::choose_proposal(cluster, shape(std::int64_t{12} << 30, 1));
  EXPECT_EQ(c.proposal, mc::Proposal::kMultiNode);
  EXPECT_GE(c.m, 2);
  EXPECT_EQ(c.w, 8);
}

TEST(Planner, RejectsImpossibleBatch) {
  auto cluster = mt::tsubame_kfc_cluster(1);
  EXPECT_THROW(
      mc::choose_proposal(cluster, shape(std::int64_t{40} << 30, 100)),
      mgs::util::Error);
  EXPECT_THROW(mc::choose_proposal(cluster, shape(0, 1)), mgs::util::Error);
}

TEST(Planner, ProposalNames) {
  EXPECT_STREQ(mc::to_string(mc::Proposal::kSingleGpu), "Scan-SP");
  EXPECT_STREQ(mc::to_string(mc::Proposal::kMps), "Scan-MPS");
  EXPECT_STREQ(mc::to_string(mc::Proposal::kMppc), "Scan-MP-PC");
}
