#pragma once
/// \file scan_mps.hpp
/// Scan-MPS: Multi-GPU Problem Scattering (Section 4.1, Figures 6-7).
/// Every problem is split across all W participating GPUs; each GPU runs
/// Stage 1 on its G portions, the chunk reductions converge on a master
/// GPU for Stage 2, and the scanned prefixes return for Stage 3.

#include <algorithm>
#include <string>
#include <vector>

#include "mgs/core/kernels.hpp"
#include "mgs/core/plan.hpp"
#include "mgs/core/workspace.hpp"
#include "mgs/obs/span.hpp"
#include "mgs/simt/stream.hpp"
#include "mgs/topo/transfer.hpp"

namespace mgs::core {

/// Per-GPU problem portions: `in`/`out` hold G portions of n_local
/// contiguous elements (portion of problem g at offset g*n_local).
template <typename T>
struct GpuBatch {
  simt::DeviceBuffer<T> in;
  simt::DeviceBuffer<T> out;
};

/// Copy G host-resident problems of N elements into already-allocated
/// per-GPU input portions (portion d of each problem to batches[d]).
/// Untimed: the paper's evaluation starts with data already in GPU
/// memory. Factored out of distribute_batch so executors can refill
/// persistent batches without reallocating.
template <typename T>
void scatter_batch(std::span<const T> host, std::vector<GpuBatch<T>>& batches,
                   std::int64_t n, std::int64_t g) {
  const int w = static_cast<int>(batches.size());
  MGS_REQUIRE(w > 0, "scatter_batch: need at least one GPU");
  MGS_REQUIRE(n % w == 0, "scatter_batch: N must be divisible by W");
  MGS_REQUIRE(static_cast<std::int64_t>(host.size()) >= n * g,
              "scatter_batch: host data too small");
  const std::int64_t n_local = n / w;
  for (int d = 0; d < w; ++d) {
    auto dst = batches[static_cast<std::size_t>(d)].in.host_span();
    MGS_REQUIRE(static_cast<std::int64_t>(dst.size()) >= n_local * g,
                "scatter_batch: batch input too small");
    for (std::int64_t gg = 0; gg < g; ++gg) {
      const auto row = host.begin() + (gg * n + d * n_local);
      std::copy(row, row + n_local, dst.begin() + gg * n_local);
    }
  }
}

/// Reassemble the scanned problems from the per-GPU outputs into a host
/// range (untimed). Inverse of scatter_batch.
template <typename T>
void gather_batch(const std::vector<GpuBatch<T>>& batches, std::int64_t n,
                  std::int64_t g, std::span<T> host) {
  const int w = static_cast<int>(batches.size());
  MGS_REQUIRE(w > 0 && n % w == 0, "gather_batch: bad shape");
  MGS_REQUIRE(static_cast<std::int64_t>(host.size()) >= n * g,
              "gather_batch: host range too small");
  const std::int64_t n_local = n / w;
  for (int d = 0; d < w; ++d) {
    const auto src = batches[static_cast<std::size_t>(d)].out.host_span();
    for (std::int64_t gg = 0; gg < g; ++gg) {
      const auto row = src.begin() + gg * n_local;
      std::copy(row, row + n_local, host.begin() + (gg * n + d * n_local));
    }
  }
}

/// Split G host-resident problems of N elements across `gpus` (portion d
/// of each problem to gpus[d]) and allocate matching outputs. Placement is
/// untimed: the paper's evaluation starts with data already in GPU memory.
template <typename T>
std::vector<GpuBatch<T>> distribute_batch(topo::Cluster& cluster,
                                          const std::vector<int>& gpus,
                                          std::span<const T> host,
                                          std::int64_t n, std::int64_t g) {
  const int w = static_cast<int>(gpus.size());
  MGS_REQUIRE(w > 0, "distribute_batch: need at least one GPU");
  MGS_REQUIRE(n % w == 0, "distribute_batch: N must be divisible by W");
  const std::int64_t n_local = n / w;
  std::vector<GpuBatch<T>> batches;
  batches.reserve(static_cast<std::size_t>(w));
  for (int d = 0; d < w; ++d) {
    GpuBatch<T> b;
    b.in = cluster.device(gpus[static_cast<std::size_t>(d)])
               .template alloc<T>(n_local * g);
    b.out = cluster.device(gpus[static_cast<std::size_t>(d)])
                .template alloc<T>(n_local * g);
    batches.push_back(std::move(b));
  }
  scatter_batch(host, batches, n, g);
  return batches;
}

/// Reassemble the scanned problems from the per-GPU outputs (untimed).
template <typename T>
std::vector<T> collect_batch(const std::vector<GpuBatch<T>>& batches,
                             std::int64_t n, std::int64_t g) {
  std::vector<T> host(static_cast<std::size_t>(n * g));
  gather_batch(batches, n, g, std::span<T>(host));
  return host;
}

/// Stage-granular checkpoint for Scan-MPS. The scan functions record their
/// progress here at every stage boundary (and per gather/scatter unit), so
/// a mid-run device/link failure unwinds with the completed work intact:
/// the executor's recovery driver remaps the dead device's portions onto a
/// survivor, regresses exactly the flags whose backing state died, and
/// calls the scan again -- it continues from the last completed boundary
/// instead of restarting. Passing no checkpoint (the default) uses a
/// function-local one, which makes the first pass bit-identical to the
/// pre-checkpoint code: every guard is all-pending and every boundary
/// instant is computed from the same clock maxima as before.
template <typename T>
struct MpsCheckpoint {
  bool active = false;   ///< initialized by a scan call; false when consumed
  bool overlap = false;  ///< which pipeline filled the flags
  int w = 0;
  int k = 1;  ///< waves (overlap path)
  double t0 = 0.0;
  double last_boundary = 0.0;  ///< latest completed stage boundary
  RunResult partial;           ///< breakdown accumulated so far
  sim::FaultCounters counters; ///< transfer counters incl. aborted attempts

  /// Device-resident partial state. aux_local holds the raw Stage-1 chunk
  /// reductions; prefix_local receives the scanned prefixes scattered
  /// back. They are separate buffers so a master death can re-gather the
  /// raw reductions -- a generic operator cannot reconstruct them from
  /// prefixes (max/min are not invertible).
  std::vector<WorkspacePool::Handle<T>> aux_local;
  std::vector<WorkspacePool::Handle<T>> prefix_local;
  WorkspacePool::Handle<T> aux_all;  ///< on the master
  WorkspacePool::Handle<T> carry;    ///< overlap path: per-row Stage-2 carry

  /// Progress flags. s1_done is per portion (size w) on both paths;
  /// gathered/scanned/scattered are per portion on the sync path and per
  /// (wave, device) cell (size k*w) on the overlap path.
  std::vector<char> s1_done;
  std::vector<char> gathered;
  std::vector<char> scanned;    ///< overlap only
  std::vector<char> scattered;
  bool stage2_done = false;     ///< sync only

  /// Overlap-path dependency events (absolute simulated times, so they
  /// stay valid across a resume).
  std::vector<simt::Event> ev_s1;
  std::vector<simt::Event> ev_gather;
  std::vector<simt::Event> ev_scatter;

  /// Resume bookkeeping, filled by the executor's recovery driver.
  int resumes = 0;
  std::vector<std::string> resumed_stages;

  /// The most advanced stage boundary the surviving state still covers
  /// (what a resume continues from), named like the stage spans.
  const char* resume_boundary() const {
    const auto any = [](const std::vector<char>& f) {
      return std::any_of(f.begin(), f.end(), [](char x) { return x != 0; });
    };
    if (overlap ? any(scanned) : stage2_done) return "Stage2";
    if (any(gathered)) return "AuxGather";
    if (any(s1_done)) return "Stage1";
    return "Start";
  }
};

namespace detail {

/// Event-driven Scan-MPS (plan.pipe.overlap): instead of global barriers
/// between Stage 1, the aux gather, Stage 2, the prefix scatter and
/// Stage 3, every dependency is a per-(device, wave) event. The batch
/// dimension G is split into plan.pipe.waves sub-batches: each GPU's wave-v
/// chunk reductions are DMA-gathered to the master the moment that GPU
/// finishes computing them (overlapping later waves' Stage 1), the master
/// scans each (wave, device) column chunk of the auxiliary matrix as soon
/// as it arrives -- carrying the running row prefix in a per-row carry
/// buffer -- and scatters the slice straight back so Stage 3 starts per
/// GPU per wave on arrival. Stage-2 chunks of one row are issued in
/// ascending device order on the master's in-order compute engine, so the
/// result is bit-identical to the synchronous path (the operator
/// application order per row is unchanged).
///
/// Breakdown stages are Stage1 / Stage2+Comm / Stage3, cut at the same
/// phase-boundary instants the stage spans close at, so the entries sum to
/// result.seconds exactly (critical-path telescoping preserved). Kernels
/// and copies of later pipeline stages may *start* inside an earlier
/// window -- that is the overlap -- and the critical-path analyzer clips
/// leaf spans by time, attributing them to the window they occupy.
template <typename T, typename Op>
RunResult scan_mps_overlapped(topo::Cluster& cluster,
                              const std::vector<int>& gpus,
                              std::vector<GpuBatch<T>>& batches,
                              std::int64_t n, std::int64_t g,
                              const ScanPlan& plan, ScanKind kind, Op op,
                              WorkspacePool* ws, MpsCheckpoint<T>& c) {
  const int w = static_cast<int>(gpus.size());
  const std::int64_t n_local = n / w;
  const BatchLayout lay = make_layout(n_local, g, plan.s13);
  MGS_REQUIRE(lay.bx >= 1,
              "scan_mps: every GPU needs at least one chunk (Equation 2)");
  const int k = static_cast<int>(
      std::clamp<std::int64_t>(plan.pipe.waves, 1, g));
  const auto wave_begin = [&](int v) { return (g * v) / k; };

  topo::TransferEngine xfer(cluster);
  auto compute_front = [&] {
    double t = 0.0;
    for (int d : gpus) t = std::max(t, cluster.device(d).clock().now());
    return t;
  };

  if (!c.active) {
    c.active = true;
    c.overlap = true;
    c.w = w;
    c.k = k;
    c.partial = RunResult{};
    c.partial.payload_bytes =
        2ull * static_cast<std::uint64_t>(n) * g * sizeof(T);
    // Entry instant: both engines of every participant (free-function
    // calls may arrive with clocks already advanced).
    double t0 = compute_front();
    for (int d : gpus) t0 = std::max(t0, cluster.device(d).dma_clock().now());
    c.t0 = t0;
    c.last_boundary = t0;
    c.s1_done.assign(static_cast<std::size_t>(w), 0);
    c.gathered.assign(static_cast<std::size_t>(k * w), 0);
    c.scanned.assign(static_cast<std::size_t>(k * w), 0);
    c.scattered.assign(static_cast<std::size_t>(k * w), 0);
    c.ev_s1.assign(static_cast<std::size_t>(k * w), simt::Event{});
    c.ev_gather.assign(static_cast<std::size_t>(k * w), simt::Event{});
    c.ev_scatter.assign(static_cast<std::size_t>(k * w), simt::Event{});
    c.aux_local.clear();
    c.prefix_local.clear();
    for (int d = 0; d < w; ++d) {
      simt::Device& dev = cluster.device(gpus[static_cast<std::size_t>(d)]);
      c.aux_local.push_back(acquire_workspace<T>(ws, dev, lay.aux_elems()));
      c.prefix_local.push_back(
          acquire_workspace<T>(ws, dev, lay.aux_elems()));
    }
    simt::Device& master_dev0 = cluster.device(gpus[0]);
    c.aux_all = acquire_workspace<T>(ws, master_dev0, g * w * lay.bx);
    c.carry = acquire_workspace<T>(ws, master_dev0, g);
  }
  MGS_REQUIRE(c.overlap && c.w == w && c.k == k,
              "scan_mps: checkpoint shape mismatch on resume");

  const int master = gpus[0];
  simt::Device& master_dev = cluster.device(master);
  const std::int64_t row_len = static_cast<std::int64_t>(w) * lay.bx;
  const auto idx = [](int v, int d, int w_) { return v * w_ + d; };
  const auto pending = [](const std::vector<char>& f) {
    return std::any_of(f.begin(), f.end(), [](char x) { return x == 0; });
  };

  try {
    // ---- Stage 1, split into waves per GPU; each wave records an event
    // the gather of that wave depends on. On resume, only portions whose
    // reductions were lost re-run (chunk_reduce is pure, so relaunching a
    // whole portion reproduces its values and events bit-identically).
    if (pending(c.s1_done)) {
      const double t_in = std::max(c.last_boundary, compute_front());
      auto stage1 = obs::open_stage("Stage1", t_in);
      for (int d = 0; d < w; ++d) {
        if (c.s1_done[static_cast<std::size_t>(d)] != 0) continue;
        simt::Stream s(cluster.device(gpus[static_cast<std::size_t>(d)]));
        for (int v = 0; v < k; ++v) {
          const std::int64_t g0 = wave_begin(v);
          const std::int64_t gn = wave_begin(v + 1) - g0;
          launch_chunk_reduce(
              s.device(), batches[static_cast<std::size_t>(d)].in,
              c.aux_local[static_cast<std::size_t>(d)].buffer(), lay,
              plan.s13, op, g0, gn);
          c.ev_s1[static_cast<std::size_t>(idx(v, d, w))] = s.record();
        }
        c.s1_done[static_cast<std::size_t>(d)] = 1;
      }
      const double t_out = std::max(t_in, compute_front());
      stage1.close(t_out);
      c.partial.breakdown.add("Stage1", t_out - t_in);
      c.last_boundary = t_out;
    }

    // ---- Stage 2 + communication, fully event-driven. Gathers are
    // enqueued on the DMA engines gated only by their producing wave's
    // event; the master scans each arriving (wave, device) column chunk
    // and scatters it straight back. Every (wave, device) cell records its
    // progress, so a resume skips the cells whose data already lives (or
    // landed) on the master.
    if (pending(c.scattered)) {
      const double t_in = std::max(c.last_boundary, compute_front());
      auto stage2 = obs::open_stage("Stage2+Comm", t_in);
      for (int v = 0; v < k; ++v) {
        const std::int64_t g0 = wave_begin(v);
        const std::int64_t gn = wave_begin(v + 1) - g0;
        for (int d = 0; d < w; ++d) {
          const auto i = static_cast<std::size_t>(idx(v, d, w));
          if (c.gathered[i] != 0) continue;
          c.ev_gather[i] =
              xfer.copy_2d_async(
                      c.aux_all.buffer(), g0 * row_len + d * lay.bx, row_len,
                      c.aux_local[static_cast<std::size_t>(d)].buffer(),
                      g0 * lay.bx, lay.bx, gn, lay.bx, c.ev_s1[i])
                  .done;
          c.gathered[i] = 1;
        }
      }
      // The master consumes cells in (wave, device) program order -- and a
      // resume replays the skip-prefix in the same order -- so the per-row
      // carry accumulates operator applications in exactly the synchronous
      // path's order: results stay bit-identical across healthy runs,
      // overlapped runs, and resumed runs.
      simt::Stream master_stream(master_dev);
      for (int v = 0; v < k; ++v) {
        const std::int64_t g0 = wave_begin(v);
        const std::int64_t gn = wave_begin(v + 1) - g0;
        for (int d = 0; d < w; ++d) {
          const auto i = static_cast<std::size_t>(idx(v, d, w));
          if (c.scanned[i] == 0) {
            master_stream.wait(c.ev_gather[i]);
            launch_intermediate_scan_slice(master_dev, c.aux_all.buffer(),
                                           row_len, g0, gn, d * lay.bx,
                                           lay.bx, c.carry.buffer(), plan.s2,
                                           op);
            c.scanned[i] = 1;
          }
          if (c.scattered[i] == 0) {
            c.ev_scatter[i] =
                xfer.copy_2d_async(
                        c.prefix_local[static_cast<std::size_t>(d)].buffer(),
                        g0 * lay.bx, lay.bx, c.aux_all.buffer(),
                        g0 * row_len + d * lay.bx, row_len, gn, lay.bx,
                        master_stream.record())
                    .done;
            c.scattered[i] = 1;
          }
        }
      }
      double t_out = t_in;
      for (const simt::Event& e : c.ev_scatter) {
        t_out = std::max(t_out, e.seconds);
      }
      stage2.close(t_out);
      c.partial.breakdown.add("Stage2+Comm", t_out - t_in);
      c.last_boundary = t_out;
    }

    // ---- Stage 3 per GPU per wave, gated on that wave's prefix arrival.
    // Failures can only surface in the copy stages above, so Stage 3
    // always runs whole once reached.
    {
      const double t_in = std::max(c.last_boundary, compute_front());
      auto stage3 = obs::open_stage("Stage3", t_in);
      for (int d = 0; d < w; ++d) {
        simt::Stream s(cluster.device(gpus[static_cast<std::size_t>(d)]));
        for (int v = 0; v < k; ++v) {
          const std::int64_t g0 = wave_begin(v);
          const std::int64_t gn = wave_begin(v + 1) - g0;
          s.wait(c.ev_scatter[static_cast<std::size_t>(idx(v, d, w))]);
          launch_scan_add(s.device(), batches[static_cast<std::size_t>(d)].in,
                          batches[static_cast<std::size_t>(d)].out,
                          c.prefix_local[static_cast<std::size_t>(d)].buffer(),
                          lay, plan.s13, kind, op, g0, gn);
        }
      }
      const double t_out = std::max(t_in, compute_front());
      stage3.close(t_out);
      c.partial.breakdown.add("Stage3", t_out - t_in);
      c.last_boundary = t_out;
    }
  } catch (...) {
    // Preserve the counters of the aborted attempt (this engine dies with
    // the unwind); the recovery driver re-enters with the same checkpoint.
    c.counters.merge(xfer.fault_counters());
    throw;
  }

  RunResult result = std::move(c.partial);
  c.partial = RunResult{};
  c.active = false;
  result.seconds = c.last_boundary - c.t0;
  c.counters.merge(xfer.fault_counters());
  result.faults.counters = c.counters;
  result.faults.resumed_stages = c.resumed_stages;
  return result;
}

}  // namespace detail

/// Run Scan-MPS over `gpus` (gpus[0] is the master). Batches must follow
/// the distribute_batch layout. Returns the simulated makespan across the
/// participating GPUs plus the phase breakdown. When `ws` is given, the
/// auxiliary arrays are leased from it instead of allocated per call.
/// With plan.pipe.overlap set (the planner's default for multi-GPU plans),
/// the event-driven wave pipeline above replaces the bulk-synchronous
/// phases; results are bit-identical either way.
template <typename T, typename Op = Plus<T>>
RunResult scan_mps(topo::Cluster& cluster, const std::vector<int>& gpus,
                   std::vector<GpuBatch<T>>& batches, std::int64_t n,
                   std::int64_t g, const ScanPlan& plan, ScanKind kind,
                   Op op = {}, WorkspacePool* ws = nullptr,
                   MpsCheckpoint<T>* ck = nullptr) {
  plan.validate();
  const int w = static_cast<int>(gpus.size());
  MGS_REQUIRE(w > 0 && static_cast<int>(batches.size()) == w,
              "scan_mps: one batch per GPU required");
  MGS_REQUIRE(n % w == 0, "scan_mps: N must be divisible by W");
  MpsCheckpoint<T> local_ck;
  MpsCheckpoint<T>& c = ck != nullptr ? *ck : local_ck;
  if (plan.pipe.overlap && w > 1) {
    return detail::scan_mps_overlapped(cluster, gpus, batches, n, g, plan,
                                       kind, op, ws, c);
  }
  const std::int64_t n_local = n / w;
  const BatchLayout lay = make_layout(n_local, g, plan.s13);
  MGS_REQUIRE(lay.bx >= 1,
              "scan_mps: every GPU needs at least one chunk (Equation 2)");

  topo::TransferEngine xfer(cluster);
  auto phase_start = [&] {
    double t = 0.0;
    for (int d : gpus) t = std::max(t, cluster.device(d).clock().now());
    return t;
  };

  if (!c.active) {
    c.active = true;
    c.overlap = false;
    c.w = w;
    c.k = 1;
    c.partial = RunResult{};
    c.partial.payload_bytes =
        2ull * static_cast<std::uint64_t>(n) * g * sizeof(T);
    c.t0 = phase_start();
    c.last_boundary = c.t0;
    c.s1_done.assign(static_cast<std::size_t>(w), 0);
    c.gathered.assign(static_cast<std::size_t>(w), 0);
    c.scanned.clear();
    c.scattered.assign(static_cast<std::size_t>(w), 0);
    c.stage2_done = false;
    // Per-GPU auxiliary arrays (problem-major): aux_local holds the raw
    // chunk reductions, prefix_local the scanned prefixes coming back;
    // plus the master's combined array, G rows of W*bx totals ([g][d][c]).
    c.aux_local.clear();
    c.prefix_local.clear();
    for (int d = 0; d < w; ++d) {
      simt::Device& dev = cluster.device(gpus[static_cast<std::size_t>(d)]);
      c.aux_local.push_back(acquire_workspace<T>(ws, dev, lay.aux_elems()));
      c.prefix_local.push_back(
          acquire_workspace<T>(ws, dev, lay.aux_elems()));
    }
    c.aux_all =
        acquire_workspace<T>(ws, cluster.device(gpus[0]), g * w * lay.bx);
  }
  MGS_REQUIRE(!c.overlap && c.w == w,
              "scan_mps: checkpoint shape mismatch on resume");

  const int master = gpus[0];
  const auto pending = [](const std::vector<char>& f) {
    return std::any_of(f.begin(), f.end(), [](char x) { return x == 0; });
  };

  try {
    // ---- Stage 1 on every GPU (concurrent; each device clock advances
    // independently). On resume, only portions whose reductions died
    // re-run (chunk_reduce is pure, so the values come back identical).
    if (pending(c.s1_done)) {
      const double t_in = std::max(c.last_boundary, phase_start());
      auto stage1 = obs::open_stage("Stage1", t_in);
      for (int d = 0; d < w; ++d) {
        if (c.s1_done[static_cast<std::size_t>(d)] != 0) continue;
        launch_chunk_reduce(cluster.device(gpus[static_cast<std::size_t>(d)]),
                            batches[static_cast<std::size_t>(d)].in,
                            c.aux_local[static_cast<std::size_t>(d)].buffer(),
                            lay, plan.s13, op);
        c.s1_done[static_cast<std::size_t>(d)] = 1;
      }
      const double t_out = std::max(t_in, phase_start());
      stage1.close(t_out);
      c.partial.breakdown.add("Stage1", t_out - t_in);
      c.last_boundary = t_out;
    }

    // ---- Gather the chunk reductions on the master: per source GPU one
    // strided 2-D copy (G rows of bx), problem-major on arrival. A copy
    // that hits a dead device/link throws here with the earlier portions'
    // flags already set -- their data lives in the master's aux_all.
    if (pending(c.gathered)) {
      const double t_in = std::max(c.last_boundary, phase_start());
      auto gather_stage = obs::open_stage("AuxGather", t_in);
      for (int d = 0; d < w; ++d) {
        if (c.gathered[static_cast<std::size_t>(d)] != 0) continue;
        xfer.copy_2d(c.aux_all.buffer(),
                     static_cast<std::int64_t>(d) * lay.bx,
                     static_cast<std::int64_t>(w) * lay.bx,
                     c.aux_local[static_cast<std::size_t>(d)].buffer(), 0,
                     lay.bx, g, lay.bx);
        c.gathered[static_cast<std::size_t>(d)] = 1;
      }
      const double t_out = std::max(t_in, phase_start());
      gather_stage.close(t_out);
      c.partial.breakdown.add("AuxGather", t_out - t_in);
      c.last_boundary = t_out;
    }

    // ---- Stage 2 on the master only (empirically better than splitting
    // it across GPUs, per Section 4.1).
    if (!c.stage2_done) {
      const double t_in = std::max(c.last_boundary, phase_start());
      auto stage2 = obs::open_stage("Stage2", t_in, master);
      launch_intermediate_scan(cluster.device(master), c.aux_all.buffer(),
                               static_cast<std::int64_t>(w) * lay.bx, g,
                               plan.s2, op);
      c.stage2_done = true;
      const double t_out = std::max(t_in, phase_start());
      stage2.close(t_out);
      c.partial.breakdown.add("Stage2", t_out - t_in);
      c.last_boundary = t_out;
    }

    // ---- Scatter each GPU's slice of scanned prefixes back (into the
    // separate prefix arrays; the raw reductions in aux_local stay valid
    // for a re-gather if the master dies later).
    if (pending(c.scattered)) {
      const double t_in = std::max(c.last_boundary, phase_start());
      auto scatter_stage = obs::open_stage("AuxScatter", t_in);
      for (int d = 0; d < w; ++d) {
        if (c.scattered[static_cast<std::size_t>(d)] != 0) continue;
        xfer.copy_2d(c.prefix_local[static_cast<std::size_t>(d)].buffer(), 0,
                     lay.bx, c.aux_all.buffer(),
                     static_cast<std::int64_t>(d) * lay.bx,
                     static_cast<std::int64_t>(w) * lay.bx, g, lay.bx);
        c.scattered[static_cast<std::size_t>(d)] = 1;
      }
      const double t_out = std::max(t_in, phase_start());
      scatter_stage.close(t_out);
      c.partial.breakdown.add("AuxScatter", t_out - t_in);
      c.last_boundary = t_out;
    }

    // ---- Stage 3 on every GPU (no transfers left: always runs whole).
    {
      const double t_in = std::max(c.last_boundary, phase_start());
      auto stage3 = obs::open_stage("Stage3", t_in);
      for (int d = 0; d < w; ++d) {
        launch_scan_add(
            cluster.device(gpus[static_cast<std::size_t>(d)]),
            batches[static_cast<std::size_t>(d)].in,
            batches[static_cast<std::size_t>(d)].out,
            c.prefix_local[static_cast<std::size_t>(d)].buffer(), lay,
            plan.s13, kind, op);
      }
      const double t_out = std::max(t_in, phase_start());
      stage3.close(t_out);
      c.partial.breakdown.add("Stage3", t_out - t_in);
      c.last_boundary = t_out;
    }
  } catch (...) {
    c.counters.merge(xfer.fault_counters());
    throw;
  }

  RunResult result = std::move(c.partial);
  c.partial = RunResult{};
  c.active = false;
  result.seconds = c.last_boundary - c.t0;
  c.counters.merge(xfer.fault_counters());
  result.faults.counters = c.counters;
  result.faults.resumed_stages = c.resumed_stages;
  return result;
}

/// Scan-MPS variant with direct peer writes: when every participating GPU
/// shares a PCIe network with the master, Stage 1 writes its chunk
/// reductions straight into the master's combined auxiliary array through
/// UVA peer access (Section 2: P2P copies are asynchronous and overlap
/// with computation), eliminating the separate gather step. The scattered
/// peer writes ride the P2P link pipelined behind the kernel; the model
/// charges the link time minus the overlap with Stage 1.
///
/// Requires all GPUs on one PCIe network (throws util::Error otherwise);
/// the scatter-back still uses explicit copies (Stage 3 needs the data
/// resident before it starts).
template <typename T, typename Op = Plus<T>>
RunResult scan_mps_direct(topo::Cluster& cluster, const std::vector<int>& gpus,
                          std::vector<GpuBatch<T>>& batches, std::int64_t n,
                          std::int64_t g, const ScanPlan& plan, ScanKind kind,
                          Op op = {}, WorkspacePool* ws = nullptr) {
  plan.validate();
  const int w = static_cast<int>(gpus.size());
  MGS_REQUIRE(w > 0 && static_cast<int>(batches.size()) == w,
              "scan_mps_direct: one batch per GPU required");
  MGS_REQUIRE(n % w == 0, "scan_mps_direct: N must be divisible by W");
  const int master = gpus[0];
  for (int d : gpus) {
    const auto link = cluster.link_between(master, d);
    MGS_REQUIRE(link == topo::LinkType::kSelf || link == topo::LinkType::kP2P,
                "scan_mps_direct: all GPUs must share the master's PCIe "
                "network (peer access)");
  }
  const std::int64_t n_local = n / w;
  const BatchLayout lay = make_layout(n_local, g, plan.s13);

  RunResult result;
  result.payload_bytes = 2ull * static_cast<std::uint64_t>(n) * g * sizeof(T);
  topo::TransferEngine xfer(cluster);
  auto phase_start = [&] {
    double t = 0.0;
    for (int d : gpus) t = std::max(t, cluster.device(d).clock().now());
    return t;
  };
  const double t0 = phase_start();

  auto aux_all =
      acquire_workspace<T>(ws, cluster.device(master), g * w * lay.bx);
  const auto aux_view = aux_all.view();

  // ---- Stage 1 with direct peer writes into the master's array.
  auto stage1 = obs::open_stage("Stage1+P2PWrites", t0);
  for (int d = 0; d < w; ++d) {
    simt::Device& dev = cluster.device(gpus[static_cast<std::size_t>(d)]);
    simt::LaunchConfig cfg;
    cfg.name = "chunk_reduce_p2p";
    cfg.grid = {static_cast<int>(lay.bx), static_cast<int>(g), 1};
    cfg.block = {plan.s13.lx, 1, 1};
    cfg.regs_per_thread = plan.s13.regs_per_thread();
    cfg.smem_per_block = plan.s13.smem_bytes(sizeof(T));
    const auto inv = batches[static_cast<std::size_t>(d)].in.view();
    const StagePlan sp = plan.s13;
    const std::int64_t dd = d;
    const auto t = simt::launch(dev, cfg, [=](simt::BlockCtx& ctx) {
      const std::int64_t c = ctx.block_idx().x;
      const std::int64_t gg = ctx.block_idx().y;
      const std::int64_t chunk_off = c * lay.chunk;
      const std::int64_t len =
          std::min<std::int64_t>(lay.chunk, lay.n_local - chunk_off);
      const T total =
          cascade_reduce(ctx, inv, gg * lay.n_local + chunk_off, len, sp, op);
      // UVA peer store into the master's [g][d][c] slot.
      aux_view.store(gg * (w * lay.bx) + dd * lay.bx + c, total, ctx.stats());
    });
    if (gpus[static_cast<std::size_t>(d)] != master) {
      // The peer writes ride the P2P link behind the kernel; only the
      // non-overlapped remainder delays the pipeline.
      const double wire = xfer.link_time(
          gpus[static_cast<std::size_t>(d)], master,
          static_cast<std::uint64_t>(g) * lay.bx * sizeof(T));
      const double exposed = std::max(0.0, wire - 0.5 * t.seconds);
      dev.clock().advance(exposed);
      cluster.device(master).clock().sync_to(dev.clock().now());
      if (exposed > 0.0) {
        if (obs::TraceSession* ts = obs::TraceSession::current()) {
          // The overlapped portion of the peer writes hides behind the
          // kernel; only the exposed tail occupies the link as a span.
          obs::SpanRecord rec;
          rec.name = "p2p_writes";
          rec.kind = obs::SpanKind::kTransfer;
          rec.category = obs::Category::kP2P;
          rec.device = master;
          rec.src_device = gpus[static_cast<std::size_t>(d)];
          rec.start_seconds = dev.clock().now() - exposed;
          rec.end_seconds = dev.clock().now();
          const std::uint64_t wire_bytes =
              static_cast<std::uint64_t>(g) * lay.bx * sizeof(T);
          rec.bytes = wire_bytes;
          rec.notes.emplace_back("link", "p2p");
          ts->add_event(std::move(rec));
          ts->metrics().add("transfer_bytes", {{"kind", "p2p"}},
                            static_cast<double>(wire_bytes));
        }
      }
    }
  }
  const double t_stage1 = phase_start();
  // The master may only start Stage 2 once every peer's writes landed.
  cluster.device(master).clock().sync_to(t_stage1);
  stage1.close(t_stage1);
  result.breakdown.add("Stage1+P2PWrites", t_stage1 - t0);

  // ---- Stage 2 on the master.
  auto stage2 = obs::open_stage("Stage2", t_stage1, master);
  launch_intermediate_scan(cluster.device(master), aux_all.buffer(),
                           static_cast<std::int64_t>(w) * lay.bx, g, plan.s2,
                           op);
  const double t_stage2 = phase_start();
  stage2.close(t_stage2);
  result.breakdown.add("Stage2", t_stage2 - t_stage1);

  // ---- Scatter slices back, then Stage 3 (same as regular MPS).
  auto scatter_stage = obs::open_stage("AuxScatter", t_stage2);
  std::vector<WorkspacePool::Handle<T>> aux_local;
  aux_local.reserve(static_cast<std::size_t>(w));
  for (int d = 0; d < w; ++d) {
    aux_local.push_back(acquire_workspace<T>(
        ws, cluster.device(gpus[static_cast<std::size_t>(d)]),
        lay.aux_elems()));
    xfer.copy_2d(aux_local.back().buffer(), 0, lay.bx, aux_all.buffer(),
                 static_cast<std::int64_t>(d) * lay.bx,
                 static_cast<std::int64_t>(w) * lay.bx, g, lay.bx);
  }
  const double t_scatter = phase_start();
  scatter_stage.close(t_scatter);
  result.breakdown.add("AuxScatter", t_scatter - t_stage2);

  auto stage3 = obs::open_stage("Stage3", t_scatter);
  for (int d = 0; d < w; ++d) {
    launch_scan_add(cluster.device(gpus[static_cast<std::size_t>(d)]),
                    batches[static_cast<std::size_t>(d)].in,
                    batches[static_cast<std::size_t>(d)].out,
                    aux_local[static_cast<std::size_t>(d)].buffer(), lay,
                    plan.s13, kind, op);
  }
  const double t_end = phase_start();
  stage3.close(t_end);
  result.breakdown.add("Stage3", t_end - t_scatter);

  result.seconds = t_end - t0;
  result.faults.counters = xfer.fault_counters();
  return result;
}

}  // namespace mgs::core
