#pragma once
/// \file scan_mppc.hpp
/// Scan-MP-PC: Multi-GPU Problem with Prioritized Communications
/// (Section 4.1.1, Figure 8). The batch is partitioned across PCIe
/// networks: the V GPUs of one network cooperate on their share of the
/// problems, so every auxiliary-array transfer rides a P2P link and no
/// copy ever stages through host memory (and, multi-node, no MPI at all).

#include <vector>

#include "mgs/core/scan_mps.hpp"

namespace mgs::core {

/// Which GPUs work together and which problems each group owns.
struct MppcPartition {
  std::vector<std::vector<int>> groups;  ///< GPU ids per group (one network)
  std::vector<std::int64_t> g_of_group;  ///< problems owned by each group
  std::vector<std::int64_t> g_offset;    ///< first problem of each group
  int v = 1;                             ///< GPUs per group
};

/// Build the partition: `y` PCIe networks per node across `nodes` nodes,
/// `v` GPUs from each network, G problems spread as evenly as possible.
/// When G is smaller than the number of networks, the group count is
/// reduced (the paper: "the number of PCI-e being used has to be
/// reduced"). Throws util::Error if the shape exceeds the hardware.
inline MppcPartition make_mppc_partition(const topo::Cluster& cluster, int y,
                                         int v, std::int64_t g,
                                         int nodes = 1) {
  const auto& cfg = cluster.config();
  MGS_REQUIRE(nodes >= 1 && nodes <= cfg.nodes, "mppc: bad node count");
  MGS_REQUIRE(y >= 1 && y <= cfg.networks_per_node,
              "mppc: more networks requested than the node provides");
  MGS_REQUIRE(v >= 1 && v <= cfg.gpus_per_network,
              "mppc: more GPUs per network than the hardware provides");
  MGS_REQUIRE(g >= 1, "mppc: empty batch");

  MppcPartition part;
  part.v = v;
  std::int64_t total_groups =
      std::min<std::int64_t>(static_cast<std::int64_t>(nodes) * y, g);
  std::int64_t next_g = 0;
  for (std::int64_t grp = 0; grp < total_groups; ++grp) {
    const int node = static_cast<int>(grp) / y;
    const int network = static_cast<int>(grp) % y;
    std::vector<int> ids;
    for (int s = 0; s < v; ++s) {
      ids.push_back(cluster.global_id(node, network, s));
    }
    part.groups.push_back(std::move(ids));
    const std::int64_t share =
        g / total_groups + ((grp < g % total_groups) ? 1 : 0);
    part.g_of_group.push_back(share);
    part.g_offset.push_back(next_g);
    next_g += share;
  }
  MGS_CHECK(next_g == g, "mppc: problem partition does not cover the batch");
  return part;
}

/// Place host data for every group (untimed; see distribute_batch).
template <typename T>
std::vector<std::vector<GpuBatch<T>>> distribute_mppc(
    topo::Cluster& cluster, const MppcPartition& part,
    std::span<const T> host, std::int64_t n) {
  std::vector<std::vector<GpuBatch<T>>> all;
  all.reserve(part.groups.size());
  for (std::size_t grp = 0; grp < part.groups.size(); ++grp) {
    const std::int64_t first = part.g_offset[grp] * n;
    all.push_back(distribute_batch<T>(
        cluster, part.groups[grp],
        host.subspan(static_cast<std::size_t>(first),
                     static_cast<std::size_t>(part.g_of_group[grp] * n)),
        n, part.g_of_group[grp]));
  }
  return all;
}

/// Reassemble all groups' outputs into one host vector (untimed).
template <typename T>
std::vector<T> collect_mppc(const MppcPartition& part,
                            const std::vector<std::vector<GpuBatch<T>>>& all,
                            std::int64_t n) {
  std::int64_t g_total = 0;
  for (auto s : part.g_of_group) g_total += s;
  std::vector<T> host(static_cast<std::size_t>(n * g_total));
  for (std::size_t grp = 0; grp < part.groups.size(); ++grp) {
    const auto sub = collect_batch(all[grp], n, part.g_of_group[grp]);
    std::copy(sub.begin(), sub.end(),
              host.begin() + static_cast<std::ptrdiff_t>(part.g_offset[grp] * n));
  }
  return host;
}

/// Run Scan-MP-PC: every group runs the MPS pipeline on its own problems
/// concurrently (disjoint devices, independent simulated clocks). The
/// result is the makespan across groups; the breakdown reported is the
/// slowest group's (groups are symmetric up to a +-1 problem imbalance).
template <typename T, typename Op = Plus<T>>
RunResult scan_mppc(topo::Cluster& cluster, const MppcPartition& part,
                    std::vector<std::vector<GpuBatch<T>>>& batches,
                    std::int64_t n, const ScanPlan& plan, ScanKind kind,
                    Op op = {}, WorkspacePool* ws = nullptr) {
  MGS_REQUIRE(batches.size() == part.groups.size(),
              "scan_mppc: one batch set per group required");
  RunResult result;
  double worst = -1.0;
  for (std::size_t grp = 0; grp < part.groups.size(); ++grp) {
    // One stage span per group pipeline; groups run concurrently on
    // disjoint devices, so these spans overlap on the simulated timeline
    // (the critical-path analyzer's segment cut handles the overlap).
    obs::ScopedSpan group_stage;
    double group_t0 = 0.0;
    if (obs::TraceSession::current() != nullptr) {
      for (int d : part.groups[grp]) {
        group_t0 = std::max(group_t0, cluster.device(d).clock().now());
      }
      group_stage = obs::open_stage(
          ("group" + std::to_string(grp)).c_str(), group_t0);
    }
    RunResult r =
        scan_mps(cluster, part.groups[grp], batches[grp], n,
                 part.g_of_group[grp], plan, kind, op, ws);
    group_stage.close(group_t0 + r.seconds);
    result.payload_bytes += r.payload_bytes;
    result.faults.counters.merge(r.faults.counters);
    if (r.seconds > worst) {
      worst = r.seconds;
      result.breakdown = r.breakdown;
    }
  }
  result.seconds = worst;
  return result;
}

}  // namespace mgs::core
