#pragma once
/// \file api.hpp
/// Umbrella header: the complete public surface of the multi-GPU batch
/// scan library. See README.md for a quickstart and DESIGN.md for the
/// mapping between modules and the paper's sections.

#include "mgs/core/op.hpp"           // operators, ScanKind
#include "mgs/core/dtype.hpp"        // DType/OpTag matrix, TypedSpan
#include "mgs/core/reduce.hpp"       // batched reduction primitive
#include "mgs/core/plan.hpp"         // StagePlan / ScanPlan / RunResult
#include "mgs/core/tuning.hpp"       // premises, K search, autotuner
#include "mgs/core/scan_sp.hpp"      // single-GPU proposal
#include "mgs/core/scan_mps.hpp"     // multi-GPU problem scattering
#include "mgs/core/scan_mppc.hpp"    // prioritized communications
#include "mgs/core/scan_multinode.hpp"  // MPI multi-node proposal
#include "mgs/core/planner.hpp"      // Premise-4 proposal selection
#include "mgs/core/segmented.hpp"    // segmented scan extension
#include "mgs/core/segmented_context.hpp"  // segmented scan via executors
#include "mgs/core/autotuner.hpp"    // automatic (s,p,l,K) search
#include "mgs/core/workspace.hpp"    // per-device buffer pooling
#include "mgs/core/scan_context.hpp" // plan cache + workspace pool
#include "mgs/core/executor.hpp"     // unified proposal interface
#include "mgs/core/executor_registry.hpp"  // named executor lookup
#include "mgs/core/run_report.hpp"   // RunResult -> obs exporters bridge
#include "mgs/core/easy.hpp"         // one-call convenience scan
