#pragma once
/// \file segmented_context.hpp
/// Segmented scan through the unified ScanContext/ScanExecutor path. The
/// free function segmented_scan_sp (segmented.hpp) re-derives nothing but
/// also amortizes nothing; SegmentedScan wraps a TypedScanExecutor over
/// the packed SegPair representation, so segmented traffic gets the same
/// plan-cache hits, workspace reuse, overlap pipelining and degraded-mode
/// re-planning as the plain scans -- on any of the five proposals.
///
/// SegPair has no erased TypedSpan carrier (it is not in the DType
/// matrix), so the wrapper holds the executor by its typed interface and
/// the plan cache keys it as (scalar dtype, segmented=true), doubling the
/// element bytes the plan budgets for.
///
/// Exclusive segmented scans are offered here, unlike the free function:
/// the inner scan always runs inclusively (a flag-restarting operator has
/// no operator-generic exclusive form), and exclusivity is applied during
/// unpack -- a segment head yields Op::identity(), everything else the
/// inclusive value of its left neighbor. Host-side pack/unpack mirrors
/// the executors' scatter/gather convention and is not charged to the
/// simulated time.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mgs/core/executor_impl.hpp"
#include "mgs/core/segmented.hpp"

namespace mgs::core {

template <typename T, typename Op = Plus<T>>
class SegmentedScan {
 public:
  /// Wrap one of the five proposals (by registry name) instantiated over
  /// SegPair<T> with the flag-respecting operator.
  explicit SegmentedScan(ScanContext& ctx,
                         const std::string& executor = "Scan-SP",
                         const ExecutorParams& params = {})
      : ex_(make_typed_executor<SegPair<T>, SegOp<T, Op>>(executor, ctx,
                                                          params)) {}

  /// Plan + staging for a batch of G independent sequences of N elements
  /// each (G = 1 is the single-sequence case). Every sequence restarts
  /// the scan, so a batch rides the multi-problem executors unchanged --
  /// and gives the overlap pipeline waves to overlap.
  void prepare(std::int64_t n, std::int64_t g = 1) {
    ex_->prepare(n, g);
    packed_.resize(static_cast<std::size_t>(n * g));
    packed_out_.resize(static_cast<std::size_t>(n * g));
  }

  /// Scan `values` with segment boundaries from `flags` (flags[i] != 0
  /// marks element i as a segment head; the first element of each
  /// sequence is implicitly one).
  RunResult run(std::span<const T> values, std::span<const T> flags,
                std::span<T> out, ScanKind kind = ScanKind::kInclusive) {
    const std::int64_t n = ex_->prepared_n();
    const std::int64_t total = n * ex_->prepared_g();
    MGS_REQUIRE(total > 0, "SegmentedScan::run before prepare()");
    MGS_REQUIRE(static_cast<std::int64_t>(values.size()) >= total &&
                    static_cast<std::int64_t>(flags.size()) >= total &&
                    static_cast<std::int64_t>(out.size()) >= total,
                "SegmentedScan::run: spans must hold N*G elements");
    for (std::int64_t i = 0; i < total; ++i) {
      packed_[static_cast<std::size_t>(i)] =
          SegPair<T>{values[static_cast<std::size_t>(i)],
                     flags[static_cast<std::size_t>(i)]};
    }
    RunResult r = ex_->run_typed(std::span<const SegPair<T>>(packed_),
                                 std::span<SegPair<T>>(packed_out_),
                                 ScanKind::kInclusive);
    if (kind == ScanKind::kInclusive) {
      for (std::int64_t i = 0; i < total; ++i) {
        out[static_cast<std::size_t>(i)] =
            packed_out_[static_cast<std::size_t>(i)].value;
      }
    } else {
      for (std::int64_t i = 0; i < total; ++i) {
        const bool head =
            i % n == 0 || flags[static_cast<std::size_t>(i)] != T{0};
        out[static_cast<std::size_t>(i)] =
            head ? Op::identity()
                 : packed_out_[static_cast<std::size_t>(i) - 1].value;
      }
    }
    return r;
  }

  /// The wrapped executor, for describe()/plan inspection.
  ScanExecutor& executor() { return *ex_; }
  const ScanExecutor& executor() const { return *ex_; }

 private:
  std::unique_ptr<TypedScanExecutor<SegPair<T>, SegOp<T, Op>>> ex_;
  std::vector<SegPair<T>> packed_;
  std::vector<SegPair<T>> packed_out_;
};

}  // namespace mgs::core
