#include "mgs/core/tuning.hpp"

#include <algorithm>
#include <sstream>

#include "mgs/sim/fault.hpp"
#include "mgs/topo/topology.hpp"
#include "mgs/topo/transfer.hpp"
#include "mgs/util/math.hpp"

namespace mgs::core {

TuningChoice derive_spl(const sim::DeviceSpec& spec, int elem_bytes) {
  MGS_REQUIRE(elem_bytes > 0, "derive_spl: element size must be positive");

  // ---- Premise 1: the block shape where max block parallelism and 100%
  // warp occupancy coincide. With `max_blocks` resident blocks each of
  // `w` warps, the SM holds w*max_blocks warps; full occupancy needs
  // w = max_warps / max_blocks (Table 3's bold row: 64/16 = 4 warps).
  const int warps_per_block = std::max(1, spec.max_warps_per_sm /
                                              spec.max_blocks_per_sm);
  const int threads = warps_per_block * spec.warp_size;

  // Register budget per thread so the register file still admits
  // max_blocks blocks (cc 3.7: 128K / (16*128) = 64 registers).
  //
  // ---- Premise 2: largest P with 6P+16 registers within the budget;
  // P >= 4 is required by the int4 load path. On register files too small
  // to sustain P = 4 at 100% occupancy (e.g. Maxwell's 64K), the warp-
  // occupancy target is relaxed step by step -- "the GPU hardware is able
  // to provide highly satisfactory performance even at lower warp
  // occupancy" (Premise 1, citing Volkov).
  int p = 0;
  int reg_budget = 0;
  for (double occ_target : {1.0, 0.75, 0.5, 0.25}) {
    const auto target_warps =
        static_cast<std::int64_t>(occ_target * spec.max_warps_per_sm);
    reg_budget = static_cast<int>(spec.registers_per_sm /
                                  (target_warps * spec.warp_size));
    if (6 * 4 + 16 > reg_budget) continue;
    p = 4;
    while (2 * p * 6 + 16 <= reg_budget) p *= 2;
    break;
  }
  MGS_REQUIRE(p >= 4,
              "derive_spl: register file too small for the vector loads");

  TuningChoice choice;
  choice.plan.s13.p = p;
  choice.plan.s13.lx = threads;
  choice.plan.s13.ly = 1;
  choice.plan.s13.k = 1;

  // Stage 2: one warp per problem row, several problems per block so the
  // block still has Premise 1's thread count (L_y^2 > 1, B_x^2 = 1).
  choice.plan.s2.p = p;
  choice.plan.s2.lx = spec.warp_size;
  choice.plan.s2.ly = std::max(1, threads / spec.warp_size);
  choice.plan.s2.k = 1;

  choice.plan.validate();

  // Check the choice against the occupancy calculator (it must land on
  // the bold row: max blocks and 100% warp occupancy simultaneously).
  const sim::OccupancyResult occ =
      sim::occupancy(spec, threads, choice.plan.s13.regs_per_thread(),
                     choice.plan.s13.smem_bytes(elem_bytes));

  std::ostringstream why;
  why << "Premise 1: " << warps_per_block << " warps/block ("
      << threads << " threads, l=" << choice.plan.s13.l_log2() << ") -> "
      << occ.blocks_per_sm << " blocks/SM at "
      << static_cast<int>(occ.warp_occupancy * 100) << "% warp occupancy"
      << " on " << spec.name << ". Premise 2: P=" << p << " (p="
      << choice.plan.s13.p_log2() << ") uses "
      << choice.plan.s13.regs_per_thread() << " <= " << reg_budget
      << " registers/thread. Shuffle scans keep shared memory at one "
      << "element per warp (s<=5).";
  choice.rationale = why.str();
  return choice;
}

std::int64_t k1_max_eq1(std::int64_t n, std::int64_t g, const ScanPlan& plan,
                        const sim::DeviceSpec& spec) {
  MGS_REQUIRE(n > 0 && g > 0, "k1_max_eq1: N and G must be positive");
  const std::int64_t denom = static_cast<std::int64_t>(spec.max_blocks_per_sm) *
                             plan.s13.p * plan.s2.p * plan.s13.threads() *
                             plan.s2.threads();
  return std::max<std::int64_t>(1, n * g / denom);
}

std::int64_t k1_max_gpus(std::int64_t n, const StagePlan& s13,
                         int gpus_per_problem) {
  MGS_REQUIRE(n > 0 && gpus_per_problem > 0, "k1_max_gpus: bad arguments");
  return std::max<std::int64_t>(
      1, n / (static_cast<std::int64_t>(gpus_per_problem) * s13.tile()));
}

std::vector<int> k1_candidates(std::int64_t n, std::int64_t g,
                               const ScanPlan& plan,
                               const sim::DeviceSpec& spec,
                               int gpus_per_problem) {
  const std::int64_t bound =
      std::min(k1_max_eq1(n, g, plan, spec),
               k1_max_gpus(n, plan.s13, gpus_per_problem));
  std::vector<int> ks;
  for (std::int64_t k = 1; k <= bound; k *= 2) {
    ks.push_back(static_cast<int>(k));
    if (k > (std::int64_t{1} << 30)) break;
  }
  return ks;
}

int pick_wave_count(topo::Cluster& cluster, std::int64_t n, std::int64_t g,
                    int gpus_per_problem, const ScanPlan& plan,
                    int elem_bytes) {
  MGS_REQUIRE(n > 0 && g > 0 && gpus_per_problem > 0 && elem_bytes > 0,
              "pick_wave_count: bad arguments");
  if (gpus_per_problem < 2 || g < 2) return 1;

  const int elem = elem_bytes;
  const std::int64_t n_local = n / gpus_per_problem;
  const BatchLayout lay = make_layout(n_local, g, plan.s13);
  const sim::DeviceSpec& spec = cluster.config().gpu;

  // C: local compute across the three stages -- the problem data streams
  // through DRAM ~3x (Stage 1 read, Stage 3 read + write).
  double c_seconds =
      3.0 * static_cast<double>(n_local) * static_cast<double>(g) * elem /
      (spec.peak_bandwidth_bps() * spec.mem_efficiency_base);

  // X: aux round trip between each non-master GPU and the master, as the
  // overlapped pipeline issues it (per-device strided 2-D copies of G rows
  // of bx totals, both directions). The copies queue on the master's DMA
  // engine, which pipelines their fixed link latencies away -- occupancy
  // is payload + per-row time, plus one fill latency for the queue.
  topo::TransferEngine probe(cluster);
  const std::uint64_t aux_bytes =
      static_cast<std::uint64_t>(g) * lay.bx * elem;
  double x_seconds = 0.0;
  double max_latency = 0.0;
  for (int d = 1; d < gpus_per_problem; ++d) {
    const int dev = d % cluster.num_devices();
    const double lat = probe.link_latency(dev, 0);
    x_seconds +=
        2.0 * std::max(0.0, probe.link_time_2d(dev, 0, aux_bytes,
                                               static_cast<std::uint64_t>(g)) -
                                lat);
    max_latency = std::max(max_latency, lat);
  }
  x_seconds += 2.0 * max_latency;  // queue fill + final arrival

  // A known straggler stretches whichever side of the overlap it touches:
  // the slowest participant gates every wave barrier, so scale C and X by
  // the worst scheduled slowdown before trading them off. No injector (the
  // healthy path) leaves both untouched.
  if (const sim::FaultInjector* fi = cluster.fault_injector()) {
    const double inf = std::numeric_limits<double>::infinity();
    double comp_slow = 1.0;
    double xfer_slow = 1.0;
    for (int d = 0; d < gpus_per_problem; ++d) {
      const int dev = d % cluster.num_devices();
      comp_slow = std::max(comp_slow, fi->compute_slowdown(dev, inf));
      xfer_slow = std::max(xfer_slow, fi->transfer_slowdown(dev, 0, inf));
    }
    c_seconds *= comp_slow;
    x_seconds *= xfer_slow;
  }
  // Per-wave fixed cost: each wave re-pays the pipeline fill/drain (the
  // wave's last scatter must fully land before its Stage 3 can start) and
  // adds one Stage-1 and one Stage-3 kernel launch to every device's
  // compute chain.
  const double alpha = 2.0 * max_latency +
                       2.0 * spec.kernel_launch_overhead_us * 1e-6;

  const std::int64_t max_waves = std::min<std::int64_t>(g, 16);
  int best_k = 1;
  double best_est = c_seconds + x_seconds;  // k = 1: no overlap
  for (std::int64_t k = 2; k <= max_waves; k *= 2) {
    const double kd = static_cast<double>(k);
    const double est = (c_seconds + x_seconds) / kd +
                       (kd - 1.0) * std::max(c_seconds, x_seconds) / kd +
                       (kd - 1.0) * alpha;
    if (est < best_est) {
      best_est = est;
      best_k = static_cast<int>(k);
    }
  }
  return best_k;
}

AutotuneResult autotune_k(const std::vector<int>& candidates,
                          const std::function<double(int)>& measure) {
  MGS_REQUIRE(!candidates.empty(), "autotune_k: no candidates");
  AutotuneResult result;
  bool first = true;
  for (int k : candidates) {
    const double s = measure(k);
    result.tried.emplace_back(k, s);
    if (first || s < result.best_seconds) {
      result.best_k = k;
      result.best_seconds = s;
      first = false;
    }
  }
  return result;
}

}  // namespace mgs::core
