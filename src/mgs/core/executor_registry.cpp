#include "mgs/core/executor_registry.hpp"

#include "mgs/util/check.hpp"

namespace mgs::core {

const std::vector<ExecutorInfo>& all_executors() {
  static const std::vector<ExecutorInfo> kExecutors = {
      {"Scan-SP", "single-GPU three-kernel pipeline (Section 3)",
       [](ScanContext& ctx, const ExecutorParams& p) {
         return make_sp_executor(ctx, p.device, p.dtype, p.op);
       }},
      {"Scan-MPS", "problem scattering across one node's GPUs (Section 4.1)",
       [](ScanContext& ctx, const ExecutorParams& p) {
         return make_mps_executor(ctx, p.w, /*direct=*/false,
                                  PipelineChoice{p.pipeline, p.waves},
                                  p.dtype, p.op);
       }},
      {"Scan-MPS-direct",
       "MPS with UVA peer writes into the master's auxiliary array",
       [](ScanContext& ctx, const ExecutorParams& p) {
         return make_mps_executor(ctx, p.w, /*direct=*/true,
                                  PipelineChoice{p.pipeline, p.waves},
                                  p.dtype, p.op);
       }},
      {"Scan-MP-PC",
       "per-PCIe-network groups with prioritized communications "
       "(Section 4.1.1)",
       [](ScanContext& ctx, const ExecutorParams& p) {
         return make_mppc_executor(ctx, p.y, p.v, p.m > 0 ? p.m : 1,
                                   PipelineChoice{p.pipeline, p.waves},
                                   p.dtype, p.op);
       }},
      {"Scan-MPS-multinode",
       "MPS across nodes with one MPI rank per GPU (Section 4.1)",
       [](ScanContext& ctx, const ExecutorParams& p) {
         return make_multinode_executor(ctx, p.m, p.w,
                                        PipelineChoice{p.pipeline, p.waves},
                                        p.dtype, p.op);
       }},
  };
  return kExecutors;
}

std::unique_ptr<ScanExecutor> make_executor(const std::string& name,
                                            ScanContext& ctx,
                                            const ExecutorParams& params) {
  for (const auto& info : all_executors()) {
    if (info.name == name) return info.make(ctx, params);
  }
  MGS_REQUIRE(false, "unknown executor: " + name);
  return nullptr;
}

std::unique_ptr<ScanExecutor> make_executor(ScanContext& ctx,
                                            const PlannerChoice& choice) {
  ExecutorParams p;
  p.dtype = choice.dtype;
  p.op = choice.op;
  switch (choice.proposal) {
    case Proposal::kSingleGpu:
      return make_executor("Scan-SP", ctx, p);
    case Proposal::kMps:
      p.w = choice.w;
      return make_executor("Scan-MPS", ctx, p);
    case Proposal::kMppc:
      p.y = choice.y;
      p.v = choice.v;
      p.m = choice.m;
      return make_executor("Scan-MP-PC", ctx, p);
    case Proposal::kMultiNode:
      p.m = choice.m;
      p.w = choice.w;
      return make_executor("Scan-MPS-multinode", ctx, p);
  }
  MGS_REQUIRE(false, "unhandled planner proposal");
  return nullptr;
}

}  // namespace mgs::core
