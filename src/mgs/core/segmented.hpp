#pragma once
/// \file segmented.hpp
/// Segmented scan extension (the operator-extension approach the paper
/// describes for the CUB comparison in Section 5.1: "modifying the
/// datatype and extending the sum operator with an additional condition").
///
/// Values are packed with their segment-head flags into pairs, scanned
/// with the flag-respecting operator, and unpacked. The pack/unpack passes
/// and the doubled element size are charged to the simulated time -- the
/// same overhead that makes Thrust's flag-carrying segmented scan slow in
/// the paper's evaluation.

#include "mgs/core/dtype.hpp"
#include "mgs/core/scan_sp.hpp"

namespace mgs::core {

/// Value + segment flag, kept at 2*sizeof(T) for alignment.
template <typename T>
struct SegPair {
  T value{};
  T flag{};  ///< nonzero marks the first element of a segment

  friend bool operator==(const SegPair&, const SegPair&) = default;
};

/// The classic segmented-scan operator: a segment head absorbs nothing
/// from its left. Associative (flags OR together; value restarts at the
/// rightmost head).
template <typename T, typename Op>
struct SegOp {
  using value_type = SegPair<T>;
  static constexpr SegPair<T> identity() {
    return SegPair<T>{Op::identity(), T{0}};
  }
  constexpr SegPair<T> operator()(SegPair<T> a, SegPair<T> b) const {
    SegPair<T> r;
    r.value = (b.flag != T{0}) ? b.value : Op{}(a.value, b.value);
    r.flag = (a.flag != T{0} || b.flag != T{0}) ? T{1} : T{0};
    return r;
  }
  static constexpr const char* name() { return "seg"; }
};

/// Plan-cache identity of the packed representation: the scalar dtype with
/// the segmented flag set (elem_bytes doubles). This is what lets SegPair
/// workloads ride the ScanContext plan cache and the executor stack even
/// though SegPair itself has no erased TypedSpan carrier.
template <typename T>
struct PlanTypeOf<SegPair<T>> {
  static constexpr DType dtype = PlanTypeOf<T>::dtype;
  static constexpr bool segmented = true;
};

/// A SegOp keys plans (and labels spans/metrics) by its inner operator.
template <typename T, typename Op>
struct OpTagOf<SegOp<T, Op>> {
  static constexpr std::optional<OpTag> value = OpTagOf<Op>::value;
};

/// Inclusive segmented scan of one sequence on one GPU. flags[i] != 0
/// marks element i as the first of a segment (element 0 is implicitly a
/// head). Exclusive segmented scans are intentionally not offered: with
/// restarts the "shift" trick is no longer operator-generic.
template <typename T, typename Op = Plus<T>>
RunResult segmented_scan_sp(simt::Device& dev,
                            const simt::DeviceBuffer<T>& in,
                            const simt::DeviceBuffer<T>& flags,
                            simt::DeviceBuffer<T>& out, std::int64_t n,
                            const ScanPlan& plan, Op = {},
                            WorkspacePool* ws = nullptr) {
  MGS_REQUIRE(n > 0, "segmented_scan_sp: empty input");
  MGS_REQUIRE(in.size() >= n && flags.size() >= n && out.size() >= n,
              "segmented_scan_sp: buffers must hold N elements");

  const double start = dev.clock().now();
  auto packed = acquire_workspace<SegPair<T>>(ws, dev, n);
  auto packed_out = acquire_workspace<SegPair<T>>(ws, dev, n);

  // Pack kernel: one block per 4096-element slab, warp-vectorized.
  constexpr std::int64_t kSlab = 4096;
  simt::LaunchConfig pack_cfg;
  pack_cfg.name = "seg_pack";
  pack_cfg.grid = {static_cast<int>(util::div_up(
                       static_cast<std::uint64_t>(n),
                       static_cast<std::uint64_t>(kSlab))),
                   1, 1};
  pack_cfg.block = {plan.s13.lx, 1, 1};
  pack_cfg.regs_per_thread = 24;
  const auto inv = in.view();
  const auto flv = flags.view();
  const auto pkv = packed.view();
  RunResult result;
  auto t_pack = simt::launch(dev, pack_cfg, [=](simt::BlockCtx& ctx) {
    const std::int64_t base = static_cast<std::int64_t>(ctx.block_idx().x) * kSlab;
    const std::int64_t len = std::min<std::int64_t>(kSlab, n - base);
    for (std::int64_t i0 = 0; i0 < len; i0 += simt::kWarpSize) {
      const int cnt = static_cast<int>(
          std::min<std::int64_t>(simt::kWarpSize, len - i0));
      const auto v = inv.load_warp_partial(base + i0, cnt, T{}, ctx.stats());
      const auto f = flv.load_warp_partial(base + i0, cnt, T{}, ctx.stats());
      simt::WarpReg<SegPair<T>> pairs{};
      for (int l = 0; l < cnt; ++l) pairs[l] = SegPair<T>{v[l], f[l]};
      pkv.store_warp_partial(base + i0, cnt, pairs, ctx.stats());
    }
  });
  result.breakdown.add("Pack", t_pack.seconds);

  RunResult scan = scan_sp<SegPair<T>, SegOp<T, Op>>(
      dev, packed.buffer(), packed_out.buffer(), n, 1, plan,
      ScanKind::kInclusive, {}, ws);
  result.breakdown.merge(scan.breakdown);

  // Unpack kernel.
  simt::LaunchConfig unpack_cfg = pack_cfg;
  unpack_cfg.name = "seg_unpack";
  const auto pov = packed_out.view();
  const auto outv = out.view();
  auto t_unpack = simt::launch(dev, unpack_cfg, [=](simt::BlockCtx& ctx) {
    const std::int64_t base = static_cast<std::int64_t>(ctx.block_idx().x) * kSlab;
    const std::int64_t len = std::min<std::int64_t>(kSlab, n - base);
    for (std::int64_t i0 = 0; i0 < len; i0 += simt::kWarpSize) {
      const int cnt = static_cast<int>(
          std::min<std::int64_t>(simt::kWarpSize, len - i0));
      const auto pairs = pov.load_warp_partial(
          base + i0, cnt, SegPair<T>{}, ctx.stats());
      simt::WarpReg<T> vals{};
      for (int l = 0; l < cnt; ++l) vals[l] = pairs[l].value;
      outv.store_warp_partial(base + i0, cnt, vals, ctx.stats());
    }
  });
  result.breakdown.add("Unpack", t_unpack.seconds);

  result.payload_bytes = 2ull * static_cast<std::uint64_t>(n) * sizeof(T);
  result.seconds = dev.clock().now() - start;
  return result;
}

}  // namespace mgs::core
