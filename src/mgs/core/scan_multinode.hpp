#pragma once
/// \file scan_multinode.hpp
/// Multi-node Scan-MPS (Section 4.1, multi-node paragraph): one MPI rank
/// per GPU across M nodes; the chunk reductions travel to rank 0 with
/// MPI_Gather, Stage 2 runs on the master GPU, MPI_Scatter returns the
/// scanned prefixes, and barriers bracket the pipeline.

#include <vector>

#include "mgs/core/kernels.hpp"
#include "mgs/core/scan_mps.hpp"
#include "mgs/msg/comm.hpp"

namespace mgs::core {

namespace detail {

/// Event-driven multi-node Scan-MPS (plan.pipe.overlap): the blocking
/// MPI_Gather/MPI_Scatter collectives are replaced by per-(rank, wave)
/// MPI_Isend messages on the endpoints' DMA engines. Each rank's wave of
/// chunk reductions travels to rank 0 the moment that rank computed it
/// (its contiguous region of the rank-major combined array), the master
/// scans each arriving (wave, rank) column chunk with a per-row carry, the
/// scanned slice returns by Isend, and Stage 3 runs per rank per wave on
/// arrival. Entry/exit barriers are kept (the paper's protocol brackets
/// the pipeline). Chunks of one row are issued in ascending rank order on
/// the master's in-order compute engine, so the per-row operator order
/// matches the collective path.
///
/// Breakdown entries are Stage1 / Stage2+Comm / Stage3 / MPI_Barrier, cut
/// at stage-boundary instants, summing to result.seconds exactly.
template <typename T, typename Op>
RunResult scan_mps_multinode_overlapped(msg::Communicator& comm,
                                        std::vector<GpuBatch<T>>& batches,
                                        std::int64_t n, std::int64_t g,
                                        const ScanPlan& plan, ScanKind kind,
                                        Op op, WorkspacePool* ws) {
  const int ranks = comm.size();
  const std::int64_t n_local = n / ranks;
  const BatchLayout lay = make_layout(n_local, g, plan.s13);

  topo::Cluster& cluster = comm.cluster();
  RunResult result;
  result.payload_bytes = 2ull * static_cast<std::uint64_t>(n) * g * sizeof(T);
  comm.reset_breakdown();
  comm.reset_fault_counters();

  auto compute_front = [&] {
    double t = 0.0;
    for (int r = 0; r < ranks; ++r) {
      t = std::max(t, cluster.device(comm.device_of(r)).clock().now());
    }
    return t;
  };
  double t0 = compute_front();
  for (int r = 0; r < ranks; ++r) {
    t0 = std::max(t0, cluster.device(comm.device_of(r)).dma_clock().now());
  }

  const int k = static_cast<int>(
      std::clamp<std::int64_t>(plan.pipe.waves, 1, g));
  const auto wave_begin = [&](int v) { return (g * v) / k; };

  simt::Device& master = cluster.device(comm.device_of(0));
  auto aux_all = acquire_workspace<T>(
      ws, master, static_cast<std::int64_t>(ranks) * g * lay.bx);
  auto carry = acquire_workspace<T>(ws, master, g);
  std::vector<WorkspacePool::Handle<T>> aux_local;
  aux_local.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    aux_local.push_back(acquire_workspace<T>(
        ws, cluster.device(comm.device_of(r)), lay.aux_elems()));
  }

  auto entry_stage = obs::open_stage("EntryBarrier", t0);
  comm.barrier();
  const double t_sync = compute_front();
  entry_stage.close(t_sync);

  const auto idx = [ranks](int v, int r) { return v * ranks + r; };
  std::vector<simt::Event> ev_s1(static_cast<std::size_t>(k * ranks));
  std::vector<simt::Event> ev_gather(static_cast<std::size_t>(k * ranks));
  std::vector<simt::Event> ev_scatter(static_cast<std::size_t>(k * ranks));

  // ---- Stage 1 on every rank, in waves.
  auto stage1 = obs::open_stage("Stage1", t_sync);
  for (int r = 0; r < ranks; ++r) {
    simt::Stream s(cluster.device(comm.device_of(r)));
    for (int v = 0; v < k; ++v) {
      const std::int64_t g0 = wave_begin(v);
      const std::int64_t gn = wave_begin(v + 1) - g0;
      launch_chunk_reduce(s.device(), batches[static_cast<std::size_t>(r)].in,
                          aux_local[static_cast<std::size_t>(r)].buffer(),
                          lay, plan.s13, op, g0, gn);
      ev_s1[static_cast<std::size_t>(idx(v, r))] = s.record();
    }
  }
  const double t_stage1 = compute_front();
  stage1.close(t_stage1);
  result.breakdown.add("Stage1", t_stage1 - t_sync);

  // ---- Stage 2 + communication. Rank r's rows of wave v form one
  // contiguous region of the rank-major array (offset r*g*bx + g0*bx), so
  // each (wave, rank) gather is a single Isend gated on its Stage-1 event.
  auto stage2 = obs::open_stage("Stage2+Comm", t_stage1);
  for (int v = 0; v < k; ++v) {
    const std::int64_t g0 = wave_begin(v);
    const std::int64_t gn = wave_begin(v + 1) - g0;
    for (int r = 0; r < ranks; ++r) {
      ev_gather[static_cast<std::size_t>(idx(v, r))] = comm.isend(
          r, 0, aux_local[static_cast<std::size_t>(r)].buffer(), g0 * lay.bx,
          aux_all.buffer(),
          static_cast<std::int64_t>(r) * g * lay.bx + g0 * lay.bx,
          gn * lay.bx, ev_s1[static_cast<std::size_t>(idx(v, r))]);
    }
  }
  simt::Stream master_stream(master);
  for (int v = 0; v < k; ++v) {
    const std::int64_t g0 = wave_begin(v);
    const std::int64_t gn = wave_begin(v + 1) - g0;
    for (int r = 0; r < ranks; ++r) {
      master_stream.wait(ev_gather[static_cast<std::size_t>(idx(v, r))]);
      launch_intermediate_scan_ranked_slice(
          master, aux_all.buffer(), lay.bx, ranks, g, g0, gn,
          static_cast<std::int64_t>(r) * lay.bx, lay.bx, carry.buffer(),
          plan.s2, op);
      ev_scatter[static_cast<std::size_t>(idx(v, r))] = comm.isend(
          0, r, aux_all.buffer(),
          static_cast<std::int64_t>(r) * g * lay.bx + g0 * lay.bx,
          aux_local[static_cast<std::size_t>(r)].buffer(), g0 * lay.bx,
          gn * lay.bx, master_stream.record());
    }
  }
  double t_stage2 = t_stage1;
  for (const simt::Event& e : ev_scatter) {
    t_stage2 = std::max(t_stage2, e.seconds);
  }
  stage2.close(t_stage2);
  result.breakdown.add("Stage2+Comm", t_stage2 - t_stage1);

  // ---- Stage 3 per rank per wave, gated on the prefix arrival.
  auto stage3 = obs::open_stage("Stage3", t_stage2);
  for (int r = 0; r < ranks; ++r) {
    simt::Stream s(cluster.device(comm.device_of(r)));
    for (int v = 0; v < k; ++v) {
      const std::int64_t g0 = wave_begin(v);
      const std::int64_t gn = wave_begin(v + 1) - g0;
      s.wait(ev_scatter[static_cast<std::size_t>(idx(v, r))]);
      launch_scan_add(s.device(), batches[static_cast<std::size_t>(r)].in,
                      batches[static_cast<std::size_t>(r)].out,
                      aux_local[static_cast<std::size_t>(r)].buffer(), lay,
                      plan.s13, kind, op, g0, gn);
    }
  }
  const double t_stage3 = std::max(t_stage2, compute_front());
  stage3.close(t_stage3);
  result.breakdown.add("Stage3", t_stage3 - t_stage2);

  auto exit_stage = obs::open_stage("ExitBarrier", t_stage3);
  comm.barrier();
  const double t_end = compute_front();
  exit_stage.close(t_end);
  result.breakdown.add("MPI_Barrier", (t_sync - t0) + (t_end - t_stage3));

  result.seconds = t_end - t0;
  result.faults.counters = comm.fault_counters();
  return result;
}

}  // namespace detail

/// Run the multi-node proposal over the communicator's M*W ranks.
/// `batches[r]` follows the distribute_batch layout for rank r (portion r
/// of every problem). Returns makespan + breakdown including the MPI
/// collectives (the data behind Figure 14). With plan.pipe.overlap set the
/// event-driven Isend pipeline above replaces the blocking collectives;
/// results are bit-identical either way.
template <typename T, typename Op = Plus<T>>
RunResult scan_mps_multinode(msg::Communicator& comm,
                             std::vector<GpuBatch<T>>& batches,
                             std::int64_t n, std::int64_t g,
                             const ScanPlan& plan, ScanKind kind, Op op = {},
                             WorkspacePool* ws = nullptr) {
  plan.validate();
  const int ranks = comm.size();
  MGS_REQUIRE(static_cast<int>(batches.size()) == ranks,
              "scan_mps_multinode: one batch per rank required");
  MGS_REQUIRE(n % ranks == 0, "scan_mps_multinode: N must divide by M*W");
  if (plan.pipe.overlap && ranks > 1) {
    return detail::scan_mps_multinode_overlapped(comm, batches, n, g, plan,
                                                 kind, op, ws);
  }
  const std::int64_t n_local = n / ranks;
  const BatchLayout lay = make_layout(n_local, g, plan.s13);

  topo::Cluster& cluster = comm.cluster();
  RunResult result;
  result.payload_bytes = 2ull * static_cast<std::uint64_t>(n) * g * sizeof(T);
  comm.reset_breakdown();
  comm.reset_fault_counters();

  auto phase_start = [&] {
    double t = 0.0;
    for (int r = 0; r < ranks; ++r) {
      t = std::max(t, cluster.device(comm.device_of(r)).clock().now());
    }
    return t;
  };
  const double t0 = phase_start();

  // Master allocates the combined array for Stage 2 (rank-major layout:
  // rank r's contribution at offset r*g*bx, matching MPI_Gather).
  simt::Device& master = cluster.device(comm.device_of(0));
  auto aux_all = acquire_workspace<T>(
      ws, master, static_cast<std::int64_t>(ranks) * g * lay.bx);
  std::vector<WorkspacePool::Handle<T>> aux_local;
  aux_local.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    aux_local.push_back(acquire_workspace<T>(
        ws, cluster.device(comm.device_of(r)), lay.aux_elems()));
  }

  // "After synchronizing all MPI processes, the first stage is executed."
  auto entry_stage = obs::open_stage("EntryBarrier", t0);
  comm.barrier();
  const double t_sync = phase_start();
  entry_stage.close(t_sync);

  // ---- Stage 1 on every rank.
  auto stage1 = obs::open_stage("Stage1", t_sync);
  for (int r = 0; r < ranks; ++r) {
    launch_chunk_reduce(cluster.device(comm.device_of(r)),
                        batches[static_cast<std::size_t>(r)].in,
                        aux_local[static_cast<std::size_t>(r)].buffer(), lay,
                        plan.s13, op);
  }
  const double t_stage1 = phase_start();
  stage1.close(t_stage1);
  result.breakdown.add("Stage1", t_stage1 - t_sync);

  // ---- MPI_Gather of the chunk reductions to rank 0. Every breakdown
  // entry below is a [stage boundary, stage boundary] window cut on the
  // global compute front, NOT the communicator's master-dwell numbers:
  // dwell is measured from the master's own entry clock, which lags the
  // front whenever a compute straggler stretches Stage 1, and the old
  // "combined window minus dwell" subtraction then went negative. With
  // homogeneous ranks (every healthy run) both accountings coincide.
  auto gather_stage = obs::open_stage("MPI_Gather", t_stage1);
  std::vector<msg::Slice<T>> slices;
  for (int r = 0; r < ranks; ++r) {
    slices.push_back({&aux_local[static_cast<std::size_t>(r)].buffer(), 0,
                      lay.aux_elems()});
  }
  comm.gather(0, slices, aux_all.buffer(), 0);
  const double t_gather = phase_start();
  gather_stage.close(t_gather);
  result.breakdown.add("MPI_Gather", t_gather - t_stage1);

  // ---- Stage 2 on the master GPU over the rank-major layout.
  auto stage2 = obs::open_stage("Stage2", t_gather, comm.device_of(0));
  launch_intermediate_scan_ranked(master, aux_all.buffer(), lay.bx, ranks, g,
                                  plan.s2, op);
  const double t_stage2_end = phase_start();
  stage2.close(t_stage2_end);
  result.breakdown.add("Stage2", t_stage2_end - t_gather);

  // ---- MPI_Scatter the scanned prefixes back (each rank's region of the
  // rank-major array is contiguous).
  auto scatter_stage = obs::open_stage("MPI_Scatter", t_stage2_end);
  comm.scatter(0, aux_all.buffer(), 0, slices);

  // ---- Stage 3 on every rank.
  const double t_stage3_begin = phase_start();
  scatter_stage.close(t_stage3_begin);
  result.breakdown.add("MPI_Scatter", t_stage3_begin - t_stage2_end);
  auto stage3 = obs::open_stage("Stage3", t_stage3_begin);
  for (int r = 0; r < ranks; ++r) {
    launch_scan_add(cluster.device(comm.device_of(r)),
                    batches[static_cast<std::size_t>(r)].in,
                    batches[static_cast<std::size_t>(r)].out,
                    aux_local[static_cast<std::size_t>(r)].buffer(), lay,
                    plan.s13, kind, op);
  }
  const double t_stage3 = phase_start();
  stage3.close(t_stage3);
  result.breakdown.add("Stage3", t_stage3 - t_stage3_begin);

  auto exit_stage = obs::open_stage("ExitBarrier", t_stage3);
  comm.barrier();
  const double t_end = phase_start();
  exit_stage.close(t_end);
  result.breakdown.add("MPI_Barrier", (t_sync - t0) + (t_end - t_stage3));

  result.seconds = t_end - t0;
  result.faults.counters = comm.fault_counters();
  return result;
}

}  // namespace mgs::core
