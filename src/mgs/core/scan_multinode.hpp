#pragma once
/// \file scan_multinode.hpp
/// Multi-node Scan-MPS (Section 4.1, multi-node paragraph): one MPI rank
/// per GPU across M nodes; the chunk reductions travel to rank 0 with
/// MPI_Gather, Stage 2 runs on the master GPU, MPI_Scatter returns the
/// scanned prefixes, and barriers bracket the pipeline.

#include <vector>

#include "mgs/core/kernels.hpp"
#include "mgs/core/scan_mps.hpp"
#include "mgs/msg/comm.hpp"

namespace mgs::core {

/// Run the multi-node proposal over the communicator's M*W ranks.
/// `batches[r]` follows the distribute_batch layout for rank r (portion r
/// of every problem). Returns makespan + breakdown including the MPI
/// collectives (the data behind Figure 14).
template <typename T, typename Op = Plus<T>>
RunResult scan_mps_multinode(msg::Communicator& comm,
                             std::vector<GpuBatch<T>>& batches,
                             std::int64_t n, std::int64_t g,
                             const ScanPlan& plan, ScanKind kind, Op op = {},
                             WorkspacePool* ws = nullptr) {
  plan.validate();
  const int ranks = comm.size();
  MGS_REQUIRE(static_cast<int>(batches.size()) == ranks,
              "scan_mps_multinode: one batch per rank required");
  MGS_REQUIRE(n % ranks == 0, "scan_mps_multinode: N must divide by M*W");
  const std::int64_t n_local = n / ranks;
  const BatchLayout lay = make_layout(n_local, g, plan.s13);

  topo::Cluster& cluster = comm.cluster();
  RunResult result;
  result.payload_bytes = 2ull * static_cast<std::uint64_t>(n) * g * sizeof(T);
  comm.reset_breakdown();
  comm.reset_fault_counters();

  auto phase_start = [&] {
    double t = 0.0;
    for (int r = 0; r < ranks; ++r) {
      t = std::max(t, cluster.device(comm.device_of(r)).clock().now());
    }
    return t;
  };
  const double t0 = phase_start();

  // Master allocates the combined array for Stage 2 (rank-major layout:
  // rank r's contribution at offset r*g*bx, matching MPI_Gather).
  simt::Device& master = cluster.device(comm.device_of(0));
  auto aux_all = acquire_workspace<T>(
      ws, master, static_cast<std::int64_t>(ranks) * g * lay.bx);
  std::vector<WorkspacePool::Handle<T>> aux_local;
  aux_local.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    aux_local.push_back(acquire_workspace<T>(
        ws, cluster.device(comm.device_of(r)), lay.aux_elems()));
  }

  // "After synchronizing all MPI processes, the first stage is executed."
  auto entry_stage = obs::open_stage("EntryBarrier", t0);
  comm.barrier();
  const double t_sync = phase_start();
  entry_stage.close(t_sync);

  // ---- Stage 1 on every rank.
  auto stage1 = obs::open_stage("Stage1", t_sync);
  for (int r = 0; r < ranks; ++r) {
    launch_chunk_reduce(cluster.device(comm.device_of(r)),
                        batches[static_cast<std::size_t>(r)].in,
                        aux_local[static_cast<std::size_t>(r)].buffer(), lay,
                        plan.s13, op);
  }
  const double t_stage1 = phase_start();
  stage1.close(t_stage1);
  result.breakdown.add("Stage1", t_stage1 - t_sync);

  // ---- MPI_Gather of the chunk reductions to rank 0.
  auto gather_stage = obs::open_stage("MPI_Gather", t_stage1);
  std::vector<msg::Slice<T>> slices;
  for (int r = 0; r < ranks; ++r) {
    slices.push_back({&aux_local[static_cast<std::size_t>(r)].buffer(), 0,
                      lay.aux_elems()});
  }
  comm.gather(0, slices, aux_all.buffer(), 0);
  const double t_gather = phase_start();
  gather_stage.close(t_gather);

  // ---- Stage 2 on the master GPU over the rank-major layout.
  auto stage2 = obs::open_stage("Stage2", t_gather, comm.device_of(0));
  launch_intermediate_scan_ranked(master, aux_all.buffer(), lay.bx, ranks, g,
                                  plan.s2, op);
  const double t_stage2_end = phase_start();
  stage2.close(t_stage2_end);
  result.breakdown.add(
      "Stage2", t_stage2_end - t_stage1 - comm.breakdown().get("MPI_Gather"));

  // ---- MPI_Scatter the scanned prefixes back (each rank's region of the
  // rank-major array is contiguous).
  auto scatter_stage = obs::open_stage("MPI_Scatter", t_stage2_end);
  comm.scatter(0, aux_all.buffer(), 0, slices);

  // ---- Stage 3 on every rank.
  const double t_stage3_begin = phase_start();
  scatter_stage.close(t_stage3_begin);
  auto stage3 = obs::open_stage("Stage3", t_stage3_begin);
  for (int r = 0; r < ranks; ++r) {
    launch_scan_add(cluster.device(comm.device_of(r)),
                    batches[static_cast<std::size_t>(r)].in,
                    batches[static_cast<std::size_t>(r)].out,
                    aux_local[static_cast<std::size_t>(r)].buffer(), lay,
                    plan.s13, kind, op);
  }
  const double t_stage3 = phase_start();
  stage3.close(t_stage3);
  result.breakdown.add("Stage3", t_stage3 - t_stage3_begin);

  auto exit_stage = obs::open_stage("ExitBarrier", t_stage3);
  comm.barrier();
  const double t_end = phase_start();
  exit_stage.close(t_end);
  result.breakdown.merge(comm.breakdown());

  result.seconds = t_end - t0;
  result.faults.counters = comm.fault_counters();
  return result;
}

}  // namespace mgs::core
