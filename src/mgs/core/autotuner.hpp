#pragma once
/// \file autotuner.hpp
/// Automatic (s, p, l, K) search -- the automation the paper leaves as
/// future work ("Currently, this search is not done automatically, but is
/// part of the future work", Section 3.2). The search space is trimmed by
/// the premises exactly as the paper prescribes (vector-width P >= 4,
/// warp-multiple block sizes, K from Equation 1), and each candidate is
/// measured with a real simulated run; results are memoized per (N, G).

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "mgs/core/plan.hpp"
#include "mgs/sim/device_spec.hpp"

namespace mgs::core {

/// One evaluated configuration.
struct AutotuneEntry {
  ScanPlan plan;
  double seconds = 0.0;
};

/// One row of the search report (for inspection / the ablation bench).
struct AutotuneReportRow {
  int p = 0;
  int lx = 0;
  int k = 0;
  double seconds = 0.0;
  bool best = false;
};

class Autotuner {
 public:
  explicit Autotuner(sim::DeviceSpec spec);

  /// Best plan for a single-GPU batch of G problems of N elements of
  /// `elem_bytes` each (4 or 8; wider elements shrink the register-path
  /// budget and the smem per warp, so they get their own cache rows).
  /// First call for an (N, G, elem_bytes) triple runs the search (cost:
  /// one simulated scan per candidate, tens of candidates); later calls
  /// are cached.
  const AutotuneEntry& tune(std::int64_t n, std::int64_t g,
                            int elem_bytes = 4);

  /// Every candidate evaluated by the most recent uncached tune() call.
  const std::vector<AutotuneReportRow>& last_report() const {
    return report_;
  }

  std::size_t cache_size() const { return cache_.size(); }
  void clear_cache() { cache_.clear(); }

  /// The premise-trimmed candidate plans for (N, G, elem_bytes) on this
  /// device.
  std::vector<ScanPlan> candidates(std::int64_t n, std::int64_t g,
                                   int elem_bytes = 4) const;

 private:
  double measure(const ScanPlan& plan, std::int64_t n, std::int64_t g,
                 int elem_bytes) const;

  sim::DeviceSpec spec_;
  std::map<std::tuple<std::int64_t, std::int64_t, int>, AutotuneEntry>
      cache_;
  std::vector<AutotuneReportRow> report_;
};

}  // namespace mgs::core
