#pragma once
/// \file reduce.hpp
/// Batched reduction: G problems of N elements -> G totals, in one
/// invocation. This is the paper's Stage 1 promoted to a public
/// primitive: chunk reductions with the cascade skeleton, then one small
/// kernel folds each problem's chunk totals.

#include "mgs/core/kernels.hpp"

namespace mgs::core {

/// Reduce each of the `g` problems of `n` contiguous elements in `in`
/// into `out[p]` (out must hold at least g elements).
template <typename T, typename Op = Plus<T>>
RunResult reduce_sp(simt::Device& dev, const simt::DeviceBuffer<T>& in,
                    simt::DeviceBuffer<T>& out, std::int64_t n,
                    std::int64_t g, const StagePlan& sp, Op op = {}) {
  sp.validate();
  MGS_REQUIRE(sp.ly == 1, "reduce_sp: stage-1 plans put one problem per block");
  MGS_REQUIRE(n > 0 && g > 0, "reduce_sp: N and G must be positive");
  MGS_REQUIRE(in.size() >= n * g, "reduce_sp: input too small");
  MGS_REQUIRE(out.size() >= g, "reduce_sp: output must hold G totals");

  const BatchLayout lay = make_layout(n, g, sp);
  RunResult result;
  result.payload_bytes = static_cast<std::uint64_t>(n) * g * sizeof(T);
  const double start = dev.clock().now();

  auto aux = dev.alloc<T>(lay.aux_elems());
  const auto t1 = launch_chunk_reduce(dev, in, aux, lay, sp, op);
  result.breakdown.add("ChunkReduce", t1.seconds);

  // Fold each problem's bx chunk totals: one warp per problem row.
  simt::LaunchConfig cfg;
  cfg.name = "row_reduce";
  const int rows_per_block = 4;
  cfg.grid = {1,
              static_cast<int>(util::div_up(
                  static_cast<std::uint64_t>(g),
                  static_cast<std::uint64_t>(rows_per_block))),
              1};
  cfg.block = {simt::kWarpSize, rows_per_block, 1};
  cfg.regs_per_thread = 24;
  const auto auxv = aux.view();
  const auto outv = out.view();
  const std::int64_t bx = lay.bx;
  const auto t2 = simt::launch(dev, cfg, [=](simt::BlockCtx& ctx) {
    for (int r = 0; r < rows_per_block; ++r) {
      const std::int64_t row =
          static_cast<std::int64_t>(ctx.block_idx().y) * rows_per_block + r;
      if (row >= g) break;
      T total = Op::identity();
      for (std::int64_t i = 0; i < bx; i += simt::kWarpSize) {
        const int cnt = static_cast<int>(
            std::min<std::int64_t>(simt::kWarpSize, bx - i));
        auto v = auxv.load_warp_partial(row * bx + i, cnt, Op::identity(),
                                        ctx.stats());
        total = op(total, simt::warp_reduce(v, op, ctx.stats()));
      }
      outv.store(row, total, ctx.stats());
    }
  });
  result.breakdown.add("RowReduce", t2.seconds);

  result.seconds = dev.clock().now() - start;
  return result;
}

}  // namespace mgs::core
