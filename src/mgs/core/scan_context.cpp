#include "mgs/core/scan_context.hpp"

#include <algorithm>

#include "mgs/core/executor_registry.hpp"
#include "mgs/core/tuning.hpp"
#include "mgs/obs/span.hpp"
#include "mgs/sim/fault.hpp"
#include "mgs/util/math.hpp"

namespace mgs::core {

namespace {

/// Autotuner searches measure real simulated scans, so tune on a reduced
/// copy of the problem: the optimum is scale-stable because the premises'
/// trade-offs are per-chunk/per-block, not per-element (the same argument
/// the figure harnesses use for their K probes).
constexpr std::int64_t kProbeMaxN = std::int64_t{1} << 18;
constexpr std::int64_t kProbeMaxElems = std::int64_t{1} << 20;

}  // namespace

ScanContext::ScanContext(topo::Cluster& cluster)
    : cluster_(&cluster), tuner_(cluster.config().gpu) {}

const ScanPlan& ScanContext::plan_for(std::int64_t n, std::int64_t g,
                                      DType dtype, OpTag op,
                                      int gpus_per_problem, bool segmented) {
  return plan_for(PlanKey{cluster_->config().gpu.name, n, g, dtype, op,
                          segmented, gpus_per_problem});
}

const ScanPlan& ScanContext::plan_for(const PlanKey& key) {
  MGS_REQUIRE(key.n > 0 && key.g > 0 && key.gpus_per_problem >= 1,
              "ScanContext::plan_for: bad plan key");
  if (const auto it = plans_.find(key); it != plans_.end()) {
    ++hits_;
    if (obs::TraceSession* ts = obs::TraceSession::current()) {
      ts->metrics().inc("plan_cache_hits");
    }
    return it->second;
  }
  ++misses_;
  if (obs::TraceSession* ts = obs::TraceSession::current()) {
    ts->metrics().inc("plan_cache_misses");
  }

  const sim::DeviceSpec& spec = cluster_->config().gpu;
  ScanPlan plan;
  if (key.gpus_per_problem == 1) {
    // Single-GPU space: the full automatic (p, l, K) search, probed at
    // reduced scale and memoized inside the Autotuner as well.
    const std::int64_t n_probe = std::min(key.n, kProbeMaxN);
    const std::int64_t g_probe = std::min(
        key.g, std::max<std::int64_t>(1, kProbeMaxElems / n_probe));
    plan = tuner_.tune(n_probe, g_probe, key.elem_bytes()).plan;
  } else {
    // Multi-GPU space (Section 4.2): Premise 3 justifies maximizing K^1,
    // bounded by Equation 1 and by Equations 2/3 (every participating
    // GPU keeps at least one chunk of the problem).
    plan = derive_spl(spec, key.elem_bytes()).plan;
    const std::int64_t bound =
        std::min(k1_max_eq1(key.n, key.g, plan, spec),
                 k1_max_gpus(key.n, plan.s13, key.gpus_per_problem));
    plan.s13.k = static_cast<int>(util::floor_pow2(
        static_cast<std::uint64_t>(std::max<std::int64_t>(1, bound))));
    // Multi-GPU plans default to the event-driven stream pipeline, with
    // the wave count from the Premise-3-style overlap model. Callers can
    // force the synchronous path back via PipelineChoice{kSync}.
    plan.pipe.overlap = true;
    plan.pipe.waves = pick_wave_count(*cluster_, key.n, key.g,
                                      key.gpus_per_problem, plan,
                                      key.elem_bytes());
  }
  const ScanPlan& cached = plans_.emplace(key, plan).first->second;
  if (obs::TraceSession* ts = obs::TraceSession::current()) {
    ts->metrics().set("plan_cache_size", static_cast<double>(plans_.size()));
  }
  return cached;
}

std::size_t ScanContext::invalidate_plans(int max_gpus_per_problem) {
  std::size_t dropped = 0;
  for (auto it = plans_.begin(); it != plans_.end();) {
    if (it->first.gpus_per_problem > max_gpus_per_problem) {
      auto next = std::next(it);
      retired_plans_.push_back(plans_.extract(it));
      it = next;
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped != 0) {
    if (obs::TraceSession* ts = obs::TraceSession::current()) {
      ts->metrics().add("plan_cache_invalidated", {},
                        static_cast<double>(dropped));
      // Running retirement counter next to plan_cache_hits/misses, so
      // dashboards see degraded-mode re-plans without diffing cache sizes.
      ts->metrics().set("plan_cache_retired",
                        static_cast<double>(retired_plans_.size()));
      ts->metrics().set("plan_cache_size",
                        static_cast<double>(plans_.size()));
    }
  }
  return dropped;
}

std::uint64_t ScanContext::fault_epoch() const {
  const sim::FaultInjector* fi = cluster_->fault_injector();
  return fi == nullptr ? 0 : fi->epoch();
}

std::unique_ptr<ScanExecutor> ScanContext::executor_for(
    const PlannerInput& input) {
  return make_executor(*this, choose_proposal(*cluster_, input));
}

}  // namespace mgs::core
