#pragma once
/// \file scan_sp.hpp
/// Scan-SP: the paper's single-GPU proposal. G problems of N elements are
/// solved in one invocation with the three-kernel pipeline (or a single
/// direct kernel when a problem fits in one chunk).

#include "mgs/core/kernels.hpp"
#include "mgs/core/plan.hpp"
#include "mgs/core/workspace.hpp"
#include "mgs/obs/span.hpp"

namespace mgs::core {

/// Run the batch scan on one device. `in` and `out` hold G problems of N
/// contiguous elements each (problem g at offset g*N); they may alias.
/// The device clock advances by the simulated duration; the returned
/// RunResult reports it along with the per-stage breakdown. When `ws` is
/// given, the auxiliary array is leased from it instead of allocated.
template <typename T, typename Op = Plus<T>>
RunResult scan_sp(simt::Device& dev, const simt::DeviceBuffer<T>& in,
                  simt::DeviceBuffer<T>& out, std::int64_t n, std::int64_t g,
                  const ScanPlan& plan, ScanKind kind, Op op = {},
                  WorkspacePool* ws = nullptr) {
  plan.validate();
  MGS_REQUIRE(n > 0 && g > 0, "scan_sp: N and G must be positive");
  MGS_REQUIRE(in.size() >= n * g && out.size() >= n * g,
              "scan_sp: buffers must hold G*N elements");

  const BatchLayout lay = make_layout(n, g, plan.s13);
  RunResult result;
  result.payload_bytes = 2ull * static_cast<std::uint64_t>(n) * g * sizeof(T);
  const double start = dev.clock().now();

  if (lay.bx == 1) {
    auto stage3 = obs::open_stage("Stage3", start, dev.id());
    const auto t = launch_direct_scan(dev, in, out, lay, plan.s13, kind, op);
    stage3.close(dev.clock().now());
    result.breakdown.add("Stage3", t.seconds);
  } else {
    auto aux = acquire_workspace<T>(ws, dev, lay.aux_elems());
    auto stage1 = obs::open_stage("Stage1", dev.clock().now(), dev.id());
    const auto t1 =
        launch_chunk_reduce(dev, in, aux.buffer(), lay, plan.s13, op);
    stage1.close(dev.clock().now());
    result.breakdown.add("Stage1", t1.seconds);
    auto stage2 = obs::open_stage("Stage2", dev.clock().now(), dev.id());
    const auto t2 =
        launch_intermediate_scan(dev, aux.buffer(), lay.bx, lay.g, plan.s2, op);
    stage2.close(dev.clock().now());
    result.breakdown.add("Stage2", t2.seconds);
    auto stage3 = obs::open_stage("Stage3", dev.clock().now(), dev.id());
    const auto t3 =
        launch_scan_add(dev, in, out, aux.buffer(), lay, plan.s13, kind, op);
    stage3.close(dev.clock().now());
    result.breakdown.add("Stage3", t3.seconds);
  }

  result.seconds = dev.clock().now() - start;
  return result;
}

}  // namespace mgs::core
