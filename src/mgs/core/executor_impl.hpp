#pragma once
/// \file executor_impl.hpp
/// The templated side of the erasure boundary: TypedScanExecutor<T, Op>
/// and the five proposal executors as templates over (element type,
/// operator), plus the dispatch-table machinery that maps a runtime
/// (DType, OpTag) pair to one instantiation.
///
/// Most code includes executor.hpp only and never sees this header; it
/// exists for the two TUs that must instantiate the matrix (executor.cpp
/// builds the factory tables; the CI instantiation guard instantiates all
/// of it explicitly) and for typed wrappers such as SegmentedScan, which
/// needs a TypedScanExecutor over SegPair elements -- a type that has no
/// erased carrier and therefore can never come out of the tables.
/// Keeping the table *variables* out of this header keeps ordinary TUs
/// from paying the 5 proposals x 5 dtypes x 3 ops instantiation cost.

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "mgs/core/executor.hpp"
#include "mgs/core/executor_registry.hpp"
#include "mgs/core/scan_mppc.hpp"
#include "mgs/core/scan_mps.hpp"
#include "mgs/core/scan_multinode.hpp"
#include "mgs/core/scan_sp.hpp"
#include "mgs/msg/comm.hpp"
#include "mgs/sim/fault.hpp"

namespace mgs::core {

/// Intermediate base fixing the element type and operator of an executor.
/// The erased run() unwraps the TypedSpans (checking the dtype once) and
/// forwards to run_typed(); for element types outside the DType matrix
/// (SegPair on the internal segmented path) the erased entry point is
/// compiled to a hard error path, and only run_typed() is usable.
template <typename T, typename Op>
class TypedScanExecutor : public ScanExecutor {
 public:
  TypedScanExecutor() {
    dtype_ = PlanTypeOf<T>::dtype;
    op_ = op_tag_of_v<Op>.value_or(OpTag::kPlus);
    segmented_ = PlanTypeOf<T>::segmented;
  }

  using ScanExecutor::run;  // keep the typed std::span overloads visible

  RunResult run(ConstTypedSpan in, TypedSpan out, ScanKind kind) final {
    if constexpr (dtype_of_v<T>.has_value()) {
      return run_typed(in.template as<T>(), out.template as<T>(), kind);
    } else {
      MGS_REQUIRE(false,
                  "ScanExecutor: this instantiation's element type has no "
                  "erased carrier (packed segmented elements); call "
                  "run_typed() on the TypedScanExecutor instead");
      return {};
    }
  }

  /// The monomorphic entry point: same contract as the erased run(), with
  /// the types recovered.
  virtual RunResult run_typed(std::span<const T> in, std::span<T> out,
                              ScanKind kind) = 0;
};

namespace detail {

/// The first `count` GPUs of `node` in global-id order (network-major,
/// the same fill order the figure harnesses use).
inline std::vector<int> node_gpus(const topo::Cluster& cluster, int node,
                                  int count) {
  const auto& cfg = cluster.config();
  MGS_REQUIRE(count >= 1 && count <= cfg.gpus_per_node(),
              "executor: W exceeds the GPUs of a node");
  std::vector<int> ids;
  for (int i = 0; i < count; ++i) {
    ids.push_back(cluster.global_id(node, i / cfg.gpus_per_network,
                                    i % cfg.gpus_per_network));
  }
  return ids;
}

inline bool is_down(const ScanContext& ctx, int dev) {
  const sim::FaultInjector* fi = ctx.cluster().fault_injector();
  return fi != nullptr && fi->device_is_down(dev);
}

inline int cluster_alive_count(const ScanContext& ctx) {
  return static_cast<int>(ctx.cluster().alive_devices().size());
}

/// Latest instant any of `gpus` has reached on either engine -- the
/// cluster-wide "now" a mid-run failure is diagnosed at.
inline double cluster_front(topo::Cluster& cluster,
                            const std::vector<int>& gpus) {
  double t = 0.0;
  for (int d : gpus) {
    t = std::max(t, cluster.device(d).clock().now());
    t = std::max(t, cluster.device(d).dma_clock().now());
  }
  return t;
}

/// Decide which endpoint of a failed mid-run transfer is lost and mark it
/// down in the injector. Scheduled device-down events identify the culprit
/// directly; a pure link death is attributed to the non-master endpoint
/// (fail-stop assumption -- the master must survive for anyone to make
/// progress). Returns the device marked, or -1 when no endpoint can be
/// blamed.
inline int blame_endpoint(sim::FaultInjector& fi, int src_dev, int dst_dev,
                          int master, double now) {
  int dead = -1;
  if (src_dev >= 0 && fi.device_down_at(src_dev, now)) {
    dead = src_dev;
  } else if (dst_dev >= 0 && fi.device_down_at(dst_dev, now)) {
    dead = dst_dev;
  } else if (src_dev >= 0 && src_dev != master) {
    dead = src_dev;
  } else if (dst_dev >= 0 && dst_dev != master) {
    dead = dst_dev;
  }
  if (dead >= 0 && !fi.device_is_down(dead)) fi.mark_device_down(dead);
  return dead;
}

/// Fold a mid-run recovery into a run's fault report; called after
/// stamp_report, which only reflects prepare-time placement.
inline void merge_mid_run_losses(sim::FaultReport& f,
                                 const std::string& executor,
                                 const std::vector<int>& lost) {
  f.degraded = true;
  for (int d : lost) {
    if (std::find(f.excluded_devices.begin(), f.excluded_devices.end(), d) ==
        f.excluded_devices.end()) {
      f.excluded_devices.push_back(d);
    }
  }
  std::string step = executor + ": lost device";
  for (int d : lost) step += " " + std::to_string(d);
  if (!f.resumed_stages.empty()) {
    step += " mid-run, resumed from ";
    for (std::size_t i = 0; i < f.resumed_stages.size(); ++i) {
      if (i != 0) step += "+";
      step += f.resumed_stages[i];
    }
  } else {
    step += " mid-run (restarted on survivors)";
  }
  f.replanned.push_back(step);
  if (f.degraded_mode.empty()) f.degraded_mode = step;
}

/// Last-resort placement shared by the multi-GPU executors: when a
/// degraded placement shrinks to a single surviving device, the run
/// collapses to Scan-SP on that device (the paper's single-GPU proposal --
/// no inter-GPU traffic to fail).
template <typename T, typename Op>
struct SpFallbackT {
  using Handle = typename WorkspacePool::Handle<T>;

  int device = -1;
  Handle in;
  Handle out;

  void prepare(ScanContext& ctx, int dev, std::int64_t elems) {
    device = dev;
    simt::Device& d = ctx.cluster().device(dev);
    in = ctx.workspace().template acquire<T>(d, elems);
    out = ctx.workspace().template acquire<T>(d, elems);
  }

  RunResult run(ScanContext& ctx, const ScanPlan& plan, std::span<const T> src,
                std::span<T> dst, std::int64_t n, std::int64_t g,
                ScanKind kind) {
    ctx.cluster().reset_clocks();
    std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(n * g),
              in.host_span().begin());
    RunResult r = scan_sp<T, Op>(ctx.cluster().device(device), in.buffer(),
                                 out.buffer(), n, g, plan, kind, Op{},
                                 &ctx.workspace());
    const auto produced = out.host_span();
    std::copy(produced.begin(),
              produced.begin() + static_cast<std::ptrdiff_t>(n * g),
              dst.begin());
    return r;
  }
};

// ---------------------------------------------------------------- Scan-SP

template <typename T, typename Op>
class SpExecutorT final : public TypedScanExecutor<T, Op> {
 public:
  using Base = TypedScanExecutor<T, Op>;
  using Handle = typename WorkspacePool::Handle<T>;

  SpExecutorT(ScanContext& ctx, int device_id)
      : ctx_(&ctx), requested_(device_id), device_id_(device_id) {
    MGS_REQUIRE(device_id >= 0 && device_id < ctx.cluster().num_devices(),
                "Scan-SP executor: device id out of range");
  }

  std::string name() const override { return "Scan-SP"; }

  std::string describe() const override {
    std::ostringstream os;
    os << "Scan-SP on device " << device_id_ << this->type_suffix();
    if (plan_ != nullptr) {
      os << "; n=" << n_ << " g=" << g_ << "; " << plan_->describe();
    }
    if (prep_report_.degraded) {
      os << " [degraded: " << prep_report_.degraded_mode << "]";
    }
    return os.str();
  }

  void prepare(std::int64_t n, std::int64_t g) override {
    MGS_REQUIRE(n > 0 && g > 0, "Scan-SP executor: N and G must be positive");
    const std::uint64_t epoch = ctx_->fault_epoch();
    if (n == n_ && g == g_ && epoch == fault_epoch_) return;
    prep_report_ = {};
    device_id_ = requested_;
    if (is_down(*ctx_, device_id_)) {
      const auto alive = ctx_->cluster().alive_devices();
      MGS_REQUIRE(!alive.empty(), "Scan-SP executor: no surviving device");
      device_id_ = alive.front();
      prep_report_.degraded = true;
      prep_report_.degraded_mode =
          "Scan-SP on device " + std::to_string(device_id_);
      prep_report_.excluded_devices.push_back(requested_);
      prep_report_.replanned.push_back(
          "Scan-SP: device " + std::to_string(requested_) + " -> " +
          std::to_string(device_id_));
    }
    plan_ = &ctx_->plan_for(this->plan_key(*ctx_, n, g, 1));
    simt::Device& dev = ctx_->cluster().device(device_id_);
    in_ = ctx_->workspace().template acquire<T>(dev, n * g);
    out_ = ctx_->workspace().template acquire<T>(dev, n * g);
    n_ = n;
    g_ = g;
    fault_epoch_ = epoch;
  }

  RunResult run_typed(std::span<const T> in, std::span<T> out,
                      ScanKind kind) override {
    this->require_ready(static_cast<std::int64_t>(in.size()),
                        static_cast<std::int64_t>(out.size()));
    prepare(n_, g_);  // re-place if device liveness changed since prepare()
    obs::ScopedSpan run_span = this->trace_run();
    ctx_->cluster().reset_clocks();
    std::copy(in.begin(), in.begin() + static_cast<std::ptrdiff_t>(n_ * g_),
              in_.host_span().begin());
    RunResult r =
        scan_sp<T, Op>(ctx_->cluster().device(device_id_), in_.buffer(),
                       out_.buffer(), n_, g_, *plan_, kind, Op{},
                       &ctx_->workspace());
    const auto src = out_.host_span();
    std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(n_ * g_),
              out.begin());
    this->stamp_report(r);
    this->finish_run(run_span, r);
    return r;
  }

 private:
  using Base::fault_epoch_;
  using Base::g_;
  using Base::n_;
  using Base::prep_report_;

  ScanContext* ctx_;
  int requested_;
  int device_id_;
  const ScanPlan* plan_ = nullptr;
  Handle in_;
  Handle out_;
};

// --------------------------------------------------- Scan-MPS (+ direct)

template <typename T, typename Op>
class MpsExecutorT final : public TypedScanExecutor<T, Op> {
 public:
  using Base = TypedScanExecutor<T, Op>;
  using Handle = typename WorkspacePool::Handle<T>;

  MpsExecutorT(ScanContext& ctx, int w, bool direct, PipelineChoice pipe)
      : ctx_(&ctx), direct_(direct), pipe_(pipe) {
    const auto& cfg = ctx.cluster().config();
    w_req_ = (w > 0) ? w
                     : (direct ? cfg.gpus_per_network : cfg.gpus_per_node());
    gpus_ = node_gpus(ctx.cluster(), 0, w_req_);  // validates w_req_
    w_ = w_req_;
  }

  std::string name() const override {
    return direct_ ? "Scan-MPS-direct" : "Scan-MPS";
  }

  std::string describe() const override {
    std::ostringstream os;
    os << name() << " over " << w_ << " GPUs of node 0 (master "
       << gpus_.front() << ")" << this->type_suffix();
    if (plan_.has_value()) {
      os << "; n=" << n_ << " g=" << g_ << "; " << plan_->describe();
    }
    if (prep_report_.degraded) {
      os << " [degraded: " << prep_report_.degraded_mode << "]";
    }
    return os.str();
  }

  void prepare(std::int64_t n, std::int64_t g) override {
    MGS_REQUIRE(n > 0 && g > 0, "Scan-MPS executor: N and G must be positive");
    const std::uint64_t epoch = ctx_->fault_epoch();
    if (n == n_ && g == g_ && epoch == fault_epoch_) return;
    place(n);
    if (use_sp_) {
      plan_ = ctx_->plan_for(this->plan_key(*ctx_, n, g, 1));
      sp_.prepare(*ctx_, gpus_.front(), n * g);
      ins_.clear();
      outs_.clear();
    } else {
      MGS_REQUIRE(n % w_ == 0, "Scan-MPS executor: N must be divisible by W");
      plan_ = apply_pipeline_choice(
          ctx_->plan_for(this->plan_key(*ctx_, n, g, w_)), pipe_);
      const std::int64_t per_gpu = (n / w_) * g;
      ins_.clear();
      outs_.clear();
      for (int id : gpus_) {
        simt::Device& dev = ctx_->cluster().device(id);
        ins_.push_back(ctx_->workspace().template acquire<T>(dev, per_gpu));
        outs_.push_back(ctx_->workspace().template acquire<T>(dev, per_gpu));
      }
    }
    n_ = n;
    g_ = g;
    fault_epoch_ = epoch;
  }

  RunResult run_typed(std::span<const T> in, std::span<T> out,
                      ScanKind kind) override {
    this->require_ready(static_cast<std::int64_t>(in.size()),
                        static_cast<std::int64_t>(out.size()));
    prepare(n_, g_);
    obs::ScopedSpan run_span = this->trace_run();
    if (use_sp_) {
      RunResult r = sp_.run(*ctx_, *plan_, in, out, n_, g_, kind);
      this->stamp_report(r);
      this->finish_run(run_span, r);
      return r;
    }
    std::vector<int> lost;
    RunResult r = direct_ ? run_direct_restarting(in, out, kind, lost)
                          : run_mps_resuming(in, out, kind, lost);
    this->stamp_report(r);
    if (!lost.empty()) merge_mid_run_losses(r.faults, name(), lost);
    this->finish_run(run_span, r);
    return r;
  }

 private:
  using Base::fault_epoch_;
  using Base::g_;
  using Base::n_;
  using Base::prep_report_;

  /// Non-direct Scan-MPS with stage-granular mid-run recovery: the scan
  /// records per-stage progress in a checkpoint; a device/link death
  /// unwinds to here, the dead device's portions remap onto the
  /// least-loaded survivors (logical W and the chunk layout stay fixed, so
  /// Stage 2 still applies the operator in ascending portion order and
  /// results stay bit-identical to the healthy run), the lost portions'
  /// inputs restage from the host, and the scan re-enters to continue from
  /// the last completed stage boundary instead of restarting.
  RunResult run_mps_resuming(std::span<const T> in, std::span<T> out,
                             ScanKind kind, std::vector<int>& lost) {
    ctx_->cluster().reset_clocks();
    std::vector<GpuBatch<T>> batches;
    for (std::size_t d = 0; d < gpus_.size(); ++d) {
      batches.push_back(GpuBatch<T>{ins_[d].buffer(), outs_[d].buffer()});
    }
    scatter_batch<T>(in, batches, n_, g_);
    sim::FaultInjector* fi = ctx_->cluster().fault_injector();
    MpsCheckpoint<T> ck;
    for (int attempt = 0;; ++attempt) {
      try {
        RunResult r =
            scan_mps<T, Op>(ctx_->cluster(), gpus_, batches, n_, g_, *plan_,
                            kind, Op{}, &ctx_->workspace(), &ck);
        gather_batch<T>(batches, n_, g_, out);
        return r;
      } catch (const topo::TransferError& e) {
        // One recovery per device that can still die; anything past that
        // is unsurvivable -- propagate.
        if (fi == nullptr || attempt >= w_req_) throw;
        resume_after_fault(e, in, batches, ck, *fi, lost);
      }
    }
  }

  /// Remap a dead device's portions, restage their inputs, and regress
  /// exactly the checkpoint flags whose backing buffers died. Rethrows the
  /// active exception when the failure cannot be attributed or survived.
  void resume_after_fault(const topo::TransferError& e, std::span<const T> in,
                          std::vector<GpuBatch<T>>& batches,
                          MpsCheckpoint<T>& ck, sim::FaultInjector& fi,
                          std::vector<int>& lost) {
    topo::Cluster& cluster = ctx_->cluster();
    const double now = cluster_front(cluster, gpus_);
    const int old_master = gpus_.front();
    const int dead = blame_endpoint(fi, e.src_dev, e.dst_dev, old_master, now);
    if (dead < 0) throw;
    std::vector<int> portions;
    for (int i = 0; i < w_; ++i) {
      if (gpus_[static_cast<std::size_t>(i)] == dead) portions.push_back(i);
    }
    if (portions.empty()) throw;  // not a participant; cannot route around
    std::vector<int> pool;
    for (int id : node_gpus(cluster, 0, w_req_)) {
      if (!fi.device_is_down(id)) pool.push_back(id);
    }
    if (pool.empty()) throw;  // no survivor to resume onto
    const bool master_died = (old_master == dead);

    const std::int64_t n_local = n_ / w_;
    const std::int64_t per_gpu = n_local * g_;
    const BatchLayout lay = make_layout(n_local, g_, plan_->s13);

    // A dead master takes the gathered aux matrix and the Stage-2 output
    // with it: everything master-resident regresses, while the survivors'
    // raw reductions (aux_local) and already-scattered prefixes
    // (prefix_local) stay valid. Reset before the per-portion pass so a
    // dead portion whose gather died with the master re-runs Stage 1 too.
    if (ck.active && master_died) {
      std::fill(ck.gathered.begin(), ck.gathered.end(), char{0});
      std::fill(ck.scanned.begin(), ck.scanned.end(), char{0});
      ck.stage2_done = false;
    }

    auto load_of = [&](int id) {
      int c = 0;
      for (int owner : gpus_) c += (owner == id) ? 1 : 0;
      return c;
    };
    for (int i : portions) {
      const auto ii = static_cast<std::size_t>(i);
      int repl = pool.front();
      int best = load_of(repl);
      for (int id : pool) {
        const int l = load_of(id);
        if (l < best) {
          repl = id;
          best = l;
        }
      }
      gpus_[ii] = repl;
      simt::Device& dev = cluster.device(repl);
      ins_[ii] = ctx_->workspace().template acquire<T>(dev, per_gpu);
      outs_[ii] = ctx_->workspace().template acquire<T>(dev, per_gpu);
      batches[ii] = GpuBatch<T>{ins_[ii].buffer(), outs_[ii].buffer()};
      // Refill this portion's input from the host (same layout as
      // scatter_batch) and charge the H2D restage to the replacement's
      // clock -- lost time is real time.
      auto dst = ins_[ii].host_span();
      for (std::int64_t gg = 0; gg < g_; ++gg) {
        const auto row = in.begin() + (gg * n_ + i * n_local);
        std::copy(row, row + n_local, dst.begin() + gg * n_local);
      }
      const auto& links = cluster.config().links;
      const double restage =
          links.host_latency_us * 1e-6 +
          static_cast<double>(per_gpu) * sizeof(T) /
              (links.host_bandwidth_gbps * 1e9);
      dev.clock().sync_to(now);
      dev.clock().advance(restage);

      if (!ck.active) continue;
      ck.aux_local[ii] =
          acquire_workspace<T>(&ctx_->workspace(), dev, lay.aux_elems());
      ck.prefix_local[ii] =
          acquire_workspace<T>(&ctx_->workspace(), dev, lay.aux_elems());
      if (ck.overlap) {
        bool fully_gathered = true;
        for (int v = 0; v < ck.k; ++v) {
          const auto cell = static_cast<std::size_t>(v * ck.w + i);
          ck.scattered[cell] = 0;
          if (ck.gathered[cell] == 0) fully_gathered = false;
        }
        // Ungathered cells need the reductions regenerated on the
        // replacement (pure kernels: identical values). Cells already on
        // the master keep their flags -- their data survived.
        if (!fully_gathered) ck.s1_done[ii] = 0;
      } else {
        ck.scattered[ii] = 0;
        if (ck.gathered[ii] == 0) ck.s1_done[ii] = 0;
      }
    }
    if (ck.active && master_died) {
      simt::Device& new_master = cluster.device(gpus_.front());
      ck.aux_all = acquire_workspace<T>(&ctx_->workspace(), new_master,
                                        g_ * w_ * lay.bx);
      if (ck.overlap) {
        ck.carry = acquire_workspace<T>(&ctx_->workspace(), new_master, g_);
      }
    }

    // Account the recovery window so the breakdown keeps telescoping to
    // the total, then arm the next entry instant.
    double t_resume = now;
    for (int i : portions) {
      t_resume = std::max(
          t_resume,
          cluster.device(gpus_[static_cast<std::size_t>(i)]).clock().now());
    }
    std::string boundary = "Start";
    if (ck.active) {
      boundary = ck.resume_boundary();
      t_resume = std::max(t_resume, ck.last_boundary);
      auto rec = obs::open_stage("Recovery", ck.last_boundary);
      rec.close(t_resume);
      ck.partial.breakdown.add("Recovery", t_resume - ck.last_boundary);
      ck.resumes += 1;
      ck.resumed_stages.push_back(boundary);
      ck.last_boundary = t_resume;
    }
    obs::note_fault("resume",
                    {{"executor", name()},
                     {"dead", std::to_string(dead)},
                     {"boundary", boundary},
                     {"portions", std::to_string(portions.size())},
                     {"master", master_died ? "replaced" : "kept"}},
                    now, dead);
    lost.push_back(dead);
  }

  /// Scan-MPS-direct recovery is restart-based: UVA peer writes leave no
  /// checkpointable intermediate on the master mid-kernel, so mark the
  /// device down, re-place (fewer GPUs, possibly Scan-SP), and rerun.
  RunResult run_direct_restarting(std::span<const T> in, std::span<T> out,
                                  ScanKind kind, std::vector<int>& lost) {
    sim::FaultInjector* fi = ctx_->cluster().fault_injector();
    const int limit = ctx_->cluster().num_devices();
    for (int attempt = 0;; ++attempt) {
      prepare(n_, g_);  // re-places when a recovery moved the liveness epoch
      if (use_sp_) return sp_.run(*ctx_, *plan_, in, out, n_, g_, kind);
      ctx_->cluster().reset_clocks();
      std::vector<GpuBatch<T>> batches;
      for (std::size_t d = 0; d < gpus_.size(); ++d) {
        batches.push_back(GpuBatch<T>{ins_[d].buffer(), outs_[d].buffer()});
      }
      scatter_batch<T>(in, batches, n_, g_);
      try {
        RunResult r = scan_mps_direct<T, Op>(ctx_->cluster(), gpus_, batches,
                                             n_, g_, *plan_, kind, Op{},
                                             &ctx_->workspace());
        gather_batch<T>(batches, n_, g_, out);
        return r;
      } catch (const topo::TransferError& e) {
        if (fi == nullptr || attempt >= limit) throw;
        const double now = cluster_front(ctx_->cluster(), gpus_);
        const int dead =
            blame_endpoint(*fi, e.src_dev, e.dst_dev, gpus_.front(), now);
        if (dead < 0) throw;
        lost.push_back(dead);
        obs::note_fault("restart",
                        {{"executor", name()}, {"dead", std::to_string(dead)}},
                        now, dead);
      }
    }
  }

  /// Placement: the requested W GPUs of node 0 when all are alive; the
  /// largest surviving prefix whose size divides N otherwise (direct mode
  /// additionally keeps only GPUs sharing the new master's PCIe network,
  /// since peer writes need P2P reach).
  void place(std::int64_t n) {
    prep_report_ = {};
    const auto all = node_gpus(ctx_->cluster(), 0, w_req_);
    std::vector<int> alive;
    std::vector<int> dead;
    for (int id : all) (is_down(*ctx_, id) ? dead : alive).push_back(id);
    MGS_REQUIRE(!alive.empty(),
                "Scan-MPS executor: no surviving GPU on node 0");
    if (dead.empty()) {
      gpus_ = all;
      w_ = w_req_;
      use_sp_ = false;
      return;
    }
    if (direct_) {
      const int master = alive.front();
      std::vector<int> same;
      for (int id : alive) {
        const auto link = ctx_->cluster().link_between(master, id);
        if (link == topo::LinkType::kSelf || link == topo::LinkType::kP2P) {
          same.push_back(id);
        }
      }
      alive = std::move(same);
    }
    int w2 = static_cast<int>(alive.size());
    while (w2 > 1 && n % w2 != 0) --w2;
    gpus_.assign(alive.begin(), alive.begin() + w2);
    w_ = w2;
    use_sp_ = (w2 == 1);
    prep_report_.degraded = true;
    prep_report_.excluded_devices = dead;
    prep_report_.invalidated_plans +=
        ctx_->invalidate_plans(cluster_alive_count(*ctx_));
    prep_report_.degraded_mode =
        use_sp_ ? ("Scan-SP on device " + std::to_string(gpus_.front()))
                : (name() + " W=" + std::to_string(w_));
    prep_report_.replanned.push_back(name() + ": W=" + std::to_string(w_req_) +
                                     " -> " + std::to_string(w_));
  }

  ScanContext* ctx_;
  bool direct_;
  PipelineChoice pipe_;
  int w_req_ = 1;
  int w_ = 1;
  bool use_sp_ = false;
  std::vector<int> gpus_;
  std::optional<ScanPlan> plan_;
  std::vector<Handle> ins_;
  std::vector<Handle> outs_;
  SpFallbackT<T, Op> sp_;
};

// -------------------------------------------------------------- Scan-MP-PC

template <typename T, typename Op>
class MppcExecutorT final : public TypedScanExecutor<T, Op> {
 public:
  using Base = TypedScanExecutor<T, Op>;
  using Handle = typename WorkspacePool::Handle<T>;

  MppcExecutorT(ScanContext& ctx, int y, int v, int m, PipelineChoice pipe)
      : ctx_(&ctx), pipe_(pipe) {
    const auto& cfg = ctx.cluster().config();
    y_ = (y > 0) ? y : cfg.networks_per_node;
    v_req_ = (v > 0) ? v : cfg.gpus_per_network;
    v_ = v_req_;
    m_ = (m > 0) ? m : 1;
  }

  std::string name() const override { return "Scan-MP-PC"; }

  std::string describe() const override {
    std::ostringstream os;
    os << "Scan-MP-PC with Y=" << y_ << " networks/node, V=" << v_
       << " GPUs/network, M=" << m_ << " nodes" << this->type_suffix();
    if (plan_.has_value()) {
      os << " (" << part_.groups.size() << " groups); n=" << n_ << " g=" << g_
         << "; " << plan_->describe();
    }
    if (prep_report_.degraded) {
      os << " [degraded: " << prep_report_.degraded_mode << "]";
    }
    return os.str();
  }

  void prepare(std::int64_t n, std::int64_t g) override {
    MGS_REQUIRE(n > 0 && g > 0,
                "Scan-MP-PC executor: N and G must be positive");
    const std::uint64_t epoch = ctx_->fault_epoch();
    if (n == n_ && g == g_ && epoch == fault_epoch_) return;
    place(n, g);
    ins_.clear();
    outs_.clear();
    if (use_sp_) {
      plan_ = ctx_->plan_for(this->plan_key(*ctx_, n, g, 1));
      sp_.prepare(*ctx_, sp_device_, n * g);
    } else {
      plan_ = apply_pipeline_choice(
          ctx_->plan_for(this->plan_key(*ctx_, n, g, v_)), pipe_);
      for (std::size_t grp = 0; grp < part_.groups.size(); ++grp) {
        const std::int64_t per_gpu = (n / v_) * part_.g_of_group[grp];
        std::vector<Handle> gin, gout;
        for (int id : part_.groups[grp]) {
          simt::Device& dev = ctx_->cluster().device(id);
          gin.push_back(ctx_->workspace().template acquire<T>(dev, per_gpu));
          gout.push_back(ctx_->workspace().template acquire<T>(dev, per_gpu));
        }
        ins_.push_back(std::move(gin));
        outs_.push_back(std::move(gout));
      }
    }
    n_ = n;
    g_ = g;
    fault_epoch_ = epoch;
  }

  RunResult run_typed(std::span<const T> in, std::span<T> out,
                      ScanKind kind) override {
    this->require_ready(static_cast<std::int64_t>(in.size()),
                        static_cast<std::int64_t>(out.size()));
    prepare(n_, g_);
    obs::ScopedSpan run_span = this->trace_run();
    sim::FaultInjector* fi = ctx_->cluster().fault_injector();
    const int limit = ctx_->cluster().num_devices();
    std::vector<int> lost;
    RunResult r;
    // Restart-based mid-run recovery: group-independent sub-scans make a
    // partial result useless once any group loses a member, so mark the
    // dead device, re-place (regrouping survivors), and rerun.
    for (int attempt = 0;; ++attempt) {
      prepare(n_, g_);  // re-places when a recovery moved the liveness epoch
      if (use_sp_) {
        r = sp_.run(*ctx_, *plan_, in, out, n_, g_, kind);
        break;
      }
      ctx_->cluster().reset_clocks();
      std::vector<std::vector<GpuBatch<T>>> batches;
      for (std::size_t grp = 0; grp < part_.groups.size(); ++grp) {
        std::vector<GpuBatch<T>> b;
        for (std::size_t d = 0; d < part_.groups[grp].size(); ++d) {
          b.push_back(
              GpuBatch<T>{ins_[grp][d].buffer(), outs_[grp][d].buffer()});
        }
        batches.push_back(std::move(b));
      }
      for (std::size_t grp = 0; grp < batches.size(); ++grp) {
        scatter_batch<T>(
            in.subspan(static_cast<std::size_t>(part_.g_offset[grp] * n_),
                       static_cast<std::size_t>(part_.g_of_group[grp] * n_)),
            batches[grp], n_, part_.g_of_group[grp]);
      }
      try {
        r = scan_mppc<T, Op>(ctx_->cluster(), part_, batches, n_, *plan_,
                             kind, Op{}, &ctx_->workspace());
        for (std::size_t grp = 0; grp < batches.size(); ++grp) {
          gather_batch<T>(
              batches[grp], n_, part_.g_of_group[grp],
              out.subspan(static_cast<std::size_t>(part_.g_offset[grp] * n_),
                          static_cast<std::size_t>(part_.g_of_group[grp] *
                                                   n_)));
        }
        break;
      } catch (const topo::TransferError& e) {
        if (fi == nullptr || attempt >= limit) throw;
        std::vector<int> ids;
        for (const auto& grp : part_.groups) {
          ids.insert(ids.end(), grp.begin(), grp.end());
        }
        const double now = cluster_front(ctx_->cluster(), ids);
        const int dead = blame_endpoint(*fi, e.src_dev, e.dst_dev,
                                        /*master=*/-1, now);
        if (dead < 0) throw;
        lost.push_back(dead);
        obs::note_fault("restart",
                        {{"executor", name()}, {"dead", std::to_string(dead)}},
                        now, dead);
      }
    }
    this->stamp_report(r);
    if (!lost.empty()) merge_mid_run_losses(r.faults, name(), lost);
    this->finish_run(run_span, r);
    return r;
  }

 private:
  using Base::fault_epoch_;
  using Base::g_;
  using Base::n_;
  using Base::prep_report_;

  /// Placement: the paper's Y x V partition when every requested GPU is
  /// alive; otherwise the groups are rebuilt from the alive GPUs of each
  /// PCIe network (any slot of a network may substitute for a dead one),
  /// with a uniform V' = min over networks, shrunk until it divides N.
  /// Networks with no survivor are dropped; a single surviving GPU
  /// collapses to Scan-SP.
  void place(std::int64_t n, std::int64_t g) {
    prep_report_ = {};
    const auto& cfg = ctx_->cluster().config();
    bool any_down = false;
    for (int node = 0; node < m_ && !any_down; ++node) {
      for (int net = 0; net < y_ && !any_down; ++net) {
        for (int s = 0; s < v_req_; ++s) {
          if (is_down(*ctx_, ctx_->cluster().global_id(node, net, s))) {
            any_down = true;
            break;
          }
        }
      }
    }
    if (!any_down) {
      MGS_REQUIRE(n % v_req_ == 0,
                  "Scan-MP-PC executor: N must be divisible by V");
      part_ = make_mppc_partition(ctx_->cluster(), y_, v_req_, g, m_);
      v_ = v_req_;
      use_sp_ = false;
      return;
    }

    std::vector<std::vector<int>> nets;
    std::vector<int> dead;
    for (int node = 0; node < m_; ++node) {
      for (int net = 0; net < y_; ++net) {
        std::vector<int> ids;
        for (int s = 0; s < cfg.gpus_per_network; ++s) {
          const int id = ctx_->cluster().global_id(node, net, s);
          if (is_down(*ctx_, id)) {
            if (s < v_req_) dead.push_back(id);
          } else {
            ids.push_back(id);
          }
        }
        if (!ids.empty()) nets.push_back(std::move(ids));
      }
    }
    MGS_REQUIRE(!nets.empty(), "Scan-MP-PC executor: no surviving GPU");
    std::size_t v_min = nets.front().size();
    for (const auto& ids : nets) v_min = std::min(v_min, ids.size());
    int v2 = std::min(v_req_, static_cast<int>(v_min));
    while (v2 > 1 && n % v2 != 0) --v2;

    prep_report_.degraded = true;
    prep_report_.excluded_devices = dead;
    prep_report_.invalidated_plans +=
        ctx_->invalidate_plans(cluster_alive_count(*ctx_));
    if (nets.size() == 1 && v2 == 1) {
      use_sp_ = true;
      sp_device_ = nets.front().front();
      v_ = 1;
      prep_report_.degraded_mode =
          "Scan-SP on device " + std::to_string(sp_device_);
    } else {
      use_sp_ = false;
      v_ = v2;
      part_ = MppcPartition{};
      part_.v = v2;
      const std::int64_t total_groups =
          std::min<std::int64_t>(static_cast<std::int64_t>(nets.size()), g);
      std::int64_t next_g = 0;
      for (std::int64_t grp = 0; grp < total_groups; ++grp) {
        const auto& ids = nets[static_cast<std::size_t>(grp)];
        part_.groups.emplace_back(
            ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(v2));
        const std::int64_t share =
            g / total_groups + ((grp < g % total_groups) ? 1 : 0);
        part_.g_of_group.push_back(share);
        part_.g_offset.push_back(next_g);
        next_g += share;
      }
      prep_report_.degraded_mode =
          "Scan-MP-PC " + std::to_string(part_.groups.size()) +
          " groups x V=" + std::to_string(v2);
    }
    prep_report_.replanned.push_back(
        "Scan-MP-PC: V=" + std::to_string(v_req_) + " -> " +
        std::to_string(v2) + ", groups -> " +
        std::to_string(use_sp_ ? 1 : static_cast<int>(part_.groups.size())));
  }

  ScanContext* ctx_;
  PipelineChoice pipe_;
  int y_ = 1;
  int v_req_ = 1;
  int v_ = 1;
  int m_ = 1;
  bool use_sp_ = false;
  int sp_device_ = -1;
  MppcPartition part_;
  std::optional<ScanPlan> plan_;
  std::vector<std::vector<Handle>> ins_;
  std::vector<std::vector<Handle>> outs_;
  SpFallbackT<T, Op> sp_;
};

// --------------------------------------------------- multi-node Scan-MPS

template <typename T, typename Op>
class MultinodeExecutorT final : public TypedScanExecutor<T, Op> {
 public:
  using Base = TypedScanExecutor<T, Op>;
  using Handle = typename WorkspacePool::Handle<T>;

  MultinodeExecutorT(ScanContext& ctx, int m, int w, PipelineChoice pipe)
      : ctx_(&ctx), pipe_(pipe) {
    const auto& cfg = ctx.cluster().config();
    m_ = (m > 0) ? m : cfg.nodes;
    w_ = (w > 0) ? w : cfg.gpus_per_node();
    MGS_REQUIRE(m_ <= cfg.nodes,
                "Scan-MPS-multinode executor: M exceeds the cluster");
    node_gpus(ctx.cluster(), 0, w_);  // validates w_ against the node shape
  }

  std::string name() const override { return "Scan-MPS-multinode"; }

  std::string describe() const override {
    std::ostringstream os;
    os << "Scan-MPS-multinode over " << m_ << " nodes x " << w_
       << " GPUs (one MPI rank per GPU)" << this->type_suffix();
    if (plan_.has_value()) {
      os << "; n=" << n_ << " g=" << g_ << "; " << plan_->describe();
    }
    if (prep_report_.degraded) {
      os << " [degraded: " << prep_report_.degraded_mode << "]";
    }
    return os.str();
  }

  void prepare(std::int64_t n, std::int64_t g) override {
    MGS_REQUIRE(n > 0 && g > 0,
                "Scan-MPS-multinode executor: N and G must be positive");
    const std::uint64_t epoch = ctx_->fault_epoch();
    if (n == n_ && g == g_ && epoch == fault_epoch_) return;
    place(n);
    ins_.clear();
    outs_.clear();
    if (use_sp_) {
      plan_ = ctx_->plan_for(this->plan_key(*ctx_, n, g, 1));
      sp_.prepare(*ctx_, sp_device_, n * g);
    } else {
      const int ranks = comm_->size();
      plan_ = apply_pipeline_choice(
          ctx_->plan_for(this->plan_key(*ctx_, n, g, ranks)), pipe_);
      const std::int64_t per_rank = (n / ranks) * g;
      for (int r = 0; r < ranks; ++r) {
        simt::Device& dev = ctx_->cluster().device(comm_->device_of(r));
        ins_.push_back(ctx_->workspace().template acquire<T>(dev, per_rank));
        outs_.push_back(ctx_->workspace().template acquire<T>(dev, per_rank));
      }
    }
    n_ = n;
    g_ = g;
    fault_epoch_ = epoch;
  }

  RunResult run_typed(std::span<const T> in, std::span<T> out,
                      ScanKind kind) override {
    this->require_ready(static_cast<std::int64_t>(in.size()),
                        static_cast<std::int64_t>(out.size()));
    prepare(n_, g_);
    obs::ScopedSpan run_span = this->trace_run();
    sim::FaultInjector* fi = ctx_->cluster().fault_injector();
    const int limit = ctx_->cluster().num_devices();
    std::vector<int> lost;
    RunResult r;
    // Restart-based mid-run recovery: a failed rank is identified from the
    // typed error (CommError names it; TransferError names the endpoints),
    // marked down, and the run re-places on the surviving ranks.
    for (int attempt = 0;; ++attempt) {
      prepare(n_, g_);  // re-places when a recovery moved the liveness epoch
      if (use_sp_) {
        r = sp_.run(*ctx_, *plan_, in, out, n_, g_, kind);
        break;
      }
      ctx_->cluster().reset_clocks();
      std::vector<GpuBatch<T>> batches;
      for (std::size_t rk = 0; rk < ins_.size(); ++rk) {
        batches.push_back(GpuBatch<T>{ins_[rk].buffer(), outs_[rk].buffer()});
      }
      scatter_batch<T>(in, batches, n_, g_);
      try {
        r = scan_mps_multinode<T, Op>(*comm_, batches, n_, g_, *plan_, kind,
                                      Op{}, &ctx_->workspace());
        gather_batch<T>(batches, n_, g_, out);
        break;
      } catch (const msg::CommError& e) {
        if (fi == nullptr || attempt >= limit) throw;
        std::vector<int> ids;
        for (int rk = 0; rk < comm_->size(); ++rk) {
          ids.push_back(comm_->device_of(rk));
        }
        const double now = cluster_front(ctx_->cluster(), ids);
        const int dead = comm_->device_of(e.failed_rank);
        if (!fi->device_is_down(dead)) fi->mark_device_down(dead);
        lost.push_back(dead);
        obs::note_fault("restart",
                        {{"executor", name()},
                         {"rank", std::to_string(e.failed_rank)},
                         {"dead", std::to_string(dead)}},
                        now, dead);
      } catch (const topo::TransferError& e) {
        if (fi == nullptr || attempt >= limit) throw;
        std::vector<int> ids;
        for (int rk = 0; rk < comm_->size(); ++rk) {
          ids.push_back(comm_->device_of(rk));
        }
        const double now = cluster_front(ctx_->cluster(), ids);
        const int dead = blame_endpoint(*fi, e.src_dev, e.dst_dev,
                                        comm_->device_of(0), now);
        if (dead < 0) throw;
        lost.push_back(dead);
        obs::note_fault("restart",
                        {{"executor", name()}, {"dead", std::to_string(dead)}},
                        now, dead);
      }
    }
    this->stamp_report(r);
    if (!lost.empty()) merge_mid_run_losses(r.faults, name(), lost);
    this->finish_run(run_span, r);
    return r;
  }

 private:
  using Base::fault_epoch_;
  using Base::g_;
  using Base::n_;
  using Base::prep_report_;

  /// Placement: one rank per requested GPU when all are alive; dead ranks
  /// are dropped otherwise, then surviving ranks are trimmed from the tail
  /// until the count divides N. A single survivor collapses to Scan-SP.
  void place(std::int64_t n) {
    prep_report_ = {};
    std::vector<int> ids;
    std::vector<int> dead;
    for (int node = 0; node < m_; ++node) {
      for (int id : node_gpus(ctx_->cluster(), node, w_)) {
        (is_down(*ctx_, id) ? dead : ids).push_back(id);
      }
    }
    MGS_REQUIRE(!ids.empty(), "Scan-MPS-multinode executor: no surviving GPU");
    if (dead.empty()) {
      MGS_REQUIRE(n % static_cast<std::int64_t>(ids.size()) == 0,
                  "Scan-MPS-multinode executor: N must divide by M*W");
      use_sp_ = false;
      comm_.emplace(ctx_->cluster(), std::move(ids));
      return;
    }
    const std::size_t survivors = ids.size();
    std::size_t r = survivors;
    while (r > 1 && n % static_cast<std::int64_t>(r) != 0) --r;
    ids.resize(r);
    prep_report_.degraded = true;
    prep_report_.excluded_devices = dead;
    prep_report_.invalidated_plans +=
        ctx_->invalidate_plans(cluster_alive_count(*ctx_));
    if (r == 1) {
      use_sp_ = true;
      sp_device_ = ids.front();
      comm_.reset();
      prep_report_.degraded_mode =
          "Scan-SP on device " + std::to_string(sp_device_);
    } else {
      use_sp_ = false;
      comm_.emplace(ctx_->cluster(), std::move(ids));
      prep_report_.degraded_mode =
          "Scan-MPS-multinode on " + std::to_string(r) + " ranks";
    }
    prep_report_.replanned.push_back(
        "Scan-MPS-multinode: ranks " + std::to_string(m_ * w_) + " -> " +
        std::to_string(r) +
        (r < survivors ? " (" + std::to_string(survivors - r) +
                             " surviving ranks idled so ranks divide N)"
                       : ""));
  }

  ScanContext* ctx_;
  PipelineChoice pipe_;
  int m_ = 1;
  int w_ = 1;
  bool use_sp_ = false;
  int sp_device_ = -1;
  std::optional<msg::Communicator> comm_;
  std::optional<ScanPlan> plan_;
  std::vector<Handle> ins_;
  std::vector<Handle> outs_;
  SpFallbackT<T, Op> sp_;
};

}  // namespace detail

/// Build one typed proposal executor by registry name. This is the typed
/// twin of make_executor(): wrappers that hold the executor by its
/// TypedScanExecutor interface (SegmentedScan) use it to keep run_typed()
/// callable; everyone else goes through the erased factories.
template <typename T, typename Op = Plus<T>>
std::unique_ptr<TypedScanExecutor<T, Op>> make_typed_executor(
    const std::string& name, ScanContext& ctx, const ExecutorParams& p = {}) {
  const PipelineChoice pipe{p.pipeline, p.waves};
  if (name == "Scan-SP") {
    return std::make_unique<detail::SpExecutorT<T, Op>>(ctx, p.device);
  }
  if (name == "Scan-MPS") {
    return std::make_unique<detail::MpsExecutorT<T, Op>>(ctx, p.w,
                                                         /*direct=*/false,
                                                         pipe);
  }
  if (name == "Scan-MPS-direct") {
    return std::make_unique<detail::MpsExecutorT<T, Op>>(ctx, p.w,
                                                         /*direct=*/true,
                                                         pipe);
  }
  if (name == "Scan-MP-PC") {
    return std::make_unique<detail::MppcExecutorT<T, Op>>(
        ctx, p.y, p.v, p.m > 0 ? p.m : 1, pipe);
  }
  if (name == "Scan-MPS-multinode") {
    return std::make_unique<detail::MultinodeExecutorT<T, Op>>(ctx, p.m, p.w,
                                                               pipe);
  }
  MGS_REQUIRE(false, "make_typed_executor: unknown executor '" + name + "'");
  return nullptr;
}

namespace detail {

/// One (DType, OpTag) -> executor-factory dispatch table. The table
/// *variables* are built only in executor.cpp and in the CI instantiation
/// guard -- never as inline header constants -- so ordinary TUs including
/// this header do not instantiate the full proposal x dtype x op matrix.
using ExecutorFactory = std::unique_ptr<ScanExecutor> (*)(
    ScanContext&, const ExecutorParams&);

struct FactoryTable {
  ExecutorFactory fn[kNumDTypes][kNumOpTags] = {};
  /// Mirrors fn: set exactly where a factory was installed. The density
  /// check reads this instead of comparing fn against nullptr -- under
  /// -fsanitize=address GCC refuses to constant-fold comparisons with an
  /// instrumented function's address, so the bool mirror keeps
  /// table_is_dense usable in static_asserts on every build flavor.
  bool set[kNumDTypes][kNumOpTags] = {};

  ExecutorFactory at(DType d, OpTag o) const {
    return fn[static_cast<int>(d)][static_cast<int>(o)];
  }
};

/// Every cell filled? static_asserted over each table in executor.cpp and
/// the guard TU, so a new DType/OpTag enumerator that misses a maker row
/// breaks the build rather than null-dispatching at runtime.
constexpr bool table_is_dense(const FactoryTable& t) {
  for (int d = 0; d < kNumDTypes; ++d) {
    for (int o = 0; o < kNumOpTags; ++o) {
      if (!t.set[d][o]) return false;
    }
  }
  return true;
}

/// Maker shims: one static make() per (proposal, T, Op) with the uniform
/// ExecutorFactory signature the tables store.
template <typename T, typename Op>
struct SpMaker {
  static std::unique_ptr<ScanExecutor> make(ScanContext& ctx,
                                            const ExecutorParams& p) {
    return std::make_unique<SpExecutorT<T, Op>>(ctx, p.device);
  }
};

template <typename T, typename Op>
struct MpsMaker {
  static std::unique_ptr<ScanExecutor> make(ScanContext& ctx,
                                            const ExecutorParams& p) {
    return std::make_unique<MpsExecutorT<T, Op>>(
        ctx, p.w, /*direct=*/false, PipelineChoice{p.pipeline, p.waves});
  }
};

template <typename T, typename Op>
struct MpsDirectMaker {
  static std::unique_ptr<ScanExecutor> make(ScanContext& ctx,
                                            const ExecutorParams& p) {
    return std::make_unique<MpsExecutorT<T, Op>>(
        ctx, p.w, /*direct=*/true, PipelineChoice{p.pipeline, p.waves});
  }
};

template <typename T, typename Op>
struct MppcMaker {
  static std::unique_ptr<ScanExecutor> make(ScanContext& ctx,
                                            const ExecutorParams& p) {
    return std::make_unique<MppcExecutorT<T, Op>>(
        ctx, p.y, p.v, p.m > 0 ? p.m : 1, PipelineChoice{p.pipeline, p.waves});
  }
};

template <typename T, typename Op>
struct MultinodeMaker {
  static std::unique_ptr<ScanExecutor> make(ScanContext& ctx,
                                            const ExecutorParams& p) {
    return std::make_unique<MultinodeExecutorT<T, Op>>(
        ctx, p.m, p.w, PipelineChoice{p.pipeline, p.waves});
  }
};

/// Fill one dtype row of a table with the three operator columns.
template <template <typename, typename> class Maker, typename T>
constexpr void fill_row(FactoryTable& t) {
  const int d = static_cast<int>(*dtype_of_v<T>);
  t.fn[d][static_cast<int>(OpTag::kPlus)] = &Maker<T, Plus<T>>::make;
  t.fn[d][static_cast<int>(OpTag::kMax)] = &Maker<T, Max<T>>::make;
  t.fn[d][static_cast<int>(OpTag::kMin)] = &Maker<T, Min<T>>::make;
  for (const OpTag o : {OpTag::kPlus, OpTag::kMax, OpTag::kMin}) {
    t.set[d][static_cast<int>(o)] = true;
  }
}

/// The full 5 x 3 table for one proposal. Instantiates that proposal over
/// the whole matrix -- call only from executor.cpp / the guard TU.
template <template <typename, typename> class Maker>
constexpr FactoryTable make_table() {
  FactoryTable t;
  fill_row<Maker, std::int32_t>(t);
  fill_row<Maker, std::int64_t>(t);
  fill_row<Maker, std::uint32_t>(t);
  fill_row<Maker, float>(t);
  fill_row<Maker, double>(t);
  return t;
}

}  // namespace detail

}  // namespace mgs::core
