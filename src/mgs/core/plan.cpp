#include "mgs/core/plan.hpp"

#include <sstream>

namespace mgs::core {

void StagePlan::validate() const {
  MGS_REQUIRE(p > 0 && util::is_pow2(static_cast<std::uint64_t>(p)),
              "StagePlan: P must be a positive power of two");
  MGS_REQUIRE(lx > 0 && util::is_pow2(static_cast<std::uint64_t>(lx)),
              "StagePlan: Lx must be a positive power of two");
  MGS_REQUIRE(ly > 0 && util::is_pow2(static_cast<std::uint64_t>(ly)),
              "StagePlan: Ly must be a positive power of two");
  MGS_REQUIRE(k > 0 && util::is_pow2(static_cast<std::uint64_t>(k)),
              "StagePlan: K must be a positive power of two");
  MGS_REQUIRE(lx % simt::kWarpSize == 0 || ly == 1,
              "StagePlan: multi-problem blocks need warp-aligned Lx");
}

void ScanPlan::validate() const {
  s13.validate();
  s2.validate();
  MGS_REQUIRE(s13.ly == 1,
              "ScanPlan: stages 1/3 put every thread of a block on one "
              "problem (L_y^{1,3} = 1)");
  MGS_REQUIRE(s2.k == 1, "ScanPlan: K^2 = 1 (Premise 3)");
  MGS_REQUIRE(pipe.waves >= 1, "ScanPlan: pipeline needs >= 1 wave");
}

std::string ScanPlan::describe() const {
  std::ostringstream os;
  os << "stage1/3: (s=" << s13.s_log2() << ", p=" << s13.p_log2()
     << ", l=" << s13.l_log2() << ", K=" << s13.k << ")"
     << " [P=" << s13.p << ", Lx=" << s13.lx << ", chunk=" << s13.chunk()
     << ", regs=" << s13.regs_per_thread() << "]"
     << "; stage2: (lx=" << s2.lx << ", ly=" << s2.ly << ", p=" << s2.p << ")";
  if (pipe.overlap) {
    os << "; pipeline: overlapped, waves=" << pipe.waves;
  } else {
    os << "; pipeline: synchronous";
  }
  return os.str();
}

ScanPlan apply_pipeline_choice(ScanPlan plan, const PipelineChoice& choice) {
  switch (choice.mode) {
    case PipelineMode::kAuto:
      break;
    case PipelineMode::kSync:
      plan.pipe.overlap = false;
      break;
    case PipelineMode::kOverlap:
      plan.pipe.overlap = true;
      break;
  }
  if (choice.waves > 0) plan.pipe.waves = choice.waves;
  if (plan.pipe.waves < 1) plan.pipe.waves = 1;
  return plan;
}

BatchLayout make_layout(std::int64_t n_local, std::int64_t g,
                        const StagePlan& s13) {
  MGS_REQUIRE(n_local > 0, "make_layout: empty problem portion");
  MGS_REQUIRE(g > 0, "make_layout: batch must contain at least one problem");
  BatchLayout lay;
  lay.n_local = n_local;
  lay.g = g;
  lay.chunk = s13.chunk();
  lay.bx = static_cast<std::int64_t>(
      util::div_up(static_cast<std::uint64_t>(n_local),
                   static_cast<std::uint64_t>(lay.chunk)));
  return lay;
}

}  // namespace mgs::core
