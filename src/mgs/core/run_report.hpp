#pragma once
/// \file run_report.hpp
/// Bridge between core::RunResult and the obs exporters: build the
/// obs::RunInfo header from a run and write the JSON run-report /
/// Perfetto trace / Prometheus files a harness or tool wants to leave
/// behind. Header-only so mgs_obs stays below mgs_core in the layering.

#include <fstream>
#include <string>

#include "mgs/core/dtype.hpp"
#include "mgs/core/plan.hpp"
#include "mgs/obs/critical_path.hpp"
#include "mgs/obs/export.hpp"
#include "mgs/obs/span.hpp"
#include "mgs/util/check.hpp"

namespace mgs::core {

/// RunInfo header for a completed run (non-zero fault counters only).
/// dtype/op default to the paper's i32 sums so pre-refactor callers keep
/// producing identical reports.
inline obs::RunInfo make_run_info(const std::string& executor,
                                  std::int64_t n, int devices,
                                  const RunResult& r,
                                  DType dtype = DType::kI32,
                                  OpTag op = OpTag::kPlus) {
  obs::RunInfo info;
  info.executor = executor;
  info.dtype = to_string(dtype);
  info.op = to_string(op);
  info.n = static_cast<std::uint64_t>(n);
  info.devices = devices;
  info.seconds = r.seconds;
  info.payload_bytes = r.payload_bytes;
  info.breakdown = r.breakdown.entries();
  const auto& c = r.faults.counters;
  auto push = [&](const char* key, std::uint64_t v) {
    if (v != 0) info.fault_counters.emplace_back(key, v);
  };
  push("transient_failures", c.transient_failures);
  push("retries", c.retries);
  push("timeouts", c.timeouts);
  push("corruptions_detected", c.corruptions_detected);
  push("rerouted_transfers", c.rerouted_transfers);
  push("rerouted_bytes", c.rerouted_bytes);
  push("invalidated_plans", r.faults.invalidated_plans);
  push("resumed_stages", r.faults.resumed_stages.size());
  return info;
}

/// Write the "mgs-run-report-v1" JSON for everything `ts` recorded; the
/// critical path is derived from the last run span (or the whole
/// recording when there is none).
inline void write_run_report_file(const std::string& path,
                                  const obs::RunInfo& info,
                                  const obs::TraceSession& ts) {
  const auto spans = ts.spans();
  const auto cp = obs::analyze_last_run(spans);
  std::ofstream os(path);
  MGS_REQUIRE(os.good(), "run-report: cannot open " + path);
  obs::write_run_report(os, info, ts.metrics().snapshot(), spans, cp);
  MGS_REQUIRE(os.good(), "run-report: write failed for " + path);
}

/// Write the Chrome/Perfetto trace for everything `ts` recorded.
inline void write_chrome_trace_file(const std::string& path,
                                    const obs::TraceSession& ts) {
  std::ofstream os(path);
  MGS_REQUIRE(os.good(), "trace: cannot open " + path);
  obs::write_chrome_trace(os, ts.spans(), ts.metrics().snapshot());
  MGS_REQUIRE(os.good(), "trace: write failed for " + path);
}

/// Write the Prometheus text exposition for the session's metrics.
inline void write_prometheus_file(const std::string& path,
                                  const obs::TraceSession& ts) {
  std::ofstream os(path);
  MGS_REQUIRE(os.good(), "metrics: cannot open " + path);
  obs::write_prometheus(os, ts.metrics().snapshot());
  MGS_REQUIRE(os.good(), "metrics: write failed for " + path);
}

}  // namespace mgs::core
