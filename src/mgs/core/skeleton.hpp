#pragma once
/// \file skeleton.hpp
/// BPLG-style computational skeletons for the scan kernels (Section 3.1 of
/// the paper, Figures 4 and 5):
///
///  * each thread owns P register-resident elements, read through int4
///    vector loads (one "quad" = 4 elements per lane, 128 per warp);
///  * a per-lane serial scan of each quad, then a shuffle-based
///    Ladner-Fischer warp scan of the lane totals (exclusive, so the lane
///    adds the prefix directly -- the trick called out in Section 3.1);
///  * warp totals exchanged through shared memory (at most one element per
///    warp, s <= 5) and scanned by warp 0;
///  * a cascade loop: K iterations per block, the running total carried
///    into the next iteration (Figure 5), so one block covers a chunk of
///    K*Lx*P elements.
///
/// All functions are warp-granular: per-lane state lives in WarpReg arrays,
/// a faithful host-side encoding of warp-synchronous CUDA code.

#include <span>
#include <vector>

#include "mgs/core/op.hpp"
#include "mgs/core/plan.hpp"
#include "mgs/simt/device.hpp"
#include "mgs/simt/launch.hpp"
#include "mgs/simt/warp.hpp"

namespace mgs::core {

/// Elements covered by one warp-quad (each lane loads one Vec4).
inline constexpr int kQuadSpan = 4 * simt::kWarpSize;

namespace detail {

/// Load one warp-quad [base, base+valid), valid in [0, 128]; lane l owns
/// elements base+4l .. base+4l+3. Missing elements are filled with the
/// operator identity (they then cannot disturb totals). The full case is a
/// perfectly coalesced 512-byte vector load; the tail falls back to scalar
/// loads, whose extra transactions the cost model sees.
template <typename T, typename Op>
simt::WarpReg<simt::Vec4<T>> load_quad(simt::BlockCtx& ctx,
                                       const simt::GlobalView<T>& in,
                                       std::int64_t base, int valid, Op) {
  if (valid == kQuadSpan) {
    return in.load4_warp(base, ctx.stats());
  }
  simt::WarpReg<simt::Vec4<T>> r;
  for (int l = 0; l < simt::kWarpSize; ++l) {
    for (int i = 0; i < 4; ++i) {
      const int e = 4 * l + i;
      r[l][i] = (e < valid) ? in.load(base + e, ctx.stats()) : Op::identity();
    }
  }
  return r;
}

template <typename T>
void store_quad(simt::BlockCtx& ctx, const simt::GlobalView<T>& out,
                std::int64_t base, int valid,
                const simt::WarpReg<simt::Vec4<T>>& v) {
  if (valid == kQuadSpan) {
    out.store4_warp(base, v, ctx.stats());
    return;
  }
  for (int l = 0; l < simt::kWarpSize; ++l) {
    for (int i = 0; i < 4; ++i) {
      const int e = 4 * l + i;
      if (e < valid) out.store(base + e, v[l][i], ctx.stats());
    }
  }
}

/// Per-lane state of one scanned quad, kept in registers between the
/// compute phase and the (prefix-completed) store phase.
template <typename T>
struct QuadState {
  simt::WarpReg<simt::Vec4<T>> inc;  ///< per-lane inclusive scan of 4
  simt::WarpReg<T> lane_excl;  ///< exclusive prefix of the lane's quad
                               ///< within its warp segment
  std::int64_t base = 0;
  int valid = 0;
};

}  // namespace detail

/// Reduce one tile [base, base+valid) of at most sp.tile() elements;
/// returns the tile total (identity when valid == 0). This is the Stage 1
/// (Chunk Reduce) inner loop: no stores, no inter-warp scan -- only warp
/// reductions combined through shared-memory partials.
template <typename T, typename Op>
T reduce_tile(simt::BlockCtx& ctx, const simt::GlobalView<T>& in,
              std::int64_t base, std::int64_t valid, const StagePlan& sp,
              Op op) {
  const int nw = sp.warps();
  const int quads = sp.p / 4;
  T tile_total = Op::identity();
  for (int w = 0; w < nw; ++w) {
    T warp_total = Op::identity();
    for (int q = 0; q < quads; ++q) {
      const std::int64_t off =
          static_cast<std::int64_t>(w) * sp.p * simt::kWarpSize +
          static_cast<std::int64_t>(q) * kQuadSpan;
      if (off >= valid) break;
      const int qvalid =
          static_cast<int>(std::min<std::int64_t>(kQuadSpan, valid - off));
      const auto v = detail::load_quad(ctx, in, base + off, qvalid, op);
      simt::WarpReg<T> lane_sum;
      for (int l = 0; l < simt::kWarpSize; ++l) {
        lane_sum[l] = op(op(v[l].x, v[l].y), op(v[l].z, v[l].w));
      }
      ctx.count_alu(3 * simt::kWarpSize);
      warp_total = op(warp_total, simt::warp_reduce(lane_sum, op, ctx.stats()));
    }
    // Warp writes its partial to shared memory; warp 0 combines.
    tile_total = op(tile_total, warp_total);
    ctx.count_alu(2);
  }
  ctx.sync();
  return tile_total;
}

/// Scan one tile [base, base+valid) of at most sp.tile() elements with an
/// incoming prefix `carry`; writes output (inclusive or exclusive of the
/// element itself; `carry` is always excluded-prefix-so-far) and returns
/// the tile total. This is the Stage 3 (Scan+Addition) inner loop; Stage 2
/// uses the row-scan skeleton below instead.
template <typename T, typename Op>
T scan_tile(simt::BlockCtx& ctx, const simt::GlobalView<T>& in,
            const simt::GlobalView<T>& out, std::int64_t base,
            std::int64_t valid, const StagePlan& sp, T carry, ScanKind kind,
            Op op, std::span<T> smem_partials) {
  const int nw = sp.warps();
  const int quads = sp.p / 4;
  MGS_CHECK(static_cast<int>(smem_partials.size()) >= nw,
            "scan_tile: shared-memory partials span too small");

  std::vector<detail::QuadState<T>> state(
      static_cast<std::size_t>(nw) * quads);
  std::vector<T> warp_total(static_cast<std::size_t>(nw), Op::identity());

  // Phase A: per-warp scans; warp totals to shared memory.
  for (int w = 0; w < nw; ++w) {
    T chain = Op::identity();  // prefix within this warp's segment
    for (int q = 0; q < quads; ++q) {
      auto& st = state[static_cast<std::size_t>(w) * quads + q];
      const std::int64_t off =
          static_cast<std::int64_t>(w) * sp.p * simt::kWarpSize +
          static_cast<std::int64_t>(q) * kQuadSpan;
      st.base = base + off;
      st.valid = (off >= valid)
                     ? 0
                     : static_cast<int>(
                           std::min<std::int64_t>(kQuadSpan, valid - off));
      if (st.valid == 0) continue;
      st.inc = detail::load_quad(ctx, in, st.base, st.valid, op);
      simt::WarpReg<T> lane_tot;
      for (int l = 0; l < simt::kWarpSize; ++l) {
        lane_tot[l] =
            simt::thread_scan_inclusive(&st.inc[l].x, 4, op, ctx.stats());
      }
      simt::WarpReg<T> excl = lane_tot;
      simt::warp_scan_exclusive(excl, op, ctx.stats());
      const T quad_total =
          op(excl[simt::kWarpSize - 1], lane_tot[simt::kWarpSize - 1]);
      for (int l = 0; l < simt::kWarpSize; ++l) {
        st.lane_excl[l] = op(chain, excl[l]);
      }
      ctx.count_alu(simt::kWarpSize + 1);
      chain = op(chain, quad_total);
    }
    warp_total[static_cast<std::size_t>(w)] = chain;
    smem_partials[static_cast<std::size_t>(w)] = chain;  // smem exchange
  }
  ctx.sync();

  // Phase B: warp 0 scans the (<= 32) warp partials (LF over shuffles).
  simt::WarpReg<T> partials;
  for (int l = 0; l < simt::kWarpSize; ++l) {
    partials[l] = (l < nw) ? smem_partials[static_cast<std::size_t>(l)]
                           : Op::identity();
  }
  simt::warp_scan_exclusive(partials, op, ctx.stats());
  const T tile_total =
      op(partials[nw - 1], warp_total[static_cast<std::size_t>(nw - 1)]);
  ctx.sync();

  // Phase C: complete prefixes and store.
  for (int w = 0; w < nw; ++w) {
    const T wprefix = op(carry, partials[w]);
    for (int q = 0; q < quads; ++q) {
      const auto& st = state[static_cast<std::size_t>(w) * quads + q];
      if (st.valid == 0) continue;
      simt::WarpReg<simt::Vec4<T>> result;
      for (int l = 0; l < simt::kWarpSize; ++l) {
        const T prefix = op(wprefix, st.lane_excl[l]);
        if (kind == ScanKind::kInclusive) {
          for (int i = 0; i < 4; ++i) result[l][i] = op(prefix, st.inc[l][i]);
        } else {
          result[l][0] = prefix;
          for (int i = 1; i < 4; ++i) {
            result[l][i] = op(prefix, st.inc[l][i - 1]);
          }
        }
      }
      ctx.count_alu(5 * simt::kWarpSize);
      detail::store_quad(ctx, out, st.base, st.valid, result);
    }
  }
  return tile_total;
}

/// Cascade loop for Stage 1: reduce a whole chunk [base, base+len),
/// chaining tile totals across the K iterations (Figure 5). Returns the
/// chunk total.
template <typename T, typename Op>
T cascade_reduce(simt::BlockCtx& ctx, const simt::GlobalView<T>& in,
                 std::int64_t base, std::int64_t len, const StagePlan& sp,
                 Op op) {
  T total = Op::identity();
  for (std::int64_t off = 0; off < len; off += sp.tile()) {
    const std::int64_t valid = std::min<std::int64_t>(sp.tile(), len - off);
    total = op(total, reduce_tile(ctx, in, base + off, valid, sp, op));
    ctx.count_alu(1);
  }
  return total;
}

/// Cascade loop for Stage 3: scan a whole chunk with incoming prefix
/// `carry_in` (the chunk's exclusive prefix from the auxiliary array).
/// Returns the chunk total (excluding carry_in).
template <typename T, typename Op>
T cascade_scan(simt::BlockCtx& ctx, const simt::GlobalView<T>& in,
               const simt::GlobalView<T>& out, std::int64_t base,
               std::int64_t len, const StagePlan& sp, T carry_in,
               ScanKind kind, Op op, std::span<T> smem_partials) {
  T carry = carry_in;
  T total = Op::identity();
  for (std::int64_t off = 0; off < len; off += sp.tile()) {
    const std::int64_t valid = std::min<std::int64_t>(sp.tile(), len - off);
    const T t = scan_tile(ctx, in, out, base + off, valid, sp, carry, kind, op,
                          smem_partials);
    carry = op(carry, t);
    total = op(total, t);
    ctx.count_alu(2);
  }
  return total;
}

/// Warp-cooperative exclusive scan of one row of `len` elements accessed
/// through an arbitrary index mapping (Stage 2 / Intermediate Scan; the
/// mapping is the identity for the single-node layout and a rank-strided
/// permutation for the MPI-gathered layout). In-place.
///
/// LoadFn:  (int64 i0, int n) -> WarpReg<T>   -- row elements [i0, i0+n)
/// StoreFn: (int64 i0, int n, const WarpReg<T>&)
/// Like warp_row_scan_exclusive below, but the row's exclusive prefix
/// starts at `carry_in` instead of the identity, and the row total
/// (excluding carry_in) is returned. This is what lets the wave-pipelined
/// Stage 2 process a row in column chunks: chunk c seeds with the running
/// carry written by chunk c-1 and hands its updated carry to chunk c+1.
template <typename T, typename Op, typename LoadFn, typename StoreFn>
T warp_row_scan_exclusive_carry(simt::BlockCtx& ctx, std::int64_t len,
                                LoadFn load, StoreFn store, Op op,
                                T carry_in) {
  T carry = carry_in;
  T total = Op::identity();
  for (std::int64_t i0 = 0; i0 < len; i0 += simt::kWarpSize) {
    const int n =
        static_cast<int>(std::min<std::int64_t>(simt::kWarpSize, len - i0));
    simt::WarpReg<T> x = load(i0, n);
    simt::WarpReg<T> inc = x;
    simt::warp_scan_inclusive(inc, op, ctx.stats());
    simt::WarpReg<T> excl;
    for (int l = 0; l < simt::kWarpSize; ++l) {
      excl[l] = (l == 0) ? carry : op(carry, inc[l - 1]);
    }
    ctx.count_alu(simt::kWarpSize);
    store(i0, n, excl);
    if (n > 0) {
      carry = op(carry, inc[n - 1]);
      total = op(total, inc[n - 1]);
    }
  }
  return total;
}

template <typename T, typename Op, typename LoadFn, typename StoreFn>
void warp_row_scan_exclusive(simt::BlockCtx& ctx, std::int64_t len,
                             LoadFn load, StoreFn store, Op op) {
  warp_row_scan_exclusive_carry<T>(ctx, len, load, store, op, Op::identity());
}

}  // namespace mgs::core
