#pragma once
/// \file planner.hpp
/// Proposal selection following Premise 4 (Section 4.2): which proposal to
/// run and with how many nodes (M), GPUs (W), networks (Y) and GPUs per
/// network (V), given the problem shape and the machine.

#include <string>

#include "mgs/core/dtype.hpp"
#include "mgs/topo/topology.hpp"

namespace mgs::core {

enum class Proposal {
  kSingleGpu,   ///< Scan-SP: one GPU (or Case 1: independent GPUs)
  kMps,         ///< Scan-MPS within one node
  kMppc,        ///< Scan-MP-PC: per-network groups
  kMultiNode,   ///< Scan-MPS across nodes via MPI
};

const char* to_string(Proposal p);

struct PlannerInput {
  std::int64_t n = 0;            ///< elements per problem
  std::int64_t g = 1;            ///< problems in the batch
  DType dtype = DType::kI32;     ///< element type (sizes the memory floor)
  OpTag op = OpTag::kPlus;       ///< scan operator (threaded to the executor)
};

struct PlannerChoice {
  Proposal proposal = Proposal::kSingleGpu;
  int m = 1;  ///< nodes
  int w = 1;  ///< GPUs per node
  int v = 1;  ///< GPUs per PCIe network
  int y = 1;  ///< PCIe networks per node
  DType dtype = DType::kI32;  ///< carried from the input to the executor
  OpTag op = OpTag::kPlus;
  std::string rationale;
};

/// Decide the proposal and (M, W, V, Y). The decision follows Premise 4:
///  * memory forces a floor on how many GPUs must share one problem;
///  * P2P-only groups (MP-PC) are preferred whenever a problem fits within
///    one PCIe network and the batch can be spread over networks;
///  * host-staged or MPI scattering is used only when a single network
///    cannot hold a problem, minimizing node count unless the data volume
///    is large enough that MPI's constant overhead amortizes.
/// Throws util::Error when even the whole cluster cannot hold the batch.
PlannerChoice choose_proposal(const topo::Cluster& cluster,
                              const PlannerInput& input);

}  // namespace mgs::core
