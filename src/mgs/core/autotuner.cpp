#include "mgs/core/autotuner.hpp"

#include "mgs/core/scan_sp.hpp"
#include "mgs/core/segmented.hpp"
#include "mgs/core/tuning.hpp"
#include "mgs/sim/occupancy.hpp"
#include "mgs/util/math.hpp"

namespace mgs::core {

Autotuner::Autotuner(sim::DeviceSpec spec) : spec_(std::move(spec)) {}

std::vector<ScanPlan> Autotuner::candidates(std::int64_t n, std::int64_t g,
                                            int elem_bytes) const {
  MGS_REQUIRE(n > 0 && g > 0, "Autotuner: N and G must be positive");
  MGS_REQUIRE(elem_bytes == 4 || elem_bytes == 8 || elem_bytes == 16,
              "Autotuner: elem_bytes must be 4, 8 or 16");
  std::vector<ScanPlan> plans;
  const ScanPlan base = derive_spl(spec_, elem_bytes).plan;

  for (int p : {4, 8, 16}) {
    for (int lx : {64, 128, 256}) {
      ScanPlan plan = base;
      plan.s13.p = p;
      plan.s13.lx = lx;
      if (plan.s13.regs_per_thread() > spec_.max_regs_per_thread) continue;
      // Must be resident at all on this device.
      try {
        (void)sim::occupancy(spec_, plan.s13.threads(),
                             plan.s13.regs_per_thread(),
                             plan.s13.smem_bytes(elem_bytes));
      } catch (const util::Error&) {
        continue;
      }
      // K space: Equation 1, additionally capped so at least one full
      // block of work exists per problem.
      const std::int64_t k_eq1 = k1_max_eq1(n, g, plan, spec_);
      const std::int64_t k_fit = std::max<std::int64_t>(
          1, n / plan.s13.tile());
      const std::int64_t bound =
          std::min({k_eq1, k_fit, std::int64_t{256}});
      for (std::int64_t k = 1; k <= bound; k *= 2) {
        plan.s13.k = static_cast<int>(k);
        plans.push_back(plan);
      }
    }
  }
  MGS_CHECK(!plans.empty(), "Autotuner: empty candidate space");
  return plans;
}

namespace {

/// One probe run at the given element width. The probe element type only
/// has to move the right number of bytes per lane; the premises' cost
/// trade-offs are byte-driven, not value-driven.
template <typename T, typename Op = Plus<T>>
double probe_scan(const sim::DeviceSpec& spec, const ScanPlan& plan,
                  std::int64_t n, std::int64_t g) {
  simt::Device dev(0, spec);
  auto in = dev.alloc<T>(n * g);
  auto out = dev.alloc<T>(n * g);
  return scan_sp<T, Op>(dev, in, out, n, g, plan, ScanKind::kInclusive)
      .seconds;
}

}  // namespace

double Autotuner::measure(const ScanPlan& plan, std::int64_t n,
                          std::int64_t g, int elem_bytes) const {
  switch (elem_bytes) {
    case 8:
      return probe_scan<double>(spec_, plan, n, g);
    case 16:
      return probe_scan<SegPair<double>, SegOp<double, Plus<double>>>(
          spec_, plan, n, g);
    default:
      return probe_scan<int>(spec_, plan, n, g);
  }
}

const AutotuneEntry& Autotuner::tune(std::int64_t n, std::int64_t g,
                                     int elem_bytes) {
  const auto key = std::make_tuple(n, g, elem_bytes);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    return it->second;
  }

  report_.clear();
  AutotuneEntry best;
  bool first = true;
  for (const ScanPlan& plan : candidates(n, g, elem_bytes)) {
    const double s = measure(plan, n, g, elem_bytes);
    report_.push_back({plan.s13.p, plan.s13.lx, plan.s13.k, s, false});
    if (first || s < best.seconds) {
      best.plan = plan;
      best.seconds = s;
      first = false;
    }
  }
  for (auto& row : report_) {
    row.best = row.p == best.plan.s13.p && row.lx == best.plan.s13.lx &&
               row.k == best.plan.s13.k;
  }
  return cache_.emplace(key, best).first->second;
}

}  // namespace mgs::core
