#include "mgs/core/autotuner.hpp"

#include "mgs/core/scan_sp.hpp"
#include "mgs/core/tuning.hpp"
#include "mgs/sim/occupancy.hpp"
#include "mgs/util/math.hpp"

namespace mgs::core {

Autotuner::Autotuner(sim::DeviceSpec spec) : spec_(std::move(spec)) {}

std::vector<ScanPlan> Autotuner::candidates(std::int64_t n,
                                            std::int64_t g) const {
  MGS_REQUIRE(n > 0 && g > 0, "Autotuner: N and G must be positive");
  std::vector<ScanPlan> plans;
  const ScanPlan base = derive_spl(spec_, 4).plan;

  for (int p : {4, 8, 16}) {
    for (int lx : {64, 128, 256}) {
      ScanPlan plan = base;
      plan.s13.p = p;
      plan.s13.lx = lx;
      if (plan.s13.regs_per_thread() > spec_.max_regs_per_thread) continue;
      // Must be resident at all on this device.
      try {
        (void)sim::occupancy(spec_, plan.s13.threads(),
                             plan.s13.regs_per_thread(),
                             plan.s13.smem_bytes(4));
      } catch (const util::Error&) {
        continue;
      }
      // K space: Equation 1, additionally capped so at least one full
      // block of work exists per problem.
      const std::int64_t k_eq1 = k1_max_eq1(n, g, plan, spec_);
      const std::int64_t k_fit = std::max<std::int64_t>(
          1, n / plan.s13.tile());
      const std::int64_t bound =
          std::min({k_eq1, k_fit, std::int64_t{256}});
      for (std::int64_t k = 1; k <= bound; k *= 2) {
        plan.s13.k = static_cast<int>(k);
        plans.push_back(plan);
      }
    }
  }
  MGS_CHECK(!plans.empty(), "Autotuner: empty candidate space");
  return plans;
}

double Autotuner::measure(const ScanPlan& plan, std::int64_t n,
                          std::int64_t g) const {
  simt::Device dev(0, spec_);
  auto in = dev.alloc<int>(n * g);
  auto out = dev.alloc<int>(n * g);
  return scan_sp<int>(dev, in, out, n, g, plan, ScanKind::kInclusive)
      .seconds;
}

const AutotuneEntry& Autotuner::tune(std::int64_t n, std::int64_t g) {
  const auto key = std::make_pair(n, g);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    return it->second;
  }

  report_.clear();
  AutotuneEntry best;
  bool first = true;
  for (const ScanPlan& plan : candidates(n, g)) {
    const double s = measure(plan, n, g);
    report_.push_back({plan.s13.p, plan.s13.lx, plan.s13.k, s, false});
    if (first || s < best.seconds) {
      best.plan = plan;
      best.seconds = s;
      first = false;
    }
  }
  for (auto& row : report_) {
    row.best = row.p == best.plan.s13.p && row.lx == best.plan.s13.lx &&
               row.k == best.plan.s13.k;
  }
  return cache_.emplace(key, best).first->second;
}

}  // namespace mgs::core
