#pragma once
/// \file plan.hpp
/// Kernel execution plans -- the (s, p, l, K) tuples of the paper's Table 2
/// -- plus batch layout arithmetic and the RunResult every proposal returns.

#include <cstdint>
#include <string>

#include "mgs/obs/metrics.hpp"
#include "mgs/sim/fault.hpp"
#include "mgs/sim/timeline.hpp"
#include "mgs/simt/types.hpp"
#include "mgs/util/check.hpp"
#include "mgs/util/math.hpp"

namespace mgs::core {

/// Per-kernel tuning parameters (values, not exponents; all powers of two).
/// For stages 1 and 3: ly == 1 and every thread of a block works on one
/// chunk. For stage 2: lx is one warp and ly packs several problems per
/// block, exactly as Section 3.1 prescribes.
struct StagePlan {
  int p = 8;    ///< P: elements per thread per iteration
  int lx = 128; ///< L_x: threads per block on the same problem
  int ly = 1;   ///< L_y: problems per block
  int k = 1;    ///< K: cascade iterations per block

  int threads() const { return lx * ly; }
  int warps() const {
    return static_cast<int>(util::div_up(
        static_cast<std::uint64_t>(threads()), simt::kWarpSize));
  }
  /// Elements one block covers per cascade iteration.
  std::int64_t tile() const { return static_cast<std::int64_t>(p) * lx; }
  /// Chunk size: K * Lx * P (Section 3.1).
  std::int64_t chunk() const { return static_cast<std::int64_t>(k) * tile(); }

  /// Declared register usage. Model (documented in DESIGN.md): each of the
  /// P register-resident elements costs ~6 registers of live state across
  /// the scan (value + scanned value + address math), plus a fixed 16 for
  /// indices and loop bookkeeping. Yields exactly the paper's choice:
  /// p = 3 (P = 8) is the largest P with <= 64 registers on cc 3.7.
  int regs_per_thread() const { return 6 * p + 16; }

  /// Shared memory: one element per warp (shuffle-based warp scans need
  /// shared memory only for inter-warp partials; s <= 5 per Section 3.1).
  std::int64_t smem_bytes(int elem_bytes) const {
    return static_cast<std::int64_t>(warps()) * elem_bytes;
  }

  // Exponent views (the paper names parameters by their log2).
  int p_log2() const { return util::ilog2(static_cast<std::uint64_t>(p)); }
  int l_log2() const {
    return util::ilog2(static_cast<std::uint64_t>(threads()));
  }
  int s_log2() const {
    return util::ilog2(util::ceil_pow2(static_cast<std::uint64_t>(warps())));
  }

  /// Throws util::Error unless all fields are positive powers of two and
  /// lx is warp-aligned.
  void validate() const;
};

/// Stream-pipeline shape for the multi-GPU paths. When overlap is on, the
/// executors replace the bulk-synchronous barriers between Stage 1, the aux
/// gather, Stage 2, the prefix scatter and Stage 3 with per-device
/// event-driven dependencies, and split the batch dimension G into `waves`
/// pipelined sub-batches so communication of wave v overlaps compute of
/// wave v+1 (Premise-3-style cost-model pick in core::pick_wave_count).
/// Default-constructed plans keep overlap off: legacy call sites are
/// bit-identical in both results and modeled times.
struct PipelinePlan {
  bool overlap = false;  ///< event-driven pipeline instead of barriers
  int waves = 1;         ///< batch-dimension sub-batches (>= 1)
};

/// Full plan for the three-kernel pipeline. Stages 1 and 3 share a plan
/// (B_x^1 = B_x^3, same SM resources -- Section 3.1); stage 2 has its own.
struct ScanPlan {
  StagePlan s13;
  StagePlan s2;
  PipelinePlan pipe;

  void validate() const;
  std::string describe() const;
};

/// User-facing override for the pipeline choice, carried by executor
/// factories: kAuto defers to the planner (overlap on for multi-GPU plans,
/// cost-model wave count), kSync forces the legacy bulk-synchronous path,
/// kOverlap forces the pipeline on.
enum class PipelineMode {
  kAuto,
  kSync,
  kOverlap,
};

struct PipelineChoice {
  PipelineMode mode = PipelineMode::kAuto;
  int waves = 0;  ///< 0 = planner-chosen; > 0 overrides the wave count
};

/// Apply a user override on top of a planned ScanPlan.
ScanPlan apply_pipeline_choice(ScanPlan plan, const PipelineChoice& choice);

/// Geometry of one batch on one GPU: G problem portions of n_local
/// elements, each split into bx chunks.
struct BatchLayout {
  std::int64_t n_local = 0;  ///< elements per problem portion on this GPU
  std::int64_t g = 0;        ///< number of problems (B_y^1)
  std::int64_t chunk = 0;    ///< chunk size in elements
  std::int64_t bx = 0;       ///< chunks per portion (B_x^1)

  std::int64_t elems_per_gpu() const { return n_local * g; }
  std::int64_t aux_elems() const { return bx * g; }
};

/// Compute the layout; bx = ceil(n_local / chunk) so non-power-of-two
/// problem sizes produce a final partial chunk rather than an error.
BatchLayout make_layout(std::int64_t n_local, std::int64_t g,
                        const StagePlan& s13);

/// Result of one simulated proposal run.
struct RunResult {
  double seconds = 0.0;          ///< simulated makespan of the whole scan
  std::uint64_t payload_bytes = 0;  ///< bytes read + written of problem data
  sim::Breakdown breakdown;      ///< per-phase accounting (Figure 14)
  sim::FaultReport faults;       ///< resilience costs; empty when healthy
  /// Metrics recorded during this run when an obs::TraceSession was
  /// installed (empty otherwise): transfer/kernel/plan-cache counters.
  obs::MetricsSnapshot metrics;

  /// Effective throughput: problem bytes moved per second of simulated
  /// time (N*G elements read and written once). Throws util::Error on a
  /// zero-time run so harnesses can report the bad configuration instead
  /// of aborting.
  double throughput_bps() const {
    MGS_REQUIRE(seconds > 0.0, "throughput of zero-time run");
    return static_cast<double>(payload_bytes) / seconds;
  }
  double throughput_gbps() const { return throughput_bps() / 1e9; }
};

}  // namespace mgs::core
