#pragma once
/// \file dtype.hpp
/// The type-erasure boundary of the executor stack. The kernels and
/// skeletons are templates over (T, Op); the production surface
/// (ScanContext, ScanExecutor, plan cache, planner, benches) is erased
/// over a small closed matrix of element types (DType) and operators
/// (OpTag). Erasure happens exactly once, at executor construction /
/// prepare(): a dispatch table maps (DType, OpTag) to the fully templated
/// executor instantiation, after which the hot path runs the same
/// monomorphic kernels as a hand-instantiated call -- no per-element or
/// per-call virtual dispatch on the data type.
///
/// TypedSpan / ConstTypedSpan are the erased data carriers: a pointer +
/// DType + element count. The typed std::span convenience overloads on
/// ScanExecutor wrap and unwrap them, so callers that know their type
/// statically never spell the erasure out.

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "mgs/core/op.hpp"
#include "mgs/util/check.hpp"

namespace mgs::core {

/// Element types the erased executor surface supports. Order is the
/// dispatch-table row order; keep kNumDTypes in sync.
enum class DType : std::uint8_t {
  kI32 = 0,
  kI64 = 1,
  kU32 = 2,
  kF32 = 3,
  kF64 = 4,
};

inline constexpr int kNumDTypes = 5;

/// Operators the erased surface supports (op.hpp's Plus/Max/Min). Order
/// is the dispatch-table column order; keep kNumOpTags in sync.
enum class OpTag : std::uint8_t {
  kPlus = 0,
  kMax = 1,
  kMin = 2,
};

inline constexpr int kNumOpTags = 3;

constexpr int dtype_bytes(DType d) {
  switch (d) {
    case DType::kI32:
    case DType::kU32:
    case DType::kF32:
      return 4;
    case DType::kI64:
    case DType::kF64:
      return 8;
  }
  return 0;  // unreachable; keeps -Wswitch quiet without a default case
}

constexpr const char* to_string(DType d) {
  switch (d) {
    case DType::kI32: return "i32";
    case DType::kI64: return "i64";
    case DType::kU32: return "u32";
    case DType::kF32: return "f32";
    case DType::kF64: return "f64";
  }
  return "?";
}

constexpr const char* to_string(OpTag o) {
  switch (o) {
    case OpTag::kPlus: return "plus";
    case OpTag::kMax: return "max";
    case OpTag::kMin: return "min";
  }
  return "?";
}

/// Parse the to_string spelling ("i32", "f64", ...); throws util::Error
/// on anything else (bench flags fail loudly on typos).
DType parse_dtype(const std::string& s);
OpTag parse_op(const std::string& s);

/// C++ type -> DType. Primary template is empty: types outside the matrix
/// (e.g. SegPair<T> on the internal segmented path) have no erased
/// carrier and can only be driven through the typed executor interface.
template <typename T>
struct DTypeOf {
  static constexpr std::optional<DType> value = std::nullopt;
};
template <>
struct DTypeOf<std::int32_t> {
  static constexpr std::optional<DType> value = DType::kI32;
};
template <>
struct DTypeOf<std::int64_t> {
  static constexpr std::optional<DType> value = DType::kI64;
};
template <>
struct DTypeOf<std::uint32_t> {
  static constexpr std::optional<DType> value = DType::kU32;
};
template <>
struct DTypeOf<float> {
  static constexpr std::optional<DType> value = DType::kF32;
};
template <>
struct DTypeOf<double> {
  static constexpr std::optional<DType> value = DType::kF64;
};

template <typename T>
inline constexpr std::optional<DType> dtype_of_v = DTypeOf<T>::value;

/// Operator functor -> OpTag. Primary template is empty: custom operators
/// have no erased carrier (kernel-level calls remain fully generic).
template <typename Op>
struct OpTagOf {
  static constexpr std::optional<OpTag> value = std::nullopt;
};
template <typename T>
struct OpTagOf<Plus<T>> {
  static constexpr std::optional<OpTag> value = OpTag::kPlus;
};
template <typename T>
struct OpTagOf<Max<T>> {
  static constexpr std::optional<OpTag> value = OpTag::kMax;
};
template <typename T>
struct OpTagOf<Min<T>> {
  static constexpr std::optional<OpTag> value = OpTag::kMin;
};

template <typename Op>
inline constexpr std::optional<OpTag> op_tag_of_v = OpTagOf<Op>::value;

/// Plan-cache identity of an element type: the scalar DType plus whether
/// the element is a flag-carrying pair (segmented scan packs value+flag,
/// doubling the element bytes the plan must budget for). The primary
/// template covers the scalar matrix; segmented.hpp specializes it for
/// SegPair<T>. Types outside both fail to compile, which is the intended
/// boundary: exotic element types use the free functions, not the
/// context/executor surface.
template <typename T>
struct PlanTypeOf {
  static_assert(dtype_of_v<T>.has_value(),
                "PlanTypeOf: element type outside the DType matrix (and not "
                "a SegPair); the ScanContext path cannot key a plan for it");
  static constexpr DType dtype = *dtype_of_v<T>;
  static constexpr bool segmented = false;
};

/// Mutable erased host range: pointer + dtype + element count.
struct TypedSpan {
  void* data = nullptr;
  DType dtype = DType::kI32;
  std::int64_t count = 0;

  template <typename T>
  static TypedSpan of(std::span<T> s) {
    static_assert(dtype_of_v<T>.has_value(),
                  "TypedSpan: type outside the DType matrix");
    return TypedSpan{s.data(), *dtype_of_v<T>,
                     static_cast<std::int64_t>(s.size())};
  }

  /// Recover the typed view; throws util::Error on a dtype mismatch so a
  /// wrongly-routed buffer can never be reinterpreted silently.
  template <typename T>
  std::span<T> as() const {
    static_assert(dtype_of_v<T>.has_value(),
                  "TypedSpan: type outside the DType matrix");
    MGS_REQUIRE(dtype == *dtype_of_v<T>,
                std::string("TypedSpan: dtype mismatch (span holds ") +
                    to_string(dtype) + ", caller wants " +
                    to_string(*dtype_of_v<T>) + ")");
    return std::span<T>(static_cast<T*>(data),
                        static_cast<std::size_t>(count));
  }
};

/// Read-only erased host range.
struct ConstTypedSpan {
  const void* data = nullptr;
  DType dtype = DType::kI32;
  std::int64_t count = 0;

  template <typename T>
  static ConstTypedSpan of(std::span<const T> s) {
    static_assert(dtype_of_v<T>.has_value(),
                  "ConstTypedSpan: type outside the DType matrix");
    return ConstTypedSpan{s.data(), *dtype_of_v<T>,
                          static_cast<std::int64_t>(s.size())};
  }

  template <typename T>
  std::span<const T> as() const {
    static_assert(dtype_of_v<T>.has_value(),
                  "ConstTypedSpan: type outside the DType matrix");
    MGS_REQUIRE(dtype == *dtype_of_v<T>,
                std::string("ConstTypedSpan: dtype mismatch (span holds ") +
                    to_string(dtype) + ", caller wants " +
                    to_string(*dtype_of_v<T>) + ")");
    return std::span<const T>(static_cast<const T*>(data),
                              static_cast<std::size_t>(count));
  }
};

}  // namespace mgs::core
