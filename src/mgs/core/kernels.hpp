#pragma once
/// \file kernels.hpp
/// The three kernels of the large-size scan (Section 3.1, Figure 3):
///
///   Stage 1  Chunk Reduce       -- one block per chunk, reduction into the
///                                  auxiliary array (one element per chunk);
///   Stage 2  Intermediate Scan  -- exclusive scan of each problem's chunk
///                                  totals, several problems per block;
///   Stage 3  Scan + Addition    -- local chunk scan with the auxiliary
///                                  element folded into every output.
///
/// Grids are two-dimensional: x indexes chunks within a problem (B_x),
/// y indexes the batch (B_y = G). Launchers return the simulated timing.

#include <algorithm>

#include "mgs/core/skeleton.hpp"

namespace mgs::core {

/// Stage 1. `in` holds G portions of lay.n_local contiguous elements
/// (problem g at offset g*n_local); `aux` receives the chunk reductions,
/// problem-major (aux[g*bx + c]). `g_begin`/`g_count` restrict the launch
/// to a slice of the batch dimension (a pipeline wave); indexing into `in`
/// and `aux` stays absolute, so slices compose to exactly the full launch.
template <typename T, typename Op>
sim::KernelTime launch_chunk_reduce(simt::Device& dev,
                                    const simt::DeviceBuffer<T>& in,
                                    simt::DeviceBuffer<T>& aux,
                                    const BatchLayout& lay,
                                    const StagePlan& sp, Op op,
                                    std::int64_t g_begin = 0,
                                    std::int64_t g_count = -1) {
  if (g_count < 0) g_count = lay.g - g_begin;
  MGS_CHECK(g_begin >= 0 && g_count >= 0 && g_begin + g_count <= lay.g,
            "chunk_reduce: batch slice out of range");
  MGS_CHECK(in.size() >= lay.elems_per_gpu(), "chunk_reduce: input too small");
  MGS_CHECK(aux.size() >= lay.aux_elems(), "chunk_reduce: aux too small");
  if (g_count == 0) return {};
  simt::LaunchConfig cfg;
  cfg.name = "chunk_reduce";
  cfg.grid = {static_cast<int>(lay.bx), static_cast<int>(g_count), 1};
  cfg.block = {sp.lx, sp.ly, 1};
  cfg.regs_per_thread = sp.regs_per_thread();
  cfg.smem_per_block = sp.smem_bytes(sizeof(T));
  const auto inv = in.view();
  const auto auxv = aux.view();
  return simt::launch(dev, cfg, [=](simt::BlockCtx& ctx) {
    const std::int64_t c = ctx.block_idx().x;
    const std::int64_t g = g_begin + ctx.block_idx().y;
    const std::int64_t chunk_off = c * lay.chunk;
    const std::int64_t len =
        std::min<std::int64_t>(lay.chunk, lay.n_local - chunk_off);
    const T total =
        cascade_reduce(ctx, inv, g * lay.n_local + chunk_off, len, sp, op);
    auxv.store(g * lay.bx + c, total, ctx.stats());
  });
}

/// Stage 2, contiguous layout: `aux` holds `g` rows of `row_len` chunk
/// totals (row r at offset r*row_len); each row is exclusively scanned in
/// place. Several problems share a block (L_y^2 = s2.ly, B_x^2 = 1).
template <typename T, typename Op>
sim::KernelTime launch_intermediate_scan(simt::Device& dev,
                                         simt::DeviceBuffer<T>& aux,
                                         std::int64_t row_len, std::int64_t g,
                                         const StagePlan& s2, Op op) {
  MGS_CHECK(aux.size() >= row_len * g, "intermediate_scan: aux too small");
  simt::LaunchConfig cfg;
  cfg.name = "intermediate_scan";
  cfg.grid = {1, static_cast<int>(util::div_up(
                     static_cast<std::uint64_t>(g),
                     static_cast<std::uint64_t>(s2.ly))),
              1};
  cfg.block = {s2.lx, s2.ly, 1};
  cfg.regs_per_thread = s2.regs_per_thread();
  cfg.smem_per_block = s2.smem_bytes(sizeof(T));
  const auto auxv = aux.view();
  return simt::launch(dev, cfg, [=](simt::BlockCtx& ctx) {
    for (int r = 0; r < s2.ly; ++r) {
      const std::int64_t row =
          static_cast<std::int64_t>(ctx.block_idx().y) * s2.ly + r;
      if (row >= g) break;
      const std::int64_t row_base = row * row_len;
      warp_row_scan_exclusive<T>(
          ctx, row_len,
          [&](std::int64_t i0, int n) {
            return auxv.load_warp_partial(row_base + i0, n, Op::identity(),
                                          ctx.stats());
          },
          [&](std::int64_t i0, int n, const simt::WarpReg<T>& v) {
            auxv.store_warp_partial(row_base + i0, n, v, ctx.stats());
          },
          op);
    }
  });
}

/// Stage 2 slice for the wave-pipelined path, contiguous layout: rows
/// [g_begin, g_begin+g_count) of `aux`, columns [c_begin, c_begin+c_count)
/// of each row, exclusively scanned in place with a per-row running carry
/// kept in `carry` (>= g_begin+g_count elements). Column chunk 0 seeds the
/// carry from the identity; later chunks seed from (and update) the carry
/// the previous chunk of the same row wrote, so processing every chunk of a
/// row in ascending column order reproduces launch_intermediate_scan's
/// output bit-for-bit. Issue chunks of one row in column order on a single
/// in-order stream; distinct rows are independent.
template <typename T, typename Op>
sim::KernelTime launch_intermediate_scan_slice(
    simt::Device& dev, simt::DeviceBuffer<T>& aux, std::int64_t row_len,
    std::int64_t g_begin, std::int64_t g_count, std::int64_t c_begin,
    std::int64_t c_count, simt::DeviceBuffer<T>& carry, const StagePlan& s2,
    Op op) {
  MGS_CHECK(g_begin >= 0 && g_count >= 0, "intermediate_scan_slice: bad rows");
  MGS_CHECK(c_begin >= 0 && c_count >= 0 && c_begin + c_count <= row_len,
            "intermediate_scan_slice: bad columns");
  MGS_CHECK(aux.size() >= (g_begin + g_count) * row_len,
            "intermediate_scan_slice: aux too small");
  MGS_CHECK(carry.size() >= g_begin + g_count,
            "intermediate_scan_slice: carry too small");
  if (g_count == 0 || c_count == 0) return {};
  simt::LaunchConfig cfg;
  cfg.name = "intermediate_scan";
  cfg.grid = {1, static_cast<int>(util::div_up(
                     static_cast<std::uint64_t>(g_count),
                     static_cast<std::uint64_t>(s2.ly))),
              1};
  cfg.block = {s2.lx, s2.ly, 1};
  cfg.regs_per_thread = s2.regs_per_thread();
  cfg.smem_per_block = s2.smem_bytes(sizeof(T));
  const auto auxv = aux.view();
  const auto carryv = carry.view();
  return simt::launch(dev, cfg, [=](simt::BlockCtx& ctx) {
    for (int r = 0; r < s2.ly; ++r) {
      const std::int64_t local_row =
          static_cast<std::int64_t>(ctx.block_idx().y) * s2.ly + r;
      if (local_row >= g_count) break;
      const std::int64_t row = g_begin + local_row;
      const std::int64_t base = row * row_len + c_begin;
      const T carry_in =
          (c_begin == 0) ? Op::identity() : carryv.load(row, ctx.stats());
      const T total = warp_row_scan_exclusive_carry<T>(
          ctx, c_count,
          [&](std::int64_t i0, int n) {
            return auxv.load_warp_partial(base + i0, n, Op::identity(),
                                          ctx.stats());
          },
          [&](std::int64_t i0, int n, const simt::WarpReg<T>& v) {
            auxv.store_warp_partial(base + i0, n, v, ctx.stats());
          },
          op, carry_in);
      carryv.store(row, op(carry_in, total), ctx.stats());
    }
  });
}

/// Stage 2, strided layout (MPI_Gather output, rank-major): element i of
/// problem row `row` lives at offset (i / bx)*(g*bx) + row*bx + (i % bx).
/// Scalar (uncoalesced) accesses -- the honest price of the MPI layout.
template <typename T, typename Op>
sim::KernelTime launch_intermediate_scan_ranked(
    simt::Device& dev, simt::DeviceBuffer<T>& aux, std::int64_t bx,
    std::int64_t ranks, std::int64_t g, const StagePlan& s2, Op op) {
  MGS_CHECK(aux.size() >= ranks * g * bx,
            "intermediate_scan_ranked: aux too small");
  simt::LaunchConfig cfg;
  cfg.name = "intermediate_scan_ranked";
  cfg.grid = {1, static_cast<int>(util::div_up(
                     static_cast<std::uint64_t>(g),
                     static_cast<std::uint64_t>(s2.ly))),
              1};
  cfg.block = {s2.lx, s2.ly, 1};
  cfg.regs_per_thread = s2.regs_per_thread();
  cfg.smem_per_block = s2.smem_bytes(sizeof(T));
  const auto auxv = aux.view();
  const std::int64_t row_len = ranks * bx;
  return simt::launch(dev, cfg, [=](simt::BlockCtx& ctx) {
    for (int r = 0; r < s2.ly; ++r) {
      const std::int64_t row =
          static_cast<std::int64_t>(ctx.block_idx().y) * s2.ly + r;
      if (row >= g) break;
      const auto offset_of = [&](std::int64_t i) {
        return (i / bx) * (g * bx) + row * bx + (i % bx);
      };
      warp_row_scan_exclusive<T>(
          ctx, row_len,
          [&](std::int64_t i0, int n) {
            simt::WarpReg<T> v;
            for (int l = 0; l < simt::kWarpSize; ++l) {
              v[l] = (l < n) ? auxv.load(offset_of(i0 + l), ctx.stats())
                             : Op::identity();
            }
            return v;
          },
          [&](std::int64_t i0, int n, const simt::WarpReg<T>& v) {
            for (int l = 0; l < n; ++l) {
              auxv.store(offset_of(i0 + l), v[l], ctx.stats());
            }
          },
          op);
    }
  });
}

/// Ranked-layout counterpart of launch_intermediate_scan_slice: element
/// indices [c_begin, c_begin+c_count) of rows [g_begin, g_begin+g_count),
/// addressed through the rank-major permutation. The wave-pipelined
/// multinode Stage 2 uses one column chunk per rank (c_begin = rank*bx,
/// c_count = bx), issued in ascending rank order per row.
template <typename T, typename Op>
sim::KernelTime launch_intermediate_scan_ranked_slice(
    simt::Device& dev, simt::DeviceBuffer<T>& aux, std::int64_t bx,
    std::int64_t ranks, std::int64_t g, std::int64_t g_begin,
    std::int64_t g_count, std::int64_t c_begin, std::int64_t c_count,
    simt::DeviceBuffer<T>& carry, const StagePlan& s2, Op op) {
  const std::int64_t row_len = ranks * bx;
  MGS_CHECK(g_begin >= 0 && g_count >= 0 && g_begin + g_count <= g,
            "intermediate_scan_ranked_slice: bad rows");
  MGS_CHECK(c_begin >= 0 && c_count >= 0 && c_begin + c_count <= row_len,
            "intermediate_scan_ranked_slice: bad columns");
  MGS_CHECK(aux.size() >= ranks * g * bx,
            "intermediate_scan_ranked_slice: aux too small");
  MGS_CHECK(carry.size() >= g_begin + g_count,
            "intermediate_scan_ranked_slice: carry too small");
  if (g_count == 0 || c_count == 0) return {};
  simt::LaunchConfig cfg;
  cfg.name = "intermediate_scan_ranked";
  cfg.grid = {1, static_cast<int>(util::div_up(
                     static_cast<std::uint64_t>(g_count),
                     static_cast<std::uint64_t>(s2.ly))),
              1};
  cfg.block = {s2.lx, s2.ly, 1};
  cfg.regs_per_thread = s2.regs_per_thread();
  cfg.smem_per_block = s2.smem_bytes(sizeof(T));
  const auto auxv = aux.view();
  const auto carryv = carry.view();
  return simt::launch(dev, cfg, [=](simt::BlockCtx& ctx) {
    for (int r = 0; r < s2.ly; ++r) {
      const std::int64_t local_row =
          static_cast<std::int64_t>(ctx.block_idx().y) * s2.ly + r;
      if (local_row >= g_count) break;
      const std::int64_t row = g_begin + local_row;
      const auto offset_of = [&](std::int64_t i) {
        return (i / bx) * (g * bx) + row * bx + (i % bx);
      };
      const T carry_in =
          (c_begin == 0) ? Op::identity() : carryv.load(row, ctx.stats());
      const T total = warp_row_scan_exclusive_carry<T>(
          ctx, c_count,
          [&](std::int64_t i0, int n) {
            simt::WarpReg<T> v;
            for (int l = 0; l < simt::kWarpSize; ++l) {
              v[l] = (l < n)
                         ? auxv.load(offset_of(c_begin + i0 + l), ctx.stats())
                         : Op::identity();
            }
            return v;
          },
          [&](std::int64_t i0, int n, const simt::WarpReg<T>& v) {
            for (int l = 0; l < n; ++l) {
              auxv.store(offset_of(c_begin + i0 + l), v[l], ctx.stats());
            }
          },
          op, carry_in);
      carryv.store(row, op(carry_in, total), ctx.stats());
    }
  });
}

/// Stage 3. `aux` holds the *exclusively scanned* chunk totals for this
/// GPU's chunks, problem-major like Stage 1 wrote them. `in` and `out` may
/// alias (in-place scan).
template <typename T, typename Op>
sim::KernelTime launch_scan_add(simt::Device& dev,
                                const simt::DeviceBuffer<T>& in,
                                simt::DeviceBuffer<T>& out,
                                const simt::DeviceBuffer<T>& aux,
                                const BatchLayout& lay, const StagePlan& sp,
                                ScanKind kind, Op op,
                                std::int64_t g_begin = 0,
                                std::int64_t g_count = -1) {
  if (g_count < 0) g_count = lay.g - g_begin;
  MGS_CHECK(g_begin >= 0 && g_count >= 0 && g_begin + g_count <= lay.g,
            "scan_add: batch slice out of range");
  MGS_CHECK(in.size() >= lay.elems_per_gpu(), "scan_add: input too small");
  MGS_CHECK(out.size() >= lay.elems_per_gpu(), "scan_add: output too small");
  MGS_CHECK(aux.size() >= lay.aux_elems(), "scan_add: aux too small");
  if (g_count == 0) return {};
  simt::LaunchConfig cfg;
  cfg.name = "scan_add";
  cfg.grid = {static_cast<int>(lay.bx), static_cast<int>(g_count), 1};
  cfg.block = {sp.lx, sp.ly, 1};
  cfg.regs_per_thread = sp.regs_per_thread();
  cfg.smem_per_block = sp.smem_bytes(sizeof(T));
  const auto inv = in.view();
  const auto outv = out.view();
  const auto auxv = aux.view();
  return simt::launch(dev, cfg, [=](simt::BlockCtx& ctx) {
    const std::int64_t c = ctx.block_idx().x;
    const std::int64_t g = g_begin + ctx.block_idx().y;
    const std::int64_t chunk_off = c * lay.chunk;
    const std::int64_t len =
        std::min<std::int64_t>(lay.chunk, lay.n_local - chunk_off);
    const T carry_in = auxv.load(g * lay.bx + c, ctx.stats());
    auto smem = ctx.shared<T>(sp.warps());
    cascade_scan(ctx, inv, outv, g * lay.n_local + chunk_off, len, sp,
                 carry_in, kind, op, smem);
  });
}

/// Single-kernel path for problems that fit in one chunk (B_x = 1): a
/// direct cascade scan with identity carry, skipping stages 1-2 entirely.
template <typename T, typename Op>
sim::KernelTime launch_direct_scan(simt::Device& dev,
                                   const simt::DeviceBuffer<T>& in,
                                   simt::DeviceBuffer<T>& out,
                                   const BatchLayout& lay, const StagePlan& sp,
                                   ScanKind kind, Op op) {
  MGS_CHECK(lay.bx == 1, "direct_scan requires a single chunk per problem");
  simt::LaunchConfig cfg;
  cfg.name = "direct_scan";
  cfg.grid = {1, static_cast<int>(lay.g), 1};
  cfg.block = {sp.lx, sp.ly, 1};
  cfg.regs_per_thread = sp.regs_per_thread();
  cfg.smem_per_block = sp.smem_bytes(sizeof(T));
  const auto inv = in.view();
  const auto outv = out.view();
  return simt::launch(dev, cfg, [=](simt::BlockCtx& ctx) {
    const std::int64_t g = ctx.block_idx().y;
    auto smem = ctx.shared<T>(sp.warps());
    cascade_scan(ctx, inv, outv, g * lay.n_local, lay.n_local, sp,
                 Op::identity(), kind, op, smem);
  });
}

}  // namespace mgs::core
