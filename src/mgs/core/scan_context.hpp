#pragma once
/// \file scan_context.hpp
/// Amortization layer for repeated scan traffic. A ScanContext owns
/// everything a production caller wants set up once and reused per call:
///
///  * a memoized plan cache keyed by (DeviceSpec, N, G, element size,
///    GPUs-per-problem), backed by the existing Autotuner for the
///    single-GPU space and by the Premise-3/4 K maximization for
///    multi-GPU shapes (Section 4.2);
///  * a per-device WorkspacePool that reuses auxiliary/staging buffers
///    across invocations instead of `dev.alloc` per call.
///
/// The concrete ScanExecutors (executor.hpp) draw both from the context;
/// the context also bridges Premise 4: `executor_for` runs the planner
/// and returns the proposal it selects, ready to prepare() and run().

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mgs/core/autotuner.hpp"
#include "mgs/core/dtype.hpp"
#include "mgs/core/planner.hpp"
#include "mgs/core/workspace.hpp"
#include "mgs/topo/topology.hpp"

namespace mgs::core {

class ScanExecutor;

/// Plan-cache key. The device enters via its spec name (clusters are
/// homogeneous; one Autotuner per context serves every device). The
/// element size is derived from (dtype, segmented) -- there is no
/// hand-passed byte count anymore, so a mismatched size can never be
/// cached. The operator participates in the key so per-op statistics and
/// future op-specific tuning stay separable, even though today's plans
/// depend only on the element bytes.
struct PlanKey {
  std::string device;            ///< DeviceSpec::name
  std::int64_t n = 0;            ///< elements per problem (full problem)
  std::int64_t g = 1;            ///< problems in the batch
  DType dtype = DType::kI32;     ///< element type
  OpTag op = OpTag::kPlus;       ///< scan operator
  bool segmented = false;        ///< SegPair elements (value+flag, 2x bytes)
  int gpus_per_problem = 1;      ///< 1: Scan-SP space; >1: Eq. 2/3 bound

  /// Bytes per element the plan must budget for (doubled for the packed
  /// segmented representation).
  int elem_bytes() const { return dtype_bytes(dtype) * (segmented ? 2 : 1); }

  friend auto operator<=>(const PlanKey&, const PlanKey&) = default;
};

class ScanContext {
 public:
  /// The context borrows the cluster; it must outlive the context and
  /// every executor created from it.
  explicit ScanContext(topo::Cluster& cluster);

  topo::Cluster& cluster() { return *cluster_; }
  const topo::Cluster& cluster() const { return *cluster_; }
  WorkspacePool& workspace() { return pool_; }
  Autotuner& tuner() { return tuner_; }

  /// Memoized plan lookup. First call for a key derives the plan (an
  /// autotuner search for single-GPU shapes, the premise-derived
  /// K-maximizing plan for multi-GPU shapes); later calls are cache hits
  /// and never re-run the search.
  const ScanPlan& plan_for(const PlanKey& key);
  const ScanPlan& plan_for(std::int64_t n, std::int64_t g,
                           DType dtype = DType::kI32,
                           OpTag op = OpTag::kPlus, int gpus_per_problem = 1,
                           bool segmented = false);

  std::size_t plan_cache_size() const { return plans_.size(); }
  std::uint64_t plan_cache_hits() const { return hits_; }
  std::uint64_t plan_cache_misses() const { return misses_; }
  /// Entries retired by invalidate_plans over this context's lifetime
  /// (storage kept alive for stale references; see invalidate_plans).
  std::size_t plan_cache_retired() const { return retired_plans_.size(); }

  /// Drop cached plans that assume more cooperating GPUs than are still
  /// usable (called by executors when device liveness shrinks a
  /// placement). Returns the number of entries removed from the lookup.
  /// Removed entries are retired, not destroyed: their storage (and hence
  /// any `const ScanPlan&` an executor still holds from an earlier
  /// prepare) stays valid until the context is destroyed; executors
  /// re-fetch on their next prepare via the liveness epoch.
  std::size_t invalidate_plans(int max_gpus_per_problem);

  /// The cluster injector's liveness epoch (0 when no injector is
  /// attached). Executors cache this at prepare() and re-place when it
  /// moves.
  std::uint64_t fault_epoch() const;

  /// Premise 4 (Section 4.2) through the unified API: run the planner on
  /// the problem shape and return the proposal's executor, configured
  /// with the (M, W, V, Y) the planner chose.
  std::unique_ptr<ScanExecutor> executor_for(const PlannerInput& input);

 private:
  topo::Cluster* cluster_;
  Autotuner tuner_;
  WorkspacePool pool_;
  std::map<PlanKey, ScanPlan> plans_;
  /// Invalidated entries, kept alive (extracted node handles preserve the
  /// element address) so stale plan references never dangle.
  std::vector<std::map<PlanKey, ScanPlan>::node_type> retired_plans_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mgs::core
