#pragma once
/// \file easy.hpp
/// One-call convenience API: scan a host range on a freshly simulated
/// GPU with premise-derived parameters. Intended for downstream users
/// who want the primitive, not the machinery; the proposals in
/// scan_sp.hpp / scan_mps.hpp / scan_mppc.hpp expose full control.

#include <span>
#include <vector>

#include "mgs/core/scan_sp.hpp"
#include "mgs/core/tuning.hpp"

namespace mgs::core {

/// Result of the convenience scan: output data + the simulated run info.
template <typename T>
struct EasyScanResult {
  std::vector<T> output;
  RunResult run;
};

/// Scan `input` (a batch of `g` problems of input.size()/g contiguous
/// elements) on one simulated GPU of the given spec. Parameters come
/// from the premises; K defaults to 4 (a mid-space value; use the
/// Autotuner for the empirically best K).
template <typename T, typename Op = Plus<T>>
EasyScanResult<T> scan(std::span<const T> input,
                       ScanKind kind = ScanKind::kInclusive,
                       std::int64_t g = 1, Op op = {},
                       const sim::DeviceSpec& spec = sim::k80_spec()) {
  MGS_REQUIRE(g > 0 && !input.empty() &&
                  static_cast<std::int64_t>(input.size()) % g == 0,
              "easy scan: input must split evenly into G problems");
  const std::int64_t n = static_cast<std::int64_t>(input.size()) / g;

  simt::Device dev(0, spec);
  auto in = dev.alloc<T>(static_cast<std::int64_t>(input.size()));
  auto out = dev.alloc<T>(static_cast<std::int64_t>(input.size()));
  std::copy(input.begin(), input.end(), in.host_span().begin());

  ScanPlan plan = derive_spl(spec, sizeof(T)).plan;
  plan.s13.k = 4;

  EasyScanResult<T> result;
  result.run = scan_sp<T, Op>(dev, in, out, n, g, plan, kind, op);
  result.output.assign(out.host_span().begin(), out.host_span().end());
  return result;
}

}  // namespace mgs::core
