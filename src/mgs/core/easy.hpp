#pragma once
/// \file easy.hpp
/// One-call convenience API: scan a host range on a simulated GPU with
/// automatically tuned parameters. Intended for downstream users who want
/// the primitive, not the machinery; the executors (executor.hpp) and the
/// proposals in scan_sp.hpp / scan_mps.hpp / scan_mppc.hpp expose full
/// control.

#include <algorithm>
#include <span>
#include <vector>

#include "mgs/core/scan_context.hpp"
#include "mgs/core/scan_sp.hpp"

namespace mgs::core {

/// Result of the convenience scan: output data + the simulated run info.
template <typename T>
struct EasyScanResult {
  std::vector<T> output;
  RunResult run;
};

/// Scan `input` (a batch of `g` problems of input.size()/g contiguous
/// elements) on device 0 of the context's cluster. The plan comes from
/// the context's memoized autotuner cache and the staging/auxiliary
/// buffers from its workspace pool, so repeated calls through one context
/// amortize both.
template <typename T, typename Op = Plus<T>>
EasyScanResult<T> scan(ScanContext& ctx, std::span<const T> input,
                       ScanKind kind = ScanKind::kInclusive,
                       std::int64_t g = 1, Op op = {}) {
  MGS_REQUIRE(g > 0 && !input.empty() &&
                  static_cast<std::int64_t>(input.size()) % g == 0,
              "easy scan: input must split evenly into G problems");
  const std::int64_t total = static_cast<std::int64_t>(input.size());
  const std::int64_t n = total / g;

  // PlanTypeOf is the erasure boundary: matrix types (and SegPair) key the
  // context's plan cache; anything else fails here at compile time and
  // must use the free scan_sp functions instead. A custom operator shares
  // the kPlus plan row -- plans depend on element bytes, not the operator.
  const ScanPlan& plan =
      ctx.plan_for(n, g, PlanTypeOf<T>::dtype,
                   op_tag_of_v<Op>.value_or(OpTag::kPlus),
                   /*gpus_per_problem=*/1, PlanTypeOf<T>::segmented);
  simt::Device& dev = ctx.cluster().device(0);
  auto in = acquire_workspace<T>(&ctx.workspace(), dev, total);
  auto out = acquire_workspace<T>(&ctx.workspace(), dev, total);
  std::copy(input.begin(), input.end(), in.host_span().begin());

  ctx.cluster().reset_clocks();
  EasyScanResult<T> result;
  result.run = scan_sp<T, Op>(dev, in.buffer(), out.buffer(), n, g, plan,
                              kind, op, &ctx.workspace());
  const auto produced = out.host_span();
  result.output.assign(produced.begin(),
                       produced.begin() + static_cast<std::ptrdiff_t>(total));
  return result;
}

/// Context-free spelling: builds a throwaway single-GPU cluster + context
/// for the given spec. Convenient for one-shot calls; repeated traffic
/// should hold a ScanContext and use the overload above.
template <typename T, typename Op = Plus<T>>
EasyScanResult<T> scan(std::span<const T> input,
                       ScanKind kind = ScanKind::kInclusive,
                       std::int64_t g = 1, Op op = {},
                       const sim::DeviceSpec& spec = sim::k80_spec()) {
  topo::Cluster cluster = topo::single_gpu_cluster(spec);
  ScanContext ctx(cluster);
  return scan<T, Op>(ctx, input, kind, g, op);
}

}  // namespace mgs::core
