#include "mgs/core/planner.hpp"

#include <algorithm>
#include <sstream>

#include "mgs/util/check.hpp"
#include "mgs/util/math.hpp"

namespace mgs::core {

const char* to_string(Proposal p) {
  switch (p) {
    case Proposal::kSingleGpu:
      return "Scan-SP";
    case Proposal::kMps:
      return "Scan-MPS";
    case Proposal::kMppc:
      return "Scan-MP-PC";
    case Proposal::kMultiNode:
      return "Scan-MPS (multi-node)";
  }
  return "?";
}

namespace {

/// Usable device memory: leave 10% headroom for the auxiliary arrays and
/// allocator slack; a problem needs input + output resident.
std::int64_t usable_bytes(const sim::DeviceSpec& spec) {
  return spec.memory_bytes - spec.memory_bytes / 10;
}

}  // namespace

PlannerChoice choose_proposal(const topo::Cluster& cluster,
                              const PlannerInput& input) {
  MGS_REQUIRE(input.n > 0 && input.g > 0, "choose_proposal: bad problem shape");
  const auto& cfg = cluster.config();
  const std::int64_t mem = usable_bytes(cfg.gpu);
  const std::int64_t problem_bytes =
      2 * input.n * static_cast<std::int64_t>(dtype_bytes(input.dtype));
  const std::int64_t total_bytes = problem_bytes * input.g;

  // Floor: GPUs that must share one problem just to hold it.
  const int gpus_per_problem_floor = static_cast<int>(util::div_up(
      static_cast<std::uint64_t>(problem_bytes),
      static_cast<std::uint64_t>(mem)));
  // Floor: GPUs needed to hold the whole batch.
  const int gpus_total_floor = static_cast<int>(util::div_up(
      static_cast<std::uint64_t>(total_bytes), static_cast<std::uint64_t>(mem)));
  MGS_REQUIRE(gpus_total_floor <= cfg.total_gpus() &&
                  gpus_per_problem_floor <= cfg.total_gpus(),
              "choose_proposal: batch does not fit in the cluster");

  PlannerChoice choice;
  choice.dtype = input.dtype;
  choice.op = input.op;
  std::ostringstream why;

  if (gpus_per_problem_floor <= cfg.gpus_per_network) {
    // A problem fits within one PCIe network: P2P-only communication is
    // available, so maximize the GPUs used (Premise 4, first scenario).
    if (input.g == 1) {
      if (gpus_per_problem_floor == 1 &&
          problem_bytes <= mem / 8) {
        // Small single problem: GPU count cannot amortize the P2P latency.
        choice.proposal = Proposal::kSingleGpu;
        choice.m = choice.w = choice.v = choice.y = 1;
        why << "single small problem (" << problem_bytes
            << " bytes); communication latency would exceed the saved "
            << "kernel time, run Scan-SP on one GPU";
      } else {
        choice.proposal = Proposal::kMps;
        choice.v = cfg.gpus_per_network;
        choice.y = 1;
        choice.w = choice.v;
        choice.m = 1;
        why << "one large problem fits a single PCIe network: Scan-MPS over "
            << choice.w << " P2P-connected GPUs";
      }
    } else {
      choice.proposal = Proposal::kMppc;
      choice.v = std::max(gpus_per_problem_floor, 2);
      choice.v = static_cast<int>(util::ceil_pow2(
          static_cast<std::uint64_t>(choice.v)));
      choice.v = std::min(choice.v, cfg.gpus_per_network);
      choice.y = static_cast<int>(std::min<std::int64_t>(
          cfg.networks_per_node, input.g));
      choice.w = choice.v * choice.y;
      choice.m = static_cast<int>(std::min<std::int64_t>(
          cfg.nodes, std::max<std::int64_t>(
                         1, input.g / std::max(1, choice.y))));
      why << "batch of " << input.g << " problems, each fitting "
          << choice.v << " GPUs of one PCIe network: Scan-MP-PC with V="
          << choice.v << ", Y=" << choice.y << ", M=" << choice.m
          << " (all communication stays on P2P links)";
    }
  } else if (gpus_per_problem_floor <= cfg.gpus_per_node()) {
    // A problem spans PCIe networks of one node: Scan-MPS with host
    // staging; minimize nodes (MPI overhead) per Premise 4.
    choice.proposal = Proposal::kMps;
    choice.w = cfg.gpus_per_node();
    choice.v = cfg.gpus_per_network;
    choice.y = cfg.networks_per_node;
    choice.m = 1;
    why << "a problem needs " << gpus_per_problem_floor
        << " GPUs (more than one PCIe network): Scan-MPS over the node's "
        << choice.w << " GPUs, staging the auxiliary array through host "
        << "memory; node count minimized to avoid MPI overhead";
  } else {
    // A problem spans nodes: multi-node Scan-MPS over MPI/RDMA.
    choice.proposal = Proposal::kMultiNode;
    choice.m = static_cast<int>(util::div_up(
        static_cast<std::uint64_t>(gpus_per_problem_floor),
        static_cast<std::uint64_t>(cfg.gpus_per_node())));
    choice.m = std::min(choice.m, cfg.nodes);
    choice.w = cfg.gpus_per_node();
    choice.v = cfg.gpus_per_network;
    choice.y = cfg.networks_per_node;
    why << "a problem needs " << gpus_per_problem_floor
        << " GPUs (more than one node): multi-node Scan-MPS over M="
        << choice.m << " nodes x W=" << choice.w
        << " GPUs with MPI-RDMA collectives";
  }

  choice.rationale = why.str();
  return choice;
}

}  // namespace mgs::core
