#pragma once
/// \file executor_registry.hpp
/// Named access to the five proposal executors, mirroring
/// baselines::registry: harnesses iterate all_executors() to sweep every
/// proposal, or resolve one by name / by the planner's Premise-4 choice.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mgs/core/executor.hpp"
#include "mgs/core/planner.hpp"

namespace mgs::core {

/// Placement knobs; 0 means "derive from the cluster" (whole node, all
/// networks, hardware V, every node).
struct ExecutorParams {
  int device = 0;  ///< Scan-SP: which GPU
  int w = 0;       ///< MPS / multi-node: GPUs per node
  int y = 0;       ///< MP-PC: PCIe networks per node
  int v = 0;       ///< MP-PC: GPUs per network
  int m = 0;       ///< MP-PC / multi-node: nodes
  /// Multi-GPU proposals: pipeline override (kAuto keeps the planner's
  /// event-driven default; kSync forces the synchronous stage path).
  PipelineMode pipeline = PipelineMode::kAuto;
  int waves = 0;   ///< pipeline wave count; 0 = planner's cost-model pick
  /// Element type / operator the executor is instantiated for (the
  /// dispatch-table coordinates).
  DType dtype = DType::kI32;
  OpTag op = OpTag::kPlus;
};

struct ExecutorInfo {
  std::string name;     ///< registry key ("Scan-MPS", ...)
  std::string summary;  ///< one-line description for listings
  std::function<std::unique_ptr<ScanExecutor>(ScanContext&,
                                              const ExecutorParams&)>
      make;
};

/// The five proposals in the paper's presentation order.
const std::vector<ExecutorInfo>& all_executors();

/// Resolve by registry name; throws util::Error for unknown names.
std::unique_ptr<ScanExecutor> make_executor(const std::string& name,
                                            ScanContext& ctx,
                                            const ExecutorParams& params = {});

/// Build the executor for a planner decision (Premise 4), configured with
/// the (M, W, V, Y) the planner chose.
std::unique_ptr<ScanExecutor> make_executor(ScanContext& ctx,
                                            const PlannerChoice& choice);

}  // namespace mgs::core
