#pragma once
/// \file tuning.hpp
/// The paper's tuning strategy (Sections 3.2 and 4.2):
///
///  * Premise 1 -- balance SM block and warp parallelism: pick the block
///    shape where both the max-resident-blocks and 100% warp occupancy are
///    reached simultaneously (the bold row of Table 3);
///  * Premise 2 -- maximize per-thread work P within the register budget
///    that Premise 1 implies;
///  * Premise 3 -- Equation 1: the K search space trading Stage-2
///    occupancy against auxiliary-array traffic;
///  * Premise 4 -- Equations 2 and 3: chunk count must cover the
///    participating GPUs (M*W for Scan-MPS, V for Scan-MP-PC).
///
/// The optimal K is found empirically over the premise-trimmed space
/// (autotune_k), which the paper leaves as future work to automate.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mgs/core/plan.hpp"
#include "mgs/sim/device_spec.hpp"
#include "mgs/sim/occupancy.hpp"

namespace mgs::topo {
class Cluster;
}  // namespace mgs::topo

namespace mgs::core {

/// (s, p, l) choice plus the reasoning that produced it.
struct TuningChoice {
  ScanPlan plan;
  std::string rationale;
};

/// Premises 1 and 2: derive (s, p, l) for a device and element size.
/// For cc 3.7 and 4-byte elements this yields exactly the paper's values:
/// l = 7 (128 threads, 4 warps), p = 3 (P = 8, 64 registers), s <= 5.
/// K is left at 1; set it from the K search below.
TuningChoice derive_spl(const sim::DeviceSpec& spec, int elem_bytes);

/// Equation 1 upper bound for K^1: Stage 2's block count must reach the
/// architecture's max blocks per SM.
///   K^1 <= G*N / (max_blocks * P^1 * P^2 * L^1 * L^2)
std::int64_t k1_max_eq1(std::int64_t n, std::int64_t g, const ScanPlan& plan,
                        const sim::DeviceSpec& spec);

/// Equations 2/3 upper bound: each of the `gpus_per_problem` GPUs must
/// receive at least one chunk of the problem:
///   N / (K^1 * Lx^1 * P^1) >= gpus_per_problem
std::int64_t k1_max_gpus(std::int64_t n, const StagePlan& s13,
                         int gpus_per_problem);

/// The premise-trimmed search space: all powers of two in
/// [1, min(eq1, eq2/3)]. Never empty -- K = 1 is always admissible.
std::vector<int> k1_candidates(std::int64_t n, std::int64_t g,
                               const ScanPlan& plan,
                               const sim::DeviceSpec& spec,
                               int gpus_per_problem);

/// Outcome of the empirical K search.
struct AutotuneResult {
  int best_k = 1;
  double best_seconds = 0.0;
  std::vector<std::pair<int, double>> tried;  ///< (K, simulated seconds)
};

/// Run `measure(K)` (which must return simulated seconds for a full scan
/// with that K) for every candidate and keep the argmin. This is the
/// "all possible K values that meet Eq. 1 are tested" step of Section 3.2,
/// automated against the simulator.
AutotuneResult autotune_k(const std::vector<int>& candidates,
                          const std::function<double(int)>& measure);

/// Premise-3-style cost-model pick of the pipeline wave count for the
/// overlapped multi-GPU paths: splitting G into k waves makes the pipeline
/// roughly (C+X)/k + (k-1)*max(C,X)/k + (k-1)*alpha where C is the local
/// compute time, X the aux-communication time and alpha the per-wave fixed
/// cost (link latencies, per-row DMA overhead) -- more waves hide the
/// smaller of C and X behind the larger but pay alpha each round trip.
/// Returns the power-of-two argmin of that estimate, clamped to [1, g].
/// `elem_bytes` is the real element size of the workload (from the plan
/// key's dtype), entering both the compute and the transfer volume.
int pick_wave_count(topo::Cluster& cluster, std::int64_t n, std::int64_t g,
                    int gpus_per_problem, const ScanPlan& plan,
                    int elem_bytes = 4);

}  // namespace mgs::core
