#pragma once
/// \file op.hpp
/// Scan operators. The paper uses integer addition throughout; the library
/// is generic over any associative operator with an identity (the skeleton
/// relies on identity-filled lanes being neutral for partial tiles).

#include <algorithm>
#include <limits>

namespace mgs::core {

/// Whether element i of the output includes input element i.
enum class ScanKind { kInclusive, kExclusive };

inline const char* to_string(ScanKind k) {
  return k == ScanKind::kInclusive ? "inclusive" : "exclusive";
}

template <typename T>
struct Plus {
  using value_type = T;
  static constexpr T identity() { return T{}; }
  constexpr T operator()(T a, T b) const { return a + b; }
  static constexpr const char* name() { return "plus"; }
};

template <typename T>
struct Max {
  using value_type = T;
  static constexpr T identity() { return std::numeric_limits<T>::lowest(); }
  constexpr T operator()(T a, T b) const { return std::max(a, b); }
  static constexpr const char* name() { return "max"; }
};

template <typename T>
struct Min {
  using value_type = T;
  static constexpr T identity() { return std::numeric_limits<T>::max(); }
  constexpr T operator()(T a, T b) const { return std::min(a, b); }
  static constexpr const char* name() { return "min"; }
};

}  // namespace mgs::core
