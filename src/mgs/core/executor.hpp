#pragma once
/// \file executor.hpp
/// The unified proposal interface. Each of the paper's five proposals
/// (Scan-SP, Scan-MPS, Scan-MPS-direct, Scan-MP-PC, multi-node Scan-MPS)
/// is wrapped in a ScanExecutor that draws its plan from the ScanContext's
/// memoized cache and its device staging/auxiliary buffers from the
/// context's WorkspacePool, so repeated invocations pay neither re-tuning
/// nor re-allocation (the clppScan / LightScan "construct once, scan many"
/// shape).
///
/// Element type is int32 sums-or-any-Op via ScanKind only, matching
/// baselines::registry ("the paper's element type"); generic-T callers
/// keep the free functions the executors are built on.
///
/// Protocol: prepare(n, g) derives/caches the plan and leases persistent
/// staging for the shape (idempotent for an unchanged shape); run() scans
/// G host problems of N contiguous elements into `out` and returns the
/// simulated RunResult. run() resets the cluster clocks, so repeated runs
/// of one shape report identical modeled times (determinism).
///
/// Degraded mode: when the cluster carries a sim::FaultInjector, prepare()
/// places the run on the surviving GPUs only, and both prepare() and run()
/// re-place automatically when the injector's liveness epoch moves (a
/// device died or recovered since the cached placement). A shrunk
/// placement re-plans -- Scan-MPS picks the largest surviving W that still
/// divides N, Scan-MP-PC repartitions its groups from the alive GPUs of
/// each PCIe network, the multi-node proposal drops dead ranks -- and
/// every proposal collapses to Scan-SP when a single device remains. The
/// RunResult's FaultReport records the degradation (excluded devices,
/// re-planned placement, invalidated plan-cache entries).

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "mgs/core/op.hpp"
#include "mgs/core/plan.hpp"
#include "mgs/core/scan_context.hpp"
#include "mgs/obs/span.hpp"

namespace mgs::core {

class ScanExecutor {
 public:
  virtual ~ScanExecutor() = default;

  /// Registry name ("Scan-SP", "Scan-MPS", ...).
  virtual std::string name() const = 0;
  /// Human-readable configuration: proposal, GPU placement, cached plan.
  /// Most detailed after prepare().
  virtual std::string describe() const = 0;

  /// Set up for G problems of N elements: plan lookup (cache hit after the
  /// first call for a shape) + persistent staging leases. Throws
  /// util::Error for shapes the proposal cannot place. Idempotent when the
  /// shape is unchanged; re-prepares (returning old leases to the pool)
  /// when it differs.
  virtual void prepare(std::int64_t n, std::int64_t g) = 0;

  /// Scan problem g of `in` (at offset g*N) into the same region of `out`.
  /// Requires prepare(); spans must hold N*G elements. Clocks are reset,
  /// so the result is a function of the shape alone.
  virtual RunResult run(std::span<const std::int32_t> in,
                        std::span<std::int32_t> out, ScanKind kind) = 0;

  std::int64_t prepared_n() const { return n_; }
  std::int64_t prepared_g() const { return g_; }

 protected:
  /// Shared argument checking for run() implementations.
  void require_ready(std::span<const std::int32_t> in,
                     std::span<std::int32_t> out) const;

  /// Copy the placement-time degradation record into a run's report
  /// (counters stay whatever the proposal accumulated).
  void stamp_report(RunResult& r) const;

  /// Open the kRun span for this run (simulated t = 0, i.e. the clock
  /// reset), with a kPlan child describing the placement and -- for a
  /// degraded placement -- kFault "replan" children. Inactive (and free
  /// beyond one branch) when no TraceSession is installed.
  obs::ScopedSpan trace_run() const;
  /// Close the run span at the run's makespan and snapshot the session's
  /// metrics into r.metrics. Call after stamp_report on every return path.
  void finish_run(obs::ScopedSpan& span, RunResult& r) const;

  std::int64_t n_ = 0;  ///< prepared shape; 0 = not prepared
  std::int64_t g_ = 0;
  std::uint64_t fault_epoch_ = 0;   ///< liveness epoch of the placement
  sim::FaultReport prep_report_;    ///< degradation recorded at prepare()
};

/// Scan-SP on one device of the context's cluster.
std::unique_ptr<ScanExecutor> make_sp_executor(ScanContext& ctx,
                                               int device_id = 0);

/// Scan-MPS over `w` GPUs of node 0 (0 = every GPU of the node). With
/// `direct`, Stage 1 peer-writes straight into the master's auxiliary
/// array (requires all GPUs on one PCIe network). `pipe` overrides the
/// planner's pipeline choice (kSync forces the synchronous stage path,
/// kOverlap the event-driven one; waves > 0 pins the wave count).
std::unique_ptr<ScanExecutor> make_mps_executor(ScanContext& ctx, int w = 0,
                                                bool direct = false,
                                                PipelineChoice pipe = {});

/// Scan-MP-PC: `y` PCIe networks per node on `m` nodes, `v` GPUs from
/// each (0 = hardware maximum). `pipe` as for make_mps_executor.
std::unique_ptr<ScanExecutor> make_mppc_executor(ScanContext& ctx, int y = 0,
                                                 int v = 0, int m = 1,
                                                 PipelineChoice pipe = {});

/// Multi-node Scan-MPS over `m` nodes with `w` GPUs each via the MPI-like
/// communicator (0 = whole cluster). `pipe` as for make_mps_executor.
std::unique_ptr<ScanExecutor> make_multinode_executor(ScanContext& ctx,
                                                      int m = 0, int w = 0,
                                                      PipelineChoice pipe = {});

}  // namespace mgs::core
