#pragma once
/// \file executor.hpp
/// The unified proposal interface. Each of the paper's five proposals
/// (Scan-SP, Scan-MPS, Scan-MPS-direct, Scan-MP-PC, multi-node Scan-MPS)
/// is wrapped in a ScanExecutor that draws its plan from the ScanContext's
/// memoized cache and its device staging/auxiliary buffers from the
/// context's WorkspacePool, so repeated invocations pay neither re-tuning
/// nor re-allocation (the clppScan / LightScan "construct once, scan many"
/// shape).
///
/// Element type and operator are erased over the (DType, OpTag) matrix of
/// dtype.hpp: run() takes TypedSpan carriers and the factories take a
/// (dtype, op) pair that selects the fully templated executor
/// instantiation from a dispatch table at construction. Dispatch happens
/// exactly once -- after construction the hot path runs the same
/// monomorphic kernels a hand-instantiated scan_sp<T, Op> call would, with
/// no per-element or per-call type dispatch. Typed std::span convenience
/// overloads wrap the erasure so callers that know their type statically
/// (including every pre-refactor caller) compile unchanged.
///
/// Protocol: prepare(n, g) derives/caches the plan and leases persistent
/// staging for the shape (idempotent for an unchanged shape); run() scans
/// G host problems of N contiguous elements into `out` and returns the
/// simulated RunResult. run() resets the cluster clocks, so repeated runs
/// of one shape report identical modeled times (determinism).
///
/// Degraded mode: when the cluster carries a sim::FaultInjector, prepare()
/// places the run on the surviving GPUs only, and both prepare() and run()
/// re-place automatically when the injector's liveness epoch moves (a
/// device died or recovered since the cached placement). A shrunk
/// placement re-plans -- Scan-MPS picks the largest surviving W that still
/// divides N, Scan-MP-PC repartitions its groups from the alive GPUs of
/// each PCIe network, the multi-node proposal drops dead ranks -- and
/// every proposal collapses to Scan-SP when a single device remains. The
/// RunResult's FaultReport records the degradation (excluded devices,
/// re-planned placement, invalidated plan-cache entries).

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "mgs/core/dtype.hpp"
#include "mgs/core/op.hpp"
#include "mgs/core/plan.hpp"
#include "mgs/core/scan_context.hpp"
#include "mgs/obs/span.hpp"

namespace mgs::core {

class ScanExecutor {
 public:
  virtual ~ScanExecutor() = default;

  /// Registry name ("Scan-SP", "Scan-MPS", ...).
  virtual std::string name() const = 0;
  /// Human-readable configuration: proposal, GPU placement, element
  /// type/operator, cached plan. Most detailed after prepare().
  virtual std::string describe() const = 0;

  /// Set up for G problems of N elements: plan lookup (cache hit after the
  /// first call for a shape) + persistent staging leases. Throws
  /// util::Error for shapes the proposal cannot place. Idempotent when the
  /// shape is unchanged; re-prepares (returning old leases to the pool)
  /// when it differs.
  virtual void prepare(std::int64_t n, std::int64_t g) = 0;

  /// Scan problem g of `in` (at offset g*N) into the same region of `out`.
  /// Requires prepare(); spans must hold N*G elements and their dtype must
  /// match the executor's (checked once per call -- never reinterpreted
  /// silently). Clocks are reset, so the result is a function of the
  /// shape alone.
  virtual RunResult run(ConstTypedSpan in, TypedSpan out, ScanKind kind) = 0;

  /// Typed convenience overloads over the erased entry point, one per
  /// DType so implicit conversions (std::vector<T> -> std::span<const T>)
  /// keep working at existing call sites.
  RunResult run(std::span<const std::int32_t> in, std::span<std::int32_t> out,
                ScanKind kind) {
    return run(ConstTypedSpan::of(in), TypedSpan::of(out), kind);
  }
  RunResult run(std::span<const std::int64_t> in, std::span<std::int64_t> out,
                ScanKind kind) {
    return run(ConstTypedSpan::of(in), TypedSpan::of(out), kind);
  }
  RunResult run(std::span<const std::uint32_t> in,
                std::span<std::uint32_t> out, ScanKind kind) {
    return run(ConstTypedSpan::of(in), TypedSpan::of(out), kind);
  }
  RunResult run(std::span<const float> in, std::span<float> out,
                ScanKind kind) {
    return run(ConstTypedSpan::of(in), TypedSpan::of(out), kind);
  }
  RunResult run(std::span<const double> in, std::span<double> out,
                ScanKind kind) {
    return run(ConstTypedSpan::of(in), TypedSpan::of(out), kind);
  }

  std::int64_t prepared_n() const { return n_; }
  std::int64_t prepared_g() const { return g_; }

  /// Element type / operator this instantiation runs (the scalar identity
  /// for the internal segmented path, which packs SegPair elements).
  DType dtype() const { return dtype_; }
  OpTag op() const { return op_; }
  bool segmented() const { return segmented_; }

 protected:
  /// Shared argument checking for run() implementations (counts only; the
  /// dtype check already happened in the TypedSpan recovery).
  void require_ready(std::int64_t in_count, std::int64_t out_count) const;

  /// The context plan-cache key for this executor's element type and
  /// operator at the given shape.
  PlanKey plan_key(const ScanContext& ctx, std::int64_t n, std::int64_t g,
                   int gpus_per_problem) const;

  /// " [i32/plus]"-style suffix for describe().
  std::string type_suffix() const;

  /// Copy the placement-time degradation record into a run's report
  /// (counters stay whatever the proposal accumulated).
  void stamp_report(RunResult& r) const;

  /// Open the kRun span for this run (simulated t = 0, i.e. the clock
  /// reset), with a kPlan child describing the placement and -- for a
  /// degraded placement -- kFault "replan" children. Inactive (and free
  /// beyond one branch) when no TraceSession is installed.
  obs::ScopedSpan trace_run() const;
  /// Close the run span at the run's makespan and snapshot the session's
  /// metrics into r.metrics. Call after stamp_report on every return path.
  void finish_run(obs::ScopedSpan& span, RunResult& r) const;

  std::int64_t n_ = 0;  ///< prepared shape; 0 = not prepared
  std::int64_t g_ = 0;
  std::uint64_t fault_epoch_ = 0;   ///< liveness epoch of the placement
  sim::FaultReport prep_report_;    ///< degradation recorded at prepare()
  DType dtype_ = DType::kI32;       ///< set by TypedScanExecutor
  OpTag op_ = OpTag::kPlus;
  bool segmented_ = false;
};

/// Scan-SP on one device of the context's cluster, instantiated for
/// (dtype, op) via the dispatch table.
std::unique_ptr<ScanExecutor> make_sp_executor(ScanContext& ctx,
                                               int device_id = 0,
                                               DType dtype = DType::kI32,
                                               OpTag op = OpTag::kPlus);

/// Scan-MPS over `w` GPUs of node 0 (0 = every GPU of the node). With
/// `direct`, Stage 1 peer-writes straight into the master's auxiliary
/// array (requires all GPUs on one PCIe network). `pipe` overrides the
/// planner's pipeline choice (kSync forces the synchronous stage path,
/// kOverlap the event-driven one; waves > 0 pins the wave count).
std::unique_ptr<ScanExecutor> make_mps_executor(ScanContext& ctx, int w = 0,
                                                bool direct = false,
                                                PipelineChoice pipe = {},
                                                DType dtype = DType::kI32,
                                                OpTag op = OpTag::kPlus);

/// Scan-MP-PC: `y` PCIe networks per node on `m` nodes, `v` GPUs from
/// each (0 = hardware maximum). `pipe` as for make_mps_executor.
std::unique_ptr<ScanExecutor> make_mppc_executor(ScanContext& ctx, int y = 0,
                                                 int v = 0, int m = 1,
                                                 PipelineChoice pipe = {},
                                                 DType dtype = DType::kI32,
                                                 OpTag op = OpTag::kPlus);

/// Multi-node Scan-MPS over `m` nodes with `w` GPUs each via the MPI-like
/// communicator (0 = whole cluster). `pipe` as for make_mps_executor.
std::unique_ptr<ScanExecutor> make_multinode_executor(
    ScanContext& ctx, int m = 0, int w = 0, PipelineChoice pipe = {},
    DType dtype = DType::kI32, OpTag op = OpTag::kPlus);

}  // namespace mgs::core
