#include "mgs/core/executor.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "mgs/core/scan_mppc.hpp"
#include "mgs/core/scan_mps.hpp"
#include "mgs/core/scan_multinode.hpp"
#include "mgs/core/scan_sp.hpp"
#include "mgs/msg/comm.hpp"

namespace mgs::core {

namespace {

using Handle = WorkspacePool::Handle<std::int32_t>;

/// The first `count` GPUs of `node` in global-id order (network-major,
/// the same fill order the figure harnesses use).
std::vector<int> node_gpus(const topo::Cluster& cluster, int node, int count) {
  const auto& cfg = cluster.config();
  MGS_REQUIRE(count >= 1 && count <= cfg.gpus_per_node(),
              "executor: W exceeds the GPUs of a node");
  std::vector<int> ids;
  for (int i = 0; i < count; ++i) {
    ids.push_back(cluster.global_id(node, i / cfg.gpus_per_network,
                                    i % cfg.gpus_per_network));
  }
  return ids;
}

// ---------------------------------------------------------------- Scan-SP

class SpExecutor final : public ScanExecutor {
 public:
  SpExecutor(ScanContext& ctx, int device_id)
      : ctx_(&ctx), device_id_(device_id) {
    MGS_REQUIRE(device_id >= 0 && device_id < ctx.cluster().num_devices(),
                "Scan-SP executor: device id out of range");
  }

  std::string name() const override { return "Scan-SP"; }

  std::string describe() const override {
    std::ostringstream os;
    os << "Scan-SP on device " << device_id_;
    if (plan_ != nullptr) {
      os << "; n=" << n_ << " g=" << g_ << "; " << plan_->describe();
    }
    return os.str();
  }

  void prepare(std::int64_t n, std::int64_t g) override {
    MGS_REQUIRE(n > 0 && g > 0, "Scan-SP executor: N and G must be positive");
    if (n == n_ && g == g_) return;
    plan_ = &ctx_->plan_for(n, g, static_cast<int>(sizeof(std::int32_t)), 1);
    simt::Device& dev = ctx_->cluster().device(device_id_);
    in_ = ctx_->workspace().acquire<std::int32_t>(dev, n * g);
    out_ = ctx_->workspace().acquire<std::int32_t>(dev, n * g);
    n_ = n;
    g_ = g;
  }

  RunResult run(std::span<const std::int32_t> in, std::span<std::int32_t> out,
                ScanKind kind) override {
    require_ready(in, out);
    ctx_->cluster().reset_clocks();
    std::copy(in.begin(), in.begin() + static_cast<std::ptrdiff_t>(n_ * g_),
              in_.host_span().begin());
    RunResult r = scan_sp<std::int32_t>(
        ctx_->cluster().device(device_id_), in_.buffer(), out_.buffer(), n_,
        g_, *plan_, kind, {}, &ctx_->workspace());
    const auto src = out_.host_span();
    std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(n_ * g_),
              out.begin());
    return r;
  }

 private:
  ScanContext* ctx_;
  int device_id_;
  const ScanPlan* plan_ = nullptr;
  Handle in_;
  Handle out_;
};

// --------------------------------------------------- Scan-MPS (+ direct)

class MpsExecutor final : public ScanExecutor {
 public:
  MpsExecutor(ScanContext& ctx, int w, bool direct)
      : ctx_(&ctx), direct_(direct) {
    const auto& cfg = ctx.cluster().config();
    w_ = (w > 0) ? w
                 : (direct ? cfg.gpus_per_network : cfg.gpus_per_node());
    gpus_ = node_gpus(ctx.cluster(), 0, w_);
  }

  std::string name() const override {
    return direct_ ? "Scan-MPS-direct" : "Scan-MPS";
  }

  std::string describe() const override {
    std::ostringstream os;
    os << name() << " over " << w_ << " GPUs of node 0 (master "
       << gpus_.front() << ")";
    if (plan_ != nullptr) {
      os << "; n=" << n_ << " g=" << g_ << "; " << plan_->describe();
    }
    return os.str();
  }

  void prepare(std::int64_t n, std::int64_t g) override {
    MGS_REQUIRE(n > 0 && g > 0, "Scan-MPS executor: N and G must be positive");
    if (n == n_ && g == g_) return;
    MGS_REQUIRE(n % w_ == 0, "Scan-MPS executor: N must be divisible by W");
    plan_ = &ctx_->plan_for(n, g, static_cast<int>(sizeof(std::int32_t)), w_);
    const std::int64_t per_gpu = (n / w_) * g;
    ins_.clear();
    outs_.clear();
    for (int id : gpus_) {
      simt::Device& dev = ctx_->cluster().device(id);
      ins_.push_back(ctx_->workspace().acquire<std::int32_t>(dev, per_gpu));
      outs_.push_back(ctx_->workspace().acquire<std::int32_t>(dev, per_gpu));
    }
    n_ = n;
    g_ = g;
  }

  RunResult run(std::span<const std::int32_t> in, std::span<std::int32_t> out,
                ScanKind kind) override {
    require_ready(in, out);
    ctx_->cluster().reset_clocks();
    std::vector<GpuBatch<std::int32_t>> batches;
    for (std::size_t d = 0; d < gpus_.size(); ++d) {
      batches.push_back(GpuBatch<std::int32_t>{ins_[d].buffer(),
                                               outs_[d].buffer()});
    }
    scatter_batch<std::int32_t>(in, batches, n_, g_);
    RunResult r =
        direct_ ? scan_mps_direct<std::int32_t>(ctx_->cluster(), gpus_,
                                                batches, n_, g_, *plan_, kind,
                                                {}, &ctx_->workspace())
                : scan_mps<std::int32_t>(ctx_->cluster(), gpus_, batches, n_,
                                         g_, *plan_, kind, {},
                                         &ctx_->workspace());
    gather_batch<std::int32_t>(batches, n_, g_, out);
    return r;
  }

 private:
  ScanContext* ctx_;
  bool direct_;
  int w_ = 1;
  std::vector<int> gpus_;
  const ScanPlan* plan_ = nullptr;
  std::vector<Handle> ins_;
  std::vector<Handle> outs_;
};

// -------------------------------------------------------------- Scan-MP-PC

class MppcExecutor final : public ScanExecutor {
 public:
  MppcExecutor(ScanContext& ctx, int y, int v, int m) : ctx_(&ctx) {
    const auto& cfg = ctx.cluster().config();
    y_ = (y > 0) ? y : cfg.networks_per_node;
    v_ = (v > 0) ? v : cfg.gpus_per_network;
    m_ = (m > 0) ? m : 1;
  }

  std::string name() const override { return "Scan-MP-PC"; }

  std::string describe() const override {
    std::ostringstream os;
    os << "Scan-MP-PC with Y=" << y_ << " networks/node, V=" << v_
       << " GPUs/network, M=" << m_ << " nodes";
    if (plan_ != nullptr) {
      os << " (" << part_.groups.size() << " groups); n=" << n_ << " g=" << g_
         << "; " << plan_->describe();
    }
    return os.str();
  }

  void prepare(std::int64_t n, std::int64_t g) override {
    MGS_REQUIRE(n > 0 && g > 0,
                "Scan-MP-PC executor: N and G must be positive");
    if (n == n_ && g == g_) return;
    MGS_REQUIRE(n % v_ == 0, "Scan-MP-PC executor: N must be divisible by V");
    part_ = make_mppc_partition(ctx_->cluster(), y_, v_, g, m_);
    plan_ = &ctx_->plan_for(n, g, static_cast<int>(sizeof(std::int32_t)), v_);
    ins_.clear();
    outs_.clear();
    for (std::size_t grp = 0; grp < part_.groups.size(); ++grp) {
      const std::int64_t per_gpu = (n / v_) * part_.g_of_group[grp];
      std::vector<Handle> gin, gout;
      for (int id : part_.groups[grp]) {
        simt::Device& dev = ctx_->cluster().device(id);
        gin.push_back(ctx_->workspace().acquire<std::int32_t>(dev, per_gpu));
        gout.push_back(ctx_->workspace().acquire<std::int32_t>(dev, per_gpu));
      }
      ins_.push_back(std::move(gin));
      outs_.push_back(std::move(gout));
    }
    n_ = n;
    g_ = g;
  }

  RunResult run(std::span<const std::int32_t> in, std::span<std::int32_t> out,
                ScanKind kind) override {
    require_ready(in, out);
    ctx_->cluster().reset_clocks();
    std::vector<std::vector<GpuBatch<std::int32_t>>> batches;
    for (std::size_t grp = 0; grp < part_.groups.size(); ++grp) {
      std::vector<GpuBatch<std::int32_t>> b;
      for (std::size_t d = 0; d < part_.groups[grp].size(); ++d) {
        b.push_back(GpuBatch<std::int32_t>{ins_[grp][d].buffer(),
                                           outs_[grp][d].buffer()});
      }
      batches.push_back(std::move(b));
    }
    for (std::size_t grp = 0; grp < batches.size(); ++grp) {
      scatter_batch<std::int32_t>(
          in.subspan(static_cast<std::size_t>(part_.g_offset[grp] * n_),
                     static_cast<std::size_t>(part_.g_of_group[grp] * n_)),
          batches[grp], n_, part_.g_of_group[grp]);
    }
    RunResult r = scan_mppc<std::int32_t>(ctx_->cluster(), part_, batches, n_,
                                          *plan_, kind, {},
                                          &ctx_->workspace());
    for (std::size_t grp = 0; grp < batches.size(); ++grp) {
      gather_batch<std::int32_t>(
          batches[grp], n_, part_.g_of_group[grp],
          out.subspan(static_cast<std::size_t>(part_.g_offset[grp] * n_),
                      static_cast<std::size_t>(part_.g_of_group[grp] * n_)));
    }
    return r;
  }

 private:
  ScanContext* ctx_;
  int y_ = 1;
  int v_ = 1;
  int m_ = 1;
  MppcPartition part_;
  const ScanPlan* plan_ = nullptr;
  std::vector<std::vector<Handle>> ins_;
  std::vector<std::vector<Handle>> outs_;
};

// --------------------------------------------------- multi-node Scan-MPS

class MultinodeExecutor final : public ScanExecutor {
 public:
  MultinodeExecutor(ScanContext& ctx, int m, int w) : ctx_(&ctx) {
    const auto& cfg = ctx.cluster().config();
    m_ = (m > 0) ? m : cfg.nodes;
    w_ = (w > 0) ? w : cfg.gpus_per_node();
    MGS_REQUIRE(m_ <= cfg.nodes,
                "Scan-MPS-multinode executor: M exceeds the cluster");
    std::vector<int> ids;
    for (int node = 0; node < m_; ++node) {
      const auto per_node = node_gpus(ctx.cluster(), node, w_);
      ids.insert(ids.end(), per_node.begin(), per_node.end());
    }
    comm_.emplace(ctx.cluster(), std::move(ids));
  }

  std::string name() const override { return "Scan-MPS-multinode"; }

  std::string describe() const override {
    std::ostringstream os;
    os << "Scan-MPS-multinode over " << m_ << " nodes x " << w_
       << " GPUs (one MPI rank per GPU)";
    if (plan_ != nullptr) {
      os << "; n=" << n_ << " g=" << g_ << "; " << plan_->describe();
    }
    return os.str();
  }

  void prepare(std::int64_t n, std::int64_t g) override {
    MGS_REQUIRE(n > 0 && g > 0,
                "Scan-MPS-multinode executor: N and G must be positive");
    if (n == n_ && g == g_) return;
    const int ranks = comm_->size();
    MGS_REQUIRE(n % ranks == 0,
                "Scan-MPS-multinode executor: N must divide by M*W");
    plan_ =
        &ctx_->plan_for(n, g, static_cast<int>(sizeof(std::int32_t)), ranks);
    const std::int64_t per_rank = (n / ranks) * g;
    ins_.clear();
    outs_.clear();
    for (int r = 0; r < ranks; ++r) {
      simt::Device& dev = ctx_->cluster().device(comm_->device_of(r));
      ins_.push_back(ctx_->workspace().acquire<std::int32_t>(dev, per_rank));
      outs_.push_back(ctx_->workspace().acquire<std::int32_t>(dev, per_rank));
    }
    n_ = n;
    g_ = g;
  }

  RunResult run(std::span<const std::int32_t> in, std::span<std::int32_t> out,
                ScanKind kind) override {
    require_ready(in, out);
    ctx_->cluster().reset_clocks();
    std::vector<GpuBatch<std::int32_t>> batches;
    for (std::size_t r = 0; r < ins_.size(); ++r) {
      batches.push_back(GpuBatch<std::int32_t>{ins_[r].buffer(),
                                               outs_[r].buffer()});
    }
    scatter_batch<std::int32_t>(in, batches, n_, g_);
    RunResult r = scan_mps_multinode<std::int32_t>(
        *comm_, batches, n_, g_, *plan_, kind, {}, &ctx_->workspace());
    gather_batch<std::int32_t>(batches, n_, g_, out);
    return r;
  }

 private:
  ScanContext* ctx_;
  int m_ = 1;
  int w_ = 1;
  std::optional<msg::Communicator> comm_;
  const ScanPlan* plan_ = nullptr;
  std::vector<Handle> ins_;
  std::vector<Handle> outs_;
};

}  // namespace

void ScanExecutor::require_ready(std::span<const std::int32_t> in,
                                 std::span<std::int32_t> out) const {
  MGS_REQUIRE(n_ > 0 && g_ > 0, "ScanExecutor::run before prepare()");
  MGS_REQUIRE(static_cast<std::int64_t>(in.size()) >= n_ * g_ &&
                  static_cast<std::int64_t>(out.size()) >= n_ * g_,
              "ScanExecutor::run: spans must hold N*G elements");
}

std::unique_ptr<ScanExecutor> make_sp_executor(ScanContext& ctx,
                                               int device_id) {
  return std::make_unique<SpExecutor>(ctx, device_id);
}

std::unique_ptr<ScanExecutor> make_mps_executor(ScanContext& ctx, int w,
                                                bool direct) {
  return std::make_unique<MpsExecutor>(ctx, w, direct);
}

std::unique_ptr<ScanExecutor> make_mppc_executor(ScanContext& ctx, int y,
                                                 int v, int m) {
  return std::make_unique<MppcExecutor>(ctx, y, v, m);
}

std::unique_ptr<ScanExecutor> make_multinode_executor(ScanContext& ctx, int m,
                                                      int w) {
  return std::make_unique<MultinodeExecutor>(ctx, m, w);
}

}  // namespace mgs::core
