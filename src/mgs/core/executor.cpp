#include "mgs/core/executor.hpp"

#include <sstream>

#include "mgs/core/executor_impl.hpp"

namespace mgs::core {

namespace {

using detail::FactoryTable;

// The five dispatch tables -- the single place (besides the CI
// instantiation guard) where every proposal is instantiated over the
// whole (DType, OpTag) matrix. Built at compile time; density is
// static_asserted so a new enumerator without a maker row is a build
// error, not a null dispatch.
constexpr FactoryTable kSpTable = detail::make_table<detail::SpMaker>();
constexpr FactoryTable kMpsTable = detail::make_table<detail::MpsMaker>();
constexpr FactoryTable kMpsDirectTable =
    detail::make_table<detail::MpsDirectMaker>();
constexpr FactoryTable kMppcTable = detail::make_table<detail::MppcMaker>();
constexpr FactoryTable kMultinodeTable =
    detail::make_table<detail::MultinodeMaker>();

static_assert(detail::table_is_dense(kSpTable),
              "Scan-SP dispatch table has unfilled (dtype, op) cells");
static_assert(detail::table_is_dense(kMpsTable),
              "Scan-MPS dispatch table has unfilled (dtype, op) cells");
static_assert(detail::table_is_dense(kMpsDirectTable),
              "Scan-MPS-direct dispatch table has unfilled (dtype, op) cells");
static_assert(detail::table_is_dense(kMppcTable),
              "Scan-MP-PC dispatch table has unfilled (dtype, op) cells");
static_assert(
    detail::table_is_dense(kMultinodeTable),
    "Scan-MPS-multinode dispatch table has unfilled (dtype, op) cells");

/// The one runtime dispatch: (dtype, op) -> monomorphic instantiation.
std::unique_ptr<ScanExecutor> dispatch(const FactoryTable& table,
                                       ScanContext& ctx,
                                       const ExecutorParams& p, DType dtype,
                                       OpTag op) {
  return table.at(dtype, op)(ctx, p);
}

}  // namespace

void ScanExecutor::require_ready(std::int64_t in_count,
                                 std::int64_t out_count) const {
  MGS_REQUIRE(n_ > 0 && g_ > 0, "ScanExecutor::run before prepare()");
  MGS_REQUIRE(in_count >= n_ * g_ && out_count >= n_ * g_,
              "ScanExecutor::run: spans must hold N*G elements");
}

PlanKey ScanExecutor::plan_key(const ScanContext& ctx, std::int64_t n,
                               std::int64_t g, int gpus_per_problem) const {
  return PlanKey{ctx.cluster().config().gpu.name,
                 n,
                 g,
                 dtype_,
                 op_,
                 segmented_,
                 gpus_per_problem};
}

std::string ScanExecutor::type_suffix() const {
  std::ostringstream os;
  os << " [" << to_string(dtype_) << "/" << to_string(op_)
     << (segmented_ ? "/seg" : "") << "]";
  return os.str();
}

void ScanExecutor::stamp_report(RunResult& r) const {
  r.faults.degraded = prep_report_.degraded;
  r.faults.degraded_mode = prep_report_.degraded_mode;
  r.faults.excluded_devices = prep_report_.excluded_devices;
  r.faults.replanned = prep_report_.replanned;
  r.faults.invalidated_plans = prep_report_.invalidated_plans;
}

obs::ScopedSpan ScanExecutor::trace_run() const {
  obs::TraceSession* ts = obs::TraceSession::current();
  if (ts == nullptr) return obs::ScopedSpan{};

  obs::SpanRecord run;
  run.name = name();
  run.kind = obs::SpanKind::kRun;
  run.category = obs::Category::kOther;
  run.notes.emplace_back("n", std::to_string(n_));
  run.notes.emplace_back("g", std::to_string(g_));
  run.notes.emplace_back("dtype", to_string(dtype_));
  run.notes.emplace_back("op", to_string(op_));
  obs::ScopedSpan span(std::move(run));

  obs::SpanRecord plan;
  plan.name = "plan";
  plan.kind = obs::SpanKind::kPlan;
  plan.category = obs::Category::kOther;
  plan.notes.emplace_back("config", describe());
  ts->add_event(std::move(plan));

  if (prep_report_.degraded) {
    obs::SpanRecord replan;
    replan.name = "replan";
    replan.kind = obs::SpanKind::kFault;
    replan.category = obs::Category::kOther;
    replan.notes.emplace_back("mode", prep_report_.degraded_mode);
    for (const std::string& step : prep_report_.replanned) {
      replan.notes.emplace_back("step", step);
    }
    ts->add_event(std::move(replan));
    ts->metrics().inc("fault_events_total", {{"kind", "replan"}});
    ts->metrics().inc("degraded_runs_total", {{"executor", name()}});
  }
  ts->metrics().inc("runs_total", {{"executor", name()},
                                   {"dtype", to_string(dtype_)},
                                   {"op", to_string(op_)}});
  return span;
}

void ScanExecutor::finish_run(obs::ScopedSpan& span, RunResult& r) const {
  obs::TraceSession* ts = obs::TraceSession::current();
  if (ts == nullptr) return;
  span.close(r.seconds);
  ts->metrics().add("run_seconds", {{"executor", name()}}, r.seconds);
  r.metrics = ts->metrics().snapshot();
}

std::unique_ptr<ScanExecutor> make_sp_executor(ScanContext& ctx, int device_id,
                                               DType dtype, OpTag op) {
  ExecutorParams p;
  p.device = device_id;
  return dispatch(kSpTable, ctx, p, dtype, op);
}

std::unique_ptr<ScanExecutor> make_mps_executor(ScanContext& ctx, int w,
                                                bool direct,
                                                PipelineChoice pipe,
                                                DType dtype, OpTag op) {
  ExecutorParams p;
  p.w = w;
  p.pipeline = pipe.mode;
  p.waves = pipe.waves;
  return dispatch(direct ? kMpsDirectTable : kMpsTable, ctx, p, dtype, op);
}

std::unique_ptr<ScanExecutor> make_mppc_executor(ScanContext& ctx, int y,
                                                 int v, int m,
                                                 PipelineChoice pipe,
                                                 DType dtype, OpTag op) {
  ExecutorParams p;
  p.y = y;
  p.v = v;
  p.m = m;
  p.pipeline = pipe.mode;
  p.waves = pipe.waves;
  return dispatch(kMppcTable, ctx, p, dtype, op);
}

std::unique_ptr<ScanExecutor> make_multinode_executor(ScanContext& ctx, int m,
                                                      int w,
                                                      PipelineChoice pipe,
                                                      DType dtype, OpTag op) {
  ExecutorParams p;
  p.m = m;
  p.w = w;
  p.pipeline = pipe.mode;
  p.waves = pipe.waves;
  return dispatch(kMultinodeTable, ctx, p, dtype, op);
}

}  // namespace mgs::core
