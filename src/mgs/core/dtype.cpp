#include "mgs/core/dtype.hpp"

namespace mgs::core {

DType parse_dtype(const std::string& s) {
  if (s == "i32") return DType::kI32;
  if (s == "i64") return DType::kI64;
  if (s == "u32") return DType::kU32;
  if (s == "f32") return DType::kF32;
  if (s == "f64") return DType::kF64;
  MGS_REQUIRE(false, "unknown dtype '" + s +
                         "' (expected one of i32, i64, u32, f32, f64)");
  return DType::kI32;
}

OpTag parse_op(const std::string& s) {
  if (s == "plus") return OpTag::kPlus;
  if (s == "max") return OpTag::kMax;
  if (s == "min") return OpTag::kMin;
  MGS_REQUIRE(false,
              "unknown op '" + s + "' (expected one of plus, max, min)");
  return OpTag::kPlus;
}

}  // namespace mgs::core
