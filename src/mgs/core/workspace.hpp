#pragma once
/// \file workspace.hpp
/// Per-device workspace pooling for the scan proposals. Every proposal
/// needs transient device buffers (auxiliary chunk-total arrays, the
/// master's combined array, pack/unpack staging); allocating them with
/// `dev.alloc` on every invocation is fine for a one-shot reproduction
/// but wasteful under repeated traffic. A WorkspacePool keeps released
/// buffers on a per-(type, device) free list and hands them back to later
/// acquisitions of the same or smaller size, so steady-state invocations
/// perform zero device allocations.
///
/// Pooling is a host-side optimization only: simulated device time never
/// includes allocation, so modeled results are bit-identical with and
/// without a pool. All proposal entry points accept an optional
/// `WorkspacePool*`; passing nullptr preserves the legacy alloc-per-call
/// behaviour.

#include <any>
#include <cstdint>
#include <map>
#include <typeindex>
#include <utility>
#include <vector>

#include "mgs/simt/device.hpp"

namespace mgs::core {

/// Reuse pool for DeviceBuffers, keyed by element type and device.
/// Single-threaded, like the rest of the host-side orchestration.
class WorkspacePool {
 public:
  /// RAII lease of a pooled buffer: returns the buffer to the pool on
  /// destruction (or simply drops it when detached from a pool, which is
  /// how the nullptr-pool compatibility path works). Converts implicitly
  /// to DeviceBuffer<T>& so leased buffers slot into the existing kernel
  /// launchers unchanged.
  template <typename T>
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& o) noexcept { *this = std::move(o); }
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = o.pool_;
        buf_ = std::move(o.buf_);
        o.pool_ = nullptr;
        o.buf_ = simt::DeviceBuffer<T>{};
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { release(); }

    bool valid() const { return buf_.valid(); }
    std::int64_t size() const { return buf_.size(); }
    simt::DeviceBuffer<T>& buffer() { return buf_; }
    const simt::DeviceBuffer<T>& buffer() const { return buf_; }
    operator simt::DeviceBuffer<T>&() { return buf_; }
    operator const simt::DeviceBuffer<T>&() const { return buf_; }
    simt::GlobalView<T> view() const { return buf_.view(); }
    std::span<T> host_span() { return buf_.host_span(); }
    std::span<const T> host_span() const { return buf_.host_span(); }

    /// Return the buffer to its pool now (no-op when empty/detached).
    void release() {
      if (pool_ != nullptr && buf_.valid()) pool_->put_back<T>(buf_);
      pool_ = nullptr;
      buf_ = simt::DeviceBuffer<T>{};
    }

   private:
    friend class WorkspacePool;
    Handle(WorkspacePool* pool, simt::DeviceBuffer<T> buf)
        : pool_(pool), buf_(std::move(buf)) {}

    WorkspacePool* pool_ = nullptr;
    simt::DeviceBuffer<T> buf_;
  };

  /// Lease a buffer of at least `elems` elements on `dev`: the smallest
  /// sufficient pooled buffer when one exists, a fresh device allocation
  /// otherwise. Deterministic (best-fit over an ordered free list).
  template <typename T>
  Handle<T> acquire(simt::Device& dev, std::int64_t elems) {
    MGS_REQUIRE(elems >= 0, "WorkspacePool::acquire: negative size");
    auto& list = free_[std::type_index(typeid(T))];
    int best = -1;
    for (int i = 0; i < static_cast<int>(list.size()); ++i) {
      const Entry& e = list[static_cast<std::size_t>(i)];
      if (e.device_id != dev.id() || e.elems < elems) continue;
      if (best < 0 || e.elems < list[static_cast<std::size_t>(best)].elems) {
        best = i;
      }
    }
    if (best >= 0) {
      auto buf = std::any_cast<simt::DeviceBuffer<T>>(
          std::move(list[static_cast<std::size_t>(best)].buffer));
      list.erase(list.begin() + best);
      ++reuses_;
      return Handle<T>(this, std::move(buf));
    }
    ++device_allocations_;
    return Handle<T>(this, dev.alloc<T>(elems));
  }

  /// Pool-or-alloc entry point used by the proposal implementations:
  /// lease from `pool` when one is provided, otherwise fall back to a
  /// plain allocation freed when the handle drops (legacy behaviour).
  template <typename T>
  static Handle<T> lease(WorkspacePool* pool, simt::Device& dev,
                         std::int64_t elems) {
    if (pool != nullptr) return pool->acquire<T>(dev, elems);
    return Handle<T>(nullptr, dev.alloc<T>(elems));
  }

  /// Fresh `dev.alloc` calls made on behalf of acquisitions. Flat across
  /// repeated identically-shaped runs once the pool is warm.
  std::uint64_t device_allocations() const { return device_allocations_; }
  /// Acquisitions served from the free list.
  std::uint64_t reuses() const { return reuses_; }
  /// Buffers currently parked in the pool.
  std::size_t pooled_buffers() const {
    std::size_t n = 0;
    for (const auto& [type, list] : free_) n += list.size();
    return n;
  }
  /// Drop every pooled buffer (returns their memory budget to the devices).
  void clear() { free_.clear(); }

 private:
  struct Entry {
    int device_id = -1;
    std::int64_t elems = 0;
    std::any buffer;  ///< holds a simt::DeviceBuffer<T>
  };

  template <typename T>
  void put_back(const simt::DeviceBuffer<T>& buf) {
    free_[std::type_index(typeid(T))].push_back(
        Entry{buf.device_id(), buf.size(), std::any(buf)});
  }

  std::map<std::type_index, std::vector<Entry>> free_;
  std::uint64_t device_allocations_ = 0;
  std::uint64_t reuses_ = 0;
};

/// Free-function spelling of WorkspacePool::lease (keeps the call sites
/// inside the proposals readable).
template <typename T>
WorkspacePool::Handle<T> acquire_workspace(WorkspacePool* pool,
                                           simt::Device& dev,
                                           std::int64_t elems) {
  return WorkspacePool::lease<T>(pool, dev, elems);
}

}  // namespace mgs::core
