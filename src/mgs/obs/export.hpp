#pragma once
/// \file export.hpp
/// Exporters for recorded traces and metrics:
///  - Chrome/Perfetto trace-event JSON (load in chrome://tracing or
///    ui.perfetto.dev; one track per simulated device),
///  - Prometheus text exposition format,
///  - the mgs JSON run-report consumed by tools/mgs_trace and the bench
///    harness ("mgs-run-report-v1": run summary + metrics + spans +
///    critical-path attribution in one file).

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "mgs/obs/critical_path.hpp"
#include "mgs/obs/metrics.hpp"
#include "mgs/obs/span.hpp"

namespace mgs::obs {

/// Run summary stamped into the report header (mirrors core::RunResult
/// without depending on mgs_core, which sits above this library).
struct RunInfo {
  std::string executor;
  std::string dtype = "i32";    ///< element type (core DType spelling)
  std::string op = "plus";      ///< scan operator (core OpTag spelling)
  std::uint64_t n = 0;          ///< elements scanned
  int devices = 0;              ///< simulated GPUs
  double seconds = 0.0;         ///< RunResult::seconds
  std::uint64_t payload_bytes = 0;
  /// Ordered phase -> seconds pairs (RunResult::breakdown).
  std::vector<std::pair<std::string, double>> breakdown;
  /// Non-zero fault counters (RunResult::faults).
  std::vector<std::pair<std::string, std::uint64_t>> fault_counters;
};

/// JSON string escaping (control chars, quotes, backslash).
std::string json_escape(const std::string& s);

/// Round-trip-safe JSON number for a double (max_digits10 precision).
std::string json_double(double v);

/// Chrome trace-event format: "X" complete events (ts/dur in us of
/// simulated time, tid = device), zero-duration spans as "i" instants,
/// plus thread-name metadata per device.
void write_chrome_trace(std::ostream& os, const std::vector<SpanRecord>& spans);

/// Same, plus Perfetto counter tracks ("C" events): cumulative
/// transfer_bytes[kind] reconstructed over time from the transfer /
/// collective span ends, and every plan_cache_* series plus histogram
/// _count/_sum totals from the snapshot as start->end step tracks (their
/// updates carry no simulated timestamps of their own).
void write_chrome_trace(std::ostream& os, const std::vector<SpanRecord>& spans,
                        const MetricsSnapshot& metrics);

/// Prometheus text exposition format; every series is prefixed "mgs_".
/// Histograms emit cumulative _bucket{le=...}, _sum and _count.
void write_prometheus(std::ostream& os, const MetricsSnapshot& snap);

/// The full JSON run-report ("mgs-run-report-v1").
void write_run_report(std::ostream& os, const RunInfo& info,
                      const MetricsSnapshot& metrics,
                      const std::vector<SpanRecord>& spans,
                      const CriticalPathReport& critical_path);

}  // namespace mgs::obs
