#include "mgs/obs/metrics.hpp"

#include <algorithm>

#include "mgs/util/check.hpp"

namespace mgs::obs {

namespace {

LabelSet sorted(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string series_key(const std::string& name, const LabelSet& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

}  // namespace

const char* to_string(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

const MetricValue* find_metric(const MetricsSnapshot& snap,
                               const std::string& name,
                               const LabelSet& labels) {
  const LabelSet want = sorted(labels);
  for (const auto& m : snap) {
    if (m.name == name && m.labels == want) return &m;
  }
  return nullptr;
}

MetricValue& MetricsRegistry::series(const std::string& name,
                                     const LabelSet& labels, MetricType type) {
  LabelSet ls = sorted(labels);
  const std::string key = series_key(name, ls);
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    MetricValue v;
    v.name = name;
    v.type = type;
    v.labels = std::move(ls);
    it = by_key_.emplace(key, std::move(v)).first;
  }
  MGS_REQUIRE(it->second.type == type,
              "MetricsRegistry: series '" + name +
                  "' already registered as a different type");
  return it->second;
}

void MetricsRegistry::add(const std::string& name, const LabelSet& labels,
                          double delta) {
  MGS_REQUIRE(delta >= 0.0, "MetricsRegistry: counters are monotone");
  std::lock_guard<std::mutex> lock(mutex_);
  series(name, labels, MetricType::kCounter).value += delta;
}

void MetricsRegistry::set(const std::string& name, const LabelSet& labels,
                          double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  series(name, labels, MetricType::kGauge).value = value;
}

void MetricsRegistry::observe(const std::string& name, const LabelSet& labels,
                              double value,
                              const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricValue& s = series(name, labels, MetricType::kHistogram);
  if (s.buckets.empty()) {
    MGS_REQUIRE(std::is_sorted(bounds.begin(), bounds.end()),
                "MetricsRegistry: histogram bounds must ascend");
    s.bounds = bounds;
    s.buckets.assign(s.bounds.size() + 1, 0);
  }
  std::size_t b = 0;
  while (b < s.bounds.size() && value > s.bounds[b]) ++b;
  ++s.buckets[b];
  ++s.count;
  s.value += value;
}

const std::vector<double>& MetricsRegistry::byte_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double x = 64.0; x <= 64.0 * 1024 * 1024; x *= 4.0) b.push_back(x);
    return b;
  }();
  return bounds;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.reserve(by_key_.size());
  for (const auto& [key, v] : by_key_) {
    (void)key;
    snap.push_back(v);
  }
  // by_key_ iterates in key order == (name, labels) order already.
  return snap;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_key_.size();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  by_key_.clear();
}

}  // namespace mgs::obs
