#include "mgs/obs/report.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "mgs/util/check.hpp"

namespace mgs::obs {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    MGS_REQUIRE(pos_ == text_.size(),
                "json: trailing characters at offset " + std::to_string(pos_));
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    MGS_REQUIRE(pos_ < text_.size(), "json: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    MGS_REQUIRE(peek() == c, std::string("json: expected '") + c +
                                 "' at offset " + std::to_string(pos_));
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.str = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = c == 't';
        literal(c == 't' ? "true" : "false");
        return v;
      }
      case 'n': {
        literal("null");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  void literal(const char* word) {
    skip_ws();
    for (const char* p = word; *p != '\0'; ++p) {
      MGS_REQUIRE(pos_ < text_.size() && text_[pos_] == *p,
                  std::string("json: bad literal, expected ") + word);
      ++pos_;
    }
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    MGS_REQUIRE(pos_ > start,
                "json: expected value at offset " + std::to_string(start));
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    char* end = nullptr;
    const std::string tok = text_.substr(start, pos_ - start);
    v.number = std::strtod(tok.c_str(), &end);
    MGS_REQUIRE(end != nullptr && *end == '\0', "json: bad number '" + tok +
                                                    "'");
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      MGS_REQUIRE(pos_ < text_.size(), "json: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      MGS_REQUIRE(pos_ < text_.size(), "json: unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          MGS_REQUIRE(pos_ + 4 <= text_.size(), "json: bad \\u escape");
          const unsigned long cp =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // Only BMP code points below 0x80 are ever emitted by our
          // writer; encode anything else as UTF-8 for robustness.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          MGS_REQUIRE(false, std::string("json: bad escape '\\") + e + "'");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (consume(']')) return v;
    while (true) {
      v.array.push_back(parse_value());
      if (consume(']')) return v;
      expect(',');
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (consume('}')) return v;
    while (true) {
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      if (consume('}')) return v;
      expect(',');
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

SpanKind kind_from_string(const std::string& name) {
  for (const SpanKind k :
       {SpanKind::kRun, SpanKind::kPlan, SpanKind::kStage, SpanKind::kKernel,
        SpanKind::kTransfer, SpanKind::kCollective, SpanKind::kFault}) {
    if (name == to_string(k)) return k;
  }
  return SpanKind::kStage;
}

MetricType metric_type_from_string(const std::string& name) {
  if (name == "gauge") return MetricType::kGauge;
  if (name == "histogram") return MetricType::kHistogram;
  return MetricType::kCounter;
}

std::uint64_t u64_or(const JsonValue* v, std::uint64_t fallback) {
  if (v == nullptr || v->type != JsonValue::Type::kNumber) return fallback;
  return static_cast<std::uint64_t>(v->number);
}

int int_or(const JsonValue* v, int fallback) {
  if (v == nullptr || v->type != JsonValue::Type::kNumber) return fallback;
  return static_cast<int>(v->number);
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::num_or(double fallback) const {
  return type == Type::kNumber ? number : fallback;
}

std::string JsonValue::str_or(std::string fallback) const {
  return type == Type::kString ? str : std::move(fallback);
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

RunReport parse_run_report(const JsonValue& doc) {
  MGS_REQUIRE(doc.type == JsonValue::Type::kObject,
              "run-report: document is not an object");
  const JsonValue* schema = doc.find("schema");
  MGS_REQUIRE(schema != nullptr &&
                  schema->str_or("") == "mgs-run-report-v1",
              "run-report: unknown schema (want mgs-run-report-v1)");

  RunReport rep;
  if (const JsonValue* run = doc.find("run")) {
    rep.run.executor = run->find("executor") != nullptr
                           ? run->find("executor")->str_or("")
                           : "";
    // Reports from before the dtype/op columns keep their defaults.
    rep.run.dtype =
        run->find("dtype") != nullptr ? run->find("dtype")->str_or("i32")
                                      : "i32";
    rep.run.op =
        run->find("op") != nullptr ? run->find("op")->str_or("plus") : "plus";
    rep.run.n = u64_or(run->find("n"), 0);
    rep.run.devices = int_or(run->find("devices"), 0);
    rep.run.seconds =
        run->find("seconds") != nullptr ? run->find("seconds")->num_or(0.0)
                                        : 0.0;
    rep.run.payload_bytes = u64_or(run->find("payload_bytes"), 0);
    if (const JsonValue* bd = run->find("breakdown")) {
      for (const auto& [phase, secs] : bd->object) {
        rep.run.breakdown.emplace_back(phase, secs.num_or(0.0));
      }
    }
    if (const JsonValue* f = run->find("faults")) {
      for (const auto& [name, count] : f->object) {
        rep.run.fault_counters.emplace_back(
            name, static_cast<std::uint64_t>(count.num_or(0.0)));
      }
    }
  }

  if (const JsonValue* metrics = doc.find("metrics")) {
    for (const JsonValue& m : metrics->array) {
      MetricValue mv;
      mv.name = m.find("name") != nullptr ? m.find("name")->str_or("") : "";
      mv.type = metric_type_from_string(
          m.find("type") != nullptr ? m.find("type")->str_or("counter")
                                    : "counter");
      if (const JsonValue* labels = m.find("labels")) {
        for (const auto& [k, v] : labels->object) {
          mv.labels.emplace_back(k, v.str_or(""));
        }
      }
      mv.value =
          m.find("value") != nullptr ? m.find("value")->num_or(0.0) : 0.0;
      mv.count = u64_or(m.find("count"), 0);
      if (const JsonValue* bounds = m.find("bounds")) {
        for (const JsonValue& b : bounds->array) {
          mv.bounds.push_back(b.num_or(0.0));
        }
      }
      if (const JsonValue* buckets = m.find("buckets")) {
        for (const JsonValue& b : buckets->array) {
          mv.buckets.push_back(static_cast<std::uint64_t>(b.num_or(0.0)));
        }
      }
      rep.metrics.push_back(std::move(mv));
    }
  }

  if (const JsonValue* spans = doc.find("spans")) {
    for (const JsonValue& s : spans->array) {
      SpanRecord sr;
      sr.id = u64_or(s.find("id"), 0);
      sr.parent = u64_or(s.find("parent"), 0);
      sr.name = s.find("name") != nullptr ? s.find("name")->str_or("") : "";
      sr.kind = kind_from_string(
          s.find("kind") != nullptr ? s.find("kind")->str_or("stage")
                                    : "stage");
      sr.category = category_from_string(
          s.find("category") != nullptr ? s.find("category")->str_or("other")
                                        : "other");
      sr.device = int_or(s.find("device"), -1);
      sr.src_device = int_or(s.find("src_device"), -1);
      sr.start_seconds =
          s.find("start") != nullptr ? s.find("start")->num_or(0.0) : 0.0;
      sr.end_seconds =
          s.find("end") != nullptr ? s.find("end")->num_or(0.0) : 0.0;
      sr.bytes = u64_or(s.find("bytes"), 0);
      sr.alu_ops = u64_or(s.find("alu_ops"), 0);
      sr.occupancy = s.find("occupancy") != nullptr
                         ? s.find("occupancy")->num_or(0.0)
                         : 0.0;
      if (const JsonValue* notes = s.find("notes")) {
        for (const JsonValue& kv : notes->array) {
          if (kv.array.size() == 2) {
            sr.notes.emplace_back(kv.array[0].str_or(""),
                                  kv.array[1].str_or(""));
          }
        }
      }
      rep.spans.push_back(std::move(sr));
    }
  }

  rep.critical_path = analyze_last_run(rep.spans);
  return rep;
}

RunReport load_run_report(const std::string& path) {
  std::ifstream in(path);
  MGS_REQUIRE(in.good(), "run-report: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_run_report(parse_json(buf.str()));
}

}  // namespace mgs::obs
