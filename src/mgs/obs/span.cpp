#include "mgs/obs/span.hpp"

#include <algorithm>

#include "mgs/util/check.hpp"

namespace mgs::obs {

TraceSession* TraceSession::current_ = nullptr;

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRun:
      return "run";
    case SpanKind::kPlan:
      return "plan";
    case SpanKind::kStage:
      return "stage";
    case SpanKind::kKernel:
      return "kernel";
    case SpanKind::kTransfer:
      return "transfer";
    case SpanKind::kCollective:
      return "collective";
    case SpanKind::kFault:
      return "fault";
  }
  return "?";
}

const char* to_string(Category c) {
  switch (c) {
    case Category::kCompute:
      return "compute";
    case Category::kP2P:
      return "p2p";
    case Category::kHostStaged:
      return "host-staged";
    case Category::kMpi:
      return "mpi";
    case Category::kIdle:
      return "idle";
    case Category::kOther:
      return "other";
  }
  return "?";
}

Category category_from_string(const std::string& name) {
  for (int i = 0; i < kNumCategories; ++i) {
    const Category c = static_cast<Category>(i);
    if (name == to_string(c)) return c;
  }
  return Category::kOther;
}

TraceSession::TraceSession() : prev_(current_) { current_ = this; }

TraceSession::~TraceSession() { current_ = prev_; }

std::uint64_t TraceSession::open_span(SpanRecord rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  rec.id = next_id_++;
  if (rec.parent == 0 && !stack_.empty()) rec.parent = stack_.back();
  if (rec.end_seconds < rec.start_seconds) rec.end_seconds = rec.start_seconds;
  stack_.push_back(rec.id);
  spans_.push_back(std::move(rec));
  return spans_.back().id;
}

void TraceSession::close_span(std::uint64_t id, double end_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::find(stack_.begin(), stack_.end(), id);
  MGS_REQUIRE(it != stack_.end(), "TraceSession::close_span: span not open");
  stack_.erase(it);
  SpanRecord& rec = spans_[static_cast<std::size_t>(id - 1)];
  rec.end_seconds = std::max(rec.start_seconds, end_seconds);
}

std::uint64_t TraceSession::add_event(SpanRecord rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  rec.id = next_id_++;
  if (rec.parent == 0 && !stack_.empty()) rec.parent = stack_.back();
  if (rec.end_seconds < rec.start_seconds) rec.end_seconds = rec.start_seconds;
  spans_.push_back(std::move(rec));
  return spans_.back().id;
}

void TraceSession::annotate(std::uint64_t id, std::string key,
                            std::string value) {
  std::lock_guard<std::mutex> lock(mutex_);
  MGS_REQUIRE(id >= 1 && id <= spans_.size(),
              "TraceSession::annotate: unknown span id");
  spans_[static_cast<std::size_t>(id - 1)].notes.emplace_back(
      std::move(key), std::move(value));
}

std::vector<SpanRecord> TraceSession::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::size_t TraceSession::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

void note_fault(
    const std::string& name,
    std::initializer_list<std::pair<std::string, std::string>> notes,
    double at_seconds, int device) {
  TraceSession* ts = TraceSession::current();
  if (ts == nullptr) return;
  SpanRecord rec;
  rec.name = name;
  rec.kind = SpanKind::kFault;
  rec.category = Category::kOther;
  rec.device = device;
  rec.start_seconds = at_seconds;
  rec.end_seconds = at_seconds;
  rec.notes.assign(notes.begin(), notes.end());
  ts->add_event(std::move(rec));
  ts->metrics().inc("fault_events_total", {{"kind", name}});
}

}  // namespace mgs::obs
