#pragma once
/// \file diff.hpp
/// Differential critical-path attribution: align two run-reports
/// stage-by-stage / device-by-device on the analyzer's existing rows and
/// attribute the makespan delta to compute / p2p / host-staged / mpi /
/// idle per (stage, device) and per link. The attribution rows form an
/// exact decomposition: Sigma row deltas == delta makespan (a residual
/// "(outside stages)" row absorbs whatever the stage windows do not
/// cover, so the telescoping holds even for the overlapping MP-PC rows
/// and for window gaps). Structural changes (different plan shape, wave
/// count, resumed stages) are flagged separately from time drift so a
/// reader never mistakes "the schedule changed" for "the same schedule
/// got slower".

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "mgs/obs/critical_path.hpp"
#include "mgs/obs/report.hpp"

namespace mgs::obs {

/// Differential attribution between a baseline and a current run-report.
struct ReportDiff {
  double base_total = 0.0;  ///< baseline makespan (seconds)
  double cur_total = 0.0;   ///< current makespan (seconds)
  double delta() const { return cur_total - base_total; }
  double delta_pct() const {
    return base_total > 0.0 ? (cur_total / base_total - 1.0) * 100.0 : 0.0;
  }

  /// Per-category makespan deltas (current - baseline). Exact by the
  /// analyzer invariant: each report's by_category sums to its makespan.
  CategorySeconds by_category;
  CategorySeconds base_by_category;  ///< the baseline's attribution
  CategorySeconds cur_by_category;   ///< the current run's attribution

  /// One attribution row per (stage occurrence, category), plus one
  /// residual "(outside stages)" row per category pair. Together the rows
  /// are an exact decomposition of delta(): Sigma delta() over rows ==
  /// cur_total - base_total (to fp rounding of the sums -- the 1e-9*t
  /// acceptance bound).
  struct Row {
    std::string stage;       ///< stage name, or "(outside stages)"
    Category category = Category::kOther;
    int device = -1;         ///< critical device of the slower side's row
    double base_seconds = 0.0;
    double cur_seconds = 0.0;
    bool structural = false; ///< stage exists in only one report
    double delta() const { return cur_seconds - base_seconds; }
  };
  std::vector<Row> rows;

  /// Per-(device, engine) busy/idle drift (supplementary; each side's
  /// rows independently satisfy busy + idle == makespan).
  struct DeviceDelta {
    int device = -1;
    std::string engine = "compute";
    double base_busy = 0.0, cur_busy = 0.0;
    double base_idle = 0.0, cur_idle = 0.0;
    double busy_delta() const { return cur_busy - base_busy; }
  };
  std::vector<DeviceDelta> devices;

  /// Per-link traffic drift (supplementary).
  struct LinkDelta {
    int src = -1, dst = -1;
    std::string link;
    std::uint64_t base_bytes = 0, cur_bytes = 0;
    double base_seconds = 0.0, cur_seconds = 0.0;
    double delta() const { return cur_seconds - base_seconds; }
  };
  std::vector<LinkDelta> links;

  /// Human-readable structural changes: different executor/dtype/op/shape,
  /// stage multiset drift (wave-count or plan changes), mid-run resumes.
  std::vector<std::string> structural;
  bool structural_change() const { return !structural.empty(); }
};

/// Compute the differential attribution `cur - base`.
ReportDiff diff_reports(const RunReport& base, const RunReport& cur);

/// The attribution rows ranked by |delta| descending (pointers into
/// d.rows; stable for equal magnitudes).
std::vector<const ReportDiff::Row*> ranked_rows(const ReportDiff& d);

/// Render the ranked "what got slower and where" tables. `top` == 0
/// prints every non-zero attribution row; otherwise the top-N by |delta|.
std::string format_diff(const ReportDiff& d, std::size_t top = 0);

/// Machine-readable form ("mgs-perf-diff-v1") for CI artifacts.
void write_diff_json(std::ostream& os, const ReportDiff& d);

}  // namespace mgs::obs
