#include "mgs/obs/history.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "mgs/util/check.hpp"
#include "mgs/util/table.hpp"

namespace mgs::obs {

std::string HistoryKey::str() const {
  std::ostringstream os;
  os << executor << " " << dtype << "/" << op << " pipe=" << pipeline
     << " n=" << n << " g=" << g << " dev=" << devices;
  return os.str();
}

HistoryEntry entry_from_report(const RunReport& rep, std::string label,
                               std::string pipeline, std::int64_t g) {
  HistoryEntry e;
  e.key.executor = rep.run.executor;
  e.key.dtype = rep.run.dtype;
  e.key.op = rep.run.op;
  e.key.pipeline = std::move(pipeline);
  e.key.n = rep.run.n;
  e.key.g = g;
  e.key.devices = rep.run.devices;
  e.label = std::move(label);
  // Prefer the analyzer's makespan (a traced report re-derives it from
  // spans); fall back to the header for untraced reports.
  e.seconds = rep.critical_path.total_seconds > 0.0
                  ? rep.critical_path.total_seconds
                  : rep.run.seconds;
  e.payload_bytes = rep.run.payload_bytes;
  e.breakdown = rep.run.breakdown;
  e.by_category = rep.critical_path.by_category;
  return e;
}

RunHistory::RunHistory(std::string path) : path_(std::move(path)) {}

void RunHistory::append(const HistoryEntry& e) const {
  const auto parent = std::filesystem::path(path_).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream os(path_, std::ios::app);
  MGS_REQUIRE(os.good(), "history: cannot open " + path_);
  // One compact run-report-shaped document per line: the standard header
  // plus a "history" object for the store-only metadata; spans/metrics
  // are omitted (the critical_path section carries the attribution).
  os << "{\"schema\":\"mgs-run-report-v1\",\"history\":{\"label\":\""
     << json_escape(e.label) << "\",\"pipeline\":\""
     << json_escape(e.key.pipeline) << "\",\"g\":" << e.key.g << "}";
  os << ",\"run\":{\"executor\":\"" << json_escape(e.key.executor)
     << "\",\"dtype\":\"" << json_escape(e.key.dtype) << "\",\"op\":\""
     << json_escape(e.key.op) << "\",\"n\":" << e.key.n
     << ",\"devices\":" << e.key.devices
     << ",\"seconds\":" << json_double(e.seconds)
     << ",\"payload_bytes\":" << e.payload_bytes << ",\"breakdown\":{";
  bool first = true;
  for (const auto& [phase, secs] : e.breakdown) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(phase) << "\":" << json_double(secs);
  }
  os << "},\"faults\":{}}";
  os << ",\"critical_path\":{\"total\":" << json_double(e.seconds)
     << ",\"by_category\":{";
  for (int c = 0; c < kNumCategories; ++c) {
    if (c != 0) os << ",";
    os << "\"" << to_string(static_cast<Category>(c))
       << "\":" << json_double(e.by_category[static_cast<Category>(c)]);
  }
  os << "}}}\n";
  MGS_REQUIRE(os.good(), "history: write failed for " + path_);
}

std::vector<HistoryEntry> RunHistory::load() const {
  std::vector<HistoryEntry> out;
  std::ifstream is(path_);
  if (!is.good()) return out;  // no history yet
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const JsonValue doc = parse_json(line);
    MGS_REQUIRE(doc.find("schema") != nullptr &&
                    doc.find("schema")->str_or("") == "mgs-run-report-v1",
                "history: " + path_ + ":" + std::to_string(lineno) +
                    " is not an mgs-run-report-v1 line");
    HistoryEntry e;
    if (const JsonValue* h = doc.find("history")) {
      if (const auto* v = h->find("label")) e.label = v->str_or("");
      if (const auto* v = h->find("pipeline")) {
        e.key.pipeline = v->str_or("auto");
      }
      if (const auto* v = h->find("g")) {
        e.key.g = static_cast<std::int64_t>(v->num_or(0.0));
      }
    }
    const JsonValue* run = doc.find("run");
    MGS_REQUIRE(run != nullptr, "history: line " + std::to_string(lineno) +
                                    " has no run header");
    if (const auto* v = run->find("executor")) e.key.executor = v->str_or("");
    if (const auto* v = run->find("dtype")) e.key.dtype = v->str_or("i32");
    if (const auto* v = run->find("op")) e.key.op = v->str_or("plus");
    if (const auto* v = run->find("n")) {
      e.key.n = static_cast<std::uint64_t>(v->num_or(0.0));
    }
    if (const auto* v = run->find("devices")) {
      e.key.devices = static_cast<int>(v->num_or(0.0));
    }
    if (const auto* v = run->find("seconds")) e.seconds = v->num_or(0.0);
    if (const auto* v = run->find("payload_bytes")) {
      e.payload_bytes = static_cast<std::uint64_t>(v->num_or(0.0));
    }
    if (const auto* v = run->find("breakdown");
        v != nullptr && v->type == JsonValue::Type::kObject) {
      for (const auto& [phase, secs] : v->object) {
        e.breakdown.emplace_back(phase, secs.num_or(0.0));
      }
    }
    if (const JsonValue* cp = doc.find("critical_path")) {
      if (const auto* t = cp->find("total"); t != nullptr) {
        const double total = t->num_or(0.0);
        if (total > 0.0) e.seconds = total;
      }
      if (const auto* bc = cp->find("by_category");
          bc != nullptr && bc->type == JsonValue::Type::kObject) {
        for (const auto& [name, secs] : bc->object) {
          e.by_category[category_from_string(name)] += secs.num_or(0.0);
        }
      }
    }
    out.push_back(std::move(e));
  }
  return out;
}

double percentile_from_histogram(const std::vector<double>& bounds,
                                 const std::vector<std::uint64_t>& buckets,
                                 double q) {
  std::uint64_t total = 0;
  for (const auto b : buckets) total += b;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank target, then linear interpolation across the winning
  // bucket's width (overflow bucket collapses to the last bound).
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const double next = cum + static_cast<double>(buckets[b]);
    if (next >= target && buckets[b] > 0) {
      if (b >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      const double lo = b == 0 ? 0.0 : bounds[b - 1];
      const double hi = bounds[b];
      const double frac =
          std::clamp((target - cum) / static_cast<double>(buckets[b]), 0.0,
                     1.0);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

const std::vector<double>& RunHistory::makespan_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    // 1 us .. 100 s in ~7% steps: ~272 buckets, so interpolated
    // percentiles sit within a few percent of the exact statistic.
    for (double v = 1e-6; v <= 1e2; v *= 1.07) b.push_back(v);
    return b;
  }();
  return bounds;
}

std::vector<KeySummary> RunHistory::summarize(
    const std::vector<HistoryEntry>& entries) {
  // The percentile source of truth is a labeled histogram per key in a
  // MetricsRegistry -- the same series shape the tracer would export.
  MetricsRegistry reg;
  std::map<std::string, KeySummary> by_key;
  for (const auto& e : entries) {
    const std::string key = e.key.str();
    const LabelSet labels{{"key", key}};
    reg.observe("history_makespan_seconds", labels, e.seconds,
                makespan_bounds());
    auto [it, inserted] = by_key.emplace(key, KeySummary{});
    KeySummary& s = it->second;
    if (inserted) {
      s.key = e.key;
      s.first = e.seconds;
      s.first_label = e.label;
    }
    ++s.runs;
    s.max = std::max(s.max, e.seconds);
    s.latest = e.seconds;
    s.latest_label = e.label;
  }
  const MetricsSnapshot snap = reg.snapshot();
  std::vector<KeySummary> out;
  out.reserve(by_key.size());
  for (auto& [key, s] : by_key) {
    const MetricValue* m =
        find_metric(snap, "history_makespan_seconds", {{"key", key}});
    if (m != nullptr) {
      s.p50 = percentile_from_histogram(m->bounds, m->buckets, 0.50);
      s.p95 = percentile_from_histogram(m->bounds, m->buckets, 0.95);
    }
    out.push_back(std::move(s));
  }
  // Lexicographic by key: summaries render identically run-to-run, so CI
  // logs diff cleanly (history top owns the worst-regression ranking).
  std::stable_sort(out.begin(), out.end(),
                   [](const KeySummary& a, const KeySummary& b) {
                     return a.key.str() < b.key.str();
                   });
  return out;
}

std::string RunHistory::format_summary(const std::vector<KeySummary>& rows) {
  std::ostringstream os;
  util::Table t({"config", "runs", "p50(us)", "p95(us)", "max(us)",
                 "first(us)", "latest(us)", "trend", "latest label"});
  for (const auto& s : rows) {
    char trend[32];
    std::snprintf(trend, sizeof trend, "%+.1f%%", s.trend_pct());
    t.add_row({s.key.str(), std::to_string(s.runs),
               util::fmt_double(s.p50 * 1e6, 1),
               util::fmt_double(s.p95 * 1e6, 1),
               util::fmt_double(s.max * 1e6, 1),
               util::fmt_double(s.first * 1e6, 1),
               util::fmt_double(s.latest * 1e6, 1), trend,
               s.latest_label.empty() ? "-" : s.latest_label});
  }
  t.print(os);
  return os.str();
}

}  // namespace mgs::obs
