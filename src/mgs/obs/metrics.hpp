#pragma once
/// \file metrics.hpp
/// Labeled metrics registry: counters, gauges and histograms keyed by
/// (name, label set), snapshotted into core::RunResult::metrics and
/// exported in Prometheus text format. Thread-safe; cheap enough for the
/// instrumented hot paths (one map lookup per update, and updates only
/// happen when a TraceSession is installed).

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mgs::obs {

/// Sorted key/value label pairs ("kind=p2p"). Order-insensitive on input;
/// stored sorted so equal sets compare equal.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

const char* to_string(MetricType t);

/// One metric series in a snapshot (value type, not a live handle).
struct MetricValue {
  std::string name;
  MetricType type = MetricType::kCounter;
  LabelSet labels;
  double value = 0.0;  ///< counter total / gauge level / histogram sum
  // Histogram-only fields:
  std::uint64_t count = 0;            ///< observations
  std::vector<double> bounds;         ///< upper bounds, ascending
  std::vector<std::uint64_t> buckets; ///< per-bucket counts, bounds.size()+1
                                      ///< (last = +Inf overflow)
};

/// A full registry dump, sorted by (name, labels) for stable output.
using MetricsSnapshot = std::vector<MetricValue>;

/// Find a series in a snapshot; nullptr when absent. Labels must match
/// exactly (after sorting).
const MetricValue* find_metric(const MetricsSnapshot& snap,
                               const std::string& name,
                               const LabelSet& labels = {});

class MetricsRegistry {
 public:
  /// Counter: monotone add (delta must be >= 0).
  void add(const std::string& name, const LabelSet& labels, double delta);
  void inc(const std::string& name, const LabelSet& labels = {}) {
    add(name, labels, 1.0);
  }
  void add(const std::string& name, double delta) { add(name, {}, delta); }

  /// Gauge: set the current level.
  void set(const std::string& name, const LabelSet& labels, double value);
  void set(const std::string& name, double value) { set(name, {}, value); }

  /// Histogram: record one observation. Bounds are fixed on first use of
  /// a (name, labels) series; later calls may pass empty bounds.
  void observe(const std::string& name, const LabelSet& labels, double value,
               const std::vector<double>& bounds);

  /// Power-of-two byte-size bounds (64 B .. 64 MiB), the default for the
  /// transfer-size histograms.
  static const std::vector<double>& byte_bounds();

  MetricsSnapshot snapshot() const;
  std::size_t size() const;
  void clear();

 private:
  /// Type mismatches on a (name, labels) series throw util::Error.
  MetricValue& series(const std::string& name, const LabelSet& labels,
                      MetricType type);

  mutable std::mutex mutex_;
  std::map<std::string, MetricValue> by_key_;
};

}  // namespace mgs::obs
