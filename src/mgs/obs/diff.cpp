#include "mgs/obs/diff.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <tuple>

#include "mgs/obs/export.hpp"
#include "mgs/util/table.hpp"

namespace mgs::obs {

namespace {

/// Stage alignment key: stage rows repeat per wave (and per recovery), so
/// the i-th occurrence of a name on one side pairs with the i-th on the
/// other. Occurrence indices follow the analyzer's start-order rows.
struct StageKey {
  std::string name;
  int occurrence = 0;
  bool operator<(const StageKey& o) const {
    return name != o.name ? name < o.name : occurrence < o.occurrence;
  }
};

std::map<StageKey, const CriticalPathReport::StageRow*> index_stages(
    const CriticalPathReport& cp) {
  std::map<std::string, int> seen;
  std::map<StageKey, const CriticalPathReport::StageRow*> out;
  for (const auto& s : cp.stages) {
    out[{s.name, seen[s.name]++}] = &s;
  }
  return out;
}

std::string fmt_signed_us(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%+.2f", seconds * 1e6);
  return buf;
}

void flag_run_header_changes(const RunInfo& base, const RunInfo& cur,
                             std::vector<std::string>& out) {
  if (base.executor != cur.executor) {
    out.push_back("executor changed: '" + base.executor + "' -> '" +
                  cur.executor + "'");
  }
  if (base.dtype != cur.dtype || base.op != cur.op) {
    out.push_back("element space changed: " + base.dtype + "/" + base.op +
                  " -> " + cur.dtype + "/" + cur.op);
  }
  if (base.n != cur.n) {
    out.push_back("problem size changed: n=" + std::to_string(base.n) +
                  " -> n=" + std::to_string(cur.n));
  }
  if (base.devices != cur.devices) {
    out.push_back("device count changed: " + std::to_string(base.devices) +
                  " -> " + std::to_string(cur.devices));
  }
  const auto counter = [](const RunInfo& info, const char* key) {
    for (const auto& [k, v] : info.fault_counters) {
      if (k == key) return v;
    }
    return std::uint64_t{0};
  };
  const std::uint64_t base_resumed = counter(base, "resumed_stages");
  const std::uint64_t cur_resumed = counter(cur, "resumed_stages");
  if (base_resumed != cur_resumed) {
    out.push_back("resumed stages: " + std::to_string(base_resumed) +
                  " -> " + std::to_string(cur_resumed) +
                  " (mid-run recovery fired)");
  }
  const bool base_faulted = !base.fault_counters.empty();
  const bool cur_faulted = !cur.fault_counters.empty();
  if (base_faulted != cur_faulted) {
    out.push_back(std::string("fault counters only in the ") +
                  (cur_faulted ? "current" : "baseline") +
                  " run (injected or recovered faults)");
  }
}

void flag_stage_multiset_changes(const CriticalPathReport& base,
                                 const CriticalPathReport& cur,
                                 std::vector<std::string>& out) {
  std::map<std::string, int> bc, cc;
  for (const auto& s : base.stages) ++bc[s.name];
  for (const auto& s : cur.stages) ++cc[s.name];
  for (const auto& [name, nb] : bc) {
    const int nc = cc.count(name) ? cc.at(name) : 0;
    if (nb != nc) {
      out.push_back("stage '" + name + "' ran " + std::to_string(nb) +
                    "x in baseline vs " + std::to_string(nc) +
                    "x in current (plan or wave count changed)");
    }
  }
  for (const auto& [name, nc] : cc) {
    if (bc.count(name) == 0) {
      out.push_back("stage '" + name + "' ran " + std::to_string(nc) +
                    "x in current only (plan or wave count changed)");
    }
  }
}

}  // namespace

ReportDiff diff_reports(const RunReport& base, const RunReport& cur) {
  ReportDiff d;
  const CriticalPathReport& bcp = base.critical_path;
  const CriticalPathReport& ccp = cur.critical_path;
  d.base_total = bcp.total_seconds;
  d.cur_total = ccp.total_seconds;
  for (int c = 0; c < kNumCategories; ++c) {
    const auto cat = static_cast<Category>(c);
    d.base_by_category[cat] = bcp.by_category[cat];
    d.cur_by_category[cat] = ccp.by_category[cat];
    d.by_category[cat] = ccp.by_category[cat] - bcp.by_category[cat];
  }

  flag_run_header_changes(base.run, cur.run, d.structural);
  flag_stage_multiset_changes(bcp, ccp, d.structural);

  // Stage-aligned attribution rows. Every (stage occurrence, category)
  // with any time on either side becomes one row; a stage present on only
  // one side is a structural row with the other side at zero.
  const auto bstages = index_stages(bcp);
  const auto cstages = index_stages(ccp);
  std::vector<StageKey> keys;
  for (const auto& [k, _] : bstages) keys.push_back(k);
  for (const auto& [k, _] : cstages) {
    if (bstages.count(k) == 0) keys.push_back(k);
  }
  double base_staged = 0.0, cur_staged = 0.0;
  for (const auto& k : keys) {
    const auto* b = bstages.count(k) ? bstages.at(k) : nullptr;
    const auto* c = cstages.count(k) ? cstages.at(k) : nullptr;
    for (int ci = 0; ci < kNumCategories; ++ci) {
      const auto cat = static_cast<Category>(ci);
      ReportDiff::Row row;
      row.stage = k.name;
      row.category = cat;
      row.device = c != nullptr ? c->critical_device : b->critical_device;
      row.base_seconds = b != nullptr ? b->by_category[cat] : 0.0;
      row.cur_seconds = c != nullptr ? c->by_category[cat] : 0.0;
      row.structural = (b == nullptr) != (c == nullptr);
      if (row.base_seconds == 0.0 && row.cur_seconds == 0.0) continue;
      base_staged += row.base_seconds;
      cur_staged += row.cur_seconds;
      d.rows.push_back(std::move(row));
    }
  }
  // Residual row: whatever the stage windows do not cover (gaps between
  // stages, or negative when MP-PC group rows overlap in time). Forces
  // the exact telescoping Sigma row deltas == cur_total - base_total.
  ReportDiff::Row resid;
  resid.stage = "(outside stages)";
  resid.category = Category::kOther;
  resid.base_seconds = d.base_total - base_staged;
  resid.cur_seconds = d.cur_total - cur_staged;
  if (resid.base_seconds != 0.0 || resid.cur_seconds != 0.0) {
    d.rows.push_back(std::move(resid));
  }

  // Per-(device, engine) busy/idle drift.
  std::map<std::pair<int, std::string>,
           const CriticalPathReport::DeviceRow*> bdev, cdev;
  for (const auto& r : bcp.devices) bdev[{r.device, r.engine}] = &r;
  for (const auto& r : ccp.devices) cdev[{r.device, r.engine}] = &r;
  for (const auto& [k, b] : bdev) {
    ReportDiff::DeviceDelta dd;
    dd.device = k.first;
    dd.engine = k.second;
    dd.base_busy = b->busy.total();
    dd.base_idle = b->idle_seconds;
    if (const auto it = cdev.find(k); it != cdev.end()) {
      dd.cur_busy = it->second->busy.total();
      dd.cur_idle = it->second->idle_seconds;
    }
    d.devices.push_back(dd);
  }
  for (const auto& [k, c] : cdev) {
    if (bdev.count(k) != 0) continue;
    ReportDiff::DeviceDelta dd;
    dd.device = k.first;
    dd.engine = k.second;
    dd.cur_busy = c->busy.total();
    dd.cur_idle = c->idle_seconds;
    d.devices.push_back(dd);
  }

  // Per-link drift.
  std::map<std::tuple<int, int, std::string>,
           const CriticalPathReport::LinkRow*> blink, clink;
  for (const auto& l : bcp.links) blink[{l.src, l.dst, l.link}] = &l;
  for (const auto& l : ccp.links) clink[{l.src, l.dst, l.link}] = &l;
  for (const auto& [k, b] : blink) {
    ReportDiff::LinkDelta ld;
    ld.src = std::get<0>(k);
    ld.dst = std::get<1>(k);
    ld.link = std::get<2>(k);
    ld.base_bytes = b->bytes;
    ld.base_seconds = b->seconds;
    if (const auto it = clink.find(k); it != clink.end()) {
      ld.cur_bytes = it->second->bytes;
      ld.cur_seconds = it->second->seconds;
    }
    d.links.push_back(ld);
  }
  for (const auto& [k, c] : clink) {
    if (blink.count(k) != 0) continue;
    ReportDiff::LinkDelta ld;
    ld.src = std::get<0>(k);
    ld.dst = std::get<1>(k);
    ld.link = std::get<2>(k);
    ld.cur_bytes = c->bytes;
    ld.cur_seconds = c->seconds;
    d.links.push_back(ld);
  }
  return d;
}

std::vector<const ReportDiff::Row*> ranked_rows(const ReportDiff& d) {
  std::vector<const ReportDiff::Row*> out;
  out.reserve(d.rows.size());
  for (const auto& r : d.rows) out.push_back(&r);
  std::stable_sort(out.begin(), out.end(),
                   [](const ReportDiff::Row* a, const ReportDiff::Row* b) {
                     return std::abs(a->delta()) > std::abs(b->delta());
                   });
  return out;
}

std::string format_diff(const ReportDiff& d, std::size_t top) {
  std::ostringstream os;
  os << "makespan: " << util::fmt_time_us(d.base_total) << " -> "
     << util::fmt_time_us(d.cur_total) << "  (" << fmt_signed_us(d.delta())
     << " us";
  if (d.base_total > 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, ", %+.2f%%", d.delta_pct());
    os << buf;
  }
  os << ")\n";

  if (d.structural_change()) {
    os << "\nstructural changes (schedule shape, not time drift):\n";
    for (const auto& s : d.structural) os << "  - " << s << "\n";
  }

  os << "\ncategory attribution (current - baseline):\n";
  {
    util::Table t({"category", "base(us)", "cur(us)", "delta(us)"});
    for (int c = 0; c < kNumCategories; ++c) {
      const auto cat = static_cast<Category>(c);
      if (d.base_by_category[cat] == 0.0 && d.cur_by_category[cat] == 0.0) {
        continue;
      }
      t.add_row({to_string(cat),
                 util::fmt_double(d.base_by_category[cat] * 1e6, 2),
                 util::fmt_double(d.cur_by_category[cat] * 1e6, 2),
                 fmt_signed_us(d.by_category[cat])});
    }
    t.print(os);
  }

  const auto ranked = ranked_rows(d);
  const std::size_t limit =
      top == 0 ? ranked.size() : std::min(top, ranked.size());
  os << "\nranked attribution -- what got slower and where (top "
     << limit << " of " << ranked.size() << " rows):\n";
  {
    util::Table t({"#", "stage", "crit-dev", "category", "base(us)",
                   "cur(us)", "delta(us)"});
    for (std::size_t i = 0; i < limit; ++i) {
      const auto* r = ranked[i];
      if (r->delta() == 0.0) break;
      t.add_row({std::to_string(i + 1),
                 r->stage + (r->structural ? " *" : ""),
                 r->device < 0 ? "-" : std::to_string(r->device),
                 to_string(r->category),
                 util::fmt_double(r->base_seconds * 1e6, 2),
                 util::fmt_double(r->cur_seconds * 1e6, 2),
                 fmt_signed_us(r->delta())});
    }
    t.print(os);
    os << "(* = stage present in only one report; rows telescope exactly: "
          "Sigma delta == makespan delta)\n";
  }

  bool any_dev = false;
  for (const auto& dd : d.devices) {
    if (dd.busy_delta() != 0.0 || dd.cur_idle != dd.base_idle) {
      any_dev = true;
      break;
    }
  }
  if (any_dev) {
    os << "\nper-engine busy drift:\n";
    util::Table t({"device", "engine", "busy delta(us)", "idle delta(us)"});
    for (const auto& dd : d.devices) {
      if (dd.busy_delta() == 0.0 && dd.cur_idle == dd.base_idle) continue;
      t.add_row({std::to_string(dd.device), dd.engine,
                 fmt_signed_us(dd.busy_delta()),
                 fmt_signed_us(dd.cur_idle - dd.base_idle)});
    }
    t.print(os);
  }

  bool any_link = false;
  for (const auto& l : d.links) {
    if (l.delta() != 0.0) {
      any_link = true;
      break;
    }
  }
  if (any_link) {
    os << "\nper-link drift:\n";
    util::Table t({"src", "dst", "link", "bytes delta", "delta(us)"});
    for (const auto& l : d.links) {
      if (l.delta() == 0.0) continue;
      const auto bytes_delta = static_cast<std::int64_t>(l.cur_bytes) -
                               static_cast<std::int64_t>(l.base_bytes);
      t.add_row({l.src < 0 ? "-" : std::to_string(l.src),
                 l.dst < 0 ? "-" : std::to_string(l.dst), l.link,
                 (bytes_delta >= 0 ? "+" : "") + std::to_string(bytes_delta),
                 fmt_signed_us(l.delta())});
    }
    t.print(os);
  }
  return os.str();
}

void write_diff_json(std::ostream& os, const ReportDiff& d) {
  os << "{\n\"schema\":\"mgs-perf-diff-v1\"";
  os << ",\n\"base_total\":" << json_double(d.base_total);
  os << ",\"cur_total\":" << json_double(d.cur_total);
  os << ",\"delta\":" << json_double(d.delta());
  os << ",\n\"by_category\":{";
  for (int c = 0; c < kNumCategories; ++c) {
    if (c != 0) os << ",";
    const auto cat = static_cast<Category>(c);
    os << "\"" << to_string(cat) << "\":" << json_double(d.by_category[cat]);
  }
  os << "},\n\"structural\":[";
  for (std::size_t i = 0; i < d.structural.size(); ++i) {
    os << (i ? "," : "") << "\"" << json_escape(d.structural[i]) << "\"";
  }
  os << "],\n\"rows\":[";
  const auto ranked = ranked_rows(d);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const auto* r = ranked[i];
    os << (i ? "," : "") << "\n{\"stage\":\"" << json_escape(r->stage)
       << "\",\"category\":\"" << to_string(r->category)
       << "\",\"device\":" << r->device
       << ",\"base\":" << json_double(r->base_seconds)
       << ",\"cur\":" << json_double(r->cur_seconds)
       << ",\"delta\":" << json_double(r->delta())
       << ",\"structural\":" << (r->structural ? "true" : "false") << "}";
  }
  os << "],\n\"devices\":[";
  for (std::size_t i = 0; i < d.devices.size(); ++i) {
    const auto& dd = d.devices[i];
    os << (i ? "," : "") << "\n{\"device\":" << dd.device << ",\"engine\":\""
       << dd.engine << "\",\"base_busy\":" << json_double(dd.base_busy)
       << ",\"cur_busy\":" << json_double(dd.cur_busy)
       << ",\"base_idle\":" << json_double(dd.base_idle)
       << ",\"cur_idle\":" << json_double(dd.cur_idle) << "}";
  }
  os << "],\n\"links\":[";
  for (std::size_t i = 0; i < d.links.size(); ++i) {
    const auto& l = d.links[i];
    os << (i ? "," : "") << "\n{\"src\":" << l.src << ",\"dst\":" << l.dst
       << ",\"link\":\"" << json_escape(l.link)
       << "\",\"base_bytes\":" << l.base_bytes
       << ",\"cur_bytes\":" << l.cur_bytes
       << ",\"base\":" << json_double(l.base_seconds)
       << ",\"cur\":" << json_double(l.cur_seconds) << "}";
  }
  os << "]\n}\n";
}

}  // namespace mgs::obs
