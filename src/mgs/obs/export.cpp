#include "mgs/obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

namespace mgs::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

namespace {

void write_notes_json(std::ostream& os, const SpanRecord& s) {
  os << "[";
  bool first = true;
  for (const auto& [k, v] : s.notes) {
    if (!first) os << ",";
    first = false;
    os << "[\"" << json_escape(k) << "\",\"" << json_escape(v) << "\"]";
  }
  os << "]";
}

void write_labels_json(std::ostream& os, const LabelSet& labels) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
  }
  os << "}";
}

void write_categories_json(std::ostream& os, const CategorySeconds& cs) {
  os << "{";
  for (int c = 0; c < kNumCategories; ++c) {
    if (c != 0) os << ",";
    os << "\"" << to_string(static_cast<Category>(c))
       << "\":" << json_double(cs.seconds[static_cast<std::size_t>(c)]);
  }
  os << "}";
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<SpanRecord>& spans) {
  write_chrome_trace(os, spans, MetricsSnapshot{});
}

namespace {

/// One Perfetto counter sample ("C" event; tracks are keyed by name).
void emit_counter_sample(std::ostream& os, bool& first,
                         const std::string& track, double ts_us,
                         double value) {
  if (!first) os << ",";
  first = false;
  os << "\n{\"name\":\"" << json_escape(track)
     << "\",\"ph\":\"C\",\"pid\":0,\"ts\":" << json_double(ts_us)
     << ",\"args\":{\"value\":" << json_double(value) << "}}";
}

/// The transfer kind a span's bytes count toward (the label the
/// transfer_bytes{kind=...} counter uses).
const char* transfer_kind(const SpanRecord& s) {
  if (s.kind == SpanKind::kCollective) return "mpi";
  switch (s.category) {
    case Category::kP2P: return "p2p";
    case Category::kHostStaged: return "host-staged";
    case Category::kMpi: return "mpi";
    default: return nullptr;
  }
}

std::string metric_track_name(const MetricValue& m, const char* suffix) {
  std::string name = m.name + suffix;
  if (!m.labels.empty()) {
    name += "{";
    bool first = true;
    for (const auto& [k, v] : m.labels) {
      name += (first ? "" : ",") + k + "=" + v;
      first = false;
    }
    name += "}";
  }
  return name;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<SpanRecord>& spans,
                        const MetricsSnapshot& metrics) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  // DMA-engine spans render on their own track per device (tid offset by
  // kDmaTidOffset) so the viewer shows copies overlapping kernels.
  constexpr int kDmaTidOffset = 1000;
  const auto is_dma = [](const SpanRecord& s) {
    for (const auto& [k, v] : s.notes) {
      if (k == "engine") return v == "dma";
    }
    return false;
  };
  std::set<int> tids;
  for (const SpanRecord& s : spans) {
    const int tid = s.device + (is_dma(s) ? kDmaTidOffset : 0);
    tids.insert(tid);
    if (!first) os << ",";
    first = false;
    const double us = s.start_seconds * 1e6;
    const double dur = s.duration() * 1e6;
    os << "\n{\"name\":\"" << json_escape(s.name) << "\",\"cat\":\""
       << to_string(s.category) << "\",\"pid\":0,\"tid\":" << tid;
    if (dur > 0.0) {
      os << ",\"ph\":\"X\",\"ts\":" << json_double(us)
         << ",\"dur\":" << json_double(dur);
    } else {
      os << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << json_double(us);
    }
    os << ",\"args\":{\"kind\":\"" << to_string(s.kind)
       << "\",\"id\":" << s.id << ",\"parent\":" << s.parent;
    if (s.bytes != 0) os << ",\"bytes\":" << s.bytes;
    if (s.src_device >= 0) os << ",\"src_device\":" << s.src_device;
    for (const auto& [k, v] : s.notes) {
      os << ",\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
    }
    os << "}}";
  }
  for (const int t : tids) {
    if (!first) os << ",";
    first = false;
    const int d = t >= kDmaTidOffset ? t - kDmaTidOffset : t;
    std::string name = d < 0 ? std::string("host") : "dev" + std::to_string(d);
    if (t >= kDmaTidOffset) name += " dma";
    os << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << t
       << ",\"args\":{\"name\":\"" << name << "\"}}";
  }

  // Perfetto counter tracks. Transfer bytes are reconstructed over time
  // from the span ends (each transfer/collective completion bumps its
  // kind's cumulative track); metric series without simulated timestamps
  // (plan-cache counters/gauges, histogram totals) render as start->end
  // step tracks so the viewer still shows their final magnitude.
  double window_start = 0.0, window_end = 0.0;
  for (const SpanRecord& s : spans) {
    window_start = std::min(window_start, s.start_seconds);
    window_end = std::max(window_end, s.end_seconds);
  }
  std::map<std::string, std::vector<std::pair<double, std::uint64_t>>>
      by_kind;
  for (const SpanRecord& s : spans) {
    if (s.bytes == 0 ||
        (s.kind != SpanKind::kTransfer && s.kind != SpanKind::kCollective)) {
      continue;
    }
    if (const char* kind = transfer_kind(s)) {
      by_kind[kind].emplace_back(s.end_seconds, s.bytes);
    }
  }
  for (auto& [kind, events] : by_kind) {
    std::sort(events.begin(), events.end());
    const std::string track = "transfer_bytes[" + kind + "]";
    emit_counter_sample(os, first, track, window_start * 1e6, 0.0);
    double cum = 0.0;
    for (const auto& [end_seconds, bytes] : events) {
      cum += static_cast<double>(bytes);
      emit_counter_sample(os, first, track, end_seconds * 1e6, cum);
    }
  }
  for (const MetricValue& m : metrics) {
    if (m.type == MetricType::kHistogram) {
      emit_counter_sample(os, first, metric_track_name(m, "_count"),
                          window_start * 1e6, 0.0);
      emit_counter_sample(os, first, metric_track_name(m, "_count"),
                          window_end * 1e6, static_cast<double>(m.count));
      emit_counter_sample(os, first, metric_track_name(m, "_sum"),
                          window_start * 1e6, 0.0);
      emit_counter_sample(os, first, metric_track_name(m, "_sum"),
                          window_end * 1e6, m.value);
    } else if (m.name.rfind("plan_cache", 0) == 0) {
      emit_counter_sample(os, first, metric_track_name(m, ""),
                          window_start * 1e6, 0.0);
      emit_counter_sample(os, first, metric_track_name(m, ""),
                          window_end * 1e6, m.value);
    }
  }
  os << "\n]}\n";
}

void write_prometheus(std::ostream& os, const MetricsSnapshot& snap) {
  std::string last_name;
  for (const MetricValue& m : snap) {
    const std::string name = "mgs_" + m.name;
    if (m.name != last_name) {
      os << "# TYPE " << name << " " << to_string(m.type) << "\n";
      last_name = m.name;
    }
    std::string labels;
    for (const auto& [k, v] : m.labels) {
      labels += labels.empty() ? "" : ",";
      labels += k + "=\"" + json_escape(v) + "\"";
    }
    if (m.type == MetricType::kHistogram) {
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < m.buckets.size(); ++b) {
        cum += m.buckets[b];
        const std::string le =
            b < m.bounds.size() ? json_double(m.bounds[b]) : "+Inf";
        os << name << "_bucket{" << labels << (labels.empty() ? "" : ",")
           << "le=\"" << le << "\"} " << cum << "\n";
      }
      os << name << "_sum" << (labels.empty() ? "" : "{" + labels + "}")
         << " " << json_double(m.value) << "\n";
      os << name << "_count" << (labels.empty() ? "" : "{" + labels + "}")
         << " " << m.count << "\n";
    } else {
      os << name << (labels.empty() ? "" : "{" + labels + "}") << " "
         << json_double(m.value) << "\n";
    }
  }
}

void write_run_report(std::ostream& os, const RunInfo& info,
                      const MetricsSnapshot& metrics,
                      const std::vector<SpanRecord>& spans,
                      const CriticalPathReport& cp) {
  os << "{\n\"schema\":\"mgs-run-report-v1\",\n\"run\":{";
  os << "\"executor\":\"" << json_escape(info.executor) << "\"";
  os << ",\"dtype\":\"" << json_escape(info.dtype) << "\"";
  os << ",\"op\":\"" << json_escape(info.op) << "\"";
  os << ",\"n\":" << info.n;
  os << ",\"devices\":" << info.devices;
  os << ",\"seconds\":" << json_double(info.seconds);
  os << ",\"payload_bytes\":" << info.payload_bytes;
  os << ",\"breakdown\":{";
  bool first = true;
  for (const auto& [phase, secs] : info.breakdown) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(phase) << "\":" << json_double(secs);
  }
  os << "},\"faults\":{";
  first = true;
  for (const auto& [name, count] : info.fault_counters) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << count;
  }
  os << "}},\n\"metrics\":[";
  first = true;
  for (const MetricValue& m : metrics) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(m.name) << "\",\"type\":\""
       << to_string(m.type) << "\",\"labels\":";
    write_labels_json(os, m.labels);
    os << ",\"value\":" << json_double(m.value);
    if (m.type == MetricType::kHistogram) {
      os << ",\"count\":" << m.count << ",\"bounds\":[";
      for (std::size_t i = 0; i < m.bounds.size(); ++i) {
        os << (i ? "," : "") << json_double(m.bounds[i]);
      }
      os << "],\"buckets\":[";
      for (std::size_t i = 0; i < m.buckets.size(); ++i) {
        os << (i ? "," : "") << m.buckets[i];
      }
      os << "]";
    }
    os << "}";
  }
  os << "],\n\"spans\":[";
  first = true;
  for (const SpanRecord& s : spans) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"id\":" << s.id << ",\"parent\":" << s.parent
       << ",\"name\":\"" << json_escape(s.name) << "\",\"kind\":\""
       << to_string(s.kind) << "\",\"category\":\"" << to_string(s.category)
       << "\",\"device\":" << s.device << ",\"src_device\":" << s.src_device
       << ",\"start\":" << json_double(s.start_seconds)
       << ",\"end\":" << json_double(s.end_seconds);
    if (s.bytes != 0) os << ",\"bytes\":" << s.bytes;
    if (s.alu_ops != 0) os << ",\"alu_ops\":" << s.alu_ops;
    if (s.occupancy != 0.0) {
      os << ",\"occupancy\":" << json_double(s.occupancy);
    }
    if (!s.notes.empty()) {
      os << ",\"notes\":";
      write_notes_json(os, s);
    }
    os << "}";
  }
  os << "],\n\"critical_path\":{";
  os << "\"start\":" << json_double(cp.start_seconds)
     << ",\"end\":" << json_double(cp.end_seconds)
     << ",\"total\":" << json_double(cp.total_seconds) << ",\"by_category\":";
  write_categories_json(os, cp.by_category);
  os << ",\"stages\":[";
  first = true;
  for (const auto& st : cp.stages) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(st.name)
       << "\",\"start\":" << json_double(st.start_seconds)
       << ",\"end\":" << json_double(st.end_seconds)
       << ",\"critical_device\":" << st.critical_device << ",\"by_category\":";
    write_categories_json(os, st.by_category);
    os << "}";
  }
  os << "],\"devices\":[";
  first = true;
  for (const auto& d : cp.devices) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"device\":" << d.device << ",\"engine\":\"" << d.engine
       << "\",\"busy\":";
    write_categories_json(os, d.busy);
    os << ",\"idle\":" << json_double(d.idle_seconds) << "}";
  }
  os << "],\"links\":[";
  first = true;
  for (const auto& l : cp.links) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"src\":" << l.src << ",\"dst\":" << l.dst << ",\"link\":\""
       << json_escape(l.link) << "\",\"transfers\":" << l.transfers
       << ",\"bytes\":" << l.bytes
       << ",\"seconds\":" << json_double(l.seconds) << "}";
  }
  os << "]}\n}\n";
}

}  // namespace mgs::obs
