#include "mgs/obs/trend.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "mgs/obs/export.hpp"
#include "mgs/util/table.hpp"

namespace mgs::obs {

namespace {

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(),
                   v.begin() + static_cast<std::ptrdiff_t>(mid - 1),
                   v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (v[mid - 1] + hi);
}

/// Median absolute deviation scaled to a sigma-equivalent (1.4826 is the
/// consistency constant for normally distributed jitter).
double scaled_mad(const std::vector<double>& v, double median) {
  std::vector<double> dev;
  dev.reserve(v.size());
  for (double x : v) dev.push_back(std::abs(x - median));
  return 1.4826 * median_of(std::move(dev));
}

/// Largest-|delta| breakdown phase across a step, history-top style.
std::string top_mover_between(const HistoryEntry& prev,
                              const HistoryEntry& cur) {
  if (prev.breakdown.empty() && cur.breakdown.empty()) return "-";
  std::map<std::string, double> p(prev.breakdown.begin(),
                                  prev.breakdown.end());
  std::map<std::string, double> c(cur.breakdown.begin(), cur.breakdown.end());
  std::string mover = "-";
  double mover_delta = 0.0;
  for (const auto& [phase, secs] : c) {
    const double d = secs - (p.count(phase) != 0 ? p.at(phase) : 0.0);
    if (std::abs(d) > std::abs(mover_delta)) {
      mover_delta = d;
      mover = phase;
    }
  }
  for (const auto& [phase, secs] : p) {
    if (c.count(phase) != 0) continue;
    if (std::abs(secs) > std::abs(mover_delta)) {
      mover_delta = -secs;
      mover = phase;
    }
  }
  if (mover == "-") return mover;
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s (%+.2f us)", mover.c_str(),
                mover_delta * 1e6);
  return buf;
}

/// Greedy segmentation: walk the series left to right, compare the
/// leading-window median against the trailing-window median (trailing
/// never reaches past the previous change-point, so one step is reported
/// once, at its first offending label), and restart the regime at every
/// flagged index.
std::vector<ChangePoint> detect(const std::vector<HistoryEntry>& pts,
                                const TrendOptions& opt) {
  std::vector<ChangePoint> out;
  const std::size_t m = pts.size();
  const auto w = static_cast<std::size_t>(std::max(1, opt.window));
  std::size_t seg_start = 0;
  for (std::size_t i = 1; i < m; ++i) {
    const std::size_t lo = std::max(seg_start, i >= w ? i - w : 0);
    std::vector<double> before, after;
    for (std::size_t j = lo; j < i; ++j) before.push_back(pts[j].seconds);
    for (std::size_t j = i; j < std::min(m, i + w); ++j) {
      after.push_back(pts[j].seconds);
    }
    const double mb = median_of(before);
    const double ma = median_of(after);
    const double noise = opt.mad_k * scaled_mad(before, mb);
    const double threshold = std::max(opt.min_effect * mb, noise);
    if (threshold <= 0.0) continue;
    // Both the regime medians and the candidate point itself must clear
    // the threshold: the flag names the first label that actually moved.
    if (std::abs(ma - mb) <= threshold) continue;
    if (std::abs(pts[i].seconds - mb) <= threshold) continue;
    ChangePoint cp;
    cp.index = i;
    cp.label = pts[i].label;
    cp.prev_label = pts[i - 1].label;
    cp.before = mb;
    cp.after = ma;
    cp.noise_floor = noise;
    cp.regression = ma > mb;
    cp.top_mover = top_mover_between(pts[i - 1], pts[i]);
    out.push_back(std::move(cp));
    seg_start = i;
  }
  return out;
}

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string us(double seconds, int precision = 2) {
  return util::fmt_double(seconds * 1e6, precision);
}

std::string fmt_pct(double pct) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", pct);
  return buf;
}

}  // namespace

std::vector<HistoryEntry> dedup_entries(const std::vector<HistoryEntry>& in) {
  std::vector<HistoryEntry> out;
  std::map<std::string, std::size_t> slot;  // (key, label) -> out index
  for (const auto& e : in) {
    const std::string id = e.key.str() + '\n' + e.label;
    if (const auto it = slot.find(id); it != slot.end()) {
      out[it->second] = e;  // latest entry wins, position stays first-seen
    } else {
      slot.emplace(id, out.size());
      out.push_back(e);
    }
  }
  return out;
}

std::vector<KeyTrend> analyze_trends(const std::vector<HistoryEntry>& entries,
                                     const TrendOptions& opt) {
  const auto deduped = dedup_entries(entries);
  std::map<std::string, KeyTrend> by_key;  // lexicographic key order
  for (const auto& e : deduped) {
    KeyTrend& t = by_key[e.key.str()];
    t.key = e.key;
    t.points.push_back(e);
  }
  std::vector<KeyTrend> out;
  out.reserve(by_key.size());
  for (auto& [_, t] : by_key) {
    t.changes = detect(t.points, opt);
    out.push_back(std::move(t));
  }
  return out;
}

void acknowledge(std::vector<KeyTrend>& trends,
                 const std::vector<std::string>& acks) {
  const std::set<std::string> set(acks.begin(), acks.end());
  for (auto& t : trends) {
    for (auto& cp : t.changes) {
      if (set.count(cp.label) != 0) cp.acknowledged = true;
    }
  }
}

bool has_unacknowledged_regression(const std::vector<KeyTrend>& trends) {
  for (const auto& t : trends) {
    for (const auto& cp : t.changes) {
      if (cp.regression && !cp.acknowledged) return true;
    }
  }
  return false;
}

RunReport report_from_entry(const HistoryEntry& e) {
  RunReport rep;
  rep.run.executor = e.key.executor;
  rep.run.dtype = e.key.dtype;
  rep.run.op = e.key.op;
  rep.run.n = e.key.n;
  rep.run.devices = e.key.devices;
  rep.run.seconds = e.seconds;
  rep.run.payload_bytes = e.payload_bytes;
  rep.run.breakdown = e.breakdown;
  auto& cp = rep.critical_path;
  cp.start_seconds = 0.0;
  cp.end_seconds = e.seconds;
  cp.total_seconds = e.seconds;
  cp.by_category = e.by_category;
  if (cp.by_category.total() == 0.0 && e.seconds > 0.0) {
    cp.by_category[Category::kOther] = e.seconds;  // untraced entry
  }
  double at = 0.0;
  for (const auto& [phase, secs] : e.breakdown) {
    CriticalPathReport::StageRow row;
    row.name = phase;
    row.start_seconds = at;
    row.end_seconds = at + secs;
    // The store keeps per-stage durations but not their category split;
    // the duration lands in "other" so diff rows still telescope exactly.
    row.by_category[Category::kOther] = secs;
    at += secs;
    cp.stages.push_back(std::move(row));
  }
  return rep;
}

std::string format_trends(const std::vector<KeyTrend>& trends,
                          const TrendOptions& opt) {
  std::ostringstream os;
  {
    util::Table t({"config", "runs", "first", "latest(us)", "trend",
                   "change-points"});
    for (const auto& tr : trends) {
      if (tr.points.empty()) continue;
      const double first = tr.points.front().seconds;
      const double latest = tr.points.back().seconds;
      int regressions = 0, improvements = 0;
      for (const auto& cp : tr.changes) {
        (cp.regression ? regressions : improvements) += 1;
      }
      std::string cps = "none";
      if (!tr.changes.empty()) {
        cps = std::to_string(regressions) + " regression(s), " +
              std::to_string(improvements) + " improvement(s)";
      }
      t.add_row({tr.key.str(), std::to_string(tr.points.size()),
                 tr.points.front().label.empty() ? "-"
                                                 : tr.points.front().label,
                 us(latest, 1),
                 fmt_pct(first > 0.0 ? (latest / first - 1.0) * 100.0 : 0.0),
                 cps});
    }
    t.print(os);
  }
  int unacked = 0;
  for (const auto& tr : trends) {
    for (const auto& cp : tr.changes) {
      os << "\n" << (cp.regression ? "REGRESSION" : "improvement") << " @ "
         << (cp.label.empty() ? "?" : cp.label) << "  " << tr.key.str()
         << "\n  " << us(cp.before) << " -> " << us(cp.after) << " us ("
         << fmt_pct(cp.step_pct()) << "), noise floor " << us(cp.noise_floor)
         << " us, after " << (cp.prev_label.empty() ? "?" : cp.prev_label)
         << ", top mover " << cp.top_mover
         << (cp.acknowledged ? "  [acknowledged]" : "") << "\n";
      if (cp.regression && !cp.acknowledged) ++unacked;
    }
  }
  os << "\ntrend: ";
  if (unacked > 0) {
    os << unacked << " unacknowledged regression change-point(s) "
       << "(acknowledge an intentional change with --ack LABEL or a line "
       << "in the ack file)\n";
  } else {
    os << "OK -- no unacknowledged regressions (" << trends.size()
       << " configs, window " << opt.window << ", min effect "
       << fmt_pct(opt.min_effect * 100.0).substr(1) << ")\n";
  }
  return os.str();
}

void write_trend_json(std::ostream& os, const std::vector<KeyTrend>& trends,
                      const TrendOptions& opt) {
  os << "{\n\"schema\":\"mgs-perf-trend-v1\"";
  os << ",\n\"options\":{\"window\":" << opt.window
     << ",\"min_effect\":" << json_double(opt.min_effect)
     << ",\"mad_k\":" << json_double(opt.mad_k) << "}";
  int unacked = 0;
  os << ",\n\"keys\":[";
  for (std::size_t k = 0; k < trends.size(); ++k) {
    const auto& t = trends[k];
    os << (k ? "," : "") << "\n{\"key\":{\"executor\":\""
       << json_escape(t.key.executor) << "\",\"dtype\":\""
       << json_escape(t.key.dtype) << "\",\"op\":\"" << json_escape(t.key.op)
       << "\",\"pipeline\":\"" << json_escape(t.key.pipeline)
       << "\",\"n\":" << t.key.n << ",\"g\":" << t.key.g
       << ",\"devices\":" << t.key.devices << "}";
    os << ",\"labels\":[";
    for (std::size_t i = 0; i < t.points.size(); ++i) {
      os << (i ? "," : "") << "\"" << json_escape(t.points[i].label) << "\"";
    }
    os << "],\"seconds\":[";
    for (std::size_t i = 0; i < t.points.size(); ++i) {
      os << (i ? "," : "") << json_double(t.points[i].seconds);
    }
    os << "],\"change_points\":[";
    for (std::size_t i = 0; i < t.changes.size(); ++i) {
      const auto& cp = t.changes[i];
      if (cp.regression && !cp.acknowledged) ++unacked;
      os << (i ? "," : "") << "{\"index\":" << cp.index << ",\"label\":\""
         << json_escape(cp.label) << "\",\"prev_label\":\""
         << json_escape(cp.prev_label)
         << "\",\"before\":" << json_double(cp.before)
         << ",\"after\":" << json_double(cp.after)
         << ",\"step_pct\":" << json_double(cp.step_pct())
         << ",\"noise_floor\":" << json_double(cp.noise_floor)
         << ",\"regression\":" << (cp.regression ? "true" : "false")
         << ",\"acknowledged\":" << (cp.acknowledged ? "true" : "false")
         << ",\"top_mover\":\"" << json_escape(cp.top_mover) << "\"}";
    }
    os << "]}";
  }
  os << "],\n\"unacknowledged_regressions\":" << unacked << "\n}\n";
}

namespace {

/// One sparkline SVG: the series polyline, a p50..p95 band, a hoverable
/// dot per point (native <title> tooltips -- no scripts) and a marker per
/// change-point. Classes "spark" and "cp-marker" are the stable hooks the
/// tests count.
void write_sparkline(std::ostream& os, const KeyTrend& t, double p50,
                     double p95) {
  const int W = 640, H = 120, pad = 10;
  const std::size_t m = t.points.size();
  double lo = p50, hi = p95;
  for (const auto& p : t.points) {
    lo = std::min(lo, p.seconds);
    hi = std::max(hi, p.seconds);
  }
  if (hi <= lo) hi = lo + (lo > 0.0 ? 0.05 * lo : 1.0);
  const double margin = 0.08 * (hi - lo);
  lo -= margin;
  hi += margin;
  const auto x = [&](std::size_t i) {
    return m <= 1 ? W / 2.0
                  : pad + static_cast<double>(i) * (W - 2.0 * pad) /
                              static_cast<double>(m - 1);
  };
  const auto y = [&](double v) {
    return H - pad - (v - lo) * (H - 2.0 * pad) / (hi - lo);
  };
  char buf[256];
  os << "<svg class=\"spark\" viewBox=\"0 0 " << W << " " << H
     << "\" width=\"" << W << "\" height=\"" << H
     << "\" role=\"img\" aria-label=\"makespan trend for "
     << html_escape(t.key.str()) << "\">\n";
  // p50..p95 band + dashed bounds (recessive, behind the series).
  std::snprintf(buf, sizeof buf,
                "<rect class=\"band\" x=\"%d\" y=\"%.1f\" width=\"%d\" "
                "height=\"%.1f\"/>\n",
                pad, y(p95), W - 2 * pad, std::max(0.0, y(p50) - y(p95)));
  os << buf;
  for (const double q : {p50, p95}) {
    std::snprintf(buf, sizeof buf,
                  "<line class=\"qline\" x1=\"%d\" y1=\"%.1f\" x2=\"%d\" "
                  "y2=\"%.1f\"/>\n",
                  pad, y(q), W - pad, y(q));
    os << buf;
  }
  // The series.
  os << "<polyline class=\"series\" points=\"";
  for (std::size_t i = 0; i < m; ++i) {
    std::snprintf(buf, sizeof buf, "%s%.1f,%.1f", i ? " " : "", x(i),
                  y(t.points[i].seconds));
    os << buf;
  }
  os << "\"/>\n";
  // Change-point markers first so the hover dots stay on top.
  for (const auto& cp : t.changes) {
    os << "<g class=\"cp-marker" << (cp.acknowledged ? " ack" : "")
       << (cp.regression ? "" : " improvement") << "\">";
    std::snprintf(buf, sizeof buf,
                  "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\"/>"
                  "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"6\"/>",
                  x(cp.index), pad, x(cp.index), H - pad, x(cp.index),
                  y(t.points[cp.index].seconds));
    os << buf << "<title>" << html_escape(cp.label) << ": "
       << us(cp.before) << " -> " << us(cp.after) << " us ("
       << fmt_pct(cp.step_pct()) << ")"
       << (cp.acknowledged ? " [acknowledged]" : "") << "</title></g>\n";
  }
  for (std::size_t i = 0; i < m; ++i) {
    std::snprintf(buf, sizeof buf,
                  "<circle class=\"dot\" cx=\"%.1f\" cy=\"%.1f\" r=\"4\">",
                  x(i), y(t.points[i].seconds));
    os << buf << "<title>" << html_escape(t.points[i].label) << ": "
       << us(t.points[i].seconds) << " us</title></circle>\n";
  }
  // Direct label on the latest point; first/last labels on the x axis.
  std::snprintf(buf, sizeof buf,
                "<text class=\"vlabel\" x=\"%.1f\" y=\"%.1f\">%s us</text>\n",
                std::min<double>(x(m - 1), W - 4),
                std::max<double>(pad + 10, y(t.points[m - 1].seconds) - 8),
                us(t.points[m - 1].seconds).c_str());
  os << buf;
  os << "<text class=\"alabel\" x=\"" << pad << "\" y=\"" << (H - 1)
     << "\">" << html_escape(t.points.front().label) << "</text>";
  os << "<text class=\"alabel end\" x=\"" << (W - pad) << "\" y=\""
     << (H - 1) << "\">" << html_escape(t.points.back().label)
     << "</text>\n";
  os << "</svg>\n";
}

/// Embedded diff table for one flagged step, from diff_reports over the
/// two sides' reconstituted reports. Every non-zero row is printed and
/// the footer states the telescoping check with both sums, so the exact
/// invariant is visible (and test-able) in the artifact itself.
void write_step_diff(std::ostream& os, const KeyTrend& t,
                     const ChangePoint& cp) {
  const RunReport base = report_from_entry(t.points[cp.index - 1]);
  const RunReport cur = report_from_entry(t.points[cp.index]);
  const ReportDiff d = diff_reports(base, cur);
  double row_sum = 0.0;
  for (const auto& r : d.rows) row_sum += r.delta();
  os << "<table class=\"diff\"><thead><tr><th>stage</th><th>category</th>"
     << "<th>base (us)</th><th>current (us)</th><th>delta (us)</th></tr>"
     << "</thead><tbody>\n";
  for (const auto* r : ranked_rows(d)) {
    if (r->delta() == 0.0) continue;
    os << "<tr><td>" << html_escape(r->stage)
       << (r->structural ? " *" : "") << "</td><td>"
       << to_string(r->category) << "</td><td class=\"num\">"
       << us(r->base_seconds) << "</td><td class=\"num\">"
       << us(r->cur_seconds) << "</td><td class=\"num\">"
       << (r->delta() >= 0 ? "+" : "") << us(r->delta())
       << "</td></tr>\n";
  }
  os << "</tbody><tfoot><tr><td colspan=\"4\">&Sigma; row deltas (exact "
     << "telescoping)</td><td class=\"num\">" << (row_sum >= 0 ? "+" : "")
     << us(row_sum) << " == " << (d.delta() >= 0 ? "+" : "")
     << us(d.delta()) << "</td></tr></tfoot></table>\n";
  if (d.structural_change()) {
    os << "<ul class=\"structural\">";
    for (const auto& s : d.structural) {
      os << "<li>" << html_escape(s) << "</li>";
    }
    os << "</ul>\n";
  }
}

const char* kDashboardCss = R"css(
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --surface-2: #f0efec;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --grid: #d8d7d2; --series-1: #2a78d6; --band: #cde2fb;
  --cp: #e34948; --ok: #008300;
  font: 14px/1.45 system-ui, sans-serif;
  background: var(--surface-1); color: var(--text-primary);
  max-width: 1080px; margin: 0 auto; padding: 16px 24px 48px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --surface-2: #383835;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #44443f; --series-1: #3987e5; --band: #104281;
    --cp: #e66767; --ok: #2da44e;
  }
}
.viz-root h1 { font-size: 22px; margin: 8px 0 2px; }
.viz-root h2 { font-size: 17px; margin: 28px 0 8px; }
.viz-root h3 { font-size: 14px; margin: 0 0 4px; font-weight: 600; }
.viz-root .meta { color: var(--text-secondary); margin: 0 0 8px; }
.viz-root .verdict { font-weight: 600; }
.viz-root .verdict.fail { color: var(--cp); }
.viz-root .verdict.ok { color: var(--ok); }
.viz-root table { border-collapse: collapse; margin: 6px 0 12px; }
.viz-root th, .viz-root td {
  text-align: left; padding: 3px 12px 3px 0;
  border-bottom: 1px solid var(--grid);
}
.viz-root td.num, .viz-root th.num { text-align: right; }
.viz-root tfoot td { color: var(--text-secondary); }
.key-card {
  border: 1px solid var(--grid); border-radius: 8px;
  padding: 10px 14px; margin: 10px 0;
}
.key-card.flagged { border-color: var(--cp); }
.key-card .stat { color: var(--text-secondary); margin: 0 0 4px; }
.spark { display: block; }
.spark .band { fill: var(--band); opacity: 0.45; }
.spark .qline {
  stroke: var(--text-secondary); stroke-width: 1;
  stroke-dasharray: 4 4; opacity: 0.6;
}
.spark .series {
  fill: none; stroke: var(--series-1); stroke-width: 2;
  stroke-linejoin: round; stroke-linecap: round;
}
.spark .dot { fill: var(--series-1); stroke: var(--surface-1); stroke-width: 2; }
.spark .cp-marker line { stroke: var(--cp); stroke-width: 1.5; stroke-dasharray: 3 3; }
.spark .cp-marker circle { fill: none; stroke: var(--cp); stroke-width: 2.5; }
.spark .cp-marker.ack line, .spark .cp-marker.ack circle { stroke: var(--text-secondary); }
.spark .cp-marker.improvement line, .spark .cp-marker.improvement circle { stroke: var(--ok); }
.spark .vlabel { fill: var(--text-primary); font-size: 12px; text-anchor: end; }
.spark .alabel { fill: var(--text-secondary); font-size: 10px; }
.spark .alabel.end { text-anchor: end; }
.step { border-left: 3px solid var(--cp); padding-left: 12px; margin: 14px 0; }
.step.ack { border-left-color: var(--text-secondary); }
.step .meta b { color: var(--text-primary); }
.structural { color: var(--text-secondary); }
details summary { cursor: pointer; color: var(--text-secondary); }
)css";

}  // namespace

void write_dashboard(std::ostream& os, const std::vector<KeyTrend>& trends,
                     const TrendOptions& opt, const std::string& title) {
  // Per-key p50/p95 from the same labeled-histogram machinery history
  // show uses, over the deduped points the sparklines plot.
  std::vector<HistoryEntry> flat;
  for (const auto& t : trends) {
    flat.insert(flat.end(), t.points.begin(), t.points.end());
  }
  std::map<std::string, KeySummary> summaries;
  for (auto& s : RunHistory::summarize(flat)) {
    summaries.emplace(s.key.str(), std::move(s));
  }
  int regressions = 0, improvements = 0, unacked = 0;
  std::size_t labels = 0;
  for (const auto& t : trends) {
    labels = std::max(labels, t.points.size());
    for (const auto& cp : t.changes) {
      (cp.regression ? regressions : improvements) += 1;
      if (cp.regression && !cp.acknowledged) ++unacked;
    }
  }

  os << "<!doctype html>\n<html lang=\"en\">\n<head>\n"
     << "<meta charset=\"utf-8\">\n"
     << "<meta name=\"viewport\" content=\"width=device-width, "
        "initial-scale=1\">\n"
     << "<title>" << html_escape(title) << "</title>\n<style>"
     << kDashboardCss << "</style>\n</head>\n<body>\n"
     << "<div class=\"viz-root\">\n<header>\n<h1>" << html_escape(title)
     << "</h1>\n<p class=\"meta\">" << trends.size()
     << " tracked configs &middot; up to " << labels
     << " labels per config &middot; detection window " << opt.window
     << ", min effect " << util::fmt_double(opt.min_effect * 100.0, 0)
     << "%, noise floor " << util::fmt_double(opt.mad_k, 1)
     << "&times;MAD</p>\n";
  if (unacked > 0) {
    os << "<p class=\"verdict fail\">&#9888; " << unacked
       << " unacknowledged regression change-point(s)</p>\n";
  } else {
    os << "<p class=\"verdict ok\">&#10003; no unacknowledged regressions ("
       << regressions << " acknowledged/none, " << improvements
       << " improvement(s))</p>\n";
  }
  os << "</header>\n";

  // Top movers: latest vs previous point per key, worst first.
  struct Mover {
    const KeyTrend* t;
    double delta_pct;
  };
  std::vector<Mover> movers;
  for (const auto& t : trends) {
    if (t.points.size() < 2) continue;
    const double prev = t.points[t.points.size() - 2].seconds;
    if (prev <= 0.0) continue;
    movers.push_back({&t, (t.points.back().seconds / prev - 1.0) * 100.0});
  }
  std::stable_sort(movers.begin(), movers.end(),
                   [](const Mover& a, const Mover& b) {
                     return a.delta_pct > b.delta_pct;
                   });
  if (!movers.empty()) {
    os << "<section>\n<h2>Top movers (latest vs previous)</h2>\n"
       << "<table><thead><tr><th>config</th><th class=\"num\">prev (us)"
       << "</th><th class=\"num\">latest (us)</th><th class=\"num\">delta"
       << "</th><th>top mover</th><th>labels</th></tr></thead><tbody>\n";
    for (const auto& mv : movers) {
      const auto& pts = mv.t->points;
      const auto& prev = pts[pts.size() - 2];
      const auto& latest = pts.back();
      os << "<tr><td>" << html_escape(mv.t->key.str())
         << "</td><td class=\"num\">" << us(prev.seconds, 1)
         << "</td><td class=\"num\">" << us(latest.seconds, 1)
         << "</td><td class=\"num\">" << fmt_pct(mv.delta_pct) << "</td><td>"
         << html_escape(top_mover_between(prev, latest)) << "</td><td>"
         << html_escape(prev.label) << " &rarr; "
         << html_escape(latest.label) << "</td></tr>\n";
    }
    os << "</tbody></table>\n</section>\n";
  }

  // One card per key: stat line, sparkline, table view of the series.
  os << "<section>\n<h2>Per-config trends</h2>\n";
  for (const auto& t : trends) {
    if (t.points.empty()) continue;
    bool flagged = false;
    for (const auto& cp : t.changes) {
      if (cp.regression && !cp.acknowledged) flagged = true;
    }
    const auto sit = summaries.find(t.key.str());
    const double p50 = sit != summaries.end() ? sit->second.p50 : 0.0;
    const double p95 = sit != summaries.end() ? sit->second.p95 : 0.0;
    const double first = t.points.front().seconds;
    const double latest = t.points.back().seconds;
    os << "<article class=\"key-card" << (flagged ? " flagged" : "")
       << "\">\n<h3>" << html_escape(t.key.str()) << "</h3>\n"
       << "<p class=\"stat\">" << t.points.size() << " runs &middot; latest "
       << us(latest) << " us &middot; p50 " << us(p50) << " &middot; p95 "
       << us(p95) << " &middot; trend "
       << fmt_pct(first > 0.0 ? (latest / first - 1.0) * 100.0 : 0.0)
       << " since " << html_escape(t.points.front().label) << "</p>\n";
    write_sparkline(os, t, p50, p95);
    os << "<details><summary>series (" << t.points.size()
       << " points)</summary><table><thead><tr><th>label</th>"
       << "<th class=\"num\">makespan (us)</th><th class=\"num\">vs prev"
       << "</th></tr></thead><tbody>\n";
    for (std::size_t i = 0; i < t.points.size(); ++i) {
      const double prev = i > 0 ? t.points[i - 1].seconds : 0.0;
      os << "<tr><td>" << html_escape(t.points[i].label)
         << "</td><td class=\"num\">" << us(t.points[i].seconds)
         << "</td><td class=\"num\">"
         << (i > 0 && prev > 0.0
                 ? fmt_pct((t.points[i].seconds / prev - 1.0) * 100.0)
                 : std::string("-"))
         << "</td></tr>\n";
    }
    os << "</tbody></table></details>\n</article>\n";
  }
  os << "</section>\n";

  // Flagged steps with the embedded exact-telescoping diff tables.
  bool any_step = false;
  for (const auto& t : trends) any_step |= !t.changes.empty();
  if (any_step) {
    os << "<section>\n<h2>Change-points</h2>\n";
    for (const auto& t : trends) {
      for (const auto& cp : t.changes) {
        os << "<article class=\"step" << (cp.acknowledged ? " ack" : "")
           << "\">\n<h3>" << html_escape(t.key.str()) << " &mdash; "
           << html_escape(cp.prev_label) << " &rarr; <b>"
           << html_escape(cp.label) << "</b> ("
           << fmt_pct(cp.step_pct()) << ")"
           << (cp.regression ? "" : " improvement")
           << (cp.acknowledged ? " [acknowledged]" : "") << "</h3>\n"
           << "<p class=\"meta\">regime median " << us(cp.before)
           << " &rarr; " << us(cp.after) << " us &middot; noise floor "
           << us(cp.noise_floor) << " us &middot; top mover <b>"
           << html_escape(cp.top_mover) << "</b></p>\n";
        if (cp.index > 0) write_step_diff(os, t, cp);
        os << "</article>\n";
      }
    }
    os << "</section>\n";
  }

  os << "<footer><p class=\"meta\">Generated by <code>mgs_perf dashboard"
     << "</code> from the chained NDJSON run history. Acknowledge an "
     << "intentional regression by adding its label to the ack file "
     << "(<code>bench_results/history_ack.txt</code>) or re-running the "
     << "gate with <code>--ack LABEL</code>.</p></footer>\n"
     << "</div>\n</body>\n</html>\n";
}

}  // namespace mgs::obs
