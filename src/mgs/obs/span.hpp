#pragma once
/// \file span.hpp
/// Hierarchical span tracing for simulated runs. A TraceSession collects
/// a DAG of spans -- run > plan/stage > kernel/transfer/collective, with
/// fault-recovery events as annotated children -- in *simulated* time.
/// Producers (simt::launch, topo::TransferEngine, msg::Communicator, the
/// core executors) consult TraceSession::current() and record only when a
/// session is installed, so the no-session path costs one branch per
/// event (the same guarantee the fault subsystem makes).
///
/// Parentage: the session keeps a stack of open spans on the orchestration
/// thread; a span opened (or a complete event added) while another span is
/// open becomes its child. Simulated clocks of different devices overlap
/// freely inside one parent -- nesting reflects the host-side call
/// structure, timestamps reflect the modeled timeline.

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "mgs/obs/metrics.hpp"

namespace mgs::obs {

enum class SpanKind {
  kRun,         ///< one ScanExecutor::run invocation
  kPlan,        ///< executor prepare(): plan lookup + placement
  kStage,       ///< bulk-synchronous phase (Stage1, AuxGather, ...)
  kKernel,      ///< one simt::launch
  kTransfer,    ///< one TransferEngine copy
  kCollective,  ///< one MPI-like collective / point-to-point op
  kFault,       ///< fault-recovery event (retry, reroute, re-plan, ...)
};

const char* to_string(SpanKind kind);

/// Makespan attribution category -- the axes of the paper's Figure 14.
enum class Category {
  kCompute,     ///< kernel execution
  kP2P,         ///< peer-to-peer PCIe traffic
  kHostStaged,  ///< D2H+H2D staged traffic (and device-local copies)
  kMpi,         ///< MPI messages, collectives and software overhead
  kIdle,        ///< waiting at a synchronization point
  kOther,       ///< everything else (plans, fault bookkeeping)
};

constexpr int kNumCategories = 6;

const char* to_string(Category c);
/// Inverse of to_string; kOther for unknown names.
Category category_from_string(const std::string& name);

struct SpanRecord {
  std::uint64_t id = 0;      ///< 1-based; 0 = invalid
  std::uint64_t parent = 0;  ///< 0 = root span
  std::string name;
  SpanKind kind = SpanKind::kStage;
  Category category = Category::kOther;
  int device = -1;      ///< primary device (transfers: destination)
  int src_device = -1;  ///< transfers: source endpoint
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t alu_ops = 0;
  double occupancy = 0.0;
  /// Free-form key/value annotations (plan describe, fault detail, ...).
  std::vector<std::pair<std::string, std::string>> notes;

  double duration() const { return end_seconds - start_seconds; }
};

class TraceSession {
 public:
  /// Installs this session as the process-wide current one; the
  /// constructor saves the previously installed session (if any) and the
  /// destructor restores it, so sessions nest like scopes.
  TraceSession();
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// The installed session, or nullptr -- the producers' single branch.
  static TraceSession* current() { return current_; }

  /// Open a span; it becomes a child of the innermost open span unless
  /// rec.parent is already set. Returns the span id for close_span.
  std::uint64_t open_span(SpanRecord rec);
  /// Close an open span at `end_seconds` (simulated). Out-of-order closes
  /// are tolerated (exception unwinding); the id must be open.
  void close_span(std::uint64_t id, double end_seconds);
  /// Record a complete span (start and end already known). Parent defaults
  /// to the innermost open span. Returns the id.
  std::uint64_t add_event(SpanRecord rec);
  /// Append a key/value note to a recorded span.
  void annotate(std::uint64_t id, std::string key, std::string value);

  /// Copy of every span in insertion order (open spans have end < start
  /// meaning "not closed yet"; exporters clamp).
  std::vector<SpanRecord> spans() const;
  std::size_t size() const;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::vector<std::uint64_t> stack_;  ///< ids of open spans, outermost first
  std::uint64_t next_id_ = 1;
  MetricsRegistry metrics_;
  TraceSession* prev_ = nullptr;
  static TraceSession* current_;
};

/// RAII span for scopes that may unwind: closes at the given end time, or
/// zero-length at the start time if the scope exits before close().
/// Inactive (all no-ops) when no session is installed.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  explicit ScopedSpan(SpanRecord rec) {
    if (TraceSession* ts = TraceSession::current()) {
      ts_ = ts;
      start_ = rec.start_seconds;
      id_ = ts->open_span(std::move(rec));
    }
  }
  ~ScopedSpan() {
    if (ts_ != nullptr && open_) ts_->close_span(id_, start_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& o) noexcept
      : ts_(o.ts_), id_(o.id_), start_(o.start_), open_(o.open_) {
    o.ts_ = nullptr;
  }
  ScopedSpan& operator=(ScopedSpan&& o) noexcept {
    if (this != &o) {
      if (ts_ != nullptr && open_) ts_->close_span(id_, start_);
      ts_ = o.ts_;
      id_ = o.id_;
      start_ = o.start_;
      open_ = o.open_;
      o.ts_ = nullptr;
    }
    return *this;
  }

  void close(double end_seconds) {
    if (ts_ != nullptr && open_) {
      ts_->close_span(id_, end_seconds);
      open_ = false;
    }
  }
  void annotate(std::string key, std::string value) {
    if (ts_ != nullptr) ts_->annotate(id_, std::move(key), std::move(value));
  }
  std::uint64_t id() const { return id_; }
  explicit operator bool() const { return ts_ != nullptr; }

 private:
  TraceSession* ts_ = nullptr;
  std::uint64_t id_ = 0;
  double start_ = 0.0;
  bool open_ = true;
};

/// Open a kStage span starting at simulated time `start` (inactive without
/// a session). Close with .close(phase_end) at the stage boundary -- the
/// same instant the breakdown entry uses, so stage spans tile the run
/// exactly like Figure 14's phases.
inline ScopedSpan open_stage(const char* name, double start,
                             int device = -1) {
  if (TraceSession::current() == nullptr) return ScopedSpan{};
  SpanRecord rec;
  rec.name = name;
  rec.kind = SpanKind::kStage;
  rec.category = Category::kOther;
  rec.device = device;
  rec.start_seconds = start;
  return ScopedSpan(std::move(rec));
}

/// Record a zero-duration kFault event under the innermost open span and
/// bump the matching `fault_events_total{kind=...}` counter. No-op without
/// a session. Used by the executors for degraded-placement re-plans; the
/// transfer/comm layers record their richer retry spans directly.
void note_fault(
    const std::string& name,
    std::initializer_list<std::pair<std::string, std::string>> notes,
    double at_seconds = 0.0, int device = -1);

}  // namespace mgs::obs
