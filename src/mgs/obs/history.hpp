#pragma once
/// \file history.hpp
/// Longitudinal run history: a newline-delimited store of compact
/// "mgs-run-report-v1" documents (one JSON object per line, spans and
/// metrics omitted) under bench_results/history.ndjson. Entries are keyed
/// by the run's plan identity -- (executor/proposal, pipeline, dtype/op,
/// n, g, devices) -- plus a free-form label (typically a git sha), so the
/// same configuration can be tracked across commits. Per-key summaries
/// report p50/p95 makespans computed from labeled histograms in a
/// MetricsRegistry (the same machinery the tracer uses) plus the exact
/// max, and the latest-vs-first trend.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mgs/obs/critical_path.hpp"
#include "mgs/obs/export.hpp"
#include "mgs/obs/report.hpp"

namespace mgs::obs {

/// Identity of a measured configuration across runs (the PlanKey fields
/// that matter for makespan comparability, in report spelling).
struct HistoryKey {
  std::string executor;
  std::string dtype = "i32";
  std::string op = "plus";
  std::string pipeline = "auto";  ///< "auto" / "sync" / "overlap"
  std::uint64_t n = 0;            ///< elements per problem
  std::int64_t g = 0;             ///< problems in the batch (0 = unknown)
  int devices = 0;

  /// Canonical one-line spelling, also used as the histogram label set.
  std::string str() const;
  friend bool operator==(const HistoryKey&, const HistoryKey&) = default;
  bool operator<(const HistoryKey& o) const { return str() < o.str(); }
};

/// One appended run: key + label + the makespan and its attribution.
struct HistoryEntry {
  HistoryKey key;
  std::string label;        ///< e.g. git sha; "" = unlabeled
  double seconds = 0.0;     ///< modeled makespan
  std::uint64_t payload_bytes = 0;
  /// Ordered phase -> seconds pairs (RunResult::breakdown).
  std::vector<std::pair<std::string, double>> breakdown;
  /// Critical-path category attribution (all zero when untraced).
  CategorySeconds by_category;
};

/// Build an entry from a loaded run-report. `pipeline` and `label` are
/// history metadata the report header does not carry; `g` comes from the
/// report only implicitly (0 when unknown).
HistoryEntry entry_from_report(const RunReport& rep, std::string label,
                               std::string pipeline = "auto",
                               std::int64_t g = 0);

/// Quantile from histogram buckets (upper bounds ascending, counts with a
/// +Inf overflow bucket), linearly interpolated within the winning
/// bucket; q in [0, 1]. The result is exact to one bucket width -- the
/// tolerance the percentile tests assert against a sorted reference.
double percentile_from_histogram(const std::vector<double>& bounds,
                                 const std::vector<std::uint64_t>& buckets,
                                 double q);

/// Per-key summary over every recorded run of that configuration.
struct KeySummary {
  HistoryKey key;
  int runs = 0;
  double p50 = 0.0;  ///< from the labeled histogram
  double p95 = 0.0;  ///< from the labeled histogram
  double max = 0.0;  ///< exact
  double first = 0.0, latest = 0.0;  ///< makespans in append order
  std::string first_label, latest_label;
  double trend_pct() const {
    return first > 0.0 ? (latest / first - 1.0) * 100.0 : 0.0;
  }
};

class RunHistory {
 public:
  explicit RunHistory(std::string path = "bench_results/history.ndjson");
  const std::string& path() const { return path_; }

  /// Append one entry as a single NDJSON line (creates the file and its
  /// directory on first use). Throws util::Error on I/O failure.
  void append(const HistoryEntry& e) const;

  /// Load every entry in file order; a missing file is an empty history.
  /// Malformed lines throw util::Error (the store is machine-written).
  std::vector<HistoryEntry> load() const;

  /// Group entries by key; percentiles come from per-key labeled
  /// histograms over the makespan (log-spaced bounds, see
  /// makespan_bounds()), max/first/latest are exact.
  static std::vector<KeySummary> summarize(
      const std::vector<HistoryEntry>& entries);

  /// Log-spaced makespan bucket bounds (1 us .. 100 s, ~7% steps) -- fine
  /// enough that the interpolated percentiles land within a bucket width.
  static const std::vector<double>& makespan_bounds();

  /// Render the summaries as an aligned table (summarize() emits them in
  /// lexicographic key order, so the table is stable across runs).
  static std::string format_summary(const std::vector<KeySummary>& rows);

 private:
  std::string path_;
};

}  // namespace mgs::obs
