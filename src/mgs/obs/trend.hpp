#pragma once
/// \file trend.hpp
/// Cross-commit perf intelligence over the run history: per-key
/// change-point detection on the label-ordered makespan series, and the
/// self-contained HTML trend dashboard.
///
/// The history store is chained across CI runs (the workflow restores
/// the previous bench_results/history.ndjson, benches append under the
/// current git sha, the merged store is re-uploaded), so a key's series
/// is a real multi-commit timeline. Detection is robust to run-to-run
/// jitter: the noise floor is a MAD estimate over the trailing window
/// and a step must clear both that floor and a configurable minimum
/// relative effect before it is flagged. Each detected step is
/// attributed to the *first offending label* (the commit that moved the
/// series) and explained from the two sides' stored stage breakdowns via
/// obs::diff_reports -- the same exact-telescoping attribution mgs_perf
/// diff prints, so Sigma row deltas == Delta makespan holds in the
/// dashboard's embedded tables too.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "mgs/obs/diff.hpp"
#include "mgs/obs/history.hpp"

namespace mgs::obs {

/// Deduplicate by (key, label): the LATEST appended entry of a pair wins
/// (a re-run of the same commit supersedes its earlier point), while the
/// series keeps the first-seen order of labels -- the commit timeline the
/// chained store accumulated.
std::vector<HistoryEntry> dedup_entries(const std::vector<HistoryEntry>& in);

/// Detection knobs. A step at index i is flagged when the leading-window
/// median differs from the trailing-window median by more than
///   max(min_effect * trailing_median, mad_k * 1.4826 * trailing_MAD)
/// and the offending point itself clears the same threshold (so the flag
/// lands on the first label that moved, not on a window midpoint).
struct TrendOptions {
  int window = 5;           ///< points per side of the candidate split
  double min_effect = 0.10; ///< minimum relative step (0.10 = 10%)
  double mad_k = 4.0;       ///< noise floor: k * scaled trailing MAD
};

/// One detected step in a key's series.
struct ChangePoint {
  std::size_t index = 0;    ///< series index of the first offending label
  std::string label;        ///< the commit that moved the series
  std::string prev_label;   ///< last label of the previous regime
  double before = 0.0;      ///< trailing-window median (seconds)
  double after = 0.0;       ///< leading-window median (seconds)
  double noise_floor = 0.0; ///< mad_k-scaled trailing MAD (seconds)
  bool regression = true;   ///< step up (slower); false = improvement
  bool acknowledged = false; ///< label is in the ack set; never gates
  /// Breakdown phase that moved the most across the step, e.g.
  /// "Stage2 (+123.40 us)"; "-" when either side lacks a breakdown.
  std::string top_mover = "-";
  double step() const { return after - before; }
  double step_pct() const {
    return before > 0.0 ? (after / before - 1.0) * 100.0 : 0.0;
  }
};

/// One key's label-ordered series plus its detected change-points.
struct KeyTrend {
  HistoryKey key;
  std::vector<HistoryEntry> points;  ///< deduped, first-seen label order
  std::vector<ChangePoint> changes;
};

/// Dedup + group by key (keys sorted lexicographically) + detect change
/// points per key with the given options.
std::vector<KeyTrend> analyze_trends(const std::vector<HistoryEntry>& entries,
                                     const TrendOptions& opt = {});

/// Mark every change-point whose label appears in `acks` as acknowledged
/// (an intentional, signed-off regression -- it stays on the dashboard
/// but no longer fails the gate).
void acknowledge(std::vector<KeyTrend>& trends,
                 const std::vector<std::string>& acks);

/// True when any key has an unacknowledged *regression* change-point
/// (improvements never gate).
bool has_unacknowledged_regression(const std::vector<KeyTrend>& trends);

/// Reconstitute a diff-able RunReport from a stored history entry: the
/// header from the key, sequential stage rows from the stored breakdown
/// (per-stage category split is not stored, so each stage's time lands in
/// "other"), by_category from the stored attribution. diff_reports over
/// two such reports telescopes exactly -- the residual "(outside stages)"
/// row absorbs whatever the breakdown does not cover.
RunReport report_from_entry(const HistoryEntry& e);

/// Render the per-key verdict tables (the mgs_perf trend output).
std::string format_trends(const std::vector<KeyTrend>& trends,
                          const TrendOptions& opt);

/// Machine-readable form ("mgs-perf-trend-v1") for tooling and the gate.
void write_trend_json(std::ostream& os, const std::vector<KeyTrend>& trends,
                      const TrendOptions& opt);

/// The zero-dependency single-file HTML dashboard: one inline-SVG
/// sparkline per key (p50/p95 band, change-point markers), the top-movers
/// table, and an embedded diff_reports table per flagged step (rows
/// telescope exactly to the step's makespan delta). No external assets,
/// no scripts -- openable from a CI artifact as-is.
void write_dashboard(std::ostream& os, const std::vector<KeyTrend>& trends,
                     const TrendOptions& opt,
                     const std::string& title = "mgs perf trends");

}  // namespace mgs::obs
