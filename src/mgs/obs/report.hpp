#pragma once
/// \file report.hpp
/// Loading exported JSON run-reports back into memory: a minimal JSON
/// value type + recursive-descent parser (the toolchain has no external
/// JSON dependency) and the typed RunReport used by tools/mgs_trace.
/// The parser accepts exactly the subset write_run_report emits plus
/// ordinary whitespace; malformed input throws util::Error.

#include <string>
#include <utility>
#include <vector>

#include "mgs/obs/export.hpp"
#include "mgs/obs/metrics.hpp"
#include "mgs/obs/span.hpp"

namespace mgs::obs {

/// Tagged JSON value. Objects keep key order and allow duplicate keys
/// (lookup returns the first).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// Typed accessors with defaults (never throw).
  double num_or(double fallback) const;
  std::string str_or(std::string fallback) const;
};

/// Parse a complete JSON document; trailing garbage is an error.
JsonValue parse_json(const std::string& text);

/// A loaded run-report: everything write_run_report emitted. The
/// critical path is re-derived from the spans on load so the CLI always
/// agrees with the analyzer, not with a possibly stale file section.
struct RunReport {
  RunInfo run;
  MetricsSnapshot metrics;
  std::vector<SpanRecord> spans;
  CriticalPathReport critical_path;
};

/// Decode a parsed "mgs-run-report-v1" document.
RunReport parse_run_report(const JsonValue& doc);
/// Read + parse + decode a run-report file.
RunReport load_run_report(const std::string& path);

}  // namespace mgs::obs
