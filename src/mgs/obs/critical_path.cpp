#include "mgs/obs/critical_path.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "mgs/util/check.hpp"
#include "mgs/util/table.hpp"

namespace mgs::obs {

namespace {

bool is_leaf(const SpanRecord& s) {
  return s.kind == SpanKind::kKernel || s.kind == SpanKind::kTransfer ||
         s.kind == SpanKind::kCollective;
}

double overlap(double a0, double a1, double b0, double b1) {
  return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}

/// Spans carry an ("engine", "dma") note when they ran on a device's copy
/// engine; everything else is compute-engine work.
bool on_dma_engine(const SpanRecord& s) {
  for (const auto& [k, v] : s.notes) {
    if (k == "engine") return v == "dma";
  }
  return false;
}

/// A (device, engine) lane. Each lane is serial -- a device's compute
/// clock and its DMA clock each advance monotonically -- so per-lane busy
/// time never over-fills a window even when the stream pipeline overlaps
/// copies with kernels on one device.
using Lane = std::pair<int, int>;  // {device, 0 = compute / 1 = dma}

/// Busy seconds by category per lane for every leaf clipped to [a, b).
/// Transfers occupy both endpoints' lanes.
std::map<Lane, CategorySeconds> lane_busy(
    const std::vector<const SpanRecord*>& leaves, double a, double b) {
  std::map<Lane, CategorySeconds> busy;
  for (const SpanRecord* s : leaves) {
    const double o = overlap(s->start_seconds, s->end_seconds, a, b);
    if (o <= 0.0) continue;
    const int eng = on_dma_engine(*s) ? 1 : 0;
    if (s->device >= 0) busy[{s->device, eng}][s->category] += o;
    if (s->src_device >= 0 && s->src_device != s->device) {
      busy[{s->src_device, eng}][s->category] += o;
    }
  }
  return busy;
}

/// Attribute the window [a, b) to categories: the busiest lane's time by
/// category (scaled down if overlapping leaves over-fill the window), the
/// rest idle. Returns the critical device (-1 when the window is empty).
int attribute_window(const std::vector<const SpanRecord*>& leaves, double a,
                     double b, CategorySeconds& out) {
  const double len = b - a;
  if (len <= 0.0) return -1;
  const auto busy = lane_busy(leaves, a, b);
  const Lane* critical = nullptr;
  double best = -1.0;
  for (const auto& [lane, cats] : busy) {
    const double t = cats.total();
    if (t > best) {
      best = t;
      critical = &lane;
    }
  }
  if (critical == nullptr) {
    out[Category::kIdle] += len;
    return -1;
  }
  const CategorySeconds& cats = busy.at(*critical);
  const double total = cats.total();
  const double scale = total > len ? len / total : 1.0;
  for (int c = 0; c < kNumCategories; ++c) {
    out.seconds[static_cast<std::size_t>(c)] +=
        cats.seconds[static_cast<std::size_t>(c)] * scale;
  }
  out[Category::kIdle] += len - std::min(total, len);
  return critical->first;
}

std::string note_value(const SpanRecord& s, const std::string& key,
                       const std::string& fallback) {
  for (const auto& [k, v] : s.notes) {
    if (k == key) return v;
  }
  return fallback;
}

}  // namespace

double CategorySeconds::total() const {
  double t = 0.0;
  for (double s : seconds) t += s;
  return t;
}

void CategorySeconds::add(const CategorySeconds& o) {
  for (std::size_t i = 0; i < seconds.size(); ++i) seconds[i] += o.seconds[i];
}

CriticalPathReport analyze_run(const std::vector<SpanRecord>& spans,
                               std::uint64_t run_id) {
  CriticalPathReport rep;
  if (spans.empty()) return rep;

  // Membership: descendants of the run span, or everything for run_id 0.
  // Span ids are 1-based insertion indices, so parents precede children
  // and one forward pass settles membership.
  std::vector<char> in_run(spans.size() + 1, run_id == 0 ? 1 : 0);
  const SpanRecord* run = nullptr;
  if (run_id != 0) {
    MGS_REQUIRE(run_id <= spans.size() &&
                    spans[static_cast<std::size_t>(run_id - 1)].id == run_id,
                "analyze_run: unknown run span id");
    run = &spans[static_cast<std::size_t>(run_id - 1)];
    in_run[static_cast<std::size_t>(run_id)] = 1;
    for (const SpanRecord& s : spans) {
      if (s.parent != 0 && s.parent <= spans.size() &&
          in_run[static_cast<std::size_t>(s.parent)]) {
        in_run[static_cast<std::size_t>(s.id)] = 1;
      }
    }
  }

  std::vector<const SpanRecord*> leaves;
  std::vector<const SpanRecord*> stages;
  double lo = 1e300, hi = -1e300;
  for (const SpanRecord& s : spans) {
    if (!in_run[static_cast<std::size_t>(s.id)]) continue;
    if (is_leaf(s)) leaves.push_back(&s);
    const bool direct_stage =
        s.kind == SpanKind::kStage &&
        (run != nullptr ? s.parent == run_id : s.parent == 0);
    if (direct_stage) stages.push_back(&s);
    if (s.kind != SpanKind::kPlan && s.kind != SpanKind::kFault) {
      lo = std::min(lo, s.start_seconds);
      hi = std::max(hi, s.end_seconds);
    }
  }
  if (run != nullptr) {
    lo = run->start_seconds;
    hi = run->end_seconds;
  }
  if (hi < lo) return rep;
  rep.start_seconds = lo;
  rep.end_seconds = hi;
  rep.total_seconds = hi - lo;

  // Cut the window at every stage boundary; attribute each segment.
  std::set<double> cuts{lo, hi};
  for (const SpanRecord* s : stages) {
    if (s->start_seconds > lo && s->start_seconds < hi) {
      cuts.insert(s->start_seconds);
    }
    if (s->end_seconds > lo && s->end_seconds < hi) cuts.insert(s->end_seconds);
  }
  double prev = lo;
  bool first = true;
  for (double t : cuts) {
    if (!first) attribute_window(leaves, prev, t, rep.by_category);
    prev = t;
    first = false;
  }

  // Stage rows (reporting view; windows may overlap across groups).
  std::sort(stages.begin(), stages.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->start_seconds < b->start_seconds ||
                     (a->start_seconds == b->start_seconds && a->id < b->id);
            });
  for (const SpanRecord* s : stages) {
    CriticalPathReport::StageRow row;
    row.name = s->name;
    row.start_seconds = s->start_seconds;
    row.end_seconds = s->end_seconds;
    row.critical_device =
        attribute_window(leaves, s->start_seconds, s->end_seconds,
                         row.by_category);
    rep.stages.push_back(std::move(row));
  }

  // Per-engine rows over the whole window, in (device, engine) order.
  const auto busy = lane_busy(leaves, lo, hi);
  for (const auto& [lane, cats] : busy) {
    CriticalPathReport::DeviceRow row;
    row.device = lane.first;
    row.engine = lane.second == 1 ? "dma" : "compute";
    row.busy = cats;
    row.idle_seconds = std::max(0.0, rep.total_seconds - cats.total());
    rep.devices.push_back(std::move(row));
  }

  // Per-link traffic.
  std::map<std::tuple<int, int, std::string>, CriticalPathReport::LinkRow>
      links;
  for (const SpanRecord* s : leaves) {
    if (s->kind == SpanKind::kKernel) continue;
    const std::string link = note_value(
        *s, "link",
        s->kind == SpanKind::kCollective ? "mpi" : to_string(s->category));
    auto& row = links[{s->src_device, s->device, link}];
    row.src = s->src_device;
    row.dst = s->device;
    row.link = link;
    ++row.transfers;
    row.bytes += s->bytes;
    row.seconds += s->duration();
  }
  for (auto& [key, row] : links) {
    (void)key;
    rep.links.push_back(std::move(row));
  }
  return rep;
}

CriticalPathReport analyze_last_run(const std::vector<SpanRecord>& spans) {
  std::uint64_t run_id = 0;
  for (const SpanRecord& s : spans) {
    if (s.kind == SpanKind::kRun) run_id = s.id;
  }
  return analyze_run(spans, run_id);
}

std::string format_report(const CriticalPathReport& rep) {
  std::ostringstream os;
  os << "makespan: " << util::fmt_time_us(rep.total_seconds) << " (window "
     << rep.start_seconds * 1e6 << " .. " << rep.end_seconds * 1e6
     << " us)\n\ncategory attribution:\n";
  {
    util::Table t({"category", "seconds(us)", "share"});
    for (int c = 0; c < kNumCategories; ++c) {
      const double s = rep.by_category.seconds[static_cast<std::size_t>(c)];
      if (s <= 0.0) continue;
      t.add_row({to_string(static_cast<Category>(c)),
                 util::fmt_double(s * 1e6, 2),
                 rep.total_seconds > 0.0
                     ? util::fmt_double(100.0 * s / rep.total_seconds, 1) + "%"
                     : "-"});
    }
    t.print(os);
  }
  if (!rep.stages.empty()) {
    os << "\nstages (critical-path breakdown):\n";
    util::Table t({"stage", "start(us)", "dur(us)", "crit-dev", "compute",
                   "p2p", "host", "mpi", "idle"});
    for (const auto& s : rep.stages) {
      t.add_row({s.name, util::fmt_double(s.start_seconds * 1e6, 1),
                 util::fmt_double(s.seconds() * 1e6, 1),
                 s.critical_device < 0 ? "-"
                                       : std::to_string(s.critical_device),
                 util::fmt_double(s.by_category[Category::kCompute] * 1e6, 1),
                 util::fmt_double(s.by_category[Category::kP2P] * 1e6, 1),
                 util::fmt_double(
                     s.by_category[Category::kHostStaged] * 1e6, 1),
                 util::fmt_double(s.by_category[Category::kMpi] * 1e6, 1),
                 util::fmt_double(s.by_category[Category::kIdle] * 1e6, 1)});
    }
    t.print(os);
  }
  if (!rep.devices.empty()) {
    os << "\nper-engine busy/idle:\n";
    util::Table t({"device", "engine", "compute", "p2p", "host", "mpi",
                   "idle"});
    for (const auto& d : rep.devices) {
      t.add_row({std::to_string(d.device), d.engine,
                 util::fmt_double(d.busy[Category::kCompute] * 1e6, 1),
                 util::fmt_double(d.busy[Category::kP2P] * 1e6, 1),
                 util::fmt_double(d.busy[Category::kHostStaged] * 1e6, 1),
                 util::fmt_double(d.busy[Category::kMpi] * 1e6, 1),
                 util::fmt_double(d.idle_seconds * 1e6, 1)});
    }
    t.print(os);
  }
  if (!rep.links.empty()) {
    os << "\nper-link traffic:\n";
    util::Table t({"src", "dst", "link", "ops", "bytes", "seconds(us)"});
    for (const auto& l : rep.links) {
      t.add_row({l.src < 0 ? "-" : std::to_string(l.src),
                 l.dst < 0 ? "-" : std::to_string(l.dst), l.link,
                 std::to_string(l.transfers), util::fmt_bytes(l.bytes),
                 util::fmt_double(l.seconds * 1e6, 1)});
    }
    t.print(os);
  }
  return os.str();
}

}  // namespace mgs::obs
