#pragma once
/// \file critical_path.hpp
/// Critical-path / makespan attribution over a recorded span DAG -- the
/// programmatic form of the paper's Figure 14. The run window is cut into
/// segments at every stage boundary; within a segment the device with the
/// most busy time is the critical device, its busy time is attributed to
/// compute / P2P / host-staged / MPI by leaf-span category, and whatever
/// remains of the segment is idle (waiting at the next synchronization
/// point). Segment attributions sum to the makespan exactly.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mgs/obs/span.hpp"

namespace mgs::obs {

/// Seconds per Category, indexable by the enum.
struct CategorySeconds {
  std::array<double, kNumCategories> seconds{};

  double& operator[](Category c) {
    return seconds[static_cast<std::size_t>(c)];
  }
  double operator[](Category c) const {
    return seconds[static_cast<std::size_t>(c)];
  }
  double total() const;
  void add(const CategorySeconds& o);
};

struct CriticalPathReport {
  double start_seconds = 0.0;  ///< run window on the simulated timeline
  double end_seconds = 0.0;
  double total_seconds = 0.0;  ///< makespan (end - start)

  /// Makespan attribution; total() == total_seconds (the invariant the
  /// acceptance test checks to 1e-9).
  CategorySeconds by_category;

  /// One row per stage span under the run, in start order (the breakdown
  /// table). Rows may overlap in time when group pipelines run
  /// concurrently (Scan-MP-PC); the per-category totals above come from
  /// the non-overlapping segment cut, not from these rows.
  struct StageRow {
    std::string name;
    double start_seconds = 0.0;
    double end_seconds = 0.0;
    CategorySeconds by_category;  ///< attribution within this row's window
    int critical_device = -1;
    double seconds() const { return end_seconds - start_seconds; }
  };
  std::vector<StageRow> stages;

  /// Per-engine busy/idle over the whole run window: one row per (device,
  /// engine) lane that did any work. Each device has a serial compute
  /// engine and a serial DMA engine, so every row satisfies
  /// busy.total() + idle_seconds == total_seconds even when the stream
  /// pipeline overlaps a device's copies with its kernels.
  struct DeviceRow {
    int device = -1;
    std::string engine = "compute";  ///< "compute" or "dma"
    CategorySeconds busy;
    double idle_seconds = 0.0;
  };
  std::vector<DeviceRow> devices;

  /// Per-link traffic aggregated from transfer/collective leaves.
  struct LinkRow {
    int src = -1;
    int dst = -1;
    std::string link;  ///< "p2p", "host-staged", "mpi", ...
    std::uint64_t transfers = 0;
    std::uint64_t bytes = 0;
    double seconds = 0.0;
  };
  std::vector<LinkRow> links;
};

/// Attribute the makespan of the run span `run_id` (a SpanRecord id with
/// kind kRun). Pass run_id == 0 to treat the whole recording as one run:
/// root stage spans become the stages and the window spans every event.
CriticalPathReport analyze_run(const std::vector<SpanRecord>& spans,
                               std::uint64_t run_id);

/// Analyze the most recently recorded kRun span (or everything, when the
/// recording has no run span).
CriticalPathReport analyze_last_run(const std::vector<SpanRecord>& spans);

/// Render the report as an aligned text table (the mgs_trace output).
std::string format_report(const CriticalPathReport& report);

}  // namespace mgs::obs
