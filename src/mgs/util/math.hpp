#pragma once
/// \file math.hpp
/// Small integer-math helpers used by the tuning machinery, which reasons
/// almost entirely in powers of two (the paper's N = 2^n, G = 2^g, ...).

#include <cstdint>

#include "mgs/util/check.hpp"

namespace mgs::util {

/// True iff \p x is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)); requires x > 0.
constexpr int ilog2(std::uint64_t x) {
  int r = -1;
  while (x != 0) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// 2^e as a 64-bit value; requires 0 <= e < 64.
constexpr std::uint64_t pow2(int e) { return std::uint64_t{1} << e; }

/// ceil(a / b) for positive integers.
constexpr std::uint64_t div_up(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Round \p a up to the next multiple of \p b.
constexpr std::uint64_t round_up(std::uint64_t a, std::uint64_t b) {
  return div_up(a, b) * b;
}

/// Largest power of two <= x; requires x > 0.
constexpr std::uint64_t floor_pow2(std::uint64_t x) { return pow2(ilog2(x)); }

/// Smallest power of two >= x; requires x > 0.
constexpr std::uint64_t ceil_pow2(std::uint64_t x) {
  return is_pow2(x) ? x : pow2(ilog2(x) + 1);
}

}  // namespace mgs::util
