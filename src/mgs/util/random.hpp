#pragma once
/// \file random.hpp
/// Deterministic data generation for tests and benchmarks. All generators
/// are seeded explicitly so every run of the suite sees identical inputs.

#include <cstdint>
#include <vector>

namespace mgs::util {

/// SplitMix64: tiny, high-quality, and reproducible across platforms
/// (std::mt19937 would also be portable, but SplitMix is cheaper and makes
/// per-element generation trivially parallel if ever needed).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

 private:
  std::uint64_t state_;
};

/// count values uniform in [lo, hi] (inclusive).
std::vector<std::int32_t> random_i32(std::size_t count, std::uint64_t seed,
                                     std::int32_t lo = -100,
                                     std::int32_t hi = 100);

std::vector<std::int64_t> random_i64(std::size_t count, std::uint64_t seed,
                                     std::int64_t lo = -1000,
                                     std::int64_t hi = 1000);

/// count floats uniform in [lo, hi).
std::vector<float> random_f32(std::size_t count, std::uint64_t seed,
                              float lo = -1.0f, float hi = 1.0f);

}  // namespace mgs::util
