#pragma once
/// \file cli.hpp
/// Tiny flag parser for the bench/example binaries.
/// Supports "--name value" and "--name=value"; unknown flags are errors so
/// typos in sweep scripts fail loudly.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mgs::util {

class Cli {
 public:
  /// Parses argv; throws util::Error on malformed input.
  Cli(int argc, char** argv);

  /// Register flags up-front so --help and unknown-flag detection work.
  /// Call these before the typed getters.
  void describe(const std::string& name, const std::string& help);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// True when --help was passed; prints usage to stdout.
  bool help_requested() const { return help_; }
  void print_help(const std::string& program_summary) const;

  /// Throws util::Error listing any flag not registered via describe().
  void reject_unknown() const;

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::pair<std::string, std::string>> described_;
  bool help_ = false;
};

}  // namespace mgs::util
