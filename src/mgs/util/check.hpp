#pragma once
/// \file check.hpp
/// Error-handling primitives used across the library.
///
/// We follow the C++ Core Guidelines split between preconditions
/// (programming errors -> MGS_CHECK, terminates with a diagnostic) and
/// recoverable configuration errors (-> mgs::util::Error exception).

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace mgs::util {

/// Recoverable error raised for invalid user-supplied configuration
/// (bad tuning parameters, impossible topology, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::fprintf(stderr, "MGS_CHECK failed: %s\n  at %s:%d\n  %s\n", cond, file,
               line, msg.c_str());
  std::abort();
}

}  // namespace mgs::util

/// Precondition/invariant check that is always on (scan correctness and the
/// simulator's conservation invariants are worth the branch even in release).
#define MGS_CHECK(cond, msg)                                          \
  do {                                                                \
    if (!(cond)) [[unlikely]] {                                       \
      ::mgs::util::check_failed(#cond, __FILE__, __LINE__, (msg));    \
    }                                                                 \
  } while (0)

/// Throwing validation for user-facing configuration errors.
#define MGS_REQUIRE(cond, msg)                     \
  do {                                             \
    if (!(cond)) [[unlikely]] {                    \
      throw ::mgs::util::Error(std::string(msg)); \
    }                                              \
  } while (0)
