#include "mgs/util/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "mgs/util/check.hpp"

namespace mgs::util {

Cli::Cli(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    MGS_REQUIRE(arg.rfind("--", 0) == 0, "unexpected argument: " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag
    }
  }
}

void Cli::describe(const std::string& name, const std::string& help) {
  described_.emplace_back(name, help);
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Cli::get_string(const std::string& name,
                            const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 0);
  MGS_REQUIRE(end != nullptr && *end == '\0',
              "flag --" + name + " expects an integer, got '" + it->second + "'");
  return v;
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  MGS_REQUIRE(end != nullptr && *end == '\0',
              "flag --" + name + " expects a number, got '" + it->second + "'");
  return v;
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw Error("flag --" + name + " expects a boolean, got '" + v + "'");
}

void Cli::print_help(const std::string& program_summary) const {
  std::printf("%s\n\n%s\n\nFlags:\n", program_.c_str(),
              program_summary.c_str());
  for (const auto& [name, help] : described_) {
    std::printf("  --%-20s %s\n", name.c_str(), help.c_str());
  }
  std::printf("  --%-20s %s\n", "help", "show this message");
}

void Cli::reject_unknown() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    const bool known =
        std::any_of(described_.begin(), described_.end(),
                    [&](const auto& d) { return d.first == name; });
    MGS_REQUIRE(known, "unknown flag --" + name + " (see --help)");
  }
}

}  // namespace mgs::util
