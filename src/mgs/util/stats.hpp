#pragma once
/// \file stats.hpp
/// Summary statistics used by the benchmark harnesses (speedup averaging
/// follows the paper: arithmetic mean of per-data-point speedups) and by
/// EXPERIMENTS.md reporting (geomean as a robustness cross-check).

#include <cstddef>
#include <span>

namespace mgs::util {

double mean(std::span<const double> xs);
double geomean(std::span<const double> xs);  ///< requires all xs > 0
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
double median(std::span<const double> xs);  ///< copies, O(n log n)

/// Online accumulator for means without materializing a vector.
class RunningMean {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
  }
  std::size_t count() const { return n_; }
  double value() const;

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
};

}  // namespace mgs::util
