#include "mgs/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "mgs/util/check.hpp"

namespace mgs::util {

double mean(std::span<const double> xs) {
  MGS_CHECK(!xs.empty(), "mean of empty span");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  MGS_CHECK(!xs.empty(), "geomean of empty span");
  double s = 0.0;
  for (double x : xs) {
    MGS_CHECK(x > 0.0, "geomean requires positive values");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double min_of(std::span<const double> xs) {
  MGS_CHECK(!xs.empty(), "min of empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  MGS_CHECK(!xs.empty(), "max of empty span");
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::span<const double> xs) {
  MGS_CHECK(!xs.empty(), "median of empty span");
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  const std::size_t n = copy.size();
  return (n % 2 == 1) ? copy[n / 2] : 0.5 * (copy[n / 2 - 1] + copy[n / 2]);
}

double RunningMean::value() const {
  MGS_CHECK(n_ > 0, "RunningMean::value with no samples");
  return sum_ / static_cast<double>(n_);
}

}  // namespace mgs::util
