#include "mgs/util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "mgs/util/check.hpp"

namespace mgs::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MGS_CHECK(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  MGS_CHECK(cells.size() == headers_.size(),
            "Table row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << std::string(widths[c] - row[c].size(), ' ') << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_gbps(double bytes_per_sec) {
  return fmt_double(bytes_per_sec / 1e9, 2) + " GB/s";
}

std::string fmt_time_us(double seconds) {
  if (seconds < 1e-3) return fmt_double(seconds * 1e6, 2) + " us";
  if (seconds < 1.0) return fmt_double(seconds * 1e3, 3) + " ms";
  return fmt_double(seconds, 4) + " s";
}

std::string fmt_bytes(std::uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  return fmt_double(v, v < 10 ? 2 : 1) + " " + kUnits[u];
}

std::string fmt_speedup(double x) { return fmt_double(x, 2) + "x"; }

}  // namespace mgs::util
