#pragma once
/// \file table.hpp
/// Text-table printer used by the benchmark harnesses to emit the same
/// rows/series as the paper's tables and figures. Columns are
/// right-aligned; an optional CSV mode makes the output plottable.

#include <ostream>
#include <string>
#include <vector>

namespace mgs::util {

/// A simple column-aligned table. Build rows with add_row(); call print().
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// All rows must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }

  /// Pretty print with aligned columns (and a header rule).
  void print(std::ostream& os) const;

  /// Comma-separated output for downstream plotting.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by benches.
std::string fmt_double(double v, int precision = 2);
std::string fmt_gbps(double bytes_per_sec);     ///< "123.4 GB/s"
std::string fmt_time_us(double seconds);        ///< "12.3 us" / "4.5 ms" / "1.2 s"
std::string fmt_bytes(std::uint64_t bytes);     ///< "64 KiB" / "1.5 GiB"
std::string fmt_speedup(double x);              ///< "12.34x"

}  // namespace mgs::util
