#include "mgs/util/random.hpp"

#include "mgs/util/check.hpp"

namespace mgs::util {

std::vector<std::int32_t> random_i32(std::size_t count, std::uint64_t seed,
                                     std::int32_t lo, std::int32_t hi) {
  MGS_CHECK(lo <= hi, "random_i32: empty range");
  SplitMix64 rng(seed);
  const std::uint64_t span =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) - lo) + 1;
  std::vector<std::int32_t> out(count);
  for (auto& v : out) {
    v = static_cast<std::int32_t>(lo + static_cast<std::int64_t>(rng.next_below(span)));
  }
  return out;
}

std::vector<std::int64_t> random_i64(std::size_t count, std::uint64_t seed,
                                     std::int64_t lo, std::int64_t hi) {
  MGS_CHECK(lo <= hi, "random_i64: empty range");
  SplitMix64 rng(seed);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  std::vector<std::int64_t> out(count);
  for (auto& v : out) {
    v = lo + static_cast<std::int64_t>(rng.next_below(span));
  }
  return out;
}

std::vector<float> random_f32(std::size_t count, std::uint64_t seed, float lo,
                              float hi) {
  MGS_CHECK(lo < hi, "random_f32: empty range");
  SplitMix64 rng(seed);
  std::vector<float> out(count);
  for (auto& v : out) {
    const double u =
        static_cast<double>(rng.next() >> 11) * (1.0 / 9007199254740992.0);
    v = static_cast<float>(lo + u * (static_cast<double>(hi) - lo));
  }
  return out;
}

}  // namespace mgs::util
