#pragma once
/// \file log.hpp
/// Minimal leveled logger. Output goes to stderr so bench tables on stdout
/// stay machine-parsable. Thread-safe (one mutex per emitted line).

#include <sstream>
#include <string>

namespace mgs::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one formatted line ("[level] msg"). Prefer the MGS_LOG macro.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace mgs::util

#define MGS_LOG(level) ::mgs::util::detail::LogStream(::mgs::util::LogLevel::level)
