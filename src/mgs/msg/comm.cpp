#include "mgs/msg/comm.hpp"

#include <algorithm>
#include <set>

#include "mgs/obs/span.hpp"
#include "mgs/sim/profiler.hpp"

namespace mgs::msg {

Communicator::Communicator(topo::Cluster& cluster, std::vector<int> device_ids)
    : cluster_(&cluster), device_ids_(std::move(device_ids)) {
  MGS_REQUIRE(!device_ids_.empty(), "Communicator needs at least one rank");
  std::set<int> seen;
  for (int id : device_ids_) {
    MGS_REQUIRE(id >= 0 && id < cluster_->num_devices(),
                "Communicator: device id out of range");
    MGS_REQUIRE(seen.insert(id).second,
                "Communicator: duplicate device in rank list");
  }
}

int Communicator::device_of(int rank) const {
  MGS_CHECK(rank >= 0 && rank < size(), "rank out of range");
  return device_ids_[static_cast<std::size_t>(rank)];
}

sim::Clock& Communicator::clock_of(int rank) {
  return cluster_->device(device_of(rank)).clock();
}

sim::Clock& Communicator::dma_clock_of(int rank) {
  return cluster_->device(device_of(rank)).dma_clock();
}

double Communicator::collective_alpha() const {
  return cluster_->config().links.mpi_overhead_us * 1e-6;
}

double Communicator::message_time(int src_rank, int dst_rank,
                                  std::uint64_t bytes) const {
  const topo::LinkSpec& links = cluster_->config().links;
  // CUDA-aware MPI: the payload rides the best available link between the
  // two GPUs; MPI adds its software overhead on top.
  topo::TransferEngine probe(*cluster_);
  const double wire =
      probe.link_time(device_of(src_rank), device_of(dst_rank), bytes);
  return links.mpi_overhead_us * 1e-6 + wire;
}

void Communicator::check_ranks_alive(const char* op) {
  const sim::FaultInjector* fi = cluster_->fault_injector();
  if (fi == nullptr) return;
  for (int r = 0; r < size(); ++r) {
    if (fi->device_is_down(device_of(r))) {
      throw CommError(std::string(op) + ": rank " + std::to_string(r) +
                          " (device " + std::to_string(device_of(r)) +
                          ") is down",
                      r);
    }
  }
}

double Communicator::timed_message(int src_rank, int dst_rank,
                                   std::uint64_t bytes, int blame_rank) {
  return timed_message_at(src_rank, dst_rank, bytes, blame_rank,
                          clock_of(src_rank).now());
}

double Communicator::timed_message_at(int src_rank, int dst_rank,
                                      std::uint64_t bytes, int blame_rank,
                                      double now) {
  const double base = message_time(src_rank, dst_rank, bytes);
  sim::FaultInjector* fi = cluster_->fault_injector();
  if (fi == nullptr) return base;

  // Message retries/timeouts/re-sends become kFault children of whatever
  // span is open (the enclosing collective's stage), since the collective
  // span itself is only recorded after its completion time is known.
  obs::TraceSession* ts = obs::TraceSession::current();
  std::uint64_t obs_retries = 0;
  const auto fault_event = [&](const char* kind, double at, int attempt) {
    if (ts == nullptr) return;
    obs::SpanRecord ev;
    ev.name = kind;
    ev.kind = obs::SpanKind::kFault;
    ev.category = obs::Category::kOther;
    ev.device = device_of(dst_rank);
    ev.src_device = device_of(src_rank);
    ev.start_seconds = at;
    ev.end_seconds = at;
    ev.notes.emplace_back("attempt", std::to_string(attempt));
    ev.notes.emplace_back("op", "message");
    ts->add_event(std::move(ev));
    ts->metrics().inc("fault_events_total", {{"kind", kind}});
  };

  const int src = device_of(src_rank);
  const int dst = device_of(dst_rank);
  const double attempt_time = base * fi->transfer_slowdown(src, dst, now);
  const sim::FaultPlan& plan = fi->plan();
  if (fi->device_down_at(src, now)) {
    throw CommError("message from down rank " + std::to_string(src_rank),
                    src_rank);
  }
  if (fi->device_down_at(dst, now)) {
    throw CommError("message to down rank " + std::to_string(dst_rank),
                    dst_rank);
  }
  double total = 0.0;
  for (int attempt = 0;; ++attempt) {
    const auto verdict = fi->on_transfer_attempt(src, dst, attempt, now);
    const bool timed_out = attempt_time > plan.timeout_seconds;
    const double spent = timed_out ? plan.timeout_seconds : attempt_time;
    total += spent;
    if (!timed_out && !verdict.transient_fail) {
      if (verdict.corrupt) {
        // Checksum mismatch on arrival: pay one re-send.
        ++faults_seen_.corruptions_detected;
        ++faults_seen_.retries;
        ++obs_retries;
        fault_event("corrupt-resend", now + total, attempt);
        faults_seen_.retry_seconds += attempt_time;
        total += attempt_time;
      }
      if (ts != nullptr && obs_retries != 0) {
        ts->metrics().add("fault_retries", {},
                          static_cast<double>(obs_retries));
      }
      return total;
    }
    if (timed_out) {
      ++faults_seen_.timeouts;
    } else {
      ++faults_seen_.transient_failures;
    }
    fault_event(timed_out ? "timeout" : "transient", now + total, attempt);
    faults_seen_.retry_seconds += spent;
    if (attempt >= plan.max_retries) {
      throw CommError("message rank " + std::to_string(src_rank) + " -> " +
                          std::to_string(dst_rank) +
                          (timed_out ? " timed out" : " failed") + " after " +
                          std::to_string(attempt + 1) + " attempts",
                      blame_rank);
    }
    const double backoff =
        plan.backoff_base_us * 1e-6 * static_cast<double>(1ll << attempt);
    total += backoff;
    faults_seen_.retry_seconds += backoff;
    ++faults_seen_.retries;
    ++obs_retries;
  }
}

double Communicator::barrier() {
  check_ranks_alive("MPI_Barrier");
  double start = 0.0;
  std::vector<double> entry(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    entry[static_cast<std::size_t>(r)] = clock_of(r).now();
    start = std::max(start, entry[static_cast<std::size_t>(r)]);
  }
  if (const sim::FaultInjector* fi = cluster_->fault_injector()) {
    // A rank that would dwell in the barrier longer than the per-message
    // timeout gives up and reports the laggard (MPI_ERR_TIMEDOUT-style).
    const double timeout = fi->plan().timeout_seconds;
    double earliest = entry[0];
    int laggard = 0;
    for (int r = 0; r < size(); ++r) {
      earliest = std::min(earliest, entry[static_cast<std::size_t>(r)]);
      if (entry[static_cast<std::size_t>(r)] >= start) laggard = r;
    }
    if (start - earliest > timeout) {
      throw CommError("MPI_Barrier: timed out waiting for rank " +
                          std::to_string(laggard),
                      laggard);
    }
  }
  int levels = 0;
  for (int n = size(); n > 1; n = (n + 1) / 2) ++levels;
  const double completion = start + collective_alpha() * std::max(1, levels);
  for (int r = 0; r < size(); ++r) clock_of(r).sync_to(completion);
  // Record the *master's* dwell time (what Figure 14 plots).
  breakdown_.add("MPI_Barrier", completion - entry[0]);
  profile_collective("MPI_Barrier", start, completion, 0);
  return completion;
}

void Communicator::profile_collective(const char* name, double start,
                                      double completion,
                                      std::uint64_t bytes) {
  if (sim::Profiler::instance().enabled()) {
    sim::ProfileRecord rec;
    rec.name = name;
    rec.kind = sim::EventKind::kCollective;
    rec.device_id = device_of(0);
    rec.start_seconds = start;
    rec.duration_seconds = completion - start;
    rec.bytes = bytes;
    sim::Profiler::instance().record(std::move(rec));
  }
  trace_collective(name, start, completion, bytes);
}

double Communicator::message_latency(int src_rank, int dst_rank) const {
  topo::TransferEngine probe(*cluster_);
  return collective_alpha() +
         probe.link_latency(device_of(src_rank), device_of(dst_rank));
}

void Communicator::trace_isend(int src_rank, int dst_rank, double start,
                               double engine_release, double completion,
                               std::uint64_t bytes) {
  obs::TraceSession* ts = obs::TraceSession::current();
  if (ts == nullptr) return;
  obs::SpanRecord rec;
  rec.name = "MPI_Isend";
  rec.kind = obs::SpanKind::kCollective;
  rec.category = obs::Category::kMpi;
  rec.device = device_of(dst_rank);
  rec.src_device = device_of(src_rank);
  rec.start_seconds = start;
  rec.end_seconds = engine_release;
  rec.bytes = bytes;
  rec.notes.emplace_back("engine", sim::to_string(sim::Engine::kDma));
  rec.notes.emplace_back("latency_us",
                         std::to_string((completion - engine_release) * 1e6));
  ts->add_event(std::move(rec));
  obs::MetricsRegistry& m = ts->metrics();
  m.inc("mpi_ops_total", {{"op", "MPI_Isend"}});
  m.add("mpi_seconds", {{"op", "MPI_Isend"}}, completion - start);
  if (bytes != 0) {
    m.add("transfer_bytes", {{"kind", "mpi"}}, static_cast<double>(bytes));
  }
}

void Communicator::trace_collective(const char* name, double start,
                                    double completion, std::uint64_t bytes) {
  obs::TraceSession* ts = obs::TraceSession::current();
  if (ts == nullptr) return;
  obs::SpanRecord rec;
  rec.name = name;
  rec.kind = obs::SpanKind::kCollective;
  rec.category = obs::Category::kMpi;
  rec.device = device_of(0);
  rec.start_seconds = start;
  rec.end_seconds = completion;
  rec.bytes = bytes;
  ts->add_event(std::move(rec));
  obs::MetricsRegistry& m = ts->metrics();
  m.inc("mpi_ops_total", {{"op", name}});
  m.add("mpi_seconds", {{"op", name}}, completion - start);
  if (bytes != 0) {
    m.add("transfer_bytes", {{"kind", "mpi"}}, static_cast<double>(bytes));
  }
}

}  // namespace mgs::msg
