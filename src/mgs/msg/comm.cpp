#include "mgs/msg/comm.hpp"

#include <algorithm>
#include <set>

#include "mgs/sim/profiler.hpp"

namespace mgs::msg {

Communicator::Communicator(topo::Cluster& cluster, std::vector<int> device_ids)
    : cluster_(&cluster), device_ids_(std::move(device_ids)) {
  MGS_REQUIRE(!device_ids_.empty(), "Communicator needs at least one rank");
  std::set<int> seen;
  for (int id : device_ids_) {
    MGS_REQUIRE(id >= 0 && id < cluster_->num_devices(),
                "Communicator: device id out of range");
    MGS_REQUIRE(seen.insert(id).second,
                "Communicator: duplicate device in rank list");
  }
}

int Communicator::device_of(int rank) const {
  MGS_CHECK(rank >= 0 && rank < size(), "rank out of range");
  return device_ids_[static_cast<std::size_t>(rank)];
}

sim::Clock& Communicator::clock_of(int rank) {
  return cluster_->device(device_of(rank)).clock();
}

double Communicator::collective_alpha() const {
  return cluster_->config().links.mpi_overhead_us * 1e-6;
}

double Communicator::message_time(int src_rank, int dst_rank,
                                  std::uint64_t bytes) const {
  const topo::LinkSpec& links = cluster_->config().links;
  // CUDA-aware MPI: the payload rides the best available link between the
  // two GPUs; MPI adds its software overhead on top.
  topo::TransferEngine probe(*cluster_);
  const double wire =
      probe.link_time(device_of(src_rank), device_of(dst_rank), bytes);
  return links.mpi_overhead_us * 1e-6 + wire;
}

double Communicator::barrier() {
  double start = 0.0;
  std::vector<double> entry(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    entry[static_cast<std::size_t>(r)] = clock_of(r).now();
    start = std::max(start, entry[static_cast<std::size_t>(r)]);
  }
  int levels = 0;
  for (int n = size(); n > 1; n = (n + 1) / 2) ++levels;
  const double completion = start + collective_alpha() * std::max(1, levels);
  for (int r = 0; r < size(); ++r) clock_of(r).sync_to(completion);
  // Record the *master's* dwell time (what Figure 14 plots).
  breakdown_.add("MPI_Barrier", completion - entry[0]);
  profile_collective("MPI_Barrier", start, completion, 0);
  return completion;
}

void Communicator::profile_collective(const char* name, double start,
                                      double completion,
                                      std::uint64_t bytes) {
  if (!sim::Profiler::instance().enabled()) return;
  sim::ProfileRecord rec;
  rec.name = name;
  rec.kind = sim::EventKind::kCollective;
  rec.device_id = device_of(0);
  rec.start_seconds = start;
  rec.duration_seconds = completion - start;
  rec.bytes = bytes;
  sim::Profiler::instance().record(std::move(rec));
}

}  // namespace mgs::msg
