#pragma once
/// \file comm.hpp
/// In-process MPI-like runtime over the simulated cluster. One rank per
/// GPU (the paper's multi-node proposal runs an MPI process per GPU and
/// moves the stage-2 auxiliary array with MPI_Gather / MPI_Scatter).
///
/// Semantics: data moves immediately between host-backed device buffers;
/// *time* is modeled per message from the link between the two GPUs
/// (CUDA-aware MPI: P2P when the ranks share a PCIe network, host staging
/// across networks, InfiniBand RDMA across nodes) plus a per-message MPI
/// software overhead. Collectives are blocking: every participant's clock
/// advances to the collective's completion, so -- as the paper observes for
/// its Figure 14 -- the time a rank spends in a collective includes how
/// long it waited for the others.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "mgs/sim/fault.hpp"
#include "mgs/sim/timeline.hpp"
#include "mgs/topo/topology.hpp"
#include "mgs/topo/transfer.hpp"

namespace mgs::msg {

/// Typed error for a collective or point-to-point operation that could not
/// complete: a participating rank's device is down, a message exhausted
/// its retry budget, or a barrier timed out waiting for a straggler.
/// `failed_rank` identifies the culprit so callers can drop it and
/// re-plan instead of aborting.
class CommError : public util::Error {
 public:
  CommError(const std::string& what, int failed_rank)
      : util::Error(what), failed_rank(failed_rank) {}
  int failed_rank;
};

/// One rank's slice of a collective buffer.
template <typename T>
struct Slice {
  simt::DeviceBuffer<T>* buffer = nullptr;
  std::int64_t offset = 0;
  std::int64_t count = 0;
};

class Communicator {
 public:
  /// rank r lives on cluster device device_ids[r]; device_ids must be
  /// distinct. Rank 0 is the master (the paper's "GPU 0").
  Communicator(topo::Cluster& cluster, std::vector<int> device_ids);

  int size() const { return static_cast<int>(device_ids_.size()); }
  int device_of(int rank) const;
  topo::Cluster& cluster() { return *cluster_; }

  /// MPI_Barrier: all ranks advance to max(clock) + software overhead.
  /// Returns the completion time.
  double barrier();

  /// MPI_Gather of equal-size contributions: rank r's slice lands at
  /// recv_offset + r*count in the root's buffer. Root's own contribution
  /// is taken from slices[root]. Returns the completion time.
  template <typename T>
  double gather(int root, const std::vector<Slice<T>>& slices,
                simt::DeviceBuffer<T>& recv, std::int64_t recv_offset);

  /// MPI_Scatter: the inverse of gather (rank r receives
  /// send_offset + r*count .. + count from the root buffer).
  template <typename T>
  double scatter(int root, const simt::DeviceBuffer<T>& send,
                 std::int64_t send_offset, const std::vector<Slice<T>>& slices);

  /// MPI_Bcast: the root's range lands in every rank's slice. Binomial
  /// tree: ceil(log2 R) rounds, each paying the slowest link in use.
  template <typename T>
  double bcast(int root, const simt::DeviceBuffer<T>& send,
               std::int64_t send_offset, const std::vector<Slice<T>>& slices);

  /// MPI_Allgather: every rank ends up with the concatenation of all
  /// ranks' slices (recv buffers must hold count*size() elements).
  /// Modeled as gather-to-0 + bcast, the common small-cluster strategy.
  template <typename T>
  double allgather(const std::vector<Slice<T>>& send,
                   std::vector<simt::DeviceBuffer<T>*> recv);

  /// Point-to-point MPI_Send/MPI_Recv pair (rendezvous: both clocks meet).
  template <typename T>
  double send_recv(int src_rank, int dst_rank,
                   const simt::DeviceBuffer<T>& send, std::int64_t send_offset,
                   simt::DeviceBuffer<T>& recv, std::int64_t recv_offset,
                   std::int64_t count);

  /// Non-blocking MPI_Isend / matching Irecv pair: the message serializes
  /// on the two endpoints' DMA engines (not their compute clocks), so it
  /// overlaps with kernels running on either rank -- this is what the
  /// wave-pipelined multinode Stage 2 is built on. `ready` is an upstream
  /// dependency (the producing kernel's event); the returned Event is the
  /// message's completion, to be waited on by the consumer. Fault
  /// retry/timeout/corruption semantics match send_recv exactly.
  template <typename T>
  simt::Event isend(int src_rank, int dst_rank,
                    const simt::DeviceBuffer<T>& send,
                    std::int64_t send_offset, simt::DeviceBuffer<T>& recv,
                    std::int64_t recv_offset, std::int64_t count,
                    simt::Event ready = {});

  /// Per-operation accumulated time from the root/receiver perspective
  /// ("MPI_Gather", "MPI_Scatter", "MPI_Barrier", "MPI_SendRecv").
  const sim::Breakdown& breakdown() const { return breakdown_; }
  void reset_breakdown() { breakdown_ = sim::Breakdown{}; }

  /// Resilience-cost counters (message retries, corruption re-sends, ...).
  /// All zero when the cluster has no fault injector.
  const sim::FaultCounters& fault_counters() const { return faults_seen_; }
  void reset_fault_counters() { faults_seen_ = sim::FaultCounters{}; }

 private:
  double message_time(int src_rank, int dst_rank, std::uint64_t bytes) const;
  /// Fault-aware message cost: message_time plus straggler slowdown and
  /// the retry/backoff/re-send loop for transient faults, timeouts and
  /// corruption. Throws CommError blaming `blame_rank` when the retry
  /// budget is exhausted. Equals message_time with no injector attached.
  double timed_message(int src_rank, int dst_rank, std::uint64_t bytes,
                       int blame_rank);
  /// timed_message with an explicit start instant (async messages start at
  /// their dependency-resolved time, not the source compute clock).
  double timed_message_at(int src_rank, int dst_rank, std::uint64_t bytes,
                          int blame_rank, double now);
  sim::Clock& dma_clock_of(int rank);
  /// Fixed latency of a message between the two ranks (MPI software
  /// overhead + wire latency): the part that pipelines on the DMA queue.
  double message_latency(int src_rank, int dst_rank) const;
  /// Span + metrics for one async message on the DMA engines. The span
  /// covers [start, engine_release) -- the engine-occupancy window --
  /// with the pipelined latency tail up to `completion` kept as a note.
  void trace_isend(int src_rank, int dst_rank, double start,
                   double engine_release, double completion,
                   std::uint64_t bytes);
  /// Throws CommError for the first participating rank whose device the
  /// attached injector reports down (no-op without an injector).
  void check_ranks_alive(const char* op);
  sim::Clock& clock_of(int rank);
  double collective_alpha() const;  ///< software overhead per collective step
  /// Emit a profiler record for one collective (no-op when disabled) and,
  /// when a TraceSession is installed, a kCollective span plus mpi metrics.
  void profile_collective(const char* name, double start, double completion,
                          std::uint64_t bytes);
  void trace_collective(const char* name, double start, double completion,
                        std::uint64_t bytes);

  topo::Cluster* cluster_;
  std::vector<int> device_ids_;
  sim::Breakdown breakdown_;
  sim::FaultCounters faults_seen_;
};

// ---- template implementations ----

template <typename T>
double Communicator::gather(int root, const std::vector<Slice<T>>& slices,
                            simt::DeviceBuffer<T>& recv,
                            std::int64_t recv_offset) {
  MGS_CHECK(root >= 0 && root < size(), "gather: bad root rank");
  MGS_CHECK(static_cast<int>(slices.size()) == size(),
            "gather: one slice per rank required");
  const std::int64_t count = slices[0].count;
  for (const auto& s : slices) {
    MGS_CHECK(s.buffer != nullptr && s.count == count,
              "gather: equal-size contributions required");
  }
  MGS_CHECK(recv_offset >= 0 &&
                recv_offset + count * size() <= recv.size(),
            "gather: receive buffer too small");
  check_ranks_alive("MPI_Gather");

  const double t0 = clock_of(root).now();
  // Start once every participant has entered the collective.
  double start = 0.0;
  for (int r = 0; r < size(); ++r) start = std::max(start, clock_of(r).now());

  // Root ingests the non-root messages; link times serialize at the root
  // NIC/copy engine. Tree setup costs one alpha per tree level.
  double ingest = 0.0;
  for (int r = 0; r < size(); ++r) {
    if (r == root) continue;
    ingest += timed_message(r, root,
                            static_cast<std::uint64_t>(count) * sizeof(T), r);
  }
  int levels = 0;
  for (int n = size(); n > 1; n = (n + 1) / 2) ++levels;
  const double completion = start + collective_alpha() * levels + ingest;

  // Move the data.
  auto dst = recv.host_span();
  for (int r = 0; r < size(); ++r) {
    const auto src = slices[r].buffer->host_span();
    for (std::int64_t i = 0; i < count; ++i) {
      dst[static_cast<std::size_t>(recv_offset + r * count + i)] =
          src[static_cast<std::size_t>(slices[r].offset + i)];
    }
  }

  for (int r = 0; r < size(); ++r) clock_of(r).sync_to(completion);
  breakdown_.add("MPI_Gather", completion - t0);
  profile_collective("MPI_Gather", start, completion,
                     static_cast<std::uint64_t>(count) * size() * sizeof(T));
  return completion;
}

template <typename T>
double Communicator::scatter(int root, const simt::DeviceBuffer<T>& send,
                             std::int64_t send_offset,
                             const std::vector<Slice<T>>& slices) {
  MGS_CHECK(root >= 0 && root < size(), "scatter: bad root rank");
  MGS_CHECK(static_cast<int>(slices.size()) == size(),
            "scatter: one slice per rank required");
  const std::int64_t count = slices[0].count;
  for (const auto& s : slices) {
    MGS_CHECK(s.buffer != nullptr && s.count == count,
              "scatter: equal-size slices required");
  }
  MGS_CHECK(send_offset >= 0 && send_offset + count * size() <= send.size(),
            "scatter: send buffer too small");
  check_ranks_alive("MPI_Scatter");

  const double t0 = clock_of(root).now();
  double start = 0.0;
  for (int r = 0; r < size(); ++r) start = std::max(start, clock_of(r).now());

  double egress = 0.0;
  for (int r = 0; r < size(); ++r) {
    if (r == root) continue;
    egress += timed_message(root, r,
                            static_cast<std::uint64_t>(count) * sizeof(T), r);
  }
  int levels = 0;
  for (int n = size(); n > 1; n = (n + 1) / 2) ++levels;
  const double completion = start + collective_alpha() * levels + egress;

  const auto src = send.host_span();
  for (int r = 0; r < size(); ++r) {
    auto dst = slices[r].buffer->host_span();
    for (std::int64_t i = 0; i < count; ++i) {
      dst[static_cast<std::size_t>(slices[r].offset + i)] =
          src[static_cast<std::size_t>(send_offset + r * count + i)];
    }
  }

  for (int r = 0; r < size(); ++r) clock_of(r).sync_to(completion);
  breakdown_.add("MPI_Scatter", completion - t0);
  profile_collective("MPI_Scatter", start, completion,
                     static_cast<std::uint64_t>(count) * size() * sizeof(T));
  return completion;
}

template <typename T>
double Communicator::bcast(int root, const simt::DeviceBuffer<T>& send,
                           std::int64_t send_offset,
                           const std::vector<Slice<T>>& slices) {
  MGS_CHECK(root >= 0 && root < size(), "bcast: bad root rank");
  MGS_CHECK(static_cast<int>(slices.size()) == size(),
            "bcast: one slice per rank required");
  const std::int64_t count = slices[0].count;
  for (const auto& s : slices) {
    MGS_CHECK(s.buffer != nullptr && s.count == count,
              "bcast: equal-size slices required");
  }
  MGS_CHECK(send_offset >= 0 && send_offset + count <= send.size(),
            "bcast: send range out of bounds");
  check_ranks_alive("MPI_Bcast");

  const double t0 = clock_of(root).now();
  double start = 0.0;
  for (int r = 0; r < size(); ++r) start = std::max(start, clock_of(r).now());

  // Binomial tree: each round doubles the informed set; the round costs
  // the worst message among the pairs it activates (conservative: the
  // slowest link in the communicator).
  double worst_msg = 0.0;
  for (int r = 0; r < size(); ++r) {
    if (r == root) continue;
    worst_msg = std::max(
        worst_msg, timed_message(
                       root, r,
                       static_cast<std::uint64_t>(count) * sizeof(T), r));
  }
  int levels = 0;
  for (int n = size(); n > 1; n = (n + 1) / 2) ++levels;
  const double completion = start + worst_msg * std::max(1, levels);

  const auto src = send.host_span();
  for (int r = 0; r < size(); ++r) {
    auto dst = slices[static_cast<std::size_t>(r)].buffer->host_span();
    for (std::int64_t i = 0; i < count; ++i) {
      dst[static_cast<std::size_t>(
          slices[static_cast<std::size_t>(r)].offset + i)] =
          src[static_cast<std::size_t>(send_offset + i)];
    }
  }

  for (int r = 0; r < size(); ++r) clock_of(r).sync_to(completion);
  breakdown_.add("MPI_Bcast", completion - t0);
  profile_collective("MPI_Bcast", start, completion,
                     static_cast<std::uint64_t>(count) * size() * sizeof(T));
  return completion;
}

template <typename T>
double Communicator::allgather(const std::vector<Slice<T>>& send,
                               std::vector<simt::DeviceBuffer<T>*> recv) {
  MGS_CHECK(static_cast<int>(send.size()) == size(),
            "allgather: one send slice per rank required");
  MGS_CHECK(static_cast<int>(recv.size()) == size(),
            "allgather: one receive buffer per rank required");
  const std::int64_t count = send[0].count;
  for (int r = 0; r < size(); ++r) {
    MGS_CHECK(recv[static_cast<std::size_t>(r)] != nullptr &&
                  recv[static_cast<std::size_t>(r)]->size() >=
                      count * size(),
              "allgather: receive buffer too small");
  }

  // Gather to rank 0, then broadcast the concatenation.
  gather(0, send, *recv[0], 0);
  std::vector<Slice<T>> full(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    full[static_cast<std::size_t>(r)] = {recv[static_cast<std::size_t>(r)],
                                         0, count * size()};
  }
  return bcast(0, *recv[0], 0, full);
}

template <typename T>
double Communicator::send_recv(int src_rank, int dst_rank,
                               const simt::DeviceBuffer<T>& send,
                               std::int64_t send_offset,
                               simt::DeviceBuffer<T>& recv,
                               std::int64_t recv_offset, std::int64_t count) {
  MGS_CHECK(src_rank >= 0 && src_rank < size(), "send_recv: bad source rank");
  MGS_CHECK(dst_rank >= 0 && dst_rank < size(), "send_recv: bad dest rank");
  MGS_CHECK(send_offset >= 0 && send_offset + count <= send.size(),
            "send_recv: send range out of bounds");
  MGS_CHECK(recv_offset >= 0 && recv_offset + count <= recv.size(),
            "send_recv: recv range out of bounds");
  check_ranks_alive("MPI_SendRecv");

  const double t0 = clock_of(dst_rank).now();
  const double start =
      std::max(clock_of(src_rank).now(), clock_of(dst_rank).now());
  const double completion =
      start + timed_message(src_rank, dst_rank,
                            static_cast<std::uint64_t>(count) * sizeof(T),
                            src_rank);

  const auto s = send.host_span();
  auto d = recv.host_span();
  for (std::int64_t i = 0; i < count; ++i) {
    d[static_cast<std::size_t>(recv_offset + i)] =
        s[static_cast<std::size_t>(send_offset + i)];
  }

  clock_of(src_rank).sync_to(completion);
  clock_of(dst_rank).sync_to(completion);
  breakdown_.add("MPI_SendRecv", completion - t0);
  profile_collective("MPI_SendRecv", start, completion,
                     static_cast<std::uint64_t>(count) * sizeof(T));
  return completion;
}

template <typename T>
simt::Event Communicator::isend(int src_rank, int dst_rank,
                                const simt::DeviceBuffer<T>& send,
                                std::int64_t send_offset,
                                simt::DeviceBuffer<T>& recv,
                                std::int64_t recv_offset, std::int64_t count,
                                simt::Event ready) {
  MGS_CHECK(src_rank >= 0 && src_rank < size(), "isend: bad source rank");
  MGS_CHECK(dst_rank >= 0 && dst_rank < size(), "isend: bad dest rank");
  MGS_CHECK(count >= 0, "isend: negative count");
  MGS_CHECK(send_offset >= 0 && send_offset + count <= send.size(),
            "isend: send range out of bounds");
  MGS_CHECK(recv_offset >= 0 && recv_offset + count <= recv.size(),
            "isend: recv range out of bounds");
  check_ranks_alive("MPI_Isend");

  sim::Clock& src_dma = dma_clock_of(src_rank);
  sim::Clock& dst_dma = dma_clock_of(dst_rank);
  const double start =
      std::max({src_dma.now(), dst_dma.now(), ready.seconds});
  const std::uint64_t bytes = static_cast<std::uint64_t>(count) * sizeof(T);
  // Blame the non-root endpoint: a gather-style send (r -> 0) that keeps
  // failing indicts r, a scatter-style send (0 -> r) indicts r too.
  const int blame = (src_rank == 0) ? dst_rank : src_rank;
  const double dur = timed_message_at(src_rank, dst_rank, bytes, blame, start);
  const double completion = start + dur;

  const auto s = send.host_span();
  auto d = recv.host_span();
  if (count > 0) {
    std::copy(s.begin() + send_offset, s.begin() + (send_offset + count),
              d.begin() + recv_offset);
  }

  // DMA-queue pipelining (see TransferEngine::account_on): the engines
  // are released after the payload time; the fixed MPI + wire latency
  // delays completion but overlaps with the next queued message.
  const double engine_release =
      start + std::max(0.0, dur - message_latency(src_rank, dst_rank));
  src_dma.sync_to(engine_release);
  dst_dma.sync_to(engine_release);
  breakdown_.add("MPI_Isend", dur);
  trace_isend(src_rank, dst_rank, start, engine_release, completion, bytes);
  return simt::Event{completion};
}

}  // namespace mgs::msg
