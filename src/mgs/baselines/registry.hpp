#pragma once
/// \file registry.hpp
/// Type-erased access to the five baseline-library models for int32 sums
/// (the paper's element type), used by the benchmark harnesses. Batch runs
/// follow the paper's methodology: CUDPP uses its native multiScan; every
/// other library is invoked once per problem.

#include <functional>
#include <string>
#include <vector>

#include "mgs/baselines/common.hpp"
#include "mgs/core/dtype.hpp"
#include "mgs/core/op.hpp"
#include "mgs/core/plan.hpp"

namespace mgs::baselines {

struct BaselineRunner {
  BaselineTraits traits;
  /// Scan G problems of N contiguous int32 elements (problem g at offset
  /// g*N). Advances the device clock; returns the simulated result.
  std::function<core::RunResult(
      simt::Device&, const simt::DeviceBuffer<std::int32_t>&,
      simt::DeviceBuffer<std::int32_t>&, std::int64_t n, std::int64_t g,
      core::ScanKind)>
      run_batch;
};

/// All five library models, in the paper's citation order.
const std::vector<BaselineRunner>& all_baselines();

/// Look up by name ("CUDPP", "Thrust", "ModernGPU", "CUB", "LightScan");
/// throws util::Error for unknown names.
const BaselineRunner& baseline_by_name(const std::string& name);

/// Erased batch entry point over the (DType, OpTag) matrix, the baseline
/// twin of ScanExecutor's erased run(): stage the host spans onto `dev`,
/// dispatch once on (dtype, op) to the templated library model, copy the
/// result back. Staging is host-side and untimed (the same convention as
/// the executors' scatter/gather); the spans' dtype is checked, never
/// reinterpreted. Throws util::Error for unknown names.
core::RunResult run_baseline(const std::string& name, simt::Device& dev,
                             core::ConstTypedSpan in, core::TypedSpan out,
                             std::int64_t n, std::int64_t g,
                             core::ScanKind kind,
                             core::OpTag op = core::OpTag::kPlus);

}  // namespace mgs::baselines
