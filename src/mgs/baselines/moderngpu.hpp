#pragma once
/// \file moderngpu.hpp
/// ModernGPU 2.0 scan model: a well-vectorized two-kernel reduce-then-scan
/// (tile reductions, single-CTA spine scan, tile scan with carry). DRAM
/// traffic is ~3N (the downsweep re-reads the input), against CUB's ~2N.
/// ModernGPU's per-invocation cost is high: every call goes through the
/// context's kernel-selection and temporary allocation machinery, which
/// is why its batch-of-small-problems numbers collapse in the paper
/// (245x at n=13, Figure 12).

#include "mgs/baselines/common.hpp"
#include "mgs/core/op.hpp"

namespace mgs::baselines {

inline BaselineTraits moderngpu_traits() {
  // Kernel selection + temp allocation per call; the context's allocator
  // churn dominates in tight loops (calibrated from the paper's Figure 12
  // extremes: ModernGPU/CUB ~ 17x per invocation at n=13, yet ModernGPU
  // is competitive at G = 1 in Figure 11).
  return {"ModernGPU", 20.0, /*loop_extra_us=*/260.0, /*native_batch=*/false};
}

template <typename T, typename Op = core::Plus<T>>
core::RunResult moderngpu_scan(simt::Device& dev,
                               const simt::DeviceBuffer<T>& in,
                               simt::DeviceBuffer<T>& out, std::int64_t offset,
                               std::int64_t n, core::ScanKind kind,
                               Op op = {}) {
  MGS_REQUIRE(n > 0, "moderngpu_scan: empty input");
  MGS_REQUIRE(offset >= 0 && in.size() >= offset + n &&
                  out.size() >= offset + n,
              "moderngpu_scan: range out of bounds");
  constexpr int kThreads = 256;
  constexpr std::int64_t kTile = 4096;  // nt=256, vt=16
  const std::int64_t blocks = util::div_up(
      static_cast<std::uint64_t>(n), static_cast<std::uint64_t>(kTile));

  core::RunResult result;
  result.payload_bytes = 2ull * static_cast<std::uint64_t>(n) * sizeof(T);
  const double start = dev.clock().now();
  charge_host_overhead(dev, moderngpu_traits(), result);

  auto partials = dev.alloc<T>(blocks);
  const auto inv = in.view();
  const auto outv = out.view();
  const auto pv = partials.view();

  // Helper shared by both passes: vectorized tile traversal.
  auto for_tile_quads = [](std::int64_t len, auto&& fn) {
    for (std::int64_t i = 0; i < len; i += 4 * simt::kWarpSize) {
      fn(i, std::min<std::int64_t>(4 * simt::kWarpSize, len - i));
    }
  };

  // Kernel 1: tile reductions (vec4 loads).
  simt::LaunchConfig c1;
  c1.name = "mgpu_reduce_tiles";
  c1.grid = {static_cast<int>(blocks), 1, 1};
  c1.block = {kThreads, 1, 1};
  c1.regs_per_thread = 40;
  auto t1 = simt::launch(dev, c1, [=](simt::BlockCtx& ctx) {
    const std::int64_t b = ctx.block_idx().x;
    const std::int64_t base = offset + b * kTile;
    const std::int64_t len = std::min<std::int64_t>(kTile, n - b * kTile);
    T total = Op::identity();
    for_tile_quads(len, [&](std::int64_t i, std::int64_t cnt) {
      if (cnt == 4 * simt::kWarpSize) {
        const auto q = inv.load4_warp(base + i, ctx.stats());
        for (int l = 0; l < simt::kWarpSize; ++l) {
          total = op(total, op(op(q[l].x, q[l].y), op(q[l].z, q[l].w)));
        }
        ctx.count_alu(4 * simt::kWarpSize);
      } else {
        for (std::int64_t j = 0; j < cnt; ++j) {
          total = op(total, inv.load(base + i + j, ctx.stats()));
        }
        ctx.count_alu(static_cast<std::uint64_t>(cnt));
      }
    });
    pv.store(b, total, ctx.stats());
  });
  result.breakdown.add("mgpu_reduce_tiles", t1.seconds);

  // Spine scan: one CTA, exclusive over the partials (warp loads).
  simt::LaunchConfig c2;
  c2.name = "mgpu_spine_scan";
  c2.grid = {1, 1, 1};
  c2.block = {kThreads, 1, 1};
  c2.regs_per_thread = 32;
  auto t2 = simt::launch(dev, c2, [=](simt::BlockCtx& ctx) {
    T acc = Op::identity();
    for (std::int64_t b0 = 0; b0 < blocks; b0 += simt::kWarpSize) {
      const int cnt = static_cast<int>(
          std::min<std::int64_t>(simt::kWarpSize, blocks - b0));
      auto r = pv.load_warp_partial(b0, cnt, Op::identity(), ctx.stats());
      simt::WarpReg<T> inc = r;
      simt::warp_scan_inclusive(inc, op, ctx.stats());
      simt::WarpReg<T> excl{};
      for (int l = 0; l < simt::kWarpSize; ++l) {
        excl[l] = (l == 0) ? acc : op(acc, inc[l - 1]);
      }
      ctx.count_alu(simt::kWarpSize);
      pv.store_warp_partial(b0, cnt, excl, ctx.stats());
      if (cnt > 0) acc = op(acc, inc[cnt - 1]);
    }
  });
  result.breakdown.add("mgpu_spine_scan", t2.seconds);

  // Kernel 2 (downsweep): tile scan with carry, vec4 in and out.
  simt::LaunchConfig c3 = c1;
  c3.name = "mgpu_scan_tiles";
  auto t3 = simt::launch(dev, c3, [=](simt::BlockCtx& ctx) {
    const std::int64_t b = ctx.block_idx().x;
    const std::int64_t base = offset + b * kTile;
    const std::int64_t len = std::min<std::int64_t>(kTile, n - b * kTile);
    T acc = pv.load(b, ctx.stats());
    for_tile_quads(len, [&](std::int64_t i, std::int64_t cnt) {
      if (cnt == 4 * simt::kWarpSize) {
        auto q = inv.load4_warp(base + i, ctx.stats());
        for (int l = 0; l < simt::kWarpSize; ++l) {
          for (int e = 0; e < 4; ++e) {
            const T x = q[l][e];
            if (kind == core::ScanKind::kInclusive) {
              acc = op(acc, x);
              q[l][e] = acc;
            } else {
              q[l][e] = acc;
              acc = op(acc, x);
            }
          }
        }
        ctx.count_alu(4 * simt::kWarpSize);
        outv.store4_warp(base + i, q, ctx.stats());
      } else {
        for (std::int64_t j = 0; j < cnt; ++j) {
          const T x = inv.load(base + i + j, ctx.stats());
          if (kind == core::ScanKind::kInclusive) {
            acc = op(acc, x);
            outv.store(base + i + j, acc, ctx.stats());
          } else {
            outv.store(base + i + j, acc, ctx.stats());
            acc = op(acc, x);
          }
        }
        ctx.count_alu(static_cast<std::uint64_t>(cnt));
      }
    });
  });
  result.breakdown.add("mgpu_scan_tiles", t3.seconds);

  result.seconds = dev.clock().now() - start;
  return result;
}

}  // namespace mgs::baselines
