#pragma once
/// \file thrust.hpp
/// Thrust 1.8.1 scan model: the three-pass reduce-then-scan of the era
/// (per-tile reduction, scan of the partials, per-tile scan with carry).
/// Two calibrated inefficiencies reproduce Thrust's measured standing in
/// the paper (about 7.8x slower than the tuned proposals at G=1):
///  * the downsweep pass uses scalar, non-vectorized element accesses
///    (one DRAM transaction per element), and
///  * every invocation allocates temporary storage with cudaMalloc
///    (a large per-call host overhead -- Thrust had no temp-storage reuse
///    API in 1.8).

#include "mgs/baselines/common.hpp"
#include "mgs/core/op.hpp"

namespace mgs::baselines {

inline BaselineTraits thrust_traits() {
  // Dispatch + temp-storage allocation per call; in tight loops the
  // cudaFree device sync adds more (calibrated from the paper's Figure 12
  // extremes: Thrust/CUB ~ 5x per invocation at n=13).
  return {"Thrust", 25.0, /*loop_extra_us=*/50.0, /*native_batch=*/false};
}

/// Scan in[offset, offset+n) into out[offset, offset+n).
template <typename T, typename Op = core::Plus<T>>
core::RunResult thrust_scan(simt::Device& dev,
                            const simt::DeviceBuffer<T>& in,
                            simt::DeviceBuffer<T>& out, std::int64_t offset,
                            std::int64_t n, core::ScanKind kind, Op op = {}) {
  MGS_REQUIRE(n > 0, "thrust_scan: empty input");
  MGS_REQUIRE(offset >= 0 && in.size() >= offset + n &&
                  out.size() >= offset + n,
              "thrust_scan: range out of bounds");
  constexpr int kThreads = 128;
  constexpr std::int64_t kTile = 1024;
  const std::int64_t blocks = util::div_up(
      static_cast<std::uint64_t>(n), static_cast<std::uint64_t>(kTile));

  core::RunResult result;
  result.payload_bytes = 2ull * static_cast<std::uint64_t>(n) * sizeof(T);
  const double start = dev.clock().now();
  charge_host_overhead(dev, thrust_traits(), result);

  auto partials = dev.alloc<T>(blocks);
  const auto inv = in.view();
  const auto outv = out.view();
  const auto pv = partials.view();

  // Pass 1: per-tile reduction (coalesced warp loads).
  simt::LaunchConfig c1;
  c1.name = "thrust_reduce_tiles";
  c1.grid = {static_cast<int>(blocks), 1, 1};
  c1.block = {kThreads, 1, 1};
  c1.regs_per_thread = 40;
  auto t1 = simt::launch(dev, c1, [=](simt::BlockCtx& ctx) {
    const std::int64_t b = ctx.block_idx().x;
    const std::int64_t base = offset + b * kTile;
    const std::int64_t len = std::min<std::int64_t>(kTile, n - b * kTile);
    T total = Op::identity();
    for (std::int64_t i = 0; i < len; i += simt::kWarpSize) {
      const int cnt =
          static_cast<int>(std::min<std::int64_t>(simt::kWarpSize, len - i));
      const auto r =
          inv.load_warp_partial(base + i, cnt, Op::identity(), ctx.stats());
      for (int l = 0; l < cnt; ++l) total = op(total, r[l]);
      ctx.count_alu(static_cast<std::uint64_t>(cnt));
    }
    pv.store(b, total, ctx.stats());
  });
  result.breakdown.add("thrust_reduce_tiles", t1.seconds);

  // Pass 2: one block scans the partials (exclusive), scalar accesses.
  simt::LaunchConfig c2;
  c2.name = "thrust_scan_partials";
  c2.grid = {1, 1, 1};
  c2.block = {kThreads, 1, 1};
  c2.regs_per_thread = 32;
  auto t2 = simt::launch(dev, c2, [=](simt::BlockCtx& ctx) {
    T acc = Op::identity();
    for (std::int64_t b = 0; b < blocks; ++b) {
      const T x = pv.load(b, ctx.stats());
      pv.store(b, acc, ctx.stats());
      acc = op(acc, x);
      ctx.count_alu(1);
    }
  });
  result.breakdown.add("thrust_scan_partials", t2.seconds);

  // Pass 3: per-tile serial scan with carry; scalar loads and stores
  // (Thrust 1.8's downsweep was not vectorized).
  simt::LaunchConfig c3;
  c3.name = "thrust_scan_tiles";
  c3.grid = {static_cast<int>(blocks), 1, 1};
  c3.block = {kThreads, 1, 1};
  c3.regs_per_thread = 40;
  auto t3 = simt::launch(dev, c3, [=](simt::BlockCtx& ctx) {
    const std::int64_t b = ctx.block_idx().x;
    const std::int64_t base = offset + b * kTile;
    const std::int64_t len = std::min<std::int64_t>(kTile, n - b * kTile);
    T acc = pv.load(b, ctx.stats());
    for (std::int64_t i = 0; i < len; ++i) {
      const T x = inv.load(base + i, ctx.stats());
      if (kind == core::ScanKind::kInclusive) {
        acc = op(acc, x);
        outv.store(base + i, acc, ctx.stats());
      } else {
        outv.store(base + i, acc, ctx.stats());
        acc = op(acc, x);
      }
      ctx.count_alu(1);
    }
  });
  result.breakdown.add("thrust_scan_tiles", t3.seconds);

  result.seconds = dev.clock().now() - start;
  return result;
}

}  // namespace mgs::baselines
