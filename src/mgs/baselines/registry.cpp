#include "mgs/baselines/registry.hpp"

#include "mgs/baselines/cub.hpp"
#include "mgs/baselines/cudpp.hpp"
#include "mgs/baselines/lightscan.hpp"
#include "mgs/baselines/moderngpu.hpp"
#include "mgs/baselines/thrust.hpp"

namespace mgs::baselines {

namespace {

using Buffer = simt::DeviceBuffer<std::int32_t>;

/// Wrap a single-problem scanner as a G-invocation batch runner.
template <typename ScanOne>
BaselineRunner per_problem_runner(BaselineTraits traits, ScanOne scan_one) {
  BaselineRunner r;
  r.traits = std::move(traits);
  const BaselineTraits traits_copy = r.traits;
  r.run_batch = [scan_one, traits_copy](simt::Device& dev, const Buffer& in,
                                        Buffer& out, std::int64_t n,
                                        std::int64_t g, core::ScanKind kind) {
    return run_per_problem_batch<std::int32_t>(
        dev, in, out, n, g, traits_copy,
        [&](simt::Device& d, const Buffer& i, Buffer& o, std::int64_t off,
            std::int64_t len) { return scan_one(d, i, o, off, len, kind); });
  };
  return r;
}

std::vector<BaselineRunner> build_registry() {
  std::vector<BaselineRunner> list;

  BaselineRunner cudpp;
  cudpp.traits = cudpp_traits();
  cudpp.run_batch = [](simt::Device& dev, const Buffer& in, Buffer& out,
                       std::int64_t n, std::int64_t g, core::ScanKind kind) {
    return cudpp_multiscan<std::int32_t>(dev, in, out, n, g, kind);
  };
  list.push_back(std::move(cudpp));

  list.push_back(per_problem_runner(
      thrust_traits(),
      [](simt::Device& d, const Buffer& i, Buffer& o, std::int64_t off,
         std::int64_t len, core::ScanKind kind) {
        return thrust_scan<std::int32_t>(d, i, o, off, len, kind);
      }));

  list.push_back(per_problem_runner(
      moderngpu_traits(),
      [](simt::Device& d, const Buffer& i, Buffer& o, std::int64_t off,
         std::int64_t len, core::ScanKind kind) {
        return moderngpu_scan<std::int32_t>(d, i, o, off, len, kind);
      }));

  list.push_back(per_problem_runner(
      cub_traits(),
      [](simt::Device& d, const Buffer& i, Buffer& o, std::int64_t off,
         std::int64_t len, core::ScanKind kind) {
        return cub_scan<std::int32_t>(d, i, o, off, len, kind);
      }));

  list.push_back(per_problem_runner(
      lightscan_traits(),
      [](simt::Device& d, const Buffer& i, Buffer& o, std::int64_t off,
         std::int64_t len, core::ScanKind kind) {
        return lightscan_scan<std::int32_t>(d, i, o, off, len, kind);
      }));

  return list;
}

}  // namespace

const std::vector<BaselineRunner>& all_baselines() {
  static const std::vector<BaselineRunner> registry = build_registry();
  return registry;
}

const BaselineRunner& baseline_by_name(const std::string& name) {
  for (const auto& b : all_baselines()) {
    if (b.traits.name == name) return b;
  }
  throw util::Error("unknown baseline '" + name + "'");
}

}  // namespace mgs::baselines
