#include "mgs/baselines/registry.hpp"

#include <algorithm>

#include "mgs/baselines/cub.hpp"
#include "mgs/baselines/cudpp.hpp"
#include "mgs/baselines/lightscan.hpp"
#include "mgs/baselines/moderngpu.hpp"
#include "mgs/baselines/thrust.hpp"

namespace mgs::baselines {

namespace {

using Buffer = simt::DeviceBuffer<std::int32_t>;

/// Wrap a single-problem scanner as a G-invocation batch runner.
template <typename ScanOne>
BaselineRunner per_problem_runner(BaselineTraits traits, ScanOne scan_one) {
  BaselineRunner r;
  r.traits = std::move(traits);
  const BaselineTraits traits_copy = r.traits;
  r.run_batch = [scan_one, traits_copy](simt::Device& dev, const Buffer& in,
                                        Buffer& out, std::int64_t n,
                                        std::int64_t g, core::ScanKind kind) {
    return run_per_problem_batch<std::int32_t>(
        dev, in, out, n, g, traits_copy,
        [&](simt::Device& d, const Buffer& i, Buffer& o, std::int64_t off,
            std::int64_t len) { return scan_one(d, i, o, off, len, kind); });
  };
  return r;
}

std::vector<BaselineRunner> build_registry() {
  std::vector<BaselineRunner> list;

  BaselineRunner cudpp;
  cudpp.traits = cudpp_traits();
  cudpp.run_batch = [](simt::Device& dev, const Buffer& in, Buffer& out,
                       std::int64_t n, std::int64_t g, core::ScanKind kind) {
    return cudpp_multiscan<std::int32_t>(dev, in, out, n, g, kind);
  };
  list.push_back(std::move(cudpp));

  list.push_back(per_problem_runner(
      thrust_traits(),
      [](simt::Device& d, const Buffer& i, Buffer& o, std::int64_t off,
         std::int64_t len, core::ScanKind kind) {
        return thrust_scan<std::int32_t>(d, i, o, off, len, kind);
      }));

  list.push_back(per_problem_runner(
      moderngpu_traits(),
      [](simt::Device& d, const Buffer& i, Buffer& o, std::int64_t off,
         std::int64_t len, core::ScanKind kind) {
        return moderngpu_scan<std::int32_t>(d, i, o, off, len, kind);
      }));

  list.push_back(per_problem_runner(
      cub_traits(),
      [](simt::Device& d, const Buffer& i, Buffer& o, std::int64_t off,
         std::int64_t len, core::ScanKind kind) {
        return cub_scan<std::int32_t>(d, i, o, off, len, kind);
      }));

  list.push_back(per_problem_runner(
      lightscan_traits(),
      [](simt::Device& d, const Buffer& i, Buffer& o, std::int64_t off,
         std::int64_t len, core::ScanKind kind) {
        return lightscan_scan<std::int32_t>(d, i, o, off, len, kind);
      }));

  return list;
}

}  // namespace

const std::vector<BaselineRunner>& all_baselines() {
  static const std::vector<BaselineRunner> registry = build_registry();
  return registry;
}

const BaselineRunner& baseline_by_name(const std::string& name) {
  for (const auto& b : all_baselines()) {
    if (b.traits.name == name) return b;
  }
  throw util::Error("unknown baseline '" + name + "'");
}

namespace {

/// Monomorphic tail of the erased entry point: stage, run, unstage.
template <typename T, typename Op>
core::RunResult run_baseline_typed(const std::string& name, simt::Device& dev,
                                   std::span<const T> in, std::span<T> out,
                                   std::int64_t n, std::int64_t g,
                                   core::ScanKind kind) {
  MGS_REQUIRE(n > 0 && g > 0, "run_baseline: N and G must be positive");
  MGS_REQUIRE(static_cast<std::int64_t>(in.size()) >= n * g &&
                  static_cast<std::int64_t>(out.size()) >= n * g,
              "run_baseline: spans must hold N*G elements");
  auto din = dev.alloc<T>(n * g);
  auto dout = dev.alloc<T>(n * g);
  std::copy(in.begin(), in.begin() + static_cast<std::ptrdiff_t>(n * g),
            din.host_span().begin());

  core::RunResult r;
  if (name == "CUDPP") {
    r = cudpp_multiscan<T, Op>(dev, din, dout, n, g, kind);
  } else {
    const BaselineTraits traits = baseline_by_name(name).traits;
    r = run_per_problem_batch<T>(
        dev, din, dout, n, g, traits,
        [&](simt::Device& d, const simt::DeviceBuffer<T>& i,
            simt::DeviceBuffer<T>& o, std::int64_t off, std::int64_t len) {
          if (name == "Thrust") return thrust_scan<T, Op>(d, i, o, off, len, kind);
          if (name == "ModernGPU") {
            return moderngpu_scan<T, Op>(d, i, o, off, len, kind);
          }
          if (name == "CUB") return cub_scan<T, Op>(d, i, o, off, len, kind);
          if (name == "LightScan") {
            return lightscan_scan<T, Op>(d, i, o, off, len, kind);
          }
          throw util::Error("unknown baseline '" + name + "'");
        });
  }
  const auto produced = dout.host_span();
  std::copy(produced.begin(),
            produced.begin() + static_cast<std::ptrdiff_t>(n * g),
            out.begin());
  return r;
}

/// Second dispatch level: operator column for a fixed element type.
template <typename T>
core::RunResult run_baseline_for(const std::string& name, simt::Device& dev,
                                 core::ConstTypedSpan in, core::TypedSpan out,
                                 std::int64_t n, std::int64_t g,
                                 core::ScanKind kind, core::OpTag op) {
  switch (op) {
    case core::OpTag::kPlus:
      return run_baseline_typed<T, core::Plus<T>>(name, dev, in.as<T>(),
                                                  out.as<T>(), n, g, kind);
    case core::OpTag::kMax:
      return run_baseline_typed<T, core::Max<T>>(name, dev, in.as<T>(),
                                                 out.as<T>(), n, g, kind);
    case core::OpTag::kMin:
      return run_baseline_typed<T, core::Min<T>>(name, dev, in.as<T>(),
                                                 out.as<T>(), n, g, kind);
  }
  throw util::Error("run_baseline: unknown operator tag");
}

}  // namespace

core::RunResult run_baseline(const std::string& name, simt::Device& dev,
                             core::ConstTypedSpan in, core::TypedSpan out,
                             std::int64_t n, std::int64_t g,
                             core::ScanKind kind, core::OpTag op) {
  switch (in.dtype) {
    case core::DType::kI32:
      return run_baseline_for<std::int32_t>(name, dev, in, out, n, g, kind,
                                            op);
    case core::DType::kI64:
      return run_baseline_for<std::int64_t>(name, dev, in, out, n, g, kind,
                                            op);
    case core::DType::kU32:
      return run_baseline_for<std::uint32_t>(name, dev, in, out, n, g, kind,
                                             op);
    case core::DType::kF32:
      return run_baseline_for<float>(name, dev, in, out, n, g, kind, op);
    case core::DType::kF64:
      return run_baseline_for<double>(name, dev, in, out, n, g, kind, op);
  }
  throw util::Error("run_baseline: unknown dtype");
}

}  // namespace mgs::baselines
