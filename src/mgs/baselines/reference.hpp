#pragma once
/// \file reference.hpp
/// Serial host reference scans: the correctness oracle every kernel and
/// proposal is tested against.

#include <span>
#include <vector>

#include "mgs/core/op.hpp"
#include "mgs/util/check.hpp"

namespace mgs::baselines {

/// out[i] = op(in[0..i]) (inclusive) or op(in[0..i-1]) (exclusive, with
/// out[0] = identity). in and out may alias.
template <typename T, typename Op = core::Plus<T>>
void reference_scan(std::span<const T> in, std::span<T> out,
                    core::ScanKind kind, Op op = {}) {
  MGS_CHECK(in.size() == out.size(), "reference_scan: size mismatch");
  T acc = Op::identity();
  for (std::size_t i = 0; i < in.size(); ++i) {
    const T x = in[i];
    if (kind == core::ScanKind::kInclusive) {
      acc = op(acc, x);
      out[i] = acc;
    } else {
      out[i] = acc;
      acc = op(acc, x);
    }
  }
}

/// Batched reference: G problems of N contiguous elements.
template <typename T, typename Op = core::Plus<T>>
std::vector<T> reference_batch_scan(std::span<const T> in, std::int64_t n,
                                    std::int64_t g, core::ScanKind kind,
                                    Op op = {}) {
  MGS_CHECK(static_cast<std::int64_t>(in.size()) >= n * g,
            "reference_batch_scan: input too small");
  std::vector<T> out(static_cast<std::size_t>(n * g));
  for (std::int64_t p = 0; p < g; ++p) {
    reference_scan<T, Op>(in.subspan(static_cast<std::size_t>(p * n),
                                     static_cast<std::size_t>(n)),
                          std::span<T>(out).subspan(
                              static_cast<std::size_t>(p * n),
                              static_cast<std::size_t>(n)),
                          kind, op);
  }
  return out;
}

/// Inclusive segmented reference: flags[i] != 0 restarts the running value
/// at element i.
template <typename T, typename Op = core::Plus<T>>
std::vector<T> reference_segmented_scan(std::span<const T> in,
                                        std::span<const T> flags, Op op = {}) {
  MGS_CHECK(in.size() == flags.size(), "reference_segmented_scan: mismatch");
  std::vector<T> out(in.size());
  T acc = Op::identity();
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc = (flags[i] != T{0}) ? in[i] : op(acc, in[i]);
    out[i] = acc;
  }
  return out;
}

}  // namespace mgs::baselines
