#pragma once
/// \file cub.hpp
/// CUB DeviceScan model: the single-pass decoupled look-back scan
/// (Merrill & Garland). One kernel; each tile publishes its aggregate,
/// looks back over predecessor tile states until it meets an inclusive
/// prefix, then publishes its own inclusive prefix and writes its scanned
/// tile. DRAM traffic is ~2N -- "CUB already runs at nearly the maximum
/// theoretical rate for a single GPU" (Section 1.1) -- so this is the
/// strongest single-GPU baseline, with a small per-call host cost.
///
/// The look-back spin executes for real on the host pool (safe: blocks
/// are dispatched in ascending index order, so a predecessor is always
/// finished or running), while its *modeled* cost is a fixed two
/// transactions + constant lane-ops per tile to keep simulated time
/// deterministic.

#include <thread>

#include "mgs/baselines/common.hpp"
#include "mgs/core/op.hpp"

namespace mgs::baselines {

inline BaselineTraits cub_traits() {
  return {"CUB", 7.0, /*loop_extra_us=*/2.0, /*native_batch=*/false};
}

namespace detail {
inline constexpr std::int32_t kTileInvalid = 0;
inline constexpr std::int32_t kTileAggregate = 1;
inline constexpr std::int32_t kTilePrefix = 2;
}  // namespace detail

template <typename T, typename Op = core::Plus<T>>
core::RunResult cub_scan(simt::Device& dev, const simt::DeviceBuffer<T>& in,
                         simt::DeviceBuffer<T>& out, std::int64_t offset,
                         std::int64_t n, core::ScanKind kind, Op op = {}) {
  MGS_REQUIRE(n > 0, "cub_scan: empty input");
  MGS_REQUIRE(offset >= 0 && in.size() >= offset + n && out.size() >= offset + n,
              "cub_scan: range out of bounds");
  constexpr int kThreads = 128;
  constexpr std::int64_t kTile = 2048;  // 128 threads x 16 items
  const std::int64_t blocks = util::div_up(
      static_cast<std::uint64_t>(n), static_cast<std::uint64_t>(kTile));

  core::RunResult result;
  result.payload_bytes = 2ull * static_cast<std::uint64_t>(n) * sizeof(T);
  const double start = dev.clock().now();
  charge_host_overhead(dev, cub_traits(), result);

  // Tile state: status word + aggregate + inclusive prefix per tile.
  auto status = dev.alloc<std::int32_t>(blocks);
  auto aggregate = dev.alloc<T>(blocks);
  auto prefix = dev.alloc<T>(blocks);

  // Init kernel (DeviceScan's ScanInitKernel): zero the tile states.
  {
    simt::LaunchConfig ci;
    ci.name = "cub_init_states";
    ci.grid = {static_cast<int>(util::div_up(
                   static_cast<std::uint64_t>(blocks), 128)),
               1, 1};
    ci.block = {128, 1, 1};
    ci.regs_per_thread = 16;
    const auto stv = status.view();
    auto t0 = simt::launch(dev, ci, [=](simt::BlockCtx& ctx) {
      const std::int64_t base = static_cast<std::int64_t>(ctx.block_idx().x) * 128;
      for (std::int64_t i = base; i < std::min<std::int64_t>(base + 128, blocks);
           ++i) {
        stv.store(i, detail::kTileInvalid, ctx.stats());
      }
    });
    result.breakdown.add("cub_init_states", t0.seconds);
  }

  const auto inv = in.view();
  const auto outv = out.view();
  const auto stv = status.view();
  const auto agv = aggregate.view();
  const auto pfv = prefix.view();

  simt::LaunchConfig cfg;
  cfg.name = "cub_scan_kernel";
  cfg.grid = {static_cast<int>(blocks), 1, 1};
  cfg.block = {kThreads, 1, 1};
  cfg.regs_per_thread = 40;
  cfg.smem_per_block = 4 * kThreads * static_cast<std::int64_t>(sizeof(T));
  auto t = simt::launch(dev, cfg, [=](simt::BlockCtx& ctx) {
    const std::int64_t b = ctx.block_idx().x;
    const std::int64_t base = offset + b * kTile;
    const std::int64_t len = std::min<std::int64_t>(kTile, n - b * kTile);

    // Load + local scan of the tile (vec4 fast path).
    std::vector<T> tile(static_cast<std::size_t>(len));
    for (std::int64_t i = 0; i < len; i += 4 * simt::kWarpSize) {
      const std::int64_t cnt =
          std::min<std::int64_t>(4 * simt::kWarpSize, len - i);
      if (cnt == 4 * simt::kWarpSize) {
        const auto q = inv.load4_warp(base + i, ctx.stats());
        for (int l = 0; l < simt::kWarpSize; ++l) {
          for (int e = 0; e < 4; ++e) {
            tile[static_cast<std::size_t>(i + 4 * l + e)] = q[l][e];
          }
        }
      } else {
        for (std::int64_t j = 0; j < cnt; ++j) {
          tile[static_cast<std::size_t>(i + j)] =
              inv.load(base + i + j, ctx.stats());
        }
      }
    }
    T tile_total = Op::identity();
    for (std::int64_t i = 0; i < len; ++i) {
      tile_total = op(tile_total, tile[static_cast<std::size_t>(i)]);
    }
    ctx.count_alu(2 * static_cast<std::uint64_t>(len));  // raking scan cost

    // Publish aggregate; look back for the exclusive prefix.
    T excl = Op::identity();
    if (b == 0) {
      pfv.store(b, tile_total, ctx.stats());
      agv.store(b, tile_total, ctx.stats());
      stv.atomic_store(b, detail::kTilePrefix, ctx.stats());
    } else {
      agv.store(b, tile_total, ctx.stats());
      stv.atomic_store(b, detail::kTileAggregate, ctx.stats());
      // Real spin (bounded by in-order dispatch); modeled cost is fixed.
      T running = Op::identity();
      std::int64_t j = b - 1;
      for (;;) {
        const std::int32_t s = stv.atomic_peek(j);
        if (s == detail::kTilePrefix) {
          running = op(pfv.atomic_peek(j), running);
          break;
        }
        if (s == detail::kTileAggregate) {
          running = op(agv.atomic_peek(j), running);
          --j;
          MGS_CHECK(j >= 0, "cub look-back ran past tile 0");
          continue;
        }
        std::this_thread::yield();
      }
      excl = running;
      // Fixed model: one status+value read and the prefix publication.
      ctx.stats().bytes_read += sizeof(std::int32_t) + sizeof(T);
      ctx.stats().mem_transactions += 2;
      ctx.count_alu(16);
      pfv.store(b, op(excl, tile_total), ctx.stats());
      stv.atomic_store(b, detail::kTilePrefix, ctx.stats());
    }

    // Write the scanned tile.
    T acc = excl;
    for (std::int64_t i = 0; i < len; i += 4 * simt::kWarpSize) {
      const std::int64_t cnt =
          std::min<std::int64_t>(4 * simt::kWarpSize, len - i);
      if (cnt == 4 * simt::kWarpSize) {
        simt::WarpReg<simt::Vec4<T>> q;
        for (int l = 0; l < simt::kWarpSize; ++l) {
          for (int e = 0; e < 4; ++e) {
            const T x = tile[static_cast<std::size_t>(i + 4 * l + e)];
            if (kind == core::ScanKind::kInclusive) {
              acc = op(acc, x);
              q[l][e] = acc;
            } else {
              q[l][e] = acc;
              acc = op(acc, x);
            }
          }
        }
        outv.store4_warp(base + i, q, ctx.stats());
      } else {
        for (std::int64_t j2 = 0; j2 < cnt; ++j2) {
          const T x = tile[static_cast<std::size_t>(i + j2)];
          if (kind == core::ScanKind::kInclusive) {
            acc = op(acc, x);
            outv.store(base + i + j2, acc, ctx.stats());
          } else {
            outv.store(base + i + j2, acc, ctx.stats());
            acc = op(acc, x);
          }
        }
      }
      ctx.count_alu(static_cast<std::uint64_t>(cnt));
    }
  });
  result.breakdown.add("cub_scan_kernel", t.seconds);

  result.seconds = dev.clock().now() - start;
  return result;
}

}  // namespace mgs::baselines
