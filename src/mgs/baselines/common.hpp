#pragma once
/// \file common.hpp
/// Shared machinery for the baseline-library models. Each baseline is a
/// *functional* re-implementation of the published algorithm on the same
/// simulated substrate as our proposals, plus a per-invocation host-API
/// overhead constant calibrated from the paper's relative measurements
/// (temp-buffer allocation, plan lookup, host synchronization -- whatever
/// the real library pays per call). See DESIGN.md, "Substitutions".

#include <functional>
#include <string>

#include "mgs/core/plan.hpp"
#include "mgs/simt/device.hpp"
#include "mgs/simt/launch.hpp"
#include "mgs/simt/warp.hpp"

namespace mgs::baselines {

/// Identity and cost calibration of one library model.
struct BaselineTraits {
  std::string name;
  /// Host-side cost of any single invocation (dispatch, plan lookup).
  double per_call_overhead_us = 10.0;
  /// Additional cost per invocation when the library is called in a tight
  /// loop (the paper's G-invocation methodology): temporary-storage
  /// cudaMalloc/cudaFree churn, where each cudaFree synchronizes the
  /// device before the next call can be enqueued. A single cold call does
  /// not pay this, which is why the libraries look reasonable at G = 1
  /// (Figure 11) yet collapse by orders of magnitude in batch mode
  /// (Figure 12).
  double loop_extra_us = 0.0;
  bool native_batch = false;  ///< true: one invocation scans G problems
                              ///< (only CUDPP's multiScan in 2018)
};

/// Charge one invocation's host overhead: the device stream stalls for
/// the host work (allocation/synchronization) before the kernels run.
inline void charge_host_overhead(simt::Device& dev,
                                 const BaselineTraits& traits,
                                 core::RunResult& result) {
  const double s = traits.per_call_overhead_us * 1e-6;
  dev.clock().advance(s);
  result.breakdown.add("HostAPI", s);
}

/// Run a single-problem scanner G times (the paper's methodology for
/// Thrust / ModernGPU / CUB / LightScan, none of which had batch support:
/// "the corresponding function is also invoked G times"). Calls after the
/// first pay the library's loop_extra_us (see BaselineTraits).
template <typename T, typename ScanFn>
core::RunResult run_per_problem_batch(simt::Device& dev,
                                      const simt::DeviceBuffer<T>& in,
                                      simt::DeviceBuffer<T>& out,
                                      std::int64_t n, std::int64_t g,
                                      const BaselineTraits& traits,
                                      ScanFn scan_one) {
  core::RunResult total;
  total.payload_bytes = 2ull * static_cast<std::uint64_t>(n) * g * sizeof(T);
  const double start = dev.clock().now();
  for (std::int64_t p = 0; p < g; ++p) {
    if (p > 0 && traits.loop_extra_us > 0.0) {
      const double s = traits.loop_extra_us * 1e-6;
      dev.clock().advance(s);
      total.breakdown.add("HostLoopChurn", s);
    }
    core::RunResult r = scan_one(dev, in, out, p * n, n);
    total.breakdown.merge(r.breakdown);
  }
  total.seconds = dev.clock().now() - start;
  return total;
}

}  // namespace mgs::baselines
