#pragma once
/// \file cudpp.hpp
/// CUDPP 2.2 scan model: the classic work-efficient Blelloch scan --
/// per-block shared-memory up-sweep/down-sweep, recursive scan of the
/// block sums, then a uniform-add pass. The uniform add re-reads and
/// re-writes the output, so the algorithm moves ~4N elements of DRAM
/// traffic versus CUB's ~2N; the whole tile also lives in shared memory,
/// which the occupancy calculator sees. CUDPP is the one 2018 library
/// with native batch support (multiScan), which this model implements
/// with 2-D grids (one plan, one invocation for all G problems).

#include <vector>

#include "mgs/baselines/common.hpp"
#include "mgs/core/op.hpp"

namespace mgs::baselines {

inline BaselineTraits cudpp_traits() {
  // Plan-handle lookup and kernel-selection logic per invocation.
  return {"CUDPP", 18.0, /*loop_extra_us=*/0.0, /*native_batch=*/true};
}

namespace detail {

inline constexpr int kCudppThreads = 256;
inline constexpr int kCudppElemsPerThread = 8;
inline constexpr std::int64_t kCudppTile =
    kCudppThreads * kCudppElemsPerThread;  // 2048

/// One recursion level: scan `g` rows of `n` elements (row p starts at
/// offset + p*row_stride), reading from `src` and writing to `data`
/// (src == data for the in-place recursion on the block sums), exclusive
/// within each row; per-block totals go to `sums` ([g][blocks] row-major)
/// unless blocks == 1.
template <typename T, typename Op>
void cudpp_level(simt::Device& dev, const simt::DeviceBuffer<T>& src,
                 simt::DeviceBuffer<T>& data, std::int64_t offset,
                 std::int64_t row_stride, std::int64_t n, std::int64_t g,
                 core::ScanKind kind, Op op, core::RunResult& result) {
  const std::int64_t blocks = util::div_up(
      static_cast<std::uint64_t>(n), static_cast<std::uint64_t>(kCudppTile));

  simt::LaunchConfig cfg;
  cfg.name = "cudpp_scan_tiles";
  cfg.grid = {static_cast<int>(blocks), static_cast<int>(g), 1};
  cfg.block = {kCudppThreads, 1, 1};
  cfg.regs_per_thread = 32;
  cfg.smem_per_block = kCudppTile * static_cast<std::int64_t>(sizeof(T));

  simt::DeviceBuffer<T> sums;
  if (blocks > 1) sums = dev.alloc<T>(blocks * g);

  const auto srcv = src.view();
  const auto dv = data.view();
  const auto sv = blocks > 1 ? sums.view() : simt::GlobalView<T>{};
  auto t = simt::launch(dev, cfg, [=](simt::BlockCtx& ctx) {
    const std::int64_t b = ctx.block_idx().x;
    const std::int64_t p = ctx.block_idx().y;
    const std::int64_t base = offset + p * row_stride + b * kCudppTile;
    const std::int64_t len = std::min<std::int64_t>(kCudppTile, n - b * kCudppTile);
    // Load the tile into shared memory (coalesced warp loads).
    auto smem = ctx.shared<T>(kCudppTile);
    for (std::int64_t i = 0; i < len; i += simt::kWarpSize) {
      const int cnt =
          static_cast<int>(std::min<std::int64_t>(simt::kWarpSize, len - i));
      const auto r = srcv.load_warp_partial(base + i, cnt, Op::identity(),
                                            ctx.stats());
      for (int l = 0; l < cnt; ++l) smem[static_cast<std::size_t>(i + l)] = r[l];
    }
    ctx.sync();
    // Blelloch up-sweep + down-sweep in shared memory: ~2 ops/element.
    T total = Op::identity();
    for (std::int64_t i = 0; i < len; ++i) total = op(total, smem[static_cast<std::size_t>(i)]);
    T acc = Op::identity();
    for (std::int64_t i = 0; i < len; ++i) {
      const T x = smem[static_cast<std::size_t>(i)];
      smem[static_cast<std::size_t>(i)] = acc;  // exclusive within tile
      acc = op(acc, x);
    }
    ctx.count_alu(2 * static_cast<std::uint64_t>(len));
    ctx.sync();
    // Store the scanned tile and the block total.
    for (std::int64_t i = 0; i < len; i += simt::kWarpSize) {
      const int cnt =
          static_cast<int>(std::min<std::int64_t>(simt::kWarpSize, len - i));
      simt::WarpReg<T> r{};
      for (int l = 0; l < cnt; ++l) r[l] = smem[static_cast<std::size_t>(i + l)];
      dv.store_warp_partial(base + i, cnt, r, ctx.stats());
    }
    if (blocks > 1) sv.store(p * blocks + b, total, ctx.stats());
  });
  result.breakdown.add("cudpp_scan_tiles", t.seconds);

  if (blocks == 1) {
    (void)kind;
    return;
  }

  // Recursively exclusive-scan the block sums (per problem row).
  cudpp_level(dev, sums, sums, 0, blocks, blocks, g,
              core::ScanKind::kExclusive, op, result);

  // Uniform add: re-read the output, fold in the scanned block sum.
  simt::LaunchConfig add_cfg = cfg;
  add_cfg.name = "cudpp_uniform_add";
  add_cfg.smem_per_block = static_cast<std::int64_t>(sizeof(T));
  const auto sums_v = sums.view();
  auto t2 = simt::launch(dev, add_cfg, [=](simt::BlockCtx& ctx) {
    const std::int64_t b = ctx.block_idx().x;
    const std::int64_t p = ctx.block_idx().y;
    const std::int64_t base = offset + p * row_stride + b * kCudppTile;
    const std::int64_t len = std::min<std::int64_t>(kCudppTile, n - b * kCudppTile);
    const T add = sums_v.load(p * blocks + b, ctx.stats());
    for (std::int64_t i = 0; i < len; i += simt::kWarpSize) {
      const int cnt =
          static_cast<int>(std::min<std::int64_t>(simt::kWarpSize, len - i));
      auto r = dv.load_warp_partial(base + i, cnt, Op::identity(), ctx.stats());
      for (int l = 0; l < cnt; ++l) r[l] = op(add, r[l]);
      ctx.count_alu(static_cast<std::uint64_t>(cnt));
      dv.store_warp_partial(base + i, cnt, r, ctx.stats());
    }
  });
  result.breakdown.add("cudpp_uniform_add", t2.seconds);
}

}  // namespace detail

/// CUDPP multiScan: G problems of N contiguous elements in one invocation.
/// CUDPP's native operation is the exclusive scan; the inclusive variant
/// pays one extra pass folding the input back in (as cudppScan does with
/// the CUDPP_OPTION_INCLUSIVE flag handled in the final pass -- modeled
/// here as an extra elementwise pass).
template <typename T, typename Op = core::Plus<T>>
core::RunResult cudpp_multiscan(simt::Device& dev,
                                const simt::DeviceBuffer<T>& in,
                                simt::DeviceBuffer<T>& out, std::int64_t n,
                                std::int64_t g, core::ScanKind kind,
                                Op op = {}) {
  MGS_REQUIRE(n > 0 && g > 0, "cudpp_multiscan: bad shape");
  MGS_REQUIRE(in.size() >= n * g && out.size() >= n * g,
              "cudpp_multiscan: buffers too small");
  MGS_REQUIRE(kind == core::ScanKind::kExclusive ||
                  in.host_span().data() != out.host_span().data(),
              "cudpp_multiscan: the inclusive fixup pass re-reads the input "
              "and cannot run in place");
  core::RunResult result;
  result.payload_bytes = 2ull * static_cast<std::uint64_t>(n) * g * sizeof(T);
  const double start = dev.clock().now();
  charge_host_overhead(dev, cudpp_traits(), result);

  detail::cudpp_level(dev, in, out, 0, n, n, g, core::ScanKind::kExclusive,
                      op, result);

  if (kind == core::ScanKind::kInclusive) {
    // Extra pass: inclusive[i] = op(exclusive[i], in[i]).
    simt::LaunchConfig cfg;
    cfg.name = "cudpp_inclusive_fixup";
    cfg.grid = {static_cast<int>(util::div_up(
                    static_cast<std::uint64_t>(n),
                    static_cast<std::uint64_t>(detail::kCudppTile))),
                static_cast<int>(g), 1};
    cfg.block = {detail::kCudppThreads, 1, 1};
    cfg.regs_per_thread = 24;
    const auto inv = in.view();
    const auto outv = out.view();
    auto t = simt::launch(dev, cfg, [=](simt::BlockCtx& ctx) {
      const std::int64_t b = ctx.block_idx().x;
      const std::int64_t p = ctx.block_idx().y;
      const std::int64_t base = p * n + b * detail::kCudppTile;
      const std::int64_t len =
          std::min<std::int64_t>(detail::kCudppTile, n - b * detail::kCudppTile);
      for (std::int64_t i = 0; i < len; i += simt::kWarpSize) {
        const int cnt =
            static_cast<int>(std::min<std::int64_t>(simt::kWarpSize, len - i));
        auto a = outv.load_warp_partial(base + i, cnt, Op::identity(),
                                        ctx.stats());
        const auto x = inv.load_warp_partial(base + i, cnt, Op::identity(),
                                             ctx.stats());
        for (int l = 0; l < cnt; ++l) a[l] = op(a[l], x[l]);
        ctx.count_alu(static_cast<std::uint64_t>(cnt));
        outv.store_warp_partial(base + i, cnt, a, ctx.stats());
      }
    });
    result.breakdown.add("cudpp_inclusive_fixup", t.seconds);
  }

  result.seconds = dev.clock().now() - start;
  return result;
}

/// Single-problem CUDPP scan (G = 1 multiScan).
template <typename T, typename Op = core::Plus<T>>
core::RunResult cudpp_scan(simt::Device& dev, const simt::DeviceBuffer<T>& in,
                           simt::DeviceBuffer<T>& out, std::int64_t n,
                           core::ScanKind kind, Op op = {}) {
  return cudpp_multiscan(dev, in, out, n, 1, kind, op);
}

}  // namespace mgs::baselines
