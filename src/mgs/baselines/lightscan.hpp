#pragma once
/// \file lightscan.hpp
/// LightScan model (Liu & Aluru 2016): a chained scan -- one pass over the
/// data where tile b blocks until tile b-1 delivers its inclusive carry,
/// then forwards its own. DRAM traffic is ~2N like CUB, but the carry
/// chain serializes one hop per tile (modeled as a fixed per-tile chain
/// latency added to the kernel time), and the host-side per-invocation
/// cost is the largest of the five libraries (persistent-kernel setup and
/// host synchronization), which is why LightScan fares worst of all in
/// the paper's batch experiment (549x at n=13, Figure 12).

#include <thread>

#include "mgs/baselines/common.hpp"
#include "mgs/core/op.hpp"

namespace mgs::baselines {

inline BaselineTraits lightscan_traits() {
  // Persistent-kernel spin-up over the full device; host-side
  // re-negotiation between back-to-back calls is the worst of the five
  // libraries (calibrated from the paper's Figure 12 extremes:
  // LightScan/CUB ~ 39x per invocation at n=13).
  return {"LightScan", 25.0, /*loop_extra_us=*/600.0, /*native_batch=*/false};
}

/// Chain-hop latency per tile: the time for a carry to cross DRAM/L2 from
/// one SM to the next (~an L2 round trip on Kepler).
inline constexpr double kLightScanChainHopUs = 0.05;

template <typename T, typename Op = core::Plus<T>>
core::RunResult lightscan_scan(simt::Device& dev,
                               const simt::DeviceBuffer<T>& in,
                               simt::DeviceBuffer<T>& out, std::int64_t offset,
                               std::int64_t n, core::ScanKind kind,
                               Op op = {}) {
  MGS_REQUIRE(n > 0, "lightscan_scan: empty input");
  MGS_REQUIRE(offset >= 0 && in.size() >= offset + n && out.size() >= offset + n,
              "lightscan_scan: range out of bounds");
  constexpr int kThreads = 128;
  constexpr std::int64_t kTile = 4096;
  const std::int64_t blocks = util::div_up(
      static_cast<std::uint64_t>(n), static_cast<std::uint64_t>(kTile));

  core::RunResult result;
  result.payload_bytes = 2ull * static_cast<std::uint64_t>(n) * sizeof(T);
  const double start = dev.clock().now();
  charge_host_overhead(dev, lightscan_traits(), result);

  auto carry = dev.alloc<T>(blocks);
  auto ready = dev.alloc<std::int32_t>(blocks);  // zero-initialized

  const auto inv = in.view();
  const auto outv = out.view();
  const auto cv = carry.view();
  const auto rv = ready.view();

  simt::LaunchConfig cfg;
  cfg.name = "lightscan_chained";
  cfg.grid = {static_cast<int>(blocks), 1, 1};
  cfg.block = {kThreads, 1, 1};
  cfg.regs_per_thread = 48;
  cfg.smem_per_block = kThreads * static_cast<std::int64_t>(sizeof(T));
  auto t = simt::launch(dev, cfg, [=](simt::BlockCtx& ctx) {
    const std::int64_t b = ctx.block_idx().x;
    const std::int64_t base = offset + b * kTile;
    const std::int64_t len = std::min<std::int64_t>(kTile, n - b * kTile);

    // Load and locally scan the tile while (conceptually) the carry is in
    // flight -- LightScan overlaps the wait with the local scan.
    std::vector<T> tile(static_cast<std::size_t>(len));
    for (std::int64_t i = 0; i < len; i += 4 * simt::kWarpSize) {
      const std::int64_t cnt =
          std::min<std::int64_t>(4 * simt::kWarpSize, len - i);
      if (cnt == 4 * simt::kWarpSize) {
        const auto q = inv.load4_warp(base + i, ctx.stats());
        for (int l = 0; l < simt::kWarpSize; ++l) {
          for (int e = 0; e < 4; ++e) {
            tile[static_cast<std::size_t>(i + 4 * l + e)] = q[l][e];
          }
        }
      } else {
        for (std::int64_t j = 0; j < cnt; ++j) {
          tile[static_cast<std::size_t>(i + j)] =
              inv.load(base + i + j, ctx.stats());
        }
      }
    }
    T total = Op::identity();
    for (std::int64_t i = 0; i < len; ++i) {
      total = op(total, tile[static_cast<std::size_t>(i)]);
    }
    ctx.count_alu(2 * static_cast<std::uint64_t>(len));

    // Receive the carry from the predecessor (tile 0 starts the chain).
    T excl = Op::identity();
    if (b > 0) {
      while (rv.atomic_peek(b - 1) == 0) std::this_thread::yield();
      excl = cv.atomic_peek(b - 1);
      // Fixed model cost for the flag poll + carry read.
      ctx.stats().bytes_read += sizeof(std::int32_t) + sizeof(T);
      ctx.stats().mem_transactions += 2;
      ctx.count_alu(8);
    }
    // Forward the inclusive carry.
    cv.store(b, op(excl, total), ctx.stats());
    rv.atomic_store(b, 1, ctx.stats());

    // Write the scanned tile.
    T acc = excl;
    for (std::int64_t i = 0; i < len; i += 4 * simt::kWarpSize) {
      const std::int64_t cnt =
          std::min<std::int64_t>(4 * simt::kWarpSize, len - i);
      if (cnt == 4 * simt::kWarpSize) {
        simt::WarpReg<simt::Vec4<T>> q;
        for (int l = 0; l < simt::kWarpSize; ++l) {
          for (int e = 0; e < 4; ++e) {
            const T x = tile[static_cast<std::size_t>(i + 4 * l + e)];
            if (kind == core::ScanKind::kInclusive) {
              acc = op(acc, x);
              q[l][e] = acc;
            } else {
              q[l][e] = acc;
              acc = op(acc, x);
            }
          }
        }
        outv.store4_warp(base + i, q, ctx.stats());
      } else {
        for (std::int64_t j = 0; j < cnt; ++j) {
          const T x = tile[static_cast<std::size_t>(i + j)];
          if (kind == core::ScanKind::kInclusive) {
            acc = op(acc, x);
            outv.store(base + i + j, acc, ctx.stats());
          } else {
            outv.store(base + i + j, acc, ctx.stats());
            acc = op(acc, x);
          }
        }
      }
      ctx.count_alu(static_cast<std::uint64_t>(cnt));
    }
  });
  result.breakdown.add("lightscan_chained", t.seconds);

  // Carry-chain serialization: one hop per tile boundary.
  const double chain_s =
      kLightScanChainHopUs * 1e-6 * static_cast<double>(blocks > 0 ? blocks - 1 : 0);
  dev.clock().advance(chain_s);
  result.breakdown.add("lightscan_chain", chain_s);

  result.seconds = dev.clock().now() - start;
  return result;
}

}  // namespace mgs::baselines
