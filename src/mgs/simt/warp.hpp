#pragma once
/// \file warp.hpp
/// Warp-level primitives: shuffles and Ladner-Fischer scans over a 32-lane
/// register file. These are the building blocks of the paper's Figure 4
/// (per-thread P-element scan -> shuffle warp scan -> shared-memory warp
/// partials). Every primitive charges its lane-operations to a
/// sim::KernelStats so the cost model sees the ALU work.

#include "mgs/sim/cost_model.hpp"
#include "mgs/simt/types.hpp"

namespace mgs::simt {

/// __shfl_up_sync: lane l receives the value of lane l-delta; lanes with
/// l < delta keep their own value (CUDA semantics: the source value is
/// returned unchanged but the caller predicates on lane id -- we fold that
/// predication in, which is what scan code always does).
template <typename T>
WarpReg<T> shfl_up(const WarpReg<T>& x, int delta, sim::KernelStats& st) {
  WarpReg<T> y;
  for (int l = 0; l < kWarpSize; ++l) {
    y[l] = (l >= delta) ? x[l - delta] : x[l];
  }
  st.alu_ops += kWarpSize;
  return y;
}

/// __shfl_sync with a uniform source lane: broadcast lane `src` to all.
template <typename T>
T shfl_idx(const WarpReg<T>& x, int src, sim::KernelStats& st) {
  st.alu_ops += kWarpSize;
  return x[src];
}

/// Inclusive Ladner-Fischer warp scan using log2(32) = 5 shuffle steps.
/// After the call, x[l] = op(x[0], ..., x[l]).
template <typename T, typename Op>
void warp_scan_inclusive(WarpReg<T>& x, Op op, sim::KernelStats& st) {
  for (int delta = 1; delta < kWarpSize; delta <<= 1) {
    const WarpReg<T> y = shfl_up(x, delta, st);
    for (int l = delta; l < kWarpSize; ++l) {
      x[l] = op(y[l], x[l]);
    }
    st.alu_ops += kWarpSize;  // predicated op on every lane
  }
}

/// Exclusive warp scan: x[l] = op(identity, x[0..l-1]). Implemented the way
/// the paper describes (Section 3.1): compute the inclusive scan, then each
/// lane subtracts -- here, shuffles up by one and lane 0 takes the identity.
template <typename T, typename Op>
void warp_scan_exclusive(WarpReg<T>& x, Op op, sim::KernelStats& st) {
  warp_scan_inclusive(x, op, st);
  const WarpReg<T> y = shfl_up(x, 1, st);
  for (int l = 0; l < kWarpSize; ++l) {
    x[l] = (l == 0) ? Op::identity() : y[l];
  }
  st.alu_ops += kWarpSize;
}

/// Warp-wide reduction; returns op over all 32 lanes (valid in every lane's
/// view; costs the same 5 shuffle steps).
template <typename T, typename Op>
T warp_reduce(WarpReg<T> x, Op op, sim::KernelStats& st) {
  warp_scan_inclusive(x, op, st);
  return x[kWarpSize - 1];
}

/// Per-thread serial scan of P register-resident elements (the red step in
/// the paper's Figure 4). v is one lane's registers; after the call
/// v[i] = op(v[0..i]) and the lane's total is returned.
template <typename T, typename Op>
T thread_scan_inclusive(T* v, int p, Op op, sim::KernelStats& st) {
  for (int i = 1; i < p; ++i) {
    v[i] = op(v[i - 1], v[i]);
  }
  st.alu_ops += static_cast<std::uint64_t>(p);
  return v[p - 1];
}

/// Add a carried-in prefix to all P elements of one lane.
template <typename T, typename Op>
void thread_add_prefix(T* v, int p, T prefix, Op op, sim::KernelStats& st) {
  for (int i = 0; i < p; ++i) {
    v[i] = op(prefix, v[i]);
  }
  st.alu_ops += static_cast<std::uint64_t>(p);
}

}  // namespace mgs::simt
