#include "mgs/simt/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mgs/util/check.hpp"

namespace mgs::simt {

struct ThreadPool::Impl {
  // Every run_ordered call installs a fresh Job object. Workers take a
  // shared_ptr to the job they saw, so a worker waking late (or stalled
  // between claiming and checking) can only ever touch *its* job's
  // counters: a stale worker draws an exhausted index from the old job
  // and exits, instead of racing the next job's freshly reset counter
  // (which could double-execute a block, break the ascending-claim
  // invariant look-back kernels rely on, or call a dangling callback).
  struct Job {
    const std::function<void(std::int64_t)>* fn = nullptr;
    std::int64_t total = 0;
    std::atomic<std::int64_t> next{0};
    std::atomic<std::int64_t> completed{0};
  };

  std::vector<std::thread> threads;
  std::mutex mutex;
  std::condition_variable cv_work;
  std::condition_variable cv_done;

  std::shared_ptr<Job> job;  // guarded by mutex
  std::uint64_t generation = 0;
  bool shutting_down = false;

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      std::shared_ptr<Job> my_job;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv_work.wait(lock, [&] {
          return shutting_down || generation != seen_generation;
        });
        if (shutting_down) return;
        seen_generation = generation;
        my_job = job;
      }
      if (my_job) drain(*my_job);
    }
  }

  void drain(Job& j) {
    for (;;) {
      const std::int64_t i = j.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= j.total) break;
      (*j.fn)(i);
      if (j.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          j.total) {
        std::lock_guard<std::mutex> lock(mutex);
        cv_done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int workers) : impl_(new Impl) {
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 2;
  }
  workers_ = workers;
  impl_->threads.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    impl_->threads.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutting_down = true;
  }
  impl_->cv_work.notify_all();
  for (auto& t : impl_->threads) t.join();
  delete impl_;
}

void ThreadPool::run_ordered(std::int64_t n,
                             const std::function<void(std::int64_t)>& fn) {
  MGS_CHECK(n >= 0, "run_ordered: negative count");
  if (n == 0) return;
  auto job = std::make_shared<Impl::Job>();
  job->fn = &fn;  // valid until this call returns (we block on completion)
  job->total = n;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = job;
    ++impl_->generation;
  }
  impl_->cv_work.notify_all();
  // The calling thread participates too, so single-threaded environments
  // still make progress and small launches avoid a context switch.
  impl_->drain(*job);
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->cv_done.wait(lock, [&] {
    return job->completed.load(std::memory_order_acquire) >= job->total;
  });
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mgs::simt
