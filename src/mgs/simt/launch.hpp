#pragma once
/// \file launch.hpp
/// Kernel launch API: execute a block body over a grid, functionally and
/// in parallel on the host pool, while accumulating work counters; then
/// convert the counters into simulated time and advance the device clock.

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "mgs/obs/span.hpp"
#include "mgs/sim/cost_model.hpp"
#include "mgs/sim/fault.hpp"
#include "mgs/sim/profiler.hpp"
#include "mgs/simt/device.hpp"
#include "mgs/simt/thread_pool.hpp"
#include "mgs/simt/types.hpp"
#include "mgs/util/check.hpp"

namespace mgs::simt {

/// Launch shape + declared per-thread resources. regs_per_thread and
/// smem_per_block are *declared* (as a CUDA compiler would report them);
/// they feed the occupancy calculator exactly like --ptxas-options=-v
/// output would.
struct LaunchConfig {
  std::string name = "kernel";
  Dim3 grid;
  Dim3 block;
  int regs_per_thread = 32;
  std::int64_t smem_per_block = 0;
};

/// Execution context handed to the kernel body, one per thread block.
class BlockCtx {
 public:
  BlockCtx(Dim3 block_idx, const LaunchConfig& cfg, int device_id)
      : block_idx_(block_idx),
        grid_dim_(cfg.grid),
        block_dim_(cfg.block),
        device_id_(device_id),
        smem_(static_cast<std::size_t>(cfg.smem_per_block)) {}

  Dim3 block_idx() const { return block_idx_; }
  Dim3 grid_dim() const { return grid_dim_; }
  Dim3 block_dim() const { return block_dim_; }
  int device_id() const { return device_id_; }

  sim::KernelStats& stats() { return stats_; }

  /// Bump-allocate `count` Ts from the block's shared memory (static
  /// __shared__ arrays in CUDA terms). Checks the declared budget.
  template <typename T>
  std::span<T> shared(std::int64_t count) {
    const std::size_t align = alignof(T);
    std::size_t offset = (smem_used_ + align - 1) / align * align;
    const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
    MGS_CHECK(offset + bytes <= smem_.size(),
              "shared memory over the declared smem_per_block budget");
    smem_used_ = offset + bytes;
    return {reinterpret_cast<T*>(smem_.data() + offset),
            static_cast<std::size_t>(count)};
  }

  /// __syncthreads(). Functionally a no-op (a block executes its warps in
  /// program order on one worker), kept as a semantic marker and charged
  /// as one instruction per thread.
  void sync() {
    stats_.alu_ops += static_cast<std::uint64_t>(block_dim_.count());
  }

  /// Charge explicit lane-operations (index arithmetic, predicates) that
  /// the skeletons want the cost model to see.
  void count_alu(std::uint64_t n) { stats_.alu_ops += n; }

 private:
  Dim3 block_idx_;
  Dim3 grid_dim_;
  Dim3 block_dim_;
  int device_id_;
  sim::KernelStats stats_;
  std::vector<std::byte> smem_;
  std::size_t smem_used_ = 0;
};

namespace detail {
/// Throws util::Error when the launch cannot run on the device at all.
void validate_launch(const Device& dev, const LaunchConfig& cfg);
}  // namespace detail

/// Execute `body(BlockCtx&)` for every block of cfg.grid on the shared
/// pool, blocks dispatched in ascending linear index (x fastest, then y,
/// then z). Aggregates the per-block KernelStats, evaluates the cost model
/// for this DeviceSpec, advances the device clock, and returns the timing.
template <typename Fn>
sim::KernelTime launch(Device& dev, const LaunchConfig& cfg, Fn&& body) {
  detail::validate_launch(dev, cfg);

  sim::KernelStats total;
  total.blocks = static_cast<std::uint64_t>(cfg.grid.count());
  total.threads_per_block = static_cast<int>(cfg.block.count());
  total.regs_per_thread = cfg.regs_per_thread;
  total.smem_per_block = cfg.smem_per_block;

  std::mutex agg_mutex;
  const std::int64_t gx = cfg.grid.x;
  const std::int64_t gy = cfg.grid.y;
  ThreadPool::instance().run_ordered(
      cfg.grid.count(), [&](std::int64_t linear) {
        Dim3 idx;
        idx.x = static_cast<int>(linear % gx);
        idx.y = static_cast<int>((linear / gx) % gy);
        idx.z = static_cast<int>(linear / (gx * gy));
        BlockCtx ctx(idx, cfg, dev.id());
        body(ctx);
        std::lock_guard<std::mutex> lock(agg_mutex);
        total.bytes_read += ctx.stats().bytes_read;
        total.bytes_written += ctx.stats().bytes_written;
        total.mem_transactions += ctx.stats().mem_transactions;
        total.alu_ops += ctx.stats().alu_ops;
      });

  sim::KernelTime t = sim::kernel_time(dev.spec(), total);
  const double start = dev.clock().now();
  // A straggling device runs its kernels slower too, not just its
  // transfers (FaultKind::kStraggler). No injector -> bit-identical time.
  double straggle = 1.0;
  if (const sim::FaultInjector* fi = dev.fault_injector()) {
    straggle = fi->compute_slowdown(dev.id(), start);
    if (straggle > 1.0) t.seconds *= straggle;
  }
  dev.clock().advance(t.seconds);

  if (sim::Profiler::instance().enabled()) {
    sim::ProfileRecord rec;
    rec.name = cfg.name;
    rec.kind = sim::EventKind::kKernel;
    rec.device_id = dev.id();
    rec.start_seconds = start;
    rec.duration_seconds = t.seconds;
    rec.bytes = total.total_bytes();
    rec.alu_ops = total.alu_ops;
    rec.occupancy = t.occ.warp_occupancy;
    sim::Profiler::instance().record(std::move(rec));
  }
  if (obs::TraceSession* ts = obs::TraceSession::current()) {
    obs::SpanRecord rec;
    rec.name = cfg.name;
    rec.kind = obs::SpanKind::kKernel;
    rec.category = obs::Category::kCompute;
    rec.device = dev.id();
    rec.start_seconds = start;
    rec.end_seconds = start + t.seconds;
    rec.bytes = total.total_bytes();
    rec.alu_ops = total.alu_ops;
    rec.occupancy = t.occ.warp_occupancy;
    if (straggle > 1.0) {
      rec.notes.emplace_back("straggler_factor", std::to_string(straggle));
    }
    ts->add_event(std::move(rec));
    obs::MetricsRegistry& m = ts->metrics();
    if (straggle > 1.0) m.inc("straggler_kernels_total");
    m.inc("kernel_launches_total", {{"name", cfg.name}});
    m.add("kernel_seconds", {{"name", cfg.name}}, t.seconds);
    m.add("kernel_bytes", {{"name", cfg.name}},
          static_cast<double>(total.total_bytes()));
  }
  return t;
}

}  // namespace mgs::simt
